#!/usr/bin/env python3
"""Gate engine-benchmark throughput against the committed baseline.

Reads one or more BENCH_iosim.json metrics files produced by
`iosim run engine_bench --metrics-out=...` (several files = repeated
runs; the per-workload MEDIAN is compared, which shrugs off one noisy
run on shared CI hardware), prints a markdown comparison table (and
appends it to $GITHUB_STEP_SUMMARY when set), and exits nonzero if any
workload's events/second regressed more than the threshold (default
25%) below the baseline.

Usage:
  tools/bench_compare.py BASELINE CURRENT [CURRENT2 CURRENT3 ...]
  tools/bench_compare.py --threshold=0.25 BASELINE CURRENT...
  tools/bench_compare.py --rebaseline=OUT BASELINE CURRENT...
      also write OUT: the first CURRENT file with every bench.engine.*
      gauge replaced by the median across runs (the documented way to
      refresh bench/baseline/BENCH_iosim.json).
  tools/bench_compare.py --self-test
      prove the gate trips: synthesizes a 30% slowdown from a fixed
      baseline and asserts the comparison fails.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys

RATE_SUFFIX = ".events_per_s"
PREFIX = "bench.engine."


def load_rates(path: str) -> dict[str, float]:
    """Map workload name -> events/s from one metrics JSON file."""
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for key, stat in doc.get("gauges", {}).items():
        if key.startswith(PREFIX) and key.endswith(RATE_SUFFIX):
            wl = key[len(PREFIX) : -len(RATE_SUFFIX)]
            rates[wl] = float(stat["last"])
    if not rates:
        sys.exit(f"bench_compare: no {PREFIX}*{RATE_SUFFIX} gauges in {path}")
    return rates


def median_rates(paths: list[str]) -> dict[str, float]:
    runs = [load_rates(p) for p in paths]
    workloads = set().union(*runs)
    return {
        wl: statistics.median([r[wl] for r in runs if wl in r])
        for wl in workloads
    }


def compare(
    baseline: dict[str, float], current: dict[str, float], threshold: float
) -> tuple[str, list[str]]:
    """Build the markdown table; return (table, failure messages)."""
    lines = [
        "| workload | baseline ev/s | current ev/s | ratio | status |",
        "|----------|---------------|--------------|-------|--------|",
    ]
    failures = []
    for wl in sorted(set(baseline) | set(current)):
        if wl not in current:
            failures.append(f"{wl}: missing from current results")
            lines.append(f"| {wl} | {baseline[wl]:,.0f} | — | — | MISSING |")
            continue
        if wl not in baseline:
            lines.append(f"| {wl} | — | {current[wl]:,.0f} | — | NEW |")
            continue
        ratio = current[wl] / baseline[wl]
        ok = ratio >= 1.0 - threshold
        status = "ok" if ok else f"**REGRESSED >{threshold:.0%}**"
        lines.append(
            f"| {wl} | {baseline[wl]:,.0f} | {current[wl]:,.0f} "
            f"| {ratio:.2f}x | {status} |"
        )
        if not ok:
            failures.append(
                f"{wl}: {current[wl]:,.0f} ev/s is {ratio:.2f}x of baseline "
                f"{baseline[wl]:,.0f} (floor {1.0 - threshold:.2f}x)"
            )
    return "\n".join(lines), failures


def rebaseline(current_paths: list[str], out: str) -> None:
    """Write a fresh baseline: the first run's file with every
    bench.engine.* gauge replaced by the median across all runs."""
    with open(current_paths[0]) as f:
        doc = json.load(f)
    runs = []
    for p in current_paths:
        with open(p) as f:
            runs.append(json.load(f)["gauges"])
    for key in list(doc.get("gauges", {})):
        if not key.startswith(PREFIX):
            continue
        vals = [r[key]["last"] for r in runs if key in r]
        med = statistics.median(vals)
        doc["gauges"][key] = {"last": med, "min": med, "max": med, "count": 1}
    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def self_test() -> int:
    base = {"timer_wheel": 1000.0, "timer_soup": 2000.0}
    # 30% slowdown on one workload must trip the 25% gate...
    table, failures = compare(
        base, {"timer_wheel": 700.0, "timer_soup": 2000.0}, 0.25
    )
    assert failures, "gate failed to trip on a 30% slowdown:\n" + table
    assert "timer_wheel" in failures[0]
    # ...a 10% wobble must not...
    _, failures = compare(
        base, {"timer_wheel": 900.0, "timer_soup": 1900.0}, 0.25
    )
    assert not failures, f"gate tripped on a 10% wobble: {failures}"
    # ...and a workload vanishing from the bench must.
    _, failures = compare(base, {"timer_wheel": 1000.0}, 0.25)
    assert failures, "gate missed a vanished workload"
    # Median of three runs shrugs off one outlier.
    assert statistics.median([1000.0, 100.0, 990.0]) == 990.0
    print("bench_compare self-test: ok (30% slowdown trips, 10% does not)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*", metavar="JSON")
    ap.add_argument("--threshold", type=float, default=0.25)
    ap.add_argument("--rebaseline", metavar="OUT")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if len(args.files) < 2:
        ap.error("need BASELINE and at least one CURRENT metrics file")

    baseline_path, current_paths = args.files[0], args.files[1:]
    baseline = load_rates(baseline_path)
    current = median_rates(current_paths)
    table, failures = compare(baseline, current, args.threshold)

    header = (
        f"### Engine benchmark vs {baseline_path} "
        f"(median of {len(current_paths)} run"
        f"{'s' if len(current_paths) != 1 else ''})"
    )
    print(header + "\n" + table)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(header + "\n" + table + "\n")

    if args.rebaseline:
        rebaseline(current_paths, args.rebaseline)
        print(f"rebaseline written to {args.rebaseline}")

    if failures:
        for msg in failures:
            print(f"REGRESSION: {msg}", file=sys.stderr)
        return 1
    print(f"all workloads within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
