// pablo_trace — instrument a run the way the paper did.
//
// Runs a small BTIO job with full event retention, prints the Table 2/3
// style summary AND writes the raw event stream as an SDDF-style trace
// file (pablo_trace.sddf in the working directory), the format Pablo's
// post-processing tools consumed.
//
//   $ build/examples/pablo_trace
#include <cstdio>
#include <fstream>

#include "hw/machine.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"
#include "trace/sddf.hpp"
#include "trace/tracer.hpp"

int main() {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::sp2(4));
  pfs::StripedFs fs(machine);
  const pfs::FileId file = fs.create("solution");

  // One tracer per rank, events retained (Pablo traced per processor).
  trace::IoTracer tracers[4] = {
      trace::IoTracer(true), trace::IoTracer(true), trace::IoTracer(true),
      trace::IoTracer(true)};

  const simkit::Time elapsed = mprt::Cluster::execute(
      machine, 4, [&](mprt::Comm& c) -> simkit::Task<void> {
        trace::IoTracer& tr = tracers[c.rank()];
        pfs::FileHandle h = co_await fs.open(c.node(), file, &tr);
        // Two dumps of 64 interleaved 8 KB records each.
        for (int dump = 0; dump < 2; ++dump) {
          co_await c.machine().compute(25e6);
          for (int i = 0; i < 64; ++i) {
            const auto rec = static_cast<std::uint64_t>(
                (dump * 64 + i) * 4 + c.rank());
            co_await h.seek(rec * 8192);
            co_await h.write(8192);
          }
          co_await mprt::barrier(c);
        }
        co_await h.close();
      });

  // Merged job-level summary (what the paper's tables show).
  trace::IoTracer merged;
  for (const auto& t : tracers) merged.merge(t);
  std::printf("%s\n",
              trace::format_io_summary(merged, elapsed * 4,
                                       "BTIO-style job, 4 processors")
                  .c_str());

  // Per-processor SDDF streams concatenated into one trace file.
  std::ofstream out("pablo_trace.sddf");
  std::size_t records = 0;
  for (int r = 0; r < 4; ++r) {
    trace::SddfOptions opts;
    opts.processor = r;
    const std::string sddf = trace::to_sddf(tracers[r], opts);
    records += trace::sddf_record_count(sddf);
    out << sddf;
  }
  std::printf("wrote pablo_trace.sddf: %zu event records from 4 "
              "processors\n",
              records);
  return 0;
}
