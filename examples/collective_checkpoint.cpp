// collective_checkpoint — the paper's BTIO/AST motif as a reusable recipe.
//
// A 16-process stencil code owns a block-decomposed 512x512 grid of
// doubles and checkpoints it to one shared, column-major file every few
// steps.  The example times three strategies on the same simulated SP-2:
//
//   naive       one seek+write per non-contiguous piece (MPI-2 Unix style)
//   sieved      each process writes its pieces via data-sieving windows
//   collective  one two-phase collective write per checkpoint
//
// and verifies (data-backed) that all three land identical bytes.
//
// A second act runs the same grid through `ckpt::run`'s checkpoint
// policies ({sync|async} x {full|incremental}) under injected I/O-node
// crashes — the write-strategy question one layer up: once the collective
// write is fast, should the job still stop for it, and must it rewrite
// bytes it never touched?
//
//   $ build/examples/collective_checkpoint
#include <cstdio>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pario/sieve.hpp"
#include "pario/twophase.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::uint64_t kGrid = 512;
constexpr int kProcs = 16;
constexpr int kCheckpoints = 4;

// Block-row decomposition: rank r owns rows [r*32, (r+1)*32).  In a
// column-major file that is one small piece per column.
std::vector<pario::Extent> my_pieces(int rank) {
  const std::uint64_t rows = kGrid / kProcs;
  const std::uint64_t row_lo = static_cast<std::uint64_t>(rank) * rows;
  std::vector<pario::Extent> out;
  out.reserve(kGrid);
  std::uint64_t buf = 0;
  for (std::uint64_t c = 0; c < kGrid; ++c) {
    out.push_back(pario::Extent{(c * kGrid + row_lo) * 8, rows * 8, buf});
    buf += rows * 8;
  }
  return out;
}

std::vector<std::byte> my_data(int rank) {
  std::vector<std::byte> data(kGrid / kProcs * kGrid * 8);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((rank * 131 + i) % 251);
  }
  return data;
}

enum class Strategy { kNaive, kSieved, kCollective };

struct Outcome {
  double exec = 0.0;
  std::vector<std::byte> file_bytes;
};

Outcome run(Strategy strat) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::sp2(kProcs));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("checkpoint.dat", /*backed=*/true);

  Outcome out;
  out.exec = mprt::Cluster::execute(
      machine, kProcs, [&](mprt::Comm& c) -> simkit::Task<void> {
        auto pieces = my_pieces(c.rank());
        auto data = my_data(c.rank());
        for (int ck = 0; ck < kCheckpoints; ++ck) {
          // A little compute between checkpoints.
          co_await c.machine().compute(5e6);
          switch (strat) {
            case Strategy::kNaive:
              for (const auto& e : pieces) {
                std::span<const std::byte> view(data);
                co_await fs.pwrite(c.node(), f, e.file_offset, e.length,
                                   view.subspan(e.buf_offset, e.length));
              }
              co_await mprt::barrier(c);
              break;
            case Strategy::kSieved:
              co_await pario::sieved_write(fs, c.node(), f, pieces, data,
                                           /*max_window=*/1 << 20);
              co_await mprt::barrier(c);
              break;
            case Strategy::kCollective:
              co_await pario::TwoPhase::write(c, fs, f, pieces, data);
              break;
          }
        }
      });
  out.file_bytes.resize(kGrid * kGrid * 8);
  fs.peek(f, 0, out.file_bytes);
  return out;
}

// Part 2: the same grid as a long-running stencil job checkpointed by
// `ckpt::run`.  Each step dirties a 10% band of the slab, so incremental
// checkpoints have something to skip; a deterministic crash plan makes
// the rollback cost visible.
ckpt::Report run_policy(ckpt::Policy pol) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::sp2(kProcs));
  fault::Injector injector(fault::InjectionPlan::poisson_node_crashes(
      /*io_nodes=*/4, /*mtbf=*/45.0, /*outage=*/15.0,
      /*horizon=*/20000.0, /*seed=*/7));
  pfs::StripedFs fs(machine, &injector);

  ckpt::Workload w;
  w.name = "stencil";
  w.nprocs = kProcs;
  w.steps = 48;
  w.flops_per_rank_step = 2e8;
  w.state_bytes_per_rank = kGrid / kProcs * kGrid * 8;  // my slab
  w.dirty_fraction_per_step = 0.10;

  ckpt::Options o;
  o.ckpt_interval_steps = 6;
  o.policy = pol;
  o.retry.max_attempts = 4;
  o.retry.backoff_ms = 5.0;
  return ckpt::run(machine, fs, &injector, w, o);
}

}  // namespace

int main() {
  const Outcome naive = run(Strategy::kNaive);
  const Outcome sieved = run(Strategy::kSieved);
  const Outcome collective = run(Strategy::kCollective);

  std::printf("checkpointing a %llux%llu grid from %d processes, %d "
              "checkpoints:\n\n",
              static_cast<unsigned long long>(kGrid),
              static_cast<unsigned long long>(kGrid), kProcs, kCheckpoints);
  std::printf("  naive seek+write : %8.2f s simulated\n", naive.exec);
  std::printf("  data sieving     : %8.2f s simulated (%.1fx)\n",
              sieved.exec, naive.exec / sieved.exec);
  std::printf("  two-phase        : %8.2f s simulated (%.1fx)\n\n",
              collective.exec, naive.exec / collective.exec);

  const bool identical = naive.file_bytes == sieved.file_bytes &&
                         naive.file_bytes == collective.file_bytes;
  std::printf("checkpoint files byte-identical across strategies: %s\n",
              identical ? "yes" : "NO (bug!)");

  std::printf("\nsame job under ckpt::run with I/O-node crashes "
              "(checkpoint every 6 steps):\n\n");
  std::printf("  %-10s %9s %11s %10s %10s  ckpts\n", "policy", "exec (s)",
              "blocked (s)", "lost (s)", "recov (s)");
  bool all_completed = true;
  for (const char* name :
       {"sync_full", "sync_incr", "async_full", "async_incr"}) {
    const ckpt::Report r = run_policy(*ckpt::Policy::parse(name));
    std::printf("  %-10s %9.2f %11.2f %10.2f %10.2f  %d full + %d delta",
                name, r.exec_time, r.ckpt_overhead, r.lost_work,
                r.recovery_time, r.full_checkpoints, r.delta_checkpoints);
    if (r.dropped_checkpoints > 0) {
      std::printf(" (%d dropped)", r.dropped_checkpoints);
    }
    std::printf("\n");
    all_completed = all_completed && r.completed;
  }
  std::printf("\nasync overlaps the drain with compute; incremental writes "
              "only the dirtied\nband — together they shrink the stall the "
              "collective write left behind.  The\nprice: a drain that dies "
              "with its I/O node is dropped, thinning the chain a\nlater "
              "rollback could need.\n");
  return identical && all_completed ? 0 : 1;
}
