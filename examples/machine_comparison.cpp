// machine_comparison — Paragon vs SP-2 on the same workload.
//
// Thakur, Gropp & Lusk (the paper's ref [11]) found the SP-2 faster on
// reads and the Paragon faster on writes — a consequence of the Paragon's
// write-behind PFS daemons vs PIOFS's synchronous writes.  This example
// runs an identical 8-process read pass and write pass on both machine
// models and shows the asymmetry falling out of the presets.
//
//   $ build/examples/machine_comparison
#include <cstdio>

#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace {

struct Times {
  double write;
  double read;
};

Times run_machine(bool sp2) {
  Times t{};
  for (int phase = 0; phase < 2; ++phase) {
    simkit::Engine eng;
    hw::Machine machine(eng, sp2 ? hw::MachineConfig::sp2(8)
                                 : hw::MachineConfig::paragon_large(8, 4));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("cmp");
    const double elapsed = mprt::Cluster::execute(
        machine, 8, [&](mprt::Comm& c) -> simkit::Task<void> {
          // Each rank streams 4 MB in 64 KB pieces, its own region.
          const std::uint64_t base =
              static_cast<std::uint64_t>(c.rank()) * (4 << 20);
          for (int i = 0; i < 64; ++i) {
            const std::uint64_t off = base + static_cast<std::uint64_t>(i) *
                                                 (64 << 10);
            if (phase == 0) {
              co_await fs.pwrite(c.node(), f, off, 64 << 10);
            } else {
              co_await fs.pread(c.node(), f, off, 64 << 10);
            }
          }
          co_await mprt::barrier(c);
        });
    (phase == 0 ? t.write : t.read) = elapsed;
  }
  return t;
}

}  // namespace

int main() {
  const Times paragon = run_machine(false);
  const Times sp2 = run_machine(true);

  expt::Table table({"machine", "8x4MB write (s)", "8x4MB cold read (s)",
                     "faster at"});
  table.add_row({"Paragon (4 io nodes, PFS)", expt::fmt("%.2f", paragon.write),
                 expt::fmt("%.2f", paragon.read),
                 paragon.write < paragon.read ? "writes" : "reads"});
  table.add_row({"SP-2 (4 io nodes, PIOFS)", expt::fmt("%.2f", sp2.write),
                 expt::fmt("%.2f", sp2.read),
                 sp2.write < sp2.read ? "writes" : "reads"});
  std::printf("Same workload, both platform models:\n%s\n", table.str().c_str());

  const bool asymmetry =
      (paragon.write / paragon.read) < (sp2.write / sp2.read);
  std::printf("Paragon comparatively better at writes, SP-2 at reads "
              "(paper ref [11]): %s\n",
              asymmetry ? "reproduced" : "NOT reproduced");
  return asymmetry ? 0 : 1;
}
