// quickstart — a 5-minute tour of the iosim public API.
//
// Builds a small simulated Intel Paragon (8 compute nodes, 2 I/O nodes),
// runs a 4-process message-passing program that writes and re-reads a
// striped file through two different I/O interfaces, and prints a
// Pablo-style I/O summary of what happened.
//
//   $ build/examples/quickstart
#include <cstdio>

#include "hw/machine.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pario/interface.hpp"
#include "exp/report.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"
#include "trace/tracer.hpp"

int main() {
  // 1. A simulated machine: compute partition + I/O partition + network.
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(
                               /*compute_nodes=*/8, /*io_nodes=*/2));

  // 2. A striped parallel file system over the machine's I/O nodes
  //    (64 KB stripe unit, round-robin, PFS-style).
  pfs::StripedFs fs(machine);
  const pfs::FileId file = fs.create("quickstart.dat");

  // 3. A 4-process SPMD program.  Each rank writes 4 MB through the
  //    Fortran-flavoured interface, barriers, then re-reads it through
  //    the PASSION interface.  Every operation is traced.
  trace::IoTracer tracer;
  const simkit::Time elapsed = mprt::Cluster::execute(
      machine, 4, [&](mprt::Comm& c) -> simkit::Task<void> {
        const std::uint64_t my_offset =
            static_cast<std::uint64_t>(c.rank()) * (4 << 20);

        pario::IoInterface slow = co_await pario::IoInterface::open(
            fs, c.node(), file, pario::InterfaceParams::fortran(), &tracer);
        for (int chunk = 0; chunk < 64; ++chunk) {
          co_await slow.pwrite(my_offset + chunk * (64 << 10), 64 << 10);
        }
        co_await slow.close();

        co_await mprt::barrier(c);

        pario::IoInterface fast = co_await pario::IoInterface::open(
            fs, c.node(), file, pario::InterfaceParams::passion(), &tracer);
        for (int chunk = 0; chunk < 64; ++chunk) {
          co_await fast.pread(my_offset + chunk * (64 << 10), 64 << 10);
        }
        co_await fast.close();
      });

  // 4. Results: simulated wall time plus the per-operation breakdown.
  std::printf("simulated execution time: %.2f s\n\n", elapsed);
  std::printf("%s\n", trace::format_io_summary(tracer, elapsed * 4,
                                               "quickstart I/O summary")
                          .c_str());
  std::printf("disk ops: %llu reads, %llu writes across %zu I/O nodes\n\n",
              static_cast<unsigned long long>(fs.total_disk_reads()),
              static_cast<unsigned long long>(fs.total_disk_writes()),
              fs.io_node_count());
  std::printf("%s", expt::utilization_report(fs, elapsed).c_str());
  return 0;
}
