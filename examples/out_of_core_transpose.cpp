// out_of_core_transpose — the paper's FFT layout lesson as a library
// recipe.
//
// Transposes a disk-resident 256x256 complex matrix that does not fit in
// (simulated) memory, twice: once with both files column-major (the
// original FFT program's layout) and once with a row-major target (the
// optimized layout).  Prints the I/O call counts and simulated times, and
// verifies on real data that both produce the correct transpose.
//
//   $ build/examples/out_of_core_transpose
#include <complex>
#include <cstdio>
#include <cstring>
#include <vector>

#include "hw/machine.hpp"
#include "numeric/fft.hpp"
#include "numeric/transpose.hpp"
#include "pario/advisor.hpp"
#include "pario/ooc_array.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"
#include "simkit/rng.hpp"

namespace {

using numeric::Complex;
constexpr std::uint64_t kN = 256;
constexpr std::uint64_t kEs = sizeof(Complex);
constexpr std::uint64_t kPanel = 32;  // strip width the "memory" allows

struct Outcome {
  double exec = 0.0;
  std::uint64_t io_calls = 0;
  std::vector<Complex> result;
};

Outcome transpose_on_disk(pario::Layout target_layout,
                          const std::vector<Complex>& input) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
  pfs::StripedFs fs(machine);

  auto a = pario::OutOfCoreArray::create(fs, "A", kN, kN, kEs,
                                         pario::Layout::kColMajor, true);
  auto b = pario::OutOfCoreArray::create(fs, "B", kN, kN, kEs,
                                         target_layout, true);
  fs.poke(a.file(), 0,
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(input.data()),
              input.size() * kEs));

  eng.spawn([](hw::Machine& m, pario::OutOfCoreArray& a,
               pario::OutOfCoreArray& b) -> simkit::Task<void> {
    std::vector<std::byte> buf(kN * kPanel * kEs), tbuf(kN * kPanel * kEs);
    for (std::uint64_t c0 = 0; c0 < kN; c0 += kPanel) {
      // Read a full-height column panel of A (contiguous: A is
      // column-major).
      co_await a.read_tile(m.compute_node(0), 0, c0, kN, kPanel, buf);
      // In-memory transpose of the panel into the target tile's order.
      // For a ROW-major B = A^T the panel bytes already ARE the tile in
      // file order (read stream == write stream — the deep reason the
      // layout choice makes both sides contiguous); for a COL-major B the
      // tile must be genuinely reshuffled.
      numeric::transpose<Complex>(
          std::span<const Complex>(reinterpret_cast<Complex*>(buf.data()),
                                   kN * kPanel),
          std::span<Complex>(reinterpret_cast<Complex*>(tbuf.data()),
                             kN * kPanel),
          kPanel, kN);
      co_await m.mem_copy(kN * kPanel * kEs);
      // Write rows [c0, c0+kPanel) of B = A^T.  Row-major B takes this as
      // one contiguous run; column-major B shatters it into kN little
      // strided runs — the whole point of the layout choice.
      std::span<const std::byte> tile =
          b.layout() == pario::Layout::kRowMajor
              ? std::span<const std::byte>(buf)
              : std::span<const std::byte>(tbuf);
      co_await b.write_tile(m.compute_node(0), c0, 0, kPanel, kN, tile);
    }
  }(machine, a, b), "transpose");
  eng.run();

  Outcome out;
  out.exec = eng.now();
  out.io_calls = a.io_calls() + b.io_calls();
  out.result.resize(kN * kN);
  std::vector<std::byte> raw(kN * kN * kEs);
  fs.peek(b.file(), 0, raw);
  // Normalize to row-major A^T for comparison regardless of B's layout.
  const auto* elems = reinterpret_cast<const Complex*>(raw.data());
  for (std::uint64_t r = 0; r < kN; ++r) {
    for (std::uint64_t c = 0; c < kN; ++c) {
      const std::uint64_t pos = target_layout == pario::Layout::kRowMajor
                                    ? r * kN + c
                                    : c * kN + r;
      out.result[r * kN + c] = elems[pos];
    }
  }
  return out;
}

}  // namespace

int main() {
  // Random input, stored column-major on "disk".
  simkit::Rng rng(2026);
  std::vector<Complex> input(kN * kN);
  for (auto& x : input) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));

  const Outcome col = transpose_on_disk(pario::Layout::kColMajor, input);
  const Outcome row = transpose_on_disk(pario::Layout::kRowMajor, input);

  std::printf("out-of-core transpose of a %llux%llu complex matrix "
              "(%.0f KB panels):\n\n",
              static_cast<unsigned long long>(kN),
              static_cast<unsigned long long>(kN),
              kN * kPanel * kEs / 1024.0);
  std::printf("  target col-major: %6llu I/O calls, %7.2f s simulated\n",
              static_cast<unsigned long long>(col.io_calls), col.exec);
  std::printf("  target row-major: %6llu I/O calls, %7.2f s simulated "
              "(%.1fx faster)\n\n",
              static_cast<unsigned long long>(row.io_calls), row.exec,
              col.exec / row.exec);

  // What a layout-aware compiler would have said (paper §4.4 / ref [7]).
  pario::LayoutAdvisor advisor;
  advisor.observe("A", kN, kN, kN, kPanel, kN / kPanel);       // panel reads
  advisor.observe("B", kN, kN, kPanel, kN, kN / kPanel);       // row writes
  std::printf("LayoutAdvisor:\n%s\n", advisor.report().c_str());

  // Correctness: `result` is A^T in row-major order, and A^T(i,j) = A(j,i)
  // = input[i*kN + j] (input is A in column-major order) — so both results
  // must equal the input buffer elementwise.
  const bool ok = col.result == input && row.result == input;
  std::printf("transposed contents verified: %s\n", ok ? "yes" : "NO (bug!)");
  return ok ? 0 : 1;
}
