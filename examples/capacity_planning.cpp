// capacity_planning — use the simulator as a what-if tool.
//
// The paper's architectural question in reverse: given an application's
// I/O profile, how many I/O nodes does a balanced machine need, and when
// does software optimization substitute for hardware?  This example
// sweeps the I/O partition size for a read-heavy iterative workload
// (SCF-like) at several processor counts, with and without software
// optimization, and prints the smallest I/O partition within 15% of the
// asymptotic performance — a direct answer to "how much improvement can
// be obtained by increasing I/O resources?" (paper §1).
//
//   $ build/examples/capacity_planning
#include <cstdio>
#include <vector>

#include "apps/scf.hpp"
#include "exp/table.hpp"

int main() {
  const std::vector<std::size_t> io_nodes = {4, 8, 12, 16, 32, 64};
  const std::vector<int> procs = {16, 64, 256};

  for (apps::ScfVersion v :
       {apps::ScfVersion::kOriginal, apps::ScfVersion::kPassionPrefetch}) {
    expt::Table table({"procs", "io=4", "io=8", "io=12", "io=16", "io=32",
                       "io=64", "recommended"});
    for (int p : procs) {
      std::vector<double> exec;
      for (std::size_t io : io_nodes) {
        apps::ScfConfig cfg;
        cfg.version = v;
        cfg.nprocs = p;
        cfg.io_nodes = io;
        cfg.n_basis = 140;
        cfg.iterations = 10;
        cfg.scale = 0.5;
        exec.push_back(apps::run_scf11(cfg).exec_time);
      }
      // Smallest partition within 15% of the best observed time.
      const double best = *std::min_element(exec.begin(), exec.end());
      std::size_t pick = io_nodes.back();
      for (std::size_t i = 0; i < io_nodes.size(); ++i) {
        if (exec[i] <= 1.15 * best) {
          pick = io_nodes[i];
          break;
        }
      }
      std::vector<std::string> row = {
          expt::fmt_u64(static_cast<unsigned long long>(p))};
      for (double e : exec) row.push_back(expt::fmt_s(e));
      row.push_back(expt::fmt_u64(pick) + " I/O nodes");
      table.add_row(row);
    }
    std::printf("SCF-like workload, %s version — execution time (s) vs I/O "
                "partition size:\n%s\n",
                v == apps::ScfVersion::kOriginal ? "unoptimized"
                                                 : "optimized",
                table.str().c_str());
  }
  std::printf(
      "Reading the tables: software optimization shifts the knee left —\n"
      "an optimized code is satisfied by a smaller I/O partition, until\n"
      "the processor count outgrows it (the paper's Figure 2 crossover).\n");
  return 0;
}
