// Checkpoint policies: sync/async write paths, full/incremental data
// selection, the dirty-window model, staging-budget degradation, and
// restart from full+delta chains (including losing the newest delta).
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "ckpt/ckpt.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "metrics/metrics.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace ckpt {
namespace {

Workload small_workload() {
  Workload w;
  w.name = "polunit";
  w.nprocs = 4;
  w.steps = 8;
  w.flops_per_rank_step = 1e6;
  w.io = StepIo::kPrivateRead;
  w.io_bytes_per_rank_step = 96 * 1024;
  w.io_chunk_bytes = 32 * 1024;
  w.prologue_writes_private = true;
  w.state_bytes_per_rank = 64 * 1024;
  w.state_pieces = 4;
  w.backed_state = true;
  return w;
}

Report run_with(fault::InjectionPlan plan, Options opt,
                Workload w = small_workload()) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
  fault::Injector injector(std::move(plan));
  pfs::StripedFs fs(machine, &injector);
  return run(machine, fs, &injector, std::move(w), std::move(opt));
}

TEST(Policy, ParseAndNameRoundTrip) {
  for (const char* n :
       {"sync_full", "sync_incr", "async_full", "async_incr"}) {
    const auto p = Policy::parse(n);
    ASSERT_TRUE(p.has_value()) << n;
    EXPECT_EQ(p->name(), n);
  }
  EXPECT_EQ(Policy::parse("sync_full")->is_sync_full(), true);
  EXPECT_EQ(Policy::parse("async_incr")->is_sync_full(), false);
  EXPECT_FALSE(Policy::parse("").has_value());
  EXPECT_FALSE(Policy::parse("async").has_value());
  EXPECT_FALSE(Policy::parse("sync_full ").has_value());
}

TEST(Policy, DirtyExtentsRotatingWindow) {
  Workload w;
  w.state_bytes_per_rank = 1000;
  w.dirty_fraction_per_step = 0.25;  // window = 250 bytes per step

  auto one = dirty_extents(w, 0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].file_offset, 0u);
  EXPECT_EQ(one[0].length, 250u);

  auto fourth = dirty_extents(w, 3, 4);  // step 4's window
  ASSERT_EQ(fourth.size(), 1u);
  EXPECT_EQ(fourth[0].file_offset, 750u);
  EXPECT_EQ(fourth[0].length, 250u);

  // Steps (3, 5]: starts at 750, wraps — two extents with packed
  // buf_offsets covering 500 bytes total.
  auto wrap = dirty_extents(w, 3, 5);
  ASSERT_EQ(wrap.size(), 2u);
  EXPECT_EQ(wrap[0].file_offset, 750u);
  EXPECT_EQ(wrap[0].length, 250u);
  EXPECT_EQ(wrap[0].buf_offset, 0u);
  EXPECT_EQ(wrap[1].file_offset, 0u);
  EXPECT_EQ(wrap[1].length, 250u);
  EXPECT_EQ(wrap[1].buf_offset, 250u);

  // Four windows lap the whole state: one extent covering everything.
  auto lap = dirty_extents(w, 0, 4);
  ASSERT_EQ(lap.size(), 1u);
  EXPECT_EQ(lap[0].file_offset, 0u);
  EXPECT_EQ(lap[0].length, 1000u);

  EXPECT_TRUE(dirty_extents(w, 3, 3).empty());
}

TEST(Policy, LastDirtyStepMatchesWindows) {
  Workload w;
  w.state_bytes_per_rank = 1000;
  w.dirty_fraction_per_step = 0.25;
  // Byte 100 is only in step 1's window [0, 250) and step 5's (window
  // cycle repeats every 4 steps).
  EXPECT_EQ(last_dirty_step(w, 4, 100), 1);
  EXPECT_EQ(last_dirty_step(w, 5, 100), 5);
  // Byte 800 first appears in step 4's window [750, 1000).
  EXPECT_EQ(last_dirty_step(w, 3, 800), 0);  // never dirtied yet
  EXPECT_EQ(last_dirty_step(w, 4, 800), 4);
  // Full-dirty default: the last executed step always owns every byte.
  Workload full;
  full.state_bytes_per_rank = 1000;
  EXPECT_EQ(last_dirty_step(full, 7, 123), 7);
  EXPECT_EQ(last_dirty_step(full, 0, 123), 0);
}

TEST(Policy, SyncIncrementalSplitsFullsAndDeltas) {
  Workload w = small_workload();
  w.dirty_fraction_per_step = 0.25;  // interval-2 delta = half the state
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.policy = *Policy::parse("sync_incr");
  opt.policy.full_every = 2;
  const Report rep = run_with(fault::InjectionPlan{}, opt, w);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.state_verified);
  // Checkpoints at steps 2 (full), 4 (delta), 6 (full).
  EXPECT_EQ(rep.checkpoints, 3);
  EXPECT_EQ(rep.full_checkpoints, 2);
  EXPECT_EQ(rep.delta_checkpoints, 1);
  const std::uint64_t full_bytes = 4ull * 64 * 1024;
  const std::uint64_t delta_bytes = 4ull * 32 * 1024;
  EXPECT_EQ(rep.delta_bytes, delta_bytes);
  EXPECT_EQ(rep.ckpt_bytes, 2 * full_bytes + delta_bytes);
}

TEST(Policy, RestartReplaysFullPlusDeltaChain) {
  // full_every=4 with interval 2 over 8 steps: full at 2, deltas at 4 and
  // 6 — a crash after the last delta restores full@2 + d@4 + d@6, and the
  // backed-state verification proves every byte matches step 6's pattern.
  Workload w = small_workload();
  w.dirty_fraction_per_step = 0.2;
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.retry.max_attempts = 3;
  opt.policy = *Policy::parse("sync_incr");
  const double t = run_with(fault::InjectionPlan{}, opt, w).exec_time;
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.85 * t, 2.0 * t);
  plan.crash_node(1, 0.85 * t, 2.0 * t);
  const Report rep = run_with(plan, opt, w);
  EXPECT_TRUE(rep.completed);
  EXPECT_GE(rep.restarts, 1);
  EXPECT_TRUE(rep.state_verified)
      << "chain replay must reproduce the checkpointed step exactly";
  EXPECT_GT(rep.delta_checkpoints, 0);
  EXPECT_GT(rep.lost_work, 0.0);
}

TEST(Policy, AsyncOverlapsDrainWithCompute) {
  Options sync_opt;
  sync_opt.ckpt_interval_steps = 2;
  Options async_opt = sync_opt;
  async_opt.policy = *Policy::parse("async_full");
  const Report s = run_with(fault::InjectionPlan{}, sync_opt);
  const Report a = run_with(fault::InjectionPlan{}, async_opt);
  ASSERT_TRUE(s.completed);
  ASSERT_TRUE(a.completed);
  // Every issued checkpoint either committed or was still in flight at
  // job end (then it is dropped, never lost silently).
  EXPECT_EQ(a.checkpoints + a.dropped_checkpoints, 3);
  EXPECT_GT(a.checkpoints, 0);
  // Ranks only block for the staging copy, not the PFS write.
  EXPECT_LT(a.ckpt_overhead, s.ckpt_overhead);
  EXPECT_GT(a.drain_time, 0.0);
}

TEST(Policy, AsyncRestartRestoresVerifiedState) {
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.retry.max_attempts = 3;
  opt.policy = *Policy::parse("async_incr");
  opt.policy.full_every = 2;
  Workload w = small_workload();
  w.dirty_fraction_per_step = 0.25;
  const double t = run_with(fault::InjectionPlan{}, opt, w).exec_time;
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.6 * t, 2.0 * t);
  plan.crash_node(1, 0.6 * t, 2.0 * t);
  const Report rep = run_with(plan, opt, w);
  EXPECT_TRUE(rep.completed);
  EXPECT_GE(rep.restarts, 1);
  EXPECT_TRUE(rep.state_verified)
      << "async commits must only expose fully drained checkpoints";
}

TEST(Policy, StagingBudgetDegradesToBlocking) {
  Options roomy;
  roomy.ckpt_interval_steps = 2;
  roomy.policy = *Policy::parse("async_full");
  Options tight = roomy;
  tight.policy.staging_budget_bytes = 1;  // every snapshot over budget
  const Report r = run_with(fault::InjectionPlan{}, roomy);
  const Report t = run_with(fault::InjectionPlan{}, tight);
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(t.completed);
  // Over budget the rank waits for its own drain: the blocked time must
  // reflect the PFS write again, not just the staging copy.
  EXPECT_GT(t.ckpt_overhead, r.ckpt_overhead);
  // Blocking until the drain finishes also means nothing can be dropped
  // at job end.
  EXPECT_EQ(t.checkpoints, 3);
  EXPECT_EQ(t.dropped_checkpoints, 0);
}

TEST(Policy, ReportsAreDeterministicAcrossIdenticalRuns) {
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.retry.max_attempts = 3;
  opt.policy = *Policy::parse("async_incr");
  Workload w = small_workload();
  w.dirty_fraction_per_step = 0.25;
  const double t = run_with(fault::InjectionPlan{}, opt, w).exec_time;
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.6 * t, 2.0 * t);
  plan.crash_node(1, 0.6 * t, 2.0 * t);
  const Report a = run_with(plan, opt, w);
  const Report b = run_with(plan, opt, w);
  EXPECT_EQ(a.exec_time, b.exec_time);  // bitwise: same event sequence
  EXPECT_EQ(a.ckpt_overhead, b.ckpt_overhead);
  EXPECT_EQ(a.lost_work, b.lost_work);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
  EXPECT_EQ(a.dropped_checkpoints, b.dropped_checkpoints);
  EXPECT_EQ(a.retry.attempts, b.retry.attempts);
}

// Losing the newest delta: a crash kills its in-flight drain (the drain
// ladder is a single attempt), so the chain keeps ending at the previous
// delta and the later rollback falls back one checkpoint further than a
// run whose outage starts after that drain committed.
TEST(Policy, LostNewestDeltaFallsBackToPreviousChain) {
  Workload w = small_workload();
  w.steps = 12;
  w.dirty_fraction_per_step = 0.2;
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.retry.max_attempts = 8;    // foreground rides out short outages...
  opt.retry.backoff_ms = 40.0;   // ...with a long exponential ladder
  opt.drain_retry.max_attempts = 1;  // but a drain dies on first contact
  opt.policy = *Policy::parse("async_incr");
  opt.policy.full_every = 3;  // full at step 2, deltas at 4 and 6

  // Calibrate: the issue/commit timeseries of a fault-free run give the
  // exact in-flight window of delta@6's drain.  The simulator is
  // deterministic, so a faulted run replays identical timing up to the
  // instant the fault plan first intervenes.
  double issue6 = -1.0, commit6 = -1.0;
  {
    metrics::Registry reg;
    metrics::Scope scope(reg);
    const Report calib = run_with(fault::InjectionPlan{}, opt, w);
    ASSERT_TRUE(calib.completed);
    for (const auto& s : reg.timeseries("ckpt.issue").samples()) {
      if (s.value == 6.0) issue6 = s.t;
    }
    for (const auto& s : reg.timeseries("ckpt.commit").samples()) {
      if (s.value == 6.0) commit6 = s.t;
    }
  }
  ASSERT_GT(issue6, 0.0) << "delta@6 must be issued in the calibration run";
  ASSERT_GT(commit6, issue6) << "its drain must take simulated time";

  const double exec = run_with(fault::InjectionPlan{}, opt, w).exec_time;
  // The outage must outlast the foreground ladder (8 tries x 40 ms
  // doubling ~ 5.1 s) so the job really fails and rolls back.
  const double outage = 2.0 * exec + 8.0;
  auto outage_from = [outage](double at) {
    fault::InjectionPlan plan;
    plan.crash_node(0, at, outage);
    plan.crash_node(1, at, outage);
    return plan;
  };

  // Outage opens mid-drain: delta@6 is lost, rollback reaches only
  // full@2 + delta@4.
  const Report lost = run_with(outage_from(0.5 * (issue6 + commit6)), opt, w);
  // Control: outage opens just after the drain committed, rollback
  // reaches full@2 + delta@4 + delta@6.
  const Report kept =
      run_with(outage_from(commit6 + 0.01 * (commit6 - issue6)), opt, w);

  ASSERT_TRUE(lost.completed);
  ASSERT_TRUE(kept.completed);
  ASSERT_GE(lost.restarts, 1) << "the outage must defeat the ladder";
  ASSERT_GE(kept.restarts, 1);
  EXPECT_TRUE(lost.state_verified)
      << "fallback chain must still restore a consistent state";
  EXPECT_TRUE(kept.state_verified);
  EXPECT_GE(lost.dropped_checkpoints, 1)
      << "the killed drain must surface as a dropped checkpoint";
  EXPECT_GT(lost.lost_work, kept.lost_work)
      << "losing the newest delta rolls back one checkpoint further";
}

}  // namespace
}  // namespace ckpt
