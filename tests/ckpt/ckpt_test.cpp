// Checkpoint/restart engine: fault-free behavior, crash recovery with
// state verification, and the lost-work/checkpoint-interval tradeoff.
#include "ckpt/ckpt.hpp"

#include <gtest/gtest.h>

#include "ckpt/workloads.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace ckpt {
namespace {

Workload small_workload() {
  Workload w;
  w.name = "unit";
  w.nprocs = 4;
  w.steps = 8;
  w.flops_per_rank_step = 1e6;
  w.io = StepIo::kPrivateRead;
  w.io_bytes_per_rank_step = 96 * 1024;
  w.io_chunk_bytes = 32 * 1024;
  w.prologue_writes_private = true;
  w.state_bytes_per_rank = 64 * 1024;
  w.state_pieces = 4;
  w.backed_state = true;
  return w;
}

Report run_with(fault::InjectionPlan plan, Options opt,
                Workload w = small_workload()) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
  fault::Injector injector(std::move(plan));
  pfs::StripedFs fs(machine, &injector);
  return run(machine, fs, &injector, std::move(w), std::move(opt));
}

TEST(Ckpt, FaultFreeRunCompletesWithCleanAccounting) {
  Options opt;
  opt.ckpt_interval_steps = 2;
  const Report rep = run_with(fault::InjectionPlan{}, opt);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.state_verified);
  EXPECT_EQ(rep.restarts, 0);
  // 8 steps, every 2, none after the final step: checkpoints at 2, 4, 6.
  EXPECT_EQ(rep.checkpoints, 3);
  EXPECT_EQ(rep.ckpt_bytes, 3ull * 4 * 64 * 1024);
  EXPECT_GT(rep.exec_time, 0.0);
  EXPECT_GT(rep.ckpt_overhead, 0.0);
  EXPECT_EQ(rep.lost_work, 0.0);
  EXPECT_EQ(rep.recovery_time, 0.0);
  EXPECT_EQ(rep.retry.retries, 0u);
}

TEST(Ckpt, IntervalZeroDisablesCheckpointing) {
  Options opt;
  opt.ckpt_interval_steps = 0;
  const Report rep = run_with(fault::InjectionPlan{}, opt);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.checkpoints, 0);
  EXPECT_EQ(rep.ckpt_overhead, 0.0);
}

// Fault-free duration of small_workload() with interval-2 checkpoints:
// crash windows are placed relative to it so they always land mid-run.
double fault_free_exec() {
  static const double t = [] {
    Options opt;
    opt.ckpt_interval_steps = 2;
    return run_with(fault::InjectionPlan{}, opt).exec_time;
  }();
  return t;
}

// Both servers crash at ~40% of the fault-free run (after the first
// committed checkpoint) and stay down past its end, so no request
// survives until the reboot edge.
fault::InjectionPlan mid_run_outage() {
  const double t = fault_free_exec();
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.4 * t, 2.0 * t);
  plan.crash_node(1, 0.4 * t, 2.0 * t);
  return plan;
}

TEST(Ckpt, CrashForcesRestartFromVerifiedCheckpoint) {
  // A long outage mid-run: whichever rank is in its step I/O exhausts the
  // ladder, everyone agrees to fail, the job waits out the reboot and
  // restores from the last committed checkpoint.
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.retry.max_attempts = 3;
  const Report rep = run_with(mid_run_outage(), opt);
  EXPECT_TRUE(rep.completed);
  EXPECT_GE(rep.restarts, 1);
  EXPECT_TRUE(rep.state_verified)
      << "restored state must match the checkpointed step's pattern";
  EXPECT_GT(rep.lost_work, 0.0);
  EXPECT_GT(rep.recovery_time, 0.0);
  EXPECT_GT(rep.retry.exhausted, 0u);
}

TEST(Ckpt, CheckpointingBoundsLostWorkUnderCrashes) {
  const fault::InjectionPlan plan = mid_run_outage();
  Options with_ckpt;
  with_ckpt.ckpt_interval_steps = 2;
  with_ckpt.retry.max_attempts = 3;
  Options without;
  without.ckpt_interval_steps = 0;
  without.retry.max_attempts = 3;
  const Report a = run_with(plan, with_ckpt);
  const Report b = run_with(plan, without);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GT(b.lost_work, a.lost_work)
      << "without checkpoints every crash rolls back to step 0";
}

TEST(Ckpt, BoundedFanInPreservesCheckpointSemantics) {
  // Options::io_fan_in routes the checkpoint collectives over the leader
  // topology (aggregator two-phase) — the accounting and the verified
  // restored state must match the flat shape exactly.
  Options flat;
  flat.ckpt_interval_steps = 2;
  Options bounded = flat;
  bounded.io_fan_in = 2;
  const Report a = run_with(fault::InjectionPlan{}, flat);
  const Report b = run_with(fault::InjectionPlan{}, bounded);
  ASSERT_TRUE(b.completed);
  EXPECT_TRUE(b.state_verified);
  EXPECT_EQ(b.checkpoints, a.checkpoints);
  EXPECT_EQ(b.ckpt_bytes, a.ckpt_bytes);
}

TEST(Ckpt, BoundedFanInSurvivesCrashRecovery) {
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.retry.max_attempts = 3;
  opt.io_fan_in = 2;
  const Report rep = run_with(mid_run_outage(), opt);
  EXPECT_TRUE(rep.completed);
  EXPECT_GE(rep.restarts, 1);
  EXPECT_TRUE(rep.state_verified)
      << "hierarchical restore must replay the same bytes";
}

TEST(Ckpt, BoundedFanInCapsAsyncDrains) {
  // io_fan_in = 1 serializes the background drains through the slot
  // pool; the job must still complete with every checkpoint committed.
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.policy.write = Policy::Write::kAsync;
  opt.io_fan_in = 1;
  const Report rep = run_with(fault::InjectionPlan{}, opt);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.state_verified);
  EXPECT_EQ(rep.dropped_checkpoints, 0);
  EXPECT_EQ(rep.checkpoints, 3);
}

// state_bytes_per_rank not divisible by state_pieces: the interleaved
// layout spreads the remainder across pieces, so neighbouring ranks'
// extents must not overlap — the restart verification would catch the
// corruption as a pattern mismatch.
TEST(Ckpt, NonDivisibleStateLayoutRestoresVerifiedState) {
  Workload w = small_workload();
  w.state_bytes_per_rank = 64 * 1024 + 13;
  w.state_pieces = 5;
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.retry.max_attempts = 3;
  const double t = run_with(fault::InjectionPlan{}, opt, w).exec_time;
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.4 * t, 2.0 * t);
  plan.crash_node(1, 0.4 * t, 2.0 * t);
  const Report rep = run_with(plan, opt, w);
  EXPECT_TRUE(rep.completed);
  EXPECT_GE(rep.restarts, 1);
  EXPECT_TRUE(rep.state_verified)
      << "remainder handling must keep per-rank extents disjoint";
}

TEST(Ckpt, PrologueOnlyRunsWhenWorkloadAsksForIt) {
  Options opt;
  opt.ckpt_interval_steps = 0;
  Workload without = small_workload();
  without.prologue_writes_private = false;  // files are pre-existing input
  const Report a = run_with(fault::InjectionPlan{}, opt);
  const Report b = run_with(fault::InjectionPlan{}, opt, without);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  // Wall time is no proxy here (the prologue write warms server caches),
  // but the issued-operation count shows the prologue was skipped.
  EXPECT_LT(b.retry.attempts, a.retry.attempts)
      << "without the flag no prologue writes may be issued";
}

TEST(Ckpt, ReplicatedCheckpointDoublesVolume) {
  Options opt;
  opt.ckpt_interval_steps = 4;
  opt.replicate_checkpoint = true;
  const Report rep = run_with(fault::InjectionPlan{}, opt);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.checkpoints, 1);  // step 4 only (8 is the last step)
  EXPECT_EQ(rep.ckpt_bytes, 2ull * 4 * 64 * 1024);
}

TEST(Ckpt, BtioWorkloadRunsCollectiveDumps) {
  apps::BtioConfig cfg;
  cfg.nprocs = 4;
  cfg.dumps = 6;
  cfg.scale = 1.0;
  Workload w = btio_workload(cfg);
  w.steps = 6;
  w.backed_state = true;
  w.state_pieces = 4;
  w.state_bytes_per_rank = 64 * 1024;  // keep the unit test light
  w.io_bytes_per_rank_step = 128 * 1024;
  Options opt;
  opt.ckpt_interval_steps = 2;
  const Report rep = run_with(fault::InjectionPlan{}, opt, w);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.state_verified);
  EXPECT_EQ(rep.checkpoints, 2);
}

TEST(Ckpt, ScfWorkloadAdapterDerivesStepIo) {
  apps::ScfConfig cfg;
  cfg.nprocs = 8;
  cfg.iterations = 10;
  const Workload w = scf11_workload(cfg);
  EXPECT_EQ(w.nprocs, 8);
  EXPECT_EQ(w.steps, 9);
  EXPECT_EQ(w.io, StepIo::kPrivateRead);
  EXPECT_TRUE(w.prologue_writes_private);
  EXPECT_GT(w.io_bytes_per_rank_step, 0u);
  EXPECT_GT(w.state_bytes_per_rank, 0u);
}

// -- correlated failure domains + health-aware recovery --------------------

// 4 I/O nodes behind 2 rack switches (fan-in 2): domain 0 = {0, 1},
// domain 1 = {2, 3}.
hw::MachineConfig domain_config() {
  hw::MachineConfig cfg = hw::MachineConfig::paragon_small(4, 4);
  cfg.io_nodes_per_switch = 2;
  return cfg;
}

struct DomainRun {
  Report rep;
  std::vector<std::uint32_t> ckpt_servers;
  std::vector<std::uint32_t> mirror_servers;
};

DomainRun run_domains(fault::InjectionPlan plan, Options opt) {
  simkit::Engine eng;
  hw::Machine machine(eng, domain_config());
  fault::Injector injector(std::move(plan));
  pfs::StripedFs fs(machine, &injector);
  DomainRun out;
  out.rep = run(machine, fs, &injector, small_workload(), std::move(opt));
  // run() creates the checkpoint primary first, then the mirror.
  out.ckpt_servers = fs.stripe_map(0).server_list();
  if (fs.file_name(1) == "ckpt.unit.mirror") {
    out.mirror_servers = fs.stripe_map(1).server_list();
  }
  return out;
}

Options domain_options(Options::Placement placement) {
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.retry.max_attempts = 3;
  opt.replicate_checkpoint = true;
  opt.placement = placement;
  return opt;
}

// Fault-free duration on the domain machine: the scrubbing outage is
// placed after the first committed checkpoint and ends before the
// restarted job needs the scrubbed nodes again.
double domain_fault_free_exec() {
  static const double t =
      run_domains(fault::InjectionPlan{},
                  domain_options(Options::Placement::kOtherDomain))
          .rep.exec_time;
  return t;
}

// Rack switch 0 dies at ~45% of the fault-free run and its nodes reboot
// with scrubbed disks (a power event, not a transient hiccup).
fault::InjectionPlan rack0_scrub_outage() {
  const double t = domain_fault_free_exec();
  fault::InjectionPlan plan;
  plan.outage_domain(0, {0, 1}, 0.45 * t, 1.5 * t, /*scrub=*/true);
  return plan;
}

TEST(Ckpt, SameDomainPlacementLosesScrubbedCheckpoint) {
  // Primary AND mirror behind rack switch 0: one scrubbing power event
  // destroys every copy of the committed checkpoint, and the job has to
  // restart from step 0.
  const DomainRun dr = run_domains(rack0_scrub_outage(),
                                   domain_options(Options::Placement::kSameDomain));
  for (const std::uint32_t s : dr.ckpt_servers) EXPECT_LT(s, 2u);
  for (const std::uint32_t s : dr.mirror_servers) EXPECT_LT(s, 2u);
  EXPECT_TRUE(dr.rep.completed);
  EXPECT_TRUE(dr.rep.state_verified);
  EXPECT_GE(dr.rep.restarts, 1);
  EXPECT_GE(dr.rep.lost_checkpoints, 1)
      << "both copies sat in the scrubbed domain";
}

TEST(Ckpt, OtherDomainMirrorSurvivesScrubAndHealthAwareRepair) {
  // Mirror behind the other rack switch: the same power event destroys
  // only the primary, the restore reads the mirror, and health-aware
  // recovery re-mirrors the scrubbed copy before computing on.
  Options opt = domain_options(Options::Placement::kOtherDomain);
  opt.health_aware = true;
  const DomainRun dr = run_domains(rack0_scrub_outage(), opt);
  for (const std::uint32_t s : dr.ckpt_servers) EXPECT_LT(s, 2u);
  for (const std::uint32_t s : dr.mirror_servers) EXPECT_GE(s, 2u);
  EXPECT_TRUE(dr.rep.completed);
  EXPECT_TRUE(dr.rep.state_verified)
      << "the mirror must hold the committed step's bytes";
  EXPECT_GE(dr.rep.restarts, 1);
  EXPECT_EQ(dr.rep.lost_checkpoints, 0)
      << "the other-domain mirror survived the burst";
  EXPECT_GE(dr.rep.divergences_repaired, 1)
      << "the scrubbed primary must be re-mirrored after the restore";
}

TEST(Ckpt, PlacementDefaultsMatchPrePlacementEngine) {
  // kStriped placement and health_aware=false are the defaults: a run on
  // a domain machine must produce the exact same report as before the
  // robustness features existed (whole-partition striping, no routing).
  Options opt;
  opt.ckpt_interval_steps = 2;
  opt.retry.max_attempts = 3;
  const DomainRun dr = run_domains(fault::InjectionPlan{}, opt);
  EXPECT_TRUE(dr.rep.completed);
  EXPECT_EQ(dr.ckpt_servers.size(), 4u) << "default stays whole-partition";
  EXPECT_EQ(dr.rep.lost_checkpoints, 0);
  EXPECT_EQ(dr.rep.divergences_repaired, 0);
  EXPECT_EQ(dr.rep.hedged_reads, 0u);
}

TEST(Ckpt, YoungDalyInterval) {
  // Young's first-order form: sqrt(2 * C * MTBF).
  EXPECT_DOUBLE_EQ(young_interval(2.0, 100.0), 20.0);
  // Daly's refinement stays below Young (it subtracts C) but within a few
  // percent of it when C << MTBF, and converges to Young as C/M -> 0.
  const double young = young_interval(2.0, 100.0);
  const double daly = young_daly_interval(2.0, 100.0);
  EXPECT_LT(daly, young);
  EXPECT_GT(daly, 0.9 * young);
  EXPECT_NEAR(young_daly_interval(1e-6, 100.0),
              young_interval(1e-6, 100.0), 1e-5);
  // Once checkpointing costs more than it saves, the interval pins to M.
  EXPECT_DOUBLE_EQ(young_daly_interval(500.0, 100.0), 100.0);
  // Degenerate inputs are harmless.
  EXPECT_DOUBLE_EQ(young_daly_interval(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(young_daly_interval(2.0, 0.0), 0.0);
}

}  // namespace
}  // namespace ckpt
