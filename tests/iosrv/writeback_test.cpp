// Tests for the bounded dirty-buffer pool: watermark geometry, stall
// behaviour under a burst, drain-to-low-watermark semantics, forced
// file drains, and writer-error accounting.
#include "iosrv/writeback.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "simkit/engine.hpp"

namespace {

iosrv::DirtyBlock block(std::uint64_t file, std::uint64_t b) {
  return {{file, b}, b * 4096, 4096};
}

iosrv::WritebackConfig pool_cfg(std::uint32_t blocks) {
  iosrv::WritebackConfig cfg;
  cfg.mode = iosrv::WritebackMode::kPool;
  cfg.pool_blocks = blocks;
  return cfg;
}

TEST(WritebackPool, WatermarksDeriveFromPoolSize) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(eng, pool_cfg(8), 64,
                            [](const iosrv::DirtyBlock&) -> simkit::Task<void> {
                              co_return;
                            });
  EXPECT_EQ(pool.pool_blocks(), 8u);
  EXPECT_EQ(pool.high_watermark_blocks(), 6u);  // ceil(0.75 * 8)
  EXPECT_EQ(pool.low_watermark_blocks(), 2u);   // floor(0.25 * 8)
}

// A burst of 20 writes through an 8-block pool: occupancy never exceeds
// the pool, the overflow stalls, the drainer wakes once the high
// watermark is crossed and stops at the low watermark — everything
// below it stays buffered (that is what a write-behind cache is).
TEST(WritebackPool, BurstStallsAndDrainsToLowWatermark) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(8), 64,
      [&eng](const iosrv::DirtyBlock&) -> simkit::Task<void> {
        co_await eng.delay(0.01);
      });
  eng.spawn([](simkit::Engine&, iosrv::WritebackPool& p) -> simkit::Task<void> {
    for (std::uint64_t i = 0; i < 20; ++i) co_await p.submit(block(1, i));
  }(eng, pool));
  eng.run();

  EXPECT_LE(pool.max_dirty(), 8u);
  EXPECT_GT(pool.stalls(), 0u);
  EXPECT_GT(pool.stall_time(), 0.0);
  EXPECT_GE(pool.drainer_wakes(), 1u);
  EXPECT_LE(pool.dirty_count(), pool.low_watermark_blocks());
  EXPECT_EQ(pool.drained(), 20u - pool.dirty_count());
}

TEST(WritebackPool, BelowHighWatermarkNothingDrains) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(16), 64,
      [&eng](const iosrv::DirtyBlock&) -> simkit::Task<void> {
        co_await eng.delay(0.01);
      });
  eng.spawn([](simkit::Engine&, iosrv::WritebackPool& p) -> simkit::Task<void> {
    for (std::uint64_t i = 0; i < 3; ++i) co_await p.submit(block(1, i));
  }(eng, pool));
  eng.run();

  EXPECT_EQ(pool.drained(), 0u);
  EXPECT_EQ(pool.drainer_wakes(), 0u);
  EXPECT_EQ(pool.dirty_count(), 3u);
  EXPECT_TRUE(pool.is_dirty({1, 0}));
}

TEST(WritebackPool, DrainFileForcesEverythingOut) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(16), 64,
      [&eng](const iosrv::DirtyBlock&) -> simkit::Task<void> {
        co_await eng.delay(0.01);
      });
  eng.spawn([](simkit::Engine&, iosrv::WritebackPool& p) -> simkit::Task<void> {
    for (std::uint64_t i = 0; i < 3; ++i) co_await p.submit(block(1, i));
    co_await p.drain_file(1);
  }(eng, pool));
  eng.run();

  EXPECT_EQ(pool.drained(), 3u);
  EXPECT_EQ(pool.dirty_count(), 0u);
  EXPECT_FALSE(pool.is_dirty({1, 0}));
}

TEST(WritebackPool, DrainFileOfCleanFileIsImmediate) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(eng, pool_cfg(16), 64,
                            [](const iosrv::DirtyBlock&) -> simkit::Task<void> {
                              co_return;
                            });
  bool done = false;
  eng.spawn([](simkit::Engine& e, iosrv::WritebackPool& p,
               bool& done) -> simkit::Task<void> {
    co_await p.drain_file(42);
    done = true;
    EXPECT_DOUBLE_EQ(e.now(), 0.0);
  }(eng, pool, done));
  eng.run();
  EXPECT_TRUE(done);
}

// The legacy flusher could not fail; the pool swallows writer
// exceptions, counts them, and still completes the block so a forced
// drain cannot hang on a bad arm.
TEST(WritebackPool, WriterErrorsAreCountedNotFatal) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(16), 64,
      [&eng](const iosrv::DirtyBlock& b) -> simkit::Task<void> {
        co_await eng.delay(0.01);
        if (b.key.block == 1) throw std::runtime_error("arm fault");
      });
  eng.spawn([](simkit::Engine&, iosrv::WritebackPool& p) -> simkit::Task<void> {
    for (std::uint64_t i = 0; i < 3; ++i) co_await p.submit(block(1, i));
    co_await p.drain_file(1);
  }(eng, pool));
  eng.run();

  EXPECT_EQ(pool.write_errors(), 1u);
  EXPECT_EQ(pool.drained(), 3u);
  EXPECT_EQ(pool.dirty_count(), 0u);
}

}  // namespace
