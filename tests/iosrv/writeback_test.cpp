// Tests for the bounded dirty-buffer pool: watermark geometry, stall
// behaviour under a burst, drain-to-low-watermark semantics, forced
// file drains, and writer-error accounting.
#include "iosrv/writeback.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "simkit/engine.hpp"

namespace {

iosrv::DirtyBlock block(std::uint64_t file, std::uint64_t b) {
  return {{file, b}, b * 4096, 4096};
}

iosrv::WritebackConfig pool_cfg(std::uint32_t blocks) {
  iosrv::WritebackConfig cfg;
  cfg.mode = iosrv::WritebackMode::kPool;
  cfg.pool_blocks = blocks;
  return cfg;
}

TEST(WritebackPool, WatermarksDeriveFromPoolSize) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(eng, pool_cfg(8), 64,
                            [](const iosrv::DirtyBlock&) -> simkit::Task<void> {
                              co_return;
                            });
  EXPECT_EQ(pool.pool_blocks(), 8u);
  EXPECT_EQ(pool.high_watermark_blocks(), 6u);  // ceil(0.75 * 8)
  EXPECT_EQ(pool.low_watermark_blocks(), 2u);   // floor(0.25 * 8)
}

// A burst of 20 writes through an 8-block pool: occupancy never exceeds
// the pool, the overflow stalls, the drainer wakes once the high
// watermark is crossed and stops at the low watermark — everything
// below it stays buffered (that is what a write-behind cache is).
TEST(WritebackPool, BurstStallsAndDrainsToLowWatermark) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(8), 64,
      [&eng](const iosrv::DirtyBlock&) -> simkit::Task<void> {
        co_await eng.delay(0.01);
      });
  eng.spawn([](simkit::Engine&, iosrv::WritebackPool& p) -> simkit::Task<void> {
    for (std::uint64_t i = 0; i < 20; ++i) co_await p.submit(block(1, i));
  }(eng, pool));
  eng.run();

  EXPECT_LE(pool.max_dirty(), 8u);
  EXPECT_GT(pool.stalls(), 0u);
  EXPECT_GT(pool.stall_time(), 0.0);
  EXPECT_GE(pool.drainer_wakes(), 1u);
  EXPECT_LE(pool.dirty_count(), pool.low_watermark_blocks());
  EXPECT_EQ(pool.drained(), 20u - pool.dirty_count());
}

TEST(WritebackPool, BelowHighWatermarkNothingDrains) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(16), 64,
      [&eng](const iosrv::DirtyBlock&) -> simkit::Task<void> {
        co_await eng.delay(0.01);
      });
  eng.spawn([](simkit::Engine&, iosrv::WritebackPool& p) -> simkit::Task<void> {
    for (std::uint64_t i = 0; i < 3; ++i) co_await p.submit(block(1, i));
  }(eng, pool));
  eng.run();

  EXPECT_EQ(pool.drained(), 0u);
  EXPECT_EQ(pool.drainer_wakes(), 0u);
  EXPECT_EQ(pool.dirty_count(), 3u);
  EXPECT_TRUE(pool.is_dirty({1, 0}));
}

TEST(WritebackPool, DrainFileForcesEverythingOut) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(16), 64,
      [&eng](const iosrv::DirtyBlock&) -> simkit::Task<void> {
        co_await eng.delay(0.01);
      });
  eng.spawn([](simkit::Engine&, iosrv::WritebackPool& p) -> simkit::Task<void> {
    for (std::uint64_t i = 0; i < 3; ++i) co_await p.submit(block(1, i));
    co_await p.drain_file(1);
  }(eng, pool));
  eng.run();

  EXPECT_EQ(pool.drained(), 3u);
  EXPECT_EQ(pool.dirty_count(), 0u);
  EXPECT_FALSE(pool.is_dirty({1, 0}));
}

TEST(WritebackPool, DrainFileOfCleanFileIsImmediate) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(eng, pool_cfg(16), 64,
                            [](const iosrv::DirtyBlock&) -> simkit::Task<void> {
                              co_return;
                            });
  bool done = false;
  eng.spawn([](simkit::Engine& e, iosrv::WritebackPool& p,
               bool& done) -> simkit::Task<void> {
    co_await p.drain_file(42);
    done = true;
    EXPECT_DOUBLE_EQ(e.now(), 0.0);
  }(eng, pool, done));
  eng.run();
  EXPECT_TRUE(done);
}

// A writer failure still completes the block (a forced drain cannot
// hang on a bad arm), but the error is recorded per file and rethrown
// to the drain_file() waiter: a flush that lost data must not report
// success.  The record is consumed by the first waiter — a second
// drain finds the file clean and healthy.
TEST(WritebackPool, WriterErrorsSurfaceToTheDrainWaiter) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(16), 64,
      [&eng](const iosrv::DirtyBlock& b) -> simkit::Task<void> {
        co_await eng.delay(0.01);
        if (b.key.block == 1) throw std::runtime_error("arm fault");
      });
  bool threw = false;
  bool second_clean = false;
  eng.spawn([](simkit::Engine&, iosrv::WritebackPool& p, bool& threw,
               bool& second_clean) -> simkit::Task<void> {
    for (std::uint64_t i = 0; i < 3; ++i) co_await p.submit(block(1, i));
    try {
      co_await p.drain_file(1);
    } catch (const std::runtime_error& e) {
      threw = std::string(e.what()) == "arm fault";
    }
    co_await p.drain_file(1);  // record consumed: must not rethrow
    second_clean = true;
  }(eng, pool, threw, second_clean));
  eng.run();

  EXPECT_TRUE(threw);
  EXPECT_TRUE(second_clean);
  EXPECT_EQ(pool.write_errors(), 1u);
  EXPECT_EQ(pool.drained(), 2u);  // the failed block is not "drained"
  EXPECT_EQ(pool.dirty_count(), 0u);
  EXPECT_EQ(pool.failed_blocks(1), 0u);  // consumed by the waiter
}

// Regression: two concurrent writes to the same block while the pool is
// full.  The first stalls in submit() before inserting its key, the
// second passes the caller's absorb check and stalls too; both used to
// queue, double-counting the file's dirty blocks, and the count never
// returned to zero — every later drain_file() hung forever.
TEST(WritebackPool, DuplicateSubmitAfterStallIsAbsorbed) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(2), 64,
      [&eng](const iosrv::DirtyBlock&) -> simkit::Task<void> {
        co_await eng.delay(0.01);
      });
  bool drained_ok = false;
  auto writer = [](simkit::Engine&,
                   iosrv::WritebackPool& p) -> simkit::Task<void> {
    co_await p.submit(block(7, 42));
  };
  eng.spawn([](simkit::Engine& e, iosrv::WritebackPool& p,
               bool& ok) -> simkit::Task<void> {
    // Fill the 2-block pool so both duplicate submitters stall.
    co_await p.submit(block(1, 0));
    co_await p.submit(block(1, 1));
    co_await e.delay(0.1);  // let the duplicates resolve
    co_await p.drain_file(7);
    co_await p.drain_file(1);
    ok = true;
  }(eng, pool, drained_ok));
  eng.spawn(writer(eng, pool));
  eng.spawn(writer(eng, pool));
  eng.run();

  EXPECT_TRUE(drained_ok);
  EXPECT_EQ(pool.dirty_count(), 0u);
}

// A forced drain is per file: the fsync'ing tenant's blocks go out, the
// other tenant's stay buffered and keep absorbing overwrites.
TEST(WritebackPool, DrainFileLeavesOtherFilesBuffered) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(16), 64,
      [&eng](const iosrv::DirtyBlock&) -> simkit::Task<void> {
        co_await eng.delay(0.01);
      });
  eng.spawn([](simkit::Engine&, iosrv::WritebackPool& p) -> simkit::Task<void> {
    for (std::uint64_t i = 0; i < 3; ++i) co_await p.submit(block(1, i));
    for (std::uint64_t i = 0; i < 3; ++i) co_await p.submit(block(2, i));
    co_await p.drain_file(1);
    EXPECT_FALSE(p.is_dirty({1, 0}));
    EXPECT_TRUE(p.is_dirty({2, 0}));
  }(eng, pool));
  eng.run();

  EXPECT_EQ(pool.drained(), 3u);
  EXPECT_EQ(pool.dirty_count(), 3u);  // file 2 still buffered
}

// Crash semantics: invalidation empties the pool, reports the loss
// sorted by (file, block), releases stalled submitters, and leaves the
// pool usable.
TEST(WritebackPool, InvalidateAllReportsSortedLossAndReleasesStalls) {
  simkit::Engine eng;
  iosrv::WritebackPool pool(
      eng, pool_cfg(2), 64,
      [&eng](const iosrv::DirtyBlock&) -> simkit::Task<void> {
        co_await eng.delay(1000.0);  // drain never completes in time
      });
  bool third_submitted = false;
  iosrv::LossReport lr;
  eng.spawn([](simkit::Engine&, iosrv::WritebackPool& p,
               bool& done) -> simkit::Task<void> {
    co_await p.submit(block(2, 5));
    co_await p.submit(block(1, 9));
    co_await p.submit(block(1, 3));  // stalls: pool is full
    done = true;
  }(eng, pool, third_submitted));
  eng.spawn([](simkit::Engine& e, iosrv::WritebackPool& p,
               iosrv::LossReport& lr) -> simkit::Task<void> {
    co_await e.delay(0.5);
    lr = p.invalidate_all();
  }(eng, pool, lr));
  eng.run();

  ASSERT_EQ(lr.blocks, 2u);
  EXPECT_EQ(lr.bytes, 2u * 4096u);
  EXPECT_EQ(lr.lost[0].key.file, 1u);  // sorted: (1,9) before (2,5)
  EXPECT_EQ(lr.lost[0].key.block, 9u);
  EXPECT_EQ(lr.lost[1].key.file, 2u);
  EXPECT_TRUE(third_submitted);  // stalled submitter released
  // The released block buffered normally after the invalidation and the
  // still-running drainer eventually wrote it out: the pool stays
  // usable across a crash.
  EXPECT_EQ(pool.dirty_count(), 0u);
  EXPECT_EQ(pool.drained(), 1u);
  EXPECT_EQ(pool.lost_blocks(), 2u);
  EXPECT_EQ(pool.invalidations(), 1u);
}

}  // namespace
