// Tests for the iosrv cache-replacement policies: the BlockKeyHash
// collision regression, hand-computed ARC traces (including the
// write-aware deviations documented in cache_policy.hpp), and the
// dirty-pinning / eviction-listener contracts shared with LRU.
#include "iosrv/cache_policy.hpp"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

namespace {

iosrv::BlockKey key(std::uint64_t f, std::uint64_t b) { return {f, b}; }

// The historical hash was `(file << 40) ^ block`: (f, 0) and
// (0, f << 40) collided outright for every f < 2^24, so a server
// touching many files at block 0 chained every entry into one bucket.
// The two-round splitmix replacement must keep that family distinct.
TEST(BlockKeyHash, HistoricalShiftXorFamilyStaysDistinct) {
  iosrv::BlockKeyHash h;
  std::unordered_set<std::size_t> seen;
  constexpr std::uint64_t kFiles = 4096;
  for (std::uint64_t f = 1; f <= kFiles; ++f) {
    seen.insert(h(key(f, 0)));
    seen.insert(h(key(0, f << 40)));
  }
  EXPECT_EQ(seen.size(), 2 * kFiles);
}

TEST(BlockKeyHash, SequentialBlocksOfOneFileStayDistinct) {
  iosrv::BlockKeyHash h;
  std::unordered_set<std::size_t> seen;
  for (std::uint64_t b = 0; b < 4096; ++b) seen.insert(h(key(9, b)));
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(MakePolicy, FactoryReturnsRequestedPolicy) {
  EXPECT_EQ(iosrv::make_policy(iosrv::PolicyKind::kLru, 4)->name(), "lru");
  EXPECT_EQ(iosrv::make_policy(iosrv::PolicyKind::kArc, 4)->name(), "arc");
}

// ------------------------------------------------------------------ ARC --

// Hand-computed trace at capacity 2 covering the textbook moves: T1
// insert, read-hit promotion to T2, demotion to B1, ghost adaptation of
// p (twice: once from lookup, once from the re-insert), and B2 demotion
// when the ghost re-enters T2.
TEST(ArcPolicy, HandTraceAtCapacityTwo) {
  iosrv::ArcPolicy arc(2);
  EXPECT_TRUE(arc.insert(key(1, 1), false));
  EXPECT_TRUE(arc.insert(key(1, 2), false));
  EXPECT_EQ(arc.t1_size(), 2u);

  // Clean inserts carry a read reference, so the first hit proves reuse.
  EXPECT_TRUE(arc.lookup(key(1, 1)));
  EXPECT_EQ(arc.t1_size(), 1u);
  EXPECT_EQ(arc.t2_size(), 1u);

  // Capacity forces T1's LRU (block 2) into the B1 ghost list.
  EXPECT_TRUE(arc.insert(key(1, 3), false));
  EXPECT_FALSE(arc.contains(key(1, 2)));
  EXPECT_EQ(arc.b1_size(), 1u);
  EXPECT_EQ(arc.evictions(), 1u);

  // Ghost lookup: a miss, but it steers p toward T1 (B1: +1).
  EXPECT_FALSE(arc.lookup(key(1, 2)));
  EXPECT_DOUBLE_EQ(arc.p(), 1.0);

  // Re-materializing the ghost adapts again (+1, saturating at c) and
  // lands the block in T2, demoting T2's LRU (block 1) to B2.
  EXPECT_TRUE(arc.insert(key(1, 2), false));
  EXPECT_DOUBLE_EQ(arc.p(), 2.0);
  EXPECT_EQ(arc.t1_size(), 1u);
  EXPECT_EQ(arc.t2_size(), 1u);
  EXPECT_EQ(arc.b1_size(), 0u);
  EXPECT_EQ(arc.b2_size(), 1u);
  EXPECT_TRUE(arc.contains(key(1, 2)));
  EXPECT_TRUE(arc.contains(key(1, 3)));
  EXPECT_FALSE(arc.contains(key(1, 1)));
  EXPECT_EQ(arc.hits(), 1u);
  EXPECT_EQ(arc.misses(), 1u);
}

// Write-aware rule 1: dirty inserts never earn frequency.  A dirty
// refresh stays in its list, the FIRST read hit only refreshes (the
// stream draining its own write-behind data), and T2 membership takes a
// second read reference.
TEST(ArcPolicy, DirtyInsertTakesTwoReadHitsToReachT2) {
  iosrv::ArcPolicy arc(4);
  EXPECT_TRUE(arc.insert(key(7, 1), true));
  EXPECT_TRUE(arc.insert(key(7, 1), true));  // absorbed rewrite
  EXPECT_EQ(arc.t2_size(), 0u);

  EXPECT_TRUE(arc.lookup(key(7, 1)));  // first read: refresh only
  EXPECT_EQ(arc.t1_size(), 1u);
  EXPECT_EQ(arc.t2_size(), 0u);

  EXPECT_TRUE(arc.lookup(key(7, 1)));  // second read: proven reuse
  EXPECT_EQ(arc.t1_size(), 0u);
  EXPECT_EQ(arc.t2_size(), 1u);
}

TEST(ArcPolicy, CleanInsertPromotesOnFirstReadHit) {
  iosrv::ArcPolicy arc(4);
  EXPECT_TRUE(arc.insert(key(7, 1), false));
  EXPECT_TRUE(arc.lookup(key(7, 1)));
  EXPECT_EQ(arc.t2_size(), 1u);
}

// Write-aware rule 2: a ghost with no read history (the block was
// written, never demand-read, then evicted) neither adapts p nor earns
// T2 re-entry — it is forgotten and re-inserted brand-new into T1.
TEST(ArcPolicy, NeverReadGhostNeitherAdaptsNorEntersT2) {
  iosrv::ArcPolicy arc(2);
  EXPECT_TRUE(arc.insert(key(1, 1), true));  // write-originated
  arc.mark_clean(key(1, 1));
  EXPECT_TRUE(arc.insert(key(1, 2), false));
  EXPECT_TRUE(arc.lookup(key(1, 2)));         // block 2 -> T2
  EXPECT_TRUE(arc.insert(key(1, 3), false));  // evicts block 1 -> B1
  EXPECT_EQ(arc.b1_size(), 1u);

  EXPECT_FALSE(arc.lookup(key(1, 1)));  // never-read ghost: no signal
  EXPECT_DOUBLE_EQ(arc.p(), 0.0);

  EXPECT_TRUE(arc.insert(key(1, 1), false));  // re-enters T1, not T2
  EXPECT_DOUBLE_EQ(arc.p(), 0.0);
  EXPECT_EQ(arc.t1_size(), 1u);
  EXPECT_EQ(arc.t2_size(), 1u);
  EXPECT_EQ(arc.b1_size(), 1u);
  EXPECT_TRUE(arc.contains(key(1, 1)));
}

// Write-aware rule 3: a dirty rewrite of a read-referenced ghost also
// forgets the history — a rewrite invalidates whatever reuse the old
// data had shown.
TEST(ArcPolicy, DirtyRewriteOfGhostForgetsReadHistory) {
  iosrv::ArcPolicy arc(2);
  EXPECT_TRUE(arc.insert(key(1, 1), false));
  EXPECT_TRUE(arc.insert(key(1, 2), false));
  EXPECT_TRUE(arc.lookup(key(1, 1)));         // block 1 -> T2
  EXPECT_TRUE(arc.insert(key(1, 3), false));  // block 2 -> B1 (read ghost)

  EXPECT_TRUE(arc.insert(key(1, 2), true));  // rewrite of the ghost
  EXPECT_DOUBLE_EQ(arc.p(), 0.0);
  EXPECT_TRUE(arc.is_dirty(key(1, 2)));
  EXPECT_EQ(arc.t1_size(), 1u);
  EXPECT_EQ(arc.t2_size(), 1u);
  EXPECT_EQ(arc.b1_size(), 1u);
}

// The dirty-pinning contract shared with LRU: insert fails rather than
// evicting a pinned block, and recovers once something is clean.
TEST(ArcPolicy, InsertFailsWhenEverythingResidentIsPinned) {
  iosrv::ArcPolicy arc(2);
  EXPECT_TRUE(arc.insert(key(1, 1), true));
  EXPECT_TRUE(arc.insert(key(1, 2), true));
  EXPECT_FALSE(arc.insert(key(1, 3), false));
  EXPECT_EQ(arc.size(), 2u);

  arc.mark_clean(key(1, 1));
  EXPECT_TRUE(arc.insert(key(1, 3), false));
  EXPECT_TRUE(arc.contains(key(1, 3)));
  EXPECT_FALSE(arc.contains(key(1, 1)));
}

TEST(ArcPolicy, EvictListenerSeesDemotionsToGhost) {
  iosrv::ArcPolicy arc(2);
  std::vector<iosrv::BlockKey> evicted;
  arc.set_evict_listener(
      [&](const iosrv::BlockKey& k) { evicted.push_back(k); });
  EXPECT_TRUE(arc.insert(key(4, 1), false));
  EXPECT_TRUE(arc.insert(key(4, 2), false));
  EXPECT_TRUE(arc.insert(key(4, 3), false));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], key(4, 1));
}

// ------------------------------------------------------------------ LRU --

TEST(LruPolicy, EvictListenerSeesTheLruVictim) {
  iosrv::LruPolicy lru(2);
  std::vector<iosrv::BlockKey> evicted;
  lru.set_evict_listener(
      [&](const iosrv::BlockKey& k) { evicted.push_back(k); });
  EXPECT_TRUE(lru.insert(key(4, 1), false));
  EXPECT_TRUE(lru.insert(key(4, 2), false));
  EXPECT_TRUE(lru.insert(key(4, 3), false));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], key(4, 1));
  EXPECT_EQ(lru.evictions(), 1u);
}

TEST(LruPolicy, CountersTrackHitsAndMisses) {
  iosrv::LruPolicy lru(2);
  EXPECT_FALSE(lru.lookup(key(1, 1)));
  EXPECT_TRUE(lru.insert(key(1, 1), false));
  EXPECT_TRUE(lru.lookup(key(1, 1)));
  EXPECT_EQ(lru.hits(), 1u);
  EXPECT_EQ(lru.misses(), 1u);
}

}  // namespace
