// Tests for the per-(client, file) access-pattern detector behind
// server read-ahead: run growth, stride detection, the duplicate rule,
// stream isolation, and the LRU bound on tracked streams.
#include "iosrv/pattern.hpp"

#include <gtest/gtest.h>

namespace {

TEST(PatternTracker, SequentialRunGrows) {
  iosrv::PatternTracker t;
  iosrv::RunInfo r = t.note(1, 1, 10);
  EXPECT_EQ(r.stride, 0);
  EXPECT_EQ(r.length, 1);
  r = t.note(1, 1, 11);
  EXPECT_EQ(r.stride, 1);
  EXPECT_EQ(r.length, 2);
  r = t.note(1, 1, 12);
  EXPECT_EQ(r.stride, 1);
  EXPECT_EQ(r.length, 3);
  EXPECT_TRUE(r.sequential());
}

TEST(PatternTracker, ConstantStrideIsARunButNotSequential) {
  iosrv::PatternTracker t;
  t.note(1, 1, 0);
  t.note(1, 1, 4);
  t.note(1, 1, 8);
  const iosrv::RunInfo r = t.note(1, 1, 12);
  EXPECT_EQ(r.stride, 4);
  EXPECT_EQ(r.length, 4);
  EXPECT_FALSE(r.sequential());
}

TEST(PatternTracker, BackwardStrideIsDetected) {
  iosrv::PatternTracker t;
  t.note(1, 1, 20);
  t.note(1, 1, 18);
  const iosrv::RunInfo r = t.note(1, 1, 16);
  EXPECT_EQ(r.stride, -2);
  EXPECT_EQ(r.length, 3);
}

// Retried and hedged reads repeat a block; that must neither extend the
// run (no phantom stride-0 progress) nor reset it.
TEST(PatternTracker, DuplicateAccessNeitherExtendsNorResets) {
  iosrv::PatternTracker t;
  t.note(1, 1, 5);
  iosrv::RunInfo before = t.note(1, 1, 6);
  iosrv::RunInfo dup = t.note(1, 1, 6);
  EXPECT_EQ(dup.stride, before.stride);
  EXPECT_EQ(dup.length, before.length);
  const iosrv::RunInfo r = t.note(1, 1, 7);
  EXPECT_EQ(r.stride, 1);
  EXPECT_EQ(r.length, 3);
}

TEST(PatternTracker, StrideChangeStartsANewRun) {
  iosrv::PatternTracker t;
  t.note(1, 1, 0);
  t.note(1, 1, 1);
  t.note(1, 1, 2);
  iosrv::RunInfo r = t.note(1, 1, 10);  // the jump breaks the run
  EXPECT_EQ(r.stride, 8);
  EXPECT_EQ(r.length, 2);
  r = t.note(1, 1, 18);
  EXPECT_EQ(r.stride, 8);
  EXPECT_EQ(r.length, 3);
}

// Interleaved clients (and the same client on another file) must not
// contaminate each other's runs.
TEST(PatternTracker, StreamsAreIsolatedByClientAndFile) {
  iosrv::PatternTracker t;
  t.note(1, 1, 0);
  t.note(2, 1, 100);
  t.note(1, 2, 50);
  t.note(1, 1, 1);
  t.note(2, 1, 104);
  t.note(1, 2, 51);
  EXPECT_EQ(t.stream_count(), 3u);

  iosrv::RunInfo r = t.note(1, 1, 2);
  EXPECT_EQ(r.stride, 1);
  EXPECT_EQ(r.length, 3);
  r = t.note(2, 1, 108);
  EXPECT_EQ(r.stride, 4);
  EXPECT_EQ(r.length, 3);
  r = t.note(1, 2, 52);
  EXPECT_EQ(r.stride, 1);
  EXPECT_EQ(r.length, 3);
}

// Beyond max_streams the least-recently-active stream is forgotten: its
// next access starts from scratch instead of resuming the old run.
TEST(PatternTracker, LeastRecentlyActiveStreamIsForgotten) {
  iosrv::PatternTracker t(2);
  t.note(1, 1, 0);
  t.note(1, 1, 1);  // stream A has a live sequential run
  t.note(2, 1, 0);
  t.note(3, 1, 0);  // third stream evicts A
  EXPECT_EQ(t.stream_count(), 2u);

  const iosrv::RunInfo r = t.note(1, 1, 2);  // would be length 3 if kept
  EXPECT_EQ(r.stride, 0);
  EXPECT_EQ(r.length, 1);
}

}  // namespace
