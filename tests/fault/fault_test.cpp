// Fault layer: plan determinism, injector arming, and how failures
// surface through the striped file system.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "pfs/types.hpp"
#include "simkit/engine.hpp"

namespace fault {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  pfs::StripedFs fs;
  explicit Rig(Injector* injector = nullptr,
               hw::MachineConfig cfg = hw::MachineConfig::paragon_small(4, 2))
      : machine(eng, std::move(cfg)), fs(machine, injector) {}
};

TEST(InjectionPlan, PoissonIsSeedDeterministic) {
  const auto a = InjectionPlan::poisson_node_crashes(4, 50.0, 5.0, 2000.0, 7);
  const auto b = InjectionPlan::poisson_node_crashes(4, 50.0, 5.0, 2000.0, 7);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  EXPECT_FALSE(a.crashes.empty());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].io_node, b.crashes[i].io_node);
    EXPECT_EQ(a.crashes[i].crash, b.crashes[i].crash);  // exact
    EXPECT_EQ(a.crashes[i].reboot, b.crashes[i].reboot);
  }
  const auto c = InjectionPlan::poisson_node_crashes(4, 50.0, 5.0, 2000.0, 8);
  bool same = a.crashes.size() == c.crashes.size();
  for (std::size_t i = 0; same && i < a.crashes.size(); ++i) {
    same = a.crashes[i].crash == c.crashes[i].crash;
  }
  EXPECT_FALSE(same) << "different seeds must yield different plans";
}

TEST(InjectionPlan, HorizonCoversAllEdges) {
  InjectionPlan p;
  EXPECT_TRUE(p.empty());
  p.crash_node(0, 10.0, 20.0).degrade_disk(1, 0, 5.0, 42.0, 3.0);
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(p.horizon(), 42.0);
}

TEST(Injector, ArmsAndClearsOnSchedule) {
  simkit::Engine eng;
  InjectionPlan plan;
  plan.crash_node(1, 1.0, 2.0).crash_node(1, 1.5, 3.0);  // overlapping
  Injector inj(plan);
  inj.start(eng);
  std::vector<bool> seen;
  eng.spawn([](simkit::Engine& e, Injector& i,
               std::vector<bool>& out) -> simkit::Task<void> {
    co_await e.delay(0.5);
    out.push_back(i.node_down(1));  // t=0.5: up
    co_await e.delay(1.0);
    out.push_back(i.node_down(1));  // t=1.5: down (both windows)
    co_await e.delay(1.0);
    out.push_back(i.node_down(1));  // t=2.5: still down (second window)
    co_await e.delay(1.0);
    out.push_back(i.node_down(1));  // t=3.5: up again
  }(eng, inj, seen));
  eng.run();
  EXPECT_EQ(seen, (std::vector<bool>{false, true, true, false}));
  EXPECT_DOUBLE_EQ(inj.all_up_by(1.2), 3.0);  // chained windows
  EXPECT_DOUBLE_EQ(inj.all_up_by(5.0), 5.0);
}

TEST(Injector, NodeCrashSurfacesAsTypedIoError) {
  InjectionPlan plan;
  plan.crash_node(0, 0.0, 1000.0);
  Injector inj(plan);
  Rig rig(&inj);
  const pfs::FileId f = rig.fs.create("victim");  // id 0 -> first server 0
  bool threw = false;
  rig.eng.spawn([](Rig& r, pfs::FileId f, bool& threw) -> simkit::Task<void> {
    try {
      co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 4096);
    } catch (const pfs::IoError& e) {
      threw = true;
      EXPECT_EQ(e.kind(), pfs::IoErrorKind::kNodeDown);
      EXPECT_EQ(e.io_node(), 0u);
    }
  }(rig, f, threw));
  rig.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_GE(inj.rejected_requests(), 1u);
}

TEST(Injector, CertainTransientErrorAlwaysFails) {
  InjectionPlan plan;
  plan.with_transient_errors(1.0);
  Injector inj(plan);
  Rig rig(&inj);
  const pfs::FileId f = rig.fs.create("flaky");
  bool threw = false;
  rig.eng.spawn([](Rig& r, pfs::FileId f, bool& threw) -> simkit::Task<void> {
    try {
      co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 4096);
    } catch (const pfs::IoError& e) {
      threw = true;
      EXPECT_EQ(e.kind(), pfs::IoErrorKind::kTransient);
    }
  }(rig, f, threw));
  rig.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_GE(inj.transient_errors(), 1u);
}

// The pay-for-what-you-use contract: an injector with an EMPTY plan is
// bit-identical to no injector at all (same simulated times, exactly).
TEST(Injector, EmptyPlanIsBitIdenticalToNoInjector) {
  auto timed_run = [](Injector* inj) {
    Rig rig(inj);
    const pfs::FileId f = rig.fs.create("same");
    rig.eng.spawn([](Rig& r, pfs::FileId f) -> simkit::Task<void> {
      for (int i = 0; i < 8; ++i) {
        co_await r.fs.pwrite(r.machine.compute_node(0), f,
                             static_cast<std::uint64_t>(i) * 100'000,
                             70'000);
      }
      for (int i = 7; i >= 0; --i) {
        co_await r.fs.pread(r.machine.compute_node(1), f,
                            static_cast<std::uint64_t>(i) * 100'000, 70'000);
      }
      co_await r.fs.flush(r.machine.compute_node(0), f);
    }(rig, f));
    rig.eng.run();
    return rig.eng.now();
  };
  Injector empty{InjectionPlan{}};
  EXPECT_EQ(timed_run(nullptr), timed_run(&empty));  // exact equality
}

TEST(InjectionPlan, PoissonMeanGapMatchesMtbf) {
  // Empirical check of the generator's event process: with a long horizon
  // the mean inter-crash gap converges to the configured MTBF.
  const double mtbf = 30.0;
  const auto plan =
      InjectionPlan::poisson_node_crashes(4, mtbf, 2.0, 600'000.0, 42);
  ASSERT_GT(plan.crashes.size(), 1000u);
  double prev = 0.0;
  double sum = 0.0;
  for (const auto& c : plan.crashes) {
    sum += c.crash - prev;
    prev = c.crash;
  }
  const double mean_gap = sum / static_cast<double>(plan.crashes.size());
  EXPECT_NEAR(mean_gap, mtbf, 0.05 * mtbf);
}

TEST(Injector, OverlappingSameNodeWindowsFormDownTimeUnion) {
  // Dense schedule: many overlapping windows on few nodes.  The armed
  // state must match the union of the planned intervals at every probe.
  const auto plan =
      InjectionPlan::poisson_node_crashes(2, 3.0, 10.0, 200.0, 11);
  bool has_overlap = false;
  for (std::size_t i = 0; i + 1 < plan.crashes.size() && !has_overlap; ++i) {
    for (std::size_t j = i + 1; j < plan.crashes.size(); ++j) {
      if (plan.crashes[i].io_node == plan.crashes[j].io_node &&
          plan.crashes[j].crash < plan.crashes[i].reboot &&
          plan.crashes[i].crash < plan.crashes[j].reboot) {
        has_overlap = true;
        break;
      }
    }
  }
  ASSERT_TRUE(has_overlap) << "schedule too sparse to exercise overlap";
  auto planned_down = [&plan](std::size_t node, simkit::Time t) {
    for (const auto& c : plan.crashes) {
      if (c.io_node == node && c.crash <= t && t < c.reboot) return true;
    }
    return false;
  };
  simkit::Engine eng;
  Injector inj(plan);
  inj.start(eng);
  int mismatches = 0;
  eng.spawn([](simkit::Engine& e, Injector& i, auto planned,
               int& bad) -> simkit::Task<void> {
    // Probe off the fault edges (edges fire at integer-free instants with
    // probability 1; +0.25 keeps probes strictly inside intervals).
    for (int k = 0; k < 880; ++k) {
      co_await e.delay(0.25);
      for (std::size_t node = 0; node < 2; ++node) {
        if (i.node_down(node) != planned(node, e.now())) ++bad;
      }
    }
  }(eng, inj, planned_down, mismatches));
  eng.run();
  EXPECT_EQ(mismatches, 0);
}

TEST(InjectionPlan, CorrelatedGeneratorMixesBurstsAndSingles) {
  const auto a = InjectionPlan::correlated_node_crashes(
      4, 2, 40.0, 5.0, 0.5, 4000.0, 13);
  const auto b = InjectionPlan::correlated_node_crashes(
      4, 2, 40.0, 5.0, 0.5, 4000.0, 13);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  ASSERT_FALSE(a.domain_outages.empty());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].crash, b.crashes[i].crash);  // exact replay
    EXPECT_EQ(a.crashes[i].scrub, b.crashes[i].scrub);
  }
  // Bursts scrub every member of one domain; singles reboot cleanly.
  std::size_t scrubbed = 0;
  std::size_t clean = 0;
  for (const auto& c : a.crashes) (c.scrub ? scrubbed : clean)++;
  EXPECT_GT(scrubbed, 0u);
  EXPECT_GT(clean, 0u);
  for (const auto& d : a.domain_outages) {
    EXPECT_LT(d.domain, 2u);
    // Every member window of the burst exists, scrubbed, same interval.
    int members = 0;
    for (const auto& c : a.crashes) {
      if (c.crash == d.start && c.reboot == d.end && c.scrub) ++members;
    }
    EXPECT_EQ(members, 2);
  }
}

TEST(InjectionPlan, CorrelatedEventClockInvariantUnderFractionSweep) {
  // Same seed, different blast radii: the fault instants line up, so a
  // correlated-vs-independent comparison isolates the correlation itself.
  const auto indep = InjectionPlan::correlated_node_crashes(
      4, 2, 40.0, 5.0, 0.0, 4000.0, 99);
  const auto corr = InjectionPlan::correlated_node_crashes(
      4, 2, 40.0, 5.0, 0.6, 4000.0, 99);
  std::vector<simkit::Time> ti;
  std::vector<simkit::Time> tc;
  for (const auto& c : indep.crashes) ti.push_back(c.crash);
  for (const auto& d : corr.domain_outages) tc.push_back(d.start);
  for (const auto& c : corr.crashes) {
    if (!c.scrub) tc.push_back(c.crash);
  }
  std::sort(tc.begin(), tc.end());
  EXPECT_EQ(ti, tc);
  EXPECT_TRUE(indep.domain_outages.empty());
}

TEST(InjectionPlan, MarkovPlanIsNotEmptyAndExtendsHorizon) {
  // Regression: a stochastic-only plan must count as content — empty()
  // once looked only at planned episodes, so arming a Markov plan was
  // skipped by callers that early-out on empty().
  InjectionPlan p;
  MarkovDiskParams mp;
  mp.enabled = true;
  mp.horizon = 321.0;
  p.with_markov_disks(mp);
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(p.horizon(), 321.0);
  p.crash_node(0, 10.0, 400.0);
  EXPECT_DOUBLE_EQ(p.horizon(), 400.0);

  InjectionPlan q;
  q.outage_domain(1, {2, 3}, 5.0, 50.0);
  EXPECT_FALSE(q.empty());
  EXPECT_DOUBLE_EQ(q.horizon(), 50.0);
  EXPECT_EQ(q.crashes.size(), 2u);
  EXPECT_TRUE(q.crashes[0].scrub);
}

TEST(Injector, MarkovDisksStretchServiceAndReplayExactly) {
  auto timed_read = [](Injector* inj) {
    Rig rig(inj);
    const pfs::FileId f = rig.fs.create("markov");
    double done = -1.0;
    rig.eng.spawn([](Rig& r, pfs::FileId f, double& out) -> simkit::Task<void> {
      for (int rep = 0; rep < 12; ++rep) {
        co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 256 * 1024);
        co_await r.fs.flush(r.machine.compute_node(0), f);
        co_await r.fs.pread(r.machine.compute_node(0), f, 0, 256 * 1024);
      }
      out = r.eng.now();
    }(rig, f, done));
    rig.eng.run();
    return done;  // workload completion, not the fault-edge drain
  };
  MarkovDiskParams mp;
  mp.enabled = true;
  mp.horizon = 400.0;
  mp.mean_healthy_s = 0.05;  // sticks almost immediately and often
  mp.mean_sticky_s = 5.0;
  mp.mean_stuck_s = 5.0;
  mp.p_stick = 0.5;
  mp.sticky_factor = 6.0;
  mp.stuck_factor = 60.0;
  InjectionPlan plan;
  plan.with_markov_disks(mp);
  const double healthy = timed_read(nullptr);
  Injector a{plan};
  const double run1 = timed_read(&a);
  Injector b{plan};
  const double run2 = timed_read(&b);
  EXPECT_GT(run1, healthy);
  EXPECT_EQ(run1, run2);  // bit-identical replay of the stochastic walk
  EXPECT_GT(a.sticky_transitions(), 0u);
}

TEST(Injector, ScrubQueryAndScopedRecoveryWait) {
  InjectionPlan plan;
  plan.crash_node(0, 10.0, 20.0, /*scrub=*/true)
      .crash_node(1, 15.0, 40.0)  // clean reboot
      .crash_node(2, 35.0, 50.0, /*scrub=*/true);
  Injector inj(plan);
  // Scrub happened strictly after t0 and at-or-before t1.
  EXPECT_TRUE(inj.node_scrubbed_in(0, 0.0, 30.0));
  EXPECT_TRUE(inj.node_scrubbed_in(0, 5.0, 10.0));   // inclusive right edge
  EXPECT_FALSE(inj.node_scrubbed_in(0, 10.0, 30.0));  // exclusive left edge
  EXPECT_FALSE(inj.node_scrubbed_in(1, 0.0, 100.0));  // clean crash
  EXPECT_FALSE(inj.node_scrubbed_in(3, 0.0, 100.0));
  // Scoped wait: a reader of nodes {0} ignores the long outage on node 1.
  const std::vector<std::uint32_t> zero{0};
  const std::vector<std::uint32_t> both{0, 1};
  EXPECT_DOUBLE_EQ(inj.nodes_up_by(zero, 12.0), 20.0);
  EXPECT_DOUBLE_EQ(inj.nodes_up_by(both, 12.0), 40.0);
  EXPECT_DOUBLE_EQ(inj.all_up_by(12.0), 50.0);  // chains through node 2
  EXPECT_DOUBLE_EQ(inj.nodes_up_by(zero, 25.0), 25.0);
}

TEST(Injector, DiskDegradeEpisodeStretchesServiceTime) {
  auto timed_read = [](Injector* inj) {
    Rig rig(inj);
    const pfs::FileId f = rig.fs.create("slow");
    rig.eng.spawn([](Rig& r, pfs::FileId f) -> simkit::Task<void> {
      co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 256 * 1024);
      co_await r.fs.flush(r.machine.compute_node(0), f);
      // Large enough to defeat the I/O-node cache: the read must hit disk.
      co_await r.fs.pread(r.machine.compute_node(0), f, 0, 256 * 1024);
    }(rig, f));
    rig.eng.run();
    return rig.eng.now();
  };
  InjectionPlan plan;
  for (std::size_t n = 0; n < 2; ++n) plan.degrade_disk(n, 0, 0.0, 1e6, 8.0);
  Injector slow(plan);
  EXPECT_GT(timed_read(&slow), timed_read(nullptr));
}

}  // namespace
}  // namespace fault
