// Fault layer: plan determinism, injector arming, and how failures
// surface through the striped file system.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "pfs/types.hpp"
#include "simkit/engine.hpp"

namespace fault {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  pfs::StripedFs fs;
  explicit Rig(Injector* injector = nullptr,
               hw::MachineConfig cfg = hw::MachineConfig::paragon_small(4, 2))
      : machine(eng, std::move(cfg)), fs(machine, injector) {}
};

TEST(InjectionPlan, PoissonIsSeedDeterministic) {
  const auto a = InjectionPlan::poisson_node_crashes(4, 50.0, 5.0, 2000.0, 7);
  const auto b = InjectionPlan::poisson_node_crashes(4, 50.0, 5.0, 2000.0, 7);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  EXPECT_FALSE(a.crashes.empty());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].io_node, b.crashes[i].io_node);
    EXPECT_EQ(a.crashes[i].crash, b.crashes[i].crash);  // exact
    EXPECT_EQ(a.crashes[i].reboot, b.crashes[i].reboot);
  }
  const auto c = InjectionPlan::poisson_node_crashes(4, 50.0, 5.0, 2000.0, 8);
  bool same = a.crashes.size() == c.crashes.size();
  for (std::size_t i = 0; same && i < a.crashes.size(); ++i) {
    same = a.crashes[i].crash == c.crashes[i].crash;
  }
  EXPECT_FALSE(same) << "different seeds must yield different plans";
}

TEST(InjectionPlan, HorizonCoversAllEdges) {
  InjectionPlan p;
  EXPECT_TRUE(p.empty());
  p.crash_node(0, 10.0, 20.0).degrade_disk(1, 0, 5.0, 42.0, 3.0);
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(p.horizon(), 42.0);
}

TEST(Injector, ArmsAndClearsOnSchedule) {
  simkit::Engine eng;
  InjectionPlan plan;
  plan.crash_node(1, 1.0, 2.0).crash_node(1, 1.5, 3.0);  // overlapping
  Injector inj(plan);
  inj.start(eng);
  std::vector<bool> seen;
  eng.spawn([](simkit::Engine& e, Injector& i,
               std::vector<bool>& out) -> simkit::Task<void> {
    co_await e.delay(0.5);
    out.push_back(i.node_down(1));  // t=0.5: up
    co_await e.delay(1.0);
    out.push_back(i.node_down(1));  // t=1.5: down (both windows)
    co_await e.delay(1.0);
    out.push_back(i.node_down(1));  // t=2.5: still down (second window)
    co_await e.delay(1.0);
    out.push_back(i.node_down(1));  // t=3.5: up again
  }(eng, inj, seen));
  eng.run();
  EXPECT_EQ(seen, (std::vector<bool>{false, true, true, false}));
  EXPECT_DOUBLE_EQ(inj.all_up_by(1.2), 3.0);  // chained windows
  EXPECT_DOUBLE_EQ(inj.all_up_by(5.0), 5.0);
}

TEST(Injector, NodeCrashSurfacesAsTypedIoError) {
  InjectionPlan plan;
  plan.crash_node(0, 0.0, 1000.0);
  Injector inj(plan);
  Rig rig(&inj);
  const pfs::FileId f = rig.fs.create("victim");  // id 0 -> first server 0
  bool threw = false;
  rig.eng.spawn([](Rig& r, pfs::FileId f, bool& threw) -> simkit::Task<void> {
    try {
      co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 4096);
    } catch (const pfs::IoError& e) {
      threw = true;
      EXPECT_EQ(e.kind(), pfs::IoErrorKind::kNodeDown);
      EXPECT_EQ(e.io_node(), 0u);
    }
  }(rig, f, threw));
  rig.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_GE(inj.rejected_requests(), 1u);
}

TEST(Injector, CertainTransientErrorAlwaysFails) {
  InjectionPlan plan;
  plan.with_transient_errors(1.0);
  Injector inj(plan);
  Rig rig(&inj);
  const pfs::FileId f = rig.fs.create("flaky");
  bool threw = false;
  rig.eng.spawn([](Rig& r, pfs::FileId f, bool& threw) -> simkit::Task<void> {
    try {
      co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 4096);
    } catch (const pfs::IoError& e) {
      threw = true;
      EXPECT_EQ(e.kind(), pfs::IoErrorKind::kTransient);
    }
  }(rig, f, threw));
  rig.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_GE(inj.transient_errors(), 1u);
}

// The pay-for-what-you-use contract: an injector with an EMPTY plan is
// bit-identical to no injector at all (same simulated times, exactly).
TEST(Injector, EmptyPlanIsBitIdenticalToNoInjector) {
  auto timed_run = [](Injector* inj) {
    Rig rig(inj);
    const pfs::FileId f = rig.fs.create("same");
    rig.eng.spawn([](Rig& r, pfs::FileId f) -> simkit::Task<void> {
      for (int i = 0; i < 8; ++i) {
        co_await r.fs.pwrite(r.machine.compute_node(0), f,
                             static_cast<std::uint64_t>(i) * 100'000,
                             70'000);
      }
      for (int i = 7; i >= 0; --i) {
        co_await r.fs.pread(r.machine.compute_node(1), f,
                            static_cast<std::uint64_t>(i) * 100'000, 70'000);
      }
      co_await r.fs.flush(r.machine.compute_node(0), f);
    }(rig, f));
    rig.eng.run();
    return rig.eng.now();
  };
  Injector empty{InjectionPlan{}};
  EXPECT_EQ(timed_run(nullptr), timed_run(&empty));  // exact equality
}

TEST(Injector, DiskDegradeEpisodeStretchesServiceTime) {
  auto timed_read = [](Injector* inj) {
    Rig rig(inj);
    const pfs::FileId f = rig.fs.create("slow");
    rig.eng.spawn([](Rig& r, pfs::FileId f) -> simkit::Task<void> {
      co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 256 * 1024);
      co_await r.fs.flush(r.machine.compute_node(0), f);
      // Large enough to defeat the I/O-node cache: the read must hit disk.
      co_await r.fs.pread(r.machine.compute_node(0), f, 0, 256 * 1024);
    }(rig, f));
    rig.eng.run();
    return rig.eng.now();
  };
  InjectionPlan plan;
  for (std::size_t n = 0; n < 2; ++n) plan.degrade_disk(n, 0, 0.0, 1e6, 8.0);
  Injector slow(plan);
  EXPECT_GT(timed_read(&slow), timed_read(nullptr));
}

}  // namespace
}  // namespace fault
