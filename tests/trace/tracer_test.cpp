// Tests for the Pablo-style tracer and its Table 2/3 formatter.
#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace trace {
namespace {

using pfs::OpKind;

TEST(IoTracer, AggregatesPerKind) {
  IoTracer t;
  t.record(OpKind::kRead, 0.0, 1.5, 1000);
  t.record(OpKind::kRead, 2.0, 0.5, 500);
  t.record(OpKind::kWrite, 3.0, 0.25, 200);
  EXPECT_EQ(t.summary(OpKind::kRead).count, 2u);
  EXPECT_DOUBLE_EQ(t.summary(OpKind::kRead).time, 2.0);
  EXPECT_EQ(t.summary(OpKind::kRead).bytes, 1500u);
  EXPECT_EQ(t.summary(OpKind::kWrite).count, 1u);
  EXPECT_EQ(t.total_ops(), 3u);
  EXPECT_DOUBLE_EQ(t.total_io_time(), 2.25);
  EXPECT_EQ(t.total_bytes(), 1700u);
}

TEST(IoTracer, LatencyStatistics) {
  IoTracer t;
  t.record(OpKind::kRead, 0.0, 1.0, 0);
  t.record(OpKind::kRead, 0.0, 3.0, 0);
  EXPECT_DOUBLE_EQ(t.summary(OpKind::kRead).latency.mean(), 2.0);
  EXPECT_DOUBLE_EQ(t.summary(OpKind::kRead).latency.max(), 3.0);
}

TEST(IoTracer, EventRetentionOptional) {
  IoTracer off(false), on(true);
  off.record(OpKind::kSeek, 1.0, 0.1, 0);
  on.record(OpKind::kSeek, 1.0, 0.1, 0);
  EXPECT_TRUE(off.events().empty());
  ASSERT_EQ(on.events().size(), 1u);
  EXPECT_EQ(on.events()[0].kind, OpKind::kSeek);
}

TEST(IoTracer, MergeCombinesRanks) {
  IoTracer a, b;
  a.record(OpKind::kRead, 0.0, 1.0, 100);
  b.record(OpKind::kRead, 0.0, 2.0, 200);
  b.record(OpKind::kOpen, 0.0, 0.1, 0);
  a.merge(b);
  EXPECT_EQ(a.summary(OpKind::kRead).count, 2u);
  EXPECT_DOUBLE_EQ(a.summary(OpKind::kRead).time, 3.0);
  EXPECT_EQ(a.summary(OpKind::kOpen).count, 1u);
}

TEST(IoTracer, ClearResets) {
  IoTracer t(true);
  t.record(OpKind::kRead, 0.0, 1.0, 10);
  t.clear();
  EXPECT_EQ(t.total_ops(), 0u);
  EXPECT_TRUE(t.events().empty());
}

TEST(FormatIoSummary, ContainsRowsAndPercentages) {
  IoTracer t;
  t.record(OpKind::kOpen, 0.0, 2.0, 0);
  t.record(OpKind::kRead, 0.0, 60.0, 37ULL << 30);
  t.record(OpKind::kWrite, 0.0, 3.0, 2ULL << 30);
  const std::string s = format_io_summary(t, 130.0, "SCF test");
  EXPECT_NE(s.find("Open"), std::string::npos);
  EXPECT_NE(s.find("Read"), std::string::npos);
  EXPECT_NE(s.find("All I/O"), std::string::npos);
  // Read is 60/65 of I/O time ≈ 92.31%.
  EXPECT_NE(s.find("92.31"), std::string::npos);
  // All I/O is 65/130 of exec = 50%.
  EXPECT_NE(s.find("50.00"), std::string::npos);
  // Seek never happened: no row.
  EXPECT_EQ(s.find("Seek"), std::string::npos);
}

TEST(IoSummaryCsv, MachineReadable) {
  IoTracer t;
  t.record(OpKind::kRead, 0.0, 1.0, 1024);
  const std::string csv = io_summary_csv(t, 2.0);
  EXPECT_NE(csv.find("oper,count,time_s,bytes,pct_io,pct_exec"),
            std::string::npos);
  EXPECT_NE(csv.find("Read,1,1.000000,1024,100.0000,50.0000"),
            std::string::npos);
}

TEST(IoTracer, PlugsIntoFileHandle) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("traced");
  IoTracer tracer;
  eng.spawn([](hw::Machine& m, pfs::StripedFs& fs, pfs::FileId f,
               IoTracer& tr) -> simkit::Task<void> {
    pfs::FileHandle h = co_await fs.open(m.compute_node(0), f, &tr);
    co_await h.write(128 * 1024);
    co_await h.seek(0);
    co_await h.read(64 * 1024);
    co_await h.flush();
    co_await h.close();
  }(machine, fs, f, tracer));
  eng.run();
  EXPECT_EQ(tracer.summary(OpKind::kOpen).count, 1u);
  EXPECT_EQ(tracer.summary(OpKind::kWrite).count, 1u);
  EXPECT_EQ(tracer.summary(OpKind::kWrite).bytes, 128u * 1024u);
  EXPECT_EQ(tracer.summary(OpKind::kSeek).count, 1u);
  EXPECT_EQ(tracer.summary(OpKind::kRead).count, 1u);
  EXPECT_EQ(tracer.summary(OpKind::kFlush).count, 1u);
  EXPECT_EQ(tracer.summary(OpKind::kClose).count, 1u);
  EXPECT_GT(tracer.total_io_time(), 0.0);
  EXPECT_LE(tracer.total_io_time(), eng.now() + 1e-12);
}

}  // namespace
}  // namespace trace
