// Tests for the SDDF trace export.
#include "trace/sddf.hpp"

#include <gtest/gtest.h>

namespace trace {
namespace {

TEST(Sddf, ContainsDescriptorAndRecords) {
  IoTracer t(/*keep_events=*/true);
  t.record(pfs::OpKind::kOpen, 0.0, 0.1, 0);
  t.record(pfs::OpKind::kRead, 1.5, 0.003, 65536);
  t.record(pfs::OpKind::kClose, 2.0, 0.05, 0);
  const std::string s = to_sddf(t);
  EXPECT_NE(s.find("#1:"), std::string::npos);
  EXPECT_NE(s.find("\"Timestamp\""), std::string::npos);
  EXPECT_NE(s.find("\"Read\""), std::string::npos);
  EXPECT_NE(s.find("65536"), std::string::npos);
  EXPECT_EQ(sddf_record_count(s), 3u);
}

TEST(Sddf, ProcessorNumberPropagates) {
  IoTracer t(true);
  t.record(pfs::OpKind::kWrite, 0.5, 0.01, 100);
  SddfOptions opts;
  opts.processor = 7;
  const std::string s = to_sddf(t, opts);
  EXPECT_NE(s.find("{ 7, 0.500000"), std::string::npos);
}

TEST(Sddf, EmptyTracerYieldsHeaderOnly) {
  IoTracer t(true);
  const std::string s = to_sddf(t);
  EXPECT_EQ(sddf_record_count(s), 0u);
  EXPECT_NE(s.find("IO Event"), std::string::npos);
}

TEST(Sddf, AggregateOnlyTracerHasNoRecords) {
  IoTracer t(/*keep_events=*/false);
  t.record(pfs::OpKind::kRead, 0.0, 1.0, 1);
  EXPECT_EQ(sddf_record_count(to_sddf(t)), 0u);
}

TEST(Sddf, RecordsInEventOrder) {
  IoTracer t(true);
  for (int i = 0; i < 10; ++i) {
    t.record(pfs::OpKind::kSeek, i * 1.0, 0.001, 0);
  }
  const std::string s = to_sddf(t);
  EXPECT_EQ(sddf_record_count(s), 10u);
  EXPECT_LT(s.find("{ 0, 0.000000"), s.find("{ 0, 9.000000"));
}

}  // namespace
}  // namespace trace
