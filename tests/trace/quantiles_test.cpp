// Tests for the latency quantile view.
#include <gtest/gtest.h>

#include "trace/tracer.hpp"

namespace trace {
namespace {

TEST(LatencyQuantiles, BucketsSeparateFastAndSlowOps) {
  IoTracer t;
  // 99 fast reads (1 ms) and 1 very slow one (200 ms).
  for (int i = 0; i < 99; ++i) t.record(pfs::OpKind::kRead, 0, 1e-3, 0);
  t.record(pfs::OpKind::kRead, 0, 0.2, 0);
  const auto& s = t.summary(pfs::OpKind::kRead);
  EXPECT_LT(s.latency_hist.quantile_upper_bound(0.50), 5e-3);
  EXPECT_GT(s.latency_hist.quantile_upper_bound(0.995), 0.1);
  EXPECT_DOUBLE_EQ(s.latency.max(), 0.2);
}

TEST(LatencyQuantiles, MergePreservesDistribution) {
  IoTracer a, b;
  for (int i = 0; i < 50; ++i) a.record(pfs::OpKind::kWrite, 0, 1e-3, 0);
  for (int i = 0; i < 50; ++i) b.record(pfs::OpKind::kWrite, 0, 64e-3, 0);
  a.merge(b);
  const auto& s = a.summary(pfs::OpKind::kWrite);
  EXPECT_EQ(s.latency_hist.stat().count(), 100u);
  // Median sits at the boundary between the two populations.
  EXPECT_LE(s.latency_hist.quantile_upper_bound(0.25), 4e-3);
  EXPECT_GE(s.latency_hist.quantile_upper_bound(0.75), 32e-3);
}

TEST(LatencyQuantiles, FormatterListsActiveKindsOnly) {
  IoTracer t;
  t.record(pfs::OpKind::kRead, 0, 5e-3, 100);
  t.record(pfs::OpKind::kOpen, 0, 50e-3, 0);
  const std::string s = format_latency_quantiles(t);
  EXPECT_NE(s.find("Read"), std::string::npos);
  EXPECT_NE(s.find("Open"), std::string::npos);
  EXPECT_EQ(s.find("Seek"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace trace
