// Tests for the metrics subsystem: instrument semantics, histogram
// percentiles against a sorted-vector reference, cross-rank merge, export
// determinism, and agreement between registry counters and the Pablo-style
// trace on a real application run.
#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "apps/scf.hpp"
#include "metrics/export.hpp"

namespace metrics {
namespace {

TEST(Counter, AccumulatesAndMerges) {
  Counter a, b;
  a.inc();
  a.inc(41);
  b.inc(58);
  EXPECT_EQ(a.value(), 42u);
  a.merge(b);
  EXPECT_EQ(a.value(), 100u);
}

TEST(Gauge, TracksExtremesAndLast) {
  Gauge g;
  EXPECT_EQ(g.count(), 0u);
  EXPECT_EQ(g.min(), 0.0);
  g.set(3.0);
  g.set(-1.0);
  g.set(2.0);
  EXPECT_EQ(g.count(), 3u);
  EXPECT_EQ(g.last(), 2.0);
  EXPECT_EQ(g.min(), -1.0);
  EXPECT_EQ(g.max(), 3.0);

  Gauge h;
  h.set(10.0);
  g.merge(h);
  EXPECT_EQ(g.min(), -1.0);
  EXPECT_EQ(g.max(), 10.0);
  EXPECT_EQ(g.last(), 10.0);  // largest last, merge-order independent
  EXPECT_EQ(g.count(), 4u);
}

TEST(Histogram, ExactScalarsAndUnderflow) {
  Histogram h(1e-6);
  h.observe(1e-9);  // below unit: underflow bucket
  h.observe(0.5);
  h.observe(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.5 + 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 2.0);  // clamped to exact max
}

// Percentile estimates against the nearest-rank statistic of the sorted
// sample: four sub-buckets per octave bound the relative error at
// 2^(1/4) ~ 1.19, and the estimate never undershoots (it reports the
// bucket's upper edge, clamped to the exact extremes).
TEST(Histogram, PercentilesTrackSortedReference) {
  std::mt19937 rng(12345);
  // Log-uniform over ~7 decades: exercises many octaves.
  std::uniform_real_distribution<double> exp_dist(-6.0, 1.0);
  Histogram h(1e-6);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::pow(10.0, exp_dist(rng));
    v.push_back(x);
    h.observe(x);
  }
  std::sort(v.begin(), v.end());
  for (double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(std::max<double>(
        std::ceil(q * static_cast<double>(v.size())), 1.0));
    const double ref = v[rank - 1];
    const double est = h.percentile(q);
    EXPECT_GE(est, ref * 0.999) << "q=" << q;
    EXPECT_LE(est, ref * 1.20) << "q=" << q;
  }
}

TEST(Histogram, MergeEqualsCombinedStream) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(1e-5, 1e-1);
  Histogram a(1e-6), b(1e-6), combined(1e-6);
  for (int i = 0; i < 500; ++i) {
    const double x = dist(rng);
    const double y = dist(rng);
    a.observe(x);
    b.observe(y);
    combined.observe(x);
    combined.observe(y);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_EQ(a.buckets(), combined.buckets());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), combined.percentile(q));
  }
}

TEST(Histogram, MergeRejectsMismatchedUnit) {
  Histogram a(1e-6), b(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Timeseries, ThinsToOneSamplePerBin) {
  Timeseries ts(/*interval=*/1.0);
  ts.record(0.1, 1.0);
  ts.record(0.5, 2.0);  // same bin: newest wins
  ts.record(0.9, 3.0);
  ts.record(1.5, 4.0);  // next bin
  ts.record(7.2, 5.0);  // bins may be skipped entirely
  ASSERT_EQ(ts.samples().size(), 3u);
  EXPECT_DOUBLE_EQ(ts.samples()[0].value, 3.0);
  EXPECT_DOUBLE_EQ(ts.samples()[1].value, 4.0);
  EXPECT_DOUBLE_EQ(ts.samples()[2].value, 5.0);
  EXPECT_EQ(ts.dropped(), 0u);
}

TEST(Timeseries, CapsAndCountsDropped) {
  Timeseries ts(/*interval=*/0.0, /*max_samples=*/4);
  for (int i = 0; i < 10; ++i) {
    ts.record(static_cast<simkit::Time>(i), 1.0);
  }
  EXPECT_EQ(ts.samples().size(), 4u);
  EXPECT_EQ(ts.dropped(), 6u);
}

// The cross-rank reduction: per-rank registries merged into one must equal
// a single registry that saw every event.
TEST(Registry, MergeAcrossSimulatedRanks) {
  constexpr int kRanks = 4;
  Registry combined;
  std::vector<Registry> per_rank(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    for (int i = 0; i <= r; ++i) {
      per_rank[static_cast<std::size_t>(r)].counter("io.calls").inc();
      combined.counter("io.calls").inc();
      const double lat = 1e-3 * (r + 1) * (i + 1);
      per_rank[static_cast<std::size_t>(r)]
          .histogram("io.latency_s")
          .observe(lat);
      combined.histogram("io.latency_s").observe(lat);
    }
    per_rank[static_cast<std::size_t>(r)].gauge("rank.exec_s").set(r + 1.0);
    combined.gauge("rank.exec_s").set(r + 1.0);
  }
  Registry merged;
  for (const Registry& r : per_rank) merged.merge(r);
  EXPECT_EQ(merged.counter("io.calls").value(), 10u);
  EXPECT_EQ(to_json(merged), to_json(combined));
}

TEST(Scope, InstallsAndNests) {
  EXPECT_EQ(current(), nullptr);
  Registry outer;
  {
    Scope s(outer);
    EXPECT_EQ(current(), &outer);
    Registry inner;
    {
      Scope s2(inner);
      EXPECT_EQ(current(), &inner);
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(Export, JsonAndCsvShape) {
  Registry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("b.level").set(1.5);
  reg.histogram("c.lat").observe(0.25);
  reg.timeseries("d.depth").record(0.5, 2.0);
  const std::string json = to_json(reg);
  EXPECT_NE(json.find("\"schema\": \"iosim.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"c.lat\""), std::string::npos);
  const std::string csv = to_csv(reg);
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,a.count,value,3"), std::string::npos);
}

apps::ScfConfig tiny_cfg(apps::ScfVersion v) {
  apps::ScfConfig cfg;
  cfg.version = v;
  cfg.nprocs = 2;
  cfg.io_nodes = 2;
  cfg.n_basis = 108;
  cfg.iterations = 3;
  cfg.scale = 0.05;
  return cfg;
}

// Determinism: the same seeded run twice produces byte-identical metrics
// JSON (the registry and exporters introduce no iteration-order or
// formatting nondeterminism).
TEST(Integration, SameRunSameJson) {
  std::string json[2];
  for (int i = 0; i < 2; ++i) {
    Registry reg;
    {
      Scope s(reg);
      (void)apps::run_scf11(tiny_cfg(apps::ScfVersion::kPassion));
    }
    json[i] = to_json(reg);
  }
  EXPECT_FALSE(json[0].empty());
  EXPECT_EQ(json[0], json[1]);
}

// Observation-only: enabling metrics must not change the simulation (no
// simulated time or RNG is consumed by recording).
TEST(Integration, MetricsDoNotPerturbSimulation) {
  const apps::RunResult plain =
      apps::run_scf11(tiny_cfg(apps::ScfVersion::kOriginal));
  Registry reg;
  apps::RunResult metered;
  {
    Scope s(reg);
    metered = apps::run_scf11(tiny_cfg(apps::ScfVersion::kOriginal));
  }
  EXPECT_EQ(plain.exec_time, metered.exec_time);
  EXPECT_EQ(plain.io_time, metered.io_time);
  EXPECT_EQ(plain.io_calls, metered.io_calls);
  EXPECT_FALSE(reg.empty());
}

// Acceptance criterion: per-call counts in the registry match the counts
// the Pablo-style tracer derives for the same run, for both SCF 1.1
// interfaces.
TEST(Integration, IfaceCountsMatchTrace) {
  struct Case {
    apps::ScfVersion version;
    const char* mode;
  };
  for (const Case c : {Case{apps::ScfVersion::kOriginal, "fortran"},
                       Case{apps::ScfVersion::kPassion, "passion"}}) {
    Registry reg;
    apps::RunResult r;
    {
      Scope s(reg);
      r = apps::run_scf11(tiny_cfg(c.version));
    }
    const std::string prefix = std::string("pario.iface.") + c.mode + ".";
    for (const auto& [kind, op] :
         {std::pair{pfs::OpKind::kRead, "read"},
          std::pair{pfs::OpKind::kWrite, "write"},
          std::pair{pfs::OpKind::kSeek, "seek"},
          std::pair{pfs::OpKind::kOpen, "open"},
          std::pair{pfs::OpKind::kClose, "close"}}) {
      EXPECT_EQ(reg.counter(prefix + op + ".calls").value(),
                r.trace.summary(kind).count)
          << c.mode << " " << op;
    }
    EXPECT_EQ(reg.counter("apps.scf11.io_calls").value(), r.io_calls)
        << c.mode;
  }
}

}  // namespace
}  // namespace metrics
