// Auditor ledger semantics: version tracking across ack/durable/lost
// edges, the three violation classes, and the negative test proving an
// injected lost update cannot slip past the cross-check.
#include "audit/audit.hpp"

#include <gtest/gtest.h>

namespace {

TEST(AuditLedger, DurableAckThenReadIsClean) {
  audit::Ledger led;
  led.note_write_acked(1, 0, 7, 4096, /*durable_at_ack=*/true);
  led.note_read(1, 0, 7);
  EXPECT_EQ(led.totals().writes_acked, 1u);
  EXPECT_EQ(led.totals().reads_checked, 1u);
  EXPECT_EQ(led.violations(), 0u);
}

TEST(AuditLedger, BufferedAckDrainedThenReadIsClean) {
  audit::Ledger led;
  led.note_write_acked(1, 0, 7, 4096, /*durable_at_ack=*/false);
  led.note_durable(1, 0, 7);
  led.note_read(1, 0, 7);
  EXPECT_EQ(led.violations(), 0u);
}

// The negative test the satellite asks for: a server that acks a write,
// never drains it, and loses it in a crash IS caught, and a later read
// of that block is flagged stale.
TEST(AuditLedger, InjectedLostUpdateIsCaught) {
  audit::Ledger led;
  led.note_write_acked(3, 1, 12, 65536, /*durable_at_ack=*/false);
  led.note_lost(3, 1, 12, 65536);
  EXPECT_EQ(led.totals().lost_updates, 1u);
  EXPECT_EQ(led.totals().lost_bytes, 65536u);
  led.note_read(3, 1, 12);
  EXPECT_EQ(led.totals().stale_reads, 1u);
  EXPECT_EQ(led.violations(), 2u);
}

// A server claiming loss on a block the ledger saw durable (or never
// acked) is an accounting mismatch, not a violation: the independent
// cross-check must not parrot the server's own numbers.
TEST(AuditLedger, LossClaimsOnDurableOrUnknownBlocksAreIgnored) {
  audit::Ledger led;
  led.note_write_acked(1, 0, 5, 4096, /*durable_at_ack=*/true);
  led.note_lost(1, 0, 5, 4096);   // durable at ack: a plain crash can't
  led.note_lost(9, 0, 99, 4096);  // never acked at all
  EXPECT_EQ(led.violations(), 0u);
  EXPECT_EQ(led.totals().lost_updates, 0u);
}

TEST(AuditLedger, FreshWriteSupersedesLostVersion) {
  audit::Ledger led;
  led.note_write_acked(1, 0, 5, 4096, false);
  led.note_lost(1, 0, 5, 4096);
  // The client rewrites the block after recovery: reading it now
  // observes the fresh version, not the lost one.
  led.note_write_acked(1, 0, 5, 4096, false);
  led.note_durable(1, 0, 5);
  led.note_read(1, 0, 5);
  EXPECT_EQ(led.totals().lost_updates, 1u);
  EXPECT_EQ(led.totals().stale_reads, 0u);
}

TEST(AuditLedger, ScrubDestroysDurableCopies) {
  audit::Ledger led;
  led.note_write_acked(1, 0, 1, 4096, /*durable_at_ack=*/true);
  led.note_write_acked(1, 1, 2, 4096, /*durable_at_ack=*/true);
  led.note_scrubbed(0);
  EXPECT_EQ(led.totals().scrub_destroyed, 1u);  // only server 0's block
  led.note_read(1, 0, 1);
  led.note_read(1, 1, 2);
  EXPECT_EQ(led.totals().stale_reads, 1u);
}

// One client pwrite split over two servers: one piece drains, the
// other dies with its node — a torn write, flagged exactly once.
TEST(AuditLedger, SplitWriteWithMixedFateIsTorn) {
  audit::Ledger led;
  const std::uint64_t g = led.begin_group();
  led.note_write_acked(1, 0, 10, 4096, false, g);
  led.note_write_acked(1, 1, 11, 4096, false, g);
  led.note_durable(1, 0, 10);
  EXPECT_EQ(led.totals().torn_writes, 0u);  // fate not sealed yet
  led.note_lost(1, 1, 11, 4096);
  EXPECT_EQ(led.totals().torn_writes, 1u);
}

TEST(AuditLedger, FullyDurableOrFullyLostGroupsAreNotTorn) {
  audit::Ledger led;
  const std::uint64_t g1 = led.begin_group();
  led.note_write_acked(1, 0, 1, 4096, false, g1);
  led.note_write_acked(1, 1, 2, 4096, false, g1);
  led.note_durable(1, 0, 1);
  led.note_durable(1, 1, 2);
  const std::uint64_t g2 = led.begin_group();
  led.note_write_acked(2, 0, 1, 4096, false, g2);
  led.note_write_acked(2, 1, 2, 4096, false, g2);
  led.note_lost(2, 0, 1, 4096);
  led.note_lost(2, 1, 2, 4096);
  EXPECT_EQ(led.totals().torn_writes, 0u);
  EXPECT_EQ(led.totals().lost_updates, 2u);
}

TEST(AuditScope, InstallsAndRestoresNested) {
  EXPECT_EQ(audit::current(), nullptr);
  audit::Ledger outer;
  {
    audit::Scope a(outer);
    EXPECT_EQ(audit::current(), &outer);
    audit::Ledger inner;
    {
      audit::Scope b(inner);
      EXPECT_EQ(audit::current(), &inner);
    }
    EXPECT_EQ(audit::current(), &outer);
  }
  EXPECT_EQ(audit::current(), nullptr);
}

TEST(AuditTotals, MergeSumsEveryField) {
  audit::Totals a, b;
  a.writes_acked = 1;
  a.lost_updates = 2;
  a.lost_bytes = 3;
  b.reads_checked = 4;
  b.stale_reads = 5;
  b.torn_writes = 6;
  b.scrub_destroyed = 7;
  a.merge(b);
  EXPECT_EQ(a.writes_acked, 1u);
  EXPECT_EQ(a.reads_checked, 4u);
  EXPECT_EQ(a.lost_updates, 2u);
  EXPECT_EQ(a.lost_bytes, 3u);
  EXPECT_EQ(a.stale_reads, 5u);
  EXPECT_EQ(a.torn_writes, 6u);
  EXPECT_EQ(a.scrub_destroyed, 7u);
  EXPECT_EQ(a.violations(), 2u + 5u + 6u);
}

}  // namespace
