// Tests for the prefetcher's non-multiple tail handling (the Table 2/3
// volume-accounting fix).
#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "pario/prefetch.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  pfs::StripedFs fs;
  Rig() : machine(eng, hw::MachineConfig::paragon_large(4, 12)), fs(machine) {}
};

TEST(PrefetcherTail, LastChunkIsShort) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("tail");
  std::vector<std::uint64_t> lens;
  rig.eng.spawn([](Rig& r, pfs::FileId f,
                   std::vector<std::uint64_t>& out) -> simkit::Task<void> {
    IoInterface io = co_await IoInterface::open(
        r.fs, r.machine.compute_node(0), f, InterfaceParams::passion());
    // 100 KB in 32 KB chunks: 32, 32, 32, 4.
    Prefetcher pf(io, 0, 32 * 1024, 100 * 1024);
    while (!pf.done()) {
      (void)co_await pf.next();
      out.push_back(pf.last_len());
    }
  }(rig, f, lens));
  rig.eng.run();
  EXPECT_EQ(lens, (std::vector<std::uint64_t>{32768, 32768, 32768, 4096}));
}

TEST(PrefetcherTail, ExactMultipleHasNoShortChunk) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("even");
  std::uint64_t chunks = 0, short_chunks = 0;
  rig.eng.spawn([](Rig& r, pfs::FileId f, std::uint64_t& n,
                   std::uint64_t& s) -> simkit::Task<void> {
    IoInterface io = co_await IoInterface::open(
        r.fs, r.machine.compute_node(0), f, InterfaceParams::passion());
    Prefetcher pf(io, 0, 64 * 1024, 4 * 64 * 1024);
    while (!pf.done()) {
      (void)co_await pf.next();
      ++n;
      if (pf.last_len() != 64 * 1024) ++s;
    }
  }(rig, f, chunks, short_chunks));
  rig.eng.run();
  EXPECT_EQ(chunks, 4u);
  EXPECT_EQ(short_chunks, 0u);
}

TEST(PrefetcherTail, ZeroBytesIsImmediatelyDone) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("zero");
  bool was_done = false;
  rig.eng.spawn([](Rig& r, pfs::FileId f, bool& d) -> simkit::Task<void> {
    IoInterface io = co_await IoInterface::open(
        r.fs, r.machine.compute_node(0), f, InterfaceParams::passion());
    Prefetcher pf(io, 0, 64 * 1024, 0);
    d = pf.done();
    (void)co_await pf.next();  // harmless no-op
  }(rig, f, was_done));
  rig.eng.run();
  EXPECT_TRUE(was_done);
}

TEST(PrefetcherTail, BackedTailSpanHasTailLength) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("bt", /*backed=*/true);
  std::vector<std::byte> content(3 * 16 * 1024 + 100);
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<std::byte>(i % 251);
  }
  rig.fs.poke(f, 0, content);
  std::size_t last_span = 0;
  bool bytes_ok = true;
  rig.eng.spawn([](Rig& r, pfs::FileId f, std::span<const std::byte> ref,
                   std::size_t& last, bool& ok) -> simkit::Task<void> {
    IoInterface io = co_await IoInterface::open(
        r.fs, r.machine.compute_node(0), f, InterfaceParams::passion());
    Prefetcher pf(io, 0, 16 * 1024, ref.size(), /*backed=*/true);
    std::uint64_t pos = 0;
    while (!pf.done()) {
      auto chunk = co_await pf.next();
      last = chunk.size();
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        if (chunk[i] != ref[pos + i]) ok = false;
      }
      pos += chunk.size();
    }
  }(rig, f, content, last_span, bytes_ok));
  rig.eng.run();
  EXPECT_EQ(last_span, 100u);
  EXPECT_TRUE(bytes_ok);
}

}  // namespace
}  // namespace pario
