// Tests for MPI-style datatypes and file views.
#include "pario/datatype.hpp"

#include <gtest/gtest.h>

namespace pario {
namespace {

TEST(DataType, ContiguousBasics) {
  const DataType t = DataType::contiguous(100);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(t.extent(), 100u);
  EXPECT_EQ(t.piece_count(), 1u);
  auto e = t.flatten(1000, 50);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0], (Extent{1000, 100, 50}));
}

TEST(DataType, VectorGeometry) {
  // 4 blocks of 8 bytes every 32 bytes: payload 32, extent 3*32+8 = 104.
  const DataType t = DataType::vector(4, 8, 32);
  EXPECT_EQ(t.size(), 32u);
  EXPECT_EQ(t.extent(), 104u);
  auto e = t.flatten(0);
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e[1], (Extent{32, 8, 8}));
  EXPECT_EQ(e[3], (Extent{96, 8, 24}));
}

TEST(DataType, VectorWithStrideEqualBlocklenIsContiguous) {
  const DataType t = DataType::vector(4, 16, 16);
  EXPECT_EQ(t.size(), t.extent());
  auto e = coalesce(t.flatten(0));
  EXPECT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].length, 64u);
}

TEST(DataType, IndexedAndResized) {
  DataType t = DataType::indexed({{10, 5}, {100, 20}});
  EXPECT_EQ(t.size(), 25u);
  EXPECT_EQ(t.extent(), 120u);
  t = t.resized(256);
  EXPECT_EQ(t.extent(), 256u);
  EXPECT_EQ(t.size(), 25u);
}

TEST(FileView, IdentityViewIsPassThrough) {
  const FileView v(0, DataType::contiguous(1 << 20));
  auto e = v.map(12345, 678);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0], (Extent{12345, 678, 0}));
  EXPECT_EQ(v.physical_of(999), 999u);
}

TEST(FileView, DisplacementShifts) {
  const FileView v(4096, DataType::contiguous(1024));
  EXPECT_EQ(v.physical_of(0), 4096u);
  EXPECT_EQ(v.physical_of(10), 4106u);
}

TEST(FileView, StridedViewSkipsHoles) {
  // Rank's view: 8-byte blocks every 32 bytes (it owns 1/4 interleaved).
  const FileView v(0, DataType::vector(1, 8, 8).resized(32));
  // Logical bytes 0..7 -> physical 0..7; logical 8..15 -> physical 32..39.
  EXPECT_EQ(v.physical_of(0), 0u);
  EXPECT_EQ(v.physical_of(8), 32u);
  EXPECT_EQ(v.physical_of(17), 65u);
  auto e = v.map(4, 8);  // crosses an instance boundary
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0], (Extent{4, 4, 0}));
  EXPECT_EQ(e[1], (Extent{32, 4, 4}));
}

TEST(FileView, MapCoalescesAdjacentPhysicalRuns) {
  // A filetype whose pieces tile its extent completely behaves
  // contiguously after coalescing.
  const FileView v(0, DataType::indexed({{0, 16}, {16, 16}}));
  auto e = v.map(0, 64);  // two full instances
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].length, 64u);
}

TEST(FileView, BtioPencilViewMatchesHandRolledExtents) {
  // BTIO rank geometry: grid n=8, q=2, rank at (y-block 1, z-block 0):
  // pencils at (z*n + y)*row for y in [4,8), z in [0,4).
  constexpr std::uint64_t n = 8, row = 8 * 40;
  // Filetype: one z-plane's worth for this rank = 4 rows at y=4..8,
  // i.e. blocklen=row, count=4, starting at y-offset 4*row, plane extent
  // n*row.
  const DataType plane =
      DataType::indexed({{4 * row, row}, {5 * row, row},
                         {6 * row, row}, {7 * row, row}})
          .resized(n * row);
  const FileView v(0, plane);
  auto mapped = v.map(0, 4 * 4 * row);  // 4 planes x 4 rows
  // Hand-rolled reference.
  std::vector<Extent> want;
  std::uint64_t buf = 0;
  for (std::uint64_t z = 0; z < 4; ++z) {
    // 4 adjacent rows coalesce into one run per plane.
    want.push_back(Extent{(z * n + 4) * row, 4 * row, buf});
    buf += 4 * row;
  }
  EXPECT_EQ(mapped, want);
}

TEST(FileView, RoundTripThroughLogicalSpace) {
  const FileView v(128, DataType::vector(3, 10, 50).resized(200));
  // Walk every logical byte of 4 instances and check monotonicity and
  // hole-skipping.
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < 4 * 30; ++i) {
    const std::uint64_t phys = v.physical_of(i);
    if (i > 0) {
      EXPECT_GT(phys, prev);
    }
    prev = phys;
  }
  // Byte 30 starts instance 1: 128 + 200.
  EXPECT_EQ(v.physical_of(30), 328u);
}

}  // namespace
}  // namespace pario
