// Tests for file-view I/O: all strategies byte-identical; the BTIO
// datatype story end-to-end.
#include "pario/viewio.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hw/machine.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

constexpr int kProcs = 4;

// Interleaved-record file: rank r owns every 4th 1 KB record.
FileView rank_view(int rank) {
  return FileView(static_cast<std::uint64_t>(rank) * 1024,
                  DataType::contiguous(1024).resized(kProcs * 1024));
}

TEST(ViewIo, AllStrategiesWriteTheSameFile) {
  auto run = [&](ViewStrategy strat) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::sp2(kProcs));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("view", /*backed=*/true);
    mprt::Cluster::execute(machine, kProcs, [&](mprt::Comm& c)
                                                -> simkit::Task<void> {
      std::vector<std::byte> data(8 * 1024);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>((c.rank() * 64 + i) % 251);
      }
      const FileView v = rank_view(c.rank());
      co_await view_write(c, fs, f, v, 0, data.size(), strat, data);
    });
    std::vector<std::byte> whole(8 * 1024 * kProcs);
    fs.peek(f, 0, whole);
    return whole;
  };
  const auto indep = run(ViewStrategy::kIndependent);
  EXPECT_EQ(run(ViewStrategy::kSieved), indep);
  EXPECT_EQ(run(ViewStrategy::kCollective), indep);
  // Spot-check the interleaving: record k belongs to rank k % 4.
  EXPECT_EQ(indep[0], static_cast<std::byte>(0));
  EXPECT_EQ(indep[1024], static_cast<std::byte>(64 % 251));
}

TEST(ViewIo, ReadSeesWhatWasWritten) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::sp2(kProcs));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("rt", true);
  int good = 0;
  mprt::Cluster::execute(machine, kProcs, [&](mprt::Comm& c)
                                              -> simkit::Task<void> {
    const FileView v = rank_view(c.rank());
    std::vector<std::byte> data(4 * 1024,
                                static_cast<std::byte>(c.rank() + 10));
    co_await view_write(c, fs, f, v, 0, data.size(),
                        ViewStrategy::kCollective, data);
    std::vector<std::byte> back(data.size());
    co_await view_read(c, fs, f, v, 0, back.size(),
                       ViewStrategy::kCollective, back);
    if (back == data) ++good;
  });
  EXPECT_EQ(good, kProcs);
}

TEST(ViewIo, CollectiveFasterForFineInterleaving) {
  auto run = [&](ViewStrategy strat) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::sp2(8));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("perf");
    return mprt::Cluster::execute(machine, 8, [&](mprt::Comm& c)
                                                  -> simkit::Task<void> {
      // 512-byte records interleaved by rank: seek-storm territory.
      const FileView v(static_cast<std::uint64_t>(c.rank()) * 512,
                       DataType::contiguous(512).resized(8 * 512));
      co_await view_write(c, fs, f, v, 0, 256 * 512, strat);
    });
  };
  const double indep = run(ViewStrategy::kIndependent);
  const double coll = run(ViewStrategy::kCollective);
  EXPECT_LT(coll, indep * 0.5);
}

TEST(ViewIo, WindowOffsetsWork) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::sp2(kProcs));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("win", true);
  // Rank 0 writes logical [2048, 4096) of its view only.
  mprt::Cluster::execute(machine, kProcs, [&](mprt::Comm& c)
                                              -> simkit::Task<void> {
    if (c.rank() != 0) co_return;
    const FileView v = rank_view(0);
    std::vector<std::byte> data(2048, std::byte{0x77});
    co_await view_write(c, fs, f, v, 2048, data.size(),
                        ViewStrategy::kIndependent, data);
  });
  // Logical 2048 of rank 0's view = its 3rd record = physical record 8.
  std::vector<std::byte> got(1);
  fs.peek(f, 8 * 1024, got);
  EXPECT_EQ(got[0], std::byte{0x77});
  fs.peek(f, 0, got);
  EXPECT_EQ(got[0], std::byte{0});  // untouched
}

}  // namespace
}  // namespace pario
