// Tests for extent coalescing.
#include "pario/extent.hpp"

#include <gtest/gtest.h>

namespace pario {
namespace {

TEST(Coalesce, MergesFileAndBufferContiguous) {
  std::vector<Extent> v{{0, 10, 0}, {10, 10, 10}, {20, 10, 20}};
  auto out = coalesce(v);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Extent{0, 30, 0}));
}

TEST(Coalesce, KeepsFileGaps) {
  std::vector<Extent> v{{0, 10, 0}, {15, 10, 10}};
  auto out = coalesce(v);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Coalesce, KeepsBufferGaps) {
  // File-contiguous but the buffer destinations are not: cannot merge.
  std::vector<Extent> v{{0, 10, 0}, {10, 10, 50}};
  auto out = coalesce(v);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Coalesce, SortsByFileOffset) {
  std::vector<Extent> v{{20, 10, 20}, {0, 10, 0}, {10, 10, 10}};
  auto out = coalesce(v);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].length, 30u);
}

TEST(Coalesce, EmptyInput) { EXPECT_TRUE(coalesce({}).empty()); }

TEST(TotalLength, Sums) {
  EXPECT_EQ(total_length({{0, 5, 0}, {100, 7, 5}}), 12u);
  EXPECT_EQ(total_length({}), 0u);
}

}  // namespace
}  // namespace pario
