// Tests for the layout advisor — including cross-checks against the real
// extent geometry of OutOfCoreArray.
#include "pario/advisor.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

TEST(TileRunCount, MatchesClosedForm) {
  // Full-height tile of a col-major array: one coalesced run.
  EXPECT_EQ(tile_run_count(Layout::kColMajor, 256, 256, 256, 16), 1u);
  // Interior tile: one run per column.
  EXPECT_EQ(tile_run_count(Layout::kColMajor, 256, 256, 32, 16), 16u);
  // Row-major mirror image.
  EXPECT_EQ(tile_run_count(Layout::kRowMajor, 256, 256, 16, 256), 1u);
  EXPECT_EQ(tile_run_count(Layout::kRowMajor, 256, 256, 16, 32), 16u);
}

class RunCountSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(RunCountSweep, AgreesWithRealExtentGeometry) {
  const auto [nr, nc] = GetParam();
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(2, 2));
  pfs::StripedFs fs(machine);
  for (Layout layout : {Layout::kColMajor, Layout::kRowMajor}) {
    auto arr = OutOfCoreArray::create(fs, "x", 128, 64, 8, layout);
    EXPECT_EQ(tile_run_count(layout, 128, 64, nr, nc),
              arr.tile_extents(0, 0, nr, nc).size())
        << to_string(layout) << " tile " << nr << "x" << nc;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RunCountSweep,
    ::testing::Values(std::make_tuple(128ull, 8ull),
                      std::make_tuple(8ull, 64ull),
                      std::make_tuple(128ull, 64ull),
                      std::make_tuple(16ull, 16ull),
                      std::make_tuple(1ull, 64ull),
                      std::make_tuple(128ull, 1ull)));

TEST(LayoutAdvisor, ReproducesTheFftRecommendation) {
  // The paper's FFT: array A is read in full-height column panels (steps
  // 1 and 2); array B is written/read in full-width row panels (transpose
  // target and step 3).  The advisor must keep A column-major and flip B
  // to row-major — exactly the paper's optimization.
  constexpr std::uint64_t kN = 1024, kPanel = 128;
  LayoutAdvisor adv;
  adv.observe("A", kN, kN, kN, kPanel, /*times=*/kN / kPanel * 2);
  adv.observe("B", kN, kN, kPanel, kN, /*times=*/kN / kPanel * 2);
  EXPECT_EQ(adv.recommend("A"), Layout::kColMajor);
  EXPECT_EQ(adv.recommend("B"), Layout::kRowMajor);
  EXPECT_GT(adv.improvement("B"), 100.0);  // kN runs vs 1 run per tile
}

TEST(LayoutAdvisor, MixedAccessPicksTheDominantDirection) {
  LayoutAdvisor adv;
  // 10 row-panel accesses vs 2 column-panel accesses on the same array.
  adv.observe("M", 512, 512, 64, 512, 10);
  adv.observe("M", 512, 512, 512, 64, 2);
  EXPECT_EQ(adv.recommend("M"), Layout::kRowMajor);
}

TEST(LayoutAdvisor, SquareTilesAreLayoutNeutral) {
  LayoutAdvisor adv;
  adv.observe("S", 512, 512, 64, 64, 8);
  EXPECT_EQ(adv.estimated_calls("S", Layout::kColMajor),
            adv.estimated_calls("S", Layout::kRowMajor));
  EXPECT_DOUBLE_EQ(adv.improvement("S"), 1.0);
  EXPECT_EQ(adv.recommend("S"), Layout::kColMajor);  // Fortran default
}

TEST(LayoutAdvisor, UnknownArrayDefaults) {
  LayoutAdvisor adv;
  EXPECT_EQ(adv.recommend("nope"), Layout::kColMajor);
  EXPECT_EQ(adv.estimated_calls("nope", Layout::kRowMajor), 0u);
  EXPECT_DOUBLE_EQ(adv.improvement("nope"), 1.0);
}

TEST(LayoutAdvisor, ReportListsEveryArray) {
  LayoutAdvisor adv;
  adv.observe("alpha", 128, 128, 128, 16);
  adv.observe("beta", 128, 128, 16, 128);
  const std::string r = adv.report();
  EXPECT_NE(r.find("alpha"), std::string::npos);
  EXPECT_NE(r.find("beta"), std::string::npos);
  EXPECT_NE(r.find("row-major"), std::string::npos);
  EXPECT_NE(r.find("col-major"), std::string::npos);
}

}  // namespace
}  // namespace pario
