// Tests for two-phase aggregator tuning (ROMIO cb_nodes).
#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.hpp"
#include "mprt/comm.hpp"
#include "pario/twophase.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

constexpr std::uint64_t kRec = 1024;
constexpr std::uint64_t kRecs = 32;

std::vector<Extent> interleaved(int rank, int p) {
  std::vector<Extent> out;
  for (std::uint64_t i = 0; i < kRecs; ++i) {
    out.push_back(Extent{(static_cast<std::uint64_t>(rank) +
                          i * static_cast<std::uint64_t>(p)) *
                             kRec,
                         kRec, i * kRec});
  }
  return out;
}

TEST(Aggregators, DataIdenticalWithFewerAggregators) {
  auto run = [](int aggs) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(8, 2));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("agg", /*backed=*/true);
    mprt::Cluster::execute(machine, 8, [&](mprt::Comm& c)
                                           -> simkit::Task<void> {
      auto mine = interleaved(c.rank(), c.size());
      std::vector<std::byte> data(kRec * kRecs,
                                  static_cast<std::byte>(c.rank() + 1));
      TwoPhaseOptions opt;
      opt.aggregators = aggs;
      co_await TwoPhase::write(c, fs, f, std::move(mine), data, nullptr,
                               opt);
    });
    std::vector<std::byte> whole(kRec * kRecs * 8);
    fs.peek(f, 0, whole);
    return whole;
  };
  const auto all = run(0);
  EXPECT_EQ(run(2), all);
  EXPECT_EQ(run(1), all);
  EXPECT_EQ(run(5), all);  // non-divisor count
}

TEST(Aggregators, OnlyAggregatorsTouchTheFileSystem) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(8, 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("agg2");
  TwoPhaseStats per_rank[8];
  mprt::Cluster::execute(machine, 8, [&](mprt::Comm& c)
                                         -> simkit::Task<void> {
    TwoPhaseOptions opt;
    opt.aggregators = 2;
    co_await TwoPhase::write(c, fs, f, interleaved(c.rank(), c.size()), {},
                             &per_rank[c.rank()], opt);
  });
  for (int r = 0; r < 8; ++r) {
    if (r < 2) {
      EXPECT_GT(per_rank[r].io_calls, 0u) << "aggregator " << r;
    } else {
      EXPECT_EQ(per_rank[r].io_calls, 0u) << "non-aggregator " << r;
    }
  }
}

TEST(Aggregators, RoundTripWithFewAggregators) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(8, 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("agg3", true);
  int good = 0;
  mprt::Cluster::execute(machine, 8, [&](mprt::Comm& c)
                                         -> simkit::Task<void> {
    auto mine = interleaved(c.rank(), c.size());
    std::vector<std::byte> data(kRec * kRecs,
                                static_cast<std::byte>(c.rank() + 40));
    TwoPhaseOptions opt;
    opt.aggregators = 3;
    co_await TwoPhase::write(c, fs, f, mine, data, nullptr, opt);
    std::vector<std::byte> back(data.size());
    co_await TwoPhase::read(c, fs, f, mine, back, nullptr, opt);
    if (back == data) ++good;
  });
  EXPECT_EQ(good, 8);
}

TEST(Aggregators, MatchingIoNodesCanBeatAllRanksAggregating) {
  // 16 ranks funneling through 2 I/O nodes: 2 aggregators issue 2 large
  // sequential streams instead of 16 interleaved ones.
  auto run = [](int aggs) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(16, 2));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("agg4");
    return mprt::Cluster::execute(machine, 16, [&](mprt::Comm& c)
                                                    -> simkit::Task<void> {
      TwoPhaseOptions opt;
      opt.aggregators = aggs;
      // Collective READ: cold disks expose the access-stream structure.
      co_await TwoPhase::read(c, fs, f, interleaved(c.rank(), c.size()),
                              {}, nullptr, opt);
    });
  };
  const double all_ranks = run(0);
  const double two = run(2);
  EXPECT_LT(two, all_ranks * 1.2);  // never much worse
}

}  // namespace
}  // namespace pario
