// Tests for data sieving.
#include "pario/sieve.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  pfs::StripedFs fs;
  Rig() : machine(eng, hw::MachineConfig::paragon_small(4, 2)), fs(machine) {}
};

std::vector<Extent> strided_pieces(int n, std::uint64_t piece,
                                   std::uint64_t stride) {
  std::vector<Extent> v;
  for (int i = 0; i < n; ++i) {
    v.push_back(Extent{static_cast<std::uint64_t>(i) * stride, piece,
                       static_cast<std::uint64_t>(i) * piece});
  }
  return v;
}

TEST(SievedRead, ContentMatchesDirect) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("s", true);
  std::vector<std::byte> file_data(64 * 1024);
  for (std::size_t i = 0; i < file_data.size(); ++i) {
    file_data[i] = static_cast<std::byte>(i % 241);
  }
  rig.fs.poke(f, 0, file_data);
  auto pieces = strided_pieces(16, 512, 3000);
  std::vector<std::byte> sieved(16 * 512), direct(16 * 512);
  rig.eng.spawn([](Rig& r, pfs::FileId f, std::vector<Extent> p,
                   std::span<std::byte> a,
                   std::span<std::byte> b) -> simkit::Task<void> {
    co_await sieved_read(r.fs, r.machine.compute_node(0), f, p, a, 1 << 20);
    co_await direct_read(r.fs, r.machine.compute_node(0), f, p, b);
  }(rig, f, pieces, sieved, direct));
  rig.eng.run();
  EXPECT_EQ(sieved, direct);
  EXPECT_EQ(sieved[0], file_data[0]);
  EXPECT_EQ(sieved[512], file_data[3000]);
}

TEST(SievedRead, FewerCallsMoreBytes) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("s2");
  auto pieces = strided_pieces(64, 256, 8192);
  SieveStats sieve_stats, direct_stats;
  rig.eng.spawn([](Rig& r, pfs::FileId f, std::vector<Extent> p,
                   SieveStats& s, SieveStats& d) -> simkit::Task<void> {
    co_await sieved_read(r.fs, r.machine.compute_node(0), f, p, {}, 1 << 20,
                         &s);
    co_await direct_read(r.fs, r.machine.compute_node(0), f, p, {}, &d);
  }(rig, f, pieces, sieve_stats, direct_stats));
  rig.eng.run();
  EXPECT_LT(sieve_stats.io_calls, direct_stats.io_calls / 4);
  EXPECT_GT(sieve_stats.moved_bytes, sieve_stats.useful_bytes);
  EXPECT_EQ(sieve_stats.useful_bytes, direct_stats.useful_bytes);
}

TEST(SievedRead, FasterThanDirectForDenseStrides) {
  auto run = [](bool sieve) {
    Rig rig;
    const pfs::FileId f = rig.fs.create("s3");
    auto pieces = strided_pieces(128, 512, 4096);  // 12.5% density
    rig.eng.spawn([](Rig& r, pfs::FileId f, std::vector<Extent> p,
                     bool sv) -> simkit::Task<void> {
      if (sv) {
        co_await sieved_read(r.fs, r.machine.compute_node(0), f, p, {},
                             1 << 20);
      } else {
        co_await direct_read(r.fs, r.machine.compute_node(0), f, p);
      }
    }(rig, f, pieces, sieve));
    rig.eng.run();
    return rig.eng.now();
  };
  EXPECT_LT(run(true), run(false) * 0.5);
}

TEST(SievedRead, WindowLimitRespected) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("s4");
  auto pieces = strided_pieces(32, 1024, 64 * 1024);  // spans 2 MB
  SieveStats stats;
  rig.eng.spawn([](Rig& r, pfs::FileId f, std::vector<Extent> p,
                   SieveStats& s) -> simkit::Task<void> {
    co_await sieved_read(r.fs, r.machine.compute_node(0), f, p, {},
                         /*max_window=*/256 * 1024, &s);
  }(rig, f, pieces, stats));
  rig.eng.run();
  // 2 MB span with 256 KB windows: at least 8 windows.
  EXPECT_GE(stats.io_calls, 8u);
  // No window may exceed the limit (moved bytes per call bounded).
  EXPECT_LE(stats.moved_bytes, stats.io_calls * 256 * 1024);
}

TEST(SievedWrite, ReadModifyWritePreservesSurroundings) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("w", true);
  std::vector<std::byte> base(32 * 1024, std::byte{0xAA});
  rig.fs.poke(f, 0, base);
  // Overwrite two small pieces.
  std::vector<Extent> pieces{{1000, 100, 0}, {9000, 100, 100}};
  std::vector<std::byte> newdata(200, std::byte{0xBB});
  rig.eng.spawn([](Rig& r, pfs::FileId f, std::vector<Extent> p,
                   std::span<const std::byte> d) -> simkit::Task<void> {
    co_await sieved_write(r.fs, r.machine.compute_node(0), f, p, d, 1 << 20);
  }(rig, f, pieces, newdata));
  rig.eng.run();
  std::vector<std::byte> out(32 * 1024);
  rig.fs.peek(f, 0, out);
  EXPECT_EQ(out[999], std::byte{0xAA});
  EXPECT_EQ(out[1000], std::byte{0xBB});
  EXPECT_EQ(out[1099], std::byte{0xBB});
  EXPECT_EQ(out[1100], std::byte{0xAA});
  EXPECT_EQ(out[9050], std::byte{0xBB});
  EXPECT_EQ(out[9100], std::byte{0xAA});
}

TEST(SievedWrite, FullCoverSkipsPreRead) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("w2");
  // Pieces tile [0, 4096) completely: no read-modify-write needed.
  std::vector<Extent> pieces{{0, 2048, 0}, {2048, 2048, 2048}};
  SieveStats stats;
  rig.eng.spawn([](Rig& r, pfs::FileId f, std::vector<Extent> p,
                   SieveStats& s) -> simkit::Task<void> {
    co_await sieved_write(r.fs, r.machine.compute_node(0), f, p, {}, 1 << 20,
                          &s);
  }(rig, f, pieces, stats));
  rig.eng.run();
  EXPECT_EQ(stats.io_calls, 1u);  // one write, no pre-read
  EXPECT_EQ(stats.moved_bytes, 4096u);
}

}  // namespace
}  // namespace pario
