// Tests for the interface cost model (Fortran vs PASSION) — the paper's
// Table 2 vs Table 3 effect.
#include "pario/interface.hpp"

#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"
#include "trace/tracer.hpp"

namespace pario {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  pfs::StripedFs fs;
  Rig() : machine(eng, hw::MachineConfig::paragon_large(4, 12)), fs(machine) {}
};

double timed_reads(const InterfaceParams& params, int n_reads,
                   std::uint64_t chunk, trace::IoTracer* tracer = nullptr) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("x");
  double total = 0.0;
  rig.eng.spawn([](Rig& r, pfs::FileId f, InterfaceParams p, int n,
                   std::uint64_t chunk, double& out,
                   trace::IoTracer* tr) -> simkit::Task<void> {
    IoInterface io = co_await IoInterface::open(
        r.fs, r.machine.compute_node(0), f, p, tr);
    const simkit::Time t0 = r.eng.now();
    for (int i = 0; i < n; ++i) co_await io.read(chunk);
    out = r.eng.now() - t0;
    co_await io.close();
  }(rig, f, params, n_reads, chunk, total, tracer));
  rig.eng.run();
  return total;
}

TEST(IoInterface, FortranReadsCostMoreThanPassion) {
  const double fortran = timed_reads(InterfaceParams::fortran(), 50,
                                     64 * 1024);
  const double passion = timed_reads(InterfaceParams::passion(), 50,
                                     64 * 1024);
  // Table 2 vs Table 3: ~1.78x on the read path.  Accept a generous band.
  EXPECT_GT(fortran / passion, 1.4);
  EXPECT_LT(fortran / passion, 2.6);
}

TEST(IoInterface, FewerLargerCallsBeatManySmallOnesSameVolume) {
  // 8 MB moved either as 512 x 16 KB or as 8 x 1 MB: the per-call costs
  // must make the chunked-up version far slower on both interfaces.
  const double f_many = timed_reads(InterfaceParams::fortran(), 512,
                                    16 * 1024);
  const double f_few = timed_reads(InterfaceParams::fortran(), 8, 1 << 20);
  EXPECT_GT(f_many, 2.0 * f_few);
  const double p_many = timed_reads(InterfaceParams::passion(), 512,
                                    16 * 1024);
  const double p_few = timed_reads(InterfaceParams::passion(), 8, 1 << 20);
  EXPECT_GT(p_many, 1.3 * p_few);
}

TEST(IoInterface, TracerSeesInterfaceOverhead) {
  trace::IoTracer tr;
  const double total = timed_reads(InterfaceParams::fortran(), 10, 64 * 1024,
                                   &tr);
  EXPECT_EQ(tr.summary(pfs::OpKind::kRead).count, 10u);
  EXPECT_EQ(tr.summary(pfs::OpKind::kOpen).count, 1u);
  EXPECT_EQ(tr.summary(pfs::OpKind::kClose).count, 1u);
  // Traced read time equals the wall read time (interface included).
  EXPECT_NEAR(tr.summary(pfs::OpKind::kRead).time, total, 1e-9);
  // Each Fortran read must cost at least its 9 ms bookkeeping.
  EXPECT_GT(tr.summary(pfs::OpKind::kRead).latency.min(), 9e-3);
}

TEST(IoInterface, SeekCostsDifferByInterface) {
  auto timed_seeks = [](const InterfaceParams& p) {
    Rig rig;
    const pfs::FileId f = rig.fs.create("s");
    double total = 0.0;
    rig.eng.spawn([](Rig& r, pfs::FileId f, InterfaceParams p,
                     double& out) -> simkit::Task<void> {
      IoInterface io = co_await IoInterface::open(
          r.fs, r.machine.compute_node(0), f, p);
      const simkit::Time t0 = r.eng.now();
      for (int i = 0; i < 100; ++i) {
        co_await io.seek(static_cast<std::uint64_t>(i) * 4096);
      }
      out = r.eng.now() - t0;
    }(rig, f, p, total));
    rig.eng.run();
    return total;
  };
  const double fortran = timed_seeks(InterfaceParams::fortran());
  const double passion = timed_seeks(InterfaceParams::passion());
  // Table 2: 994 Fortran seeks = 8.01 s (~8 ms each); Table 3: 604k
  // PASSION seeks = 256 s (~0.42 ms each) — an order of magnitude apart.
  EXPECT_GT(fortran / passion, 8.0);
}

TEST(IoInterface, WritePathContentIntact) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("w", /*backed=*/true);
  std::vector<std::byte> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i % 251);
  }
  std::vector<std::byte> got(4096);
  rig.eng.spawn([](Rig& r, pfs::FileId f, std::span<const std::byte> in,
                   std::span<std::byte> out) -> simkit::Task<void> {
    IoInterface io = co_await IoInterface::open(
        r.fs, r.machine.compute_node(0), f, InterfaceParams::passion());
    co_await io.write(in.size(), in);
    co_await io.seek(0);
    co_await io.read(out.size(), out);
    co_await io.close();
  }(rig, f, data, got));
  rig.eng.run();
  EXPECT_EQ(got, data);
}

}  // namespace
}  // namespace pario
