// Tests for the hierarchical (aggregator-subset) two-phase path: under a
// kTwoLevel collective topology the group leaders do the file I/O and the
// replicated extent table is replaced by a bounds allreduce plus inline
// sub-extent records.  Byte-equivalence against the flat path is the
// contract (DESIGN.md §16).
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "hw/machine.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pario/twophase.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

constexpr std::uint64_t kRec = 512;

// Pseudo-random disjoint decomposition: global record i belongs to rank
// hash(i) % p; per-rank buffer offsets are sequential in record order.
std::vector<Extent> scattered(int rank, int p, std::uint64_t nrecs,
                              unsigned seed) {
  std::vector<Extent> out;
  std::uint64_t buf = 0;
  for (std::uint64_t i = 0; i < nrecs; ++i) {
    const unsigned owner =
        ((static_cast<unsigned>(i) * 2654435761u) ^ seed) %
        static_cast<unsigned>(p);
    if (owner == static_cast<unsigned>(rank)) {
      out.push_back(Extent{i * kRec, kRec, buf});
      buf += kRec;
    }
  }
  return out;
}

std::uint64_t my_bytes(int rank, int p, std::uint64_t nrecs, unsigned seed) {
  std::uint64_t n = 0;
  for (const auto& e : scattered(rank, p, nrecs, seed)) n += e.length;
  return n;
}

// Run a collective write of the scattered decomposition under `topo` and
// return the whole resulting file image.
std::vector<std::byte> write_image(mprt::CollectiveTopology topo, int p,
                                   std::uint64_t nrecs, unsigned seed) {
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("hier", /*backed=*/true);
  mprt::Cluster cluster(machine, p);
  cluster.set_topology(topo);
  const std::function<simkit::Task<void>(mprt::Comm&)> body =
      [&](mprt::Comm& c) -> simkit::Task<void> {
    auto mine = scattered(c.rank(), p, nrecs, seed);
    std::vector<std::byte> data(my_bytes(c.rank(), p, nrecs, seed));
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::byte>(c.rank() * 41 + i);
    }
    co_await TwoPhase::write(c, fs, f, std::move(mine), data);
  };
  eng.spawn(cluster.run(body));
  eng.run();
  std::vector<std::byte> whole(nrecs * kRec);
  fs.peek(f, 0, whole);
  return whole;
}

TEST(HierTwoPhase, WriteMatchesFlatByteForByte) {
  for (int p : {3, 8}) {
    for (unsigned seed : {1u, 9u}) {
      const auto flat = write_image(
          {mprt::CollectiveTopology::Kind::kFlat, 0}, p, 64, seed);
      for (int width : {0, 2, p}) {
        const auto hier = write_image(
            {mprt::CollectiveTopology::Kind::kTwoLevel, width}, p, 64,
            seed);
        EXPECT_EQ(hier, flat) << "p=" << p << " width=" << width
                              << " seed=" << seed;
      }
    }
  }
}

TEST(HierTwoPhase, RoundTripRestoresEveryRanksBuffer) {
  const int p = 8;
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(8, 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("hier_rt", true);
  mprt::Cluster cluster(machine, p);
  cluster.set_topology({mprt::CollectiveTopology::Kind::kTwoLevel, 4});
  int good = 0;
  const std::function<simkit::Task<void>(mprt::Comm&)> body =
      [&](mprt::Comm& c) -> simkit::Task<void> {
    auto mine = scattered(c.rank(), p, 96, 5u);
    std::vector<std::byte> data(my_bytes(c.rank(), p, 96, 5u));
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::byte>(c.rank() * 17 + i * 3);
    }
    co_await TwoPhase::write(c, fs, f, mine, data);
    std::vector<std::byte> back(data.size());
    co_await TwoPhase::read(c, fs, f, mine, back);
    if (back == data) ++good;
  };
  eng.spawn(cluster.run(body));
  eng.run();
  EXPECT_EQ(good, p);
}

TEST(HierTwoPhase, OnlyGroupLeadersTouchTheFileSystem) {
  const int p = 8;
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(8, 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("hier_agg");
  mprt::Cluster cluster(machine, p);
  cluster.set_topology({mprt::CollectiveTopology::Kind::kTwoLevel, 4});
  TwoPhaseStats per_rank[8];
  const std::function<simkit::Task<void>(mprt::Comm&)> body =
      [&](mprt::Comm& c) -> simkit::Task<void> {
    co_await TwoPhase::write(c, fs, f, scattered(c.rank(), p, 256, 2u), {},
                             &per_rank[c.rank()]);
    co_await TwoPhase::read(c, fs, f, scattered(c.rank(), p, 256, 2u), {},
                            &per_rank[c.rank()]);
  };
  eng.spawn(cluster.run(body));
  eng.run();
  // Leaders at width 4 are ranks 0 and 4 — exactly pario's aggregators.
  for (int r = 0; r < p; ++r) {
    if (r % 4 == 0) {
      EXPECT_GT(per_rank[r].io_calls, 0u) << "leader " << r;
    } else {
      EXPECT_EQ(per_rank[r].io_calls, 0u) << "member " << r;
    }
  }
}

TEST(HierTwoPhase, EmptyCollectiveCompletesEverywhere) {
  // No rank contributes extents: the bounds allreduce yields an empty
  // range and every rank returns without deadlock.
  const int p = 5;
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(5, 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("hier_empty");
  mprt::Cluster cluster(machine, p);
  cluster.set_topology({mprt::CollectiveTopology::Kind::kTwoLevel, 0});
  int done = 0;
  const std::function<simkit::Task<void>(mprt::Comm&)> body =
      [&](mprt::Comm& c) -> simkit::Task<void> {
    co_await TwoPhase::write(c, fs, f, {});
    co_await TwoPhase::read(c, fs, f, {});
    ++done;
  };
  eng.spawn(cluster.run(body));
  eng.run();
  EXPECT_EQ(done, p);
}

}  // namespace
}  // namespace pario
