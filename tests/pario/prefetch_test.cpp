// Tests for the prefetcher: overlap, accounting, data integrity.
#include "pario/prefetch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  pfs::StripedFs fs;
  Rig() : machine(eng, hw::MachineConfig::paragon_large(4, 12)), fs(machine) {}
};

// Consume `chunks` chunks, spending `compute_s` simulated seconds on each,
// returning (elapsed, wait_time, copy_time).
struct RunResult {
  double elapsed;
  double wait;
  double copy;
};

RunResult run_prefetch(double compute_s, std::uint64_t chunks,
                       std::uint64_t chunk_bytes) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("p");
  RunResult res{};
  rig.eng.spawn([](Rig& r, pfs::FileId f, double compute, std::uint64_t n,
                   std::uint64_t cb, RunResult& out) -> simkit::Task<void> {
    IoInterface io = co_await IoInterface::open(
        r.fs, r.machine.compute_node(0), f, InterfaceParams::passion());
    const simkit::Time t0 = r.eng.now();
    Prefetcher pf(io, 0, cb, n * cb);
    while (!pf.done()) {
      (void)co_await pf.next();
      co_await r.eng.delay(compute);
    }
    out.elapsed = r.eng.now() - t0;
    out.wait = pf.wait_time();
    out.copy = pf.copy_time();
  }(rig, f, compute_s, chunks, chunk_bytes, res));
  rig.eng.run();
  return res;
}

TEST(Prefetcher, HidesIoBehindCompute) {
  // With compute >= chunk I/O time, waits after the first chunk vanish.
  const auto pf = run_prefetch(0.2, 16, 256 * 1024);
  // Only the cold first chunk should cost real wait.
  EXPECT_LT(pf.wait, 0.2);
  // Elapsed ~ first fetch + 16 * compute + copies.
  EXPECT_LT(pf.elapsed, 16 * 0.2 + 0.5);
}

TEST(Prefetcher, FasterThanSerialReads) {
  Rig rig_serial;
  const pfs::FileId fs_f = rig_serial.fs.create("ser");
  double serial_elapsed = 0.0;
  rig_serial.eng.spawn(
      [](Rig& r, pfs::FileId f, double& out) -> simkit::Task<void> {
        IoInterface io = co_await IoInterface::open(
            r.fs, r.machine.compute_node(0), f, InterfaceParams::passion());
        const simkit::Time t0 = r.eng.now();
        for (std::uint64_t i = 0; i < 16; ++i) {
          co_await io.pread(i * 256 * 1024, 256 * 1024);
          co_await r.eng.delay(0.1);
        }
        out = r.eng.now() - t0;
      }(rig_serial, fs_f, serial_elapsed));
  rig_serial.eng.run();

  const auto pf = run_prefetch(0.1, 16, 256 * 1024);
  EXPECT_LT(pf.elapsed, serial_elapsed);
}

TEST(Prefetcher, AccountsWaitWhenComputeIsShort) {
  // With near-zero compute the consumer must wait for nearly every chunk.
  const auto pf = run_prefetch(0.0001, 8, 256 * 1024);
  EXPECT_GT(pf.wait, 0.01);
  EXPECT_GT(pf.copy, 0.0);
}

TEST(Prefetcher, DeliversExactChunkCount) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("n");
  std::uint64_t delivered = 0;
  rig.eng.spawn([](Rig& r, pfs::FileId f, std::uint64_t& out)
                    -> simkit::Task<void> {
    IoInterface io = co_await IoInterface::open(
        r.fs, r.machine.compute_node(0), f, InterfaceParams::passion());
    Prefetcher pf(io, 0, 64 * 1024, 5 * 64 * 1024);
    while (!pf.done()) (void)co_await pf.next();
    // Extra next() calls are harmless no-ops.
    (void)co_await pf.next();
    out = pf.chunks_delivered();
  }(rig, f, delivered));
  rig.eng.run();
  EXPECT_EQ(delivered, 5u);
}

TEST(Prefetcher, BackedModeReturnsRealBytes) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("d", /*backed=*/true);
  std::vector<std::byte> content(4 * 64 * 1024);
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<std::byte>(i % 239);
  }
  rig.fs.poke(f, 0, content);
  bool all_match = true;
  rig.eng.spawn([](Rig& r, pfs::FileId f, std::span<const std::byte> ref,
                   bool& ok) -> simkit::Task<void> {
    IoInterface io = co_await IoInterface::open(
        r.fs, r.machine.compute_node(0), f, InterfaceParams::passion());
    Prefetcher pf(io, 0, 64 * 1024, 4 * 64 * 1024, /*backed=*/true);
    std::uint64_t idx = 0;
    while (!pf.done()) {
      auto chunk = co_await pf.next();
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        if (chunk[i] != ref[idx * 64 * 1024 + i]) {
          ok = false;
          co_return;
        }
      }
      ++idx;
    }
  }(rig, f, content, all_match));
  rig.eng.run();
  EXPECT_TRUE(all_match);
}

}  // namespace
}  // namespace pario
