// Tests for two-phase collective I/O: byte-exactness against direct
// access and the performance property the paper exploits.
#include "pario/twophase.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "mprt/comm.hpp"
#include "pario/resilient.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"
#include "simkit/rng.hpp"

namespace pario {
namespace {

TEST(TwoPhaseHelpers, IntersectClipsAndRemaps) {
  std::vector<Extent> v{{0, 100, 0}, {150, 100, 100}};
  auto out = TwoPhase::intersect(v, 50, 200);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Extent{50, 50, 50}));    // clipped head, buf follows
  EXPECT_EQ(out[1], (Extent{150, 50, 100}));  // clipped tail
}

TEST(TwoPhaseHelpers, IntersectEmptyWhenDisjoint) {
  std::vector<Extent> v{{0, 10, 0}};
  EXPECT_TRUE(TwoPhase::intersect(v, 100, 200).empty());
}

TEST(TwoPhaseHelpers, MergeRunsHandlesOverlapAndAdjacency) {
  std::vector<Extent> v{{0, 10, 0}, {10, 5, 0}, {20, 10, 0}, {25, 10, 0}};
  auto runs = TwoPhase::merge_runs(v);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].file_offset, 0u);
  EXPECT_EQ(runs[0].length, 15u);
  EXPECT_EQ(runs[1].file_offset, 20u);
  EXPECT_EQ(runs[1].length, 15u);
}

// Each of P ranks owns interleaved records of a shared file (the BTIO
// pattern).  Collective write then collective read must round-trip the
// exact bytes.
class TwoPhaseRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TwoPhaseRoundTrip, WriteThenReadByteExact) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("shared", /*backed=*/true);

  constexpr std::uint64_t kRec = 700;  // deliberately unaligned
  constexpr std::uint64_t kRecsPerRank = 24;
  auto fill = [](int rank, std::uint64_t i) {
    return static_cast<std::byte>((rank * 37 + static_cast<int>(i)) % 251);
  };

  std::vector<bool> ok(static_cast<std::size_t>(p), false);
  mprt::Cluster::execute(machine, p, [&](mprt::Comm& c)
                                         -> simkit::Task<void> {
    const int r = c.rank();
    // Rank r owns records r, r+P, r+2P, ...
    std::vector<Extent> mine;
    std::vector<std::byte> data(kRec * kRecsPerRank);
    for (std::uint64_t i = 0; i < kRecsPerRank; ++i) {
      const std::uint64_t rec_idx =
          static_cast<std::uint64_t>(r) + i * static_cast<std::uint64_t>(p);
      mine.push_back(Extent{rec_idx * kRec, kRec, i * kRec});
      for (std::uint64_t b = 0; b < kRec; ++b) {
        data[i * kRec + b] = fill(r, i * kRec + b);
      }
    }
    co_await TwoPhase::write(c, fs, f, mine, data);
    std::vector<std::byte> back(data.size(), std::byte{0xEE});
    co_await TwoPhase::read(c, fs, f, mine, back);
    ok[static_cast<std::size_t>(r)] = back == data;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, TwoPhaseRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(TwoPhase, MatchesDirectWriteContent) {
  // Two-phase write must leave the file byte-identical to what direct
  // per-rank writes produce.
  constexpr int p = 4;
  constexpr std::uint64_t kRec = 512;
  constexpr std::uint64_t kRecs = 8;

  auto run = [&](bool collective) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(p, 2));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("out", true);
    mprt::Cluster::execute(machine, p, [&](mprt::Comm& c)
                                           -> simkit::Task<void> {
      const int r = c.rank();
      std::vector<Extent> mine;
      std::vector<std::byte> data(kRec * kRecs);
      for (std::uint64_t i = 0; i < kRecs; ++i) {
        const std::uint64_t rec = static_cast<std::uint64_t>(r) + i * p;
        mine.push_back(Extent{rec * kRec, kRec, i * kRec});
        for (std::uint64_t b = 0; b < kRec; ++b) {
          data[i * kRec + b] = static_cast<std::byte>((rec + b) % 253);
        }
      }
      if (collective) {
        co_await TwoPhase::write(c, fs, f, mine, data);
      } else {
        for (std::uint64_t i = 0; i < kRecs; ++i) {
          co_await fs.pwrite(
              c.node(), f, mine[i].file_offset, kRec,
              std::span<const std::byte>(data).subspan(i * kRec, kRec));
        }
      }
    });
    std::vector<std::byte> whole(kRec * kRecs * p);
    fs.peek(f, 0, whole);
    return whole;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(TwoPhase, FewerIoCallsThanDirect) {
  constexpr int p = 8;
  constexpr std::uint64_t kRec = 2048;
  constexpr std::uint64_t kRecs = 32;
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(p, 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("perf");
  TwoPhaseStats stats;
  mprt::Cluster::execute(machine, p, [&](mprt::Comm& c)
                                         -> simkit::Task<void> {
    std::vector<Extent> mine;
    for (std::uint64_t i = 0; i < kRecs; ++i) {
      mine.push_back(Extent{(static_cast<std::uint64_t>(c.rank()) + i * p) *
                                kRec,
                            kRec, i * kRec});
    }
    co_await TwoPhase::write(c, fs, f, mine, {}, &stats);
  });
  // The whole interleaved region is contiguous: P ranks x 1 run each,
  // versus P x kRecs direct calls.
  EXPECT_LE(stats.io_calls, static_cast<std::uint64_t>(p));
  EXPECT_EQ(stats.io_bytes, kRec * kRecs * p);
}

TEST(TwoPhase, FasterThanDirectForInterleavedAccess) {
  constexpr int p = 8;
  constexpr std::uint64_t kRec = 1024;  // small records: seek-dominated
  constexpr std::uint64_t kRecs = 64;
  auto run = [&](bool collective) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(p, 2));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("perf2");
    return mprt::Cluster::execute(machine, p, [&](mprt::Comm& c)
                                                  -> simkit::Task<void> {
      std::vector<Extent> mine;
      for (std::uint64_t i = 0; i < kRecs; ++i) {
        mine.push_back(
            Extent{(static_cast<std::uint64_t>(c.rank()) + i * p) * kRec,
                   kRec, i * kRec});
      }
      if (collective) {
        co_await TwoPhase::write(c, fs, f, mine);
      } else {
        for (const auto& e : mine) {
          co_await fs.pwrite(c.node(), f, e.file_offset, e.length);
        }
      }
    });
  };
  const double direct = run(false);
  const double collective = run(true);
  EXPECT_LT(collective, direct * 0.5);
}

TEST(TwoPhase, EmptyPlansAreHarmless) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("empty");
  mprt::Cluster::execute(machine, 4, [&](mprt::Comm& c)
                                         -> simkit::Task<void> {
    co_await TwoPhase::write(c, fs, f, {});
    co_await TwoPhase::read(c, fs, f, {});
  });
  EXPECT_EQ(fs.file_size(f), 0u);
}

TEST(TwoPhase, UnevenContributionsWork) {
  // Rank 0 contributes nothing; rank P-1 contributes double.  (Exercises
  // empty-intersection paths and unaligned domain edges.)
  constexpr int p = 4;
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(p, 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("uneven", true);
  std::vector<bool> ok(p, false);
  mprt::Cluster::execute(machine, p, [&](mprt::Comm& c)
                                         -> simkit::Task<void> {
    const int r = c.rank();
    std::vector<Extent> mine;
    std::vector<std::byte> data;
    if (r > 0) {
      const std::uint64_t n = (r == p - 1) ? 2000 : 1000;
      data.resize(n, static_cast<std::byte>(r));
      mine.push_back(Extent{static_cast<std::uint64_t>(r) * 10'000, n, 0});
    }
    co_await TwoPhase::write(c, fs, f, mine, data);
    std::vector<std::byte> back(data.size(), std::byte{0});
    co_await TwoPhase::read(c, fs, f, mine, back);
    ok[static_cast<std::size_t>(r)] = back == data;
  });
  for (int r = 0; r < p; ++r) EXPECT_TRUE(ok[static_cast<std::size_t>(r)]);
}

// Regression: a backed-file collective read whose retry ladder runs dry
// breaks out of the I/O loop early, but the exchange phase still packs
// from EVERY run buffer.  The unread runs must be valid (zeroed) storage,
// not unsized vectors — previously a heap out-of-bounds read (ASan).
TEST(TwoPhase, FailedRetriedReadLeavesLaterRunsValid) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.0, 1e6);  // both servers down: the first run's
  plan.crash_node(1, 0.0, 1e6);  // read fails, later runs stay unread
  fault::Injector inj(plan);
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(2, 2));
  pfs::StripedFs fs(machine, &inj);
  const pfs::FileId f = fs.create("doomed", /*backed=*/true);
  std::vector<std::byte> content(64 * 1024, std::byte{0x5A});
  fs.poke(f, 0, content);

  RetryPolicy policy;
  policy.max_attempts = 2;
  RetryStats stats;
  TwoPhaseOptions opt;
  opt.retry = &policy;
  opt.retry_stats = &stats;

  std::vector<bool> threw(2, false);
  mprt::Cluster::execute(machine, 2, [&](mprt::Comm& c)
                                         -> simkit::Task<void> {
    const int r = c.rank();
    // 512-byte records on a 2 KB stride: every aggregator domain holds
    // several runs that merge_runs cannot coalesce, so a failure on the
    // first one leaves genuinely unread buffers behind.
    std::vector<Extent> mine;
    for (std::uint64_t i = 0; i < 16; ++i) {
      mine.push_back(Extent{(i * 2 + static_cast<std::uint64_t>(r)) * 2048,
                            512, i * 512});
    }
    std::vector<std::byte> back(16 * 512, std::byte{0xEE});
    try {
      co_await TwoPhase::read(c, fs, f, mine, back, nullptr, opt);
    } catch (const pfs::IoError&) {
      threw[static_cast<std::size_t>(r)] = true;
    }
  });
  // The stripe-aligned domain partition hands the whole (small) file to
  // rank 0, so only that aggregator does I/O and sees the error; rank 1
  // completes with discardable zeroes, which the failure agreement in the
  // caller (see ckpt::run) is responsible for coordinating.
  EXPECT_TRUE(threw[0]) << "exhausted retries must surface to the caller";
  EXPECT_GT(stats.exhausted, 0u);
}

}  // namespace
}  // namespace pario
