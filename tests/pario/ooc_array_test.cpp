// Tests for out-of-core arrays: geometry, layout effects, data integrity.
#include "pario/ooc_array.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  pfs::StripedFs fs;
  Rig() : machine(eng, hw::MachineConfig::paragon_small(4, 2)), fs(machine) {}
};

TEST(OutOfCoreArray, OffsetGeometry) {
  Rig rig;
  auto cm = OutOfCoreArray::create(rig.fs, "cm", 100, 50, 8,
                                   Layout::kColMajor);
  auto rm = OutOfCoreArray::create(rig.fs, "rm", 100, 50, 8,
                                   Layout::kRowMajor);
  EXPECT_EQ(cm.offset_of(0, 0), 0u);
  EXPECT_EQ(cm.offset_of(1, 0), 8u);         // down a column: adjacent
  EXPECT_EQ(cm.offset_of(0, 1), 100u * 8u);  // next column: far
  EXPECT_EQ(rm.offset_of(0, 1), 8u);
  EXPECT_EQ(rm.offset_of(1, 0), 50u * 8u);
  EXPECT_EQ(cm.total_bytes(), 100u * 50u * 8u);
}

TEST(OutOfCoreArray, TileExtentCountsReflectLayout) {
  Rig rig;
  auto cm = OutOfCoreArray::create(rig.fs, "cm", 256, 256, 8,
                                   Layout::kColMajor);
  // A full-height column panel of a col-major array is ONE contiguous run.
  EXPECT_EQ(cm.tile_extents(0, 0, 256, 16).size(), 1u);
  // A full-width row panel is 256 small strided runs.
  EXPECT_EQ(cm.tile_extents(0, 0, 16, 256).size(), 256u);
  // Interior tile: one run per column.
  EXPECT_EQ(cm.tile_extents(10, 10, 32, 9).size(), 9u);

  auto rm = OutOfCoreArray::create(rig.fs, "rm", 256, 256, 8,
                                   Layout::kRowMajor);
  EXPECT_EQ(rm.tile_extents(0, 0, 16, 256).size(), 1u);
  EXPECT_EQ(rm.tile_extents(0, 0, 256, 16).size(), 256u);
}

TEST(OutOfCoreArray, TileRoundTripBacked) {
  Rig rig;
  auto a = OutOfCoreArray::create(rig.fs, "a", 64, 64, 8, Layout::kColMajor,
                                  /*backed=*/true);
  std::vector<std::byte> tile(16 * 8 * 8);
  for (std::size_t i = 0; i < tile.size(); ++i) {
    tile[i] = static_cast<std::byte>(i % 199);
  }
  std::vector<std::byte> back(tile.size());
  rig.eng.spawn([](Rig& r, OutOfCoreArray& a, std::span<const std::byte> in,
                   std::span<std::byte> out) -> simkit::Task<void> {
    co_await a.write_tile(r.machine.compute_node(0), 8, 24, 16, 8, in);
    co_await a.read_tile(r.machine.compute_node(0), 8, 24, 16, 8, out);
  }(rig, a, tile, back));
  rig.eng.run();
  EXPECT_EQ(back, tile);
}

TEST(OutOfCoreArray, SubTileReadSeesWrittenElements) {
  Rig rig;
  auto a = OutOfCoreArray::create(rig.fs, "a", 32, 32, 8, Layout::kColMajor,
                                  true);
  // Write the whole array as one tile with element (r,c) = r*100+c stored
  // as the first byte of each 8-byte element.
  std::vector<std::byte> whole(32 * 32 * 8, std::byte{0});
  for (std::uint64_t c = 0; c < 32; ++c) {
    for (std::uint64_t r = 0; r < 32; ++r) {
      whole[(c * 32 + r) * 8] = static_cast<std::byte>(r * 7 + c);
    }
  }
  std::vector<std::byte> sub(4 * 2 * 8);
  rig.eng.spawn([](Rig& rg, OutOfCoreArray& a, std::span<const std::byte> in,
                   std::span<std::byte> out) -> simkit::Task<void> {
    co_await a.write_tile(rg.machine.compute_node(0), 0, 0, 32, 32, in);
    co_await a.read_tile(rg.machine.compute_node(0), 10, 20, 4, 2, out);
  }(rig, a, whole, sub));
  rig.eng.run();
  // Column-major tile buffer: element (10+i, 20+j) at ((j*4)+i)*8.
  for (std::uint64_t j = 0; j < 2; ++j) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      EXPECT_EQ(sub[(j * 4 + i) * 8],
                static_cast<std::byte>((10 + i) * 7 + (20 + j)));
    }
  }
}

TEST(OutOfCoreArray, ColumnPanelFasterThanRowPanelOnColMajor) {
  // The FFT layout effect in miniature.
  auto run = [](bool column_panel) {
    Rig rig;
    auto a = OutOfCoreArray::create(rig.fs, "a", 1024, 1024, 8,
                                    Layout::kColMajor);
    rig.eng.spawn([](Rig& r, OutOfCoreArray& a, bool col)
                      -> simkit::Task<void> {
      if (col) {
        co_await a.read_tile(r.machine.compute_node(0), 0, 0, 1024, 64);
      } else {
        co_await a.read_tile(r.machine.compute_node(0), 0, 0, 64, 1024);
      }
    }(rig, a, column_panel));
    rig.eng.run();
    return rig.eng.now();
  };
  const double col = run(true);
  const double row = run(false);
  EXPECT_LT(col * 5.0, row);  // same bytes, wildly different call counts
}

TEST(OutOfCoreArray, IoCallCounterTracksExtents) {
  Rig rig;
  auto a = OutOfCoreArray::create(rig.fs, "a", 128, 128, 8,
                                  Layout::kRowMajor);
  rig.eng.spawn([](Rig& r, OutOfCoreArray& a) -> simkit::Task<void> {
    co_await a.read_tile(r.machine.compute_node(0), 0, 0, 8, 128);  // 1 run
    co_await a.read_tile(r.machine.compute_node(0), 0, 0, 8, 64);   // 8 runs
  }(rig, a));
  rig.eng.run();
  EXPECT_EQ(a.io_calls(), 9u);
}

}  // namespace
}  // namespace pario
