// Retry/backoff/fail-over recovery policy over the faulty file system.
#include "pario/resilient.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "pfs/types.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  pfs::StripedFs fs;
  explicit Rig(fault::Injector* injector = nullptr)
      : machine(eng, hw::MachineConfig::paragon_small(4, 2)),
        fs(machine, injector) {}
};

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xFF);
  }
  return v;
}

// Transient errors + retries: the data still arrives intact, the retries
// show up in the stats, and the recovery costs strictly more simulated
// time than the fault-free run of the identical access sequence.
TEST(Resilient, TransientRetriesDeliverCorrectDataButCostTime) {
  const auto data = pattern(640 * 1024);  // 20 chunks: failures certain
  auto timed_read = [&data](fault::Injector* inj, RetryStats* stats,
                            std::vector<std::byte>* got) {
    Rig rig(inj);
    const pfs::FileId f = rig.fs.create("data", /*backed=*/true);
    rig.fs.poke(f, 0, data);
    rig.eng.spawn([](Rig& r, pfs::FileId f, RetryStats* stats,
                     std::vector<std::byte>* got) -> simkit::Task<void> {
      RetryPolicy policy;
      policy.max_attempts = 12;  // enough to outlast p=0.3 streaks
      for (std::uint64_t off = 0; off < got->size(); off += 32 * 1024) {
        const std::uint64_t len =
            std::min<std::uint64_t>(32 * 1024, got->size() - off);
        co_await resilient_pread(
            r.fs, r.machine.compute_node(0), f, off, len,
            std::span<std::byte>(*got).subspan(off, len), policy, stats);
      }
    }(rig, f, stats, got));
    rig.eng.run();
    return rig.eng.now();
  };

  std::vector<std::byte> clean_got(data.size());
  const simkit::Time clean = timed_read(nullptr, nullptr, &clean_got);
  EXPECT_EQ(clean_got, data);

  fault::InjectionPlan plan;
  plan.with_transient_errors(0.4);
  plan.seed = 99;
  fault::Injector inj(plan);
  RetryStats stats;
  std::vector<std::byte> faulty_got(data.size());
  const simkit::Time faulty = timed_read(&inj, &stats, &faulty_got);

  EXPECT_EQ(faulty_got, data) << "retried reads must deliver intact data";
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
  EXPECT_GT(faulty, clean)
      << "recovery must cost simulated time (re-issues + backoff)";
}

// Node-down on the primary: the operation fails over to the replica file
// (different first server) and completes without exhausting the ladder.
TEST(Resilient, FailsOverToReplicaWhenPrimaryNodeIsDown) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.0, 1e6);  // primary's server, down for the test
  fault::Injector inj(plan);
  Rig rig(&inj);
  // Sequential file ids land on different first servers (id % io_nodes);
  // both files fit one stripe, so each lives wholly on its first server.
  const pfs::FileId primary = rig.fs.create("state", true);    // node 0
  const pfs::FileId replica = rig.fs.create("state.m", true);  // node 1
  const auto data = pattern(4096, 5);
  rig.fs.poke(replica, 0, data);

  RetryStats stats;
  std::vector<std::byte> got(data.size());
  bool wrote = false;
  rig.eng.spawn([](Rig& r, pfs::FileId primary, pfs::FileId replica,
                   RetryStats& stats, std::span<std::byte> got,
                   bool& wrote) -> simkit::Task<void> {
    RetryPolicy policy;
    policy.max_attempts = 2;
    policy.replica = replica;
    co_await resilient_pread(r.fs, r.machine.compute_node(0), primary, 0,
                             got.size(), got, policy, &stats);
    // Writes mirror to the replica when the primary is unreachable.
    co_await resilient_pwrite(r.fs, r.machine.compute_node(0), primary,
                              8192, got.size(), got, policy, &stats);
    wrote = true;
  }(rig, primary, replica, stats, got, wrote));
  rig.eng.run();

  EXPECT_EQ(got, data) << "fail-over read must return the replica's bytes";
  EXPECT_TRUE(wrote);
  EXPECT_EQ(stats.failovers, 2u);
  EXPECT_EQ(stats.diverged_writes, 1u)
      << "the redirected write leaves the primary stale";
  EXPECT_EQ(stats.exhausted, 0u);
  std::vector<std::byte> mirrored(data.size());
  rig.fs.peek(replica, 8192, mirrored);
  EXPECT_EQ(mirrored, data);
}

// No replica and a dead node: the ladder runs dry and the typed error
// reaches the caller.
TEST(Resilient, ExhaustsAndRethrowsWithoutReplica) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.0, 1e6);
  fault::Injector inj(plan);
  Rig rig(&inj);
  const pfs::FileId f = rig.fs.create("doomed");
  RetryStats stats;
  bool threw = false;
  rig.eng.spawn([](Rig& r, pfs::FileId f, RetryStats& stats,
                   bool& threw) -> simkit::Task<void> {
    RetryPolicy policy;
    policy.max_attempts = 3;
    try {
      co_await resilient_pwrite(r.fs, r.machine.compute_node(0), f, 0, 4096,
                                {}, policy, &stats);
    } catch (const pfs::IoError& e) {
      threw = true;
      EXPECT_EQ(e.kind(), pfs::IoErrorKind::kNodeDown);
    }
  }(rig, f, stats, threw));
  rig.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 1u);
  EXPECT_GT(stats.backoff_time, 0.0);
}

}  // namespace
}  // namespace pario
