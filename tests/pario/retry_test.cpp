// Retry/backoff/fail-over recovery policy over the faulty file system.
#include "pario/resilient.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "pfs/types.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  pfs::StripedFs fs;
  explicit Rig(fault::Injector* injector = nullptr)
      : machine(eng, hw::MachineConfig::paragon_small(4, 2)),
        fs(machine, injector) {}
};

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xFF);
  }
  return v;
}

// Transient errors + retries: the data still arrives intact, the retries
// show up in the stats, and the recovery costs strictly more simulated
// time than the fault-free run of the identical access sequence.
TEST(Resilient, TransientRetriesDeliverCorrectDataButCostTime) {
  const auto data = pattern(640 * 1024);  // 20 chunks: failures certain
  auto timed_read = [&data](fault::Injector* inj, RetryStats* stats,
                            std::vector<std::byte>* got) {
    Rig rig(inj);
    const pfs::FileId f = rig.fs.create("data", /*backed=*/true);
    rig.fs.poke(f, 0, data);
    rig.eng.spawn([](Rig& r, pfs::FileId f, RetryStats* stats,
                     std::vector<std::byte>* got) -> simkit::Task<void> {
      RetryPolicy policy;
      policy.max_attempts = 12;  // enough to outlast p=0.3 streaks
      for (std::uint64_t off = 0; off < got->size(); off += 32 * 1024) {
        const std::uint64_t len =
            std::min<std::uint64_t>(32 * 1024, got->size() - off);
        co_await resilient_pread(
            r.fs, r.machine.compute_node(0), f, off, len,
            std::span<std::byte>(*got).subspan(off, len), policy, stats);
      }
    }(rig, f, stats, got));
    rig.eng.run();
    return rig.eng.now();
  };

  std::vector<std::byte> clean_got(data.size());
  const simkit::Time clean = timed_read(nullptr, nullptr, &clean_got);
  EXPECT_EQ(clean_got, data);

  fault::InjectionPlan plan;
  plan.with_transient_errors(0.4);
  plan.seed = 99;
  fault::Injector inj(plan);
  RetryStats stats;
  std::vector<std::byte> faulty_got(data.size());
  const simkit::Time faulty = timed_read(&inj, &stats, &faulty_got);

  EXPECT_EQ(faulty_got, data) << "retried reads must deliver intact data";
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
  EXPECT_GT(faulty, clean)
      << "recovery must cost simulated time (re-issues + backoff)";
}

// Node-down on the primary: the operation fails over to the replica file
// (different first server) and completes without exhausting the ladder.
TEST(Resilient, FailsOverToReplicaWhenPrimaryNodeIsDown) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.0, 1e6);  // primary's server, down for the test
  fault::Injector inj(plan);
  Rig rig(&inj);
  // Sequential file ids land on different first servers (id % io_nodes);
  // both files fit one stripe, so each lives wholly on its first server.
  const pfs::FileId primary = rig.fs.create("state", true);    // node 0
  const pfs::FileId replica = rig.fs.create("state.m", true);  // node 1
  const auto data = pattern(4096, 5);
  rig.fs.poke(replica, 0, data);

  RetryStats stats;
  std::vector<std::byte> got(data.size());
  bool wrote = false;
  rig.eng.spawn([](Rig& r, pfs::FileId primary, pfs::FileId replica,
                   RetryStats& stats, std::span<std::byte> got,
                   bool& wrote) -> simkit::Task<void> {
    RetryPolicy policy;
    policy.max_attempts = 2;
    policy.replica = replica;
    co_await resilient_pread(r.fs, r.machine.compute_node(0), primary, 0,
                             got.size(), got, policy, &stats);
    // Writes mirror to the replica when the primary is unreachable.
    co_await resilient_pwrite(r.fs, r.machine.compute_node(0), primary,
                              8192, got.size(), got, policy, &stats);
    wrote = true;
  }(rig, primary, replica, stats, got, wrote));
  rig.eng.run();

  EXPECT_EQ(got, data) << "fail-over read must return the replica's bytes";
  EXPECT_TRUE(wrote);
  EXPECT_EQ(stats.failovers, 2u);
  EXPECT_EQ(stats.diverged_writes, 1u)
      << "the redirected write leaves the primary stale";
  EXPECT_EQ(stats.exhausted, 0u);
  std::vector<std::byte> mirrored(data.size());
  rig.fs.peek(replica, 8192, mirrored);
  EXPECT_EQ(mirrored, data);
}

// No replica and a dead node: the ladder runs dry and the typed error
// reaches the caller.
TEST(Resilient, ExhaustsAndRethrowsWithoutReplica) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.0, 1e6);
  fault::Injector inj(plan);
  Rig rig(&inj);
  const pfs::FileId f = rig.fs.create("doomed");
  RetryStats stats;
  bool threw = false;
  rig.eng.spawn([](Rig& r, pfs::FileId f, RetryStats& stats,
                   bool& threw) -> simkit::Task<void> {
    RetryPolicy policy;
    policy.max_attempts = 3;
    try {
      co_await resilient_pwrite(r.fs, r.machine.compute_node(0), f, 0, 4096,
                                {}, policy, &stats);
    } catch (const pfs::IoError& e) {
      threw = true;
      EXPECT_EQ(e.kind(), pfs::IoErrorKind::kNodeDown);
    }
  }(rig, f, stats, threw));
  rig.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 1u);
  EXPECT_GT(stats.backoff_time, 0.0);
}

// Nonsense policies are rejected synchronously at the call site — before
// any simulated time passes and regardless of whether the engine runs.
TEST(Resilient, PolicyValidationRejectsNonsense) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("cfg");
  const hw::NodeId c = rig.machine.compute_node(0);

  RetryPolicy bad_attempts;
  bad_attempts.max_attempts = 0;
  EXPECT_THROW(resilient_pread(rig.fs, c, f, 0, 4096, {}, bad_attempts),
               std::invalid_argument);

  RetryPolicy bad_backoff;
  bad_backoff.backoff_ms = -1.0;
  EXPECT_THROW(resilient_pwrite(rig.fs, c, f, 0, 4096, {}, bad_backoff),
               std::invalid_argument);

  RetryPolicy bad_multiplier;
  bad_multiplier.backoff_multiplier = 0.5;
  EXPECT_THROW(resilient_pwritev(rig.fs, c, f, {WritePiece{0, 4096, 0}}, {},
                                 bad_multiplier),
               std::invalid_argument);

  RetryPolicy bad_hedge;
  bad_hedge.hedge_latency_multiple = -2.0;
  EXPECT_THROW(resilient_pread(rig.fs, c, f, 0, 4096, {}, bad_hedge),
               std::invalid_argument);

  // The boundary values are all legal.
  RetryPolicy edge;
  edge.max_attempts = 1;
  edge.backoff_ms = 0.0;
  edge.backoff_multiplier = 1.0;
  edge.hedge_latency_multiple = 0.0;
  EXPECT_NO_THROW(edge.validate());
}

TEST(HealthTracker, EwmaLatencyAndErrorDecay) {
  HealthParams p;
  p.latency_alpha = 0.5;
  p.error_halflife_s = 10.0;
  HealthTracker h(2, p);
  EXPECT_EQ(h.ewma_latency(0), 0.0);
  h.note_success(0, 0.0, 0.100);
  EXPECT_DOUBLE_EQ(h.ewma_latency(0), 0.100);  // first sample seeds
  h.note_success(0, 1.0, 0.300);
  EXPECT_DOUBLE_EQ(h.ewma_latency(0), 0.200);  // 0.5*0.1 + 0.5*0.3
  // Errors decay with the configured halflife.
  h.note_error(1, 0.0);
  EXPECT_DOUBLE_EQ(h.error_score(1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.error_score(1, 10.0), 0.5);
  h.note_error(1, 10.0);
  EXPECT_DOUBLE_EQ(h.error_score(1, 10.0), 1.5);
  // The erroring server looks worse than the merely slow one.
  const std::vector<std::uint32_t> a{0};
  const std::vector<std::uint32_t> b{1};
  h.note_success(1, 10.0, 0.200);  // same EWMA as server 0
  EXPECT_EQ(h.pick_healthier(a, b, 10.0), 0u);
  // Slowest-leg estimate over a server set.
  const std::vector<std::uint32_t> both{0, 1};
  EXPECT_DOUBLE_EQ(h.expected_latency(both), 0.200);
}

// A read of a file whose disk is stuck gets hedged against the healthy
// replica once the tracker has latency samples, and the replica wins.
TEST(Resilient, HedgedReadWinsOverDegradedPrimary) {
  fault::InjectionPlan plan;
  // Every disk on node 0 sticks hard from t=50 on.
  for (std::uint32_t d = 0; d < 8; ++d) plan.degrade_disk(0, d, 50.0, 1e6, 200.0);
  fault::Injector inj(plan);
  Rig rig(&inj);
  // Single-stripe-unit reads: primary lives wholly on node 0, replica on 1.
  const pfs::FileId primary = rig.fs.create("hot", true);    // first = 0
  const pfs::FileId replica = rig.fs.create("hot.m", true);  // first = 1
  const auto data = pattern(48 * 1024, 3);
  for (std::uint64_t off = 0; off < 5 * 256 * 1024; off += 256 * 1024) {
    rig.fs.poke(primary, off, data);
    rig.fs.poke(replica, off, data);
  }
  HealthTracker health(rig.fs.io_node_count());
  std::vector<std::byte> got(data.size());
  rig.eng.spawn([](Rig& r, pfs::FileId primary, pfs::FileId replica,
                   HealthTracker& health,
                   std::span<std::byte> got) -> simkit::Task<void> {
    RetryPolicy policy;
    policy.replica = replica;
    policy.health = &health;
    policy.hedge_latency_multiple = 3.0;
    const hw::NodeId c = r.machine.compute_node(0);
    // Warm the tracker while everything is healthy (distinct offsets so
    // the I/O-node cache can't hide the disks).
    co_await resilient_pread(r.fs, c, primary, 0, got.size(), {}, policy);
    co_await resilient_pread(r.fs, c, replica, 256 * 1024, got.size(), {},
                             policy);
    co_await r.eng.delay(60.0 - r.eng.now());  // node 0 is now stuck
    co_await resilient_pread(r.fs, c, primary, 2 * 256 * 1024, got.size(),
                             got, policy);
  }(rig, primary, replica, health, got));
  rig.eng.run();
  EXPECT_EQ(got, data);
  EXPECT_GE(health.hedges_issued(), 1u);
  EXPECT_GE(health.hedge_wins(), 1u)
      << "the healthy replica must beat the stuck primary";
  EXPECT_EQ(health.hedge_losses(), 0u);
}

// A write that failed over leaves the primary stale; repair_divergences
// drains the ledger and rewrites the primary from the replica copy.
TEST(Resilient, RepairDivergencesHealsStalePrimary) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.0, 10.0);
  fault::Injector inj(plan);
  Rig rig(&inj);
  const pfs::FileId primary = rig.fs.create("st", true);    // node 0
  const pfs::FileId replica = rig.fs.create("st.m", true);  // node 1
  const auto data = pattern(4096, 9);
  HealthTracker health(rig.fs.io_node_count());
  RetryStats stats;
  double repaired_at = -1.0;
  rig.eng.spawn([](Rig& r, pfs::FileId primary, pfs::FileId replica,
                   HealthTracker& health, RetryStats& stats,
                   std::span<const std::byte> data,
                   double& repaired_at) -> simkit::Task<void> {
    RetryPolicy policy;
    policy.replica = replica;
    policy.health = &health;
    const hw::NodeId c = r.machine.compute_node(0);
    co_await resilient_pwrite(r.fs, c, primary, 0, data.size(), data, policy,
                              &stats);
    EXPECT_EQ(health.pending_divergences(), 1u);
    co_await r.eng.delay(12.0 - r.eng.now());  // node 0 rebooted at t=10
    const simkit::Time t0 = r.eng.now();
    co_await repair_divergences(r.fs, c, health, policy, &stats);
    repaired_at = r.eng.now();
    EXPECT_GT(repaired_at, t0) << "repair moves real data, costing time";
  }(rig, primary, replica, health, stats, data, repaired_at));
  rig.eng.run();
  EXPECT_EQ(stats.diverged_writes, 1u);
  EXPECT_EQ(health.pending_divergences(), 0u);
  EXPECT_EQ(health.divergences_repaired(), 1u);
  std::vector<std::byte> back(data.size());
  rig.fs.peek(primary, 0, back);
  EXPECT_EQ(back, std::vector<std::byte>(data.begin(), data.end()));
}

}  // namespace
}  // namespace pario
