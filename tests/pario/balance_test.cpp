// Tests for balanced I/O planning and the collective redistribution.
#include "pario/balance.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hw/machine.hpp"
#include "mprt/comm.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace pario {
namespace {

std::vector<std::uint64_t> apply_moves(const std::vector<std::uint64_t>& sizes,
                                 const std::vector<BalanceMove>& moves) {
  auto out = sizes;
  for (const auto& m : moves) {
    out[static_cast<std::size_t>(m.from)] -= m.bytes;
    out[static_cast<std::size_t>(m.to)] += m.bytes;
  }
  return out;
}

TEST(PlanBalance, AlreadyBalancedNeedsNoMoves) {
  EXPECT_TRUE(plan_balance({100 << 20, 100 << 20, 100 << 20}).empty());
}

TEST(PlanBalance, WithinTolerancePasses) {
  // 10% of 100 MB = 10 MB tolerance.
  const std::uint64_t mb = 1 << 20;
  EXPECT_TRUE(plan_balance({105 * mb, 95 * mb, 100 * mb}).empty());
}

TEST(PlanBalance, LopsidedGetsBalanced) {
  const std::uint64_t mb = 1 << 20;
  std::vector<std::uint64_t> sizes{400 * mb, 0, 0, 0};
  auto moves = plan_balance(sizes);
  EXPECT_FALSE(moves.empty());
  auto out = apply_moves(sizes, moves);
  const std::uint64_t mean = 100 * mb;
  for (auto s : out) {
    const auto dev = s > mean ? s - mean : mean - s;
    EXPECT_LE(dev, mean / 10 + 1);
  }
  // Conservation.
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::uint64_t{0}),
            400 * mb);
}

TEST(PlanBalance, AbsoluteToleranceDominatesForSmallFiles) {
  // Mean 2 MB -> 10% = 0.2 MB but the 1 MB floor applies.
  const std::uint64_t mb = 1 << 20;
  EXPECT_TRUE(plan_balance({3 * mb, 1 * mb, 2 * mb, 2 * mb}).empty());
  EXPECT_FALSE(plan_balance({5 * mb, 0, 2 * mb, 1 * mb}).empty());
}

TEST(PlanBalance, DeterministicPlan) {
  const std::uint64_t mb = 1 << 20;
  std::vector<std::uint64_t> sizes{50 * mb, 200 * mb, 10 * mb, 140 * mb};
  EXPECT_EQ(plan_balance(sizes), plan_balance(sizes));
}

class PlanBalanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlanBalanceSweep, ConvergesForPseudoRandomSizes) {
  const int p = GetParam();
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    sizes[static_cast<std::size_t>(i)] =
        (static_cast<std::uint64_t>(i) * 7919 % 97) << 20;
  }
  const auto total =
      std::accumulate(sizes.begin(), sizes.end(), std::uint64_t{0});
  auto moves = plan_balance(sizes);
  auto out = apply_moves(sizes, moves);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::uint64_t{0}),
            total);
  const std::uint64_t mean = total / static_cast<std::uint64_t>(p);
  const std::uint64_t tol =
      std::max<std::uint64_t>(mean / 10, 1 << 20) + 1;
  for (auto s : out) {
    const auto dev = s > mean ? s - mean : mean - s;
    EXPECT_LE(dev, tol);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, PlanBalanceSweep,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

TEST(BalanceFiles, CollectiveRedistributionEvensOutSizes) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_large(4, 12));
  pfs::StripedFs fs(machine);
  std::vector<pfs::FileId> files;
  for (int r = 0; r < 4; ++r) {
    files.push_back(fs.create("integrals_" + std::to_string(r)));
  }
  std::vector<std::uint64_t> final_sizes;
  mprt::Cluster::execute(machine, 4, [&](mprt::Comm& c)
                                         -> simkit::Task<void> {
    const auto f = files[static_cast<std::size_t>(c.rank())];
    // Skewed write phase: rank r writes (r+1) * 8 MB.
    co_await fs.pwrite(c.node(), f, 0,
                       (static_cast<std::uint64_t>(c.rank()) + 1) * (8 << 20));
    auto sizes = co_await balance_files(c, fs, f);
    if (c.rank() == 0) final_sizes = sizes;
  });
  ASSERT_EQ(final_sizes.size(), 4u);
  const std::uint64_t total = (1 + 2 + 3 + 4) * (8ULL << 20);
  EXPECT_EQ(std::accumulate(final_sizes.begin(), final_sizes.end(),
                            std::uint64_t{0}),
            total);
  const std::uint64_t mean = total / 4;
  for (int r = 0; r < 4; ++r) {
    const auto s = final_sizes[static_cast<std::size_t>(r)];
    const auto dev = s > mean ? s - mean : mean - s;
    EXPECT_LE(dev, std::max<std::uint64_t>(mean / 10, 1 << 20) + 1)
        << "rank " << r;
    // Bookkeeping matches the actual file-system state.
    EXPECT_EQ(fs.file_size(files[static_cast<std::size_t>(r)]), s);
  }
}

TEST(BalanceFiles, NoOpWhenAlreadyBalanced) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_large(4, 12));
  pfs::StripedFs fs(machine);
  std::vector<pfs::FileId> files;
  for (int r = 0; r < 4; ++r) {
    // Left operand spelled as std::string: GCC 12's -Wrestrict misfires
    // on the `const char* + string&&` overload at -O3.
    files.push_back(fs.create(std::string("f") + std::to_string(r)));
  }
  double balance_time = 0.0;
  mprt::Cluster::execute(machine, 4, [&](mprt::Comm& c)
                                         -> simkit::Task<void> {
    const auto f = files[static_cast<std::size_t>(c.rank())];
    co_await fs.pwrite(c.node(), f, 0, 8 << 20);
    const simkit::Time t0 = c.engine().now();
    (void)co_await balance_files(c, fs, f);
    if (c.rank() == 0) balance_time = c.engine().now() - t0;
  });
  // Only plan exchange, no data movement: well under a second.
  EXPECT_LT(balance_time, 0.5);
}

}  // namespace
}  // namespace pario
