// Tests for topology geometry and endpoint-contention transfers.
#include "hw/network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "simkit/engine.hpp"

namespace hw {
namespace {

TEST(MeshTopology, ManhattanHops) {
  MeshTopology m(4, 14);
  EXPECT_EQ(m.hops(0, 0), 0u);
  EXPECT_EQ(m.hops(0, 3), 3u);   // same row
  EXPECT_EQ(m.hops(0, 4), 1u);   // next row
  EXPECT_EQ(m.hops(0, 55), 3u + 13u);  // opposite corner
  EXPECT_EQ(m.node_count(), 56u);
}

TEST(SwitchTopology, ConstantHops) {
  SwitchTopology s(80, 3);
  EXPECT_EQ(s.hops(0, 0), 0u);
  EXPECT_EQ(s.hops(0, 79), 3u);
  EXPECT_EQ(s.hops(5, 6), 3u);
}

NetParams fast_params() {
  NetParams p;
  p.link_mb_per_s = 100.0;
  p.per_hop_latency_us = 1.0;
  p.sw_overhead_us = 10.0;
  return p;
}

TEST(Network, UncontendedTransferTiming) {
  simkit::Engine eng;
  Network net(eng, std::make_unique<MeshTopology>(4, 4), fast_params());
  double done_at = -1.0;
  eng.spawn([](simkit::Engine& e, Network& n, double& out)
                -> simkit::Task<void> {
    co_await n.transfer(0, 3, 1'000'000);  // 3 hops, 1 MB
    out = e.now();
  }(eng, net, done_at));
  eng.run();
  // sw 10us + src serialization 10ms + 3us prop + dst serialization 10ms
  EXPECT_NEAR(done_at, 10e-6 + 0.01 + 3e-6 + 0.01, 1e-9);
}

TEST(Network, LocalTransferPaysOneCopy) {
  simkit::Engine eng;
  Network net(eng, std::make_unique<MeshTopology>(4, 4), fast_params());
  double done_at = -1.0;
  eng.spawn([](simkit::Engine& e, Network& n, double& out)
                -> simkit::Task<void> {
    co_await n.transfer(2, 2, 1'000'000);
    out = e.now();
  }(eng, net, done_at));
  eng.run();
  EXPECT_NEAR(done_at, 10e-6 + 0.01, 1e-9);
}

TEST(Network, ReceiverNicContentionSerializes) {
  // Many senders to one destination: completions must spread out by at
  // least the receiver serialization time each.
  simkit::Engine eng;
  Network net(eng, std::make_unique<MeshTopology>(4, 4), fast_params());
  std::vector<double> done;
  constexpr int kSenders = 6;
  for (int s = 0; s < kSenders; ++s) {
    eng.spawn([](simkit::Engine& e, Network& n, std::vector<double>& out,
                 NodeId src) -> simkit::Task<void> {
      co_await n.transfer(src, 15, 2'000'000);  // 20 ms at the NIC
      out.push_back(e.now());
    }(eng, net, done, static_cast<NodeId>(s)));
  }
  eng.run();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kSenders));
  std::sort(done.begin(), done.end());
  for (std::size_t i = 1; i < done.size(); ++i) {
    EXPECT_GE(done[i] - done[i - 1], 0.02 - 1e-9);
  }
  // Total time ~ kSenders * 20 ms: the shared endpoint is the bottleneck.
  EXPECT_GE(done.back(), kSenders * 0.02 - 1e-9);
}

TEST(Network, DisjointPairsProceedInParallel) {
  simkit::Engine eng;
  Network net(eng, std::make_unique<MeshTopology>(4, 4), fast_params());
  std::vector<double> done;
  eng.spawn([](simkit::Engine& e, Network& n, std::vector<double>& out)
                -> simkit::Task<void> {
    co_await n.transfer(0, 1, 2'000'000);
    out.push_back(e.now());
  }(eng, net, done));
  eng.spawn([](simkit::Engine& e, Network& n, std::vector<double>& out)
                -> simkit::Task<void> {
    co_await n.transfer(2, 3, 2'000'000);
    out.push_back(e.now());
  }(eng, net, done));
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  // Both finish at the uncontended time: ~40.011 ms.
  EXPECT_NEAR(done[0], done[1], 1e-9);
  EXPECT_LT(done[0], 0.05);
}

TEST(Network, BaseTransferTimeMatchesUncontendedRun) {
  simkit::Engine eng;
  Network net(eng, std::make_unique<MeshTopology>(4, 4), fast_params());
  const auto est = net.base_transfer_time(0, 5, 500'000);
  double done_at = -1.0;
  eng.spawn([](simkit::Engine& e, Network& n, double& out)
                -> simkit::Task<void> {
    co_await n.transfer(0, 5, 500'000);
    out = e.now();
  }(eng, net, done_at));
  eng.run();
  EXPECT_NEAR(done_at, est, 1e-9);
}

}  // namespace
}  // namespace hw
