// Tests for the disk service-time model.
#include "hw/disk.hpp"

#include <gtest/gtest.h>

namespace hw {
namespace {

DiskParams test_params() {
  DiskParams p;
  p.name = "test";
  p.track_to_track_seek_ms = 1.0;
  p.average_seek_ms = 10.0;
  p.rpm = 6000.0;  // 10 ms/rev -> 5 ms avg rotational latency
  p.transfer_mb_per_s = 10.0;
  p.controller_overhead_ms = 0.5;
  p.capacity_bytes = 1ULL << 30;
  return p;
}

TEST(DiskModel, SequentialAccessSkipsSeekAndRotation) {
  DiskModel d(test_params());
  const auto first = d.access(0, 64 * 1024, AccessKind::kRead);
  const auto second = d.access(64 * 1024, 64 * 1024, AccessKind::kRead);
  // First access from parked head at 0 is sequential too (head==0).
  const double xfer = 64.0 * 1024.0 / 10e6;
  EXPECT_NEAR(first, 0.5e-3 + xfer, 1e-9);
  EXPECT_NEAR(second, 0.5e-3 + xfer, 1e-9);
}

TEST(DiskModel, RandomAccessPaysSeekAndRotation) {
  DiskModel d(test_params());
  (void)d.access(0, 4096, AccessKind::kRead);
  const auto far = d.access(512ULL << 20, 4096, AccessKind::kRead);
  // Must include at least half a revolution (5 ms) + track-to-track.
  EXPECT_GT(far, 5e-3 + 1e-3);
}

TEST(DiskModel, SeekTimeGrowsWithDistance) {
  DiskModel d(test_params());
  (void)d.access(0, 0, AccessKind::kRead);
  const auto near = d.access(1ULL << 20, 4096, AccessKind::kRead);
  DiskModel d2(test_params());
  (void)d2.access(0, 0, AccessKind::kRead);
  const auto far = d2.access(900ULL << 20, 4096, AccessKind::kRead);
  EXPECT_LT(near, far);
}

TEST(DiskModel, TransferScalesLinearlyInBytes) {
  DiskModel d(test_params());
  const auto small = d.access(0, 1 << 20, AccessKind::kRead);
  DiskModel d2(test_params());
  const auto big = d2.access(0, 4 << 20, AccessKind::kRead);
  // Remove the fixed overhead, then ratio should be 4.
  EXPECT_NEAR((big - 0.5e-3) / (small - 0.5e-3), 4.0, 0.01);
}

TEST(DiskModel, WritesSlightlySlowerThanReads) {
  DiskModel dr(test_params());
  DiskModel dw(test_params());
  const auto r = dr.access(0, 1 << 20, AccessKind::kRead);
  const auto w = dw.access(0, 1 << 20, AccessKind::kWrite);
  EXPECT_GT(w, r);
  EXPECT_NEAR(w / r, 1.05, 0.001);
}

TEST(DiskModel, HeadAdvancesToEndOfRequest) {
  DiskModel d(test_params());
  (void)d.access(1000, 500, AccessKind::kRead);
  EXPECT_EQ(d.head_position(), 1500u);
  EXPECT_TRUE(d.sequential_at(1500));
  EXPECT_FALSE(d.sequential_at(0));
}

TEST(DiskModel, ManySmallRandomSlowerThanOneBigSequential) {
  // The core phenomenon behind the paper's collective-I/O wins.
  DiskModel d_small(test_params());
  double t_small = 0.0;
  for (int i = 0; i < 64; ++i) {
    t_small += d_small.access(static_cast<std::uint64_t>(i) * (8 << 20),
                              16 * 1024, AccessKind::kRead);
  }
  DiskModel d_big(test_params());
  const double t_big = d_big.access(0, 64 * 16 * 1024, AccessKind::kRead);
  EXPECT_GT(t_small, 5.0 * t_big);
}

TEST(DiskModel, PresetsAreSane) {
  const auto ssa = DiskParams::sp2_ssa_9gb();
  EXPECT_EQ(ssa.capacity_bytes, 9ULL << 30);
  const auto raid = DiskParams::paragon_raid3();
  // RAID-3 streams across spindles (faster transfer); a single SSA disk
  // seeks faster.
  EXPECT_GT(raid.transfer_mb_per_s, ssa.transfer_mb_per_s);
  EXPECT_LT(ssa.average_seek_ms, raid.average_seek_ms);
}

}  // namespace
}  // namespace hw
