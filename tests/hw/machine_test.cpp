// Tests for Machine node numbering, presets, compute timing.
#include "hw/machine.hpp"

#include <gtest/gtest.h>

#include "simkit/engine.hpp"

namespace hw {
namespace {

TEST(Machine, NodeNumbering) {
  simkit::Engine eng;
  Machine m(eng, MachineConfig::paragon_small(8, 2));
  EXPECT_EQ(m.compute_node(0), 0u);
  EXPECT_EQ(m.compute_node(7), 7u);
  EXPECT_EQ(m.io_node(0), 8u);
  EXPECT_EQ(m.io_node(1), 9u);
  EXPECT_FALSE(m.is_io_node(7));
  EXPECT_TRUE(m.is_io_node(8));
  EXPECT_TRUE(m.is_io_node(9));
}

TEST(Machine, NetworkCoversAllNodes) {
  simkit::Engine eng;
  Machine m(eng, MachineConfig::paragon_large(64, 16));
  EXPECT_GE(m.network().node_count(), 80u);
}

TEST(Machine, ComputeTimeMatchesMflops) {
  simkit::Engine eng;
  auto cfg = MachineConfig::paragon_small(2, 2);
  cfg.cpu_mflops = 25.0;
  Machine m(eng, cfg);
  double t = -1.0;
  eng.spawn([](simkit::Engine& e, Machine& m, double& out)
                -> simkit::Task<void> {
    co_await m.compute(50e6);  // 50 MFLOP at 25 MFLOPS = 2 s
    out = e.now();
  }(eng, m, t));
  eng.run();
  EXPECT_NEAR(t, 2.0, 1e-9);
  EXPECT_NEAR(m.compute_time(50e6), 2.0, 1e-12);
}

TEST(Machine, MemCopyTimeMatchesRate) {
  simkit::Engine eng;
  auto cfg = MachineConfig::paragon_small(2, 2);
  cfg.mem_copy_mb_per_s = 30.0;
  Machine m(eng, cfg);
  double t = -1.0;
  eng.spawn([](simkit::Engine& e, Machine& m, double& out)
                -> simkit::Task<void> {
    co_await m.mem_copy(30'000'000);
    out = e.now();
  }(eng, m, t));
  eng.run();
  EXPECT_NEAR(t, 1.0, 1e-9);
}

TEST(MachineConfig, PresetsMatchPaperPlatforms) {
  const auto ps = MachineConfig::paragon_small(56, 4);
  EXPECT_EQ(ps.io.stripe_unit_bytes, 64u * 1024u);
  EXPECT_EQ(ps.mem_bytes_per_node, 32ULL << 20);
  EXPECT_EQ(ps.topology, TopologyKind::kMesh2D);

  const auto sp = MachineConfig::sp2(64);
  EXPECT_EQ(sp.io_nodes, 4u);
  EXPECT_EQ(sp.io.stripe_unit_bytes, 32u * 1024u);
  EXPECT_EQ(sp.io.disks_per_io_node, 4u);
  EXPECT_EQ(sp.topology, TopologyKind::kMultistageSwitch);
  EXPECT_EQ(sp.mem_bytes_per_node, 256ULL << 20);
}

TEST(MachineConfig, ParagonWriteBehindSp2Not) {
  // Thakur et al. (1996): Paragon faster on writes, SP-2 faster on reads.
  EXPECT_TRUE(MachineConfig::paragon_large(16, 12).io.write_behind);
  EXPECT_FALSE(MachineConfig::sp2(16).io.write_behind);
}

TEST(Machine, DefaultFailureDomainsAreSingletons) {
  simkit::Engine eng;
  Machine m(eng, MachineConfig::paragon_small(8, 4));
  EXPECT_EQ(m.io_domain_fan_in(), 1u);
  EXPECT_EQ(m.io_domain_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(m.io_domain_of(i), i);
  EXPECT_EQ(m.io_domain_members(2),
            (std::vector<std::uint32_t>{2}));
}

TEST(Machine, SwitchFanInGroupsIoNodesIntoDomains) {
  MachineConfig cfg = MachineConfig::paragon_small(8, 6);
  cfg.io_nodes_per_switch = 4;  // 6 nodes behind 4-port switches: 4 + 2
  simkit::Engine eng;
  Machine m(eng, cfg);
  EXPECT_EQ(m.io_domain_count(), 2u);
  EXPECT_EQ(m.io_domain_of(0), 0u);
  EXPECT_EQ(m.io_domain_of(3), 0u);
  EXPECT_EQ(m.io_domain_of(4), 1u);
  EXPECT_EQ(m.io_domain_members(0),
            (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(m.io_domain_members(1), (std::vector<std::uint32_t>{4, 5}));

  cfg.io_nodes_per_switch = 6;  // fan-in equal to the partition: one domain
  Machine wide(eng, cfg);
  EXPECT_EQ(wide.io_domain_count(), 1u);
  EXPECT_EQ(wide.io_domain_of(5), 0u);

  // Fan-in above the partition used to silently clamp; it is now a typed
  // configuration error (see MachineConfig::validate).
  cfg.io_nodes_per_switch = 16;
  EXPECT_THROW(Machine(eng, cfg), ConfigError);
}

TEST(MachineConfig, ValidateRejectsImpossibleShapes) {
  MachineConfig ok = MachineConfig::paragon_small(8, 2);
  EXPECT_NO_THROW(ok.validate());

  MachineConfig no_io = ok;
  no_io.io_nodes = 0;
  EXPECT_THROW(no_io.validate(), ConfigError);

  MachineConfig no_compute = ok;
  no_compute.compute_nodes = 0;
  EXPECT_THROW(no_compute.validate(), ConfigError);

  MachineConfig wide_switch = ok;
  wide_switch.io_nodes_per_switch = 3;  // > io_nodes = 2
  EXPECT_THROW(wide_switch.validate(), ConfigError);

  // Boundary cases that must PASS: fan-in equal to the partition, and
  // the 0 sentinel (singleton domains).
  MachineConfig edge = ok;
  edge.io_nodes_per_switch = 2;
  EXPECT_NO_THROW(edge.validate());
  edge.io_nodes_per_switch = 0;
  EXPECT_NO_THROW(edge.validate());
}

TEST(Machine, ConstructorValidates) {
  simkit::Engine eng;
  MachineConfig bad = MachineConfig::paragon_small(8, 2);
  bad.io_nodes = 0;
  EXPECT_THROW(Machine(eng, bad), ConfigError);
}

TEST(MachineConfig, ParagonXlEnvelope) {
  const auto m = MachineConfig::paragon_xl(2048, 64);
  EXPECT_EQ(m.compute_nodes, 2048u);
  EXPECT_EQ(m.io_nodes, 64u);
  EXPECT_EQ(m.topology, TopologyKind::kMultistageSwitch);
  EXPECT_EQ(m.io_nodes_per_switch, 8u);
  EXPECT_NO_THROW(m.validate());

  // Switch-scoped domains: 64 servers behind 8-port switches = 8 racks.
  simkit::Engine eng;
  Machine mach(eng, m);
  EXPECT_EQ(mach.io_domain_count(), 8u);
  EXPECT_EQ(mach.io_domain_of(7), 0u);
  EXPECT_EQ(mach.io_domain_of(8), 1u);

  // The validated envelope: outside 1024-4096 x 64-128 is a typed error.
  EXPECT_THROW(MachineConfig::paragon_xl(512, 64), ConfigError);
  EXPECT_THROW(MachineConfig::paragon_xl(8192, 64), ConfigError);
  EXPECT_THROW(MachineConfig::paragon_xl(1024, 32), ConfigError);
  EXPECT_THROW(MachineConfig::paragon_xl(1024, 256), ConfigError);
  EXPECT_NO_THROW(MachineConfig::paragon_xl(1024, 64));
  EXPECT_NO_THROW(MachineConfig::paragon_xl(4096, 128));
}

}  // namespace
}  // namespace hw
