// Tests for the opt-in zoned-bit-recording transfer model.
#include <gtest/gtest.h>

#include "hw/disk.hpp"

namespace hw {
namespace {

DiskParams zoned_params(double speedup) {
  DiskParams p;
  p.name = "zoned";
  p.track_to_track_seek_ms = 1.0;
  p.average_seek_ms = 10.0;
  p.rpm = 6000.0;
  p.transfer_mb_per_s = 10.0;
  p.controller_overhead_ms = 0.0;
  p.capacity_bytes = 1ULL << 30;
  p.zoned_speedup = speedup;
  return p;
}

TEST(ZonedDisk, DefaultIsUniform) {
  DiskModel d(zoned_params(1.0));
  const auto outer = d.access(0, 1 << 20, AccessKind::kRead);
  d.park();
  (void)d.access((1ULL << 30) - (1 << 20), 0, AccessKind::kRead);
  // Re-read model with head at inner edge (fresh model to isolate seek).
  DiskModel d2(zoned_params(1.0));
  (void)d2.access((1ULL << 30) - (2 << 20), 0, AccessKind::kRead);
  const auto inner = d2.access((1ULL << 30) - (2 << 20) + 0, 1 << 20,
                               AccessKind::kRead);
  EXPECT_NEAR(outer, inner, 1e-9);
}

TEST(ZonedDisk, OuterTracksAreFaster) {
  DiskModel outer_d(zoned_params(2.0));
  const auto outer = outer_d.access(0, 1 << 20, AccessKind::kRead);
  DiskModel inner_d(zoned_params(2.0));
  // Position head sequentially at the inner edge so no seek applies.
  const std::uint64_t inner_off = (1ULL << 30) - (1 << 20);
  (void)inner_d.access(inner_off, 0, AccessKind::kRead);
  // First access pays seek (head at 0): use a second sequential access.
  DiskModel inner_seq(zoned_params(2.0));
  (void)inner_seq.access(inner_off - (1 << 20), 1 << 20, AccessKind::kRead);
  const auto inner = inner_seq.access(inner_off, 1 << 20, AccessKind::kRead);
  // Outer zone transfers ~2x faster than inner.
  EXPECT_GT(inner / outer, 1.5);
}

TEST(ZonedDisk, AverageRatePreserved) {
  // Reading the whole platter in big chunks should take about
  // capacity / sustained_rate whether zoned or not.
  auto full_scan = [](double speedup) {
    DiskModel d(zoned_params(speedup));
    double total = 0.0;
    const std::uint64_t chunk = 64 << 20;
    for (std::uint64_t off = 0; off < (1ULL << 30); off += chunk) {
      total += d.access(off, chunk, AccessKind::kRead);
    }
    return total;
  };
  const double uniform = full_scan(1.0);
  const double zoned = full_scan(2.0);
  EXPECT_NEAR(zoned / uniform, 1.0, 0.12);
}

}  // namespace
}  // namespace hw
