// Tests for the utilization report and table rendering.
#include "exp/report.hpp"

#include <gtest/gtest.h>

#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "simkit/engine.hpp"

namespace expt {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  pfs::StripedFs fs;
  Rig() : machine(eng, hw::MachineConfig::paragon_small(4, 2)), fs(machine) {}
};

TEST(Report, CountsMatchAfterAWorkload) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("u");
  rig.eng.spawn([](Rig& r, pfs::FileId f) -> simkit::Task<void> {
    co_await r.fs.pread(r.machine.compute_node(0), f, 0, 1 << 20);
  }(rig, f));
  rig.eng.run();
  const auto u0 = io_node_utilization(rig.fs, 0, rig.eng.now());
  const auto u1 = io_node_utilization(rig.fs, 1, rig.eng.now());
  // 1 MB in 64 KB stripes round-robin over 2 nodes: 8 requests each.
  EXPECT_EQ(u0.requests, 8u);
  EXPECT_EQ(u1.requests, 8u);
  EXPECT_GT(u0.busy_fraction, 0.0);
  EXPECT_LE(u0.busy_fraction, 1.0);
}

TEST(Report, RendersAllNodesPlusAggregate) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("u");
  rig.eng.spawn([](Rig& r, pfs::FileId f) -> simkit::Task<void> {
    co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 256 * 1024);
  }(rig, f));
  rig.eng.run();
  const std::string rep = utilization_report(rig.fs, rig.eng.now());
  EXPECT_NE(rep.find("| 0 "), std::string::npos);
  EXPECT_NE(rep.find("| 1 "), std::string::npos);
  EXPECT_NE(rep.find("| all "), std::string::npos);
  EXPECT_NE(rep.find("busy"), std::string::npos);
}

TEST(Report, BalancedStripingHasLowImbalance) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("bal");
  rig.eng.spawn([](Rig& r, pfs::FileId f) -> simkit::Task<void> {
    co_await r.fs.pread(r.machine.compute_node(0), f, 0, 4 << 20);
  }(rig, f));
  rig.eng.run();
  EXPECT_NEAR(io_imbalance(rig.fs), 1.0, 0.05);
}

TEST(Report, HotSpottedAccessHasHighImbalance) {
  Rig rig;
  const pfs::FileId f = rig.fs.create("hot");
  rig.eng.spawn([](Rig& r, pfs::FileId f) -> simkit::Task<void> {
    // Hammer the same 64 KB stripe (one node) repeatedly.
    for (int i = 0; i < 32; ++i) {
      co_await r.fs.pread(r.machine.compute_node(0), f, 0, 4096);
    }
  }(rig, f));
  rig.eng.run();
  EXPECT_GT(io_imbalance(rig.fs), 5.0);
}

TEST(Table, CsvEscapesNothingButJoins) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"x", "y"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\nx,y\n");
}

TEST(Table, StrAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"long-name-here", "1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| long-name-here | 1 |"), std::string::npos);
}

}  // namespace
}  // namespace expt
