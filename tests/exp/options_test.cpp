// Tests for expt::Options command-line parsing — especially the strict
// unknown-flag rejection (parse records the error; callers exit 2).
#include "exp/options.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

expt::Options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  expt::Options opt;
  opt.parse(static_cast<int>(args.size()),
            const_cast<char**>(args.data()));
  return opt;
}

TEST(Options, ParsesKnownFlags) {
  const expt::Options opt =
      parse({"--scale=0.5", "--check", "--csv", "--seed=7", "-j", "4",
             "--repeat=2", "--golden=g.txt", "--policy=sync_full",
             "--audit"});
  EXPECT_TRUE(opt.error.empty());
  EXPECT_DOUBLE_EQ(opt.scale, 0.5);
  EXPECT_TRUE(opt.scale_given);
  EXPECT_TRUE(opt.check);
  EXPECT_TRUE(opt.csv);
  EXPECT_EQ(opt.seed, 7u);
  EXPECT_EQ(opt.jobs, 4);
  EXPECT_EQ(opt.repeat, 2);
  EXPECT_EQ(opt.golden, "g.txt");
  EXPECT_EQ(opt.policy, "sync_full");
  EXPECT_TRUE(opt.audit);
}

TEST(Options, AuditDefaultsOff) {
  const expt::Options opt = parse({"--check"});
  EXPECT_FALSE(opt.audit);
}

TEST(Options, RejectsUnknownLongFlag) {
  const expt::Options opt = parse({"--check", "--no-such-flag"});
  ASSERT_FALSE(opt.error.empty());
  // The message names the offending flag and lists the valid ones.
  EXPECT_NE(opt.error.find("--no-such-flag"), std::string::npos);
  EXPECT_NE(opt.error.find("--scale=X"), std::string::npos);
  EXPECT_NE(opt.error.find("--golden=PATH"), std::string::npos);
  // Flags before the bad one still took effect.
  EXPECT_TRUE(opt.check);
}

TEST(Options, RejectsUnknownShortFlag) {
  const expt::Options opt = parse({"-x"});
  ASSERT_FALSE(opt.error.empty());
  EXPECT_NE(opt.error.find("'-x'"), std::string::npos);
}

TEST(Options, FirstUnknownFlagWins) {
  const expt::Options opt = parse({"--bad-one", "--bad-two"});
  EXPECT_NE(opt.error.find("--bad-one"), std::string::npos);
  EXPECT_EQ(opt.error.find("--bad-two"), std::string::npos);
}

TEST(Options, PositionalsAreNotFlags) {
  // Scenario names (and the `run` subcommand) pass through untouched.
  const expt::Options opt = parse({"run", "fig1", "platform_queueing"});
  EXPECT_TRUE(opt.error.empty());
}

TEST(Options, JValueTokenIsNotAPositionalOrError) {
  const expt::Options opt = parse({"-j", "8", "fig1"});
  EXPECT_TRUE(opt.error.empty());
  EXPECT_EQ(opt.jobs, 8);
  const expt::Options glued = parse({"-j8"});
  EXPECT_TRUE(glued.error.empty());
  EXPECT_EQ(glued.jobs, 8);
}

TEST(Options, MisspelledKnownFlagIsRejected) {
  const expt::Options opt = parse({"--scale", "0.5"});  // missing '='
  ASSERT_FALSE(opt.error.empty());
  EXPECT_NE(opt.error.find("'--scale'"), std::string::npos);
}

}  // namespace
