// Tests for the LRU block cache with dirty pinning.
#include "pfs/cache.hpp"

#include <gtest/gtest.h>

namespace pfs {
namespace {

BlockKey k(FileId f, std::uint64_t b) { return BlockKey{f, b}; }

TEST(BlockCache, MissThenHit) {
  BlockCache c(4);
  EXPECT_FALSE(c.lookup(k(0, 0)));
  c.insert(k(0, 0), false);
  EXPECT_TRUE(c.lookup(k(0, 0)));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(BlockCache, LruEviction) {
  BlockCache c(2);
  c.insert(k(0, 0), false);
  c.insert(k(0, 1), false);
  EXPECT_TRUE(c.lookup(k(0, 0)));  // 0 becomes MRU
  c.insert(k(0, 2), false);        // evicts 1 (LRU)
  EXPECT_TRUE(c.contains(k(0, 0)));
  EXPECT_FALSE(c.contains(k(0, 1)));
  EXPECT_TRUE(c.contains(k(0, 2)));
}

TEST(BlockCache, DirtyBlocksAreNotEvicted) {
  BlockCache c(2);
  c.insert(k(0, 0), true);   // dirty, pinned
  c.insert(k(0, 1), false);
  c.insert(k(0, 2), false);  // must evict 1, not the dirty 0
  EXPECT_TRUE(c.contains(k(0, 0)));
  EXPECT_FALSE(c.contains(k(0, 1)));
  EXPECT_TRUE(c.contains(k(0, 2)));
}

TEST(BlockCache, InsertFailsWhenAllPinned) {
  BlockCache c(2);
  c.insert(k(0, 0), true);
  c.insert(k(0, 1), true);
  EXPECT_FALSE(c.insert(k(0, 2), false));
  c.mark_clean(k(0, 0));
  EXPECT_TRUE(c.insert(k(0, 2), false));
  EXPECT_FALSE(c.contains(k(0, 0)));
}

TEST(BlockCache, ReinsertRefreshesAndMergesDirty) {
  BlockCache c(2);
  c.insert(k(0, 0), false);
  EXPECT_FALSE(c.is_dirty(k(0, 0)));
  c.insert(k(0, 0), true);
  EXPECT_TRUE(c.is_dirty(k(0, 0)));
  c.insert(k(0, 0), false);  // dirty persists until mark_clean
  EXPECT_TRUE(c.is_dirty(k(0, 0)));
  c.mark_clean(k(0, 0));
  EXPECT_FALSE(c.is_dirty(k(0, 0)));
  EXPECT_EQ(c.size(), 1u);
}

TEST(BlockCache, DistinguishesFiles) {
  BlockCache c(4);
  c.insert(k(1, 7), false);
  EXPECT_FALSE(c.contains(k(2, 7)));
  EXPECT_TRUE(c.contains(k(1, 7)));
}

TEST(BlockCache, CapacityRespectedUnderChurn) {
  BlockCache c(8);
  for (std::uint64_t i = 0; i < 1000; ++i) c.insert(k(0, i), false);
  EXPECT_LE(c.size(), 8u);
  EXPECT_TRUE(c.contains(k(0, 999)));
}

}  // namespace
}  // namespace pfs
