// Fault x smart-server interactions: what a node crash does to the
// writeback pool, the redo log, and in-flight read-ahead — the crash
// semantics behind the server_crash_durability scenario, pinned at unit
// scale.
#include <gtest/gtest.h>

#include <cstdint>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "iosrv/config.hpp"
#include "pfs/fs.hpp"
#include "pfs/types.hpp"
#include "simkit/engine.hpp"

namespace pfs {
namespace {

constexpr std::uint64_t kBlock = 64 * 1024;  // paragon stripe unit

hw::MachineConfig smart_cfg(iosrv::DurabilityPolicy policy,
                            std::uint32_t pool_blocks) {
  hw::MachineConfig cfg = hw::MachineConfig::paragon_small(4, 2);
  cfg.io.server.writeback.mode = iosrv::WritebackMode::kPool;
  cfg.io.server.writeback.pool_blocks = pool_blocks;
  cfg.io.server.durability.policy = policy;
  cfg.io.server.durability.crash_semantics = true;
  return cfg;
}

struct Rig {
  simkit::Engine eng;
  fault::Injector injector;
  hw::Machine machine;
  StripedFs fs;
  Rig(hw::MachineConfig cfg, fault::InjectionPlan plan)
      : injector(std::move(plan)),
        machine(eng, std::move(cfg)),
        fs(machine, &injector) {}

  std::uint64_t lost_blocks() {
    return fs.io_node(0).lost_dirty_blocks() +
           fs.io_node(1).lost_dirty_blocks();
  }
  std::uint64_t pool_drained() {
    return fs.io_node(0).writeback_pool()->drained() +
           fs.io_node(1).writeback_pool()->drained();
  }
};

simkit::Task<void> write_blocks(Rig& r, FileId f, std::uint64_t n) {
  const hw::NodeId c = r.machine.compute_node(0);
  for (std::uint64_t b = 0; b < n; ++b) {
    try {
      co_await r.fs.pwrite(c, f, b * kBlock, kBlock);
    } catch (const IoError&) {
      co_return;  // node died under the burst; whatever acked, acked
    }
  }
}

// A crash while the background drainer is mid-flight: blocks already on
// disk stay drained, everything still pooled (queued or in a drain
// write) is a lost update, and the pools come out empty and usable.
TEST(CrashSemantics, CrashMidDrainForfeitsPooledBlocks) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.05, 10.0).crash_node(1, 0.05, 10.0);
  Rig r(smart_cfg(iosrv::DurabilityPolicy::kWriteBehind, 8),
        std::move(plan));
  const FileId f = r.fs.create("victim");
  r.eng.spawn(write_blocks(r, f, 12));
  r.eng.run();

  EXPECT_GT(r.lost_blocks(), 0u);
  // Every acked block either drained before the crash or was lost with
  // it — none vanish from the accounting.
  EXPECT_EQ(r.pool_drained() + r.lost_blocks(), 12u);
  EXPECT_EQ(r.fs.io_node(0).writeback_pool()->dirty_count(), 0u);
  EXPECT_EQ(r.fs.io_node(1).writeback_pool()->dirty_count(), 0u);
  EXPECT_GE(r.fs.io_node(0).cache_invalidations(), 1u);
  EXPECT_GE(r.fs.io_node(1).cache_invalidations(), 1u);
}

// Plain crash under journaled: the redo log survives the reboot and is
// replayed deterministically — zero acked loss.
TEST(CrashSemantics, JournaledPlainCrashReplaysTheLog) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.3, 1.0).crash_node(1, 0.3, 1.0);
  Rig r(smart_cfg(iosrv::DurabilityPolicy::kJournaled, 16),
        std::move(plan));
  const FileId f = r.fs.create("logged");
  r.eng.spawn(write_blocks(r, f, 8));
  r.eng.run();

  EXPECT_EQ(r.lost_blocks(), 0u);
  EXPECT_EQ(r.fs.io_node(0).journal_replayed() +
                r.fs.io_node(1).journal_replayed(),
            8u);
  EXPECT_GT(r.fs.io_node(0).journal_appends(), 0u);
}

// A scrubbing crash takes the redo log down with the node: the same
// burst that replays cleanly above is simply lost.
TEST(CrashSemantics, ScrubbingCrashDestroysTheLog) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.3, 1.0, /*scrub=*/true)
      .crash_node(1, 0.3, 1.0, /*scrub=*/true);
  Rig r(smart_cfg(iosrv::DurabilityPolicy::kJournaled, 16),
        std::move(plan));
  const FileId f = r.fs.create("scrubbed");
  r.eng.spawn(write_blocks(r, f, 8));
  r.eng.run();

  EXPECT_EQ(r.lost_blocks(), 8u);
  EXPECT_EQ(r.fs.io_node(0).journal_replayed() +
                r.fs.io_node(1).journal_replayed(),
            0u);
}

// A crash with prefetches on the disk queue: the speculation is
// cancelled (counted, budget released), not delivered into a cache that
// no longer exists.
TEST(CrashSemantics, CrashCancelsInFlightReadahead) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.25, 10.0).crash_node(1, 0.25, 10.0);
  hw::MachineConfig cfg =
      smart_cfg(iosrv::DurabilityPolicy::kWriteBehind, 8);
  cfg.io.server.readahead.enabled = true;
  Rig r(std::move(cfg), std::move(plan));
  const FileId f = r.fs.create("streamed");
  // Several sequential streams keep the disk queues deep, so the crash
  // is guaranteed to land with speculative reads still on an arm.
  for (std::size_t client = 0; client < 4; ++client) {
    r.eng.spawn([](Rig& r, FileId f, std::size_t cl) -> simkit::Task<void> {
      const hw::NodeId c = r.machine.compute_node(cl);
      for (std::uint64_t b = 0; b < 24; ++b) {
        try {
          co_await r.fs.pread(c, f, (cl * 32 + b) * kBlock, kBlock);
        } catch (const IoError&) {
          co_return;
        }
      }
    }(r, f, client));
  }
  r.eng.run();

  EXPECT_GT(r.fs.io_node(0).readahead_issued() +
                r.fs.io_node(1).readahead_issued(),
            0u);
  EXPECT_GT(r.fs.io_node(0).readahead_cancelled() +
                r.fs.io_node(1).readahead_cancelled(),
            0u);
}

// After invalidation the pool must stay fully usable: a post-recovery
// burst acks, drains on close, and leaves no residue.
TEST(CrashSemantics, PoolStaysUsableAfterInvalidation) {
  fault::InjectionPlan plan;
  plan.crash_node(0, 0.05, 0.2).crash_node(1, 0.05, 0.2);
  Rig r(smart_cfg(iosrv::DurabilityPolicy::kWriteBehind, 8),
        std::move(plan));
  const FileId f = r.fs.create("reborn");
  r.eng.spawn([](Rig& r, FileId f) -> simkit::Task<void> {
    co_await write_blocks(r, f, 12);   // first burst: dies in the crash
    co_await r.eng.delay(1.0);         // both nodes back up
    co_await write_blocks(r, f, 12);   // second burst: must fully work
    co_await r.fs.close(r.machine.compute_node(0), f);
  }(r, f));
  r.eng.run();

  EXPECT_GT(r.lost_blocks(), 0u);
  EXPECT_EQ(r.fs.io_node(0).writeback_pool()->dirty_count(), 0u);
  EXPECT_EQ(r.fs.io_node(1).writeback_pool()->dirty_count(), 0u);
  // The close barrier drained the second burst to disk.
  EXPECT_GE(r.pool_drained() + r.lost_blocks(), 12u);
}

}  // namespace
}  // namespace pfs
