// Edge-case tests for the striped file system.
#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace pfs {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  StripedFs fs;
  explicit Rig(hw::MachineConfig cfg = hw::MachineConfig::paragon_small(4, 2))
      : machine(eng, std::move(cfg)), fs(machine) {}
};

TEST(FsEdge, ZeroLengthOpsCostOnlySyscall) {
  Rig rig;
  const FileId f = rig.fs.create("z");
  double t = -1;
  rig.eng.spawn([](Rig& r, FileId f, double& out) -> simkit::Task<void> {
    co_await r.fs.pread(r.machine.compute_node(0), f, 0, 0);
    co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 0);
    out = r.eng.now();
  }(rig, f, t));
  rig.eng.run();
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 0.01);  // two syscalls, nothing else
  EXPECT_EQ(rig.fs.file_size(f), 0u);
}

TEST(FsEdge, FilesRotateFirstServer) {
  Rig rig;
  const FileId a = rig.fs.create("a");
  const FileId b = rig.fs.create("b");
  // With 2 I/O nodes, consecutive files start striping on different nodes.
  EXPECT_NE(rig.fs.stripe_map(a).server_of(0),
            rig.fs.stripe_map(b).server_of(0));
}

TEST(FsEdge, FlushWithNoDirtyDataIsCheap) {
  Rig rig;
  const FileId f = rig.fs.create("nf");
  double t = -1;
  rig.eng.spawn([](Rig& r, FileId f, double& out) -> simkit::Task<void> {
    co_await r.fs.flush(r.machine.compute_node(0), f);
    out = r.eng.now();
  }(rig, f, t));
  rig.eng.run();
  EXPECT_LT(t, 0.01);
}

TEST(FsEdge, ReadOfNeverWrittenBackedFileIsZeros) {
  Rig rig;
  const FileId f = rig.fs.create("holes", /*backed=*/true);
  std::vector<std::byte> out(4096, std::byte{0xFF});
  rig.eng.spawn([](Rig& r, FileId f, std::span<std::byte> o)
                    -> simkit::Task<void> {
    co_await r.fs.pread(r.machine.compute_node(0), f, 12345, o.size(), o);
  }(rig, f, out));
  rig.eng.run();
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(FsEdge, InterleavedFilesDoNotCorruptEachOther) {
  Rig rig;
  const FileId a = rig.fs.create("ia", true);
  const FileId b = rig.fs.create("ib", true);
  rig.eng.spawn([](Rig& r, FileId a, FileId b) -> simkit::Task<void> {
    std::vector<std::byte> da(8192, std::byte{0xAA});
    std::vector<std::byte> db(8192, std::byte{0xBB});
    const auto n = r.machine.compute_node(0);
    for (int i = 0; i < 4; ++i) {
      co_await r.fs.pwrite(n, a, static_cast<std::uint64_t>(i) * 8192, 8192,
                           da);
      co_await r.fs.pwrite(n, b, static_cast<std::uint64_t>(i) * 8192, 8192,
                           db);
    }
  }(rig, a, b));
  rig.eng.run();
  std::vector<std::byte> ga(32768), gb(32768);
  rig.fs.peek(a, 0, ga);
  rig.fs.peek(b, 0, gb);
  for (auto x : ga) ASSERT_EQ(x, std::byte{0xAA});
  for (auto x : gb) ASSERT_EQ(x, std::byte{0xBB});
}

TEST(FsEdge, OpenCloseRoundTripCostsAreBounded) {
  Rig rig;
  const FileId f = rig.fs.create("oc");
  double t = -1;
  rig.eng.spawn([](Rig& r, FileId f, double& out) -> simkit::Task<void> {
    FileHandle h = co_await r.fs.open(r.machine.compute_node(0), f);
    co_await h.close();
    out = r.eng.now();
  }(rig, f, t));
  rig.eng.run();
  EXPECT_GT(t, 0.0005);  // syscalls + round trips are not free
  EXPECT_LT(t, 0.05);    // but they are metadata-cheap
}

TEST(FsEdge, ManyFilesSpreadAcrossDisksOfANode) {
  // On the SP-2 (4 disks per node), four files map to four different
  // local disks — concurrent independent streams don't fight one arm.
  Rig one_file(hw::MachineConfig::sp2(4));
  Rig four_files(hw::MachineConfig::sp2(4));
  {
    const FileId f = one_file.fs.create("f0");
    for (int c = 0; c < 4; ++c) {
      one_file.eng.spawn([](Rig& r, FileId f, int c) -> simkit::Task<void> {
        co_await r.fs.pread(r.machine.compute_node(
                                static_cast<std::size_t>(c)),
                            f, static_cast<std::uint64_t>(c) << 24,
                            2 << 20);
      }(one_file, f, c));
    }
    one_file.eng.run();
  }
  {
    std::vector<FileId> fs;
    for (int i = 0; i < 4; ++i) {
      // Left operand spelled as std::string: GCC 12's -Wrestrict misfires
      // on the `const char* + string&&` overload at -O3.
      fs.push_back(four_files.fs.create(std::string("f") + std::to_string(i)));
    }
    for (int c = 0; c < 4; ++c) {
      four_files.eng.spawn([](Rig& r, FileId f, int c) -> simkit::Task<void> {
        co_await r.fs.pread(r.machine.compute_node(
                                static_cast<std::size_t>(c)),
                            f, 0, 2 << 20);
      }(four_files, fs[static_cast<std::size_t>(c)], c));
    }
    four_files.eng.run();
  }
  EXPECT_LT(four_files.eng.now(), one_file.eng.now());
}

}  // namespace
}  // namespace pfs
