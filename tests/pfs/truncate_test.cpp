// Tests for StripedFs::truncate and size bookkeeping under mixed ops.
#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace pfs {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  StripedFs fs;
  Rig() : machine(eng, hw::MachineConfig::paragon_small(4, 2)), fs(machine) {}
};

TEST(Truncate, ShrinksTheLogicalSize) {
  Rig rig;
  const FileId f = rig.fs.create("t");
  rig.eng.spawn([](Rig& r, FileId f) -> simkit::Task<void> {
    co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 1 << 20);
    co_await r.fs.truncate(r.machine.compute_node(0), f, 1000);
  }(rig, f));
  rig.eng.run();
  EXPECT_EQ(rig.fs.file_size(f), 1000u);
}

TEST(Truncate, CostsAMetadataRoundTrip) {
  Rig rig;
  const FileId f = rig.fs.create("t");
  double before = -1, after = -1;
  rig.eng.spawn([](Rig& r, FileId f, double& t0, double& t1)
                    -> simkit::Task<void> {
    t0 = r.eng.now();
    co_await r.fs.truncate(r.machine.compute_node(0), f, 0);
    t1 = r.eng.now();
  }(rig, f, before, after));
  rig.eng.run();
  EXPECT_GT(after, before);       // not free
  EXPECT_LT(after - before, 0.1);  // but metadata-cheap
}

TEST(Truncate, WriteAfterTruncateGrowsAgain) {
  Rig rig;
  const FileId f = rig.fs.create("t");
  rig.eng.spawn([](Rig& r, FileId f) -> simkit::Task<void> {
    co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 4096);
    co_await r.fs.truncate(r.machine.compute_node(0), f, 100);
    co_await r.fs.pwrite(r.machine.compute_node(0), f, 100, 500);
  }(rig, f));
  rig.eng.run();
  EXPECT_EQ(rig.fs.file_size(f), 600u);
}

}  // namespace
}  // namespace pfs
