// Tests for striping geometry: round-robin placement, split correctness.
#include "pfs/layout.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

namespace pfs {
namespace {

TEST(StripeMap, RoundRobinServerAssignment) {
  StripeMap m(64 * 1024, 4, 0);
  EXPECT_EQ(m.server_of(0), 0u);
  EXPECT_EQ(m.server_of(64 * 1024 - 1), 0u);
  EXPECT_EQ(m.server_of(64 * 1024), 1u);
  EXPECT_EQ(m.server_of(3 * 64 * 1024), 3u);
  EXPECT_EQ(m.server_of(4 * 64 * 1024), 0u);  // wraps
}

TEST(StripeMap, FirstServerOffsetsRotation) {
  StripeMap m(64 * 1024, 4, 2);
  EXPECT_EQ(m.server_of(0), 2u);
  EXPECT_EQ(m.server_of(64 * 1024), 3u);
  EXPECT_EQ(m.server_of(2 * 64 * 1024), 0u);
}

TEST(StripeMap, LocalOffsetPacksServerStripes) {
  const std::uint64_t su = 64 * 1024;
  StripeMap m(su, 4, 0);
  // Server 0 owns stripes 0, 4, 8, ...; its local file is their
  // concatenation.
  EXPECT_EQ(m.local_offset_of(0), 0u);
  EXPECT_EQ(m.local_offset_of(100), 100u);
  EXPECT_EQ(m.local_offset_of(4 * su), su);        // stripe 4 -> local 1
  EXPECT_EQ(m.local_offset_of(4 * su + 7), su + 7);
  EXPECT_EQ(m.local_offset_of(8 * su), 2 * su);
  // Stripe 5 lives on server 1, also at local stripe 1.
  EXPECT_EQ(m.server_of(5 * su), 1u);
  EXPECT_EQ(m.local_offset_of(5 * su), su);
}

TEST(StripeMap, SplitCoversRangeExactlyOnce) {
  const std::uint64_t su = 1024;
  StripeMap m(su, 3, 1);
  const std::uint64_t off = 700;
  const std::uint64_t len = 10 * su + 300;
  auto pieces = m.split(off, len);
  std::uint64_t covered = 0;
  std::uint64_t expect_pos = off;
  for (const auto& p : pieces) {
    EXPECT_EQ(p.file_offset, expect_pos);
    EXPECT_GT(p.length, 0u);
    EXPECT_LE(p.length, su);
    // A piece never crosses a stripe-unit boundary.
    EXPECT_EQ(p.file_offset / su, (p.file_offset + p.length - 1) / su);
    EXPECT_EQ(p.server, m.server_of(p.file_offset));
    EXPECT_EQ(p.local_offset, m.local_offset_of(p.file_offset));
    covered += p.length;
    expect_pos += p.length;
  }
  EXPECT_EQ(covered, len);
}

TEST(StripeMap, SplitEmptyRange) {
  StripeMap m(1024, 2, 0);
  EXPECT_TRUE(m.split(123, 0).empty());
}

TEST(StripeMap, SplitAlignedFullStripes) {
  StripeMap m(1024, 2, 0);
  auto pieces = m.split(0, 4096);
  ASSERT_EQ(pieces.size(), 4u);
  for (const auto& p : pieces) EXPECT_EQ(p.length, 1024u);
  EXPECT_EQ(pieces[0].server, 0u);
  EXPECT_EQ(pieces[1].server, 1u);
  EXPECT_EQ(pieces[2].server, 0u);
  EXPECT_EQ(pieces[3].server, 1u);
  EXPECT_EQ(pieces[2].local_offset, 1024u);
}

// Property sweep: the (server, local_offset) mapping is a bijection on
// stripe granules for many (stripe_unit, nservers, first) combinations.
class StripeMapProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(StripeMapProperty, GranuleMappingIsInjective) {
  const auto [su, n, first] = GetParam();
  StripeMap m(su, n, first);
  std::set<std::pair<std::uint32_t, std::uint64_t>> seen;
  for (std::uint64_t stripe = 0; stripe < 64; ++stripe) {
    const std::uint64_t off = stripe * su;
    auto key = std::make_pair(m.server_of(off), m.local_offset_of(off));
    EXPECT_TRUE(seen.insert(key).second)
        << "stripe " << stripe << " collides";
  }
  // Local offsets on each server are dense multiples of the stripe unit.
  for (auto& [server, local] : seen) {
    (void)server;
    EXPECT_EQ(local % su, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, StripeMapProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(512, 4096, 65536),
                       ::testing::Values<std::uint32_t>(1, 2, 3, 4, 12, 64),
                       ::testing::Values<std::uint32_t>(0, 1, 5)));

TEST(StripeMap, PlacedMapConfinesStripesToListedServers) {
  // Stripes rotate over the listed servers only (domain-pinned file).
  StripeMap m(1024, std::vector<std::uint32_t>{2, 3}, /*first=*/1);
  EXPECT_EQ(m.servers(), 2u);
  EXPECT_EQ(m.server_list(), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(m.server_of(0), 3u);     // rotation starts at slot 1
  EXPECT_EQ(m.server_of(1024), 2u);
  EXPECT_EQ(m.server_of(2048), 3u);
  // Local offsets are dense per listed server, exactly as with the
  // identity map: stripe k lands at (k / nservers) * su locally.
  EXPECT_EQ(m.local_offset_of(0), 0u);
  EXPECT_EQ(m.local_offset_of(2048), 1024u);
  for (const auto& p : m.split(512, 2048)) {
    EXPECT_TRUE(p.server == 2u || p.server == 3u);
  }
}

TEST(StripeMap, IdentityServerListMatchesUnplacedMap) {
  StripeMap placed(4096, std::vector<std::uint32_t>{0, 1, 2}, 2);
  StripeMap plain(4096, 3, 2);
  for (std::uint64_t off = 0; off < 16 * 4096; off += 4096) {
    EXPECT_EQ(placed.server_of(off), plain.server_of(off));
    EXPECT_EQ(placed.local_offset_of(off), plain.local_offset_of(off));
  }
  EXPECT_EQ(plain.server_list(), (std::vector<std::uint32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace pfs
