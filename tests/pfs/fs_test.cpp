// Integration tests for the striped file system on a simulated machine.
#include "pfs/fs.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "hw/machine.hpp"
#include "simkit/engine.hpp"

namespace pfs {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  StripedFs fs;
  explicit Rig(hw::MachineConfig cfg = hw::MachineConfig::paragon_small(4, 2))
      : machine(eng, std::move(cfg)), fs(machine) {}
};

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xFF);
  }
  return v;
}

TEST(StripedFs, WriteReadRoundTripBacked) {
  Rig rig;
  const FileId f = rig.fs.create("data", /*backed=*/true);
  auto data = pattern(200 * 1024);  // spans several 64 KB stripes
  std::vector<std::byte> got(data.size());
  rig.eng.spawn([](Rig& r, FileId f, std::span<const std::byte> in,
                   std::span<std::byte> out) -> simkit::Task<void> {
    co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, in.size(), in);
    co_await r.fs.pread(r.machine.compute_node(0), f, 0, out.size(), out);
  }(rig, f, data, got));
  rig.eng.run();
  EXPECT_EQ(got, data);
  EXPECT_EQ(rig.fs.file_size(f), data.size());
}

TEST(StripedFs, UnalignedOffsetsRoundTrip) {
  Rig rig;
  const FileId f = rig.fs.create("data", true);
  auto data = pattern(100'000, 3);
  std::vector<std::byte> got(40'000);
  rig.eng.spawn([](Rig& r, FileId f, std::span<const std::byte> in,
                   std::span<std::byte> out) -> simkit::Task<void> {
    co_await r.fs.pwrite(r.machine.compute_node(1), f, 12345, in.size(), in);
    co_await r.fs.pread(r.machine.compute_node(2), f, 12345 + 1000,
                        out.size(), out);
  }(rig, f, data, got));
  rig.eng.run();
  EXPECT_TRUE(std::memcmp(got.data(), data.data() + 1000, got.size()) == 0);
}

TEST(StripedFs, UnbackedFilesTrackSizeOnly) {
  Rig rig;
  const FileId f = rig.fs.create("big", /*backed=*/false);
  rig.eng.spawn([](Rig& r, FileId f) -> simkit::Task<void> {
    co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 10 << 20);
    co_await r.fs.pread(r.machine.compute_node(0), f, 0, 1 << 20);
  }(rig, f));
  rig.eng.run();
  EXPECT_EQ(rig.fs.file_size(f), 10u << 20);
  EXPECT_GT(rig.eng.now(), 0.0);
}

TEST(StripedFs, IoTimeScalesWithVolume) {
  Rig a, b;
  const FileId fa = a.fs.create("a");
  const FileId fb = b.fs.create("b");
  a.eng.spawn([](Rig& r, FileId f) -> simkit::Task<void> {
    co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 1 << 20);
  }(a, fa));
  b.eng.spawn([](Rig& r, FileId f) -> simkit::Task<void> {
    co_await r.fs.pwrite(r.machine.compute_node(0), f, 0, 8 << 20);
  }(b, fb));
  a.eng.run();
  b.eng.run();
  EXPECT_GT(b.eng.now(), 2.0 * a.eng.now());
}

TEST(StripedFs, MoreIoNodesSpeedUpBigTransfers) {
  Rig two(hw::MachineConfig::paragon_small(4, 2));
  Rig four(hw::MachineConfig::paragon_small(4, 4));
  for (Rig* rig : {&two, &four}) {
    const FileId f = rig->fs.create("x");
    rig->eng.spawn([](Rig& r, FileId f) -> simkit::Task<void> {
      // Write-behind absorbs writes; read it back cold for disk limits.
      co_await r.fs.pread(r.machine.compute_node(0), f, 0, 16 << 20);
    }(*rig, f));
    rig->eng.run();
  }
  EXPECT_LT(four.eng.now(), two.eng.now());
  EXPECT_GT(two.eng.now() / four.eng.now(), 1.5);  // near-linear scaling
}

TEST(StripedFs, ManySmallCallsSlowerThanOneBigCall) {
  // The paper's central software effect: call count dominates.
  Rig many, one;
  const FileId fm = many.fs.create("m");
  const FileId fo = one.fs.create("o");
  many.eng.spawn([](Rig& r, FileId f) -> simkit::Task<void> {
    for (int i = 0; i < 256; ++i) {
      co_await r.fs.pread(r.machine.compute_node(0), f,
                          static_cast<std::uint64_t>(i) * 4096, 4096);
    }
  }(many, fm));
  one.eng.spawn([](Rig& r, FileId f) -> simkit::Task<void> {
    co_await r.fs.pread(r.machine.compute_node(0), f, 0, 256 * 4096);
  }(one, fo));
  many.eng.run();
  one.eng.run();
  EXPECT_GT(many.eng.now(), 4.0 * one.eng.now());
}

TEST(StripedFs, CachedRereadIsFaster) {
  Rig rig;
  const FileId f = rig.fs.create("c");
  double first = 0.0, second = 0.0;
  rig.eng.spawn([](Rig& r, FileId f, double& t1, double& t2)
                    -> simkit::Task<void> {
    const auto n = r.machine.compute_node(0);
    const std::uint64_t len = 512 * 1024;  // fits the 8 MB node caches
    const simkit::Time a = r.eng.now();
    co_await r.fs.pread(n, f, 0, len);
    t1 = r.eng.now() - a;
    const simkit::Time b = r.eng.now();
    co_await r.fs.pread(n, f, 0, len);
    t2 = r.eng.now() - b;
  }(rig, f, first, second));
  rig.eng.run();
  EXPECT_LT(second, first * 0.6);
  EXPECT_GT(rig.fs.io_node(0).cache().hits(), 0u);
}

TEST(StripedFs, WriteBehindMakesWritesFasterThanColdReads) {
  // Paragon preset buffers writes; a same-size cold read hits the disks.
  Rig rig;
  const FileId f = rig.fs.create("wb");
  double write_t = 0.0, read_t = 0.0;
  rig.eng.spawn([](Rig& r, FileId f, double& wt, double& rt)
                    -> simkit::Task<void> {
    const auto n = r.machine.compute_node(0);
    const std::uint64_t len = 2 << 20;
    const simkit::Time a = r.eng.now();
    co_await r.fs.pwrite(n, f, 0, len);
    wt = r.eng.now() - a;
    // Different file region: cold read.
    const simkit::Time b = r.eng.now();
    co_await r.fs.pread(n, f, 64 << 20, len);
    rt = r.eng.now() - b;
  }(rig, f, write_t, read_t));
  rig.eng.run();
  EXPECT_LT(write_t, read_t);
}

TEST(StripedFs, FlushWaitsForWriteBehindData) {
  Rig rig;
  const FileId f = rig.fs.create("fl");
  double before_flush = 0.0, after_flush = 0.0;
  rig.eng.spawn([](Rig& r, FileId f, double& t0, double& t1)
                    -> simkit::Task<void> {
    const auto n = r.machine.compute_node(0);
    co_await r.fs.pwrite(n, f, 0, 4 << 20);
    t0 = r.eng.now();
    co_await r.fs.flush(n, f);
    t1 = r.eng.now();
  }(rig, f, before_flush, after_flush));
  rig.eng.run();
  EXPECT_GT(after_flush, before_flush);  // flush had real work to wait on
  EXPECT_GE(rig.fs.total_disk_writes(), (4u << 20) / (64 * 1024));
}

TEST(StripedFs, ConcurrentClientsContendAtIoNodes) {
  // Time for P clients each reading distinct data grows superlinearly
  // versus one client once the two I/O nodes saturate.
  auto run_clients = [](int nclients) {
    Rig rig(hw::MachineConfig::paragon_small(16, 2));
    const FileId f = rig.fs.create("shared");
    for (int c = 0; c < nclients; ++c) {
      rig.eng.spawn([](Rig& r, FileId f, int c) -> simkit::Task<void> {
        co_await r.fs.pread(r.machine.compute_node(
                                static_cast<std::size_t>(c)),
                            f, static_cast<std::uint64_t>(c) * (32 << 20),
                            4 << 20);
      }(rig, f, c));
    }
    rig.eng.run();
    return rig.eng.now();
  };
  const double t1 = run_clients(1);
  const double t8 = run_clients(8);
  EXPECT_GT(t8, 3.0 * t1);  // 8x the data through the same 2 nodes
}

TEST(FileHandle, CursorAdvancesAndSeeks) {
  Rig rig;
  const FileId f = rig.fs.create("h", true);
  auto data = pattern(8192, 9);
  std::vector<std::byte> got(4096);
  rig.eng.spawn([](Rig& r, FileId f, std::span<const std::byte> in,
                   std::span<std::byte> out) -> simkit::Task<void> {
    FileHandle h = co_await r.fs.open(r.machine.compute_node(0), f);
    co_await h.write(4096, in.subspan(0, 4096));
    co_await h.write(4096, in.subspan(4096));
    EXPECT_EQ(h.tell(), 8192u);
    co_await h.seek(4096);
    co_await h.read(4096, out);
    co_await h.close();
  }(rig, f, data, got));
  rig.eng.run();
  EXPECT_TRUE(std::memcmp(got.data(), data.data() + 4096, 4096) == 0);
}

TEST(FileHandle, AsyncIreadOverlapsWithDelay) {
  Rig rig;
  const FileId f = rig.fs.create("async");
  double serial_t = 0.0, overlap_t = 0.0;
  // Serial: read then compute.
  rig.eng.spawn([](Rig& r, FileId f, double& out) -> simkit::Task<void> {
    FileHandle h = co_await r.fs.open(r.machine.compute_node(0), f);
    const simkit::Time t0 = r.eng.now();
    co_await h.pread(0, 8 << 20);
    co_await r.eng.delay(0.5);  // "compute"
    out = r.eng.now() - t0;
  }(rig, f, serial_t));
  rig.eng.run();

  Rig rig2;
  const FileId f2 = rig2.fs.create("async2");
  rig2.eng.spawn([](Rig& r, FileId f, double& out) -> simkit::Task<void> {
    FileHandle h = co_await r.fs.open(r.machine.compute_node(0), f);
    const simkit::Time t0 = r.eng.now();
    auto pending = h.iread(0, 8 << 20);
    co_await r.eng.delay(0.5);  // compute while the read is in flight
    co_await pending.join();
    out = r.eng.now() - t0;
  }(rig2, f2, overlap_t));
  rig2.eng.run();
  EXPECT_LT(overlap_t, serial_t - 0.2);
}

TEST(StripedFs, PokePeekBypassSimulatedTime) {
  Rig rig;
  const FileId f = rig.fs.create("p", true);
  auto data = pattern(100);
  rig.fs.poke(f, 50, data);
  std::vector<std::byte> got(100);
  rig.fs.peek(f, 50, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(rig.eng.now(), 0.0);
  EXPECT_EQ(rig.fs.file_size(f), 150u);
}

}  // namespace
}  // namespace pfs
