// Tests for the PFS shared-file I/O modes.
#include "pfs/modes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "hw/machine.hpp"
#include "mprt/comm.hpp"
#include "simkit/engine.hpp"

namespace pfs {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  StripedFs fs;
  explicit Rig(int nprocs = 4)
      : machine(eng, hw::MachineConfig::paragon_small(
                         static_cast<std::size_t>(nprocs), 2)),
        fs(machine) {}
};

TEST(SharedFile, UnixModePointersAreIndependent) {
  Rig rig;
  const FileId f = rig.fs.create("unix");
  std::vector<std::uint64_t> offsets(4, ~0ull);
  mprt::Cluster::execute(rig.machine, 4, [&](mprt::Comm& c)
                                             -> simkit::Task<void> {
    SharedFile sf = co_await SharedFile::open(c, rig.fs, f, IoMode::kUnix);
    (void)co_await sf.write(1000);
    offsets[static_cast<std::size_t>(c.rank())] = co_await sf.write(1000);
    co_await sf.close();
  });
  // Every rank's second write landed at ITS OWN offset 1000 — private
  // pointers mean the ranks overwrite each other.
  for (auto off : offsets) EXPECT_EQ(off, 1000u);
}

TEST(SharedFile, LogModeAppendsAtomically) {
  Rig rig;
  const FileId f = rig.fs.create("log");
  std::vector<std::uint64_t> offsets;
  mprt::Cluster::execute(rig.machine, 4, [&](mprt::Comm& c)
                                             -> simkit::Task<void> {
    SharedFile sf = co_await SharedFile::open(c, rig.fs, f, IoMode::kLog);
    for (int i = 0; i < 3; ++i) {
      offsets.push_back(co_await sf.write(500));
    }
    co_await sf.close();
  });
  // 12 writes of 500 bytes: offsets are a permutation of 0,500,...,5500 —
  // the shared pointer never hands out the same range twice.
  ASSERT_EQ(offsets.size(), 12u);
  std::set<std::uint64_t> unique(offsets.begin(), offsets.end());
  EXPECT_EQ(unique.size(), 12u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 5500u);
  EXPECT_EQ(rig.fs.file_size(f), 6000u);
}

TEST(SharedFile, SyncModeStrictRankOrder) {
  Rig rig;
  const FileId f = rig.fs.create("sync");
  std::vector<int> completion_order;
  mprt::Cluster::execute(rig.machine, 4, [&](mprt::Comm& c)
                                             -> simkit::Task<void> {
    // Ranks arrive in REVERSE order; M_SYNC must still serve them 0,1,2,3.
    co_await c.engine().delay(0.01 * (c.size() - c.rank()));
    SharedFile sf = co_await SharedFile::open(c, rig.fs, f, IoMode::kSync);
    for (int i = 0; i < 2; ++i) {
      const std::uint64_t off = co_await sf.write(100);
      EXPECT_EQ(off, static_cast<std::uint64_t>(
                         (i * 4 + c.rank()) * 100));
      completion_order.push_back(c.rank());
    }
    co_await sf.close();
  });
  EXPECT_EQ(completion_order,
            (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(SharedFile, RecordModeInterleavesWithoutCoordination) {
  Rig rig;
  const FileId f = rig.fs.create("rec", /*backed=*/true);
  mprt::Cluster::execute(rig.machine, 4, [&](mprt::Comm& c)
                                             -> simkit::Task<void> {
    SharedFile sf = co_await SharedFile::open(c, rig.fs, f, IoMode::kRecord,
                                              /*record_size=*/256);
    std::vector<std::byte> rec(256, static_cast<std::byte>(c.rank() + 1));
    for (int i = 0; i < 3; ++i) {
      const std::uint64_t off = co_await sf.write(256, rec);
      EXPECT_EQ(off, static_cast<std::uint64_t>((i * 4 + c.rank()) * 256));
    }
    co_await sf.close();
  });
  // Record k belongs to rank k % 4.
  for (int k = 0; k < 12; ++k) {
    std::vector<std::byte> got(256);
    rig.fs.peek(f, static_cast<std::uint64_t>(k) * 256, got);
    EXPECT_EQ(got[0], static_cast<std::byte>(k % 4 + 1)) << "record " << k;
  }
}

TEST(SharedFile, RecordModeFasterThanLogMode) {
  auto run_mode = [](IoMode mode) {
    Rig rig(8);
    const FileId f = rig.fs.create("m");
    return mprt::Cluster::execute(
        rig.machine, 8, [&](mprt::Comm& c) -> simkit::Task<void> {
          SharedFile sf = co_await SharedFile::open(c, rig.fs, f, mode,
                                                    /*record_size=*/4096);
          for (int i = 0; i < 16; ++i) (void)co_await sf.write(4096);
          co_await sf.close();
        });
  };
  const double log_t = run_mode(IoMode::kLog);
  const double rec_t = run_mode(IoMode::kRecord);
  // M_LOG serializes every access behind a token; M_RECORD computes its
  // offsets locally — the gap is the paper's "modes matter" complaint.
  EXPECT_GT(log_t, 1.5 * rec_t);
}

TEST(SharedFile, GlobalModeBroadcastsOneRead) {
  Rig rig;
  const FileId f = rig.fs.create("glob", /*backed=*/true);
  std::vector<std::byte> content(4096);
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<std::byte>(i % 97);
  }
  rig.fs.poke(f, 0, content);
  int good = 0;
  mprt::Cluster::execute(rig.machine, 4, [&](mprt::Comm& c)
                                             -> simkit::Task<void> {
    SharedFile sf = co_await SharedFile::open(c, rig.fs, f, IoMode::kGlobal);
    std::vector<std::byte> buf(4096);
    (void)co_await sf.read(4096, buf);
    if (buf == content) ++good;
    co_await sf.close();
  });
  EXPECT_EQ(good, 4);  // every rank got the bytes
  // Only one rank touched the disks.
  EXPECT_LE(rig.fs.total_disk_reads(), 4096u / (64 * 1024) + 2);
}

TEST(SharedFile, ModeNamesRoundTrip) {
  EXPECT_EQ(to_string(IoMode::kUnix), "M_UNIX");
  EXPECT_EQ(to_string(IoMode::kLog), "M_LOG");
  EXPECT_EQ(to_string(IoMode::kSync), "M_SYNC");
  EXPECT_EQ(to_string(IoMode::kRecord), "M_RECORD");
  EXPECT_EQ(to_string(IoMode::kGlobal), "M_GLOBAL");
}

}  // namespace
}  // namespace pfs
