// Tests for the sparse content store.
#include "pfs/store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace pfs {
namespace {

std::vector<std::byte> bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

std::vector<std::byte> read_n(const SparseStore& s, std::uint64_t off,
                              std::size_t n) {
  std::vector<std::byte> out(n);
  s.read(off, out);
  return out;
}

TEST(SparseStore, WriteThenReadBack) {
  SparseStore s;
  auto data = bytes({1, 2, 3, 4});
  s.write(100, data);
  EXPECT_EQ(read_n(s, 100, 4), data);
}

TEST(SparseStore, HolesReadAsZero) {
  SparseStore s;
  s.write(10, bytes({9}));
  auto out = read_n(s, 8, 5);
  EXPECT_EQ(out, bytes({0, 0, 9, 0, 0}));
}

TEST(SparseStore, OverwriteWins) {
  SparseStore s;
  s.write(0, bytes({1, 1, 1, 1}));
  s.write(1, bytes({7, 7}));
  EXPECT_EQ(read_n(s, 0, 4), bytes({1, 7, 7, 1}));
}

TEST(SparseStore, AdjacentRangesMerge) {
  SparseStore s;
  s.write(0, bytes({1, 2}));
  s.write(2, bytes({3, 4}));
  EXPECT_EQ(read_n(s, 0, 4), bytes({1, 2, 3, 4}));
  EXPECT_EQ(s.resident_bytes(), 4u);
}

TEST(SparseStore, OverlappingWriteMergesAndOverwrites) {
  SparseStore s;
  s.write(0, bytes({1, 1, 1}));
  s.write(5, bytes({2, 2, 2}));
  s.write(2, bytes({9, 9, 9, 9}));  // bridges both ranges
  EXPECT_EQ(read_n(s, 0, 8), bytes({1, 1, 9, 9, 9, 9, 2, 2}));
  EXPECT_EQ(s.resident_bytes(), 8u);
}

TEST(SparseStore, ResidentBytesTracksStorage) {
  SparseStore s;
  EXPECT_EQ(s.resident_bytes(), 0u);
  s.write(0, std::vector<std::byte>(1000));
  EXPECT_EQ(s.resident_bytes(), 1000u);
  s.write(500, std::vector<std::byte>(1000));  // 500 overlap
  EXPECT_EQ(s.resident_bytes(), 1500u);
  s.clear();
  EXPECT_EQ(s.resident_bytes(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(SparseStore, ReadAcrossManyFragments) {
  SparseStore s;
  // Disjoint 2-byte islands at 0, 10, 20, ..., 90.
  for (int i = 0; i < 10; ++i) {
    s.write(static_cast<std::uint64_t>(i) * 10,
            bytes({i + 1, i + 1}));
  }
  auto out = read_n(s, 0, 100);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i * 10)],
              static_cast<std::byte>(i + 1));
    EXPECT_EQ(out[static_cast<std::size_t>(i * 10 + 2)], std::byte{0});
  }
}

TEST(SparseStore, LargeScatterGatherRoundTrip) {
  SparseStore s;
  std::vector<std::byte> ref(64 * 1024, std::byte{0});
  // Scattered writes in a deterministic shuffled order.
  for (std::uint64_t k = 0; k < 64; ++k) {
    const std::uint64_t i = (k * 37) % 64;
    std::vector<std::byte> chunk(1024);
    for (std::size_t j = 0; j < chunk.size(); ++j) {
      chunk[j] = static_cast<std::byte>((i + j) & 0xFF);
    }
    std::memcpy(ref.data() + i * 1024, chunk.data(), chunk.size());
    s.write(i * 1024, chunk);
  }
  EXPECT_EQ(read_n(s, 0, ref.size()), ref);
  EXPECT_EQ(s.resident_bytes(), ref.size());
}

TEST(SparseStore, EmptyOperationsAreNoOps) {
  SparseStore s;
  s.write(5, {});
  EXPECT_TRUE(s.empty());
  std::vector<std::byte> none;
  s.read(5, none);  // must not crash
}

}  // namespace
}  // namespace pfs
