// Tests for the FIFO/SCAN disk arm.
#include "pfs/diskarm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkit/engine.hpp"

namespace pfs {
namespace {

hw::DiskParams slow_seek_disk() {
  hw::DiskParams p;
  p.name = "test";
  p.track_to_track_seek_ms = 1.0;
  p.average_seek_ms = 20.0;
  p.rpm = 6000.0;
  p.transfer_mb_per_s = 50.0;
  p.controller_overhead_ms = 0.1;
  p.capacity_bytes = 1ULL << 30;
  return p;
}

/// Submit requests at scattered positions while the arm is busy with an
/// initial request; record the order they get served.
std::vector<std::uint64_t> service_order(bool scan,
                                         std::vector<std::uint64_t> offs) {
  simkit::Engine eng;
  DiskArm arm(eng, slow_seek_disk(), scan);
  std::vector<std::uint64_t> order;
  // Occupy the arm first so all others queue.
  eng.spawn([](DiskArm& a, std::vector<std::uint64_t>& out)
                -> simkit::Task<void> {
    co_await a.serve(0, 4096, hw::AccessKind::kRead);
    out.push_back(0);
  }(arm, order));
  for (std::uint64_t off : offs) {
    eng.spawn([](simkit::Engine& e, DiskArm& a, std::uint64_t off,
                 std::vector<std::uint64_t>& out) -> simkit::Task<void> {
      co_await e.delay(1e-6);  // arrive after the arm is busy
      co_await a.serve(off, 4096, hw::AccessKind::kRead);
      out.push_back(off);
    }(eng, arm, off, order));
  }
  eng.run();
  order.erase(order.begin());  // drop the primer
  return order;
}

TEST(DiskArm, FifoServesInArrivalOrder) {
  const std::vector<std::uint64_t> offs = {900 << 20, 10 << 20, 500 << 20,
                                           50 << 20};
  EXPECT_EQ(service_order(false, offs), offs);
}

TEST(DiskArm, ScanServesInSweepOrder) {
  const std::vector<std::uint64_t> offs = {900 << 20, 10 << 20, 500 << 20,
                                           50 << 20};
  // Head starts near 0 after the primer: the upward sweep is sorted.
  EXPECT_EQ(service_order(true, offs),
            (std::vector<std::uint64_t>{10 << 20, 50 << 20, 500 << 20,
                                        900 << 20}));
}

TEST(DiskArm, ScanReversesAtTheEdge) {
  simkit::Engine eng;
  DiskArm arm(eng, slow_seek_disk(), true);
  std::vector<std::uint64_t> order;
  // Prime the head high, then submit below-and-above requests.
  eng.spawn([](DiskArm& a, std::vector<std::uint64_t>& out)
                -> simkit::Task<void> {
    co_await a.serve(800ull << 20, 4096, hw::AccessKind::kRead);
    out.push_back(800ull << 20);
  }(arm, order));
  for (std::uint64_t off : {900ull << 20, 100ull << 20, 300ull << 20}) {
    eng.spawn([](simkit::Engine& e, DiskArm& a, std::uint64_t off,
                 std::vector<std::uint64_t>& out) -> simkit::Task<void> {
      co_await e.delay(1e-6);
      co_await a.serve(off, 4096, hw::AccessKind::kRead);
      out.push_back(off);
    }(eng, arm, off, order));
  }
  eng.run();
  // Up to 900, then back down 300, 100.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{800ull << 20, 900ull << 20,
                                               300ull << 20,
                                               100ull << 20}));
}

TEST(DiskArm, ScanFinishesScatteredBatchFaster) {
  auto batch_time = [](bool scan) {
    simkit::Engine eng;
    DiskArm arm(eng, slow_seek_disk(), scan);
    // 32 requests in a deterministic shuffled order.
    for (int i = 0; i < 32; ++i) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(i) * 37 % 32) << 24;
      eng.spawn([](DiskArm& a, std::uint64_t off) -> simkit::Task<void> {
        co_await a.serve(off, 4096, hw::AccessKind::kRead);
      }(arm, off));
    }
    eng.run();
    return eng.now();
  };
  EXPECT_LT(batch_time(true), 0.7 * batch_time(false));
}

TEST(DiskArm, CountsServices) {
  simkit::Engine eng;
  DiskArm arm(eng, slow_seek_disk(), false);
  for (int i = 0; i < 5; ++i) {
    eng.spawn([](DiskArm& a, int i) -> simkit::Task<void> {
      co_await a.serve(static_cast<std::uint64_t>(i) * 1000, 512,
                      hw::AccessKind::kWrite);
    }(arm, i));
  }
  eng.run();
  EXPECT_EQ(arm.services(), 5u);
  EXPECT_EQ(arm.queue_length(), 0u);
}

}  // namespace
}  // namespace pfs
