// Tests for SCF 1.1's tuple knobs: application memory (M) and stripe
// unit (Su) — the axes of Figure 1's configurations IV-VII.
#include <gtest/gtest.h>

#include "apps/scf.hpp"

namespace apps {
namespace {

ScfConfig base() {
  ScfConfig cfg;
  cfg.version = ScfVersion::kPassion;
  cfg.nprocs = 4;
  cfg.io_nodes = 12;
  cfg.n_basis = 108;
  cfg.iterations = 6;
  cfg.scale = 0.4;
  return cfg;
}

TEST(ScfKnobs, MoreApplicationMemoryMeansFewerBiggerCalls) {
  ScfConfig small = base();
  small.memory_kb = 64;
  ScfConfig big = base();
  big.memory_kb = 256;
  const RunResult rs = run_scf11(small);
  const RunResult rb = run_scf11(big);
  // Same volume, ~4x fewer reads.
  EXPECT_EQ(rs.trace.summary(pfs::OpKind::kRead).bytes,
            rb.trace.summary(pfs::OpKind::kRead).bytes);
  const double call_ratio =
      static_cast<double>(rs.trace.summary(pfs::OpKind::kRead).count) /
      static_cast<double>(rb.trace.summary(pfs::OpKind::kRead).count);
  EXPECT_NEAR(call_ratio, 4.0, 0.3);
  // Fewer calls means less per-call overhead: faster.
  EXPECT_LT(rb.exec_time, rs.exec_time);
}

TEST(ScfKnobs, MemoryHelpsFortranInterfaceMore) {
  // The Fortran interface pays more per call, so the M knob buys more.
  auto gain = [&](ScfVersion v) {
    ScfConfig small = base();
    small.version = v;
    small.memory_kb = 64;
    ScfConfig big = small;
    big.memory_kb = 256;
    return run_scf11(small).exec_time / run_scf11(big).exec_time;
  };
  EXPECT_GT(gain(ScfVersion::kOriginal), gain(ScfVersion::kPassion));
}

TEST(ScfKnobs, StripeUnitIsSecondOrder) {
  ScfConfig su64 = base();
  su64.stripe_unit_kb = 64;
  ScfConfig su128 = base();
  su128.stripe_unit_kb = 128;
  const double a = run_scf11(su64).exec_time;
  const double b = run_scf11(su128).exec_time;
  EXPECT_LT(std::max(a, b) / std::min(a, b), 1.5);
}

TEST(ScfKnobs, ImbalanceStretchesExecution) {
  ScfConfig even = base();
  even.imbalance = 0.0;
  ScfConfig skewed = base();
  skewed.imbalance = 0.3;
  // The slowest rank finishes last; skew can only hurt.
  EXPECT_LE(run_scf11(even).exec_time, run_scf11(skewed).exec_time);
}

TEST(ScfKnobs, IterationsScaleReadVolumeLinearly) {
  ScfConfig k6 = base();
  ScfConfig k11 = base();
  k11.iterations = 11;
  const RunResult r6 = run_scf11(k6);
  const RunResult r11 = run_scf11(k11);
  const double ratio =
      static_cast<double>(r11.trace.summary(pfs::OpKind::kRead).bytes) /
      static_cast<double>(r6.trace.summary(pfs::OpKind::kRead).bytes);
  EXPECT_DOUBLE_EQ(ratio, 2.0);  // 10 read passes vs 5
}

}  // namespace
}  // namespace apps
