// Tests for BTIO Class C.
#include <gtest/gtest.h>

#include "apps/btio.hpp"

namespace apps {
namespace {

TEST(BtioClassC, GridAndVolume) {
  BtioConfig cfg;
  cfg.problem_class = 'C';
  EXPECT_EQ(cfg.grid_n(), 162u);
  EXPECT_EQ(cfg.dump_bytes(), 162ull * 162 * 162 * 40);  // ~170 MB
}

TEST(BtioClassC, RunsAndDwarfsClassA) {
  BtioConfig a;
  a.nprocs = 36;
  a.collective = true;
  a.scale = 0.05;  // 2 dumps
  BtioConfig c = a;
  c.problem_class = 'C';
  const RunResult ra = run_btio(a);
  const RunResult rc = run_btio(c);
  // (162/64)^3 ~ 16x the cells: both I/O volume and compute scale.
  EXPECT_NEAR(static_cast<double>(rc.io_bytes) /
                  static_cast<double>(ra.io_bytes),
              16.2, 0.5);
  EXPECT_GT(rc.exec_time, 8.0 * ra.exec_time);
}

TEST(BtioClassC, CollectiveStillWins) {
  BtioConfig cfg;
  cfg.problem_class = 'C';
  cfg.nprocs = 16;
  cfg.scale = 0.05;
  cfg.collective = false;
  const RunResult unopt = run_btio(cfg);
  cfg.collective = true;
  const RunResult opt = run_btio(cfg);
  EXPECT_LT(opt.io_time, unopt.io_time * 0.5);
}

}  // namespace
}  // namespace apps
