// Tests for the out-of-core FFT: real math end-to-end plus the layout
// performance properties of Figure 5.
#include "apps/fft_app.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <vector>

#include "numeric/fft.hpp"
#include "simkit/rng.hpp"

namespace apps {
namespace {

using numeric::Complex;

// Build a random N x N complex matrix in column-major file order and the
// expected final file: block i holds FFT(row i of the column-FFT'd input).
struct Reference {
  std::vector<std::byte> input;
  std::vector<std::byte> expected;
};

Reference make_reference(std::uint64_t n, std::uint64_t seed) {
  simkit::Rng rng(seed);
  std::vector<Complex> a(n * n);  // col-major: a[c*n + r] = A[r][c]
  for (auto& x : a) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));

  Reference ref;
  ref.input.resize(n * n * 16);
  std::memcpy(ref.input.data(), a.data(), ref.input.size());

  // Column FFT (columns are contiguous in col-major order).
  std::vector<Complex> a1 = a;
  for (std::uint64_t c = 0; c < n; ++c) {
    numeric::fft(std::span<Complex>(a1.data() + c * n, n));
  }
  // Final file: block r = FFT(row r of a1).
  std::vector<Complex> out(n * n);
  std::vector<Complex> row(n);
  for (std::uint64_t r = 0; r < n; ++r) {
    for (std::uint64_t c = 0; c < n; ++c) row[c] = a1[c * n + r];
    numeric::fft(row);
    std::copy(row.begin(), row.end(), out.begin() + r * n);
  }
  ref.expected.resize(n * n * 16);
  std::memcpy(ref.expected.data(), out.data(), ref.expected.size());
  return ref;
}

double max_err(std::span<const std::byte> a, std::span<const std::byte> b) {
  const auto* ca = reinterpret_cast<const Complex*>(a.data());
  const auto* cb = reinterpret_cast<const Complex*>(b.data());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size() / 16; ++i) {
    m = std::max(m, std::abs(ca[i] - cb[i]));
  }
  return m;
}

class FftCorrectness
    : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(FftCorrectness, MatchesInCoreReference) {
  const auto [optimized, nprocs] = GetParam();
  const std::uint64_t n = 64;
  Reference ref = make_reference(n, 42);
  FftConfig cfg;
  cfg.n = n;
  cfg.nprocs = nprocs;
  cfg.io_nodes = 2;
  cfg.optimized_layout = optimized;
  cfg.mem_bytes = 64 * 1024;  // force several strips/tiles
  auto out = run_fft_collect_output(cfg, ref.input);
  ASSERT_EQ(out.size(), ref.expected.size());
  EXPECT_LT(max_err(out, ref.expected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(LayoutsAndRanks, FftCorrectness,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(1, 2, 4)));

TEST(Fft, OptimizedAndOriginalProduceIdenticalFiles) {
  const std::uint64_t n = 32;
  Reference ref = make_reference(n, 7);
  FftConfig cfg;
  cfg.n = n;
  cfg.nprocs = 2;
  cfg.io_nodes = 2;
  cfg.mem_bytes = 32 * 1024;
  cfg.optimized_layout = false;
  auto unopt = run_fft_collect_output(cfg, ref.input);
  cfg.optimized_layout = true;
  auto opt = run_fft_collect_output(cfg, ref.input);
  EXPECT_EQ(unopt, opt);
}

TEST(Fft, LayoutOptimizationReducesIoCalls) {
  FftConfig cfg;
  cfg.n = 512;
  cfg.nprocs = 4;
  cfg.io_nodes = 2;
  cfg.mem_bytes = 1 << 20;
  cfg.optimized_layout = false;
  const FftResult unopt = run_fft(cfg);
  cfg.optimized_layout = true;
  const FftResult opt = run_fft(cfg);
  // The optimized transpose reads whole column panels instead of square
  // tiles: far fewer, far larger requests on the read side.
  EXPECT_LT(opt.transpose_io, unopt.transpose_io);
  EXPECT_LT(opt.exec_time, unopt.exec_time);
}

TEST(Fft, IoDominatesExecution) {
  FftConfig cfg;
  cfg.n = 512;
  cfg.nprocs = 4;
  cfg.io_nodes = 2;
  cfg.mem_bytes = 1 << 20;
  const FftResult r = run_fft(cfg);
  // Paper: I/O is 90-95% of execution for this application.
  EXPECT_GT(r.io_time / (r.io_time + r.compute_time), 0.7);
}

TEST(Fft, UnoptimizedDegradesWithMoreProcs) {
  auto io_time = [](int p) {
    FftConfig cfg;
    cfg.n = 1024;
    cfg.nprocs = p;
    cfg.io_nodes = 2;
    cfg.mem_bytes = 4 << 20;
    cfg.optimized_layout = false;
    return run_fft(cfg).exec_time;  // I/O dominates exec
  };
  // Figure 5: with 2 I/O nodes the unoptimized program gets WORSE past a
  // small processor count.
  const double t4 = io_time(4);
  const double t16 = io_time(16);
  EXPECT_GT(t16, t4);
}

TEST(Fft, OptimizedTwoIoNodesBeatsUnoptimizedFour) {
  FftConfig cfg;
  cfg.n = 1024;
  cfg.nprocs = 8;
  cfg.mem_bytes = 4 << 20;
  cfg.optimized_layout = false;
  cfg.io_nodes = 4;
  const FftResult unopt4 = run_fft(cfg);
  cfg.optimized_layout = true;
  cfg.io_nodes = 2;
  const FftResult opt2 = run_fft(cfg);
  // The paper's headline: software beats hardware here.
  EXPECT_LT(opt2.exec_time, unopt4.exec_time);
}

}  // namespace
}  // namespace apps
