// Tests for the applications' optional read-back phases (BTIO verify,
// AST restart) — the paper's note that these codes become read-intensive
// on restart.
#include <gtest/gtest.h>

#include "apps/ast.hpp"
#include "apps/btio.hpp"

namespace apps {
namespace {

TEST(BtioVerify, AddsAReadPass) {
  BtioConfig cfg;
  cfg.nprocs = 16;
  cfg.scale = 0.05;  // 2 dumps
  cfg.collective = true;
  const RunResult without = run_btio(cfg);
  cfg.verify = true;
  const RunResult with = run_btio(cfg);
  EXPECT_EQ(without.trace.summary(pfs::OpKind::kRead).count, 0u);
  EXPECT_GT(with.trace.summary(pfs::OpKind::kRead).count, 0u);
  EXPECT_EQ(with.trace.summary(pfs::OpKind::kRead).bytes,
            cfg.dump_bytes());  // exactly one dump read back
  EXPECT_GT(with.exec_time, without.exec_time);
}

TEST(BtioVerify, UnoptimizedVerifyIsSeekHeavyToo) {
  BtioConfig cfg;
  cfg.nprocs = 16;
  cfg.scale = 0.05;
  cfg.collective = false;
  cfg.verify = true;
  const RunResult r = run_btio(cfg);
  // One seek+read per pencil on top of the write seeks.
  const std::uint64_t pencils = 64 * 64;
  EXPECT_EQ(r.trace.summary(pfs::OpKind::kRead).count, pencils);
  EXPECT_EQ(r.trace.summary(pfs::OpKind::kSeek).count,
            pencils * (static_cast<std::uint64_t>(cfg.effective_dumps()) +
                       1));
}

TEST(AstRestart, MakesTheRunReadIntensiveUpFront) {
  AstConfig cfg;
  cfg.grid = 512;
  cfg.nprocs = 8;
  cfg.scale = 0.05;  // 2 dumps
  cfg.collective = true;
  const RunResult cold = run_ast(cfg);
  cfg.restart = true;
  const RunResult warm = run_ast(cfg);
  EXPECT_EQ(cold.trace.summary(pfs::OpKind::kRead).count, 0u);
  EXPECT_GT(warm.trace.summary(pfs::OpKind::kRead).bytes, 0u);
  // The restart reads exactly one array snapshot.
  EXPECT_EQ(warm.trace.summary(pfs::OpKind::kRead).bytes,
            cfg.grid * cfg.grid * cfg.elem_bytes());
}

TEST(AstRestart, ChameleonRestartFunnelsThroughNodeZero) {
  AstConfig cfg;
  cfg.grid = 512;
  cfg.nprocs = 8;
  cfg.scale = 0.05;
  cfg.collective = false;
  cfg.restart = true;
  const RunResult r = run_ast(cfg);
  // One read per column of the snapshot, all performed by node 0.
  EXPECT_EQ(r.trace.summary(pfs::OpKind::kRead).count, cfg.grid);
}

TEST(AstRestart, CollectiveRestartFarFasterThanChameleon) {
  AstConfig base;
  base.grid = 1024;
  base.nprocs = 16;
  base.scale = 0.05;
  base.restart = true;
  AstConfig cham = base;
  cham.collective = false;
  AstConfig coll = base;
  coll.collective = true;
  const RunResult a = run_ast(cham);
  const RunResult b = run_ast(coll);
  EXPECT_GT(a.trace.summary(pfs::OpKind::kRead).time,
            5.0 * b.trace.summary(pfs::OpKind::kRead).time);
}

}  // namespace
}  // namespace apps
