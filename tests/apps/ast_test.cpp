// Tests for the astrophysics application (Table 4 properties).
#include "apps/ast.hpp"

#include <gtest/gtest.h>

namespace apps {
namespace {

AstConfig quick(int nprocs, bool collective, std::size_t io_nodes = 16) {
  AstConfig cfg;
  cfg.grid = 1024;  // scaled-down grid for tests
  cfg.nprocs = nprocs;
  cfg.collective = collective;
  cfg.io_nodes = io_nodes;
  cfg.scale = 0.1;  // 4 dumps
  return cfg;
}

TEST(Ast, CollectiveIoDramaticallyFaster) {
  const RunResult unopt = run_ast(quick(16, false));
  const RunResult opt = run_ast(quick(16, true));
  // Table 4 at 16 procs: 2557 s vs 428 s (~6x).  Require a clear win.
  EXPECT_GT(unopt.exec_time / opt.exec_time, 2.0);
  EXPECT_GT(unopt.io_time / opt.io_time, 5.0);
}

TEST(Ast, IoNodeCountMattersLittle) {
  const RunResult u16 = run_ast(quick(16, false, 16));
  const RunResult u64 = run_ast(quick(16, false, 64));
  const RunResult o16 = run_ast(quick(16, true, 16));
  const RunResult o64 = run_ast(quick(16, true, 64));
  // Table 4: 16 vs 64 I/O nodes changes totals by a few percent only.
  EXPECT_LT(u16.exec_time / u64.exec_time, 1.15);
  EXPECT_LT(o16.exec_time / o64.exec_time, 1.15);
  // But both columns agree the collective version wins.
  EXPECT_LT(o64.exec_time, u64.exec_time);
}

TEST(Ast, UnoptimizedChunksPerColumn) {
  AstConfig cfg = quick(16, false);
  const RunResult r = run_ast(cfg);
  // Node 0 writes one chunk per column per array per dump.
  const std::uint64_t expected =
      cfg.grid * static_cast<std::uint64_t>(cfg.arrays_per_dump) *
      static_cast<std::uint64_t>(cfg.effective_dumps());
  EXPECT_EQ(r.trace.summary(pfs::OpKind::kWrite).count, expected);
}

TEST(Ast, VolumeConservedAcrossVersions) {
  const RunResult unopt = run_ast(quick(8, false));
  const RunResult opt = run_ast(quick(8, true));
  EXPECT_EQ(unopt.io_bytes, opt.io_bytes);
  AstConfig cfg = quick(8, false);
  EXPECT_EQ(unopt.io_bytes,
            cfg.dump_bytes() *
                static_cast<std::uint64_t>(cfg.effective_dumps()));
}

TEST(Ast, OptimizedScalesThenFlattens) {
  const RunResult p16 = run_ast(quick(16, true));
  const RunResult p64 = run_ast(quick(64, true));
  // Compute-dominated at small P: good scaling 16 -> 64.
  EXPECT_GT(p16.exec_time / p64.exec_time, 2.0);
}

TEST(Ast, NonSquareRankCountsFactorCorrectly) {
  // 32 = 8x4 and 128 = 16x8 must run (Table 4's processor axis).
  const RunResult r32 = run_ast(quick(32, true));
  const RunResult r128 = run_ast(quick(128, true));
  EXPECT_GT(r32.exec_time, 0.0);
  EXPECT_GT(r128.exec_time, 0.0);
  EXPECT_LT(r128.compute_time / 128.0, r32.compute_time / 32.0 * 1.05);
}

}  // namespace
}  // namespace apps
