// Tests for BTIO (Figure 6/7 properties).
#include "apps/btio.hpp"

#include <gtest/gtest.h>

namespace apps {
namespace {

BtioConfig quick(int nprocs, bool collective) {
  BtioConfig cfg;
  cfg.nprocs = nprocs;
  cfg.collective = collective;
  cfg.scale = 0.1;  // 4 dumps
  return cfg;
}

TEST(Btio, CollectiveReducesIoTime) {
  const RunResult unopt = run_btio(quick(16, false));
  const RunResult opt = run_btio(quick(16, true));
  EXPECT_LT(opt.io_time, unopt.io_time * 0.5);
  EXPECT_LT(opt.exec_time, unopt.exec_time);
  // Same solution volume lands on disk.
  EXPECT_EQ(unopt.io_bytes, opt.io_bytes);
}

TEST(Btio, UnoptimizedIsSeekHeavy) {
  const RunResult unopt = run_btio(quick(16, false));
  const RunResult opt = run_btio(quick(16, true));
  // Paper: "the code contains a lot of seek operations".
  EXPECT_GT(unopt.trace.summary(pfs::OpKind::kSeek).count, 1000u);
  EXPECT_EQ(opt.trace.summary(pfs::OpKind::kSeek).count, 0u);
  // One collective write op per dump per rank vs one per pencil.
  EXPECT_GT(unopt.trace.summary(pfs::OpKind::kWrite).count,
            20 * opt.trace.summary(pfs::OpKind::kWrite).count);
}

TEST(Btio, BandwidthGapMatchesFigure7Shape) {
  const RunResult unopt = run_btio(quick(16, false));
  const RunResult opt = run_btio(quick(16, true));
  // Paper: original 0.97-1.5 MB/s vs optimized 6.6-31.4 MB/s — at least
  // 4x apart everywhere.
  EXPECT_GT(opt.io_bandwidth_mb_s(), 4.0 * unopt.io_bandwidth_mb_s());
}

TEST(Btio, ClassBIsLarger) {
  BtioConfig a = quick(4, true);
  BtioConfig b = a;
  b.problem_class = 'B';
  const RunResult ra = run_btio(a);
  const RunResult rb = run_btio(b);
  EXPECT_GT(rb.io_bytes, 3 * ra.io_bytes);  // (102/64)^3 ~ 4x
}

TEST(Btio, DumpVolumeMatchesGrid) {
  BtioConfig cfg = quick(4, true);
  const RunResult r = run_btio(cfg);
  EXPECT_EQ(r.io_bytes,
            cfg.dump_bytes() *
                static_cast<std::uint64_t>(cfg.effective_dumps()));
  // Class A dump = 64^3 cells x 40 B = ~10.5 MB (paper: 408.9 MB / 40).
  EXPECT_EQ(cfg.dump_bytes(), 64ull * 64 * 64 * 40);
}

TEST(Btio, ComputeScalesDownWithProcs) {
  const RunResult p4 = run_btio(quick(4, true));
  const RunResult p16 = run_btio(quick(16, true));
  // Total solver work (summed across ranks) is invariant; wall time drops.
  EXPECT_NEAR(p4.compute_time, p16.compute_time, p4.compute_time * 0.01);
  EXPECT_LT(p16.exec_time, p4.exec_time);
}

}  // namespace
}  // namespace apps
