// Tests for the SCF 1.1 workload model.
#include "apps/scf.hpp"

#include <gtest/gtest.h>

namespace apps {
namespace {

ScfConfig small_cfg(ScfVersion v) {
  ScfConfig cfg;
  cfg.version = v;
  cfg.nprocs = 4;
  cfg.io_nodes = 12;
  cfg.n_basis = 108;  // SMALL input
  cfg.iterations = 11;  // 1 write pass + 10 read passes, like the paper
  cfg.scale = 0.4;  // enough volume that per-file costs dominate opens
  return cfg;
}

TEST(Scf11, ReadDominatedLikeTable2) {
  const RunResult r = run_scf11(small_cfg(ScfVersion::kOriginal));
  const auto& reads = r.trace.summary(pfs::OpKind::kRead);
  const auto& writes = r.trace.summary(pfs::OpKind::kWrite);
  // Table 2: reads are ~95% of I/O time and several times the write
  // volume (iterations-1 read passes over the written file).
  EXPECT_GT(reads.time, 0.80 * r.io_time);
  EXPECT_EQ(reads.bytes, writes.bytes * 10);  // 1 write pass, 10 read passes
  EXPECT_GT(r.io_time, 0.0);
  EXPECT_GT(r.exec_time, 0.0);
}

TEST(Scf11, PassionInterfaceBeatsOriginal) {
  const RunResult orig = run_scf11(small_cfg(ScfVersion::kOriginal));
  const RunResult pass = run_scf11(small_cfg(ScfVersion::kPassion));
  // Table 2 vs 3: total I/O time drops by ~1.8x; exec follows.
  EXPECT_GT(orig.io_time / pass.io_time, 1.3);
  EXPECT_LT(pass.exec_time, orig.exec_time);
  // Same data volume moved in both.
  EXPECT_EQ(orig.trace.summary(pfs::OpKind::kRead).bytes,
            pass.trace.summary(pfs::OpKind::kRead).bytes);
}

TEST(Scf11, PassionSeeksManyButCheap) {
  const RunResult orig = run_scf11(small_cfg(ScfVersion::kOriginal));
  const RunResult pass = run_scf11(small_cfg(ScfVersion::kPassion));
  const auto& oseek = orig.trace.summary(pfs::OpKind::kSeek);
  const auto& pseek = pass.trace.summary(pfs::OpKind::kSeek);
  // PASSION seeks before every read (Table 3: 604k seeks vs 994) but each
  // is an order of magnitude cheaper.
  EXPECT_GT(pseek.count, 20 * oseek.count);
  EXPECT_GT(oseek.latency.mean() / pseek.latency.mean(), 5.0);
}

TEST(Scf11, PrefetchBeatsPlainPassion) {
  const RunResult pass = run_scf11(small_cfg(ScfVersion::kPassion));
  const RunResult pref = run_scf11(small_cfg(ScfVersion::kPassionPrefetch));
  EXPECT_LT(pref.exec_time, pass.exec_time);
  EXPECT_LT(pref.io_time, pass.io_time);  // wait+copy < blocking read
}

TEST(Scf11, ProblemSizeScalesVolume) {
  ScfConfig s = small_cfg(ScfVersion::kPassion);
  ScfConfig m = s;
  m.n_basis = 140;
  const RunResult rs = run_scf11(s);
  const RunResult rm = run_scf11(m);
  // N^4 scaling: (140/108)^4 ~ 2.8x the integrals and bytes.
  const double ratio =
      static_cast<double>(rm.io_bytes) / static_cast<double>(rs.io_bytes);
  EXPECT_NEAR(ratio, 2.8, 0.3);
  EXPECT_GT(rm.exec_time, rs.exec_time);
}

TEST(Scf11, OpCountsMatchChunking) {
  ScfConfig cfg = small_cfg(ScfVersion::kPassion);
  const RunResult r = run_scf11(cfg);
  // Each rank: ceil(bytes/chunk) writes, (iterations-1) x that reads.
  const auto& reads = r.trace.summary(pfs::OpKind::kRead);
  const auto& writes = r.trace.summary(pfs::OpKind::kWrite);
  EXPECT_EQ(reads.count,
            writes.count * static_cast<std::uint64_t>(cfg.iterations - 1));
  EXPECT_GE(writes.count, 4u);  // at least one chunk per rank
}

TEST(Scf11, DirectVersionDoesNoIo) {
  const RunResult r = run_scf11(small_cfg(ScfVersion::kDirect));
  EXPECT_EQ(r.io_calls, 0u);
  EXPECT_EQ(r.io_bytes, 0u);
  EXPECT_GT(r.compute_time, 0.0);
}

TEST(Scf11, DiskBeatsDirectAtSmallScaleOnly) {
  // The paper: users run the disk-based version at small P but fall back
  // to recomputation at large P on a starved I/O partition.
  auto run = [](ScfVersion v, int p) {
    ScfConfig cfg = small_cfg(v);
    cfg.n_basis = 285;
    cfg.nprocs = p;
    cfg.io_nodes = 12;
    cfg.iterations = 12;
    cfg.scale = 0.15;
    return run_scf11(cfg).exec_time;
  };
  EXPECT_LT(run(ScfVersion::kPassionPrefetch, 4),
            run(ScfVersion::kDirect, 4));
  EXPECT_LT(run(ScfVersion::kDirect, 256),
            run(ScfVersion::kPassionPrefetch, 256));
}

TEST(Scf11, MoreIoNodesHelpUnoptimizedAtScale) {
  ScfConfig few = small_cfg(ScfVersion::kOriginal);
  few.nprocs = 32;
  few.io_nodes = 4;
  ScfConfig many = few;
  many.io_nodes = 16;
  const RunResult rf = run_scf11(few);
  const RunResult rm = run_scf11(many);
  EXPECT_LT(rm.exec_time, rf.exec_time);  // Figure 3's effect
}

}  // namespace
}  // namespace apps
