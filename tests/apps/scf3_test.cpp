// Tests for the SCF 3.0 (semi-direct, balanced I/O) workload model.
#include "apps/scf3.hpp"

#include <gtest/gtest.h>

namespace apps {
namespace {

Scf30Config base_cfg() {
  Scf30Config cfg;
  cfg.nprocs = 8;
  cfg.io_nodes = 16;
  cfg.n_basis = 108;
  cfg.iterations = 4;
  cfg.scale = 0.1;
  return cfg;
}

TEST(Scf30, FullRecomputeScalesWithProcessors) {
  Scf30Config a = base_cfg();
  a.cached_percent = 0.0;
  Scf30Config b = a;
  b.nprocs = 32;
  const RunResult ra = run_scf30(a);
  const RunResult rb = run_scf30(b);
  // Figure 4: at 0% cached, more processors help a lot.
  EXPECT_GT(ra.exec_time / rb.exec_time, 2.0);
}

TEST(Scf30, FullDiskInsensitiveToProcessors) {
  // Figure 4's regime: the MEDIUM input's cached files exceed the I/O
  // nodes' caches (sequential re-scans defeat LRU), so disk reads gate
  // every iteration; Fock assembly is cheap relative to evaluation.
  Scf30Config a = base_cfg();
  a.cached_percent = 100.0;
  a.n_basis = 180;  // cached files well beyond the I/O-node caches
  a.scale = 1.0;
  a.iterations = 10;  // amortize the (perfectly scaling) first iteration
  a.fock_flops_per_integral = 20.0;
  a.nprocs = 16;
  Scf30Config b = a;
  b.nprocs = 64;
  const RunResult ra = run_scf30(a);
  const RunResult rb = run_scf30(b);
  // 4x the processors must buy much less than 4x (paper: "increasing the
  // number of processors does not make a significant difference").
  EXPECT_LT(ra.exec_time / rb.exec_time, 2.0);
}

TEST(Scf30, CachingBeatsRecomputeOnThisPlatform) {
  // Paper: "increasing the percentage of integrals stored on disk gave
  // better performance" (disk read < re-evaluation cost).
  Scf30Config lo = base_cfg();
  lo.cached_percent = 0.0;
  Scf30Config hi = base_cfg();
  hi.cached_percent = 100.0;
  EXPECT_LT(run_scf30(hi).exec_time, run_scf30(lo).exec_time);
}

TEST(Scf30, IoNodesMatterLittle) {
  Scf30Config a = base_cfg();
  a.cached_percent = 75.0;
  Scf30Config b = a;
  b.io_nodes = 64;
  const RunResult ra = run_scf30(a);
  const RunResult rb = run_scf30(b);
  // Figure 4: 16 vs 64 I/O nodes is a second-order effect for SCF 3.0.
  EXPECT_LT(ra.exec_time / rb.exec_time, 1.35);
}

TEST(Scf30, CachedFractionControlsVolume) {
  Scf30Config half = base_cfg();
  half.cached_percent = 50.0;
  Scf30Config full = base_cfg();
  full.cached_percent = 100.0;
  const RunResult rh = run_scf30(half);
  const RunResult rf = run_scf30(full);
  const double ratio =
      static_cast<double>(rf.io_bytes) / static_cast<double>(rh.io_bytes);
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST(Scf30, BalancedIoReducesExecWithSkew) {
  // Read-gated regime: big cached volume, cheap Fock assembly, strong
  // skew — the largest private file gates every iteration.
  Scf30Config on = base_cfg();
  on.cached_percent = 100.0;
  on.imbalance = 0.35;
  on.scale = 1.0;  // per-rank files well above the 1 MB balance floor
  on.io_nodes = 64;  // ample disks: each client's own scan is the gate
  on.iterations = 12;  // many read passes amortize the balancing cost
  on.fock_flops_per_integral = 5.0;
  on.balanced_io = true;
  Scf30Config off = on;
  off.balanced_io = false;
  const RunResult r_on = run_scf30(on);
  const RunResult r_off = run_scf30(off);
  EXPECT_LT(r_on.exec_time, r_off.exec_time);
}

TEST(Scf30, SortedCachingMakesRecomputationCheaper) {
  // Caching the EXPENSIVE integrals (the paper's ordering) leaves only
  // cheap ones to recompute each iteration.
  Scf30Config sorted_cfg = base_cfg();
  sorted_cfg.cached_percent = 75.0;
  sorted_cfg.sorted_caching = true;
  Scf30Config random_cfg = sorted_cfg;
  random_cfg.sorted_caching = false;
  const RunResult s = run_scf30(sorted_cfg);
  const RunResult r = run_scf30(random_cfg);
  EXPECT_LT(s.compute_time, r.compute_time);
  EXPECT_LT(s.exec_time, r.exec_time);
  // Same I/O either way: the fraction on disk is unchanged.
  EXPECT_EQ(s.io_bytes, r.io_bytes);
}

TEST(Scf30, ZeroCachedDoesNoDataIo) {
  Scf30Config cfg = base_cfg();
  cfg.cached_percent = 0.0;
  const RunResult r = run_scf30(cfg);
  EXPECT_EQ(r.trace.summary(pfs::OpKind::kRead).bytes, 0u);
  EXPECT_EQ(r.trace.summary(pfs::OpKind::kWrite).bytes, 0u);
  EXPECT_GT(r.compute_time, 0.0);
}

}  // namespace
}  // namespace apps
