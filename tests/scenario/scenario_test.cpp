// Tests for the scenario layer: registration rules, grid expansion
// order, and the parallel-equals-serial determinism contract.
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "simkit/rng.hpp"

namespace {

scenario::Spec make_spec(const std::string& name) {
  scenario::Spec s;
  s.name = name;
  s.title = std::string("title of ") + name;
  s.run = [](scenario::Context&) {};
  return s;
}

TEST(ScenarioRegistry, RejectsDuplicateName) {
  scenario::Registry reg;
  reg.add(make_spec("a"));
  EXPECT_THROW(reg.add(make_spec("a")), std::logic_error);
}

TEST(ScenarioRegistry, RejectsEmptyNameAndMissingRun) {
  scenario::Registry reg;
  EXPECT_THROW(reg.add(make_spec("")), std::logic_error);
  scenario::Spec no_run;
  no_run.name = "x";
  EXPECT_THROW(reg.add(std::move(no_run)), std::logic_error);
}

TEST(ScenarioRegistry, AllIsSortedByName) {
  scenario::Registry reg;
  reg.add(make_spec("zeta"));
  reg.add(make_spec("alpha"));
  reg.add(make_spec("mid"));
  const auto all = reg.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name, "alpha");
  EXPECT_EQ(all[1]->name, "mid");
  EXPECT_EQ(all[2]->name, "zeta");
  EXPECT_EQ(reg.find("mid"), all[1]);
  EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(ScenarioGrid, EmptyGridIsOnePoint) {
  const std::vector<scenario::Axis> grid;
  EXPECT_EQ(scenario::grid_size(grid), 1u);
  EXPECT_TRUE(scenario::grid_point(grid, 0).coord.empty());
}

TEST(ScenarioGrid, LastAxisFastest) {
  // Matches the nested loops the bench binaries used to write: the
  // OUTER loop is the first axis.
  const std::vector<scenario::Axis> grid = {
      {"outer", {"a", "b", "c"}},
      {"inner", {"x", "y"}},
  };
  ASSERT_EQ(scenario::grid_size(grid), 6u);
  std::vector<std::pair<std::size_t, std::size_t>> seen;
  for (std::size_t i = 0; i < 6; ++i) {
    const scenario::GridPoint p = scenario::grid_point(grid, i);
    EXPECT_EQ(p.index, i);
    seen.emplace_back(p.at(0), p.at(1));
  }
  const std::vector<std::pair<std::size_t, std::size_t>> want = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}};
  EXPECT_EQ(seen, want);
}

TEST(ScenarioGlobalRegistry, HasAllThirtyOneScenarios) {
  const char* names[] = {
      "table2_3", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
      "figure2_xl", "table4", "table5", "ablation_overhead", "ablation_ionode",
      "ablation_network", "ablation_iomode", "ablation_scan",
      "ablation_stripe", "ablation_aggregators", "fault_ckpt",
      "fault_correlated", "platform_ckpt_interference", "platform_queueing",
      "platform_server_cache", "platform_server_faults",
      "server_cache_policy", "server_crash_durability", "server_readahead",
      "engine_bench", "micro_simkit", "micro_pfs", "micro_twophase"};
  for (const char* n : names) {
    EXPECT_NE(scenario::Registry::global().find(n), nullptr) << n;
  }
  EXPECT_EQ(scenario::Registry::global().all().size(), std::size(names));
}

TEST(ScenarioGlobalRegistry, EveryScenarioHasADescription) {
  for (const scenario::Spec* s : scenario::Registry::global().all()) {
    EXPECT_FALSE(s->description.empty()) << s->name;
  }
}

// A stochastic-looking body: every point draws from its own seeded RNG
// stream and the body renders results in point order.  Any cross-thread
// leakage (shared RNG, out-of-order fold, interleaved output) breaks the
// byte-equality below.
std::string run_body(int jobs) {
  expt::Options opt(1.0);
  scenario::JobBudget budget(jobs);
  scenario::Context ctx(opt, "", &budget);
  const std::vector<double> vals =
      ctx.map<double>(64, [](std::size_t i) {
        simkit::Rng rng(0xC0FFEE + i);
        double acc = 0.0;
        for (int k = 0; k < 1000; ++k) acc += rng.uniform();
        return acc;
      });
  for (std::size_t i = 0; i < vals.size(); ++i) {
    ctx.printf("%zu %.12f\n", i, vals[i]);
  }
  return ctx.output();
}

TEST(ScenarioParallel, ParallelEqualsSerial) {
  const std::string serial = run_body(1);
  const std::string parallel = run_body(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

// The registered fault_correlated scenario drives real engines with
// injected faults from three points; its rendered output must also be
// byte-identical across -j.
std::string run_registered(int jobs) {
  const scenario::Spec* s =
      scenario::Registry::global().find("fault_correlated");
  EXPECT_NE(s, nullptr);
  expt::Options opt(0.1);
  scenario::JobBudget budget(jobs);
  scenario::Context ctx(opt, "", &budget);
  s->run(ctx);
  return ctx.output();
}

TEST(ScenarioParallel, RegisteredScenarioParallelEqualsSerial) {
  const std::string serial = run_registered(1);
  const std::string parallel = run_registered(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

// The platform scenario is the widest determinism surface in the repo:
// each grid point drives a 160-job multi-tenant simulation (shared PFS,
// coroutine job bodies, node allocator).  Its rendered sweep must also
// fold back byte-identically under -j.
std::string run_platform(int jobs) {
  const scenario::Spec* s =
      scenario::Registry::global().find("platform_queueing");
  EXPECT_NE(s, nullptr);
  expt::Options opt(s->default_scale);
  scenario::JobBudget budget(jobs);
  scenario::Context ctx(opt, "", &budget);
  s->run(ctx);
  return ctx.output();
}

TEST(ScenarioParallel, PlatformScenarioParallelEqualsSerial) {
  const std::string serial = run_platform(1);
  const std::string parallel = run_platform(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ScenarioJobBudget, AcquireNeverOversubscribes) {
  scenario::JobBudget b(4);  // 3 worker tokens beyond the caller
  EXPECT_EQ(b.acquire(2), 2);
  EXPECT_EQ(b.acquire(5), 1);
  EXPECT_EQ(b.acquire(1), 0);
  b.release(3);
  EXPECT_EQ(b.acquire(8), 3);
  b.release(3);
}

}  // namespace
