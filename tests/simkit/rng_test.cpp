// Tests for the deterministic RNG.
#include "simkit/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace simkit {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(42);
  Rng c1 = parent.split(0);
  Rng c2 = parent.split(1);
  Rng c1_again = parent.split(0);
  EXPECT_NE(c1.next(), c2.next());
  Rng c1_ref = Rng(42).split(0);
  EXPECT_EQ(c1_ref.next(), c1_again.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsAboutHalf) {
  Rng r(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsRespected) {
  Rng r(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = r.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}


TEST(Rng, SplitIsBatchingInvariant) {
  // split() must reconstruct the state at the LOGICAL consumption
  // point: deriving a child after N draws yields the same stream no
  // matter where N falls relative to the kBatch refill boundary.
  for (int n : {0, 1, Rng::kBatch - 1, Rng::kBatch, Rng::kBatch + 3,
                5 * Rng::kBatch}) {
    Rng a(99);
    for (int i = 0; i < n; ++i) a.next();
    Rng child_a = a.split(17);

    Rng b(99);
    for (int i = 0; i < n; ++i) b.next();
    b.next();  // desynchronize b's batch buffer from a's...
    Rng c(99);
    for (int i = 0; i < n + 1; ++i) c.next();
    Rng child_c = c.split(17);
    // ...then children from the same logical point still differ from
    // children one draw later, and equal-point children agree.
    Rng a2(99);
    for (int i = 0; i < n; ++i) a2.next();
    Rng child_a2 = a2.split(17);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(child_a.next(), child_a2.next());
    }
    EXPECT_NE(child_a.next(), child_c.next());
  }
}

TEST(Rng, SplitDoesNotPerturbParent) {
  Rng a(4242), b(4242);
  std::vector<std::uint64_t> expect;
  for (int i = 0; i < 100; ++i) expect.push_back(b.next());
  std::vector<std::uint64_t> got;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) a.split(static_cast<std::uint64_t>(i));
    got.push_back(a.next());
  }
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace simkit
