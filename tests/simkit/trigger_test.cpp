// Tests for Trigger and Latch.
#include "simkit/trigger.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkit/engine.hpp"

namespace simkit {
namespace {

TEST(Trigger, ReleasesAllWaiters) {
  Engine eng;
  Trigger t;
  std::vector<double> wake_times;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Engine& e, Trigger& t, std::vector<double>& out)
                  -> Task<void> {
      co_await t.wait();
      out.push_back(e.now());
    }(eng, t, wake_times));
  }
  eng.spawn([](Engine& e, Trigger& t) -> Task<void> {
    co_await e.delay(2.0);
    t.fire(e);
  }(eng, t));
  eng.run();
  ASSERT_EQ(wake_times.size(), 4u);
  for (double w : wake_times) EXPECT_DOUBLE_EQ(w, 2.0);
}

TEST(Trigger, WaitAfterFireIsImmediate) {
  Engine eng;
  Trigger t;
  double wake = -1.0;
  eng.spawn([](Engine& e, Trigger& t, double& out) -> Task<void> {
    t.fire(e);
    co_await e.delay(5.0);
    co_await t.wait();  // already fired: no extra delay
    out = e.now();
  }(eng, t, wake));
  eng.run();
  EXPECT_DOUBLE_EQ(wake, 5.0);
}

TEST(Trigger, FireIsIdempotent) {
  Engine eng;
  Trigger t;
  int wakes = 0;
  eng.spawn([](Engine&, Trigger& t, int& n) -> Task<void> {
    co_await t.wait();
    ++n;
  }(eng, t, wakes));
  eng.spawn([](Engine& e, Trigger& t) -> Task<void> {
    t.fire(e);
    t.fire(e);
    co_return;
  }(eng, t));
  eng.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Latch, FiresAfterExactCount) {
  Engine eng;
  Latch latch(3);
  double done_at = -1.0;
  eng.spawn([](Engine& e, Latch& l, double& out) -> Task<void> {
    co_await l.wait();
    out = e.now();
  }(eng, latch, done_at));
  for (int i = 1; i <= 3; ++i) {
    eng.spawn([](Engine& e, Latch& l, int when) -> Task<void> {
      co_await e.delay(static_cast<double>(when));
      l.arrive(e);
    }(eng, latch, i));
  }
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 3.0);  // last arrival releases the waiter
}

TEST(Latch, ExtraArrivalsAreHarmless) {
  Engine eng;
  Latch latch(1);
  int wakes = 0;
  eng.spawn([](Engine&, Latch& l, int& n) -> Task<void> {
    co_await l.wait();
    ++n;
  }(eng, latch, wakes));
  eng.spawn([](Engine& e, Latch& l) -> Task<void> {
    l.arrive(e);
    l.arrive(e);
    co_return;
  }(eng, latch));
  eng.run();
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(latch.remaining(), 0u);
}

}  // namespace
}  // namespace simkit
