// Tests for Task<T>: laziness, value/exception propagation, nesting.
#include "simkit/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "simkit/engine.hpp"

namespace simkit {
namespace {

TEST(Task, IsLazyUntilAwaited) {
  bool started = false;
  auto make = [&]() -> Task<void> {
    started = true;
    co_return;
  };
  Engine eng;
  Task<void> t = make();
  EXPECT_FALSE(started);
  eng.spawn(std::move(t));
  EXPECT_FALSE(started);  // spawn schedules; nothing runs before run()
  eng.run();
  EXPECT_TRUE(started);
}

TEST(Task, ReturnsValueThroughAwait) {
  Engine eng;
  int got = 0;
  auto inner = [](Engine& e) -> Task<int> {
    co_await e.delay(1.0);
    co_return 42;
  };
  eng.spawn([](Engine& e, auto inner_fn, int& out) -> Task<void> {
    out = co_await inner_fn(e);
  }(eng, inner, got));
  eng.run();
  EXPECT_EQ(got, 42);
}

TEST(Task, MoveOnlyValueSupported) {
  Engine eng;
  std::string got;
  auto inner = []() -> Task<std::string> { co_return std::string("hello"); };
  eng.spawn([](auto inner_fn, std::string& out) -> Task<void> {
    out = co_await inner_fn();
  }(inner, got));
  eng.run();
  EXPECT_EQ(got, "hello");
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Engine eng;
  bool caught = false;
  auto inner = []() -> Task<int> {
    throw std::logic_error("inner");
    co_return 0;
  };
  eng.spawn([](auto inner_fn, bool& c) -> Task<void> {
    try {
      (void)co_await inner_fn();
    } catch (const std::logic_error&) {
      c = true;
    }
  }(inner, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Task, DeepNestingKeepsTiming) {
  Engine eng;
  auto leaf = [](Engine& e) -> Task<int> {
    co_await e.delay(1.0);
    co_return 1;
  };
  auto mid = [leaf](Engine& e) -> Task<int> {
    int a = co_await leaf(e);
    int b = co_await leaf(e);
    co_return a + b;
  };
  int total = 0;
  double finish = 0.0;
  eng.spawn([](Engine& e, auto mid_fn, int& out, double& t) -> Task<void> {
    out = co_await mid_fn(e);
    out += co_await mid_fn(e);
    t = e.now();
  }(eng, mid, total, finish));
  eng.run();
  EXPECT_EQ(total, 4);
  EXPECT_DOUBLE_EQ(finish, 4.0);
}

TEST(Task, UnstartedTaskDestroysCleanly) {
  bool ran = false;
  {
    auto t = [&]() -> Task<void> {
      ran = true;
      co_return;
    }();
    EXPECT_TRUE(t.valid());
  }  // destroyed without ever running
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace simkit
