// Tests for RunningStat and Log2Histogram.
#include "simkit/stats.hpp"

#include <gtest/gtest.h>

namespace simkit {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = (i * 37 % 11) + 0.5 * i;
    (i < 40 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Log2Histogram, BucketsByMagnitude) {
  Log2Histogram h(1.0, 10);
  h.add(0.5);   // bucket 0: [0,1)
  h.add(1.5);   // bucket 1: [1,2)
  h.add(3.0);   // bucket 2: [2,4)
  h.add(3.9);   // bucket 2
  h.add(100.0);  // bucket 7: [64,128)
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 2u);
  EXPECT_EQ(h.counts()[7], 1u);
  EXPECT_EQ(h.stat().count(), 5u);
}

TEST(Log2Histogram, QuantileUpperBoundMonotone) {
  Log2Histogram h(1.0, 20);
  for (int i = 1; i <= 1024; ++i) h.add(static_cast<double>(i));
  const double q50 = h.quantile_upper_bound(0.50);
  const double q90 = h.quantile_upper_bound(0.90);
  const double q99 = h.quantile_upper_bound(0.99);
  EXPECT_LE(q50, q90);
  EXPECT_LE(q90, q99);
  EXPECT_GE(q50, 512.0 * 0.5);  // the median of 1..1024 is ~512
}

}  // namespace
}  // namespace simkit
