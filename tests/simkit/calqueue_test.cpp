// Tests for the calendar-queue scheduler: exact (t, seq) pop-order
// equivalence against a reference binary heap (the engine's previous
// scheduler), including the resize, overflow-migration, and front-
// buffer boundary cases.
#include "simkit/calqueue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "simkit/rng.hpp"

namespace simkit {
namespace {

struct RefEv {
  Time t;
  std::uint64_t seq;
  int payload;
};
struct RefCmp {  // max-heap inversion: priority_queue pops the min
  bool operator()(const RefEv& a, const RefEv& b) const noexcept {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  }
};

/// The scheduler the engine used before the calendar queue; every
/// equivalence test below demands bit-identical pop order against it.
class RefHeap {
 public:
  void push(Time t, std::uint64_t seq, int payload) {
    q_.push({t, seq, payload});
  }
  RefEv pop() {
    RefEv e = q_.top();
    q_.pop();
    return e;
  }
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

 private:
  std::priority_queue<RefEv, std::vector<RefEv>, RefCmp> q_;
};

/// Push the same stream into both queues, then (or interleaved) pop
/// both and require identical (t, seq, payload) at every step.
class Harness {
 public:
  void push(Time t, int payload) {
    cq_.push(t, seq_, payload);
    ref_.push(t, seq_, payload);
    ++seq_;
  }

  /// Pops one event from both queues, asserts equality, returns its t.
  Time pop_both() {
    EXPECT_FALSE(cq_.empty());
    EXPECT_FALSE(ref_.empty());
    const auto ce = cq_.pop();
    const RefEv re = ref_.pop();
    EXPECT_EQ(ce.t, re.t);
    EXPECT_EQ(ce.seq, re.seq);
    EXPECT_EQ(ce.payload, re.payload);
    return re.t;
  }

  void drain_and_compare() {
    while (!ref_.empty()) pop_both();
    EXPECT_TRUE(cq_.empty());
    EXPECT_EQ(cq_.size(), 0u);
  }

  CalendarQueue<int>& cq() { return cq_; }

 private:
  CalendarQueue<int> cq_;
  RefHeap ref_;
  std::uint64_t seq_ = 0;
};

TEST(CalendarQueue, StartsEmpty) {
  CalendarQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(CalendarQueue, PeekMatchesPop) {
  CalendarQueue<int> q;
  q.push(2.0, 0, 20);
  q.push(1.0, 1, 10);
  EXPECT_EQ(q.peek().t, 1.0);
  EXPECT_EQ(q.peek().payload, 10);
  const auto e = q.pop();
  EXPECT_EQ(e.t, 1.0);
  EXPECT_EQ(q.peek().t, 2.0);
}

TEST(CalendarQueue, AllSameTimePopsInSeqOrder) {
  // A pile of ties no bucket geometry can split: pure seq tiebreak,
  // and well past kFront so the front buffer churns through it too.
  Harness h;
  for (int i = 0; i < 5000; ++i) h.push(1.0, i);
  h.drain_and_compare();
}

TEST(CalendarQueue, ExponentiallySpreadTimesForceWidthResizes) {
  // Times spanning 12 orders of magnitude: no single width fits, so
  // the queue must resize/widen and still pop in exact order.
  Harness h;
  int payload = 0;
  for (int mag = -6; mag <= 6; ++mag) {
    const double base = std::pow(10.0, mag);
    for (int i = 0; i < 200; ++i) {
      h.push(base * (1.0 + 0.001 * i), payload++);
    }
  }
  h.drain_and_compare();
}

TEST(CalendarQueue, FarFutureOverflowMigratesBack) {
  // Fault-injector shape: a parked far-future tail behind a hot near
  // set.  The tail sits in the overflow heap until the scan advances;
  // migration back into buckets must not perturb the order.
  Harness h;
  simkit::Rng rng(7);
  for (int i = 0; i < 3000; ++i) h.push(100.0 + 50.0 * rng.uniform(), -i);
  for (int i = 0; i < 3000; ++i) h.push(1e-3 * rng.uniform(), i);
  h.drain_and_compare();
  EXPECT_EQ(h.cq().overflow_size(), 0u);
}

TEST(CalendarQueue, HugeAndInfiniteTimesStayLast) {
  // Unmappable indices (enormous or non-finite times) must live in the
  // overflow heap forever and pop after everything finite.
  Harness h;
  h.push(std::numeric_limits<double>::infinity(), 1);
  h.push(1e300, 2);
  for (int i = 0; i < 100; ++i) h.push(0.01 * i, 100 + i);
  h.drain_and_compare();
}

TEST(CalendarQueue, InterleavedPushPopWithAdvancingClock) {
  // The simulation access pattern: pop the minimum, then push a new
  // event a bounded delay past it (plus occasional far-future arming),
  // across enough events to cross several rebuilds.
  Harness h;
  simkit::Rng rng(42);
  for (int p = 0; p < 512; ++p) h.push(1e-4 * rng.uniform(), p);
  double now = 0.0;
  for (int step = 0; step < 200000; ++step) {
    now = h.pop_both();
    const double dt =
        rng.uniform() < 0.01 ? 10.0 * rng.uniform() : 1e-4 * rng.uniform();
    h.push(now + dt, step);
  }
  h.drain_and_compare();
  EXPECT_GT(h.cq().resizes(), 0u);
}

TEST(CalendarQueue, RandomizedMillionEventEquivalence) {
  // The tentpole gate: one million mixed operations — near/tied/mid/
  // far-future pushes against monotone pops — replay bit-identically
  // on the calendar queue and the reference heap.
  Harness h;
  simkit::Rng rng(123);
  double now = 0.0;
  std::uint64_t pushes = 0;
  for (int step = 0; step < 1000000; ++step) {
    const bool must_push = h.cq().empty();
    if (must_push || rng.uniform() < 0.55) {
      const double k = rng.uniform();
      double dt;
      if (k < 0.4) {
        dt = 1e-4 * rng.uniform();  // near future: calendar hot path
      } else if (k < 0.7) {
        dt = 0.0;  // tie at now: seq ordering
      } else if (k < 0.9) {
        dt = 1e-2 * rng.uniform();  // beyond one rotation
      } else {
        dt = 10.0 + 100.0 * rng.uniform();  // overflow territory
      }
      h.push(now + dt, static_cast<int>(++pushes & 0x7fffffff));
    } else {
      now = h.pop_both();
    }
  }
  h.drain_and_compare();
  EXPECT_GT(h.cq().resizes(), 0u);  // the mix must have exercised rebuilds
}

TEST(CalendarQueue, BurstDrainCyclesExerciseShrink) {
  // Fan-out shape: bursts of same-instant events fully drained each
  // round.  Crosses the grow/shrink thresholds repeatedly; the rebuild
  // cooldown must keep the queue correct (and sane) throughout.
  Harness h;
  double now = 0.0;
  for (int round = 0; round < 3000; ++round) {
    now += 1e-5;
    for (int i = 0; i < (round % 2 ? 129 : 1); ++i) h.push(now, round);
    const int n = (round % 2 ? 129 : 1);
    for (int i = 0; i < n; ++i) h.pop_both();
  }
  h.drain_and_compare();
}

}  // namespace
}  // namespace simkit
