// Tests for the discrete-event engine: clock semantics, determinism,
// spawn/join, failure propagation.
#include "simkit/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "simkit/task.hpp"

namespace simkit {
namespace {

Task<void> record_at(Engine& eng, Duration dt, std::vector<double>& out,
                     double tag) {
  co_await eng.delay(dt);
  out.push_back(tag);
  out.push_back(eng.now());
}

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0.0);
  EXPECT_TRUE(eng.idle());
}

TEST(Engine, DelayAdvancesClock) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 2.5, log, 1.0));
  eng.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 1.0);
  EXPECT_DOUBLE_EQ(log[1], 2.5);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 3.0, log, 3.0));
  eng.spawn(record_at(eng, 1.0, log, 1.0));
  eng.spawn(record_at(eng, 2.0, log, 2.0));
  eng.run();
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0], 1.0);
  EXPECT_EQ(log[2], 2.0);
  EXPECT_EQ(log[4], 3.0);
}

TEST(Engine, SimultaneousEventsRunInScheduleOrder) {
  Engine eng;
  std::vector<double> log;
  for (int i = 0; i < 8; ++i) {
    eng.spawn(record_at(eng, 1.0, log, static_cast<double>(i)));
  }
  eng.run();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(2 * i)], static_cast<double>(i));
  }
}

TEST(Engine, SequentialDelaysAccumulate) {
  Engine eng;
  double finish = -1.0;
  eng.spawn([](Engine& e, double& out) -> Task<void> {
    co_await e.delay(1.0);
    co_await e.delay(2.0);
    co_await e.delay(3.0);
    out = e.now();
  }(eng, finish));
  eng.run();
  EXPECT_DOUBLE_EQ(finish, 6.0);
}

TEST(Engine, JoinWaitsForCompletion) {
  Engine eng;
  std::vector<double> order;
  auto child = eng.spawn(record_at(eng, 5.0, order, 100.0), "child");
  eng.spawn([](Engine& e, ProcHandle h, std::vector<double>& out) -> Task<void> {
    co_await h.join();
    out.push_back(e.now());
  }(eng, child, order));
  eng.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 100.0);
  EXPECT_DOUBLE_EQ(order[2], 5.0);  // joiner resumed at child finish time
  EXPECT_TRUE(child.done());
  EXPECT_DOUBLE_EQ(child.finish_time(), 5.0);
}

TEST(Engine, JoinOnAlreadyFinishedProcessIsImmediate) {
  Engine eng;
  std::vector<double> log;
  auto child = eng.spawn(record_at(eng, 1.0, log, 0.0));
  double join_time = -1.0;
  eng.spawn([](Engine& e, ProcHandle h, double& out) -> Task<void> {
    co_await e.delay(10.0);
    co_await h.join();
    out = e.now();
  }(eng, child, join_time));
  eng.run();
  EXPECT_DOUBLE_EQ(join_time, 10.0);
}

TEST(Engine, UnjoinedFailureSurfacesFromRun) {
  Engine eng;
  eng.spawn([](Engine& e) -> Task<void> {
    co_await e.delay(1.0);
    throw std::runtime_error("boom");
  }(eng), "bomber");
  EXPECT_THROW(eng.run(), UnhandledProcessError);
}

TEST(Engine, JoinedFailureRethrowsInJoiner) {
  Engine eng;
  auto bad = eng.spawn([](Engine& e) -> Task<void> {
    co_await e.delay(1.0);
    throw std::runtime_error("boom");
  }(eng), "bomber");
  bool caught = false;
  eng.spawn([](Engine&, ProcHandle h, bool& c) -> Task<void> {
    try {
      co_await h.join();
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(eng, bad, caught));
  eng.run();  // must not throw: the failure was consumed by the joiner
  EXPECT_TRUE(caught);
  EXPECT_TRUE(bad.failed());
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 1.0, log, 1.0));
  eng.spawn(record_at(eng, 10.0, log, 10.0));
  const bool drained = eng.run_until(5.0);
  EXPECT_FALSE(drained);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
  eng.run();
  EXPECT_EQ(log.size(), 4u);
  EXPECT_DOUBLE_EQ(eng.now(), 10.0);
}

TEST(Engine, ScheduleInThePastClampsOrAsserts) {
  // A past-time schedule is a caller bug (it reorders against
  // same-instant events): debug builds assert, release builds clamp to
  // now and count the clamp so benchmarks can prove they hit zero.
  auto run_past = [] {
    Engine eng;
    double observed = -1.0;
    eng.spawn([](Engine& e, double& out) -> Task<void> {
      co_await e.delay(4.0);
      co_await e.delay(-3.0);  // negative delay must not rewind the clock
      out = e.now();
    }(eng, observed));
    eng.run();
    return std::pair<double, std::uint64_t>{observed,
                                            eng.clamped_schedules()};
  };
#ifdef NDEBUG
  const auto [observed, clamped] = run_past();
  EXPECT_DOUBLE_EQ(observed, 4.0);
  EXPECT_EQ(clamped, 1u);
#else
  EXPECT_DEATH(run_past(), "past-time schedule");
#endif
}

TEST(Engine, DefaultConstructedHandleHasEmptyName) {
  // Regression: name() used to dereference a null state pointer.
  ProcHandle h;
  EXPECT_EQ(h.name(), "");
  EXPECT_FALSE(h.done());
  ProcHandle copy = h;  // copying a null handle must also be safe
  EXPECT_EQ(copy.name(), "");
}

TEST(Engine, SpawnedHandleReportsName) {
  Engine eng;
  ProcHandle h = eng.spawn([](Engine& e) -> Task<void> {
    co_await e.delay(1.0);
  }(eng), "worker.7");
  EXPECT_EQ(h.name(), "worker.7");
  eng.run();
  EXPECT_EQ(h.name(), "worker.7");  // survives process completion
}

TEST(Engine, CountsProcessedEvents) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 1.0, log, 0.0));
  eng.run();
  EXPECT_GE(eng.events_processed(), 2u);  // spawn start + delay resume
}

TEST(Engine, ManyProcessesStressDeterminism) {
  auto run_once = [] {
    Engine eng;
    std::vector<double> log;
    for (int i = 0; i < 500; ++i) {
      eng.spawn(record_at(eng, (i * 7 % 13) * 0.1, log,
                          static_cast<double>(i)));
    }
    eng.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace simkit
