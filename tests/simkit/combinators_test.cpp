// Tests for when_all / both.
#include "simkit/combinators.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace simkit {
namespace {

Task<void> sleeper(Engine& eng, double dt, std::vector<double>* log) {
  co_await eng.delay(dt);
  if (log) log->push_back(eng.now());
}

TEST(WhenAll, WaitsForSlowest) {
  Engine eng;
  double done_at = -1.0;
  eng.spawn([](Engine& e, double& out) -> Task<void> {
    std::vector<Task<void>> tasks;
    tasks.push_back(sleeper(e, 1.0, nullptr));
    tasks.push_back(sleeper(e, 5.0, nullptr));
    tasks.push_back(sleeper(e, 3.0, nullptr));
    co_await when_all(e, std::move(tasks));
    out = e.now();
  }(eng, done_at));
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST(WhenAll, TasksRunConcurrently) {
  Engine eng;
  std::vector<double> finishes;
  eng.spawn([](Engine& e, std::vector<double>& log) -> Task<void> {
    std::vector<Task<void>> tasks;
    for (int i = 0; i < 4; ++i) tasks.push_back(sleeper(e, 2.0, &log));
    co_await when_all(e, std::move(tasks));
  }(eng, finishes));
  eng.run();
  ASSERT_EQ(finishes.size(), 4u);
  for (double t : finishes) EXPECT_DOUBLE_EQ(t, 2.0);  // parallel, not 2,4,6,8
}

TEST(WhenAll, EmptyListCompletesImmediately) {
  Engine eng;
  double done_at = -1.0;
  eng.spawn([](Engine& e, double& out) -> Task<void> {
    co_await when_all(e, {});
    out = e.now();
  }(eng, done_at));
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(WhenAll, PropagatesFirstErrorAfterAllFinish) {
  Engine eng;
  bool caught = false;
  double caught_at = -1.0;
  auto failing = [](Engine& e, double dt, const char* what) -> Task<void> {
    co_await e.delay(dt);
    throw std::runtime_error(what);
  };
  eng.spawn([](Engine& e, auto failing_fn, bool& c, double& at)
                -> Task<void> {
    std::vector<Task<void>> tasks;
    tasks.push_back(failing_fn(e, 1.0, "first"));
    tasks.push_back(sleeper(e, 4.0, nullptr));  // must still be awaited
    try {
      co_await when_all(e, std::move(tasks));
    } catch (const std::runtime_error& err) {
      c = std::string(err.what()) == "first";
      at = e.now();
    }
  }(eng, failing, caught, caught_at));
  eng.run();
  EXPECT_TRUE(caught);
  EXPECT_DOUBLE_EQ(caught_at, 4.0);  // rethrown only after all completed
}

TEST(Both, RunsPairConcurrently) {
  Engine eng;
  double done_at = -1.0;
  eng.spawn([](Engine& e, double& out) -> Task<void> {
    co_await both(e, sleeper(e, 2.0, nullptr), sleeper(e, 3.0, nullptr));
    out = e.now();
  }(eng, done_at));
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 3.0);
}

}  // namespace
}  // namespace simkit
