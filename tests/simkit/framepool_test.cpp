// Tests for the coroutine frame pool: size-class recycling, stats,
// and the large-allocation fall-through.
#include "simkit/framepool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "simkit/engine.hpp"
#include "simkit/task.hpp"

namespace simkit {
namespace {

using detail::FramePool;

TEST(FramePool, RecyclesSameSizeClass) {
  FramePool::drain();
  const auto before = FramePool::stats();
  void* a = FramePool::allocate(128);
  std::memset(a, 0xAB, 128);
  FramePool::deallocate(a, 128);
  void* b = FramePool::allocate(128);
  EXPECT_EQ(a, b);  // same class: the parked block comes straight back
  FramePool::deallocate(b, 128);
  const auto after = FramePool::stats();
  EXPECT_EQ(after.allocs, before.allocs + 2);
  EXPECT_EQ(after.deallocs, before.deallocs + 2);
  EXPECT_EQ(after.reuses, before.reuses + 1);
  FramePool::drain();
  EXPECT_EQ(FramePool::stats().retained, 0u);
}

TEST(FramePool, OversizedAllocationsFallThrough) {
  const std::size_t big = FramePool::kGranularity * FramePool::kClasses + 1;
  const auto before = FramePool::stats();
  void* p = FramePool::allocate(big);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xCD, big);
  FramePool::deallocate(p, big);
  const auto after = FramePool::stats();
  EXPECT_EQ(after.reuses, before.reuses);  // never pooled, never reused
  EXPECT_EQ(after.retained, before.retained);
}

TEST(FramePool, CoroutineFramesActuallyPool) {
  // Spawn/await churn must hit the reuse path: after a warm-up frame
  // is freed, subsequent same-shape frames recycle it.
  FramePool::drain();
  const auto before = FramePool::stats();
  Engine eng;
  // Sequential spawn/join churn: each child frame is freed before the
  // next is allocated, so later children must recycle earlier frames.
  eng.spawn([](Engine& e) -> Task<void> {
    for (int i = 0; i < 64; ++i) {
      auto h = e.spawn([](Engine& e2) -> Task<void> {
        co_await e2.delay(1e-6);
      }(e));
      co_await h.join();
    }
  }(eng));
  eng.run();
  const auto after = FramePool::stats();
  EXPECT_GT(after.allocs, before.allocs);
  EXPECT_GT(after.reuses, before.reuses);
}

}  // namespace
}  // namespace simkit
