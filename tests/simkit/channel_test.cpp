// Tests for Channel<T>: FIFO delivery, blocking recv, request/reply.
#include "simkit/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simkit/engine.hpp"
#include "simkit/trigger.hpp"

namespace simkit {
namespace {

TEST(Channel, SendThenRecvIsImmediate) {
  Engine eng;
  Channel<int> ch(eng);
  int got = 0;
  ch.send(7);
  eng.spawn([](Channel<int>& ch, int& out) -> Task<void> {
    out = co_await ch.recv();
  }(ch, got));
  eng.run();
  EXPECT_EQ(got, 7);
}

TEST(Channel, RecvBlocksUntilSend) {
  Engine eng;
  Channel<int> ch(eng);
  double recv_time = -1.0;
  int got = 0;
  eng.spawn([](Engine& e, Channel<int>& ch, int& out, double& t)
                -> Task<void> {
    out = co_await ch.recv();
    t = e.now();
  }(eng, ch, got, recv_time));
  eng.spawn([](Engine& e, Channel<int>& ch) -> Task<void> {
    co_await e.delay(3.0);
    ch.send(11);
  }(eng, ch));
  eng.run();
  EXPECT_EQ(got, 11);
  EXPECT_DOUBLE_EQ(recv_time, 3.0);
}

TEST(Channel, PreservesFifoOrder) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> got;
  eng.spawn([](Channel<int>& ch, std::vector<int>& out) -> Task<void> {
    for (int i = 0; i < 5; ++i) out.push_back(co_await ch.recv());
  }(ch, got));
  eng.spawn([](Engine& e, Channel<int>& ch) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await e.delay(1.0);
      ch.send(i);
    }
  }(eng, ch));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, MultipleReceiversServedFifo) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  for (int r = 0; r < 3; ++r) {
    eng.spawn([](Engine& e, Channel<int>& ch,
                 std::vector<std::pair<int, int>>& out, int id)
                  -> Task<void> {
      co_await e.delay(static_cast<double>(id) * 0.1);  // queue in id order
      int v = co_await ch.recv();
      out.emplace_back(id, v);
    }(eng, ch, got, r));
  }
  eng.spawn([](Engine& e, Channel<int>& ch) -> Task<void> {
    co_await e.delay(1.0);
    ch.send(100);
    ch.send(200);
    ch.send(300);
  }(eng, ch));
  eng.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 300}));
}

TEST(Channel, TryRecvDoesNotBlock) {
  Engine eng;
  Channel<std::string> ch(eng);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send("x");
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "x");
}

TEST(Channel, RequestReplyPattern) {
  Engine eng;
  struct Request {
    int payload;
    Trigger* done;
    int* reply;
  };
  Channel<Request> server_q(eng);
  // Server: doubles the payload after 1s of service.
  eng.spawn([](Engine& e, Channel<Request>& q) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      Request req = co_await q.recv();
      co_await e.delay(1.0);
      *req.reply = req.payload * 2;
      req.done->fire(e);
    }
  }(eng, server_q));
  std::vector<int> replies(3, 0);
  std::vector<double> times(3, 0.0);
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Engine& e, Channel<Request>& q, int x, int& reply,
                 double& t) -> Task<void> {
      Trigger done;
      q.send(Request{x, &done, &reply});
      co_await done.wait();
      t = e.now();
    }(eng, server_q, i + 1, replies[static_cast<std::size_t>(i)],
      times[static_cast<std::size_t>(i)]));
  }
  eng.run();
  EXPECT_EQ(replies, (std::vector<int>{2, 4, 6}));
  // Single server serializes: completions at t=1,2,3.
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(times[2], 3.0);
}

}  // namespace
}  // namespace simkit
