// Tests for Resource: FIFO granting, conservation, contention timing.
#include "simkit/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkit/engine.hpp"

namespace simkit {
namespace {

TEST(Resource, ImmediateAcquireWhenAvailable) {
  Engine eng;
  Resource r(eng, 2);
  double t_acq = -1.0;
  eng.spawn([](Engine& e, Resource& r, double& out) -> Task<void> {
    co_await r.acquire();
    out = e.now();
    r.release();
  }(eng, r, t_acq));
  eng.run();
  EXPECT_DOUBLE_EQ(t_acq, 0.0);
  EXPECT_EQ(r.available(), 2u);
}

TEST(Resource, ContentionSerializesHolders) {
  Engine eng;
  Resource r(eng, 1);
  std::vector<double> acquire_times;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Engine& e, Resource& r, std::vector<double>& out)
                  -> Task<void> {
      co_await r.acquire();
      out.push_back(e.now());
      co_await e.delay(2.0);
      r.release();
    }(eng, r, acquire_times));
  }
  eng.run();
  ASSERT_EQ(acquire_times.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(acquire_times[static_cast<std::size_t>(i)], 2.0 * i);
  }
}

TEST(Resource, FifoOrderAmongWaiters) {
  Engine eng;
  Resource r(eng, 1);
  std::vector<int> order;
  // Occupy the resource so all later arrivals queue.
  eng.spawn([](Engine& e, Resource& r) -> Task<void> {
    co_await r.acquire();
    co_await e.delay(10.0);
    r.release();
  }(eng, r));
  for (int i = 0; i < 5; ++i) {
    eng.spawn([](Engine& e, Resource& r, std::vector<int>& out,
                 int id) -> Task<void> {
      co_await e.delay(static_cast<double>(id));  // arrive in id order
      co_await r.acquire();
      out.push_back(id);
      r.release();
    }(eng, r, order, i));
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Resource, LargeRequestBlocksLaterSmallOnes) {
  Engine eng;
  Resource r(eng, 4);
  std::vector<int> order;
  eng.spawn([](Engine& e, Resource& r, std::vector<int>& out) -> Task<void> {
    co_await r.acquire(3);  // leaves 1 unit
    co_await e.delay(5.0);
    r.release(3);
    out.push_back(0);
  }(eng, r, order));
  eng.spawn([](Engine& e, Resource& r, std::vector<int>& out) -> Task<void> {
    co_await e.delay(1.0);
    co_await r.acquire(2);  // must wait: only 1 available
    out.push_back(1);
    r.release(2);
  }(eng, r, order));
  eng.spawn([](Engine& e, Resource& r, std::vector<int>& out) -> Task<void> {
    co_await e.delay(2.0);
    co_await r.acquire(1);  // fits, but FIFO: waiter #1 is ahead
    out.push_back(2);
    r.release(1);
  }(eng, r, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, UseForHoldsExactDuration) {
  Engine eng;
  Resource r(eng, 1);
  double t1 = -1.0;
  eng.spawn([](Engine& e, Resource& r, double& out) -> Task<void> {
    co_await r.use_for(3.0);
    co_await r.use_for(4.0);
    out = e.now();
  }(eng, r, t1));
  eng.run();
  EXPECT_DOUBLE_EQ(t1, 7.0);
  EXPECT_EQ(r.available(), 1u);
}

TEST(Resource, ConservationUnderHeavyLoad) {
  Engine eng;
  Resource r(eng, 3);
  int max_in_use = 0;
  for (int i = 0; i < 50; ++i) {
    eng.spawn([](Engine& e, Resource& r, int& mx, int id) -> Task<void> {
      co_await e.delay((id % 7) * 0.25);
      co_await r.acquire();
      mx = std::max(mx, static_cast<int>(r.in_use()));
      co_await e.delay(1.0);
      r.release();
    }(eng, r, max_in_use, i));
  }
  eng.run();
  EXPECT_LE(max_in_use, 3);
  EXPECT_EQ(r.available(), 3u);
  EXPECT_EQ(r.queue_length(), 0u);
}

TEST(ScopedLease, ReleasesOnScopeExitEvenOnException) {
  Engine eng;
  Resource r(eng, 1);
  auto bad = eng.spawn([](Engine& e, Resource& r) -> Task<void> {
    ScopedLease lease(r);
    co_await lease.acquire();
    co_await e.delay(1.0);
    throw std::runtime_error("died holding lease");
  }(eng, r), "holder");
  bool late_acquired = false;
  eng.spawn([](Engine& e, Resource& r, ProcHandle bad, bool& ok)
                -> Task<void> {
    try {
      co_await bad.join();
    } catch (...) {
    }
    co_await r.acquire();
    ok = true;
    r.release();
    (void)e;
  }(eng, r, bad, late_acquired));
  eng.run();
  EXPECT_TRUE(late_acquired);
  EXPECT_EQ(r.available(), 1u);
}

}  // namespace
}  // namespace simkit
