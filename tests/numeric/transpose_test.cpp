// Tests for transpose kernels.
#include "numeric/transpose.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace numeric {
namespace {

TEST(Transpose, RectangularCorrectness) {
  const std::size_t rows = 3, cols = 5;
  std::vector<int> in(rows * cols);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out(rows * cols, -1);
  transpose<int>(in, out, rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(out[c * rows + r], in[r * cols + c]);
    }
  }
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  const std::size_t rows = 17, cols = 33;  // non-multiples of the block
  std::vector<double> in(rows * cols);
  std::iota(in.begin(), in.end(), 0.0);
  std::vector<double> mid(rows * cols), back(rows * cols);
  transpose<double>(in, mid, rows, cols, 8);
  transpose<double>(mid, back, cols, rows, 8);
  EXPECT_EQ(back, in);
}

TEST(Transpose, BlockSizeDoesNotChangeResult) {
  const std::size_t rows = 20, cols = 12;
  std::vector<int> in(rows * cols);
  std::iota(in.begin(), in.end(), 7);
  std::vector<int> a(rows * cols), b(rows * cols);
  transpose<int>(in, a, rows, cols, 1);
  transpose<int>(in, b, rows, cols, 64);
  EXPECT_EQ(a, b);
}

TEST(TransposeSquare, InPlace) {
  const std::size_t n = 9;
  std::vector<int> m(n * n);
  std::iota(m.begin(), m.end(), 0);
  auto copy = m;
  transpose_square<int>(m, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      EXPECT_EQ(m[r * n + c], copy[c * n + r]);
    }
  }
  transpose_square<int>(m, n);
  EXPECT_EQ(m, copy);
}

}  // namespace
}  // namespace numeric
