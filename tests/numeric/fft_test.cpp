// Tests for the FFT kernels against the O(N^2) DFT and analytic cases.
#include "numeric/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "simkit/rng.hpp"

namespace numeric {
namespace {

double max_err(std::span<const Complex> a, std::span<const Complex> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  simkit::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> v(8, Complex(0, 0));
  v[0] = Complex(1, 0);
  fft(v);
  for (const auto& x : v) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, PureToneConcentratesInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> v(n);
  const std::size_t k = 5;
  for (std::size_t t = 0; t < n; ++t) {
    const double a = 2.0 * std::numbers::pi * static_cast<double>(k * t) /
                     static_cast<double>(n);
    v[t] = Complex(std::cos(a), std::sin(a));
  }
  fft(v);
  EXPECT_NEAR(std::abs(v[k]), static_cast<double>(n), 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != k) {
      EXPECT_LT(std::abs(v[i]), 1e-9);
    }
  }
}

class FftSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSweep, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  auto v = random_signal(n, 17 + n);
  auto ref = dft_reference(v);
  fft(v);
  EXPECT_LT(max_err(v, ref), 1e-8 * static_cast<double>(n));
}

TEST_P(FftSweep, RoundTripIdentity) {
  const std::size_t n = GetParam();
  auto v = random_signal(n, 99 + n);
  const auto orig = v;
  fft(v);
  ifft(v);
  EXPECT_LT(max_err(v, orig), 1e-10 * static_cast<double>(n));
}

TEST_P(FftSweep, Linearity) {
  const std::size_t n = GetParam();
  auto a = random_signal(n, 1), b = random_signal(n, 2);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + b[i];
  fft(a);
  fft(b);
  fft(std::span<Complex>(sum));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(sum[i] - (2.0 * a[i] + b[i])), 1e-9);
  }
}

TEST_P(FftSweep, ParsevalEnergyConservation) {
  const std::size_t n = GetParam();
  auto v = random_signal(n, 7);
  double time_energy = 0.0;
  for (const auto& x : v) time_energy += std::norm(x);
  fft(v);
  double freq_energy = 0.0;
  for (const auto& x : v) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-9 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSweep,
                         ::testing::Values<std::size_t>(1, 2, 4, 8, 32, 128,
                                                        512, 1024));

TEST(Fft2d, MatchesSeparableReference) {
  const std::size_t rows = 8, cols = 16;
  auto m = random_signal(rows * cols, 5);
  auto ref = m;
  // Reference: DFT rows then DFT cols.
  for (std::size_t r = 0; r < rows; ++r) {
    auto row = dft_reference(
        std::span<const Complex>(ref).subspan(r * cols, cols));
    std::copy(row.begin(), row.end(), ref.begin() + r * cols);
  }
  for (std::size_t c = 0; c < cols; ++c) {
    std::vector<Complex> col(rows);
    for (std::size_t r = 0; r < rows; ++r) col[r] = ref[r * cols + c];
    auto out = dft_reference(col);
    for (std::size_t r = 0; r < rows; ++r) ref[r * cols + c] = out[r];
  }
  fft_2d(m, rows, cols);
  EXPECT_LT(max_err(m, ref), 1e-8);
}

TEST(Fft2d, RoundTrip) {
  const std::size_t rows = 16, cols = 16;
  auto m = random_signal(rows * cols, 21);
  const auto orig = m;
  fft_2d(m, rows, cols, false);
  fft_2d(m, rows, cols, true);
  const double scale = static_cast<double>(rows * cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LT(std::abs(m[i] / scale - orig[i]), 1e-10);
  }
}

TEST(FftFlops, GrowsNLogN) {
  EXPECT_DOUBLE_EQ(fft_flops(1), 0.0);
  EXPECT_DOUBLE_EQ(fft_flops(1024), 5.0 * 1024 * 10);
}

TEST(IsPowerOfTwo, Basics) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(4096));
  EXPECT_FALSE(is_power_of_two(48));
}

}  // namespace
}  // namespace numeric
