// Tests for nonblocking sends.
#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.hpp"
#include "mprt/comm.hpp"
#include "simkit/engine.hpp"

namespace mprt {
namespace {

TEST(Isend, ReturnsBeforeTransferCompletes) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
  double issue_time = -1.0, wait_time = -1.0;
  Cluster::execute(machine, 2, [&](Comm& c) -> simkit::Task<void> {
    if (c.rank() == 0) {
      auto req = c.isend(1, 0, 10'000'000);  // ~0.14 s on the wire
      issue_time = c.engine().now();
      co_await req.join();
      wait_time = c.engine().now();
    } else {
      (void)co_await c.recv(0, 0);
    }
  });
  EXPECT_LT(issue_time, 1e-9);        // issue is immediate
  EXPECT_GT(wait_time, 0.1);          // completion pays the transfer
}

TEST(Isend, BufferMayBeReusedImmediately) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
  std::vector<std::byte> received[2];
  Cluster::execute(machine, 2, [&](Comm& c) -> simkit::Task<void> {
    if (c.rank() == 0) {
      std::vector<std::byte> buf(64, std::byte{1});
      auto r1 = c.isend(1, 0, buf.size(), buf);
      // Clobber the buffer before the transfer has even started.
      std::fill(buf.begin(), buf.end(), std::byte{2});
      auto r2 = c.isend(1, 0, buf.size(), buf);
      std::fill(buf.begin(), buf.end(), std::byte{9});
      std::vector<simkit::ProcHandle> reqs{r1, r2};
      co_await waitall(std::move(reqs));
    } else {
      received[0] = (co_await c.recv(0, 0)).payload;
      received[1] = (co_await c.recv(0, 0)).payload;
    }
  });
  ASSERT_EQ(received[0].size(), 64u);
  EXPECT_EQ(received[0][0], std::byte{1});  // captured at isend time
  EXPECT_EQ(received[1][0], std::byte{2});
}

TEST(Isend, OverlapsMultipleTransfers) {
  // Four isends to distinct destinations overlap; total time is far less
  // than four serial sends.
  auto run = [](bool nonblocking) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(8, 2));
    return Cluster::execute(machine, 5, [&](Comm& c) -> simkit::Task<void> {
      if (c.rank() == 0) {
        if (nonblocking) {
          std::vector<simkit::ProcHandle> reqs;
          for (int d = 1; d <= 4; ++d) {
            reqs.push_back(c.isend(d, 0, 5'000'000));
          }
          co_await waitall(std::move(reqs));
        } else {
          for (int d = 1; d <= 4; ++d) co_await c.send(d, 0, 5'000'000);
        }
      } else {
        (void)co_await c.recv(0, 0);
      }
    });
  };
  const double blocking = run(false);
  const double overlapped = run(true);
  // The sender NIC still serializes its side, but receiver-side
  // serialization and latency overlap: a clear win, not 4x.
  EXPECT_LT(overlapped, blocking * 0.85);
}

TEST(Waitall, EmptySetCompletesImmediately) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(2, 2));
  double t = -1.0;
  Cluster::execute(machine, 1, [&](Comm& c) -> simkit::Task<void> {
    std::vector<simkit::ProcHandle> none;
    co_await waitall(std::move(none));
    t = c.engine().now();
  });
  EXPECT_DOUBLE_EQ(t, 0.0);
}

}  // namespace
}  // namespace mprt
