// Tests for barrier / bcast / gatherv / alltoallv / allreduce, including
// parameterized sweeps over non-power-of-two rank counts.
#include "mprt/collectives.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "hw/machine.hpp"
#include "simkit/engine.hpp"

namespace mprt {
namespace {

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BarrierSynchronizesAllRanks) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  std::vector<double> after(static_cast<std::size_t>(p), -1.0);
  double max_before = 0.0;
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    // Ranks arrive at wildly different times.
    co_await c.engine().delay(0.01 * c.rank());
    max_before = std::max(max_before, c.engine().now());
    co_await barrier(c);
    after[static_cast<std::size_t>(c.rank())] = c.engine().now();
  });
  for (double t : after) EXPECT_GE(t, max_before);
}

TEST_P(CollectiveSweep, BcastDeliversRootPayload) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  const Rank root = p > 2 ? 2 : 0;
  std::vector<std::vector<std::byte>> got(static_cast<std::size_t>(p));
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    std::vector<std::byte> buf(16);
    if (c.rank() == root) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<std::byte>(0xA0 + i);
      }
    }
    co_await bcast(c, root, buf.size(), buf);
    got[static_cast<std::size_t>(c.rank())] = buf;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)][0], std::byte{0xA0})
        << "rank " << r;
    EXPECT_EQ(got[static_cast<std::size_t>(r)][15], std::byte{0xAF});
  }
}

TEST_P(CollectiveSweep, GathervCollectsAllBlocks) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  std::vector<Message> at_root;
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    std::vector<std::byte> mine(static_cast<std::size_t>(c.rank()) + 1,
                                static_cast<std::byte>(c.rank()));
    auto msgs = co_await gatherv(c, 0, mine.size(), mine);
    if (c.rank() == 0) at_root = std::move(msgs);
  });
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto& m = at_root[static_cast<std::size_t>(r)];
    EXPECT_EQ(m.src, r);
    EXPECT_EQ(m.bytes, static_cast<std::uint64_t>(r) + 1);
    EXPECT_EQ(m.payload.size(), static_cast<std::size_t>(r) + 1);
    if (!m.payload.empty()) {
      EXPECT_EQ(m.payload[0], static_cast<std::byte>(r));
    }
  }
}

TEST_P(CollectiveSweep, AlltoallvExchangesPersonalizedData) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  std::vector<bool> ok(static_cast<std::size_t>(p), false);
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    const int r = c.rank();
    // Rank r sends byte value (r*16+d) to destination d, length r+d+1.
    std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> sizes(static_cast<std::size_t>(p));
    std::vector<std::span<const std::byte>> views(
        static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      auto& b = bufs[static_cast<std::size_t>(d)];
      b.assign(static_cast<std::size_t>(r + d + 1),
               static_cast<std::byte>(r * 16 + d));
      sizes[static_cast<std::size_t>(d)] = b.size();
      views[static_cast<std::size_t>(d)] = b;
    }
    auto msgs = co_await alltoallv(c, sizes, views);
    bool all_good = msgs.size() == static_cast<std::size_t>(p);
    for (int s = 0; s < p && all_good; ++s) {
      const auto& m = msgs[static_cast<std::size_t>(s)];
      all_good = m.src == s &&
                 m.payload.size() == static_cast<std::size_t>(s + r + 1) &&
                 m.payload[0] == static_cast<std::byte>(s * 16 + r);
    }
    ok[static_cast<std::size_t>(r)] = all_good;
  });
  for (int r = 0; r < p; ++r) EXPECT_TRUE(ok[static_cast<std::size_t>(r)]);
}

TEST_P(CollectiveSweep, AllreduceSumMatchesClosedForm) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    std::vector<double> v{static_cast<double>(c.rank()),
                          1.0, static_cast<double>(c.rank() * c.rank())};
    co_await allreduce(c, v, ReduceOp::kSum);
    results[static_cast<std::size_t>(c.rank())] = v;
  });
  const double n = p;
  const double sum_r = n * (n - 1) / 2.0;
  const double sum_r2 = (n - 1) * n * (2 * n - 1) / 6.0;
  for (int r = 0; r < p; ++r) {
    const auto& v = results[static_cast<std::size_t>(r)];
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], sum_r);
    EXPECT_DOUBLE_EQ(v[1], n);
    EXPECT_DOUBLE_EQ(v[2], sum_r2);
  }
}

TEST_P(CollectiveSweep, AllreduceMinMax) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  std::vector<double> mins, maxs;
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    std::vector<double> lo{static_cast<double>(c.rank())};
    std::vector<double> hi{static_cast<double>(c.rank())};
    co_await allreduce(c, lo, ReduceOp::kMin);
    co_await allreduce(c, hi, ReduceOp::kMax);
    if (c.rank() == 0) {
      mins = lo;
      maxs = hi;
    }
  });
  EXPECT_DOUBLE_EQ(mins[0], 0.0);
  EXPECT_DOUBLE_EQ(maxs[0], static_cast<double>(p - 1));
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(Collectives, BarrierCostGrowsLogarithmically) {
  auto barrier_time = [](int p) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(
                                 static_cast<std::size_t>(p), 2));
    return Cluster::execute(machine, p, [](Comm& c) -> simkit::Task<void> {
      co_await barrier(c);
    });
  };
  const double t4 = barrier_time(4);
  const double t32 = barrier_time(32);
  EXPECT_GT(t32, t4);
  EXPECT_LT(t32, 8.0 * t4);  // log growth, not linear
}

TEST(Collectives, ConsecutiveCollectivesDoNotCrossTalk) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
  std::vector<double> out(4, 0.0);
  Cluster::execute(machine, 4, [&](Comm& c) -> simkit::Task<void> {
    for (int round = 0; round < 5; ++round) {
      std::vector<double> v{1.0};
      co_await allreduce(c, v, ReduceOp::kSum);
      out[static_cast<std::size_t>(c.rank())] += v[0];
      co_await barrier(c);
    }
  });
  for (double v : out) EXPECT_DOUBLE_EQ(v, 20.0);  // 5 rounds x sum 4
}

}  // namespace
}  // namespace mprt
