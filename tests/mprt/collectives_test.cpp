// Tests for barrier / bcast / gatherv / alltoallv / allreduce, including
// parameterized sweeps over non-power-of-two rank counts.
#include "mprt/collectives.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <numeric>
#include <vector>

#include "hw/machine.hpp"
#include "metrics/metrics.hpp"
#include "simkit/engine.hpp"

namespace mprt {
namespace {

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BarrierSynchronizesAllRanks) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  std::vector<double> after(static_cast<std::size_t>(p), -1.0);
  double max_before = 0.0;
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    // Ranks arrive at wildly different times.
    co_await c.engine().delay(0.01 * c.rank());
    max_before = std::max(max_before, c.engine().now());
    co_await barrier(c);
    after[static_cast<std::size_t>(c.rank())] = c.engine().now();
  });
  for (double t : after) EXPECT_GE(t, max_before);
}

TEST_P(CollectiveSweep, BcastDeliversRootPayload) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  const Rank root = p > 2 ? 2 : 0;
  std::vector<std::vector<std::byte>> got(static_cast<std::size_t>(p));
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    std::vector<std::byte> buf(16);
    if (c.rank() == root) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<std::byte>(0xA0 + i);
      }
    }
    co_await bcast(c, root, buf.size(), buf);
    got[static_cast<std::size_t>(c.rank())] = buf;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)][0], std::byte{0xA0})
        << "rank " << r;
    EXPECT_EQ(got[static_cast<std::size_t>(r)][15], std::byte{0xAF});
  }
}

TEST_P(CollectiveSweep, GathervCollectsAllBlocks) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  std::vector<Message> at_root;
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    std::vector<std::byte> mine(static_cast<std::size_t>(c.rank()) + 1,
                                static_cast<std::byte>(c.rank()));
    auto msgs = co_await gatherv(c, 0, mine.size(), mine);
    if (c.rank() == 0) at_root = std::move(msgs);
  });
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto& m = at_root[static_cast<std::size_t>(r)];
    EXPECT_EQ(m.src, r);
    EXPECT_EQ(m.bytes, static_cast<std::uint64_t>(r) + 1);
    EXPECT_EQ(m.payload.size(), static_cast<std::size_t>(r) + 1);
    if (!m.payload.empty()) {
      EXPECT_EQ(m.payload[0], static_cast<std::byte>(r));
    }
  }
}

TEST_P(CollectiveSweep, AlltoallvExchangesPersonalizedData) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  std::vector<bool> ok(static_cast<std::size_t>(p), false);
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    const int r = c.rank();
    // Rank r sends byte value (r*16+d) to destination d, length r+d+1.
    std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> sizes(static_cast<std::size_t>(p));
    std::vector<std::span<const std::byte>> views(
        static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      auto& b = bufs[static_cast<std::size_t>(d)];
      b.assign(static_cast<std::size_t>(r + d + 1),
               static_cast<std::byte>(r * 16 + d));
      sizes[static_cast<std::size_t>(d)] = b.size();
      views[static_cast<std::size_t>(d)] = b;
    }
    auto msgs = co_await alltoallv(c, sizes, views);
    bool all_good = msgs.size() == static_cast<std::size_t>(p);
    for (int s = 0; s < p && all_good; ++s) {
      const auto& m = msgs[static_cast<std::size_t>(s)];
      all_good = m.src == s &&
                 m.payload.size() == static_cast<std::size_t>(s + r + 1) &&
                 m.payload[0] == static_cast<std::byte>(s * 16 + r);
    }
    ok[static_cast<std::size_t>(r)] = all_good;
  });
  for (int r = 0; r < p; ++r) EXPECT_TRUE(ok[static_cast<std::size_t>(r)]);
}

TEST_P(CollectiveSweep, AllreduceSumMatchesClosedForm) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    std::vector<double> v{static_cast<double>(c.rank()),
                          1.0, static_cast<double>(c.rank() * c.rank())};
    co_await allreduce(c, v, ReduceOp::kSum);
    results[static_cast<std::size_t>(c.rank())] = v;
  });
  const double n = p;
  const double sum_r = n * (n - 1) / 2.0;
  const double sum_r2 = (n - 1) * n * (2 * n - 1) / 6.0;
  for (int r = 0; r < p; ++r) {
    const auto& v = results[static_cast<std::size_t>(r)];
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], sum_r);
    EXPECT_DOUBLE_EQ(v[1], n);
    EXPECT_DOUBLE_EQ(v[2], sum_r2);
  }
}

TEST_P(CollectiveSweep, AllreduceMinMax) {
  const int p = GetParam();
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  std::vector<double> mins, maxs;
  Cluster::execute(machine, p, [&](Comm& c) -> simkit::Task<void> {
    std::vector<double> lo{static_cast<double>(c.rank())};
    std::vector<double> hi{static_cast<double>(c.rank())};
    co_await allreduce(c, lo, ReduceOp::kMin);
    co_await allreduce(c, hi, ReduceOp::kMax);
    if (c.rank() == 0) {
      mins = lo;
      maxs = hi;
    }
  });
  EXPECT_DOUBLE_EQ(mins[0], 0.0);
  EXPECT_DOUBLE_EQ(maxs[0], static_cast<double>(p - 1));
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(Collectives, BarrierCostGrowsLogarithmically) {
  auto barrier_time = [](int p) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(
                                 static_cast<std::size_t>(p), 2));
    return Cluster::execute(machine, p, [](Comm& c) -> simkit::Task<void> {
      co_await barrier(c);
    });
  };
  const double t4 = barrier_time(4);
  const double t32 = barrier_time(32);
  EXPECT_GT(t32, t4);
  EXPECT_LT(t32, 8.0 * t4);  // log growth, not linear
}

// -- routed topologies: Bruck and two-level leader exchange ----------------

struct Delivery {
  Rank src;
  std::uint64_t bytes;
  std::vector<std::byte> payload;
  bool operator==(const Delivery&) const = default;
};

// Pseudo-random per-pair sizes (deterministic, seed-mixed): about a
// quarter of the pairs exchange nothing, the rest up to ~300 bytes.
std::uint64_t pair_size(int r, int d, unsigned seed) {
  const unsigned v = (static_cast<unsigned>(r) * 1315423911u) ^
                     (static_cast<unsigned>(d) * 2654435761u) ^ seed;
  if (v % 4 == 0) return 0;
  return v % 300;
}

std::vector<std::vector<Delivery>> run_alltoallv(CollectiveTopology topo,
                                                 int p, unsigned seed,
                                                 bool with_payloads) {
  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::paragon_small(static_cast<std::size_t>(p), 2));
  Cluster cluster(machine, p);
  cluster.set_topology(topo);
  std::vector<std::vector<Delivery>> got(static_cast<std::size_t>(p));
  const std::function<simkit::Task<void>(Comm&)> body =
      [&](Comm& c) -> simkit::Task<void> {
    const int r = c.rank();
    std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> sizes(static_cast<std::size_t>(p));
    std::vector<std::span<const std::byte>> views(
        static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      const auto du = static_cast<std::size_t>(d);
      sizes[du] = pair_size(r, d, seed);
      if (with_payloads) {
        bufs[du].assign(sizes[du],
                        static_cast<std::byte>((r * 16 + d + seed)));
        views[du] = bufs[du];
      }
    }
    std::vector<std::span<const std::byte>> pass;
    if (with_payloads) pass = views;
    auto msgs = co_await alltoallv(c, sizes, pass);
    auto& mine = got[static_cast<std::size_t>(r)];
    for (auto& m : msgs) {
      mine.push_back(Delivery{m.src, m.bytes, std::move(m.payload)});
    }
  };
  eng.spawn(cluster.run(body));
  eng.run();
  return got;
}

class TopologySweep : public ::testing::TestWithParam<int> {};

TEST_P(TopologySweep, RoutedAlltoallvMatchesFlat) {
  const int p = GetParam();
  for (unsigned seed : {7u, 19u}) {
    const auto flat =
        run_alltoallv({CollectiveTopology::Kind::kFlat, 0}, p, seed, true);
    const auto bruck =
        run_alltoallv({CollectiveTopology::Kind::kBruck, 0}, p, seed, true);
    EXPECT_EQ(bruck, flat) << "bruck p=" << p << " seed=" << seed;
    // Several widths, including non-divisors and the sqrt default.
    for (int width : {0, 1, 3, 4, p}) {
      const auto two = run_alltoallv(
          {CollectiveTopology::Kind::kTwoLevel, width}, p, seed, true);
      EXPECT_EQ(two, flat) << "two-level p=" << p << " width=" << width
                           << " seed=" << seed;
    }
  }
}

TEST_P(TopologySweep, RoutedTimingOnlyExchangeKeepsSimSizes) {
  const int p = GetParam();
  // No payloads: the routed frames are headers-only, but every delivered
  // message must still carry the correct simulated size.
  const auto flat =
      run_alltoallv({CollectiveTopology::Kind::kFlat, 0}, p, 3u, false);
  const auto bruck =
      run_alltoallv({CollectiveTopology::Kind::kBruck, 0}, p, 3u, false);
  const auto two =
      run_alltoallv({CollectiveTopology::Kind::kTwoLevel, 0}, p, 3u, false);
  for (int r = 0; r < p; ++r) {
    for (int s = 0; s < p; ++s) {
      const auto ru = static_cast<std::size_t>(r);
      const auto su = static_cast<std::size_t>(s);
      EXPECT_EQ(flat[ru][su].bytes, pair_size(s, r, 3u));
      EXPECT_EQ(bruck[ru][su].bytes, flat[ru][su].bytes);
      EXPECT_EQ(two[ru][su].bytes, flat[ru][su].bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TopologySweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16));

std::uint64_t alltoallv_msgs(CollectiveTopology topo, int p) {
  metrics::Registry reg;
  metrics::Scope scope(reg);
  run_alltoallv(topo, p, 11u, false);
  return reg.counter("mprt.alltoall.msgs").value();
}

TEST(Collectives, TwoLevelMessageCountGrowsLinearly) {
  // Flat is quadratic: doubling P quadruples messages.  Two-level with
  // the sqrt grouping must stay ~linear: doubling P less than triples it.
  const std::uint64_t two32 =
      alltoallv_msgs({CollectiveTopology::Kind::kTwoLevel, 0}, 32);
  const std::uint64_t two64 =
      alltoallv_msgs({CollectiveTopology::Kind::kTwoLevel, 0}, 64);
  EXPECT_LT(two64, 3 * two32);

  const std::uint64_t flat32 =
      alltoallv_msgs({CollectiveTopology::Kind::kFlat, 0}, 32);
  const std::uint64_t flat64 =
      alltoallv_msgs({CollectiveTopology::Kind::kFlat, 0}, 64);
  EXPECT_EQ(flat32, 32u * 32u);
  EXPECT_EQ(flat64, 64u * 64u);
  // At 64 ranks the leader routing is already an order of magnitude
  // below flat; Bruck sits at P * log2(P).
  EXPECT_GE(flat64, 10 * two64);
  const std::uint64_t bruck64 =
      alltoallv_msgs({CollectiveTopology::Kind::kBruck, 0}, 64);
  EXPECT_EQ(bruck64, 64u * 6u);
}

TEST(Collectives, TwoLevelHelpers) {
  EXPECT_EQ(two_level_group_width(16, {CollectiveTopology::Kind::kTwoLevel,
                                       0}),
            4);
  EXPECT_EQ(two_level_group_width(15, {CollectiveTopology::Kind::kTwoLevel,
                                       0}),
            4);  // ceil(sqrt(15))
  EXPECT_EQ(two_level_group_width(16, {CollectiveTopology::Kind::kTwoLevel,
                                       64}),
            16);  // clamped to P
  EXPECT_EQ(two_level_leaders(10, 4), (std::vector<Rank>{0, 4, 8}));
  EXPECT_EQ(two_level_leaders(8, 4), (std::vector<Rank>{0, 4}));
}

TEST(Collectives, ConsecutiveCollectivesDoNotCrossTalk) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
  std::vector<double> out(4, 0.0);
  Cluster::execute(machine, 4, [&](Comm& c) -> simkit::Task<void> {
    for (int round = 0; round < 5; ++round) {
      std::vector<double> v{1.0};
      co_await allreduce(c, v, ReduceOp::kSum);
      out[static_cast<std::size_t>(c.rank())] += v[0];
      co_await barrier(c);
    }
  });
  for (double v : out) EXPECT_DOUBLE_EQ(v, 20.0);  // 5 rounds x sum 4
}

}  // namespace
}  // namespace mprt
