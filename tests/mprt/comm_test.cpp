// Tests for ranked send/recv semantics.
#include "mprt/comm.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hw/machine.hpp"
#include "simkit/engine.hpp"

namespace mprt {
namespace {

struct Rig {
  simkit::Engine eng;
  hw::Machine machine;
  explicit Rig(std::size_t nodes = 8)
      : machine(eng, hw::MachineConfig::paragon_small(nodes, 2)) {}
};

TEST(Comm, PingPong) {
  Rig rig;
  std::vector<int> log;
  Cluster::execute(rig.machine, 2, [&](Comm& c) -> simkit::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 7, 100);
      Message m = co_await c.recv(1, 8);
      log.push_back(m.tag);
    } else {
      Message m = co_await c.recv(0, 7);
      log.push_back(m.tag);
      co_await c.send(0, 8, 100);
    }
  });
  EXPECT_EQ(log, (std::vector<int>{7, 8}));
}

TEST(Comm, PayloadDeliveredIntact) {
  Rig rig;
  std::vector<std::byte> got;
  Cluster::execute(rig.machine, 2, [&](Comm& c) -> simkit::Task<void> {
    if (c.rank() == 0) {
      std::vector<std::byte> data(64);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(i * 3);
      }
      co_await c.send(1, 0, data.size(), data);
    } else {
      Message m = co_await c.recv(0, 0);
      got = std::move(m.payload);
    }
  });
  ASSERT_EQ(got.size(), 64u);
  EXPECT_EQ(got[10], static_cast<std::byte>(30));
}

TEST(Comm, TagMatchingSkipsNonMatching) {
  Rig rig;
  std::vector<int> order;
  Cluster::execute(rig.machine, 2, [&](Comm& c) -> simkit::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 5, 10);
      co_await c.send(1, 6, 10);
    } else {
      Message m6 = co_await c.recv(0, 6);  // must match tag 6 first
      order.push_back(m6.tag);
      Message m5 = co_await c.recv(0, 5);
      order.push_back(m5.tag);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{6, 5}));
}

TEST(Comm, AnySourceReceivesFromWhoeverArrives) {
  Rig rig;
  std::vector<Rank> sources;
  Cluster::execute(rig.machine, 4, [&](Comm& c) -> simkit::Task<void> {
    if (c.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        Message m = co_await c.recv(kAnySource, 1);
        sources.push_back(m.src);
      }
    } else {
      // Stagger arrival by rank so order is deterministic.
      co_await c.engine().delay(0.001 * c.rank());
      co_await c.send(0, 1, 10);
    }
  });
  EXPECT_EQ(sources, (std::vector<Rank>{1, 2, 3}));
}

TEST(Comm, FifoBetweenSamePair) {
  Rig rig;
  std::vector<std::uint64_t> sizes;
  Cluster::execute(rig.machine, 2, [&](Comm& c) -> simkit::Task<void> {
    if (c.rank() == 0) {
      for (std::uint64_t i = 1; i <= 5; ++i) co_await c.send(1, 0, i);
    } else {
      for (int i = 0; i < 5; ++i) {
        Message m = co_await c.recv(0, 0);
        sizes.push_back(m.bytes);
      }
    }
  });
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(Comm, TransferTimeScalesWithBytes) {
  auto run_msg = [](std::uint64_t bytes) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
    return Cluster::execute(machine, 2, [&](Comm& c) -> simkit::Task<void> {
      if (c.rank() == 0) {
        co_await c.send(1, 0, bytes);
      } else {
        (void)co_await c.recv(0, 0);
      }
    });
  };
  const double small = run_msg(10'000);
  const double big = run_msg(10'000'000);
  EXPECT_GT(big, 50.0 * small);
}

TEST(Comm, CountsTraffic) {
  Rig rig;
  Cluster cluster(rig.machine, 2);
  rig.eng.spawn(cluster.run([](Comm& c) -> simkit::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 500);
      co_await c.send(1, 0, 700);
    } else {
      (void)co_await c.recv(0, 0);
      (void)co_await c.recv(0, 0);
    }
  }));
  rig.eng.run();
  EXPECT_EQ(cluster.comm(0).messages_sent(), 2u);
  EXPECT_EQ(cluster.comm(0).bytes_sent(), 1200u);
}

TEST(Cluster, RanksMapToDistinctComputeNodes) {
  Rig rig;
  Cluster cluster(rig.machine, 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.comm(r).node(),
              rig.machine.compute_node(static_cast<std::size_t>(r)));
  }
}

}  // namespace
}  // namespace mprt
