// Cross-optimization integrity: every access strategy in the library must
// produce byte-identical file/buffer contents on the same scattered
// pattern — they only differ in cost.  Randomized patterns, multiple
// seeds (parameterized).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hw/machine.hpp"
#include "mprt/comm.hpp"
#include "pario/sieve.hpp"
#include "pario/twophase.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"
#include "simkit/rng.hpp"

namespace pario {
namespace {

constexpr int kProcs = 4;
constexpr std::uint64_t kFileSpan = 256 * 1024;

/// Random non-overlapping pieces for one rank: rank r owns byte i when
/// hash(i / grain) % P == r, grouped into extents.
std::vector<Extent> random_pieces(int rank, std::uint64_t seed) {
  simkit::Rng rng(seed);  // same stream on every rank: consistent ownership
  std::vector<Extent> out;
  std::uint64_t buf = 0;
  std::uint64_t pos = 0;
  while (pos < kFileSpan) {
    const std::uint64_t grain = 64 + rng.uniform_int(2048);
    const auto owner = static_cast<int>(rng.uniform_int(kProcs));
    const std::uint64_t len = std::min(grain, kFileSpan - pos);
    if (owner == rank) {
      out.push_back(Extent{pos, len, buf});
      buf += len;
    }
    pos += len;
  }
  return out;
}

std::vector<std::byte> rank_bytes(int rank, std::uint64_t n) {
  std::vector<std::byte> v(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((rank * 89 + i * 7 + 3) % 251);
  }
  return v;
}

class Equivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Equivalence, AllWriteStrategiesProduceTheSameFile) {
  const std::uint64_t seed = GetParam();
  enum class How { kDirect, kSieved, kTwoPhase };
  auto run = [&](How how) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(kProcs, 2));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("equiv", /*backed=*/true);
    mprt::Cluster::execute(machine, kProcs, [&](mprt::Comm& c)
                                                -> simkit::Task<void> {
      auto pieces = random_pieces(c.rank(), seed);
      auto data = rank_bytes(c.rank(), total_length(pieces));
      switch (how) {
        case How::kDirect:
          for (const auto& e : pieces) {
            co_await fs.pwrite(
                c.node(), f, e.file_offset, e.length,
                std::span<const std::byte>(data).subspan(e.buf_offset,
                                                         e.length));
          }
          break;
        case How::kSieved:
          co_await sieved_write(fs, c.node(), f, pieces, data, 64 * 1024);
          break;
        case How::kTwoPhase:
          co_await TwoPhase::write(c, fs, f, pieces, data);
          break;
      }
    });
    std::vector<std::byte> whole(kFileSpan);
    fs.peek(f, 0, whole);
    return whole;
  };
  const auto direct = run(How::kDirect);
  EXPECT_EQ(run(How::kSieved), direct);
  EXPECT_EQ(run(How::kTwoPhase), direct);
}

TEST_P(Equivalence, AllReadStrategiesSeeTheSameBytes) {
  const std::uint64_t seed = GetParam() + 1000;
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_small(kProcs, 2));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("equiv_r", /*backed=*/true);
  // Fill the file with a known pattern.
  std::vector<std::byte> content(kFileSpan);
  for (std::uint64_t i = 0; i < kFileSpan; ++i) {
    content[i] = static_cast<std::byte>((i * 131 + 17) % 253);
  }
  fs.poke(f, 0, content);

  int mismatches = 0;
  mprt::Cluster::execute(machine, kProcs, [&](mprt::Comm& c)
                                              -> simkit::Task<void> {
    auto pieces = random_pieces(c.rank(), seed);
    const std::uint64_t n = total_length(pieces);
    std::vector<std::byte> direct(n), sieved(n), collective(n);
    co_await direct_read(fs, c.node(), f, pieces, direct);
    co_await sieved_read(fs, c.node(), f, pieces, sieved, 32 * 1024);
    co_await TwoPhase::read(c, fs, f, pieces, collective);
    // Reference: gather from the known contents.
    std::vector<std::byte> want(n);
    for (const auto& e : pieces) {
      std::memcpy(want.data() + e.buf_offset,
                  content.data() + e.file_offset, e.length);
    }
    if (direct != want || sieved != want || collective != want) {
      ++mismatches;
    }
  });
  EXPECT_EQ(mismatches, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace pario
