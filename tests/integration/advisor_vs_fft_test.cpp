// Cross-validation: the closed-form tile-run geometry (which the
// LayoutAdvisor uses) must predict the FFT application's I/O call counts
// EXACTLY — both program versions.
//
// Note the instructive subtlety this pins down: at these panel shapes the
// optimized program issues about as MANY calls as the original — its win
// in Figure 5 comes from which calls are contiguous disk reads versus
// absorbed write-behind writes, not from the raw count.
#include <gtest/gtest.h>

#include "apps/fft_app.hpp"
#include "pario/advisor.hpp"

namespace apps {
namespace {

struct Geometry {
  std::uint64_t w;  // strip width for the contiguous passes
  std::uint64_t t;  // unopt square tile edge
};

Geometry geometry(const FftConfig& cfg) {
  const std::uint64_t mem_elems = cfg.mem_bytes / 16 / 2;
  Geometry g;
  g.w = std::min<std::uint64_t>(cfg.n, mem_elems / cfg.n);
  g.t = 1;
  while ((g.t * 2) * (g.t * 2) <= mem_elems) g.t *= 2;
  g.t = std::min<std::uint64_t>(g.t, cfg.n);  // per-rank column cap (P=1)
  return g;
}

TEST(AdvisorVsFft, ClosedFormPredictsUnoptimizedCallsExactly) {
  FftConfig cfg;
  cfg.n = 512;
  cfg.nprocs = 1;
  cfg.io_nodes = 2;
  cfg.mem_bytes = 1 << 20;
  cfg.optimized_layout = false;
  const FftResult r = run_fft(cfg);

  const Geometry g = geometry(cfg);
  const std::uint64_t panels = cfg.n / g.w;
  const std::uint64_t tiles = (cfg.n / g.t) * (cfg.n / g.t);
  using pario::Layout;
  using pario::tile_run_count;
  // Step 1: read+write full-height panels of col-major A.
  std::uint64_t pred = 2 * panels *
                       tile_run_count(Layout::kColMajor, cfg.n, cfg.n,
                                      cfg.n, g.w);
  // Transpose: square tiles read from A, written to col-major B.
  pred += tiles * (tile_run_count(Layout::kColMajor, cfg.n, cfg.n, g.t,
                                  g.t) +
                   tile_run_count(Layout::kColMajor, cfg.n, cfg.n, g.t,
                                  g.t));
  // Step 3: read+write full-height panels of col-major B.
  pred += 2 * panels *
          tile_run_count(Layout::kColMajor, cfg.n, cfg.n, cfg.n, g.w);
  EXPECT_EQ(r.io_calls, pred);
}

TEST(AdvisorVsFft, ClosedFormPredictsOptimizedCallsExactly) {
  FftConfig cfg;
  cfg.n = 512;
  cfg.nprocs = 1;
  cfg.io_nodes = 2;
  cfg.mem_bytes = 1 << 20;
  cfg.optimized_layout = true;
  const FftResult r = run_fft(cfg);

  const Geometry g = geometry(cfg);
  const std::uint64_t panels = cfg.n / g.w;
  using pario::Layout;
  using pario::tile_run_count;
  // Step 1 on col-major A: contiguous panels.
  std::uint64_t pred = 2 * panels *
                       tile_run_count(Layout::kColMajor, cfg.n, cfg.n,
                                      cfg.n, g.w);
  // Conversion: contiguous panel reads from A, strided full-column tile
  // writes into row-major B (n runs per panel).
  pred += panels * (tile_run_count(Layout::kColMajor, cfg.n, cfg.n, cfg.n,
                                   g.w) +
                    tile_run_count(Layout::kRowMajor, cfg.n, cfg.n, cfg.n,
                                   g.w));
  // Step 3 on row-major B: contiguous row panels.
  pred += 2 * panels *
          tile_run_count(Layout::kRowMajor, cfg.n, cfg.n, g.w, cfg.n);
  EXPECT_EQ(r.io_calls, pred);
}

TEST(AdvisorVsFft, AdvisorFlagsTheConversionWriteAsTheStridedSide) {
  // For the conversion pass alone, the advisor must identify that the
  // write side (full-column tiles into B) is where a row-major layout
  // hurts and a col-major layout would hurt the reads instead — i.e. the
  // pass is strided SOMEWHERE no matter what, with n runs at stake.
  constexpr std::uint64_t n = 512, w = 64;
  pario::LayoutAdvisor adv;
  adv.observe("B_conversion_writes", n, n, n, w, n / w);
  EXPECT_EQ(adv.estimated_calls("B_conversion_writes",
                                pario::Layout::kColMajor),
            n / w);  // full-height col tiles coalesce under col-major
  EXPECT_EQ(adv.estimated_calls("B_conversion_writes",
                                pario::Layout::kRowMajor),
            (n / w) * n);  // and shatter under row-major
}

}  // namespace
}  // namespace apps
