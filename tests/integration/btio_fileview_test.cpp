// The paper: "the solution vector is completely described by using MPI
// data types".  This test builds BTIO's per-rank access pattern as a
// DataType/FileView and checks it is extent-for-extent identical to the
// hand-rolled geometry the application uses — i.e. the datatype layer
// can fully describe the benchmark's solution vector.
#include <gtest/gtest.h>

#include <vector>

#include "pario/datatype.hpp"
#include "pario/extent.hpp"

namespace pario {
namespace {

// Hand-rolled BTIO pencils (mirrors apps/btio.cpp's rank_pencils).
std::vector<Extent> hand_rolled(std::uint64_t n, int q, int rank) {
  const std::uint64_t row_bytes = n * 40;
  const std::uint64_t ylo = static_cast<std::uint64_t>(rank % q) * n /
                            static_cast<std::uint64_t>(q);
  const std::uint64_t yhi = static_cast<std::uint64_t>(rank % q + 1) * n /
                            static_cast<std::uint64_t>(q);
  const std::uint64_t zlo = static_cast<std::uint64_t>(rank / q) * n /
                            static_cast<std::uint64_t>(q);
  const std::uint64_t zhi = static_cast<std::uint64_t>(rank / q + 1) * n /
                            static_cast<std::uint64_t>(q);
  std::vector<Extent> out;
  std::uint64_t buf = 0;
  for (std::uint64_t z = zlo; z < zhi; ++z) {
    for (std::uint64_t y = ylo; y < yhi; ++y) {
      out.push_back(Extent{(z * n + y) * row_bytes, row_bytes, buf});
      buf += row_bytes;
    }
  }
  return out;
}

// The MPI way: one z-plane's y-slab as a vector type, resized to the
// plane, displaced to the rank's (y, z) corner.
FileView btio_view(std::uint64_t n, int q, int rank) {
  const std::uint64_t row_bytes = n * 40;
  const std::uint64_t y_rows = n / static_cast<std::uint64_t>(q);
  const std::uint64_t ylo = static_cast<std::uint64_t>(rank % q) * y_rows;
  const std::uint64_t zlo =
      static_cast<std::uint64_t>(rank / q) * (n / static_cast<std::uint64_t>(q));
  const DataType slab =
      DataType::vector(y_rows, row_bytes, row_bytes)  // contiguous slab
          .resized(n * row_bytes);                    // skip to next plane
  return FileView((zlo * n + ylo) * row_bytes, slab);
}

class BtioViewSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(BtioViewSweep, ViewMatchesHandRolledExtents) {
  const auto [n, q] = GetParam();
  for (int rank = 0; rank < q * q; ++rank) {
    auto want = coalesce(hand_rolled(n, q, rank));
    const FileView v = btio_view(n, q, rank);
    auto got = v.map(0, total_length(want));
    EXPECT_EQ(got, want) << "n=" << n << " q=" << q << " rank=" << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, BtioViewSweep,
    ::testing::Values(std::make_tuple(8ull, 2), std::make_tuple(16ull, 4),
                      std::make_tuple(64ull, 4), std::make_tuple(12ull, 3)));

}  // namespace
}  // namespace pario
