// The simulator's core promise: identical configurations replay
// bit-identically — across every application and the full I/O stack.
#include <gtest/gtest.h>

#include "apps/ast.hpp"
#include "apps/btio.hpp"
#include "apps/fft_app.hpp"
#include "apps/scf.hpp"
#include "apps/scf3.hpp"

namespace apps {
namespace {

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.exec_time, b.exec_time);  // exact, not NEAR: determinism
  EXPECT_EQ(a.io_time, b.io_time);
  EXPECT_EQ(a.compute_time, b.compute_time);
  EXPECT_EQ(a.io_bytes, b.io_bytes);
  EXPECT_EQ(a.io_calls, b.io_calls);
}

TEST(Determinism, Scf11) {
  ScfConfig cfg;
  cfg.version = ScfVersion::kPassionPrefetch;
  cfg.nprocs = 8;
  cfg.n_basis = 108;
  cfg.iterations = 5;
  cfg.scale = 0.1;
  expect_identical(run_scf11(cfg), run_scf11(cfg));
}

TEST(Determinism, Scf30) {
  Scf30Config cfg;
  cfg.nprocs = 8;
  cfg.cached_percent = 60.0;
  cfg.n_basis = 108;
  cfg.iterations = 5;
  cfg.scale = 0.1;
  expect_identical(run_scf30(cfg), run_scf30(cfg));
}

TEST(Determinism, Fft) {
  FftConfig cfg;
  cfg.n = 512;
  cfg.nprocs = 4;
  cfg.io_nodes = 2;
  cfg.mem_bytes = 1 << 20;
  expect_identical(run_fft(cfg), run_fft(cfg));
}

TEST(Determinism, Btio) {
  BtioConfig cfg;
  cfg.nprocs = 9;
  cfg.collective = true;
  cfg.scale = 0.05;
  expect_identical(run_btio(cfg), run_btio(cfg));
}

TEST(Determinism, Ast) {
  AstConfig cfg;
  cfg.grid = 512;
  cfg.nprocs = 8;
  cfg.collective = false;
  cfg.scale = 0.05;
  expect_identical(run_ast(cfg), run_ast(cfg));
}

TEST(Determinism, FftDataBackedOutputsIdentical) {
  FftConfig cfg;
  cfg.n = 32;
  cfg.nprocs = 2;
  cfg.io_nodes = 2;
  cfg.mem_bytes = 32 * 1024;
  std::vector<std::byte> input(32 * 32 * 16, std::byte{0x5A});
  EXPECT_EQ(run_fft_collect_output(cfg, input),
            run_fft_collect_output(cfg, input));
}

}  // namespace
}  // namespace apps
