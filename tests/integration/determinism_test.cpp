// The simulator's core promise: identical configurations replay
// bit-identically — across every application and the full I/O stack.
#include <gtest/gtest.h>

#include "apps/ast.hpp"
#include "apps/btio.hpp"
#include "apps/fft_app.hpp"
#include "apps/scf.hpp"
#include "apps/scf3.hpp"
#include "ckpt/ckpt.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace apps {
namespace {

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.exec_time, b.exec_time);  // exact, not NEAR: determinism
  EXPECT_EQ(a.io_time, b.io_time);
  EXPECT_EQ(a.compute_time, b.compute_time);
  EXPECT_EQ(a.io_bytes, b.io_bytes);
  EXPECT_EQ(a.io_calls, b.io_calls);
}

TEST(Determinism, Scf11) {
  ScfConfig cfg;
  cfg.version = ScfVersion::kPassionPrefetch;
  cfg.nprocs = 8;
  cfg.n_basis = 108;
  cfg.iterations = 5;
  cfg.scale = 0.1;
  expect_identical(run_scf11(cfg), run_scf11(cfg));
}

TEST(Determinism, Scf30) {
  Scf30Config cfg;
  cfg.nprocs = 8;
  cfg.cached_percent = 60.0;
  cfg.n_basis = 108;
  cfg.iterations = 5;
  cfg.scale = 0.1;
  expect_identical(run_scf30(cfg), run_scf30(cfg));
}

TEST(Determinism, Fft) {
  FftConfig cfg;
  cfg.n = 512;
  cfg.nprocs = 4;
  cfg.io_nodes = 2;
  cfg.mem_bytes = 1 << 20;
  expect_identical(run_fft(cfg), run_fft(cfg));
}

TEST(Determinism, Btio) {
  BtioConfig cfg;
  cfg.nprocs = 9;
  cfg.collective = true;
  cfg.scale = 0.05;
  expect_identical(run_btio(cfg), run_btio(cfg));
}

TEST(Determinism, Ast) {
  AstConfig cfg;
  cfg.grid = 512;
  cfg.nprocs = 8;
  cfg.collective = false;
  cfg.scale = 0.05;
  expect_identical(run_ast(cfg), run_ast(cfg));
}

// A faulty run — injected crashes, transient errors, retries, restarts —
// must replay bit-identically too: the whole fault pipeline is seeded.
TEST(Determinism, FaultyCheckpointRestartRun) {
  auto run_once = [] {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
    fault::InjectionPlan plan =
        fault::InjectionPlan::poisson_node_crashes(2, 3.0, 0.5, 500.0, 11);
    plan.with_transient_errors(0.02);
    fault::Injector injector(std::move(plan));
    pfs::StripedFs fs(machine, &injector);
    ckpt::Workload w;
    w.nprocs = 4;
    w.steps = 8;
    w.flops_per_rank_step = 1e6;
    w.io = ckpt::StepIo::kPrivateRead;
    w.io_bytes_per_rank_step = 96 * 1024;
    w.io_chunk_bytes = 32 * 1024;
    w.prologue_writes_private = true;
    w.state_bytes_per_rank = 64 * 1024;
    w.backed_state = true;
    ckpt::Options opt;
    opt.ckpt_interval_steps = 2;
    opt.retry.max_attempts = 3;
    return ckpt::run(machine, fs, &injector, w, opt);
  };
  const ckpt::Report a = run_once();
  const ckpt::Report b = run_once();
  EXPECT_EQ(a.exec_time, b.exec_time);  // exact, not NEAR: determinism
  EXPECT_EQ(a.ckpt_overhead, b.ckpt_overhead);
  EXPECT_EQ(a.lost_work, b.lost_work);
  EXPECT_EQ(a.recovery_time, b.recovery_time);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retry.attempts, b.retry.attempts);
  EXPECT_EQ(a.retry.retries, b.retry.retries);
  EXPECT_EQ(a.retry.backoff_time, b.retry.backoff_time);
}

TEST(Determinism, FftDataBackedOutputsIdentical) {
  FftConfig cfg;
  cfg.n = 32;
  cfg.nprocs = 2;
  cfg.io_nodes = 2;
  cfg.mem_bytes = 32 * 1024;
  std::vector<std::byte> input(32 * 32 * 16, std::byte{0x5A});
  EXPECT_EQ(run_fft_collect_output(cfg, input),
            run_fft_collect_output(cfg, input));
}

}  // namespace
}  // namespace apps
