// Tests for the platform run loop: determinism (same inputs — identical
// reports), node-time conservation, fault recovery, and the cooperative
// checkpoint token.
#include "sched/platform.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "sched/arrival.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::size_t kComputeNodes = 16;
constexpr std::size_t kIoNodes = 4;

std::vector<sched::Job> small_stream(int n, std::uint64_t seed) {
  sched::ArrivalConfig cfg;
  cfg.mean_interarrival_s = 2.0;  // overloaded: decisions matter
  cfg.max_jobs = n;
  return sched::generate(cfg, sched::standard_mix(0.02), seed);
}

sched::PlatformReport run_platform(sched::Coordination coord,
                                   sched::Discipline disc, bool faults,
                                   std::uint64_t seed) {
  simkit::Engine eng;
  hw::MachineConfig mc =
      hw::MachineConfig::paragon_large(kComputeNodes, kIoNodes);
  hw::Machine machine(eng, mc);
  fault::Injector injector(fault::InjectionPlan::poisson_node_crashes(
      kIoNodes, /*mtbf=*/40.0, /*outage=*/5.0, /*horizon=*/1e6, seed));
  pfs::StripedFs fs(machine, faults ? &injector : nullptr);

  sched::PlatformOptions opt;
  opt.discipline = disc;
  opt.coordination = coord;
  opt.retry.max_attempts = 4;
  opt.retry.backoff_ms = 5.0;
  return sched::run(machine, fs, faults ? &injector : nullptr,
                    small_stream(32, seed), opt);
}

/// Full-precision digest: any drift in any per-job field differs.
std::string digest(const sched::PlatformReport& r) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "makespan=%.17g waste=%.17g util=%.17g\n",
                r.makespan, r.wasted_node_s, r.utilization);
  out += buf;
  for (const sched::JobOutcome& o : r.jobs) {
    std::snprintf(buf, sizeof buf,
                  "%d %.17g %.17g %.17g %.17g %d %d %d %d\n", o.job.id,
                  o.start_time, o.finish_time, o.productive, o.lost_work,
                  o.checkpoints, o.restarts, o.ckpt_deferrals,
                  o.completed ? 1 : 0);
    out += buf;
  }
  return out;
}

TEST(Platform, SameSeedSameReport) {
  const auto a = run_platform(sched::Coordination::kFreeForAll,
                              sched::Discipline::kFcfs, true, 11);
  const auto b = run_platform(sched::Coordination::kFreeForAll,
                              sched::Discipline::kFcfs, true, 11);
  EXPECT_EQ(digest(a), digest(b));
}

TEST(Platform, NodeTimeConservation) {
  const auto r = run_platform(sched::Coordination::kFreeForAll,
                              sched::Discipline::kFcfs, false, 5);
  EXPECT_EQ(r.completed_jobs, static_cast<int>(r.jobs.size()));
  EXPECT_NEAR(r.held_node_s, r.productive_node_s + r.wasted_node_s, 1e-6);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0);
  EXPECT_GT(r.makespan, 0.0);
  // Fault-free: nothing rolls back, nothing restarts, nothing is lost.
  EXPECT_EQ(r.total_restarts, 0);
  EXPECT_EQ(r.total_lost_work, 0.0);
  for (const sched::JobOutcome& o : r.jobs) {
    EXPECT_GE(o.start_time, o.job.arrival);
    EXPECT_GT(o.finish_time, o.start_time);
    // estimate_runtime_s is deliberately conservative (raw disk
    // bandwidth, no I/O-node caching), so a lightly loaded job can beat
    // it and stretch dips below 1 — but never to 0 or negative.
    EXPECT_GT(o.stretch(), 0.0) << "job " << o.job.id;
  }
}

TEST(Platform, RecoversFromInjectedFaults) {
  const auto r = run_platform(sched::Coordination::kFreeForAll,
                              sched::Discipline::kFcfs, true, 3);
  // MTBF 40 s against a multi-hundred-second run: restarts must happen,
  // and every job must still complete through rollback + re-execution.
  EXPECT_GT(r.total_restarts, 0);
  EXPECT_GT(r.total_lost_work, 0.0);
  EXPECT_EQ(r.completed_jobs, static_cast<int>(r.jobs.size()));
}

TEST(Platform, CooperativeTokenDefersCheckpoints) {
  const auto r = run_platform(sched::Coordination::kCooperative,
                              sched::Discipline::kFcfs, false, 5);
  EXPECT_EQ(r.completed_jobs, static_cast<int>(r.jobs.size()));
  // With concurrent jobs all checkpointing every 2 steps, the single
  // platform token must force some boundary deferrals.
  EXPECT_GT(r.total_deferrals, 0);
}

TEST(Platform, OrderedSlotsComplete) {
  const auto r = run_platform(sched::Coordination::kOrderedSlots,
                              sched::Discipline::kBackfill, false, 5);
  EXPECT_EQ(r.completed_jobs, static_cast<int>(r.jobs.size()));
  // Slot queueing is visible in the per-job wait accounting.
  double slot_wait = 0.0;
  for (const sched::JobOutcome& o : r.jobs) slot_wait += o.io_slot_wait;
  EXPECT_GT(slot_wait, 0.0);
}

TEST(Platform, DisciplinesShareTheStream) {
  // Different disciplines run the same jobs (ids/arrivals identical) but
  // may order starts differently.
  const auto fcfs = run_platform(sched::Coordination::kFreeForAll,
                                 sched::Discipline::kFcfs, false, 9);
  const auto prio = run_platform(sched::Coordination::kFreeForAll,
                                 sched::Discipline::kPriority, false, 9);
  ASSERT_EQ(fcfs.jobs.size(), prio.jobs.size());
  for (std::size_t i = 0; i < fcfs.jobs.size(); ++i) {
    EXPECT_EQ(fcfs.jobs[i].job.id, prio.jobs[i].job.id);
    EXPECT_EQ(fcfs.jobs[i].job.arrival, prio.jobs[i].job.arrival);
  }
}

TEST(Platform, EstimateIsPositiveAndMonotonicInSize) {
  const hw::MachineConfig mc =
      hw::MachineConfig::paragon_large(kComputeNodes, kIoNodes);
  const double small = sched::estimate_runtime_s(
      sched::JobClass::make(sched::AppKind::kScf, sched::SizeClass::kSmall,
                            0.1),
      mc);
  const double large = sched::estimate_runtime_s(
      sched::JobClass::make(sched::AppKind::kScf, sched::SizeClass::kLarge,
                            0.1),
      mc);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

TEST(Platform, CoordinationEnumRoundTrips) {
  for (const sched::Coordination c :
       {sched::Coordination::kFreeForAll, sched::Coordination::kOrderedSlots,
        sched::Coordination::kCooperative}) {
    const auto parsed = sched::parse_coordination(sched::to_string(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(sched::parse_coordination("anarchic").has_value());
}

}  // namespace
