// Tests for the seeded arrival-stream generator: same seed — byte-
// identical stream; different seeds — independent streams; the empirical
// inter-arrival mean matches the configured rate; bursts densify their
// windows; bad configs throw.
#include "sched/arrival.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace {

sched::ArrivalConfig plain_config(int jobs, double mean = 10.0) {
  sched::ArrivalConfig cfg;
  cfg.mean_interarrival_s = mean;
  cfg.max_jobs = jobs;
  return cfg;
}

/// Full-precision serialization of a stream: any divergence in any field
/// of any job shows up as a byte difference.
std::string serialize(const std::vector<sched::Job>& jobs) {
  std::string out;
  char buf[160];
  for (const sched::Job& j : jobs) {
    std::snprintf(buf, sizeof buf, "%d %s %.17g %llu %d %d\n", j.id,
                  j.klass.name.c_str(), j.arrival,
                  static_cast<unsigned long long>(j.seed), j.klass.nodes,
                  j.klass.steps);
    out += buf;
  }
  return out;
}

TEST(Arrival, SameSeedIsByteIdentical) {
  const sched::JobMix mix = sched::standard_mix(0.1);
  const auto a = sched::generate(plain_config(500), mix, 1234);
  const auto b = sched::generate(plain_config(500), mix, 1234);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_EQ(serialize(a), serialize(b));
}

TEST(Arrival, DifferentSeedsAreIndependent) {
  const sched::JobMix mix = sched::standard_mix(0.1);
  const auto a = sched::generate(plain_config(500), mix, 1);
  const auto b = sched::generate(plain_config(500), mix, 2);
  EXPECT_NE(serialize(a), serialize(b));
  // Independence, not just inequality: the fraction of positions where
  // both streams picked the same class should be near the collision
  // probability of the mix (well below half), not near 1.
  int same_class = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].klass.name == b[i].klass.name) ++same_class;
  }
  EXPECT_LT(same_class, 250);
}

TEST(Arrival, EmpiricalMeanMatchesConfiguredRate) {
  const sched::JobMix mix = sched::standard_mix(0.1);
  const int n = 4000;
  const auto jobs = sched::generate(plain_config(n, 10.0), mix, 99);
  ASSERT_EQ(jobs.size(), static_cast<std::size_t>(n));
  // Gaps average the exponential mean; with 4000 samples the standard
  // error is ~0.16 s, so a 5% band is a ~3-sigma test on a FIXED seed
  // (deterministic, no flake).
  const double mean_gap = jobs.back().arrival / n;
  EXPECT_NEAR(mean_gap, 10.0, 0.5);
}

TEST(Arrival, SortedWithSequentialIds) {
  const auto jobs =
      sched::generate(plain_config(200), sched::standard_mix(0.1), 7);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<int>(i));
    if (i > 0) {
      EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
    }
  }
}

TEST(Arrival, BurstsDensifyTheirWindows) {
  sched::ArrivalConfig cfg = plain_config(5000, 10.0);
  cfg.burst_period_s = 100.0;
  cfg.burst_len_s = 20.0;
  cfg.burst_rate_multiplier = 5.0;
  const auto jobs =
      sched::generate(cfg, sched::standard_mix(0.1), 31);
  int in_burst = 0;
  for (const sched::Job& j : jobs) {
    if (std::fmod(j.arrival, 100.0) < 20.0) ++in_burst;
  }
  const int outside = static_cast<int>(jobs.size()) - in_burst;
  // Burst windows are 1/5 of the time at 5x the rate: about half of all
  // arrivals should land inside them (vs 20% without bursts).  Demand a
  // per-second arrival rate at least 2x higher inside.
  const double rate_in = in_burst / 20.0;
  const double rate_out = outside / 80.0;
  EXPECT_GT(rate_in, 2.0 * rate_out);
}

TEST(Arrival, RejectsBadConfigs) {
  const sched::JobMix mix = sched::standard_mix(0.1);
  sched::ArrivalConfig cfg;  // neither horizon nor max_jobs
  EXPECT_THROW(sched::generate(cfg, mix, 1), std::invalid_argument);

  sched::ArrivalConfig neg = plain_config(10, -1.0);
  EXPECT_THROW(sched::generate(neg, mix, 1), std::invalid_argument);

  sched::ArrivalConfig bad_burst = plain_config(10);
  bad_burst.burst_period_s = 50.0;  // period without a window length
  EXPECT_THROW(sched::generate(bad_burst, mix, 1), std::invalid_argument);

  sched::JobMix mismatched = mix;
  mismatched.weights.pop_back();
  EXPECT_THROW(sched::generate(plain_config(10), mismatched, 1),
               std::invalid_argument);

  sched::JobMix empty;
  EXPECT_THROW(sched::generate(plain_config(10), empty, 1),
               std::invalid_argument);
}

TEST(Arrival, HorizonBoundsTheStream) {
  sched::ArrivalConfig cfg;
  cfg.mean_interarrival_s = 5.0;
  cfg.horizon = 300.0;
  const auto jobs = sched::generate(cfg, sched::standard_mix(0.1), 4);
  ASSERT_FALSE(jobs.empty());
  for (const sched::Job& j : jobs) EXPECT_LT(j.arrival, 300.0);
}

}  // namespace
