// Tests for the queue disciplines (pure select_jobs decisions) and the
// node allocator.
#include "sched/queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

sched::PendingView job(int id, int nodes, int priority = 0,
                       double arrival = 0.0, double est = 10.0) {
  return {id, nodes, priority, arrival, est};
}

TEST(QueueFcfs, StartsInOrderUntilTheHeadBlocks) {
  const std::vector<sched::PendingView> pending = {
      job(0, 2), job(1, 2), job(2, 8), job(3, 1)};
  // 2+2 fit in 5; the 8-node job blocks; the 1-node job must NOT jump it.
  const auto sel = sched::select_jobs(sched::Discipline::kFcfs, pending,
                                      /*free_nodes=*/5, 0.0, {});
  EXPECT_EQ(sel, (std::vector<std::size_t>{0, 1}));
}

TEST(QueuePriority, OrdersByPriorityThenArrival) {
  const std::vector<sched::PendingView> pending = {
      job(0, 2, /*priority=*/0, /*arrival=*/1.0),
      job(1, 2, /*priority=*/2, /*arrival=*/3.0),
      job(2, 2, /*priority=*/2, /*arrival=*/2.0),
      job(3, 2, /*priority=*/1, /*arrival=*/0.0)};
  const auto sel = sched::select_jobs(sched::Discipline::kPriority, pending,
                                      /*free_nodes=*/6, 0.0, {});
  // Highest priority first, ties by earlier arrival; three 2-node jobs
  // fit in 6 nodes, the fourth (priority 0) blocks on nothing but space.
  EXPECT_EQ(sel, (std::vector<std::size_t>{2, 1, 3}));
}

TEST(QueueBackfill, FillsAroundAReservedHead) {
  // 6 free nodes.  Head wants 8 -> blocked.  One 8-node job is running
  // until t=10, so the head's reservation (shadow time) is 10 with
  // 14 - 8 = 6 spare nodes.
  const std::vector<sched::PendingView> pending = {
      job(0, 8, 0, 0.0, /*est=*/30.0),   // blocked head
      job(1, 2, 0, 1.0, /*est=*/5.0),    // ends by the shadow -> backfills
      job(2, 4, 0, 2.0, /*est=*/50.0),   // overruns, but fits the spare
      job(3, 2, 0, 3.0, /*est=*/50.0)};  // overruns and no free nodes left
  std::vector<sched::RunningView> running = {{8, /*est_finish=*/10.0}};
  const auto sel = sched::select_jobs(sched::Discipline::kBackfill, pending,
                                      /*free_nodes=*/6, 0.0, running);
  EXPECT_EQ(sel, (std::vector<std::size_t>{1, 2}));
}

TEST(QueueBackfill, NeverDelaysTheHeadByEstimate) {
  // Spare after the head's reservation: 5+8-9 = 4 nodes.  A 5-node job
  // that overruns the shadow would delay the head -> must not start,
  // even though it fits the free nodes right now.
  const std::vector<sched::PendingView> pending = {
      job(0, 9, 0, 0.0, 30.0),
      job(1, 5, 0, 1.0, /*est=*/50.0)};
  std::vector<sched::RunningView> running = {{8, 10.0}};
  const auto sel = sched::select_jobs(sched::Discipline::kBackfill, pending,
                                      /*free_nodes=*/5, 0.0, running);
  EXPECT_TRUE(sel.empty());
}

TEST(QueueBackfill, UnreservableHeadStopsBackfill) {
  // The head wants more nodes than the machine will ever free: no shadow
  // exists, so nothing may jump it (conservative, keeps it live).
  const std::vector<sched::PendingView> pending = {
      job(0, 32, 0, 0.0, 30.0), job(1, 1, 0, 1.0, 1.0)};
  std::vector<sched::RunningView> running = {{8, 10.0}};
  const auto sel = sched::select_jobs(sched::Discipline::kBackfill, pending,
                                      /*free_nodes=*/4, 0.0, running);
  EXPECT_TRUE(sel.empty());
}

TEST(QueueBackfill, PureFcfsWhenNothingBlocks) {
  const std::vector<sched::PendingView> pending = {job(0, 2), job(1, 2)};
  const auto sel = sched::select_jobs(sched::Discipline::kBackfill, pending,
                                      /*free_nodes=*/8, 0.0, {});
  EXPECT_EQ(sel, (std::vector<std::size_t>{0, 1}));
}

TEST(NodeAllocator, LowestIndexFirstAndReuse) {
  sched::NodeAllocator alloc(5);
  EXPECT_EQ(alloc.total(), 5u);
  const auto a = alloc.allocate(3);
  EXPECT_EQ(a, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(alloc.free_count(), 2u);
  alloc.release({1});
  // Freed node 1 is the lowest again and is handed out first.
  const auto b = alloc.allocate(2);
  EXPECT_EQ(b, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(alloc.free_count(), 1u);
}

TEST(NodeAllocator, ThrowsOnOverAllocation) {
  sched::NodeAllocator alloc(4);
  alloc.allocate(3);
  EXPECT_THROW(alloc.allocate(2), std::logic_error);
}

TEST(QueueEnums, RoundTripParse) {
  for (const sched::Discipline d :
       {sched::Discipline::kFcfs, sched::Discipline::kPriority,
        sched::Discipline::kBackfill}) {
    const auto parsed = sched::parse_discipline(sched::to_string(d));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, d);
  }
  EXPECT_FALSE(sched::parse_discipline("round_robin").has_value());
}

}  // namespace
