// Scenario "ablation_overhead" — per-call software overhead as the
// dominant factor in unoptimized I/O (DESIGN.md §5.4).
//
// Replays BTIO's unoptimized access pattern (4096 seek+write pairs of
// 2560 B per dump) against the SP-2 model while sweeping the client
// syscall and I/O-node daemon costs.  The simulated I/O time should track
// the per-call overhead almost linearly — the paper's core software
// observation — while a single large write barely notices.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "exp/report.hpp"
#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "mprt/comm.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

struct Result {
  double scattered;  // 4096 x 2560 B seek+write
  double bulk;       // one 10.5 MB write
};

Result run_pattern(double client_ms, double server_ms) {
  simkit::Engine eng;
  hw::MachineConfig cfg = hw::MachineConfig::sp2(16);
  cfg.io.client_syscall_ms = client_ms;
  cfg.io.server_overhead_ms = server_ms;
  hw::Machine machine(eng, cfg);
  pfs::StripedFs fs(machine);
  const pfs::FileId scattered_f = fs.create("scattered");
  const pfs::FileId bulk_f = fs.create("bulk");

  Result res{};
  mprt::Cluster::execute(machine, 16, [&](mprt::Comm& c)
                                          -> simkit::Task<void> {
    // 256 pencils per rank (4096 total), BTIO Class A geometry.
    const simkit::Time t0 = c.engine().now();
    for (int i = 0; i < 256; ++i) {
      const auto off = static_cast<std::uint64_t>(c.rank() * 256 + i);
      co_await fs.pwrite(c.node(), scattered_f, off * 2560 * 16, 2560);
    }
    const simkit::Time t1 = c.engine().now();
    co_await fs.pwrite(c.node(), bulk_f,
                       static_cast<std::uint64_t>(c.rank()) * 655360,
                       655360);
    if (c.rank() == 0) {
      res.scattered = t1 - t0;
      res.bulk = c.engine().now() - t1;
    }
  });
  return res;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  // The scattered pattern has a disk-seek floor (~6.5 s here); per-call
  // software costs surface once they cross it — exactly the regime split
  // between Figure 2's small-P and large-P behavior.
  const double clients[] = {0.1, 1.0};
  const double servers[] = {0.2, 4.0, 16.0};
  const std::vector<Result> results = ctx.map<Result>(
      std::size(clients) * std::size(servers), [&](std::size_t i) {
        return run_pattern(clients[i / std::size(servers)],
                           servers[i % std::size(servers)]);
      });

  expt::Table table({"client ms", "server ms", "scattered 4096x2.5KB (s)",
                     "bulk 16x640KB (s)", "ratio"});
  std::vector<double> scattered;
  double bulk_spread_min = 1e30, bulk_spread_max = 0;
  for (std::size_t ci = 0; ci < std::size(clients); ++ci) {
    for (std::size_t si = 0; si < std::size(servers); ++si) {
      const Result& r = results[ci * std::size(servers) + si];
      scattered.push_back(r.scattered);
      bulk_spread_min = std::min(bulk_spread_min, r.bulk);
      bulk_spread_max = std::max(bulk_spread_max, r.bulk);
      table.add_row({expt::fmt("%.2f", clients[ci]),
                     expt::fmt("%.2f", servers[si]),
                     expt::fmt("%.2f", r.scattered),
                     expt::fmt("%.3f", r.bulk),
                     expt::fmt("%.0fx", r.scattered / r.bulk)});
    }
  }
  ctx.printf("Ablation: per-call overhead vs I/O time (BTIO pattern)\n%s\n",
             (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    const double scattered_growth = scattered.back() / scattered.front();
    const double bulk_growth = bulk_spread_max / bulk_spread_min;
    ctx.expect(scattered_growth > 1.8,
               "past the disk floor, scattered I/O tracks per-call cost");
    ctx.expect(scattered_growth > 2.0 * bulk_growth ||
                   bulk_spread_max < 0.5,
               "bulk I/O is far less sensitive to per-call cost");
  }
}

const scenario::Registration reg{{
    .name = "ablation_overhead",
    .title = "Ablation: per-call software overhead vs I/O time",
    .description =
        "Replays BTIO's many-small-writes pattern while sweeping client "
        "syscall and I/O-node daemon costs. --check asserts small-op I/O "
        "time tracks per-call overhead almost linearly while one large "
        "write barely notices.",
    .default_scale = 1.0,
    .grid = {{"client_ms", {"0.1", "1.0"}},
             {"server_ms", {"0.2", "4.0", "16.0"}}},
    .run = run,
}};

}  // namespace
