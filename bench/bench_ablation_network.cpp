// Scenario "ablation_network" — network model fidelity (DESIGN.md §5.2).
//
// The simulator models endpoint (NIC) contention plus per-hop latency,
// not per-link wormhole contention.  This bench quantifies how much each
// component matters for the exchange phase of collective I/O: it times a
// 32-rank alltoallv while sweeping hop latency and NIC bandwidth.
// Expected: bandwidth dominates by orders of magnitude; hop latency is a
// small correction — which is why endpoint contention is the right
// fidelity class for these studies.
#include <cmath>
#include <cstdio>

#include "exp/report.hpp"
#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

double run_exchange(double hop_us, double bw_mb) {
  simkit::Engine eng;
  hw::MachineConfig cfg = hw::MachineConfig::paragon_large(32, 12);
  cfg.net.per_hop_latency_us = hop_us;
  cfg.net.link_mb_per_s = bw_mb;
  hw::Machine machine(eng, cfg);
  return mprt::Cluster::execute(machine, 32, [](mprt::Comm& c)
                                                 -> simkit::Task<void> {
    // Each rank ships 64 KB to every other rank (a 64 MB array
    // redistribution).
    std::vector<std::uint64_t> sizes(static_cast<std::size_t>(c.size()),
                                     64 * 1024);
    std::vector<std::span<const std::byte>> no_payloads;
    auto msgs = co_await mprt::alltoallv(c, sizes, no_payloads);
    (void)msgs;
  });
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  struct Point {
    double hop_us;
    double bw_mb;
  };
  // base, no_hops, slow_hops, slow_nic.
  const Point pts[] = {{0.6, 70.0}, {0.0, 70.0}, {6.0, 70.0}, {0.6, 17.5}};
  const std::vector<double> times =
      ctx.map<double>(std::size(pts), [&](std::size_t i) {
        return run_exchange(pts[i].hop_us, pts[i].bw_mb);
      });
  const double base = times[0];
  const double no_hops = times[1];
  const double slow_hops = times[2];
  const double slow_nic = times[3];

  expt::Table table({"hop latency us", "NIC MB/s", "alltoallv 32x64KB (s)"});
  table.add_row({"0.0", "70", expt::fmt("%.4f", no_hops)});
  table.add_row({"0.6 (preset)", "70", expt::fmt("%.4f", base)});
  table.add_row({"6.0", "70", expt::fmt("%.4f", slow_hops)});
  table.add_row({"0.6", "17.5", expt::fmt("%.4f", slow_nic)});
  ctx.printf("Ablation: exchange-phase sensitivity to network "
             "parameters\n%s\n",
             (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(std::abs(no_hops - base) / base < 0.05,
               "hop latency is a <5% effect at preset values");
    ctx.expect(slow_nic > 3.0 * base,
               "NIC bandwidth is a first-order effect (4x slower link)");
    ctx.expect(slow_hops < 1.5 * base,
               "even 10x hop latency stays a second-order effect");
  }
}

const scenario::Registration reg{{
    .name = "ablation_network",
    .title = "Ablation: exchange-phase network-parameter sensitivity",
    .description =
        "Times a 32-rank alltoallv while zeroing hop latency or choking "
        "NIC bandwidth. --check asserts endpoint bandwidth dominates by "
        "orders of magnitude — the justification for the simulator's "
        "endpoint-contention fidelity class.",
    .default_scale = 1.0,
    .grid = {{"point", {"base", "no_hops", "slow_hops", "slow_nic"}}},
    .run = run,
}};

}  // namespace
