// Reproduces Figure 4: SCF 3.0 (MEDIUM) execution time for different
// percentages of disk-cached integrals, on 16 and 64 I/O nodes.
//
// Paper findings: (a) the I/O-node count is NOT very effective for this
// application; (b) at 0% cached (full recompute) adding processors helps
// a lot; at 100% cached (full disk) it hardly matters; (c) on this
// platform caching more integrals beats adding processors.
#include <cstdio>
#include <vector>

#include "apps/scf3.hpp"
#include "exp/metrics_run.hpp"
#include "exp/options.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  expt::Options opt(/*default_scale=*/1.0);
  opt.parse(argc, argv);
  expt::MetricsRun mrun(opt);

  const std::vector<double> cached = {0, 25, 50, 75, 90, 100};
  const std::vector<int> procs = {32, 64, 128, 256};

  double exec_0_32 = 0, exec_0_256 = 0, exec_100_32 = 0, exec_100_256 = 0;
  double exec_90_32_io64 = 0, exec_90_256_io64 = 0, exec_16io_sum = 0,
         exec_64io_sum = 0;
  for (std::size_t io : {std::size_t{16}, std::size_t{64}}) {
    expt::Table table({"cached %", "P=32", "P=64", "P=128", "P=256"});
    for (double f : cached) {
      std::vector<std::string> row = {expt::fmt("%.0f", f)};
      for (int p : procs) {
        apps::Scf30Config cfg;
        cfg.nprocs = p;
        cfg.io_nodes = io;
        cfg.cached_percent = f;
        cfg.n_basis = 140;  // MEDIUM
        cfg.iterations = 10;
        cfg.scale = opt.scale;
        const apps::RunResult r = apps::run_scf30(cfg);
        row.push_back(expt::fmt_s(r.exec_time));
        if (io == 16 && f == 0 && p == 32) exec_0_32 = r.exec_time;
        if (io == 16 && f == 0 && p == 256) exec_0_256 = r.exec_time;
        if (io == 16 && f == 100 && p == 32) exec_100_32 = r.exec_time;
        if (io == 16 && f == 100 && p == 256) exec_100_256 = r.exec_time;
        if (io == 16 && f == 90 && p == 32) exec_90_32_io64 = r.exec_time;
        if (io == 16 && f == 90 && p == 256) exec_90_256_io64 = r.exec_time;
        if (io == 16) exec_16io_sum += r.exec_time;
        if (io == 64) exec_64io_sum += r.exec_time;
      }
      table.add_row(row);
    }
    std::printf(
        "Figure 4%s: SCF 3.0 MEDIUM execution time (s), %zu I/O nodes\n%s\n",
        io == 16 ? "a" : "b", io,
        (opt.csv ? table.csv() : table.str()).c_str());
  }

  mrun.finish();
  if (opt.metrics) {
    std::printf("%s", expt::metrics_report(mrun.registry).c_str());
  }

  if (opt.check) {
    expt::Checker chk;
    chk.expect(exec_0_32 / exec_0_256 > 3.0,
               "full recompute (0%) scales strongly with processors");
    chk.expect(exec_100_32 / exec_100_256 < 2.0,
               "full disk (100%) is insensitive to processors");
    chk.expect(exec_100_32 < exec_0_32,
               "caching beats recomputation on this platform (paper §4.3)");
    // The paper states this for its 64-I/O-node runs; in our model the
    // 64-node partition's caches absorb the MEDIUM working set, so the
    // read-gated regime appears on the 16-node partition instead (see
    // EXPERIMENTS.md).
    chk.expect(exec_90_32_io64 / exec_90_256_io64 < 2.0,
               "~90% cached: 32 -> 256 procs gives no big gain (paper)");
    chk.expect(exec_16io_sum / exec_64io_sum < 2.0,
               "I/O-node factor stays below the >3x swings of cached%/procs");
    return chk.exit_code();
  }
  return 0;
}
