// Scenario "fig4" — reproduces Figure 4: SCF 3.0 (MEDIUM) execution time
// for different percentages of disk-cached integrals, on 16 and 64 I/O
// nodes.
//
// Paper findings: (a) the I/O-node count is NOT very effective for this
// application; (b) at 0% cached (full recompute) adding processors helps
// a lot; at 100% cached (full disk) it hardly matters; (c) on this
// platform caching more integrals beats adding processors.
#include <cstdio>
#include <vector>

#include "apps/scf3.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "scenario/scenario.hpp"

namespace {

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<double> cached = {0, 25, 50, 75, 90, 100};
  const std::vector<int> procs = {32, 64, 128, 256};
  const std::vector<std::size_t> ios = {16, 64};

  const std::size_t per_io = cached.size() * procs.size();
  const std::vector<double> exec =
      ctx.map<double>(ios.size() * per_io, [&](std::size_t i) {
        apps::Scf30Config cfg;
        cfg.nprocs = procs[i % procs.size()];
        cfg.io_nodes = ios[i / per_io];
        cfg.cached_percent = cached[(i / procs.size()) % cached.size()];
        cfg.n_basis = 140;  // MEDIUM
        cfg.iterations = 10;
        cfg.scale = opt.scale;
        return apps::run_scf30(cfg).exec_time;
      });

  double exec_0_32 = 0, exec_0_256 = 0, exec_100_32 = 0, exec_100_256 = 0;
  double exec_90_32_io64 = 0, exec_90_256_io64 = 0, exec_16io_sum = 0,
         exec_64io_sum = 0;
  for (std::size_t ioi = 0; ioi < ios.size(); ++ioi) {
    const std::size_t io = ios[ioi];
    expt::Table table({"cached %", "P=32", "P=64", "P=128", "P=256"});
    for (std::size_t fi = 0; fi < cached.size(); ++fi) {
      const double f = cached[fi];
      std::vector<std::string> row = {expt::fmt("%.0f", f)};
      for (std::size_t pi = 0; pi < procs.size(); ++pi) {
        const int p = procs[pi];
        const double e =
            exec[ioi * per_io + fi * procs.size() + pi];
        row.push_back(expt::fmt_s(e));
        if (io == 16 && f == 0 && p == 32) exec_0_32 = e;
        if (io == 16 && f == 0 && p == 256) exec_0_256 = e;
        if (io == 16 && f == 100 && p == 32) exec_100_32 = e;
        if (io == 16 && f == 100 && p == 256) exec_100_256 = e;
        if (io == 16 && f == 90 && p == 32) exec_90_32_io64 = e;
        if (io == 16 && f == 90 && p == 256) exec_90_256_io64 = e;
        if (io == 16) exec_16io_sum += e;
        if (io == 64) exec_64io_sum += e;
      }
      table.add_row(row);
    }
    ctx.printf(
        "Figure 4%s: SCF 3.0 MEDIUM execution time (s), %zu I/O nodes\n%s\n",
        io == 16 ? "a" : "b", io,
        (opt.csv ? table.csv() : table.str()).c_str());
  }

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(exec_0_32 / exec_0_256 > 3.0,
               "full recompute (0%) scales strongly with processors");
    ctx.expect(exec_100_32 / exec_100_256 < 2.0,
               "full disk (100%) is insensitive to processors");
    ctx.expect(exec_100_32 < exec_0_32,
               "caching beats recomputation on this platform (paper §4.3)");
    // The paper states this for its 64-I/O-node runs; in our model the
    // 64-node partition's caches absorb the MEDIUM working set, so the
    // read-gated regime appears on the 16-node partition instead (see
    // EXPERIMENTS.md).
    ctx.expect(exec_90_32_io64 / exec_90_256_io64 < 2.0,
               "~90% cached: 32 -> 256 procs gives no big gain (paper)");
    ctx.expect(exec_16io_sum / exec_64io_sum < 2.0,
               "I/O-node factor stays below the >3x swings of cached%/procs");
  }
}

const scenario::Registration reg{{
    .name = "fig4",
    .title = "Figure 4: SCF 3.0 cached-integral fraction vs processors",
    .description =
        "Sweeps SCF 3.0's disk-cached integral fraction (0-100%) against "
        "processors and I/O nodes. --check asserts caching more "
        "integrals beats adding processors, and that the I/O-node count "
        "matters little for this application.",
    .default_scale = 1.0,
    .grid = {{"io_nodes", {"16", "64"}},
             {"cached%", {"0", "25", "50", "75", "90", "100"}},
             {"procs", {"32", "64", "128", "256"}}},
    .run = run,
}};

}  // namespace
