// Back-compat shim: each historical bench_<name> binary is the iosim
// driver pinned to one scenario (same flags, same stdout), so existing
// EXPERIMENTS.md command lines and CI goldens keep working.  The scenario
// name is baked in per-target via the IOSIM_ALIAS_SCENARIO define.
#include "scenario/driver.hpp"

#ifndef IOSIM_ALIAS_SCENARIO
#error "IOSIM_ALIAS_SCENARIO must be defined to the scenario name"
#endif

int main(int argc, char** argv) {
  return scenario::alias_main(IOSIM_ALIAS_SCENARIO, argc, argv);
}
