// Scenario "micro_simkit" — micro-benchmarks for the discrete-event
// kernel (google-benchmark): event throughput, spawn/join cost, resource
// contention, channel ops.
#include <benchmark/benchmark.h>

#include "micro_common.hpp"
#include "simkit/simkit.hpp"

namespace {

using simkit::Engine;
using simkit::Task;

void BM_DelayChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    eng.spawn([](Engine& e, int n) -> Task<void> {
      for (int i = 0; i < n; ++i) co_await e.delay(1.0);
    }(eng, n));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DelayChain)->Arg(1000)->Arg(100000);

void BM_SpawnJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    eng.spawn([](Engine& e, int n) -> Task<void> {
      for (int i = 0; i < n; ++i) {
        auto h = e.spawn([](Engine& e2) -> Task<void> {
          co_await e2.delay(0.5);
        }(e));
        co_await h.join();
      }
    }(eng, n));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpawnJoin)->Arg(1000)->Arg(10000);

void BM_ResourceContention(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    simkit::Resource r(eng, 2);
    for (int i = 0; i < waiters; ++i) {
      eng.spawn([](Engine& e, simkit::Resource& r) -> Task<void> {
        for (int k = 0; k < 10; ++k) co_await r.use_for(0.1);
        (void)e;
      }(eng, r));
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * waiters * 10);
}
BENCHMARK(BM_ResourceContention)->Arg(16)->Arg(256);

void BM_ChannelPingPong(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    simkit::Channel<int> a(eng), b(eng);
    eng.spawn([](simkit::Channel<int>& a, simkit::Channel<int>& b,
                 int n) -> Task<void> {
      for (int i = 0; i < n; ++i) {
        a.send(i);
        (void)co_await b.recv();
      }
    }(a, b, n));
    eng.spawn([](simkit::Channel<int>& a, simkit::Channel<int>& b,
                 int n) -> Task<void> {
      for (int i = 0; i < n; ++i) {
        int v = co_await a.recv();
        b.send(v + 1);
      }
    }(a, b, n));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000)->Arg(100000);

void run(scenario::Context& ctx) {
  bench::run_micro(
      ctx,
      "^BM_(DelayChain|SpawnJoin|ResourceContention|ChannelPingPong)/");
  ctx.finish_metrics();
}

const scenario::Registration reg{{
    .name = "micro_simkit",
    .title = "Micro: discrete-event kernel host-side throughput",
    .description =
        "google-benchmark micros for the simulation kernel itself: event "
        "throughput, spawn/join cost, resource contention, channel ops. "
        "Wall-clock output, so the determinism gates skip it.",
    .default_scale = 0.1,
    .grid = {},
    .wallclock = true,
    .run = run,
}};

}  // namespace
