// Scenario "server_crash_durability" — what a write ack is worth when
// the I/O node under it fail-stops.
//
// One client streams a shuffled burst of stripe-unit writes (every 8th
// straddles a stripe boundary, so some acks are multi-piece groups) at a
// 4-node striped FS whose servers run the bounded writeback pool with
// the watermark set so nothing drains in the background: every
// acked-but-unflushed block sits in node memory until a barrier, a
// close, or a crash decides its fate.  The grid crosses the four
// iosrv::DurabilityPolicy levels with three fates for I/O node 1 —
// none, a plain fail-stop crash, and a scrubbing (power-loss) crash —
// and the client reads everything back after the reboot under a
// per-point audit::Ledger, so the table shows both what each policy
// paid up front (write-phase span) and what it lost (blocks, bytes,
// audit violations).
//
// The shuffled write order is load-bearing: it makes write_through pay
// the in-place seek per ack while journaled's redo log stays a
// sequential append, which is exactly the cost gap the policy ladder
// trades on (write_through >= journaled >= ordered_drain >=
// write_behind on the fault-free row).
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "exp/table.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "iosrv/config.hpp"
#include "pario/resilient.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::size_t kComputeNodes = 8;
constexpr std::size_t kIoNodes = 4;
// Node 2 serves block b-1 of every straddling pair (b == 7 mod 8 puts
// the pair on nodes 2 and 3), so crashing it splits ack groups: one
// piece lost with the node, the sibling durable at close — torn.
constexpr std::size_t kCrashNode = 2;

// The crash lands after every policy's write phase (write_through's
// seek-heavy burst is the slowest at ~6 s full scale) and the read-back
// starts after the reboot, so the loss window is purely
// "acked-but-unflushed at the crash edge".
constexpr simkit::Time kCrashTime = 8.0;
constexpr simkit::Time kRebootTime = 10.0;
constexpr simkit::Time kReadStart = 11.0;

constexpr const char* kPolicyNames[] = {"write_behind", "write_through",
                                        "ordered_drain", "journaled"};
constexpr iosrv::DurabilityPolicy kPolicies[] = {
    iosrv::DurabilityPolicy::kWriteBehind,
    iosrv::DurabilityPolicy::kWriteThrough,
    iosrv::DurabilityPolicy::kOrderedDrain,
    iosrv::DurabilityPolicy::kJournaled,
};
constexpr const char* kFaultNames[] = {"none", "crash", "scrub"};

struct PointResult {
  double write_span = 0.0;  // first write -> last ack (+ barrier)
  double read_span = 0.0;
  std::uint64_t acked_writes = 0;
  std::uint64_t lost_blocks = 0;
  std::uint64_t lost_bytes = 0;
  std::uint64_t journal_replayed = 0;
  std::uint64_t journal_appends = 0;
  std::uint64_t cache_invalidations = 0;
  audit::Totals audit;
};

/// Deterministic Fisher-Yates on a minstd LCG (std::shuffle's draw
/// order is implementation-defined; goldens need bit-stable output).
std::vector<std::uint64_t> shuffled_blocks(std::uint64_t n) {
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), std::uint64_t{0});
  std::uint64_t state = 0x1234567;
  for (std::uint64_t i = n; i > 1; --i) {
    state = (state * 48271u) % 2147483647u;
    std::swap(order[i - 1], order[state % i]);
  }
  return order;
}

simkit::Task<void> client(simkit::Engine& eng, pfs::StripedFs& fs,
                          hw::NodeId node, pfs::FileId file,
                          iosrv::DurabilityPolicy policy,
                          std::uint64_t nblocks, PointResult& r) {
  const std::uint64_t su = fs.params().stripe_unit_bytes;
  // The ladder outlives the 2 s outage: if a rescaled run pushes the
  // write phase across the crash window, the client rides it out
  // instead of dying with an unhandled IoError.
  pario::RetryPolicy retry;
  retry.max_attempts = 8;
  retry.backoff_ms = 250.0;
  retry.backoff_multiplier = 2.0;

  const simkit::Time t0 = eng.now();
  for (const std::uint64_t b : shuffled_blocks(nblocks)) {
    // Every 8th block is written as a boundary-straddling piece pair
    // (second half of b-1, first half of b): a multi-piece ack group
    // the auditor must see torn if a crash splits its durability.
    const std::uint64_t off = (b % 8 == 7 && b > 0) ? b * su - su / 2
                                                    : b * su;
    co_await pario::resilient_pwrite(fs, node, file, off, su, {}, retry);
    ++r.acked_writes;
  }
  if (policy == iosrv::DurabilityPolicy::kOrderedDrain) {
    // The policy's whole point: the client-visible barrier that turns
    // "acked" into "durable" before the crash window opens.
    co_await pario::resilient_fsync(fs, node, file, retry);
  }
  r.write_span = eng.now() - t0;

  if (eng.now() < kReadStart) co_await eng.delay(kReadStart - eng.now());
  const simkit::Time t1 = eng.now();
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    co_await pario::resilient_pread(fs, node, file, b * su, su, {}, retry);
  }
  r.read_span = eng.now() - t1;
  // Close force-drains the survivors, settling every ack group so torn
  // pairs (one piece lost with the node, one durable) are flagged.
  co_await fs.close(node, file);
}

PointResult run_once(iosrv::DurabilityPolicy policy, std::size_t fault,
                     double scale) {
  simkit::Engine eng;
  hw::MachineConfig mc =
      hw::MachineConfig::paragon_large(kComputeNodes, kIoNodes);
  // Roomy cache, bounded pool, and a watermark the burst never crosses:
  // dirty blocks stay in memory until fsync/close/crash, which makes the
  // loss window exactly the acked-but-unflushed set.
  mc.io.cache_bytes_per_io_node = 8ULL << 20;
  mc.io.server.writeback.mode = iosrv::WritebackMode::kPool;
  mc.io.server.writeback.pool_blocks = 64;
  mc.io.server.writeback.high_watermark = 0.95;
  mc.io.server.writeback.low_watermark = 0.05;
  mc.io.server.durability.policy = policy;
  mc.io.server.durability.crash_semantics = true;
  hw::Machine machine(eng, mc);

  fault::InjectionPlan plan;
  if (fault != 0) {
    plan.crash_node(kCrashNode, kCrashTime, kRebootTime,
                    /*scrub=*/fault == 2);
  }
  fault::Injector injector(std::move(plan));
  pfs::StripedFs fs(machine, &injector);

  // ~1.1 pieces per block across 4 nodes stays under the 95% watermark
  // (no background drain) and under the pool cap (no ack stalls).
  const std::uint64_t nblocks = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(192.0 * scale), 48, 208);

  PointResult r;
  audit::Ledger ledger;
  {
    audit::Scope audit_scope(ledger);
    const pfs::FileId file = fs.create("burst", /*backed=*/false);
    eng.spawn(client(eng, fs, machine.compute_node(0), file, policy,
                     nblocks, r),
              "client");
    eng.run();
  }
  r.audit = ledger.totals();
  for (std::size_t i = 0; i < kIoNodes; ++i) {
    const pfs::IoNode& n = fs.io_node(i);
    r.lost_blocks += n.lost_dirty_blocks();
    r.lost_bytes += n.lost_bytes();
    r.journal_replayed += n.journal_replayed();
    r.journal_appends += n.journal_appends();
    r.cache_invalidations += n.cache_invalidations();
  }
  return r;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();
  constexpr std::size_t kNP = std::size(kPolicies);
  constexpr std::size_t kNF = std::size(kFaultNames);

  const std::vector<PointResult> res =
      ctx.map<PointResult>(kNP * kNF, [&](std::size_t i) {
        return run_once(kPolicies[i / kNF], i % kNF, opt.scale);
      });
  auto at = [&](std::size_t p, std::size_t f) -> const PointResult& {
    return res[p * kNF + f];
  };

  expt::Table table({"policy", "fault", "write (s)", "read (s)", "acked",
                     "lost blk", "lost KB", "replayed", "lost upd",
                     "stale", "torn", "scrubbed", "viol"});
  for (std::size_t p = 0; p < kNP; ++p) {
    for (std::size_t f = 0; f < kNF; ++f) {
      const PointResult& r = at(p, f);
      table.add_row({kPolicyNames[p], kFaultNames[f],
                     expt::fmt("%.3f", r.write_span),
                     expt::fmt("%.3f", r.read_span),
                     expt::fmt_u64(r.acked_writes),
                     expt::fmt_u64(r.lost_blocks),
                     expt::fmt_u64(r.lost_bytes >> 10),
                     expt::fmt_u64(r.journal_replayed),
                     expt::fmt_u64(r.audit.lost_updates),
                     expt::fmt_u64(r.audit.stale_reads),
                     expt::fmt_u64(r.audit.torn_writes),
                     expt::fmt_u64(r.audit.scrub_destroyed),
                     expt::fmt_u64(r.audit.violations())});
    }
  }
  ctx.printf(
      "Server crash durability: 1 client, %zu I/O nodes, pool writeback, "
      "node %zu %s at t=%.0fs (reboot %.0fs)\n%s\n",
      kIoNodes, kCrashNode, "crashes", kCrashTime, kRebootTime,
      (opt.csv ? table.csv() : table.str()).c_str());

  const PointResult& wb_crash = at(0, 1);
  ctx.printf(
      "Ack is not durability: write_behind loses %llu acked blocks "
      "(%llu KB) to the crash the auditor then sees as %llu stale "
      "reads; the barrier/journal/through policies lose none.\n\n",
      static_cast<unsigned long long>(wb_crash.lost_blocks),
      static_cast<unsigned long long>(wb_crash.lost_bytes >> 10),
      static_cast<unsigned long long>(wb_crash.audit.stale_reads));

  ctx.finish_metrics();

  if (opt.check) {
    bool all_acked = true;
    bool fault_free_clean = true;
    for (std::size_t p = 0; p < kNP; ++p) {
      for (std::size_t f = 0; f < kNF; ++f) {
        all_acked = all_acked && at(p, f).acked_writes > 0 &&
                    at(p, f).acked_writes == at(0, 0).acked_writes;
      }
      fault_free_clean =
          fault_free_clean && at(p, 0).audit.violations() == 0 &&
          at(p, 0).lost_blocks == 0;
    }
    ctx.expect(all_acked, "every policy acks the full burst on every row");
    ctx.expect(fault_free_clean,
               "fault-free rows lose nothing and audit clean");

    const PointResult& wt_crash = at(1, 1);
    const PointResult& od_crash = at(2, 1);
    const PointResult& j_crash = at(3, 1);
    ctx.expect(wb_crash.lost_blocks > 0 && wb_crash.lost_bytes > 0,
               "write_behind loses acked blocks to a plain crash (" +
                   expt::fmt_u64(wb_crash.lost_blocks) + " blocks)");
    ctx.expect(wb_crash.audit.lost_updates == wb_crash.lost_blocks,
               "the auditor sees every lost write_behind update (" +
                   expt::fmt_u64(wb_crash.audit.lost_updates) + " of " +
                   expt::fmt_u64(wb_crash.lost_blocks) + ")");
    ctx.expect(wb_crash.audit.stale_reads > 0,
               "reading a lost block back is flagged as a stale read");
    ctx.expect(wb_crash.audit.torn_writes > 0,
               "a crash splitting a straddling ack group is flagged torn");
    ctx.expect(wt_crash.lost_blocks == 0 &&
                   wt_crash.audit.violations() == 0,
               "write_through never loses an acked byte");
    ctx.expect(od_crash.lost_blocks == 0 &&
                   od_crash.audit.violations() == 0,
               "ordered_drain loses nothing once the barrier returned");
    ctx.expect(j_crash.lost_blocks == 0 &&
                   j_crash.audit.violations() == 0 &&
                   j_crash.journal_replayed > 0,
               "journaled replays the redo log (" +
                   expt::fmt_u64(j_crash.journal_replayed) +
                   " blocks) and loses nothing");

    const PointResult& wt_scrub = at(1, 2);
    const PointResult& j_scrub = at(3, 2);
    ctx.expect(wt_scrub.audit.scrub_destroyed > 0 &&
                   wt_scrub.audit.stale_reads > 0,
               "a scrub destroys even write_through's durable blocks");
    ctx.expect(j_scrub.lost_blocks > 0 && j_scrub.journal_replayed == 0,
               "a scrub takes journaled's redo log with it");

    const double wb_s = at(0, 0).write_span;
    const double wt_s = at(1, 0).write_span;
    const double od_s = at(2, 0).write_span;
    const double j_s = at(3, 0).write_span;
    ctx.expect(wt_s >= j_s && j_s >= od_s && od_s > wb_s,
               "up-front cost orders write_through >= journaled >= "
               "ordered_drain > write_behind (" +
                   expt::fmt("%.3f", wt_s) + " / " +
                   expt::fmt("%.3f", j_s) + " / " +
                   expt::fmt("%.3f", od_s) + " / " +
                   expt::fmt("%.3f", wb_s) + " s)");
  }
}

const scenario::Registration reg{{
    .name = "server_crash_durability",
    .title = "Durability policies under I/O-node fail-stop and scrub",
    .description =
        "Crosses the four write-ack durability policies with a planned "
        "crash / scrubbing crash of one I/O server, reading the burst "
        "back under the audit ledger. --check asserts write_behind "
        "loses acked blocks (and the auditor flags every one), the "
        "other policies lose none on a plain crash, journaled replays "
        "its log, and the up-front write cost orders write_through >= "
        "journaled >= ordered_drain > write_behind.",
    .default_scale = 1.0,
    .grid = {{"policy",
              {"write_behind", "write_through", "ordered_drain",
               "journaled"}},
             {"fault", {"none", "crash", "scrub"}}},
    .run = run,
}};

}  // namespace
