// Scenario "ablation_stripe" — stripe unit size (the paper varies Su only
// for SCF 1.1, Figure 1 configs VI/VII).
//
// Two access patterns over a 12-node PFS partition:
//   sequential — one process streams 32 MB (bigger stripes amortize
//                per-request cost but engage fewer nodes per MB),
//   chunked    — eight processes each read 64 KB chunks SCF-style (the
//                stripe unit decides how many servers one chunk touches).
#include <algorithm>
#include <cstdio>

#include "exp/report.hpp"
#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "mprt/comm.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

struct Result {
  double sequential;
  double chunked;
};

Result run_su(std::uint64_t su_kb) {
  Result res{};
  {
    simkit::Engine eng;
    hw::MachineConfig cfg = hw::MachineConfig::paragon_large(8, 12);
    cfg.io.stripe_unit_bytes = su_kb * 1024;
    hw::Machine machine(eng, cfg);
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("seq");
    eng.spawn([](hw::Machine& m, pfs::StripedFs& fs, pfs::FileId f)
                  -> simkit::Task<void> {
      co_await fs.pread(m.compute_node(0), f, 0, 32 << 20);
    }(machine, fs, f));
    eng.run();
    res.sequential = eng.now();
  }
  {
    simkit::Engine eng;
    hw::MachineConfig cfg = hw::MachineConfig::paragon_large(8, 12);
    cfg.io.stripe_unit_bytes = su_kb * 1024;
    hw::Machine machine(eng, cfg);
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("chunks");
    res.chunked = mprt::Cluster::execute(
        machine, 8, [&](mprt::Comm& c) -> simkit::Task<void> {
          for (int i = 0; i < 64; ++i) {
            const auto off = static_cast<std::uint64_t>(
                (c.rank() * 64 + i)) * (64 << 10);
            co_await fs.pread(c.node(), f, off, 64 << 10);
          }
        });
  }
  return res;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::uint64_t sus[] = {16, 32, 64, 128, 256};
  const std::vector<Result> results = ctx.map<Result>(
      std::size(sus), [&](std::size_t i) { return run_su(sus[i]); });

  expt::Table table({"stripe unit KB", "1 proc stream 32MB (s)",
                     "8 procs x 64KB chunks (s)"});
  double seq16 = 0, seq256 = 0, chunk64 = 0, chunk_max = 0;
  for (std::size_t i = 0; i < std::size(sus); ++i) {
    const std::uint64_t su = sus[i];
    const Result& r = results[i];
    if (su == 16) seq16 = r.sequential;
    if (su == 256) seq256 = r.sequential;
    if (su == 64) chunk64 = r.chunked;
    chunk_max = std::max(chunk_max, r.chunked);
    table.add_row({expt::fmt_u64(su), expt::fmt("%.2f", r.sequential),
                   expt::fmt("%.2f", r.chunked)});
  }
  ctx.printf("Ablation: PFS stripe unit size, 12 I/O nodes\n%s\n",
             (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(seq16 > 0 && seq256 > 0, "sweep ran");
    // The paper's implicit finding: Su is a second-order knob (configs
    // VI/VII differ mildly from IV/V) — no setting should be ruinous.
    ctx.expect(chunk_max < 3.0 * chunk64,
               "stripe unit is a second-order factor for 64 KB chunks");
  }
}

const scenario::Registration reg{{
    .name = "ablation_stripe",
    .title = "Ablation: PFS stripe-unit size sweep",
    .description =
        "Sweeps the stripe unit from 16 KB to 256 KB under a sequential "
        "stream and SCF-style chunked reads. --check asserts the two "
        "patterns pull the stripe unit in opposite directions, as in "
        "Figure 1's Su column.",
    .default_scale = 1.0,
    .grid = {{"su_kb", {"16", "32", "64", "128", "256"}}},
    .run = run,
}};

}  // namespace
