// Scenario "server_readahead" — pattern-driven server-side read-ahead
// (iosrv::ReadAheadConfig): hit/waste tradeoff across access patterns.
//
// A client reads a 32 MB file piece by piece in three orders —
// sequential, constant-stride, and shuffled — with read-ahead off and
// on.  The server's PatternTracker only arms prefetching after min_run
// same-stride accesses per (client, file) stream, so:
//   * sequential and strided runs detect quickly and prefetching
//     overlaps disk reads with the request/response path (faster, high
//     prefetch-hit rate, bounded waste),
//   * a shuffled order never forms a run, so read-ahead must do (almost)
//     nothing: no speculation, no waste, unchanged elapsed time — the
//     "first, do no harm" half of the contract.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "iosrv/config.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::uint64_t kPiece = 64 * 1024;
constexpr std::uint64_t kFileMiB = 32;

enum class Pattern : std::size_t { kSequential, kStrided, kRandom };
constexpr const char* kPatternNames[] = {"sequential", "strided", "random"};

struct Result {
  double elapsed = 0.0;
  std::uint64_t disk_reads = 0;
  std::uint64_t ra_issued = 0;
  std::uint64_t ra_hits = 0;  // resident + late (in-flight join)
  std::uint64_t ra_waste = 0;
};

/// The piece visit order for a pattern, deterministic by construction.
std::vector<std::uint64_t> piece_order(Pattern p, std::uint64_t pieces,
                                       std::uint64_t seed) {
  std::vector<std::uint64_t> order(pieces);
  std::iota(order.begin(), order.end(), 0);
  switch (p) {
    case Pattern::kSequential:
      break;
    case Pattern::kStrided: {
      // Lane-major: 0, 4, 8, ..., 1, 5, 9, ... — long constant-stride
      // runs with one stride reset per lane.
      std::vector<std::uint64_t> strided;
      strided.reserve(pieces);
      for (std::uint64_t lane = 0; lane < 4; ++lane) {
        for (std::uint64_t i = lane; i < pieces; i += 4) {
          strided.push_back(i);
        }
      }
      order = std::move(strided);
      break;
    }
    case Pattern::kRandom: {
      // Fisher-Yates with a splitmix-style mixer: reproducible shuffle.
      std::uint64_t s = seed * 0x9E3779B97f4A7C15ULL + 1;
      for (std::uint64_t i = pieces - 1; i > 0; --i) {
        s += 0x9E3779B97f4A7C15ULL;
        std::uint64_t z = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        std::swap(order[i], order[(z ^ (z >> 31)) % (i + 1)]);
      }
      break;
    }
  }
  return order;
}

Result run_one(Pattern pattern, bool readahead, double scale,
               std::uint64_t seed) {
  simkit::Engine eng;
  hw::MachineConfig cfg = hw::MachineConfig::paragon_small(4, 2);
  cfg.io.server.readahead.enabled = readahead;
  hw::Machine machine(eng, cfg);
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("trace");
  const std::uint64_t pieces = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          static_cast<double>((kFileMiB << 20) / kPiece) *
          std::min(scale, 4.0)),
      64);
  const std::vector<std::uint64_t> order =
      piece_order(pattern, pieces, seed);
  Result res;
  eng.spawn([](simkit::Engine& e, hw::Machine& m, pfs::StripedFs& fs,
               pfs::FileId f, const std::vector<std::uint64_t>& order,
               Result& out) -> simkit::Task<void> {
    const auto n = m.compute_node(0);
    const simkit::Time t0 = e.now();
    for (std::uint64_t piece : order) {
      co_await fs.pread(n, f, piece * kPiece, kPiece);
    }
    out.elapsed = e.now() - t0;
    for (std::size_t i = 0; i < fs.io_node_count(); ++i) {
      const pfs::IoNode& node = fs.io_node(i);
      out.disk_reads += node.disk_reads();
      out.ra_issued += node.readahead_issued();
      out.ra_hits += node.readahead_hits() + node.readahead_late_hits();
      out.ra_waste += node.readahead_waste();
    }
  }(eng, machine, fs, f, order, res));
  eng.run();
  return res;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<Result> results =
      ctx.map<Result>(std::size(kPatternNames) * 2, [&](std::size_t i) {
        return run_one(static_cast<Pattern>(i / 2), (i % 2) == 1,
                       opt.scale, opt.seed);
      });
  auto at = [&](Pattern p, bool ra) -> const Result& {
    return results[static_cast<std::size_t>(p) * 2 + (ra ? 1 : 0)];
  };

  expt::Table table({"pattern", "read-ahead", "elapsed (s)", "disk reads",
                     "ra issued", "ra hits", "ra waste"});
  for (std::size_t p = 0; p < std::size(kPatternNames); ++p) {
    for (bool ra : {false, true}) {
      const Result& r = at(static_cast<Pattern>(p), ra);
      table.add_row({kPatternNames[p], ra ? "on" : "off",
                     expt::fmt("%.2f", r.elapsed),
                     expt::fmt_u64(r.disk_reads),
                     expt::fmt_u64(r.ra_issued), expt::fmt_u64(r.ra_hits),
                     expt::fmt_u64(r.ra_waste)});
    }
  }
  ctx.printf(
      "Server read-ahead: hit/waste tradeoff by access pattern "
      "(min_run=%d, degree=%u, budget=%u)\n%s\n",
      iosrv::ReadAheadConfig{}.min_run, iosrv::ReadAheadConfig{}.degree,
      iosrv::ReadAheadConfig{}.max_inflight,
      (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();

  if (opt.check) {
    const Result& seq_off = at(Pattern::kSequential, false);
    const Result& seq_on = at(Pattern::kSequential, true);
    const Result& str_off = at(Pattern::kStrided, false);
    const Result& str_on = at(Pattern::kStrided, true);
    const Result& rnd_off = at(Pattern::kRandom, false);
    const Result& rnd_on = at(Pattern::kRandom, true);
    ctx.expect(seq_on.elapsed < seq_off.elapsed,
               "read-ahead speeds up the sequential scan (" +
                   expt::fmt("%.2f", seq_on.elapsed) + " vs " +
                   expt::fmt("%.2f", seq_off.elapsed) + " s)");
    ctx.expect(str_on.elapsed < str_off.elapsed,
               "read-ahead follows constant strides, not just stride 1");
    ctx.expect(seq_on.ra_hits * 2 > seq_on.ra_issued,
               "most sequential prefetches are used (hit rate > 50%)");
    ctx.expect(seq_on.ra_waste * 5 < seq_on.ra_issued + 1,
               "sequential prefetch waste stays under 20%");
    ctx.expect(rnd_on.ra_issued * 10 < rnd_off.disk_reads + 10,
               "a shuffled order arms (almost) no speculation");
    ctx.expect(rnd_on.elapsed <= rnd_off.elapsed * 1.02,
               "read-ahead does no harm to the random workload (" +
                   expt::fmt("%.2f", rnd_on.elapsed) + " vs " +
                   expt::fmt("%.2f", rnd_off.elapsed) + " s)");
  }
}

const scenario::Registration reg{{
    .name = "server_readahead",
    .title = "I/O-server read-ahead: sequential/strided win, random no-harm",
    .description =
        "Reads one file sequentially, strided, and shuffled with server "
        "read-ahead off and on. --check asserts prefetching speeds up the "
        "detected runs with bounded waste and leaves the random order "
        "untouched (no runs, no speculation, no slowdown).",
    .default_scale = 1.0,
    .grid = {{"pattern", {"sequential", "strided", "random"}},
             {"readahead", {"off", "on"}}},
    .run = run,
}};

}  // namespace
