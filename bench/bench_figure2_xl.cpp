// Scenario "figure2_xl" — the Figure-2 crossover at modern scale.
//
// The paper's Figure 2 shows software optimization (PASSION prefetch on 16
// I/O nodes) beating hardware scaling (64 I/O nodes, unoptimized) up to a
// crossover processor count, beyond which the balanced machine wins.  This
// scenario replays that experiment three orders of magnitude up, on the
// paragon_xl preset (1024-2048 compute nodes, 64-128 I/O servers): the
// "software" axis is the hierarchical two-phase path (two-level leader
// collectives, one aggregator per I/O server) and the "hardware" axis is
// doubling the I/O partition while keeping the flat collectives.
//
// Each step is a collective read of a fixed total volume interleaved over
// all ranks (strong scaling, like the paper's fixed LARGE problem).  Flat
// two-phase pays a per-rank message floor that grows linearly with P (the
// alltoallv touches every pair) plus P small I/O calls.  The hierarchical
// path funnels data through the leaders, and its cost hinges on how the
// leader groups align with the file domains: below scale a group's records
// straddle other groups' domains and the data transits two leader hops,
// so doubling the I/O hardware (flat/128io) wins.  At 2048 nodes the group
// width matches the records-per-domain, every group's data lands in its
// own leader's domain (the alignment ROMIO's cb_config seeks on purpose),
// the leader exchange round carries nothing, and hier/64 overtakes
// flat/128 on half the hardware — Figure 2's crossover shape, three
// orders of magnitude up.
#include <cstdio>
#include <functional>
#include <vector>

#include "exp/report.hpp"
#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "metrics/metrics.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pario/twophase.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

// Fixed total collective volume per step (strong scaling) in 64 KiB
// records, interleaved round-robin so every rank's pieces scatter across
// every aggregator domain.
constexpr std::uint64_t kRecBytes = 64 * 1024;
constexpr std::uint64_t kTotalBytes = 128ULL << 20;
constexpr std::uint64_t kRecs = kTotalBytes / kRecBytes;

std::vector<pario::Extent> step_pieces(int rank, int p, int step) {
  std::vector<pario::Extent> out;
  const std::uint64_t base = static_cast<std::uint64_t>(step) * kTotalBytes;
  std::uint64_t buf = 0;
  for (std::uint64_t i = static_cast<std::uint64_t>(rank); i < kRecs;
       i += static_cast<std::uint64_t>(p)) {
    out.push_back(pario::Extent{base + i * kRecBytes, kRecBytes, buf});
    buf += kRecBytes;
  }
  return out;
}

struct Cell {
  bool hier;
  std::size_t io;
};

struct PointResult {
  double exec = 0.0;
  double a2a_msgs = 0.0;
};

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<int> procs = {1024, 1536, 2048};
  // Column order: flat/64io, hier/64io, flat/128io, hier/128io.
  const std::vector<Cell> cells = {
      {false, 64}, {true, 64}, {false, 128}, {true, 128}};
  // --scale sets the step count (the volume per step is pinned — the
  // crossover position depends on it), so reduced-scale CI smokes keep
  // the full qualitative shape.
  const int steps =
      std::max(1, static_cast<int>(opt.scale * 2.0 + 0.5));

  const std::vector<PointResult> res = ctx.map<PointResult>(
      procs.size() * cells.size(), [&](std::size_t i) {
        const int p = procs[i / cells.size()];
        const Cell& c = cells[i % cells.size()];
        // The mprt.alltoall.* instruments must be readable even without
        // --metrics: install a local registry for the point and fold it
        // into the ambient one (the per-point registry under --metrics)
        // afterwards.
        metrics::Registry* outer = metrics::current();
        metrics::Registry local;
        PointResult out;
        {
          metrics::Scope scope(local);
          simkit::Engine eng;
          hw::Machine machine(
              eng, hw::MachineConfig::paragon_xl(
                       static_cast<std::size_t>(p), c.io));
          pfs::StripedFs fs(machine);
          const pfs::FileId f = fs.create("xl_dump");
          mprt::Cluster cluster(machine, p);
          if (c.hier) {
            // One aggregator (group leader) per I/O server.
            cluster.set_topology(
                {mprt::CollectiveTopology::Kind::kTwoLevel,
                 p / static_cast<int>(c.io)});
          }
          const std::function<simkit::Task<void>(mprt::Comm&)> body =
              [&](mprt::Comm& cm) -> simkit::Task<void> {
            for (int s = 0; s < steps; ++s) {
              auto mine = step_pieces(cm.rank(), p, s);
              co_await pario::TwoPhase::read(cm, fs, f, std::move(mine));
            }
          };
          eng.spawn(cluster.run(body));
          eng.run();
          out.exec = eng.now();
        }
        out.a2a_msgs = static_cast<double>(
            local.counter("mprt.alltoall.msgs").value());
        if (outer) outer->merge(local);
        return out;
      });

  auto at = [&](std::size_t pi, std::size_t ci) -> const PointResult& {
    return res[pi * cells.size() + ci];
  };

  expt::Table table({"procs", "flat/64io exec", "hier/64io exec",
                     "flat/128io exec", "hier/128io exec"});
  expt::Table msgs({"procs", "flat a2a msgs", "hier a2a msgs", "ratio"});
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    table.add_row(
        {expt::fmt_u64(static_cast<unsigned long long>(procs[pi])),
         expt::fmt("%.4f", at(pi, 0).exec),
         expt::fmt("%.4f", at(pi, 1).exec),
         expt::fmt("%.4f", at(pi, 2).exec),
         expt::fmt("%.4f", at(pi, 3).exec)});
    msgs.add_row(
        {expt::fmt_u64(static_cast<unsigned long long>(procs[pi])),
         expt::fmt_u64(static_cast<unsigned long long>(at(pi, 0).a2a_msgs)),
         expt::fmt_u64(static_cast<unsigned long long>(at(pi, 1).a2a_msgs)),
         expt::fmt("%.1f", at(pi, 0).a2a_msgs /
                              std::max(at(pi, 1).a2a_msgs, 1.0))});
  }
  ctx.printf(
      "Figure 2 at scale: collective dump-step time vs compute nodes\n%s\n",
      (opt.csv ? table.csv() : table.str()).c_str());
  ctx.printf("Exchange messages per run (alltoallv traffic)\n%s\n",
             (opt.csv ? msgs.csv() : msgs.str()).c_str());

  // Report the measured crossover between hardware scaling (flat/128io)
  // and software aggregation (hier/64io).
  std::size_t cross = procs.size();
  for (std::size_t pi = 0; pi + 1 < procs.size(); ++pi) {
    if (at(pi, 2).exec <= at(pi, 1).exec &&
        at(pi + 1, 1).exec < at(pi + 1, 2).exec) {
      cross = pi + 1;
    }
  }
  if (cross < procs.size()) {
    ctx.printf("crossover: hier/64io overtakes flat/128io at %d nodes\n",
               procs[cross]);
  } else {
    ctx.printf("crossover: none within the sweep\n");
  }

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    const std::size_t last = procs.size() - 1;
    // Below the crossover, doubling the I/O partition beats software
    // aggregation (hardware wins first, as in Figure 2).
    ctx.expect(at(0, 2).exec < at(0, 1).exec,
               "at 1024 nodes flat/128io beats hier/64io");
    // Past it, aggregation on HALF the I/O hardware wins.
    ctx.expect(at(last, 1).exec < at(last, 2).exec,
               "at 2048 nodes hier/64io beats flat/128io (crossover)");
    ctx.expect(cross < procs.size(),
               "crossover exists within the node sweep");
    // Aggregation must win against flat on equal hardware at scale.
    ctx.expect(at(last, 1).exec < at(last, 0).exec,
               "at 2048 nodes hier/64io beats flat/64io");
    // The aggregator topology's raison d'etre: >= 10x fewer exchange
    // messages than flat at every swept node count.
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
      ctx.expect(at(pi, 0).a2a_msgs >= 10.0 * at(pi, 1).a2a_msgs,
                 "hier cuts alltoallv messages >= 10x vs flat");
    }
  }
}

const scenario::Registration reg{{
    .name = "figure2_xl",
    .title = "Figure 2 at scale: aggregation vs I/O hardware, 1024-2048 "
             "nodes",
    .description =
        "Replays the Figure-2 crossover on the paragon_xl preset: "
        "hierarchical two-phase aggregation on 64 I/O servers vs flat "
        "collectives on 128.  --check asserts the crossover and that the "
        "aggregator topology cuts exchange messages >= 10x.",
    .default_scale = 0.5,
    .grid = {{"procs", {"1024", "1536", "2048"}},
             {"variant",
              {"flat/64io", "hier/64io", "flat/128io", "hier/128io"}}},
    .run = run,
}};

}  // namespace
