// Reproduces Figure 7: BTIO I/O bandwidths, original vs two-phase
// collective, Class A and Class B.
//
// Paper reference points: original 0.97-1.5 MB/s; optimized 6.6-31.4 MB/s.
#include <cstdio>
#include <vector>

#include "apps/btio.hpp"
#include "exp/metrics_run.hpp"
#include "exp/options.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  expt::Options opt(/*default_scale=*/0.25);
  opt.parse(argc, argv);
  expt::MetricsRun mrun(opt);

  const std::vector<int> procs = {4, 16, 36, 64};
  double orig_min = 1e30, orig_max = 0, opt_min = 1e30, opt_max = 0;

  for (char cls : {'A', 'B'}) {
    expt::Table table({"procs", "original MB/s", "optimized MB/s"});
    for (int p : procs) {
      apps::BtioConfig cfg;
      cfg.problem_class = cls;
      cfg.nprocs = p;
      cfg.scale = opt.scale;
      cfg.collective = false;
      const double orig_bw = apps::run_btio(cfg).io_bandwidth_mb_s();
      cfg.collective = true;
      const double opt_bw = apps::run_btio(cfg).io_bandwidth_mb_s();
      orig_min = std::min(orig_min, orig_bw);
      orig_max = std::max(orig_max, orig_bw);
      opt_min = std::min(opt_min, opt_bw);
      opt_max = std::max(opt_max, opt_bw);
      table.add_row({expt::fmt_u64(static_cast<unsigned long long>(p)),
                     expt::fmt_mb(orig_bw), expt::fmt_mb(opt_bw)});
    }
    std::printf("Figure 7 (Class %c): BTIO I/O bandwidth on the SP-2\n%s\n",
                cls, (opt.csv ? table.csv() : table.str()).c_str());
  }
  std::printf("original: %.2f-%.2f MB/s (paper 0.97-1.5);  optimized: "
              "%.2f-%.2f MB/s (paper 6.6-31.4)\n",
              orig_min, orig_max, opt_min, opt_max);

  mrun.finish();
  if (opt.metrics) {
    std::printf("%s", expt::metrics_report(mrun.registry).c_str());
  }

  if (opt.check) {
    expt::Checker chk;
    chk.expect(opt_min > 3.0 * orig_max,
               "optimized bandwidth clearly separated from original");
    chk.expect(orig_max < 6.0, "original bandwidth is single-digit MB/s");
    chk.expect(opt_max > 10.0,
               "optimized bandwidth reaches tens of MB/s");
    return chk.exit_code();
  }
  return 0;
}
