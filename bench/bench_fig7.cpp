// Scenario "fig7" — reproduces Figure 7: BTIO I/O bandwidths, original vs
// two-phase collective, Class A and Class B.
//
// Paper reference points: original 0.97-1.5 MB/s; optimized 6.6-31.4 MB/s.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/btio.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "scenario/scenario.hpp"

namespace {

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<int> procs = {4, 16, 36, 64};
  const std::vector<char> classes = {'A', 'B'};
  struct Point {
    double orig_bw = 0.0;
    double opt_bw = 0.0;
  };
  const std::vector<Point> points = ctx.map<Point>(
      classes.size() * procs.size(), [&](std::size_t i) {
        apps::BtioConfig cfg;
        cfg.problem_class = classes[i / procs.size()];
        cfg.nprocs = procs[i % procs.size()];
        cfg.scale = opt.scale;
        cfg.collective = false;
        const double orig_bw = apps::run_btio(cfg).io_bandwidth_mb_s();
        cfg.collective = true;
        const double opt_bw = apps::run_btio(cfg).io_bandwidth_mb_s();
        return Point{orig_bw, opt_bw};
      });

  double orig_min = 1e30, orig_max = 0, opt_min = 1e30, opt_max = 0;
  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    expt::Table table({"procs", "original MB/s", "optimized MB/s"});
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
      const Point& pt = points[ci * procs.size() + pi];
      orig_min = std::min(orig_min, pt.orig_bw);
      orig_max = std::max(orig_max, pt.orig_bw);
      opt_min = std::min(opt_min, pt.opt_bw);
      opt_max = std::max(opt_max, pt.opt_bw);
      table.add_row(
          {expt::fmt_u64(static_cast<unsigned long long>(procs[pi])),
           expt::fmt_mb(pt.orig_bw), expt::fmt_mb(pt.opt_bw)});
    }
    ctx.printf("Figure 7 (Class %c): BTIO I/O bandwidth on the SP-2\n%s\n",
               classes[ci], (opt.csv ? table.csv() : table.str()).c_str());
  }
  ctx.printf("original: %.2f-%.2f MB/s (paper 0.97-1.5);  optimized: "
             "%.2f-%.2f MB/s (paper 6.6-31.4)\n",
             orig_min, orig_max, opt_min, opt_max);

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(opt_min > 3.0 * orig_max,
               "optimized bandwidth clearly separated from original");
    ctx.expect(orig_max < 6.0, "original bandwidth is single-digit MB/s");
    ctx.expect(opt_max > 10.0,
               "optimized bandwidth reaches tens of MB/s");
  }
}

const scenario::Registration reg{{
    .name = "fig7",
    .title = "Figure 7: BTIO I/O bandwidth, original vs two-phase",
    .description =
        "Measures BTIO I/O bandwidth for Class A and B across processor "
        "counts. --check asserts the order-of-magnitude bandwidth gap "
        "between the original (~1 MB/s band) and two-phase collective "
        "(tens of MB/s) versions.",
    .default_scale = 0.25,
    .grid = {{"class", {"A", "B"}}, {"procs", {"4", "16", "36", "64"}}},
    .run = run,
}};

}  // namespace
