// Scenario "micro_pfs" — micro-benchmarks for the striped file-system
// path: host-side cost of simulated reads/writes, scaling with piece
// count and I/O nodes.
#include <benchmark/benchmark.h>

#include "hw/machine.hpp"
#include "micro_common.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace {

void BM_StripedRead(benchmark::State& state) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::paragon_small(4, 2));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("bench");
    eng.spawn([](simkit::Engine&, hw::Machine& m, pfs::StripedFs& fs,
                 pfs::FileId f, std::uint64_t n) -> simkit::Task<void> {
      co_await fs.pread(m.compute_node(0), f, 0, n);
    }(eng, machine, fs, f, bytes));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_StripedRead)->Arg(64 << 10)->Arg(1 << 20)->Arg(16 << 20);

void BM_SmallScatteredWrites(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simkit::Engine eng;
    hw::Machine machine(eng, hw::MachineConfig::sp2(4));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("bench");
    eng.spawn([](hw::Machine& m, pfs::StripedFs& fs, pfs::FileId f,
                 int n) -> simkit::Task<void> {
      for (int i = 0; i < n; ++i) {
        co_await fs.pwrite(m.compute_node(0), f,
                           static_cast<std::uint64_t>(i) * 8192, 2048);
      }
    }(machine, fs, f, count));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_SmallScatteredWrites)->Arg(256)->Arg(4096);

void BM_ConcurrentClients(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simkit::Engine eng;
    hw::Machine machine(
        eng, hw::MachineConfig::paragon_large(
                 static_cast<std::size_t>(clients), 12));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("bench");
    for (int c = 0; c < clients; ++c) {
      eng.spawn([](hw::Machine& m, pfs::StripedFs& fs, pfs::FileId f,
                   int c) -> simkit::Task<void> {
        co_await fs.pread(m.compute_node(static_cast<std::size_t>(c)), f,
                          static_cast<std::uint64_t>(c) << 24, 1 << 20);
      }(machine, fs, f, c));
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_ConcurrentClients)->Arg(4)->Arg(64);

void run(scenario::Context& ctx) {
  bench::run_micro(
      ctx, "^BM_(StripedRead|SmallScatteredWrites|ConcurrentClients)/");
  ctx.finish_metrics();
}

const scenario::Registration reg{{
    .name = "micro_pfs",
    .title = "Micro: striped file-system host-side cost",
    .description =
        "google-benchmark micros for the striped file-system path: "
        "host-side cost of simulated reads/writes as piece count and I/O "
        "nodes scale. Wall-clock output, so the determinism gates skip "
        "it.",
    .default_scale = 0.1,
    .grid = {},
    .wallclock = true,
    .run = run,
}};

}  // namespace
