// The single experiment driver: every paper table/figure, ablation, fault
// study, and micro-benchmark is a registered scenario.
//
//   iosim list
//   iosim run <name>... [--check] [--csv] [--scale=F | --full] [-j N]
//             [--metrics-out=PATH] [--golden=PATH] [--repeat=K] [--seed=N]
//   iosim run --all --check -j$(nproc)
#include "scenario/driver.hpp"

int main(int argc, char** argv) { return scenario::iosim_main(argc, argv); }
