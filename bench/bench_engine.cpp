// Scenario "engine_bench" — the simulator benchmarking itself
// (ROADMAP: "Engine throughput").
//
// Five fixed synthetic workloads exercise the hot paths every
// simulation is made of — the timer wheel, resource queueing, trigger
// broadcast, process lifecycle churn, and a thousand-node-sized event
// soup — and report host events/second from
// Engine::events_processed().  The numbers are HOST measurements
// (wallclock=true: excluded from golden/repeat gates, run serially);
// CI runs this scenario with --metrics-out=BENCH_iosim.json, uploads
// the file, and gates it against bench/baseline/BENCH_iosim.json via
// tools/bench_compare.py (median of 3 runs, fail on >25% regression).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exp/table.hpp"
#include "metrics/metrics.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"
#include "simkit/resource.hpp"
#include "simkit/rng.hpp"
#include "simkit/trigger.hpp"

namespace {

struct Result {
  std::uint64_t events = 0;
  double wall_s = 0.0;
  std::uint64_t clamped = 0;

  double events_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  }
};

/// 256 processes each sleeping through `rounds` staggered delays: pure
/// timer-wheel churn (schedule + pop dominates).
void wl_timer(simkit::Engine& eng, int rounds) {
  for (int p = 0; p < 256; ++p) {
    eng.spawn([](simkit::Engine& e, int p, int n) -> simkit::Task<void> {
      for (int r = 0; r < n; ++r) {
        co_await e.delay(1e-4 + 1e-7 * static_cast<double>(p));
      }
    }(eng, p, rounds));
  }
}

/// 64 coroutines contending for a 4-slot resource: the FIFO grant path
/// (suspend, queue, hand-off) every PFS daemon and disk arm lives on.
void wl_resource(simkit::Engine& eng, simkit::Resource& res, int rounds) {
  for (int p = 0; p < 64; ++p) {
    eng.spawn([](simkit::Resource& r, int n) -> simkit::Task<void> {
      for (int i = 0; i < n; ++i) {
        co_await r.use_for(1e-5);
      }
    }(res, rounds));
  }
}

/// One firer broadcasting to 128 waiters per round: the Trigger wake-up
/// fan-out the drain/checkpoint barriers use.
void wl_trigger(simkit::Engine& eng,
                std::vector<std::shared_ptr<simkit::Trigger>>& slots,
                int rounds) {
  slots.assign(rounds, nullptr);
  for (auto& t : slots) t = std::make_shared<simkit::Trigger>();
  for (int w = 0; w < 128; ++w) {
    eng.spawn([](std::vector<std::shared_ptr<simkit::Trigger>>& s)
                  -> simkit::Task<void> {
      for (auto& t : s) co_await t->wait();
    }(slots));
  }
  eng.spawn([](simkit::Engine& e,
               std::vector<std::shared_ptr<simkit::Trigger>>& s)
                -> simkit::Task<void> {
    for (auto& t : s) {
      co_await e.delay(1e-5);
      t->fire(e);
    }
  }(eng, slots));
}

/// 64 parents each spawn + join `rounds` short-lived children: process
/// lifecycle churn (completion records, coroutine frames, names) — the
/// path platform job streams and hedged reads live on.
void wl_spawn(simkit::Engine& eng, int rounds) {
  for (int p = 0; p < 64; ++p) {
    eng.spawn([](simkit::Engine& e, int n) -> simkit::Task<void> {
      for (int i = 0; i < n; ++i) {
        auto h = e.spawn([](simkit::Engine& e2) -> simkit::Task<void> {
          co_await e2.delay(1e-6);
        }(e), "churn.child");
        co_await h.join();
      }
    }(eng, rounds), "churn.parent");
  }
}

/// The thousand-node-preset shape: `n` processes holding jittered
/// timers, so the pending-event set stays ~n for the whole run, plus a
/// 1/64 slice of far-future arming events (the horizon path fault
/// injection uses).  This is where a comparison-heap scheduler goes
/// cache-cold: every push/pop walks log2(n) scattered heap levels.
void wl_soup(simkit::Engine& eng, int nprocs) {
  simkit::Rng rng(42);
  for (int p = 0; p < nprocs; ++p) {
    const double base = 1e-4 * (1.0 + rng.uniform());
    const double jit = 1e-7 * static_cast<double>(p % 97);
    eng.spawn([](simkit::Engine& e, double b, double j) -> simkit::Task<void> {
      for (int r = 0; r < 6; ++r) co_await e.delay(b + j * r);
    }(eng, base, jit), "soup.timer");
    if (p % 64 == 0) {
      // Far-future arming, fault-injector style: parked well past the
      // timer horizon until the tail of the run.
      eng.spawn_at(1.0 + 1e-4 * static_cast<double>(p),
                   [](simkit::Engine& e) -> simkit::Task<void> {
                     co_await e.delay(1e-5);
                   }(eng),
                   "soup.arm");
    }
  }
}

struct Workload {
  const char* name;
  int rounds;  // at scale 1.0 (timer_soup: process count)
};

constexpr Workload kWorkloads[] = {
    {"timer_wheel", 2000},   {"resource_fifo", 4000}, {"trigger_fanout", 2000},
    {"spawn_churn", 2000},   {"timer_soup", 200000},
};

Result run_one(std::size_t wl, double scale) {
  const int rounds = std::max(
      1, static_cast<int>(kWorkloads[wl].rounds * std::min(scale, 4.0)));
  simkit::Engine eng;
  simkit::Resource res(eng, 4);
  std::vector<std::shared_ptr<simkit::Trigger>> slots;
  switch (wl) {
    case 0: wl_timer(eng, rounds); break;
    case 1: wl_resource(eng, res, rounds); break;
    case 2: wl_trigger(eng, slots, rounds); break;
    case 3: wl_spawn(eng, rounds); break;
    default: wl_soup(eng, rounds); break;
  }
  const auto t0 = std::chrono::steady_clock::now();
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  Result r;
  r.events = eng.events_processed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.clamped = eng.clamped_schedules();
  if (metrics::Registry* m = metrics::current()) {
    const std::string prefix =
        std::string("bench.engine.") + kWorkloads[wl].name + ".";
    m->gauge(prefix + "events").set(static_cast<double>(r.events));
    m->gauge(prefix + "wall_s").set(r.wall_s);
    m->gauge(prefix + "events_per_s").set(r.events_per_s());
  }
  return r;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  // Host timing: run serially and in a fixed order (wallclock scenarios
  // are exempt from the determinism gates, but keep the table stable).
  std::vector<Result> results;
  results.reserve(std::size(kWorkloads));
  ctx.for_each_point(1, [&](std::size_t) {
    for (std::size_t i = 0; i < std::size(kWorkloads); ++i) {
      results.push_back(run_one(i, opt.scale));
    }
  });

  expt::Table table({"workload", "events", "wall (s)", "events/s"});
  std::uint64_t clamped = 0;
  for (std::size_t i = 0; i < std::size(kWorkloads); ++i) {
    table.add_row({kWorkloads[i].name, expt::fmt_u64(results[i].events),
                   expt::fmt("%.3f", results[i].wall_s),
                   expt::fmt("%.0f", results[i].events_per_s())});
    clamped += results[i].clamped;
  }
  ctx.printf("Engine self-benchmark (host time; simulated workloads are "
             "fixed per scale)\n%s\n",
             (opt.csv ? table.csv() : table.str()).c_str());
  ctx.printf("clamped past-time schedules: %llu (expect 0)\n",
             static_cast<unsigned long long>(clamped));

  ctx.finish_metrics();

  if (opt.check) {
    for (std::size_t i = 0; i < std::size(kWorkloads); ++i) {
      ctx.expect(results[i].events > 0 && results[i].events_per_s() > 0.0,
                 std::string(kWorkloads[i].name) +
                     " processed events at a nonzero rate");
    }
    // The engine exists to push through millions of events per host
    // second; 50k/s would mean something is catastrophically wrong.
    ctx.expect(results[0].events_per_s() > 5e4,
               "timer-wheel throughput clears the sanity floor");
    // No workload schedules into the past; a nonzero count means an
    // engine consumer is relying on silent clamping (reordering risk).
    ctx.expect(clamped == 0, "no past-time schedules were clamped");
  }
}

const scenario::Registration reg{{
    .name = "engine_bench",
    .title = "Engine self-benchmark: events/s on timer, resource, trigger",
    .description =
        "Runs five fixed synthetic workloads (timer wheel churn, FIFO "
        "resource contention, trigger fan-out, spawn/join churn, and a "
        "200k-process timer soup with a far-future tail) and reports "
        "host events/second; with --metrics-out the numbers land in "
        "BENCH_iosim.json (CI uploads it and gates it against "
        "bench/baseline/ via tools/bench_compare.py). --check asserts "
        "nonzero throughput, a generous sanity floor, and zero clamped "
        "past-time schedules.",
    .default_scale = 1.0,
    .grid = {},
    .wallclock = true,
    .run = run,
}};

}  // namespace
