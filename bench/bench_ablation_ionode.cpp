// Scenario "ablation_ionode" — I/O-node cache size and write-behind
// (DESIGN.md §5.3).
//
// Workload: a strided write pass followed by two sequential re-read
// passes of the same 16 MB file (the FFT transpose's access texture).
// Expected: write-behind absorbs the scattered writes (client time ~
// overhead only); cache size controls how much of the re-reads hit.
#include <cstdio>

#include "exp/report.hpp"
#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

struct Result {
  double write_time;
  double reread_time;
  std::uint64_t cache_hits;
};

Result run_one(std::uint64_t cache_bytes, bool write_behind) {
  simkit::Engine eng;
  hw::MachineConfig cfg = hw::MachineConfig::paragon_small(4, 2);
  cfg.io.cache_bytes_per_io_node = cache_bytes;
  cfg.io.write_behind = write_behind;
  hw::Machine machine(eng, cfg);
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("abl");
  Result res{};
  eng.spawn([](simkit::Engine& e, hw::Machine& m, pfs::StripedFs& fs,
               pfs::FileId f, Result& out) -> simkit::Task<void> {
    const auto n = m.compute_node(0);
    const simkit::Time t0 = e.now();
    // 2048 strided 8 KB writes covering 16 MB.
    for (int i = 0; i < 2048; ++i) {
      co_await fs.pwrite(n, f, static_cast<std::uint64_t>(i) * 8192, 8192);
    }
    co_await fs.flush(n, f);
    out.write_time = e.now() - t0;
    const simkit::Time t1 = e.now();
    for (int pass = 0; pass < 2; ++pass) {
      co_await fs.pread(n, f, 0, 16 << 20);
    }
    out.reread_time = e.now() - t1;
    out.cache_hits = fs.io_node(0).cache().hits() +
                     fs.io_node(1).cache().hits();
  }(eng, machine, fs, f, res));
  eng.run();
  return res;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::uint64_t mbs[] = {1, 4, 16};
  const std::vector<Result> results =
      ctx.map<Result>(std::size(mbs) * 2, [&](std::size_t i) {
        return run_one(mbs[i / 2] << 20, (i % 2) == 1);
      });

  expt::Table table({"cache MB", "write-behind", "write+flush (s)",
                     "2x reread (s)", "cache hits"});
  double wb_write = 0, sync_write = 0, small_reread = 0, big_reread = 0;
  for (std::size_t mi = 0; mi < std::size(mbs); ++mi) {
    const std::uint64_t mb = mbs[mi];
    for (bool wb : {false, true}) {
      const Result& r = results[mi * 2 + (wb ? 1 : 0)];
      if (mb == 4 && wb) wb_write = r.write_time;
      if (mb == 4 && !wb) sync_write = r.write_time;
      if (mb == 1 && wb) small_reread = r.reread_time;
      if (mb == 16 && wb) big_reread = r.reread_time;
      table.add_row({expt::fmt_u64(mb), wb ? "on" : "off",
                     expt::fmt("%.2f", r.write_time),
                     expt::fmt("%.2f", r.reread_time),
                     expt::fmt_u64(r.cache_hits)});
    }
  }
  ctx.printf(
      "Ablation: I/O-node cache and write-behind (strided write + "
      "re-read)\n%s\n",
      (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    // Write-behind defers disk work but flush() must still pay it, so the
    // comparison is about overlap: buffered writes + flush should not be
    // slower than synchronous writes.
    ctx.expect(wb_write <= sync_write * 1.05,
               "write-behind never loses to synchronous writes");
    ctx.expect(big_reread < small_reread,
               "larger caches absorb the re-read passes");
  }
}

const scenario::Registration reg{{
    .name = "ablation_ionode",
    .title = "Ablation: I/O-node cache size and write-behind",
    .description =
        "Writes strided then re-reads sequentially (the FFT transpose "
        "texture) while sweeping I/O-node cache size and write-behind. "
        "--check asserts write-behind absorbs the scattered writes and "
        "cache size controls the re-read hit rate.",
    .default_scale = 1.0,
    .grid = {{"cache_mb", {"1", "4", "16"}},
             {"write_behind", {"off", "on"}}},
    .run = run,
}};

}  // namespace
