// Scenario "table2_3" — reproduces Tables 2 and 3: Pablo-style I/O
// summaries of SCF 1.1 (LARGE input, 4 processors, 12 I/O nodes) for the
// original Fortran-I/O version and the PASSION-interface version.
//
// Paper reference points: 566,315 reads / 37 GB read volume, reads 95.6%
// of I/O time, I/O 54.1% of execution (original); PASSION cuts total I/O
// time 63,087 s -> 35,444 s (~1.78x) while adding 604k cheap seeks.
#include <cstdio>

#include "apps/scf.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "scenario/scenario.hpp"
#include "trace/tracer.hpp"

namespace {

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const apps::ScfVersion versions[] = {apps::ScfVersion::kOriginal,
                                       apps::ScfVersion::kPassion};
  const std::vector<apps::RunResult> results =
      ctx.map<apps::RunResult>(2, [&](std::size_t i) {
        apps::ScfConfig cfg;
        cfg.version = versions[i];
        cfg.nprocs = 4;
        cfg.io_nodes = 12;
        cfg.n_basis = 285;  // LARGE
        cfg.iterations = 15;
        cfg.scale = opt.scale;
        return apps::run_scf11(cfg);
      });
  const apps::RunResult& orig = results[0];
  const apps::RunResult& pass = results[1];

  // The paper's "% of exec time" is relative to summed per-process time.
  ctx.printf("%s\n",
             trace::format_io_summary(
                 orig.trace, orig.exec_time * 4,
                 "Table 2: SCF 1.1 original (Fortran I/O), LARGE, 4 procs"
                 " [total I/O " +
                     expt::fmt("%.1f", orig.io_time / 3600.0) + " h]")
                 .c_str());
  ctx.printf("%s\n",
             trace::format_io_summary(
                 pass.trace, pass.exec_time * 4,
                 "Table 3: SCF 1.1 PASSION version, LARGE, 4 procs"
                 " [total I/O " +
                     expt::fmt("%.1f", pass.io_time / 3600.0) + " h]")
                 .c_str());
  ctx.printf("I/O-time ratio original/PASSION: %.2f (paper: 1.78)\n\n",
             orig.io_time / pass.io_time);
  ctx.printf("Read-latency distribution (original):\n%s\n",
             trace::format_latency_quantiles(orig.trace).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    const auto& oread = orig.trace.summary(pfs::OpKind::kRead);
    const auto& pread = pass.trace.summary(pfs::OpKind::kRead);
    const auto& pseek = pass.trace.summary(pfs::OpKind::kSeek);
    ctx.expect(oread.time > 0.90 * orig.io_time,
               "reads dominate original I/O time (paper: 95.6%)");
    ctx.expect(oread.bytes == pread.bytes, "both versions move equal data");
    ctx.expect(orig.io_time / pass.io_time > 1.3 &&
                   orig.io_time / pass.io_time < 2.4,
               "PASSION interface speedup in the paper's band (~1.78x)");
    ctx.expect(pseek.count > 100 * orig.trace.summary(pfs::OpKind::kSeek)
                                      .count,
               "PASSION version seeks before every read (604k vs 994)");
    const double io_frac = orig.io_time / (orig.exec_time * 4);
    ctx.expect(io_frac > 0.40 && io_frac < 0.75,
               "I/O is roughly half of execution (paper: 54.1%)");
  }
}

const scenario::Registration reg{{
    .name = "table2_3",
    .title = "Tables 2-3: Pablo-style I/O summaries of SCF 1.1",
    .description =
        "Counts operations, bytes, and I/O time for SCF 1.1 LARGE under "
        "the original Fortran I/O and the PASSION rewrite. --check "
        "asserts the paper's headline reductions (reads dominate, ~1.8x "
        "less I/O time after the rewrite).",
    .default_scale = 1.0,  // full scale runs in ~1 s
    .grid = {{"version", {"original", "passion"}}},
    .run = run,
}};

}  // namespace
