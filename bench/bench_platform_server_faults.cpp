// Scenario "platform_server_faults" — the durability-policy ladder under
// the PR 6 multi-tenant platform with real server crashes.
//
// The same seeded 224-job stream as platform_server_cache, but the
// smart servers now run with crash semantics armed and a correlated
// fault plan knocking I/O nodes (and occasionally a whole rack domain)
// over mid-stream.  Every crash is plain — power stays on, disks and
// redo logs survive — so the axis under test is exactly the write-ack
// contract: write_behind forfeits whatever sat in the dirty pools,
// journaled replays its log to zero acked loss, write_through never
// buffered, and ordered_drain protects checkpoint commits (its barrier)
// while step data stays exposed.  A per-point audit::Ledger cross-checks
// every read the tenants do against what actually survived, so "lost"
// is not a counter the server self-reports but a violation the auditor
// catches from the outside.
//
// The overhead check reads the durability bill directly: seconds
// clients spent blocked on durable-ack machinery (sync in-place
// writes, journal appends, drain barriers), summed over the I/O nodes.
// Stronger contracts must cost monotonically more
// (write_through >= journaled >= ordered_drain >= write_behind) —
// that is the price list the policy knob exists to expose.  Makespan
// and capacity waste are reported too, but on a bursty multi-tenant
// platform those are dominated by queueing noise, so the check targets
// the direct metric.
#include <cstdio>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "exp/table.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "iosrv/config.hpp"
#include "pario/health.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "sched/arrival.hpp"
#include "sched/platform.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::size_t kComputeNodes = 64;
constexpr std::size_t kIoNodes = 8;
constexpr std::size_t kFanIn = 4;  // I/O nodes per rack switch
constexpr int kJobs = 224;

// Fault process: ~2-3 crash events across the arrival window, a quarter
// of them whole-rack bursts.  Outages are short enough that the retry
// ladder below rides them out instead of failing jobs.
constexpr double kMtbf = 120.0;
constexpr double kOutage = 6.0;
constexpr double kCorrelatedFraction = 0.25;
constexpr double kCrashHorizon = 300.0;

constexpr const char* kPolicyNames[] = {"write_behind", "ordered_drain",
                                        "journaled", "write_through"};
constexpr iosrv::DurabilityPolicy kPolicies[] = {
    iosrv::DurabilityPolicy::kWriteBehind,
    iosrv::DurabilityPolicy::kOrderedDrain,
    iosrv::DurabilityPolicy::kJournaled,
    iosrv::DurabilityPolicy::kWriteThrough,
};

struct PointResult {
  sched::PlatformReport rep;
  audit::Totals audit;
};

PointResult run_once(iosrv::DurabilityPolicy policy, double scale,
                     std::uint64_t seed) {
  simkit::Engine eng;
  hw::MachineConfig mc =
      hw::MachineConfig::paragon_large(kComputeNodes, kIoNodes);
  mc.io_nodes_per_switch = kFanIn;
  // Same memory-rich smart servers as platform_server_cache, so the
  // delta against that scenario is faults + durability, nothing else.
  mc.io.cache_bytes_per_io_node = 16ULL << 20;
  mc.io.server.policy = iosrv::PolicyKind::kArc;
  mc.io.server.readahead.enabled = true;
  mc.io.server.writeback.mode = iosrv::WritebackMode::kPool;
  mc.io.server.durability.policy = policy;
  mc.io.server.durability.crash_semantics = true;
  hw::Machine machine(eng, mc);

  // scrub_domains=false: every outage is a plain fail-stop (disks and
  // redo logs survive), so journaled can actually reach zero acked loss.
  fault::InjectionPlan plan = fault::InjectionPlan::correlated_node_crashes(
      kIoNodes, kFanIn, kMtbf, kOutage, kCorrelatedFraction, kCrashHorizon,
      seed, /*scrub_domains=*/false);
  fault::Injector injector(std::move(plan));
  pfs::StripedFs fs(machine, &injector);

  sched::ArrivalConfig ac;
  ac.mean_interarrival_s = 2.0;
  ac.max_jobs = kJobs;
  ac.burst_period_s = 120.0;
  ac.burst_len_s = 30.0;
  ac.burst_rate_multiplier = 4.0;
  std::vector<sched::Job> jobs =
      sched::generate(ac, sched::standard_mix(scale), seed);

  // Health-aware retries: crash/recovery edges feed the tracker, so
  // hedged reads steer around servers still warming their cold caches.
  pario::HealthTracker health(kIoNodes);
  sched::PlatformOptions po;
  po.retry.max_attempts = 7;
  po.retry.backoff_ms = 200.0;
  po.retry.backoff_multiplier = 2.0;
  po.retry.health = &health;

  PointResult r;
  audit::Ledger ledger;
  {
    audit::Scope audit_scope(ledger);
    r.rep = sched::run(machine, fs, &injector, std::move(jobs), po);
  }
  r.audit = ledger.totals();
  return r;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<PointResult> res =
      ctx.map<PointResult>(std::size(kPolicies), [&](std::size_t i) {
        return run_once(kPolicies[i], opt.scale, opt.seed);
      });

  auto capacity_waste = [](const sched::PlatformReport& r) {
    return static_cast<double>(kComputeNodes) * r.makespan -
           r.compute_node_s;
  };

  expt::Table table({"policy", "done", "makespan (s)", "waste (node-s)",
                     "dur wait (s)", "lost blk", "lost KB", "ra cancel",
                     "replayed", "lost upd", "stale", "viol"});
  for (std::size_t i = 0; i < std::size(kPolicies); ++i) {
    const sched::PlatformReport& r = res[i].rep;
    const audit::Totals& a = res[i].audit;
    table.add_row(
        {kPolicyNames[i],
         expt::fmt_u64(static_cast<unsigned long long>(r.completed_jobs)) +
             "/" + expt::fmt_u64(r.jobs.size()),
         expt::fmt_s(r.makespan), expt::fmt("%.0f", capacity_waste(r)),
         expt::fmt("%.1f", r.durability_wait_s),
         expt::fmt_u64(r.lost_dirty_blocks),
         expt::fmt_u64(r.lost_bytes >> 10),
         expt::fmt_u64(r.readahead_cancelled),
         expt::fmt_u64(r.journal_replayed),
         expt::fmt_u64(a.lost_updates), expt::fmt_u64(a.stale_reads),
         expt::fmt_u64(a.violations())});
  }
  ctx.printf(
      "Platform under server faults: %d jobs, %zu compute nodes, %zu I/O "
      "nodes (%zu per rack), plain crashes, seed=%llu\n%s\n",
      kJobs, kComputeNodes, kIoNodes, kFanIn,
      static_cast<unsigned long long>(opt.seed),
      (opt.csv ? table.csv() : table.str()).c_str());

  const PointResult& wb = res[0];
  const PointResult& od = res[1];
  const PointResult& j = res[2];
  const PointResult& wt = res[3];
  ctx.printf(
      "Durability price list: write_behind forfeits %llu KB of acked "
      "data (%llu audited lost updates); journaled replays %llu blocks "
      "and write_through loses nothing, at %.0f and %.0f wasted node-s "
      "over write_behind's %.0f.\n\n",
      static_cast<unsigned long long>(wb.rep.lost_bytes >> 10),
      static_cast<unsigned long long>(wb.audit.lost_updates),
      static_cast<unsigned long long>(j.rep.journal_replayed),
      capacity_waste(j.rep), capacity_waste(wt.rep),
      capacity_waste(wb.rep));

  ctx.finish_metrics();

  if (opt.check) {
    bool all_done = true;
    for (const PointResult& r : res) {
      all_done = all_done && r.rep.completed_jobs ==
                                 static_cast<int>(r.rep.jobs.size());
    }
    ctx.expect(all_done,
               "every job rides out the outages under every policy");
    ctx.expect(wb.rep.lost_dirty_blocks > 0 && wb.rep.lost_bytes > 0,
               "write_behind forfeits acked data to the crashes (" +
                   expt::fmt_u64(wb.rep.lost_bytes >> 10) + " KB)");
    ctx.expect(wb.audit.lost_updates > 0 &&
                   wb.audit.lost_updates == wb.rep.lost_dirty_blocks,
               "the auditor catches every lost write_behind update (" +
                   expt::fmt_u64(wb.audit.lost_updates) + " of " +
                   expt::fmt_u64(wb.rep.lost_dirty_blocks) + ")");
    ctx.expect(j.rep.lost_bytes == 0 && j.audit.violations() == 0,
               "journaled loses zero acked bytes (replayed " +
                   expt::fmt_u64(j.rep.journal_replayed) + " blocks)");
    ctx.expect(wt.rep.lost_bytes == 0 && wt.audit.violations() == 0,
               "write_through loses zero acked bytes");
    ctx.expect(j.rep.journal_replayed > 0,
               "crashes actually exercised the redo-log replay path");
    ctx.expect(wb.rep.cache_invalidations > 0,
               "crashed servers came back with cold caches");
    const double w_wb = wb.rep.durability_wait_s;
    const double w_od = od.rep.durability_wait_s;
    const double w_j = j.rep.durability_wait_s;
    const double w_wt = wt.rep.durability_wait_s;
    ctx.expect(w_wt >= w_j && w_j >= w_od && w_od >= w_wb,
               "stronger contracts bill more durability wait: "
               "write_through >= journaled >= ordered_drain >= "
               "write_behind (" +
                   expt::fmt("%.1f", w_wt) + " / " +
                   expt::fmt("%.1f", w_j) + " / " +
                   expt::fmt("%.1f", w_od) + " / " +
                   expt::fmt("%.1f", w_wb) + " s)");
  }
}

const scenario::Registration reg{{
    .name = "platform_server_faults",
    .title = "Durability policies under a multi-tenant stream with crashes",
    .description =
        "Replays the seeded 224-job stream against crash-armed smart "
        "servers under a correlated plain-crash plan, once per "
        "durability policy, auditing every read against what survived. "
        "--check asserts every job completes, write_behind loses acked "
        "bytes (all caught by the auditor), journaled and write_through "
        "lose none, and client-visible durability wait orders "
        "write_through >= journaled >= ordered_drain >= write_behind.",
    .default_scale = 0.1,
    .grid = {{"policy",
              {"write_behind", "ordered_drain", "journaled",
               "write_through"}}},
    .run = run,
}};

}  // namespace
