// Scenario "micro_twophase" — micro-benchmarks (host-side cost) for
// two-phase collective I/O: how the simulator itself scales with rank
// count and piece count.
#include <benchmark/benchmark.h>

#include "hw/machine.hpp"
#include "micro_common.hpp"
#include "mprt/comm.hpp"
#include "pario/twophase.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace {

void BM_TwoPhaseWrite(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int pieces = static_cast<int>(state.range(1));
  for (auto _ : state) {
    simkit::Engine eng;
    hw::Machine machine(
        eng, hw::MachineConfig::paragon_small(
                 static_cast<std::size_t>(ranks), 2));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("bench");
    mprt::Cluster::execute(machine, ranks, [&](mprt::Comm& c)
                                               -> simkit::Task<void> {
      std::vector<pario::Extent> mine;
      for (int i = 0; i < pieces; ++i) {
        const auto rec = static_cast<std::uint64_t>(
            c.rank() + i * c.size());
        mine.push_back(pario::Extent{rec * 4096, 4096,
                                     static_cast<std::uint64_t>(i) * 4096});
      }
      co_await pario::TwoPhase::write(c, fs, f, std::move(mine));
    });
  }
  state.SetItemsProcessed(state.iterations() * ranks * pieces);
}
BENCHMARK(BM_TwoPhaseWrite)
    ->Args({4, 16})
    ->Args({4, 256})
    ->Args({16, 64})
    ->Args({32, 32});

void BM_TwoPhaseDataBacked(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  constexpr int kPieces = 32;
  for (auto _ : state) {
    simkit::Engine eng;
    hw::Machine machine(
        eng, hw::MachineConfig::paragon_small(
                 static_cast<std::size_t>(ranks), 2));
    pfs::StripedFs fs(machine);
    const pfs::FileId f = fs.create("bench", /*backed=*/true);
    mprt::Cluster::execute(machine, ranks, [&](mprt::Comm& c)
                                               -> simkit::Task<void> {
      std::vector<pario::Extent> mine;
      std::vector<std::byte> data(kPieces * 4096,
                                  static_cast<std::byte>(c.rank()));
      for (int i = 0; i < kPieces; ++i) {
        const auto rec = static_cast<std::uint64_t>(
            c.rank() + i * c.size());
        mine.push_back(pario::Extent{rec * 4096, 4096,
                                     static_cast<std::uint64_t>(i) * 4096});
      }
      co_await pario::TwoPhase::write(c, fs, f, std::move(mine), data);
    });
  }
  state.SetBytesProcessed(state.iterations() * ranks * kPieces * 4096);
}
BENCHMARK(BM_TwoPhaseDataBacked)->Arg(4)->Arg(16);

void run(scenario::Context& ctx) {
  bench::run_micro(ctx, "^BM_(TwoPhaseWrite|TwoPhaseDataBacked)/");
  ctx.finish_metrics();
}

const scenario::Registration reg{{
    .name = "micro_twophase",
    .title = "Micro: two-phase collective I/O host-side cost",
    .description =
        "google-benchmark micros for two-phase collective I/O: how the "
        "simulator's own cost scales with rank and piece count. "
        "Wall-clock output, so the determinism gates skip it.",
    .default_scale = 0.1,
    .grid = {},
    .wallclock = true,
    .run = run,
}};

}  // namespace
