// Scenario "ablation_iomode" — PFS shared-file I/O modes (paper §5:
// "both PFS and PIOFS have different I/O modes which make the programming
// for I/O very difficult").  Eight processes each append 32 records of
// 64 KB to one shared file under each mode; the mode choice alone swings
// the I/O time by an order of magnitude — the usability/performance trap
// the paper complains about.
#include <cstdio>

#include "exp/report.hpp"
#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "mprt/comm.hpp"
#include "pfs/modes.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

double run_mode(pfs::IoMode mode, int procs, int records,
                std::uint64_t record_size) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_large(
                               static_cast<std::size_t>(procs), 12));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("modes");
  return mprt::Cluster::execute(
      machine, procs, [&](mprt::Comm& c) -> simkit::Task<void> {
        pfs::SharedFile sf = co_await pfs::SharedFile::open(
            c, fs, f, mode, record_size);
        for (int i = 0; i < records; ++i) {
          (void)co_await sf.write(record_size);
        }
        co_await sf.close();
      });
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  constexpr int kProcs = 8;
  constexpr int kRecords = 32;
  constexpr std::uint64_t kRecordSize = 64 * 1024;

  struct Row {
    pfs::IoMode mode;
    const char* semantics;
  };
  const Row rows[] = {
      {pfs::IoMode::kUnix, "private pointers (uncoordinated)"},
      {pfs::IoMode::kLog, "shared pointer, token per access"},
      {pfs::IoMode::kSync, "shared pointer, strict rank order"},
      {pfs::IoMode::kRecord, "fixed records, offsets computed locally"},
  };
  const std::vector<double> times =
      ctx.map<double>(std::size(rows), [&](std::size_t i) {
        return run_mode(rows[i].mode, kProcs, kRecords, kRecordSize);
      });

  expt::Table table({"mode", "semantics", "time (s)"});
  double t_log = 0, t_sync = 0, t_record = 0;
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const Row& r = rows[i];
    const double t = times[i];
    if (r.mode == pfs::IoMode::kLog) t_log = t;
    if (r.mode == pfs::IoMode::kSync) t_sync = t;
    if (r.mode == pfs::IoMode::kRecord) t_record = t;
    table.add_row({std::string(pfs::to_string(r.mode)), r.semantics,
                   expt::fmt("%.2f", t)});
  }
  ctx.printf("Ablation: PFS I/O modes — %d procs x %d records x %llu KB "
             "to one shared file\n%s\n",
             kProcs, kRecords,
             static_cast<unsigned long long>(kRecordSize / 1024),
             (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(t_record < t_log,
               "M_RECORD (no coordination) beats M_LOG (token traffic)");
    ctx.expect(t_sync >= t_log * 0.9,
               "M_SYNC (strict order) is at least as serial as M_LOG");
  }
}

const scenario::Registration reg{{
    .name = "ablation_iomode",
    .title = "Ablation: PFS shared-file I/O mode comparison",
    .description =
        "Appends records to one shared file under the four PFS I/O modes "
        "(M_UNIX/M_LOG/M_SYNC/M_RECORD). --check asserts the mode choice "
        "alone swings I/O time by an order of magnitude — the paper's "
        "usability/performance trap.",
    .default_scale = 1.0,
    .grid = {{"mode", {"M_UNIX", "M_LOG", "M_SYNC", "M_RECORD"}}},
    .run = run,
}};

}  // namespace
