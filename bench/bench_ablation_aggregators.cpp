// Scenario "ablation_aggregators" — two-phase aggregator count (ROMIO
// cb_nodes) on the paper's SP-2 — how many of the P processes should
// perform the file I/O in a collective write when only 4 I/O nodes exist?
//
// With the exchange phase absorbing the redistribution, the I/O phase
// wants roughly as many aggregators as the file system has service
// capacity; far more aggregators than I/O nodes just adds interleaving.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "exp/report.hpp"
#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "mprt/comm.hpp"
#include "pario/twophase.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

double run_with_aggregators(int procs, int aggregators) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::sp2(
                               static_cast<std::size_t>(procs)));
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("cb");
  return mprt::Cluster::execute(
      machine, procs, [&](mprt::Comm& c) -> simkit::Task<void> {
        // BTIO-like interleaved pencils, two dumps.
        for (int dump = 0; dump < 2; ++dump) {
          std::vector<pario::Extent> mine;
          for (std::uint64_t i = 0; i < 4096 / static_cast<std::uint64_t>(
                                                   c.size());
               ++i) {
            const std::uint64_t rec =
                static_cast<std::uint64_t>(c.rank()) +
                i * static_cast<std::uint64_t>(c.size());
            mine.push_back(pario::Extent{
                (static_cast<std::uint64_t>(dump) * 4096 + rec) * 2560,
                2560, i * 2560});
          }
          pario::TwoPhaseOptions opt;
          opt.aggregators = aggregators;
          co_await pario::TwoPhase::write(c, fs, f, std::move(mine), {},
                                          nullptr, opt);
        }
      });
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  constexpr int kProcs = 36;
  const int agg_counts[] = {1, 2, 4, 8, 16, 36};
  const std::vector<double> times =
      ctx.map<double>(std::size(agg_counts), [&](std::size_t i) {
        return run_with_aggregators(kProcs, agg_counts[i]);
      });

  expt::Table table({"aggregators", "exec (s)"});
  double best = 1e30, all_ranks = 0;
  for (std::size_t i = 0; i < std::size(agg_counts); ++i) {
    const double t = times[i];
    if (agg_counts[i] == kProcs) all_ranks = t;
    best = std::min(best, t);
    table.add_row(
        {expt::fmt_u64(static_cast<unsigned long long>(agg_counts[i])),
         expt::fmt("%.2f", t)});
  }
  ctx.printf("Ablation: collective-buffering aggregator count, %d procs "
             "on the 4-I/O-node SP-2\n%s\n",
             kProcs, (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(best <= all_ranks * 1.05,
               "a tuned aggregator count is at least as good as all-ranks");
    ctx.expect(all_ranks / best < 4.0,
               "and the penalty for the naive choice stays bounded");
  }
}

const scenario::Registration reg{{
    .name = "ablation_aggregators",
    .title = "Ablation: two-phase aggregator (cb_nodes) count",
    .description =
        "Sweeps how many ranks perform the file I/O in a collective "
        "write on a 4-I/O-node SP-2. --check asserts the sweet spot "
        "tracks the file system's service capacity, not the rank count.",
    .default_scale = 1.0,
    .grid = {{"aggregators", {"1", "2", "4", "8", "16", "36"}}},
    .run = run,
}};

}  // namespace
