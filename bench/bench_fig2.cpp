// Scenario "fig2" — reproduces Figure 2: SCF 1.1 (LARGE) performance
// summary over large processor counts.
//
// Paper finding: up to ~64 processors the software-optimized version on 16
// I/O nodes wins; beyond that the machine is I/O-starved and the
// UNOPTIMIZED version on 64 I/O nodes overtakes the optimized one on 16 —
// architecture balance beats software past the crossover.
#include <cstdio>
#include <vector>

#include "apps/scf.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "scenario/scenario.hpp"

namespace {

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<int> procs = {4, 16, 32, 64, 128, 256};
  struct Cell {
    apps::ScfVersion v;
    std::size_t sf;
  };
  // Column order matches the table: unopt/16, opt/16, unopt/64, opt/64,
  // direct (the no-I/O recompute version).
  const std::vector<Cell> cells = {
      {apps::ScfVersion::kOriginal, 16},
      {apps::ScfVersion::kPassionPrefetch, 16},
      {apps::ScfVersion::kOriginal, 64},
      {apps::ScfVersion::kPassionPrefetch, 64},
      {apps::ScfVersion::kDirect, 16},
  };
  const std::vector<double> exec =
      ctx.map<double>(procs.size() * cells.size(), [&](std::size_t i) {
        const int p = procs[i / cells.size()];
        const Cell& c = cells[i % cells.size()];
        apps::ScfConfig cfg;
        cfg.version = c.v;
        cfg.nprocs = p;
        cfg.io_nodes = c.sf;
        cfg.n_basis = 285;
        cfg.iterations = 15;
        cfg.scale = opt.scale;
        return apps::run_scf11(cfg).exec_time;
      });

  expt::Table table({"procs", "unopt/16io exec", "opt/16io exec",
                     "unopt/64io exec", "opt/64io exec", "direct (no I/O)"});
  std::vector<double> u16, o16, u64v, o64, direct;
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const double* row = &exec[pi * cells.size()];
    u16.push_back(row[0]);
    o16.push_back(row[1]);
    u64v.push_back(row[2]);
    o64.push_back(row[3]);
    direct.push_back(row[4]);
    table.add_row(
        {expt::fmt_u64(static_cast<unsigned long long>(procs[pi])),
         expt::fmt_s(u16.back()), expt::fmt_s(o16.back()),
         expt::fmt_s(u64v.back()), expt::fmt_s(o64.back()),
         expt::fmt_s(direct.back())});
  }
  ctx.printf("Figure 2: SCF 1.1 LARGE, execution time vs processors\n%s\n",
             (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    // Small P: software optimization beats extra hardware.
    ctx.expect(o16.front() < u16.front(),
               "at 4 procs the optimized/16-I/O version beats unopt/16");
    ctx.expect(o16.front() < u64v.front(),
               "at 4 procs software beats the 64-I/O unoptimized version");
    // Large P: hardware balance wins — unopt/64 overtakes opt/16.
    const std::size_t last = procs.size() - 1;
    ctx.expect(u64v[last] < o16[last],
               "at 256 procs unopt/64-I/O beats opt/16-I/O (crossover)");
    // There is a crossover point somewhere in the sweep.
    bool crossed = false;
    for (std::size_t i = 0; i + 1 < procs.size(); ++i) {
      if (o16[i] <= u64v[i] && u64v[i + 1] < o16[i + 1]) crossed = true;
    }
    ctx.expect(crossed, "crossover exists within the processor sweep");
    // The paper's user behaviour: disk-based wins at small P, the
    // recompute ("direct") version wins on a starved partition at large P.
    ctx.expect(o16.front() < direct.front(),
               "disk-based beats recompute at 4 procs");
    ctx.expect(direct[last] < o16[last],
               "recompute beats disk-based/16-I/O at 256 procs");
  }
}

const scenario::Registration reg{{
    .name = "fig2",
    .title = "Figure 2: SCF 1.1 LARGE execution time vs processor count",
    .description =
        "Scales SCF 1.1 LARGE to 256 processors on 16 vs 64 I/O nodes. "
        "--check asserts the crossover: software optimization wins up to "
        "~64 processors, then the unoptimized code on the bigger I/O "
        "partition overtakes it (architecture balance beats software).",
    .default_scale = 0.5,
    .grid = {{"procs", {"4", "16", "32", "64", "128", "256"}},
             {"variant",
              {"unopt/16io", "opt/16io", "unopt/64io", "opt/64io",
               "direct"}}},
    .run = run,
}};

}  // namespace
