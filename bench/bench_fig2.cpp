// Reproduces Figure 2: SCF 1.1 (LARGE) performance summary over large
// processor counts.
//
// Paper finding: up to ~64 processors the software-optimized version on 16
// I/O nodes wins; beyond that the machine is I/O-starved and the
// UNOPTIMIZED version on 64 I/O nodes overtakes the optimized one on 16 —
// architecture balance beats software past the crossover.
#include <cstdio>
#include <vector>

#include "apps/scf.hpp"
#include "exp/metrics_run.hpp"
#include "exp/options.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  expt::Options opt(/*default_scale=*/0.5);
  opt.parse(argc, argv);
  expt::MetricsRun mrun(opt);

  const std::vector<int> procs = {4, 16, 32, 64, 128, 256};
  auto run = [&](apps::ScfVersion v, int p, std::size_t sf) {
    apps::ScfConfig cfg;
    cfg.version = v;
    cfg.nprocs = p;
    cfg.io_nodes = sf;
    cfg.n_basis = 285;
    cfg.iterations = 15;
    cfg.scale = opt.scale;
    return apps::run_scf11(cfg);
  };

  expt::Table table({"procs", "unopt/16io exec", "opt/16io exec",
                     "unopt/64io exec", "opt/64io exec", "direct (no I/O)"});
  std::vector<double> u16, o16, u64v, o64, direct;
  for (int p : procs) {
    u16.push_back(run(apps::ScfVersion::kOriginal, p, 16).exec_time);
    o16.push_back(run(apps::ScfVersion::kPassionPrefetch, p, 16).exec_time);
    u64v.push_back(run(apps::ScfVersion::kOriginal, p, 64).exec_time);
    o64.push_back(run(apps::ScfVersion::kPassionPrefetch, p, 64).exec_time);
    direct.push_back(run(apps::ScfVersion::kDirect, p, 16).exec_time);
    table.add_row({expt::fmt_u64(static_cast<unsigned long long>(p)),
                   expt::fmt_s(u16.back()), expt::fmt_s(o16.back()),
                   expt::fmt_s(u64v.back()), expt::fmt_s(o64.back()),
                   expt::fmt_s(direct.back())});
  }
  std::printf("Figure 2: SCF 1.1 LARGE, execution time vs processors\n%s\n",
              (opt.csv ? table.csv() : table.str()).c_str());

  mrun.finish();
  if (opt.metrics) {
    std::printf("%s", expt::metrics_report(mrun.registry).c_str());
  }

  if (opt.check) {
    expt::Checker chk;
    // Small P: software optimization beats extra hardware.
    chk.expect(o16.front() < u16.front(),
               "at 4 procs the optimized/16-I/O version beats unopt/16");
    chk.expect(o16.front() < u64v.front(),
               "at 4 procs software beats the 64-I/O unoptimized version");
    // Large P: hardware balance wins — unopt/64 overtakes opt/16.
    const std::size_t last = procs.size() - 1;
    chk.expect(u64v[last] < o16[last],
               "at 256 procs unopt/64-I/O beats opt/16-I/O (crossover)");
    // There is a crossover point somewhere in the sweep.
    bool crossed = false;
    for (std::size_t i = 0; i + 1 < procs.size(); ++i) {
      if (o16[i] <= u64v[i] && u64v[i + 1] < o16[i + 1]) crossed = true;
    }
    chk.expect(crossed, "crossover exists within the processor sweep");
    // The paper's user behaviour: disk-based wins at small P, the
    // recompute ("direct") version wins on a starved partition at large P.
    chk.expect(o16.front() < direct.front(),
               "disk-based beats recompute at 4 procs");
    chk.expect(direct[last] < o16[last],
               "recompute beats disk-based/16-I/O at 256 procs");
    return chk.exit_code();
  }
  return 0;
}
