// Reproduces Table 4: the astrophysics application (2K x 2K), execution
// times for 16/32/64/128 processors x {Chameleon, two-phase} x {16, 64
// I/O nodes} on the Paragon.
//
// Paper findings: collective I/O is worth far more than quadrupling the
// I/O nodes; the optimized version flattens (and slightly regresses) at
// 128 processors.  Known deviation (see EXPERIMENTS.md): the paper's
// unoptimized column keeps falling through P=128, which is inconsistent
// with its own single-writer bottleneck; ours flattens at the funnel
// floor.
#include <cstdio>
#include <vector>

#include "apps/ast.hpp"
#include "exp/metrics_run.hpp"
#include "exp/options.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  expt::Options opt(/*default_scale=*/0.25);
  opt.parse(argc, argv);
  expt::MetricsRun mrun(opt);

  const std::vector<int> procs = {16, 32, 64, 128};
  auto run = [&](int p, bool coll, std::size_t io) {
    apps::AstConfig cfg;
    cfg.grid = 2048;
    cfg.nprocs = p;
    cfg.collective = coll;
    cfg.io_nodes = io;
    cfg.scale = opt.scale;
    return apps::run_ast(cfg);
  };

  expt::Table table({"procs", "unopt 16io", "unopt 64io", "opt 16io",
                     "opt 64io"});
  std::vector<double> u16, o16, o64;
  double u64_at16 = 0;
  for (int p : procs) {
    const double a = run(p, false, 16).exec_time;
    const double b = run(p, false, 64).exec_time;
    const double c = run(p, true, 16).exec_time;
    const double d = run(p, true, 64).exec_time;
    if (p == 16) u64_at16 = b;
    u16.push_back(a);
    o16.push_back(c);
    o64.push_back(d);
    table.add_row({expt::fmt_u64(static_cast<unsigned long long>(p)),
                   expt::fmt_s(a), expt::fmt_s(b), expt::fmt_s(c),
                   expt::fmt_s(d)});
  }
  std::printf(
      "Table 4: AST (2K x 2K) execution times (s) on the Paragon\n%s\n",
      (opt.csv ? table.csv() : table.str()).c_str());

  mrun.finish();
  if (opt.metrics) {
    std::printf("%s", expt::metrics_report(mrun.registry).c_str());
  }

  if (opt.check) {
    expt::Checker chk;
    chk.expect(o16[0] < u16[0] / 2.0,
               "collective I/O wins big at 16 procs (paper: 2557 vs 428)");
    chk.expect(u64_at16 > 0.85 * u16[0],
               "quadrupling I/O nodes barely moves the unoptimized time");
    chk.expect(o16[0] / o16[2] > 2.0,
               "optimized version scales from 16 to 64 procs");
    chk.expect(o16[2] / o16[3] < 1.8,
               "optimized scaling degrades by 128 procs (paper: 76->86)");
    return chk.exit_code();
  }
  return 0;
}
