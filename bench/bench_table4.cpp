// Scenario "table4" — reproduces Table 4: the astrophysics application
// (2K x 2K), execution times for 16/32/64/128 processors x {Chameleon,
// two-phase} x {16, 64 I/O nodes} on the Paragon.
//
// Paper findings: collective I/O is worth far more than quadrupling the
// I/O nodes; the optimized version flattens (and slightly regresses) at
// 128 processors.  Known deviation (see EXPERIMENTS.md): the paper's
// unoptimized column keeps falling through P=128, which is inconsistent
// with its own single-writer bottleneck; ours flattens at the funnel
// floor.
#include <cstdio>
#include <vector>

#include "apps/ast.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "scenario/scenario.hpp"

namespace {

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<int> procs = {16, 32, 64, 128};
  struct Cell {
    bool coll;
    std::size_t io;
  };
  // Column order of the table: unopt/16, unopt/64, opt/16, opt/64.
  const std::vector<Cell> cells = {
      {false, 16}, {false, 64}, {true, 16}, {true, 64}};
  const std::vector<double> exec =
      ctx.map<double>(procs.size() * cells.size(), [&](std::size_t i) {
        const Cell& c = cells[i % cells.size()];
        apps::AstConfig cfg;
        cfg.grid = 2048;
        cfg.nprocs = procs[i / cells.size()];
        cfg.collective = c.coll;
        cfg.io_nodes = c.io;
        cfg.scale = opt.scale;
        return apps::run_ast(cfg).exec_time;
      });

  expt::Table table({"procs", "unopt 16io", "unopt 64io", "opt 16io",
                     "opt 64io"});
  std::vector<double> u16, o16, o64;
  double u64_at16 = 0;
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const int p = procs[pi];
    const double* row = &exec[pi * cells.size()];
    if (p == 16) u64_at16 = row[1];
    u16.push_back(row[0]);
    o16.push_back(row[2]);
    o64.push_back(row[3]);
    table.add_row({expt::fmt_u64(static_cast<unsigned long long>(p)),
                   expt::fmt_s(row[0]), expt::fmt_s(row[1]),
                   expt::fmt_s(row[2]), expt::fmt_s(row[3])});
  }
  ctx.printf(
      "Table 4: AST (2K x 2K) execution times (s) on the Paragon\n%s\n",
      (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(o16[0] < u16[0] / 2.0,
               "collective I/O wins big at 16 procs (paper: 2557 vs 428)");
    ctx.expect(u64_at16 > 0.85 * u16[0],
               "quadrupling I/O nodes barely moves the unoptimized time");
    ctx.expect(o16[0] / o16[2] > 2.0,
               "optimized version scales from 16 to 64 procs");
    ctx.expect(o16[2] / o16[3] < 1.8,
               "optimized scaling degrades by 128 procs (paper: 76->86)");
  }
}

const scenario::Registration reg{{
    .name = "table4",
    .title = "Table 4: AST execution times, collective vs Chameleon I/O",
    .description =
        "Runs the astrophysics dump workload across processors, I/O "
        "nodes, and I/O styles. --check asserts collective I/O is worth "
        "far more than quadrupling the I/O nodes (one documented "
        "deviation from the paper noted in EXPERIMENTS.md).",
    .default_scale = 0.25,
    .grid = {{"procs", {"16", "32", "64", "128"}},
             {"variant", {"unopt/16io", "unopt/64io", "opt/16io",
                          "opt/64io"}}},
    .run = run,
}};

}  // namespace
