// Scenario "fig1" — reproduces Figure 1: SCF 1.1 on SMALL/MEDIUM/LARGE
// inputs under the incremental optimization configurations I-VII.
//
// Each configuration is the paper's five-tuple (V, P, M, Su, Sf):
// version (O=original Fortran, P=PASSION, F=PASSION+prefetch), processor
// count, application memory (KB), stripe unit (KB), stripe factor (# I/O
// nodes).  Paper finding: for small processor counts the software factors
// (V, M) move execution and I/O time far more than the system factors
// (Su, Sf).
#include <cmath>
#include <cstdio>

#include "apps/scf.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "scenario/scenario.hpp"

namespace {

struct Config {
  const char* name;
  apps::ScfVersion v;
  int procs;
  std::uint64_t mem_kb;
  std::uint64_t su_kb;
  std::size_t sf;
};

// Tuple V is illegible in the archived scan; (F,32,256,64,16) interpolates
// between IV and VI/VII on the stripe-factor axis (noted in
// EXPERIMENTS.md).
constexpr Config kConfigs[] = {
    {"I   (O,4,64,64,12)", apps::ScfVersion::kOriginal, 4, 64, 64, 12},
    {"II  (P,4,64,64,12)", apps::ScfVersion::kPassion, 4, 64, 64, 12},
    {"III (F,4,64,64,12)", apps::ScfVersion::kPassionPrefetch, 4, 64, 64, 12},
    {"IV  (F,32,256,64,12)", apps::ScfVersion::kPassionPrefetch, 32, 256, 64,
     12},
    {"V   (F,32,256,64,16)", apps::ScfVersion::kPassionPrefetch, 32, 256, 64,
     16},
    {"VI  (F,32,256,128,12)", apps::ScfVersion::kPassionPrefetch, 32, 256,
     128, 12},
    {"VII (F,32,256,128,16)", apps::ScfVersion::kPassionPrefetch, 32, 256,
     128, 16},
};

struct Input {
  const char* name;
  int n_basis;
};
constexpr Input kInputs[] = {{"SMALL", 108}, {"MEDIUM", 140}, {"LARGE", 285}};

constexpr std::size_t kNumConfigs = std::size(kConfigs);

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  struct Point {
    double exec_time = 0.0;
    double io_wall = 0.0;
  };
  const std::vector<Point> points =
      ctx.map<Point>(std::size(kInputs) * kNumConfigs, [&](std::size_t i) {
        const Input& input = kInputs[i / kNumConfigs];
        const Config& c = kConfigs[i % kNumConfigs];
        apps::ScfConfig cfg;
        cfg.version = c.v;
        cfg.nprocs = c.procs;
        cfg.io_nodes = c.sf;
        cfg.memory_kb = c.mem_kb;
        cfg.stripe_unit_kb = c.su_kb;
        cfg.n_basis = input.n_basis;
        cfg.iterations = 15;
        cfg.scale = opt.scale;
        const apps::RunResult r = apps::run_scf11(cfg);
        return Point{r.exec_time, r.io_time / c.procs};
      });

  for (std::size_t ii = 0; ii < std::size(kInputs); ++ii) {
    const Input& input = kInputs[ii];
    expt::Table table({"config (V,P,M,Su,Sf)", "exec time (s)",
                       "I/O time (s)", "I/O %"});
    double exec_I = 0, exec_III = 0, exec_IV = 0, exec_VII = 0;
    for (std::size_t ci = 0; ci < kNumConfigs; ++ci) {
      const Config& c = kConfigs[ci];
      const Point& p = points[ii * kNumConfigs + ci];
      table.add_row({c.name, expt::fmt_s(p.exec_time),
                     expt::fmt_s(p.io_wall),
                     expt::fmt("%.0f%%", 100.0 * p.io_wall / p.exec_time)});
      if (c.name[0] == 'I' && c.name[1] == ' ') exec_I = p.exec_time;
      if (c.name[0] == 'I' && c.name[2] == 'I') exec_III = p.exec_time;
      if (c.name[0] == 'I' && c.name[1] == 'V') exec_IV = p.exec_time;
      if (c.name[0] == 'V' && c.name[1] == 'I' && c.name[2] == 'I') {
        exec_VII = p.exec_time;
      }
    }
    ctx.printf("Figure 1 (%s, N=%d): impact of optimizations\n%s\n",
               input.name, input.n_basis,
               (opt.csv ? table.csv() : table.str()).c_str());
    if (opt.check) {
      ctx.expect(exec_III < exec_I,
                 std::string(input.name) +
                     ": software path I->III improves execution");
      // Application-related factors (interface, prefetch) buy more than
      // the system-related Su/Sf changes within the F configurations.
      ctx.expect((exec_I - exec_III) > 2.0 * std::abs(exec_IV - exec_VII),
                 std::string(input.name) +
                     ": software factors dominate system factors");
    }
  }
  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }
}

const scenario::Registration reg{{
    .name = "fig1",
    .title = "Figure 1: SCF 1.1 optimization tuples I-VII on three inputs",
    .description =
        "Sweeps the paper's (V, P, M, Su, Sf) optimization tuples over "
        "SMALL/MEDIUM/LARGE inputs. --check asserts that at small "
        "processor counts the software factors (version, memory) move "
        "execution time far more than the system factors.",
    .default_scale = 0.5,
    .grid = {{"input", {"SMALL", "MEDIUM", "LARGE"}},
             {"config", {"I", "II", "III", "IV", "V", "VI", "VII"}}},
    .run = run,
}};

}  // namespace
