// Reproduces Figure 1: SCF 1.1 on SMALL/MEDIUM/LARGE inputs under the
// incremental optimization configurations I-VII.
//
// Each configuration is the paper's five-tuple (V, P, M, Su, Sf):
// version (O=original Fortran, P=PASSION, F=PASSION+prefetch), processor
// count, application memory (KB), stripe unit (KB), stripe factor (# I/O
// nodes).  Paper finding: for small processor counts the software factors
// (V, M) move execution and I/O time far more than the system factors
// (Su, Sf).
#include <cstdio>

#include "apps/scf.hpp"
#include "exp/metrics_run.hpp"
#include "exp/options.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"

namespace {

struct Config {
  const char* name;
  apps::ScfVersion v;
  int procs;
  std::uint64_t mem_kb;
  std::uint64_t su_kb;
  std::size_t sf;
};

// Tuple V is illegible in the archived scan; (F,32,256,64,16) interpolates
// between IV and VI/VII on the stripe-factor axis (noted in
// EXPERIMENTS.md).
constexpr Config kConfigs[] = {
    {"I   (O,4,64,64,12)", apps::ScfVersion::kOriginal, 4, 64, 64, 12},
    {"II  (P,4,64,64,12)", apps::ScfVersion::kPassion, 4, 64, 64, 12},
    {"III (F,4,64,64,12)", apps::ScfVersion::kPassionPrefetch, 4, 64, 64, 12},
    {"IV  (F,32,256,64,12)", apps::ScfVersion::kPassionPrefetch, 32, 256, 64,
     12},
    {"V   (F,32,256,64,16)", apps::ScfVersion::kPassionPrefetch, 32, 256, 64,
     16},
    {"VI  (F,32,256,128,12)", apps::ScfVersion::kPassionPrefetch, 32, 256,
     128, 12},
    {"VII (F,32,256,128,16)", apps::ScfVersion::kPassionPrefetch, 32, 256,
     128, 16},
};

struct Input {
  const char* name;
  int n_basis;
};
constexpr Input kInputs[] = {{"SMALL", 108}, {"MEDIUM", 140}, {"LARGE", 285}};

}  // namespace

int main(int argc, char** argv) {
  expt::Options opt(/*default_scale=*/0.5);
  opt.parse(argc, argv);
  expt::MetricsRun mrun(opt);

  expt::Checker chk;
  for (const Input& input : kInputs) {
    expt::Table table({"config (V,P,M,Su,Sf)", "exec time (s)",
                       "I/O time (s)", "I/O %"});
    double exec_I = 0, exec_III = 0, exec_IV = 0, exec_VII = 0;
    for (const Config& c : kConfigs) {
      apps::ScfConfig cfg;
      cfg.version = c.v;
      cfg.nprocs = c.procs;
      cfg.io_nodes = c.sf;
      cfg.memory_kb = c.mem_kb;
      cfg.stripe_unit_kb = c.su_kb;
      cfg.n_basis = input.n_basis;
      cfg.iterations = 15;
      cfg.scale = opt.scale;
      const apps::RunResult r = apps::run_scf11(cfg);
      const double io_wall = r.io_time / c.procs;  // per-process average
      table.add_row({c.name, expt::fmt_s(r.exec_time), expt::fmt_s(io_wall),
                     expt::fmt("%.0f%%", 100.0 * io_wall / r.exec_time)});
      if (c.name[0] == 'I' && c.name[1] == ' ') exec_I = r.exec_time;
      if (c.name[0] == 'I' && c.name[2] == 'I') exec_III = r.exec_time;
      if (c.name[0] == 'I' && c.name[1] == 'V') exec_IV = r.exec_time;
      if (c.name[0] == 'V' && c.name[1] == 'I' && c.name[2] == 'I') {
        exec_VII = r.exec_time;
      }
    }
    std::printf("Figure 1 (%s, N=%d): impact of optimizations\n%s\n",
                input.name, input.n_basis,
                (opt.csv ? table.csv() : table.str()).c_str());
    if (opt.check) {
      chk.expect(exec_III < exec_I,
                 std::string(input.name) +
                     ": software path I->III improves execution");
      // Application-related factors (interface, prefetch) buy more than
      // the system-related Su/Sf changes within the F configurations.
      chk.expect((exec_I - exec_III) > 2.0 * std::abs(exec_IV - exec_VII),
                 std::string(input.name) +
                     ": software factors dominate system factors");
    }
  }
  mrun.finish();
  if (opt.metrics) {
    std::printf("%s", expt::metrics_report(mrun.registry).c_str());
  }

  return opt.check ? chk.exit_code() : 0;
}
