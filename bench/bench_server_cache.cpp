// Scenario "server_cache_policy" — pluggable I/O-server cache
// replacement (iosrv::CachePolicy): LRU vs ARC across the five paper
// applications' reuse textures (DESIGN.md §13).
//
// Each app-inspired workload runs twice on the same machine, differing
// only in cfg.io.server.policy.  The interesting rows are the mixed
// ones: a re-read working set periodically polluted by a streaming scan
// (SCF's integral re-reads vs another tenant's dump) is exactly the
// pattern ARC's ghost-list adaptation protects and plain LRU does not.
// Pure streams (Hartree dump, seismic trace scan) have no reuse for any
// policy to exploit — both should sit near zero hits, and the check
// pins that no-free-lunch shape too.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "iosrv/config.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::uint64_t kMiB = 1ULL << 20;
constexpr std::uint64_t kPiece = 64 * 1024;  // one stripe unit per request

struct Result {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  double elapsed = 0.0;

  double hit_rate() const {
    const double total =
        static_cast<double>(hits) + static_cast<double>(misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// Deterministic 64-bit mix for the synthetic access sequences (no
/// engine RNG: the sequence is part of the workload definition).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

simkit::Task<void> read_span(pfs::StripedFs& fs, hw::NodeId n,
                             pfs::FileId f, std::uint64_t offset,
                             std::uint64_t len) {
  for (std::uint64_t off = offset; off < offset + len; off += kPiece) {
    co_await fs.pread(n, f, off, kPiece);
  }
}

// -- the five reuse textures ----------------------------------------------

/// SCF: a hot integral file re-read every iteration, with a cold 16 MB
/// scan (another tenant's dump being read back) interleaved every other
/// iteration.  The hot set (1.5 MB = 12 blocks per node) fits the 2 MB
/// server caches; the scan is 8x them, so LRU loses the hot set to
/// every scan while ARC's frequency list keeps it resident.
simkit::Task<void> wl_scf(pfs::StripedFs& fs, hw::NodeId n, int iters) {
  const pfs::FileId hot = fs.create("scf.hot");
  const pfs::FileId cold = fs.create("scf.cold");
  const std::uint64_t hot_bytes = 3 * kMiB / 2;
  co_await read_span(fs, n, hot, 0, hot_bytes);  // cold prime pass
  for (int i = 0; i < iters; ++i) {
    co_await read_span(fs, n, hot, 0, hot_bytes);
    if (i % 2 == 1) co_await read_span(fs, n, cold, 0, 16 * kMiB);
  }
}

/// FFT: strided 8 KB transpose writes over 16 MB, flush, then two
/// sequential re-read passes.
simkit::Task<void> wl_fft(pfs::StripedFs& fs, hw::NodeId n, int iters) {
  const pfs::FileId f = fs.create("fft");
  for (int it = 0; it < iters; ++it) {
    for (std::uint64_t i = 0; i < 2048; ++i) {
      co_await fs.pwrite(n, f, i * 8192, 8192);
    }
    co_await fs.flush(n, f);
    co_await read_span(fs, n, f, 0, 16 * kMiB);
    co_await read_span(fs, n, f, 0, 16 * kMiB);
  }
}

/// AST: skewed random reads — 3 of 4 accesses go to a hot 2 MB subset
/// of a 32 MB orbital file, the rest anywhere.  ARC's frequency list
/// should keep the hot subset resident through the uniform noise.
simkit::Task<void> wl_ast(pfs::StripedFs& fs, hw::NodeId n, int iters) {
  const pfs::FileId f = fs.create("ast");
  const std::uint64_t pieces = 32 * kMiB / kPiece;
  const std::uint64_t hot_pieces = 2 * kMiB / kPiece;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(iters); ++i) {
    const std::uint64_t r = mix(i);
    const std::uint64_t piece = (r % 4 != 0)
                                    ? (r / 7) % hot_pieces
                                    : (r / 7) % pieces;
    co_await fs.pread(n, f, piece * kPiece, kPiece);
  }
}

/// Hartree-Fock: a pure sequential dump (write-behind absorbs it); no
/// block is ever revisited.
simkit::Task<void> wl_hartree(pfs::StripedFs& fs, hw::NodeId n, int iters) {
  const pfs::FileId f = fs.create("hartree");
  const std::uint64_t bytes = 16 * kMiB * static_cast<unsigned>(iters);
  for (std::uint64_t off = 0; off < bytes; off += kPiece) {
    co_await fs.pwrite(n, f, off, kPiece);
  }
  co_await fs.flush(n, f);
}

/// Seismic: one pass over a trace file far larger than the caches.
simkit::Task<void> wl_seismic(pfs::StripedFs& fs, hw::NodeId n, int iters) {
  const pfs::FileId f = fs.create("seismic");
  co_await read_span(fs, n, f, 0,
                     32 * kMiB * static_cast<unsigned>(iters));
}

struct App {
  const char* name;
  simkit::Task<void> (*body)(pfs::StripedFs&, hw::NodeId, int);
  int iters;  // at scale 1.0
};

constexpr App kApps[] = {
    {"scf_reread", wl_scf, 6},
    {"fft_transpose", wl_fft, 2},
    {"ast_orbitals", wl_ast, 3000},
    {"hartree_dump", wl_hartree, 2},
    {"seismic_stream", wl_seismic, 2},
};

Result run_one(const App& app, iosrv::PolicyKind policy, double scale) {
  simkit::Engine eng;
  hw::MachineConfig cfg = hw::MachineConfig::paragon_small(4, 2);
  cfg.io.server.policy = policy;
  hw::Machine machine(eng, cfg);
  pfs::StripedFs fs(machine);
  const int iters =
      std::max(1, static_cast<int>(app.iters * std::min(scale, 4.0)));
  Result res;
  eng.spawn([](simkit::Engine& e, hw::Machine& m, pfs::StripedFs& fs,
               const App& app, int iters, Result& out)
                -> simkit::Task<void> {
    const simkit::Time t0 = e.now();
    co_await app.body(fs, m.compute_node(0), iters);
    out.elapsed = e.now() - t0;
    for (std::size_t i = 0; i < fs.io_node_count(); ++i) {
      const iosrv::CachePolicy& c = fs.io_node(i).cache();
      out.hits += c.hits();
      out.misses += c.misses();
      out.evictions += c.evictions();
    }
  }(eng, machine, fs, app, iters, res));
  eng.run();
  return res;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();
  constexpr iosrv::PolicyKind kPolicies[] = {iosrv::PolicyKind::kLru,
                                             iosrv::PolicyKind::kArc};

  const std::vector<Result> results = ctx.map<Result>(
      std::size(kApps) * std::size(kPolicies), [&](std::size_t i) {
        return run_one(kApps[i / std::size(kPolicies)],
                       kPolicies[i % std::size(kPolicies)], opt.scale);
      });
  auto at = [&](std::size_t app, std::size_t pol) -> const Result& {
    return results[app * std::size(kPolicies) + pol];
  };

  expt::Table table({"app", "policy", "hits", "misses", "hit %",
                     "evictions", "client time (s)"});
  for (std::size_t a = 0; a < std::size(kApps); ++a) {
    for (std::size_t p = 0; p < std::size(kPolicies); ++p) {
      const Result& r = at(a, p);
      table.add_row({kApps[a].name,
                     std::string(iosrv::to_string(kPolicies[p])),
                     expt::fmt_u64(r.hits), expt::fmt_u64(r.misses),
                     expt::fmt("%.1f", 100.0 * r.hit_rate()),
                     expt::fmt_u64(r.evictions),
                     expt::fmt("%.2f", r.elapsed)});
    }
  }
  std::uint64_t lru_total = 0, arc_total = 0;
  for (std::size_t a = 0; a < std::size(kApps); ++a) {
    lru_total += at(a, 0).hits;
    arc_total += at(a, 1).hits;
  }
  ctx.printf(
      "Server cache replacement: LRU vs ARC over the five apps' reuse "
      "patterns (2 I/O nodes, 2 MB cache each)\n%s\n",
      (opt.csv ? table.csv() : table.str()).c_str());
  ctx.printf("Aggregate hits: lru %llu, arc %llu\n\n",
             static_cast<unsigned long long>(lru_total),
             static_cast<unsigned long long>(arc_total));

  ctx.finish_metrics();

  if (opt.check) {
    const Result& scf_lru = at(0, 0);
    const Result& scf_arc = at(0, 1);
    const Result& ast_lru = at(2, 0);
    const Result& ast_arc = at(2, 1);
    ctx.expect(arc_total > lru_total,
               "ARC wins aggregate hits over the app mix (" +
                   expt::fmt_u64(arc_total) + " vs " +
                   expt::fmt_u64(lru_total) + ")");
    ctx.expect(scf_arc.hit_rate() > scf_lru.hit_rate(),
               "ARC protects the scan-polluted SCF re-read set (" +
                   expt::fmt("%.1f", 100.0 * scf_arc.hit_rate()) +
                   "% vs " +
                   expt::fmt("%.1f", 100.0 * scf_lru.hit_rate()) + "%)");
    ctx.expect(scf_arc.elapsed < scf_lru.elapsed,
               "the SCF hit-rate win shows up in client time");
    ctx.expect(ast_arc.hit_rate() > ast_lru.hit_rate(),
               "ARC's frequency list wins on skewed random reads");
    for (std::size_t a : {std::size_t{3}, std::size_t{4}}) {
      ctx.expect(at(a, 0).hit_rate() < 0.05 && at(a, 1).hit_rate() < 0.05,
                 std::string(kApps[a].name) +
                     ": pure streams have no reuse for either policy");
    }
    ctx.expect(scf_lru.evictions > 0 && scf_arc.evictions > 0,
               "eviction accounting is live for both policies");
  }
}

const scenario::Registration reg{{
    .name = "server_cache_policy",
    .title = "I/O-server cache replacement: LRU vs ARC over app reuse mixes",
    .description =
        "Runs five app-inspired reuse textures (SCF scan-polluted re-reads, "
        "FFT transpose, AST skewed random, Hartree dump, seismic stream) "
        "under LRU and ARC server caches. --check asserts ARC wins where "
        "reuse meets pollution and that pure streams give neither policy "
        "anything.",
    .default_scale = 1.0,
    .grid = {{"app",
              {"scf_reread", "fft_transpose", "ast_orbitals", "hartree_dump",
               "seismic_stream"}},
             {"policy", {"lru", "arc"}}},
    .run = run,
}};

}  // namespace
