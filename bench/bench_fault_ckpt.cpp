// Checkpoint-interval x fault-rate tradeoff for SCF 1.1 under injected
// I/O-node crashes.
//
// The classic result (Young's approximation): checkpoint too often and
// the coordinated writes eat the run; too rarely and every crash rolls
// back a long stretch of lost work.  Total execution time is minimized at
// an interior interval near sqrt(2 * C * MTBF).  This bench replays the
// same deterministic crash plan against a sweep of intervals (0 = no
// checkpointing) and reports the exec-time split from ckpt::Report; the
// --check shape asserts the minimum is interior — neither the smallest
// tested interval nor "never checkpoint" wins.
#include <cstdio>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "ckpt/workloads.hpp"
#include "exp/metrics_run.hpp"
#include "exp/options.hpp"
#include "exp/report.hpp"
#include "exp/resilience.hpp"
#include "exp/table.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::size_t kIoNodes = 4;
constexpr double kMtbf = 60.0;    // cluster-wide crash rate (s)
constexpr double kOutage = 5.0;   // reboot window per crash (s)

ckpt::Report run_once(int interval_steps, double scale) {
  simkit::Engine eng;
  hw::MachineConfig mc = hw::MachineConfig::paragon_large(8, kIoNodes);
  hw::Machine machine(eng, mc);

  // The same plan for every interval: runs differ only in checkpoint
  // policy, so exec-time differences are attributable to it.
  fault::Injector injector(fault::InjectionPlan::poisson_node_crashes(
      kIoNodes, kMtbf, kOutage, /*horizon=*/50000.0, /*seed=*/15));
  pfs::StripedFs fs(machine, &injector);

  apps::ScfConfig sc;
  sc.nprocs = 8;
  sc.io_nodes = kIoNodes;
  sc.n_basis = 140;  // MEDIUM problem, many iterations
  sc.iterations = 49;
  sc.scale = scale;
  ckpt::Workload w = ckpt::scf11_workload(sc);
  // Checkpoint the full restart volume (density/Fock plus the screening
  // and geometry tables a cold restart needs), not just the matrices —
  // this is what puts a real price on checkpointing too often.
  w.state_bytes_per_rank = 8ULL << 20;

  ckpt::Options opt;
  opt.ckpt_interval_steps = interval_steps;
  opt.retry.max_attempts = 4;
  opt.retry.backoff_ms = 5.0;
  return ckpt::run(machine, fs, &injector, w, opt);
}

}  // namespace

int main(int argc, char** argv) {
  expt::Options opt(0.25);
  opt.parse(argc, argv);
  expt::MetricsRun mrun(opt);

  const std::vector<int> intervals = {1, 2, 4, 8, 16, 24, 0};
  expt::Table table({"ckpt every", "exec (s)", "ckpt ovhd (s)",
                     "lost work (s)", "recovery (s)", "ckpts", "restarts"});
  std::vector<ckpt::Report> reps;
  int best = -1;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const int iv = intervals[i];
    reps.push_back(run_once(iv, opt.scale));
    const ckpt::Report& r = reps.back();
    table.add_row({iv == 0 ? "never" : expt::fmt_u64(iv) + " steps",
                   expt::fmt_s(r.exec_time), expt::fmt_s(r.ckpt_overhead),
                   expt::fmt_s(r.lost_work), expt::fmt_s(r.recovery_time),
                   expt::fmt_u64(r.checkpoints), expt::fmt_u64(r.restarts)});
    if (best < 0 || r.exec_time < reps[static_cast<std::size_t>(best)]
                                      .exec_time) {
      best = static_cast<int>(i);
    }
  }

  std::printf("Fault+checkpoint: SCF 1.1 (MEDIUM, 8 procs, %zu I/O nodes), "
              "poisson crashes MTBF=%.0fs outage=%.0fs\n%s\n",
              kIoNodes, kMtbf, kOutage,
              (opt.csv ? table.csv() : table.str()).c_str());
  std::printf("Best interval: %s\n%s\n",
              intervals[static_cast<std::size_t>(best)] == 0
                  ? "never"
                  : expt::fmt_u64(intervals[static_cast<std::size_t>(best)])
                        .c_str(),
              expt::resilience_report(reps[static_cast<std::size_t>(best)],
                                      nullptr,
                                      opt.metrics ? &mrun.registry : nullptr)
                  .c_str());

  // Young/Daly analytical optimum from measured per-checkpoint cost (the
  // interval-1 run averages it over the most checkpoints) and the
  // productive step duration of the never-checkpoint run.
  const ckpt::Report& every = reps.front();
  const ckpt::Report& never = reps.back();
  const double ckpt_cost =
      every.checkpoints > 0 ? every.ckpt_overhead / every.checkpoints : 0.0;
  const int steps = 48;  // scf11_workload: iterations - 1
  const double step_s =
      (never.exec_time - never.lost_work - never.recovery_time) / steps;
  const double opt_s = ckpt::young_daly_interval(ckpt_cost, kMtbf);
  const double opt_steps = step_s > 0.0 ? opt_s / step_s : 0.0;
  std::printf("Young/Daly optimum: checkpoint every %.1f s = %.1f steps "
              "(ckpt cost %.2f s, step %.2f s, MTBF %.0f s)\n\n",
              opt_s, opt_steps, ckpt_cost, step_s, kMtbf);

  mrun.finish();

  if (opt.check) {
    expt::Checker chk;
    bool all_done = true;
    for (const auto& r : reps) all_done = all_done && r.completed;
    chk.expect(all_done, "every configuration runs to completion");
    chk.expect(intervals[static_cast<std::size_t>(best)] != 0,
               "checkpointing beats never checkpointing under crashes");
    chk.expect(static_cast<std::size_t>(best) != 0,
               "an interior interval beats checkpointing every step");
    chk.expect(never.lost_work >
                   reps[static_cast<std::size_t>(best)].lost_work,
               "longer intervals lose more work per crash");
    // The swept minimum should land within one grid notch of the
    // analytical optimum (the interval grid is 2x-spaced, so a factor-3
    // band around Young/Daly covers exactly the neighbouring notches).
    const double best_steps =
        static_cast<double>(intervals[static_cast<std::size_t>(best)]);
    chk.expect(opt_steps > 0.0 && best_steps > opt_steps / 3.0 &&
                   best_steps < opt_steps * 3.0,
               "swept best interval (" + expt::fmt("%.0f", best_steps) +
                   " steps) within one grid notch of Young/Daly (" +
                   expt::fmt("%.1f", opt_steps) + " steps)");
    return chk.exit_code();
  }
  return 0;
}
