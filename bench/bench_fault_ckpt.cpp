// Scenario "fault_ckpt" — checkpoint-interval x fault-rate tradeoff for
// SCF 1.1 under injected I/O-node crashes.
//
// The classic result (Young's approximation): checkpoint too often and
// the coordinated writes eat the run; too rarely and every crash rolls
// back a long stretch of lost work.  Total execution time is minimized at
// an interior interval near sqrt(2 * C * MTBF).  This bench replays the
// same deterministic crash plan against a sweep of intervals (0 = no
// checkpointing) and reports the exec-time split from ckpt::Report; the
// --check shape asserts the minimum is interior — neither the smallest
// tested interval nor "never checkpoint" wins.
//
// --policy=NAME (sync_full | sync_incr | async_full | async_incr) runs the
// sweep under that checkpoint policy and appends a four-policy comparison
// at the sync_full Young/Daly interval: the paper's software-technique
// argument applied to resilience — overlap (async) and fewer/smaller
// transfers (incremental) beat paying the full synchronous stall.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "ckpt/workloads.hpp"
#include "exp/report.hpp"
#include "exp/resilience.hpp"
#include "exp/table.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::size_t kIoNodes = 4;
constexpr double kMtbf = 60.0;    // cluster-wide crash rate (s)
constexpr double kOutage = 5.0;   // reboot window per crash (s)

ckpt::Report run_once(int interval_steps, double scale,
                      ckpt::Policy pol = {}) {
  simkit::Engine eng;
  hw::MachineConfig mc = hw::MachineConfig::paragon_large(8, kIoNodes);
  hw::Machine machine(eng, mc);

  // The same plan for every interval: runs differ only in checkpoint
  // policy, so exec-time differences are attributable to it.
  fault::Injector injector(fault::InjectionPlan::poisson_node_crashes(
      kIoNodes, kMtbf, kOutage, /*horizon=*/50000.0, /*seed=*/15));
  pfs::StripedFs fs(machine, &injector);

  apps::ScfConfig sc;
  sc.nprocs = 8;
  sc.io_nodes = kIoNodes;
  sc.n_basis = 140;  // MEDIUM problem, many iterations
  sc.iterations = 49;
  sc.scale = scale;
  ckpt::Workload w = ckpt::scf11_workload(sc);
  // Checkpoint the full restart volume (density/Fock plus the screening
  // and geometry tables a cold restart needs), not just the matrices —
  // this is what puts a real price on checkpointing too often.
  w.state_bytes_per_rank = 8ULL << 20;

  ckpt::Options opt;
  opt.ckpt_interval_steps = interval_steps;
  opt.policy = pol;
  // Alternate full/delta checkpoints: restart replays at most one delta,
  // so chain recovery stays near sync_full cost while the byte savings
  // (and for async, the faster-committing drains) remain.
  opt.policy.full_every = 2;
  opt.retry.max_attempts = 4;
  opt.retry.backoff_ms = 5.0;
  return ckpt::run(machine, fs, &injector, w, opt);
}

double total_overhead(const ckpt::Report& r) {
  return r.ckpt_overhead + r.lost_work + r.recovery_time;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  // Default (no --policy flag) is sync_full and prints byte-identically to
  // the pre-policy bench — the determinism CI job pins that.
  const bool policy_given = !opt.policy.empty();
  ckpt::Policy pol;
  if (policy_given) {
    const auto parsed = ckpt::Policy::parse(opt.policy);
    if (!parsed) {
      throw scenario::UsageError(
          "unknown --policy=" + opt.policy +
          " (want sync_full | sync_incr | async_full | async_incr)");
    }
    pol = *parsed;
  }

  const std::vector<int> intervals = {1, 2, 4, 8, 16, 24, 0};
  const std::vector<ckpt::Report> reps = ctx.map<ckpt::Report>(
      intervals.size(), [&](std::size_t i) {
        return run_once(intervals[i], opt.scale, pol);
      });

  expt::Table table({"ckpt every", "exec (s)", "ckpt ovhd (s)",
                     "lost work (s)", "recovery (s)", "ckpts", "restarts"});
  int best = -1;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const int iv = intervals[i];
    const ckpt::Report& r = reps[i];
    table.add_row({iv == 0 ? "never" : expt::fmt_u64(iv) + " steps",
                   expt::fmt_s(r.exec_time), expt::fmt_s(r.ckpt_overhead),
                   expt::fmt_s(r.lost_work), expt::fmt_s(r.recovery_time),
                   expt::fmt_u64(r.checkpoints), expt::fmt_u64(r.restarts)});
    if (best < 0 || r.exec_time < reps[static_cast<std::size_t>(best)]
                                      .exec_time) {
      best = static_cast<int>(i);
    }
  }

  ctx.printf("Fault+checkpoint: SCF 1.1 (MEDIUM, 8 procs, %zu I/O nodes), "
             "poisson crashes MTBF=%.0fs outage=%.0fs%s\n%s\n",
             kIoNodes, kMtbf, kOutage,
             policy_given ? (", policy=" + pol.name()).c_str() : "",
             (opt.csv ? table.csv() : table.str()).c_str());
  ctx.printf("Best interval: %s\n%s\n",
             intervals[static_cast<std::size_t>(best)] == 0
                 ? "never"
                 : expt::fmt_u64(intervals[static_cast<std::size_t>(best)])
                       .c_str(),
             expt::resilience_report(reps[static_cast<std::size_t>(best)],
                                     nullptr,
                                     opt.metrics ? &ctx.registry() : nullptr)
                 .c_str());

  // Young/Daly analytical optimum from measured per-checkpoint cost (the
  // interval-1 run averages it over the most checkpoints) and the
  // productive step duration of the never-checkpoint run.
  const ckpt::Report& every = reps.front();
  const ckpt::Report& never = reps.back();
  const double ckpt_cost =
      every.checkpoints > 0 ? every.ckpt_overhead / every.checkpoints : 0.0;
  const int steps = 48;  // scf11_workload: iterations - 1
  const double step_s =
      (never.exec_time - never.lost_work - never.recovery_time) / steps;
  const double opt_s = ckpt::young_daly_interval(ckpt_cost, kMtbf);
  const double opt_steps = step_s > 0.0 ? opt_s / step_s : 0.0;
  ctx.printf("Young/Daly optimum: checkpoint every %.1f s = %.1f steps "
             "(ckpt cost %.2f s, step %.2f s, MTBF %.0f s)\n\n",
             opt_s, opt_steps, ckpt_cost, step_s, kMtbf);

  // With --policy: compare all four policies at the *sync_full* Young/Daly
  // interval (the classic analysis prices a blocking full checkpoint; the
  // software techniques then lower the bill at that same cadence).
  std::vector<ckpt::Report> cmp;
  int yd_steps = 0;
  if (policy_given) {
    ckpt::Report sync_every =
        pol.is_sync_full()
            ? every
            : ctx.map<ckpt::Report>(1, [&](std::size_t) {
                return run_once(1, opt.scale, ckpt::Policy{});
              })[0];
    const double sync_cost =
        sync_every.checkpoints > 0
            ? sync_every.ckpt_overhead / sync_every.checkpoints
            : 0.0;
    const double sync_opt_s = ckpt::young_daly_interval(sync_cost, kMtbf);
    yd_steps = step_s > 0.0
                   ? std::max(1, static_cast<int>(std::lround(
                                     sync_opt_s / step_s)))
                   : 1;
    const char* names[] = {"sync_full", "sync_incr", "async_full",
                           "async_incr"};
    cmp = ctx.map<ckpt::Report>(std::size(names), [&](std::size_t i) {
      return run_once(yd_steps, opt.scale, *ckpt::Policy::parse(names[i]));
    });
    expt::Table pt({"policy", "exec (s)", "blocked (s)", "lost (s)",
                    "recovery (s)", "total ovhd (s)", "ckpts (f+d)",
                    "dropped", "MB"});
    for (std::size_t i = 0; i < std::size(names); ++i) {
      const ckpt::Report& r = cmp[i];
      pt.add_row({names[i], expt::fmt_s(r.exec_time),
                  expt::fmt_s(r.ckpt_overhead), expt::fmt_s(r.lost_work),
                  expt::fmt_s(r.recovery_time),
                  expt::fmt_s(total_overhead(r)),
                  expt::fmt_u64(r.full_checkpoints) + "+" +
                      expt::fmt_u64(r.delta_checkpoints),
                  expt::fmt_u64(r.dropped_checkpoints),
                  expt::fmt("%.1f",
                            static_cast<double>(r.ckpt_bytes) / 1e6)});
    }
    ctx.printf("Policy comparison at Young/Daly interval (%d steps):\n%s\n",
               yd_steps, (opt.csv ? pt.csv() : pt.str()).c_str());
  }

  ctx.finish_metrics();

  if (opt.check) {
    bool all_done = true;
    for (const auto& r : reps) all_done = all_done && r.completed;
    ctx.expect(all_done, "every configuration runs to completion");
    if (!policy_given || pol.is_sync_full()) {
      // The interior-minimum shape is a property of *blocking* full
      // checkpoints; async/incremental flatten the checkpoint-cost side
      // of the tradeoff, so these sweep shapes only bind for sync_full.
      ctx.expect(intervals[static_cast<std::size_t>(best)] != 0,
                 "checkpointing beats never checkpointing under crashes");
      ctx.expect(static_cast<std::size_t>(best) != 0,
                 "an interior interval beats checkpointing every step");
      ctx.expect(never.lost_work >
                     reps[static_cast<std::size_t>(best)].lost_work,
                 "longer intervals lose more work per crash");
      // The swept minimum should land within one grid notch of the
      // analytical optimum (the interval grid is 2x-spaced, so a factor-3
      // band around Young/Daly covers exactly the neighbouring notches).
      const double best_steps =
          static_cast<double>(intervals[static_cast<std::size_t>(best)]);
      ctx.expect(opt_steps > 0.0 && best_steps > opt_steps / 3.0 &&
                     best_steps < opt_steps * 3.0,
                 "swept best interval (" + expt::fmt("%.0f", best_steps) +
                     " steps) within one grid notch of Young/Daly (" +
                     expt::fmt("%.1f", opt_steps) + " steps)");
    }
    if (policy_given) {
      const ckpt::Report& sf = cmp[0];
      const ckpt::Report& si = cmp[1];
      const ckpt::Report& af = cmp[2];
      const ckpt::Report& ai = cmp[3];
      bool cmp_done = true;
      for (const auto& r : cmp) cmp_done = cmp_done && r.completed;
      ctx.expect(cmp_done, "every policy completes at the Y/D interval");
      ctx.expect(total_overhead(ai) < total_overhead(sf),
                 "async_incr total overhead (" +
                     expt::fmt_s(total_overhead(ai)) +
                     " s) beats sync_full (" +
                     expt::fmt_s(total_overhead(sf)) + " s)");
      ctx.expect(si.ckpt_bytes < sf.ckpt_bytes &&
                     ai.ckpt_bytes < af.ckpt_bytes,
                 "incremental writes fewer checkpoint bytes than full");
      ctx.expect(af.ckpt_overhead < sf.ckpt_overhead &&
                     ai.ckpt_overhead < si.ckpt_overhead,
                 "async blocks ranks for less time than sync");
    }
  }
}

const scenario::Registration reg{{
    .name = "fault_ckpt",
    .title = "Fault+checkpoint: interval sweep under injected crashes",
    .description =
        "Replays one crash plan against a sweep of checkpoint intervals "
        "for SCF 1.1, plus a four-policy comparison via --policy=NAME. "
        "--check asserts the interior optimum lands within a grid notch "
        "of the Young/Daly interval.",
    .default_scale = 0.25,
    .grid = {{"interval", {"1", "2", "4", "8", "16", "24", "never"}}},
    .run = run,
}};

}  // namespace
