// Scenario "fig5" — reproduces Figure 5: 2-D out-of-core FFT on the small
// Paragon — I/O time and total time for (a) the original program on 2 I/O
// nodes, (b) the original on 4, (c) the layout-optimized program on 2.
//
// Paper findings: the unoptimized I/O time RISES past 4 compute nodes
// with 2 I/O nodes (past 8 with 4); the optimized program on 2 I/O nodes
// beats the unoptimized on 4 for all processor sizes; I/O is 90-95% of
// execution.
#include <cstdio>
#include <vector>

#include "apps/fft_app.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "scenario/scenario.hpp"

namespace {

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();
  // The paper runs N=4096 (1.5 GB total I/O) with 32 MB nodes.  We model
  // a proportionally scaled regime (N, application memory, and I/O-node
  // caches shrink together), which preserves the op-count ratios between
  // the program versions; see EXPERIMENTS.md.  Default N=1024 with 4 MB
  // strip memory; --full selects N=2048 with 8 MB.
  const std::uint64_t n = opt.scale >= 1.0 ? 2048 : 1024;
  const std::uint64_t mem = opt.scale >= 1.0 ? (8ULL << 20) : (4ULL << 20);

  const std::vector<int> procs = {1, 2, 4, 8, 16};
  struct Cell {
    bool optimized;
    std::size_t io;
  };
  const std::vector<Cell> cells = {{false, 2}, {false, 4}, {true, 2}};
  const std::vector<apps::FftResult> results = ctx.map<apps::FftResult>(
      procs.size() * cells.size(), [&](std::size_t i) {
        const Cell& c = cells[i % cells.size()];
        apps::FftConfig cfg;
        cfg.n = n;
        cfg.nprocs = procs[i / cells.size()];
        cfg.io_nodes = c.io;
        cfg.optimized_layout = c.optimized;
        cfg.mem_bytes = mem;
        return apps::run_fft(cfg);
      });

  expt::Table io_table({"procs", "orig 2io", "orig 4io", "opt 2io"});
  expt::Table total_table({"procs", "orig 2io", "orig 4io", "opt 2io"});
  std::vector<double> u2_io, u4_total, o2_total, u2_frac;
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const int p = procs[pi];
    const apps::FftResult& u2 = results[pi * cells.size() + 0];
    const apps::FftResult& u4 = results[pi * cells.size() + 1];
    const apps::FftResult& o2 = results[pi * cells.size() + 2];
    const double u2_io_wall = u2.io_time / p;
    io_table.add_row({expt::fmt_u64(static_cast<unsigned long long>(p)),
                      expt::fmt_s(u2_io_wall), expt::fmt_s(u4.io_time / p),
                      expt::fmt_s(o2.io_time / p)});
    total_table.add_row({expt::fmt_u64(static_cast<unsigned long long>(p)),
                         expt::fmt_s(u2.exec_time),
                         expt::fmt_s(u4.exec_time),
                         expt::fmt_s(o2.exec_time)});
    u2_io.push_back(u2_io_wall);
    u4_total.push_back(u4.exec_time);
    o2_total.push_back(o2.exec_time);
    u2_frac.push_back(u2.io_time / (u2.io_time + u2.compute_time));
  }
  ctx.printf("Figure 5a: FFT per-process I/O time (s), N=%llu (%.2f GB "
             "total I/O)\n%s\n",
             static_cast<unsigned long long>(n),
             6.0 * static_cast<double>(n) * n * 16 / 1e9,
             (opt.csv ? io_table.csv() : io_table.str()).c_str());
  ctx.printf("Figure 5b: FFT total execution time (s)\n%s\n",
             (opt.csv ? total_table.csv() : total_table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(u2_io.back() > u2_io[2],
               "orig/2io I/O time increases past 4 compute nodes");
    bool opt_wins_everywhere = true;
    for (std::size_t i = 0; i < procs.size(); ++i) {
      opt_wins_everywhere = opt_wins_everywhere &&
                            o2_total[i] < u4_total[i];
    }
    ctx.expect(opt_wins_everywhere,
               "opt on 2 I/O nodes beats orig on 4 for all proc counts");
    ctx.expect(u2_frac[2] > 0.8, "I/O dominates execution (paper: 90-95%)");
  }
}

const scenario::Registration reg{{
    .name = "fig5",
    .title = "Figure 5: out-of-core FFT I/O and total time",
    .description =
        "Runs the 2-D out-of-core FFT on the small Paragon, original vs "
        "layout-optimized. --check asserts unoptimized I/O time rises "
        "with compute nodes and that the optimized program on 2 I/O "
        "nodes beats the original on 4 at every size.",
    .default_scale = 0.5,
    .grid = {{"procs", {"1", "2", "4", "8", "16"}},
             {"variant", {"orig/2io", "orig/4io", "opt/2io"}}},
    .run = run,
}};

}  // namespace
