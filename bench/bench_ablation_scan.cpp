// Ablation: disk scheduling discipline (FIFO vs SCAN) under the paper's
// scattered-access patterns.
//
// The reproduction's default is FIFO — the conservative choice, since PFS
// and PIOFS server documentation does not promise elevator scheduling —
// but real AIX/OSF device drivers did sweep.  This bench replays BTIO's
// unoptimized pencil writes under both disciplines: SCAN softens (but
// does not remove) the unoptimized penalty, so the paper's conclusions
// hold either way.
#include <cstdio>

#include "exp/metrics_run.hpp"
#include "exp/options.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace {

double run_btio_pattern(bool scan, int procs) {
  simkit::Engine eng;
  hw::MachineConfig cfg = hw::MachineConfig::sp2(
      static_cast<std::size_t>(procs));
  cfg.io.scan_scheduling = scan;
  hw::Machine machine(eng, cfg);
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("scan");
  return mprt::Cluster::execute(
      machine, procs, [&](mprt::Comm& c) -> simkit::Task<void> {
        // One dump of Class-A pencils for this rank.
        const int per_rank = 4096 / c.size();
        for (int i = 0; i < per_rank; ++i) {
          const auto row = static_cast<std::uint64_t>(
              c.rank() + i * c.size());
          co_await fs.pwrite(c.node(), f, row * 2560, 2560);
        }
        co_await mprt::barrier(c);
      });
}

}  // namespace

int main(int argc, char** argv) {
  expt::Options opt(1.0);
  opt.parse(argc, argv);
  expt::MetricsRun mrun(opt);

  expt::Table table({"procs", "FIFO (s)", "SCAN (s)", "SCAN speedup"});
  double worst_gain = 1e9;
  for (int p : {4, 16, 64}) {
    const double fifo = run_btio_pattern(false, p);
    const double scan = run_btio_pattern(true, p);
    worst_gain = std::min(worst_gain, fifo / scan);
    table.add_row({expt::fmt_u64(static_cast<unsigned long long>(p)),
                   expt::fmt("%.2f", fifo), expt::fmt("%.2f", scan),
                   expt::fmt("%.2fx", fifo / scan)});
  }
  std::printf("Ablation: disk scheduling under BTIO's scattered writes "
              "(one Class-A dump)\n%s\n",
              (opt.csv ? table.csv() : table.str()).c_str());

  mrun.finish();
  if (opt.metrics) {
    std::printf("%s", expt::metrics_report(mrun.registry).c_str());
  }

  if (opt.check) {
    expt::Checker chk;
    chk.expect(worst_gain >= 0.95,
               "SCAN never loses to FIFO on scattered access");
    return chk.exit_code();
  }
  return 0;
}
