// Scenario "ablation_scan" — disk scheduling discipline (FIFO vs SCAN)
// under the paper's scattered-access patterns.
//
// The reproduction's default is FIFO — the conservative choice, since PFS
// and PIOFS server documentation does not promise elevator scheduling —
// but real AIX/OSF device drivers did sweep.  This bench replays BTIO's
// unoptimized pencil writes under both disciplines: SCAN softens (but
// does not remove) the unoptimized penalty, so the paper's conclusions
// hold either way.
#include <algorithm>
#include <cstdio>

#include "exp/report.hpp"
#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

double run_btio_pattern(bool scan, int procs) {
  simkit::Engine eng;
  hw::MachineConfig cfg = hw::MachineConfig::sp2(
      static_cast<std::size_t>(procs));
  cfg.io.scan_scheduling = scan;
  hw::Machine machine(eng, cfg);
  pfs::StripedFs fs(machine);
  const pfs::FileId f = fs.create("scan");
  return mprt::Cluster::execute(
      machine, procs, [&](mprt::Comm& c) -> simkit::Task<void> {
        // One dump of Class-A pencils for this rank.
        const int per_rank = 4096 / c.size();
        for (int i = 0; i < per_rank; ++i) {
          const auto row = static_cast<std::uint64_t>(
              c.rank() + i * c.size());
          co_await fs.pwrite(c.node(), f, row * 2560, 2560);
        }
        co_await mprt::barrier(c);
      });
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const int procs[] = {4, 16, 64};
  struct Point {
    double fifo;
    double scan;
  };
  const std::vector<Point> points =
      ctx.map<Point>(std::size(procs), [&](std::size_t i) {
        return Point{run_btio_pattern(false, procs[i]),
                     run_btio_pattern(true, procs[i])};
      });

  expt::Table table({"procs", "FIFO (s)", "SCAN (s)", "SCAN speedup"});
  double worst_gain = 1e9;
  for (std::size_t i = 0; i < std::size(procs); ++i) {
    const Point& pt = points[i];
    worst_gain = std::min(worst_gain, pt.fifo / pt.scan);
    table.add_row(
        {expt::fmt_u64(static_cast<unsigned long long>(procs[i])),
         expt::fmt("%.2f", pt.fifo), expt::fmt("%.2f", pt.scan),
         expt::fmt("%.2fx", pt.fifo / pt.scan)});
  }
  ctx.printf("Ablation: disk scheduling under BTIO's scattered writes "
             "(one Class-A dump)\n%s\n",
             (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(worst_gain >= 0.95,
               "SCAN never loses to FIFO on scattered access");
  }
}

const scenario::Registration reg{{
    .name = "ablation_scan",
    .title = "Ablation: FIFO vs SCAN disk scheduling",
    .description =
        "Replays BTIO's unoptimized pencil writes under FIFO and SCAN "
        "disk scheduling. --check asserts SCAN softens but does not "
        "remove the scattered-access penalty, so the paper's conclusions "
        "hold under either driver.",
    .default_scale = 1.0,
    .grid = {{"procs", {"4", "16", "64"}}, {"discipline", {"FIFO", "SCAN"}}},
    .run = run,
}};

}  // namespace
