// Scenario "table5" — reproduces Table 5: which optimization is effective
// for which application.  A tick means the measured speedup from enabling
// that optimization (alone) exceeds 10% of execution time on a
// representative configuration.
#include <cstdio>
#include <string>

#include "apps/ast.hpp"
#include "apps/btio.hpp"
#include "apps/fft_app.hpp"
#include "apps/scf.hpp"
#include "apps/scf3.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "scenario/scenario.hpp"

namespace {

std::string tick(double speedup) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s (%.2fx)", speedup > 1.05 ? "yes" : "-",
                speedup);
  return buf;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  // Ten independent single-app runs; each grid point is one (application,
  // variant) cell of the table.
  enum Point {
    kScfOrig, kScfPassion, kScfPrefetch,   // SCF 1.1
    kS30Unbal, kS30Bal,                    // SCF 3.0
    kFftUnopt, kFftOpt,                    // FFT
    kBtUnopt, kBtColl,                     // BTIO
    kAstUnopt, kAstColl,                   // AST
    kNumPoints
  };
  const std::vector<double> exec =
      ctx.map<double>(kNumPoints, [&](std::size_t i) -> double {
        switch (static_cast<Point>(i)) {
          case kScfOrig:
          case kScfPassion:
          case kScfPrefetch: {
            // --- SCF 1.1: efficient interface + prefetching ----------
            apps::ScfConfig scf;
            scf.nprocs = 8;
            scf.io_nodes = 12;
            scf.n_basis = 140;
            scf.iterations = 10;
            scf.scale = opt.scale;
            scf.version = i == kScfOrig ? apps::ScfVersion::kOriginal
                          : i == kScfPassion
                              ? apps::ScfVersion::kPassion
                              : apps::ScfVersion::kPassionPrefetch;
            return apps::run_scf11(scf).exec_time;
          }
          case kS30Unbal:
          case kS30Bal: {
            // --- SCF 3.0: balanced I/O (plus the interface/prefetch
            // carried over) ------------------------------------------
            apps::Scf30Config s30;
            s30.nprocs = 8;
            // Plenty of I/O nodes: iterations are gated by each
            // client's own file scan, which is exactly when balancing
            // the file sizes pays off; many read iterations amortize
            // the one-time balancing cost.
            s30.io_nodes = 64;
            s30.n_basis = 108;
            s30.iterations = 20;
            s30.cached_percent = 100.0;
            s30.imbalance = 0.5;
            s30.fock_flops_per_integral = 5.0;
            s30.scale = 1.0;
            s30.balanced_io = i == kS30Bal;
            return apps::run_scf30(s30).exec_time;
          }
          case kFftUnopt:
          case kFftOpt: {
            // --- FFT: file layout -----------------------------------
            apps::FftConfig fft;
            fft.n = 1024;
            fft.nprocs = 8;
            fft.io_nodes = 2;
            fft.mem_bytes = 4ULL << 20;
            fft.optimized_layout = i == kFftOpt;
            return apps::run_fft(fft).exec_time;
          }
          case kBtUnopt:
          case kBtColl: {
            // --- BTIO: collective I/O -------------------------------
            apps::BtioConfig bt;
            bt.nprocs = 36;
            bt.scale = opt.scale;
            bt.collective = i == kBtColl;
            return apps::run_btio(bt).exec_time;
          }
          case kAstUnopt:
          case kAstColl: {
            // --- AST: collective I/O --------------------------------
            apps::AstConfig ast;
            ast.grid = 2048;
            ast.nprocs = 32;
            ast.scale = opt.scale;
            ast.collective = i == kAstColl;
            return apps::run_ast(ast).exec_time;
          }
          case kNumPoints:
            break;
        }
        return 0.0;
      });
  const double scf_o = exec[kScfOrig], scf_p = exec[kScfPassion],
               scf_f = exec[kScfPrefetch];
  const double s30_unbal = exec[kS30Unbal], s30_bal = exec[kS30Bal];
  const double fft_u = exec[kFftUnopt], fft_o = exec[kFftOpt];
  const double bt_u = exec[kBtUnopt], bt_o = exec[kBtColl];
  const double ast_u = exec[kAstUnopt], ast_o = exec[kAstColl];

  expt::Table table({"Application", "collective I/O", "file layout",
                     "efficient interface", "prefetching", "balanced I/O"});
  table.add_row({"SCF 1.1", "-", "-", tick(scf_o / scf_p),
                 tick(scf_p / scf_f), "-"});
  table.add_row({"SCF 3.0", "-", "-", "yes (carried)", "yes (carried)",
                 tick(s30_unbal / s30_bal)});
  table.add_row({"FFT", "-", tick(fft_u / fft_o), "-", "-", "-"});
  table.add_row({"BTIO", tick(bt_u / bt_o), "-", "-", "-", "-"});
  table.add_row({"AST", tick(ast_u / ast_o), "-", "-", "-", "-"});
  ctx.printf("Table 5: effective optimization techniques (measured "
             "exec-time speedups)\n%s\n",
             (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(scf_o / scf_p > 1.10, "SCF 1.1: efficient interface ticks");
    ctx.expect(scf_p / scf_f > 1.05, "SCF 1.1: prefetching helps");
    ctx.expect(s30_unbal / s30_bal > 1.02, "SCF 3.0: balanced I/O helps");
    ctx.expect(fft_u / fft_o > 1.10, "FFT: file layout ticks");
    ctx.expect(bt_u / bt_o > 1.10, "BTIO: collective I/O ticks");
    ctx.expect(ast_u / ast_o > 1.10, "AST: collective I/O ticks");
  }
}

const scenario::Registration reg{{
    .name = "table5",
    .title = "Table 5: which optimization helps which application",
    .description =
        "Reruns each application with one optimization toggled at a time "
        "and ticks it when the speedup clears 10%. --check asserts the "
        "tick pattern matches the paper's table.",
    .default_scale = 0.25,
    .grid = {{"cell",
              {"scf_orig", "scf_passion", "scf_prefetch", "s30_unbal",
               "s30_bal", "fft_unopt", "fft_opt", "btio_unopt", "btio_coll",
               "ast_unopt", "ast_coll"}}},
    .run = run,
}};

}  // namespace
