// Reproduces Table 5: which optimization is effective for which
// application.  A tick means the measured speedup from enabling that
// optimization (alone) exceeds 10% of execution time on a representative
// configuration.
#include <cstdio>
#include <string>

#include "apps/ast.hpp"
#include "apps/btio.hpp"
#include "apps/fft_app.hpp"
#include "apps/scf.hpp"
#include "apps/scf3.hpp"
#include "exp/metrics_run.hpp"
#include "exp/options.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"

namespace {

std::string tick(double speedup) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s (%.2fx)", speedup > 1.05 ? "yes" : "-",
                speedup);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  expt::Options opt(/*default_scale=*/0.25);
  opt.parse(argc, argv);
  expt::MetricsRun mrun(opt);

  // --- SCF 1.1: efficient interface + prefetching -----------------------
  apps::ScfConfig scf;
  scf.nprocs = 8;
  scf.io_nodes = 12;
  scf.n_basis = 140;
  scf.iterations = 10;
  scf.scale = opt.scale;
  scf.version = apps::ScfVersion::kOriginal;
  const double scf_o = apps::run_scf11(scf).exec_time;
  scf.version = apps::ScfVersion::kPassion;
  const double scf_p = apps::run_scf11(scf).exec_time;
  scf.version = apps::ScfVersion::kPassionPrefetch;
  const double scf_f = apps::run_scf11(scf).exec_time;

  // --- SCF 3.0: balanced I/O (plus the interface/prefetch carried over) -
  apps::Scf30Config s30;
  s30.nprocs = 8;
  // Plenty of I/O nodes: iterations are gated by each client's own file
  // scan, which is exactly when balancing the file sizes pays off; many
  // read iterations amortize the one-time balancing cost.
  s30.io_nodes = 64;
  s30.n_basis = 108;
  s30.iterations = 20;
  s30.cached_percent = 100.0;
  s30.imbalance = 0.5;
  s30.fock_flops_per_integral = 5.0;
  s30.scale = 1.0;
  s30.balanced_io = false;
  const double s30_unbal = apps::run_scf30(s30).exec_time;
  s30.balanced_io = true;
  const double s30_bal = apps::run_scf30(s30).exec_time;

  // --- FFT: file layout --------------------------------------------------
  apps::FftConfig fft;
  fft.n = 1024;
  fft.nprocs = 8;
  fft.io_nodes = 2;
  fft.mem_bytes = 4ULL << 20;
  fft.optimized_layout = false;
  const double fft_u = apps::run_fft(fft).exec_time;
  fft.optimized_layout = true;
  const double fft_o = apps::run_fft(fft).exec_time;

  // --- BTIO / AST: collective I/O ----------------------------------------
  apps::BtioConfig bt;
  bt.nprocs = 36;
  bt.scale = opt.scale;
  bt.collective = false;
  const double bt_u = apps::run_btio(bt).exec_time;
  bt.collective = true;
  const double bt_o = apps::run_btio(bt).exec_time;

  apps::AstConfig ast;
  ast.grid = 2048;
  ast.nprocs = 32;
  ast.scale = opt.scale;
  ast.collective = false;
  const double ast_u = apps::run_ast(ast).exec_time;
  ast.collective = true;
  const double ast_o = apps::run_ast(ast).exec_time;

  expt::Table table({"Application", "collective I/O", "file layout",
                     "efficient interface", "prefetching", "balanced I/O"});
  table.add_row({"SCF 1.1", "-", "-", tick(scf_o / scf_p),
                 tick(scf_p / scf_f), "-"});
  table.add_row({"SCF 3.0", "-", "-", "yes (carried)", "yes (carried)",
                 tick(s30_unbal / s30_bal)});
  table.add_row({"FFT", "-", tick(fft_u / fft_o), "-", "-", "-"});
  table.add_row({"BTIO", tick(bt_u / bt_o), "-", "-", "-", "-"});
  table.add_row({"AST", tick(ast_u / ast_o), "-", "-", "-", "-"});
  std::printf("Table 5: effective optimization techniques (measured "
              "exec-time speedups)\n%s\n",
              (opt.csv ? table.csv() : table.str()).c_str());

  mrun.finish();
  if (opt.metrics) {
    std::printf("%s", expt::metrics_report(mrun.registry).c_str());
  }

  if (opt.check) {
    expt::Checker chk;
    chk.expect(scf_o / scf_p > 1.10, "SCF 1.1: efficient interface ticks");
    chk.expect(scf_p / scf_f > 1.05, "SCF 1.1: prefetching helps");
    chk.expect(s30_unbal / s30_bal > 1.02, "SCF 3.0: balanced I/O helps");
    chk.expect(fft_u / fft_o > 1.10, "FFT: file layout ticks");
    chk.expect(bt_u / bt_o > 1.10, "BTIO: collective I/O ticks");
    chk.expect(ast_u / ast_o > 1.10, "AST: collective I/O ticks");
    return chk.exit_code();
  }
  return 0;
}
