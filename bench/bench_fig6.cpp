// Scenario "fig6" — reproduces Figure 6: BTIO (Class A, 408.9 MB) on the
// SP-2 — I/O time and total time vs processor count for the Unix-style
// and two-phase collective versions.
//
// Paper findings: the unoptimized I/O time moves erratically with the
// processor count and puts a hump in total time around 36 processors;
// collective I/O removes it (46%/49% total reduction at 36/64 procs).
#include <cstdio>
#include <vector>

#include "apps/btio.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "scenario/scenario.hpp"

namespace {

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<int> procs = {1, 4, 9, 16, 25, 36, 49, 64};
  const std::vector<apps::RunResult> results =
      ctx.map<apps::RunResult>(procs.size() * 2, [&](std::size_t i) {
        apps::BtioConfig cfg;
        cfg.problem_class = 'A';
        cfg.nprocs = procs[i / 2];
        cfg.collective = (i % 2) == 1;
        cfg.scale = opt.scale;
        return apps::run_btio(cfg);
      });

  expt::Table table({"procs", "unopt I/O (s)", "opt I/O (s)",
                     "unopt total (s)", "opt total (s)", "reduction"});
  std::vector<double> u_total, o_total, u_io;
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const int p = procs[pi];
    const apps::RunResult& u = results[pi * 2 + 0];
    const apps::RunResult& o = results[pi * 2 + 1];
    u_total.push_back(u.exec_time);
    o_total.push_back(o.exec_time);
    u_io.push_back(u.io_time / p);
    table.add_row(
        {expt::fmt_u64(static_cast<unsigned long long>(p)),
         expt::fmt_s(u.io_time / p), expt::fmt_s(o.io_time / p),
         expt::fmt_s(u.exec_time), expt::fmt_s(o.exec_time),
         expt::fmt("%.0f%%", 100.0 * (1.0 - o.exec_time / u.exec_time))});
  }
  ctx.printf("Figure 6: BTIO Class A (%.1f MB total I/O), SP-2\n%s\n",
             opt.scale * 419.4, (opt.csv ? table.csv() : table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    const std::size_t i36 = 5;  // index of 36 procs
    ctx.expect(o_total[i36] < u_total[i36],
               "collective I/O wins at 36 procs");
    const double red36 = 1.0 - o_total[i36] / u_total[i36];
    ctx.expect(red36 > 0.25 && red36 < 0.70,
               "total-time reduction at 36 procs near the paper's 46%");
    // The unoptimized version's I/O time does not improve the way compute
    // does: its share of total grows with P (the hump's cause).
    ctx.expect(u_io.back() / u_total.back() >
                   u_io.front() / u_total.front(),
               "unopt I/O share grows with processor count");
  }
}

const scenario::Registration reg{{
    .name = "fig6",
    .title = "Figure 6: BTIO Class A collective vs Unix-style I/O",
    .description =
        "Runs BTIO Class A on the SP-2 model, Unix-style vs two-phase "
        "collective. --check asserts the unoptimized hump in total time "
        "around 36 processors and the large collective-I/O reduction at "
        "36/64 processors.",
    .default_scale = 0.5,
    .grid = {{"procs", {"1", "4", "9", "16", "25", "36", "49", "64"}},
             {"variant", {"unopt", "collective"}}},
    .run = run,
}};

}  // namespace
