// Reproduces Figure 6: BTIO (Class A, 408.9 MB) on the SP-2 — I/O time
// and total time vs processor count for the Unix-style and two-phase
// collective versions.
//
// Paper findings: the unoptimized I/O time moves erratically with the
// processor count and puts a hump in total time around 36 processors;
// collective I/O removes it (46%/49% total reduction at 36/64 procs).
#include <cstdio>
#include <vector>

#include "apps/btio.hpp"
#include "exp/metrics_run.hpp"
#include "exp/options.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  expt::Options opt(/*default_scale=*/0.5);
  opt.parse(argc, argv);
  expt::MetricsRun mrun(opt);

  const std::vector<int> procs = {1, 4, 9, 16, 25, 36, 49, 64};
  auto run = [&](int p, bool coll) {
    apps::BtioConfig cfg;
    cfg.problem_class = 'A';
    cfg.nprocs = p;
    cfg.collective = coll;
    cfg.scale = opt.scale;
    return apps::run_btio(cfg);
  };

  expt::Table table({"procs", "unopt I/O (s)", "opt I/O (s)",
                     "unopt total (s)", "opt total (s)", "reduction"});
  std::vector<double> u_total, o_total, u_io;
  for (int p : procs) {
    const apps::RunResult u = run(p, false);
    const apps::RunResult o = run(p, true);
    u_total.push_back(u.exec_time);
    o_total.push_back(o.exec_time);
    u_io.push_back(u.io_time / p);
    table.add_row(
        {expt::fmt_u64(static_cast<unsigned long long>(p)),
         expt::fmt_s(u.io_time / p), expt::fmt_s(o.io_time / p),
         expt::fmt_s(u.exec_time), expt::fmt_s(o.exec_time),
         expt::fmt("%.0f%%", 100.0 * (1.0 - o.exec_time / u.exec_time))});
  }
  std::printf("Figure 6: BTIO Class A (%.1f MB total I/O), SP-2\n%s\n",
              opt.scale * 419.4, (opt.csv ? table.csv() : table.str()).c_str());

  mrun.finish();
  if (opt.metrics) {
    std::printf("%s", expt::metrics_report(mrun.registry).c_str());
  }

  if (opt.check) {
    expt::Checker chk;
    const std::size_t i36 = 5;  // index of 36 procs
    chk.expect(o_total[i36] < u_total[i36],
               "collective I/O wins at 36 procs");
    const double red36 = 1.0 - o_total[i36] / u_total[i36];
    chk.expect(red36 > 0.25 && red36 < 0.70,
               "total-time reduction at 36 procs near the paper's 46%");
    // The unoptimized version's I/O time does not improve the way compute
    // does: its share of total grows with P (the hump's cause).
    chk.expect(u_io.back() / u_total.back() >
                   u_io.front() / u_total.front(),
               "unopt I/O share grows with processor count");
    return chk.exit_code();
  }
  return 0;
}
