// Scenario "platform_server_cache" — the iosrv smart-server knobs under
// the PR 6 multi-tenant platform: one 224-job stream (five paper apps,
// bursty arrivals) replayed on one shared striped FS whose servers
// differ only in cache policy / read-ahead.
//
// This is where the single-tenant wins have to survive interference:
// step re-reads (SCF-style jobs) compete with other tenants' step dumps
// and checkpoint bursts for the same server caches — the scan pollution
// ARC resists — and per-node step slices are the sequential runs the
// pattern tracker detects.  No fault injection here, deliberately: a
// crash mid-stream couples I/O speed to retry traffic and which jobs
// happen to be in flight, burying the policy signal under scheduling
// lottery (the fault scenarios own that axis).  The headline check is
// platform-economic, not just cache-local: the smart server must turn
// its hit-rate win into strictly less wasted node-time than plain LRU.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/table.hpp"
#include "hw/machine.hpp"
#include "iosrv/config.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "sched/arrival.hpp"
#include "sched/platform.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::size_t kComputeNodes = 64;
constexpr std::size_t kIoNodes = 8;
constexpr int kJobs = 224;

struct ServerConfig {
  const char* name;
  bool arc;
  bool readahead;
};

// "lru" is the legacy passive server, bit for bit.
constexpr ServerConfig kConfigs[] = {
    {"lru", false, false},
    {"arc", true, false},
    {"arc_ra", true, true},
};

iosrv::Config make_server(const ServerConfig& sc) {
  iosrv::Config c;
  c.policy = sc.arc ? iosrv::PolicyKind::kArc : iosrv::PolicyKind::kLru;
  c.readahead.enabled = sc.readahead;
  return c;
}

sched::PlatformReport run_once(const iosrv::Config& server, double scale,
                               std::uint64_t seed) {
  simkit::Engine eng;
  hw::MachineConfig mc =
      hw::MachineConfig::paragon_large(kComputeNodes, kIoNodes);
  // The 1998 preset's 2 MB caches drown under 64 tenants (every policy
  // thrashes equally); the smart-server study runs the I/O partition
  // with memory-rich servers so replacement decisions are the variable.
  mc.io.cache_bytes_per_io_node = 16ULL << 20;
  mc.io.server = server;
  hw::Machine machine(eng, mc);

  pfs::StripedFs fs(machine);

  sched::ArrivalConfig ac;
  ac.mean_interarrival_s = 2.0;
  ac.max_jobs = kJobs;
  ac.burst_period_s = 120.0;
  ac.burst_len_s = 30.0;
  ac.burst_rate_multiplier = 4.0;
  std::vector<sched::Job> jobs =
      sched::generate(ac, sched::standard_mix(scale), seed);

  sched::PlatformOptions po;
  return sched::run(machine, fs, nullptr, std::move(jobs), po);
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<sched::PlatformReport> reps =
      ctx.map<sched::PlatformReport>(std::size(kConfigs), [&](std::size_t i) {
        return run_once(make_server(kConfigs[i]), opt.scale, opt.seed);
      });

  const sched::PlatformReport& lru = reps[0];
  const sched::PlatformReport& arc = reps[1];
  const sched::PlatformReport& arc_ra = reps[2];
  // Platform node-time waste = capacity the stream consumed but did not
  // convert to compute: nodes x makespan - pure compute node-seconds.
  // The per-job hold waste (rep.wasted_node_s) is the wrong lens here —
  // a faster server packs more tenants concurrently under FCFS, which
  // stretches individual job spans even as the platform finishes
  // sooner — and productive_node_s folds step I/O time in, crediting a
  // slow server for its own slowness.  Compute node-seconds are fixed
  // by the job mix, so this comparison is exactly "who serves the same
  // work with less capacity".
  auto capacity_waste = [](const sched::PlatformReport& r) {
    return static_cast<double>(kComputeNodes) * r.makespan -
           r.compute_node_s;
  };

  expt::Table table({"server", "done", "makespan (s)", "util %",
                     "waste (node-s)", "hit %", "evictions", "ra issued",
                     "ra hits", "ra waste"});
  for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
    const sched::PlatformReport& r = reps[i];
    table.add_row(
        {kConfigs[i].name,
         expt::fmt_u64(static_cast<unsigned long long>(r.completed_jobs)) +
             "/" + expt::fmt_u64(r.jobs.size()),
         expt::fmt_s(r.makespan), expt::fmt("%.1f", 100.0 * r.utilization),
         expt::fmt("%.0f", capacity_waste(r)),
         expt::fmt("%.1f", 100.0 * r.cache_hit_rate()),
         expt::fmt_u64(r.cache_evictions),
         expt::fmt_u64(r.readahead_issued),
         expt::fmt_u64(r.readahead_hits),
         expt::fmt_u64(r.readahead_waste)});
  }
  ctx.printf(
      "Platform server cache: %d jobs (5 apps x 3 sizes), %zu compute "
      "nodes, %zu I/O nodes, FCFS free-for-all, seed=%llu\n%s\n",
      kJobs, kComputeNodes, kIoNodes,
      static_cast<unsigned long long>(opt.seed),
      (opt.csv ? table.csv() : table.str()).c_str());
  ctx.printf(
      "Smart server vs passive LRU: hit rate %.1f%% -> %.1f%%, waste "
      "%.0f -> %.0f node-s.\n\n",
      100.0 * lru.cache_hit_rate(), 100.0 * arc_ra.cache_hit_rate(),
      capacity_waste(lru), capacity_waste(arc_ra));

  ctx.finish_metrics();

  if (opt.check) {
    bool all_done = true;
    for (const sched::PlatformReport& r : reps) {
      all_done =
          all_done && r.completed_jobs == static_cast<int>(r.jobs.size());
    }
    ctx.expect(static_cast<int>(lru.jobs.size()) >= 200,
               "the stream queues at least 200 jobs");
    ctx.expect(all_done, "every job completes under every server config");
    ctx.expect(arc_ra.cache_hit_rate() > lru.cache_hit_rate(),
               "ARC + read-ahead beats plain LRU on aggregate hit rate (" +
                   expt::fmt("%.1f", 100.0 * arc_ra.cache_hit_rate()) +
                   "% vs " +
                   expt::fmt("%.1f", 100.0 * lru.cache_hit_rate()) + "%)");
    ctx.expect(capacity_waste(arc_ra) < capacity_waste(lru),
               "the smart server wastes strictly less node-time (" +
                   expt::fmt("%.0f", capacity_waste(arc_ra)) + " vs " +
                   expt::fmt("%.0f", capacity_waste(lru)) + ")");
    ctx.expect(arc.cache_hit_rate() >= lru.cache_hit_rate(),
               "policy alone (ARC, no read-ahead) already holds the line "
               "on hit rate");
    ctx.expect(arc_ra.readahead_issued > 0 && arc_ra.readahead_hits > 0,
               "read-ahead is live under the job stream");
    ctx.expect(lru.readahead_issued == 0,
               "the legacy config speculates nothing");
  }
}

const scenario::Registration reg{{
    .name = "platform_server_cache",
    .title = "Platform cache interference: passive LRU vs smart I/O servers",
    .description =
        "Replays one seeded 224-job multi-tenant stream against the "
        "shared PFS under three server configs: "
        "legacy LRU, ARC, and ARC + pattern read-ahead. --check asserts "
        "every job completes and the smart server beats plain LRU on both "
        "aggregate hit rate and wasted node-seconds.",
    .default_scale = 0.1,
    .grid = {{"server", {"lru", "arc", "arc_ra"}}},
    .run = run,
}};

}  // namespace
