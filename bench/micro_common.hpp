// Shared glue for the google-benchmark micro scenarios: run the
// statically registered BM_* benchmarks whose names match a filter and
// write the tabular console report into the scenario's output stream.
//
// Micro scenarios measure HOST time, so they are registered with
// wallclock=true — the runner executes them serially (the benchmark
// library keeps global state) and exempts them from the byte-identity
// gates (--repeat / --golden).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>
#include <string>

#include "scenario/scenario.hpp"

namespace bench {

/// Run the registered benchmarks matching `filter` (an anchored regex)
/// into ctx's output.  The benchmark time budget shrinks with --scale so
/// `--all` suites stay fast; --full restores the library default.
inline void run_micro(scenario::Context& ctx, const char* filter) {
  static std::once_flag init_once;
  std::call_once(init_once, [] {
    // Initialize() wants argv; give it a fixed one (scenario options are
    // parsed by expt::Options, not by the benchmark library).
    static char arg0[] = "iosim";
    static char arg1[] = "--benchmark_color=false";
    static char* argv[] = {arg0, arg1, nullptr};
    int argc = 2;
    benchmark::Initialize(&argc, argv);
  });
  char min_time[64];
  std::snprintf(min_time, sizeof min_time, "--benchmark_min_time=%.3f",
                ctx.opt().scale >= 1.0 ? 0.5 : 0.05);
  {
    // Per-run flag: re-parse only the min-time knob.
    static char arg0[] = "iosim";
    char* argv[] = {arg0, min_time, nullptr};
    int argc = 2;
    benchmark::Initialize(&argc, argv);
  }
  benchmark::ConsoleReporter rep(benchmark::ConsoleReporter::OO_Tabular);
  rep.SetOutputStream(&ctx.stream());
  rep.SetErrorStream(&ctx.stream());
  const std::size_t n = benchmark::RunSpecifiedBenchmarks(&rep, filter);
  if (ctx.opt().check) {
    ctx.expect(n > 0, std::string("benchmarks matched filter ") + filter);
  }
}

}  // namespace bench
