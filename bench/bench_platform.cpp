// Scenarios "platform_ckpt_interference" and "platform_queueing" — the
// multi-tenant platform layer (src/sched) run at scale: hundreds of
// queued jobs drawn from the five paper applications contending for one
// machine and ONE shared striped file system.
//
// platform_ckpt_interference replays the SAME job stream and the SAME
// crash plan under the three I/O-coordination strategies (free-for-all,
// ordered I/O slots, cooperative checkpoint scheduling) and compares
// platform waste — node-seconds held by jobs while not making forward
// progress.  The --check shape is the headline acceptance claim:
// coordinated checkpoint scheduling wastes strictly less node-time than
// free-for-all.
//
// platform_queueing holds coordination fixed (fault-free, free-for-all)
// and sweeps the queue discipline (fcfs, priority, EASY backfill),
// checking the textbook shapes: backfill raises utilization and cuts
// queue wait versus plain FCFS, and priority scheduling buys the
// high-priority (small) jobs a better stretch.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/table.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "sched/arrival.hpp"
#include "sched/platform.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::size_t kComputeNodes = 64;
constexpr std::size_t kIoNodes = 8;
constexpr double kMtbf = 90.0;      // cluster-wide I/O-node crash rate (s)
constexpr double kOutage = 8.0;     // reboot window per crash (s)
constexpr double kFaultHorizon = 2.0e6;  // covers any makespan we reach

/// The shared arrival pattern: an overloaded platform (arrivals outpace
/// service, roughly 2x) with trace-style rush-hour bursts, so the queue
/// is never empty and scheduling decisions actually matter.
sched::ArrivalConfig arrivals(int max_jobs) {
  sched::ArrivalConfig ac;
  ac.mean_interarrival_s = 2.0;
  ac.max_jobs = max_jobs;
  ac.burst_period_s = 120.0;
  ac.burst_len_s = 30.0;
  ac.burst_rate_multiplier = 4.0;
  return ac;
}

sched::PlatformReport run_once(sched::Coordination coord,
                               sched::Discipline disc, int max_jobs,
                               bool faults, double scale,
                               std::uint64_t seed) {
  simkit::Engine eng;
  hw::MachineConfig mc =
      hw::MachineConfig::paragon_large(kComputeNodes, kIoNodes);
  hw::Machine machine(eng, mc);

  // One injector seed for every strategy: runs differ only in the
  // coordination/discipline knob, so waste differences are attributable
  // to it, not to different crash draws.
  fault::Injector injector(fault::InjectionPlan::poisson_node_crashes(
      kIoNodes, kMtbf, kOutage, kFaultHorizon, seed));
  pfs::StripedFs fs(machine, faults ? &injector : nullptr);

  std::vector<sched::Job> jobs =
      sched::generate(arrivals(max_jobs), sched::standard_mix(scale), seed);

  sched::PlatformOptions po;
  po.discipline = disc;
  po.coordination = coord;
  po.retry.max_attempts = 4;
  po.retry.backoff_ms = 5.0;
  return sched::run(machine, fs, faults ? &injector : nullptr,
                    std::move(jobs), po);
}

void add_report_row(expt::Table& t, const std::string& label,
                    const sched::PlatformReport& r) {
  t.add_row({label,
             expt::fmt_u64(static_cast<unsigned long long>(r.completed_jobs)) +
                 "/" + expt::fmt_u64(r.jobs.size()),
             expt::fmt_s(r.makespan),
             expt::fmt("%.1f", 100.0 * r.utilization),
             expt::fmt("%.0f", r.wasted_node_s),
             expt::fmt("%.2f", r.mean_stretch),
             expt::fmt("%.2f", r.p95_stretch),
             expt::fmt_s(r.mean_queue_wait_s),
             expt::fmt_s(r.total_ckpt_blocked),
             expt::fmt_s(r.total_lost_work),
             expt::fmt_u64(static_cast<unsigned long long>(r.total_restarts)),
             expt::fmt_u64(
                 static_cast<unsigned long long>(r.total_deferrals))});
}

// ---------------------------------------------------------------- ckpt --

void run_interference(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();
  constexpr int kJobs = 224;  // acceptance floor is >= 200

  const sched::Coordination coords[] = {sched::Coordination::kFreeForAll,
                                        sched::Coordination::kOrderedSlots,
                                        sched::Coordination::kCooperative};
  const std::vector<sched::PlatformReport> reps =
      ctx.map<sched::PlatformReport>(std::size(coords), [&](std::size_t i) {
        return run_once(coords[i], sched::Discipline::kFcfs, kJobs,
                        /*faults=*/true, opt.scale, opt.seed);
      });

  expt::Table table({"coordination", "done", "makespan (s)", "util %",
                     "waste (node-s)", "stretch", "p95", "qwait (s)",
                     "ckpt-blk (s)", "lost (s)", "restarts", "deferrals"});
  for (std::size_t i = 0; i < std::size(coords); ++i) {
    add_report_row(table, sched::to_string(coords[i]), reps[i]);
  }

  const sched::PlatformReport& ffa = reps[0];
  const sched::PlatformReport& slots = reps[1];
  const sched::PlatformReport& coop = reps[2];
  ctx.printf(
      "Platform checkpoint interference: %d jobs (5 apps x 3 sizes), "
      "%zu compute nodes, %zu I/O nodes, FCFS, crashes MTBF=%.0fs "
      "outage=%.0fs seed=%llu\n%s\n",
      kJobs, kComputeNodes, kIoNodes, kMtbf, kOutage,
      static_cast<unsigned long long>(opt.seed),
      (opt.csv ? table.csv() : table.str()).c_str());
  ctx.printf(
      "Waste split, cooperative vs free-for-all: ckpt-blocked %.0f -> "
      "%.0f node-s equivalent stalls; deferrals traded %d boundary "
      "skips for compute kept hot.\n\n",
      ffa.total_ckpt_blocked, coop.total_ckpt_blocked,
      coop.total_deferrals);

  ctx.finish_metrics();

  if (opt.check) {
    bool all_done = true;
    for (const sched::PlatformReport& r : reps) {
      all_done = all_done && r.completed_jobs ==
                                 static_cast<int>(r.jobs.size());
    }
    ctx.expect(static_cast<int>(ffa.jobs.size()) >= 200,
               "the stream queues at least 200 jobs");
    ctx.expect(all_done, "every job completes under every strategy");
    ctx.expect(coop.wasted_node_s < ffa.wasted_node_s,
               "cooperative checkpoint scheduling wastes strictly less "
               "node-time (" +
                   expt::fmt("%.0f", coop.wasted_node_s) +
                   ") than free-for-all (" +
                   expt::fmt("%.0f", ffa.wasted_node_s) + ")");
    ctx.expect(coop.total_ckpt_blocked < ffa.total_ckpt_blocked,
               "one-at-a-time checkpoints cut per-job checkpoint stalls");
    ctx.expect(coop.total_deferrals > 0,
               "cooperative mode actually defers checkpoints");
    ctx.expect(slots.total_restarts == ffa.total_restarts ||
                   slots.completed_jobs == static_cast<int>(
                                               slots.jobs.size()),
               "ordered slots stay functionally correct under faults");
  }
}

const scenario::Registration reg_interference{{
    .name = "platform_ckpt_interference",
    .title = "Platform I/O coordination: ckpt waste under a 224-job stream",
    .description =
        "Replays one seeded arrival stream (224 jobs over the five paper "
        "apps) and one crash plan under free-for-all, ordered-slot, and "
        "cooperative checkpoint coordination on a shared PFS. --check "
        "asserts every job completes and cooperative scheduling wastes "
        "strictly less node-time than free-for-all.",
    .default_scale = 0.04,
    .grid = {{"coordination",
              {"free_for_all", "ordered_slots", "cooperative"}}},
    .run = run_interference,
}};

// ------------------------------------------------------------- queueing --

void run_queueing(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();
  constexpr int kJobs = 160;

  const sched::Discipline discs[] = {sched::Discipline::kFcfs,
                                     sched::Discipline::kPriority,
                                     sched::Discipline::kBackfill};
  const std::vector<sched::PlatformReport> reps =
      ctx.map<sched::PlatformReport>(std::size(discs), [&](std::size_t i) {
        return run_once(sched::Coordination::kFreeForAll, discs[i], kJobs,
                        /*faults=*/false, opt.scale, opt.seed);
      });

  expt::Table table({"discipline", "done", "makespan (s)", "util %",
                     "waste (node-s)", "stretch", "p95", "qwait (s)",
                     "ckpt-blk (s)", "lost (s)", "restarts", "deferrals"});
  for (std::size_t i = 0; i < std::size(discs); ++i) {
    add_report_row(table, sched::to_string(discs[i]), reps[i]);
  }

  // Priority's promise is to the urgent (small, priority-2) jobs.
  auto priority2_stretch = [](const sched::PlatformReport& r) {
    double sum = 0.0;
    int n = 0;
    for (const sched::JobOutcome& o : r.jobs) {
      if (o.completed && o.job.klass.priority == 2) {
        sum += o.stretch();
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  const sched::PlatformReport& fcfs = reps[0];
  const sched::PlatformReport& prio = reps[1];
  const sched::PlatformReport& fill = reps[2];
  const double fcfs_p2 = priority2_stretch(fcfs);
  const double prio_p2 = priority2_stretch(prio);

  ctx.printf(
      "Platform queueing disciplines: %d jobs, %zu compute nodes, "
      "%zu I/O nodes, fault-free, free-for-all I/O, seed=%llu\n%s\n",
      kJobs, kComputeNodes, kIoNodes,
      static_cast<unsigned long long>(opt.seed),
      (opt.csv ? table.csv() : table.str()).c_str());
  ctx.printf("High-priority (small) job stretch: fcfs %.2f, priority "
             "%.2f; backfill makespan %.0fs vs fcfs %.0fs\n\n",
             fcfs_p2, prio_p2, fill.makespan, fcfs.makespan);

  ctx.finish_metrics();

  if (opt.check) {
    bool all_done = true;
    for (const sched::PlatformReport& r : reps) {
      all_done = all_done && r.completed_jobs ==
                                 static_cast<int>(r.jobs.size());
    }
    ctx.expect(all_done, "every job completes under every discipline");
    int restarts = 0;
    for (const sched::PlatformReport& r : reps) {
      restarts += r.total_restarts;
    }
    ctx.expect(restarts == 0, "fault-free platform never restarts a job");
    // EASY's no-delay guarantee is per-decision (by estimate); backfilled
    // jobs still add I/O interference, so allow makespan a small slip
    // while demanding the user-visible wins.
    ctx.expect(fill.makespan <= fcfs.makespan * 1.05,
               "EASY backfill holds the FCFS makespan within 5% (" +
                   expt::fmt("%.0f", fill.makespan) + " vs " +
                   expt::fmt("%.0f", fcfs.makespan) + " s)");
    ctx.expect(fill.mean_queue_wait_s < fcfs.mean_queue_wait_s,
               "backfill cuts mean queue wait vs FCFS");
    ctx.expect(fill.mean_stretch < fcfs.mean_stretch,
               "backfill cuts mean stretch vs FCFS (" +
                   expt::fmt("%.2f", fill.mean_stretch) + " vs " +
                   expt::fmt("%.2f", fcfs.mean_stretch) + ")");
    ctx.expect(prio_p2 < fcfs_p2,
               "priority discipline improves high-priority job stretch (" +
                   expt::fmt("%.2f", prio_p2) + " vs " +
                   expt::fmt("%.2f", fcfs_p2) + ")");
  }
}

const scenario::Registration reg_queueing{{
    .name = "platform_queueing",
    .title = "Platform queue disciplines: fcfs vs priority vs backfill",
    .description =
        "Runs one seeded 160-job stream fault-free under fcfs, priority, "
        "and EASY-backfill disciplines. --check asserts completion, no "
        "restarts, backfill's makespan/queue-wait win over FCFS, and a "
        "stretch win for high-priority jobs under priority scheduling.",
    .default_scale = 0.04,
    .grid = {{"discipline", {"fcfs", "priority", "backfill"}}},
    .run = run_queueing,
}};

}  // namespace
