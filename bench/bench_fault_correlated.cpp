// Scenario "fault_correlated" — correlated rack failures vs. checkpoint
// placement and health-aware recovery, on an MTBF-matched fault clock.
//
// Three runs of SCF 1.1 share the exact same exponential fault-event
// instants (the correlated generator draws a fixed number of RNG values
// per event, so sweeping the correlated fraction changes only the blast
// radius, never the clock):
//   independent        every event crashes one node cleanly; domain-aware
//                      mirror placement + health-aware recovery armed (the
//                      adaptation is free when faults are uncorrelated)
//   corr same-domain   half the events take a whole rack down with scrubbed
//                      disks; primary AND mirror sit behind rack switch 0,
//                      so one power event destroys every checkpoint copy
//   corr domain-aware  same bursts, but the mirror lives behind the other
//                      rack switch and health-aware recovery restores from
//                      the survivor, hedges the reads, and re-mirrors the
//                      scrubbed copy
// A Markov disk-arm model (healthy <-> sticky <-> stuck) runs in every
// row, so hedged restore reads have real stragglers to beat.
//
// --check asserts the robustness claim: domain-aware placement plus
// health-aware recovery loses NO committed checkpoints under rack bursts,
// same-domain placement loses at least one, and the adaptation keeps
// total resilience overhead within 15% of the independent-fault baseline.
#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "ckpt/workloads.hpp"
#include "exp/resilience.hpp"
#include "exp/table.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/fs.hpp"
#include "scenario/scenario.hpp"
#include "simkit/engine.hpp"

namespace {

constexpr std::size_t kIoNodes = 4;
constexpr std::size_t kFanIn = 2;       // 2 racks x 2 I/O nodes
constexpr double kMtbf = 60.0;          // fault-event rate (s)
constexpr double kOutage = 12.0;        // reboot window per event (s)
constexpr double kCrashHorizon = 50000.0;
constexpr double kMarkovHorizon = 2000.0;
constexpr double kFraction = 0.5;       // correlated share of events

struct RowCfg {
  const char* label;
  double fraction;
  ckpt::Options::Placement placement;
  bool health_aware;
};

ckpt::Report run_once(const RowCfg& cfg, double scale, std::uint64_t seed,
                      std::string* detail) {
  simkit::Engine eng;
  hw::MachineConfig mc = hw::MachineConfig::paragon_large(8, kIoNodes);
  mc.io_nodes_per_switch = kFanIn;
  hw::Machine machine(eng, mc);

  fault::InjectionPlan plan = fault::InjectionPlan::correlated_node_crashes(
      kIoNodes, kFanIn, kMtbf, kOutage, cfg.fraction, kCrashHorizon, seed);
  fault::MarkovDiskParams mp;
  mp.enabled = true;
  mp.horizon = kMarkovHorizon;
  plan.with_markov_disks(mp);
  fault::Injector injector(std::move(plan));
  pfs::StripedFs fs(machine, &injector);

  apps::ScfConfig sc;
  sc.nprocs = 8;
  sc.io_nodes = kIoNodes;
  sc.n_basis = 140;  // MEDIUM problem, many iterations
  sc.iterations = 49;
  sc.scale = scale;
  ckpt::Workload w = ckpt::scf11_workload(sc);
  w.state_bytes_per_rank = 4ULL << 20;

  ckpt::Options opt;
  opt.ckpt_interval_steps = 4;
  opt.retry.max_attempts = 4;
  opt.retry.backoff_ms = 5.0;
  opt.replicate_checkpoint = true;
  opt.placement = cfg.placement;
  opt.health_aware = cfg.health_aware;
  // Restore reads are MB-scale pieces while the tracker's EWMA is fed by
  // the small per-step reads, so a low multiple would hedge every healthy
  // restore; 12x only fires for genuinely sticking arms and down racks.
  opt.hedge_latency_multiple = 12.0;
  // Same-domain placement restarts from step 0 every time a rack burst
  // scrubs both copies; give it the restarts to eventually finish.
  opt.max_restarts = 256;
  const ckpt::Report rep = ckpt::run(machine, fs, &injector, w, opt);
  if (detail) *detail = expt::resilience_report(rep, &injector);
  return rep;
}

double total_overhead(const ckpt::Report& r) {
  return r.ckpt_overhead + r.lost_work + r.recovery_time;
}

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<RowCfg> rows = {
      {"independent", 0.0, ckpt::Options::Placement::kOtherDomain, true},
      {"corr same-domain", kFraction,
       ckpt::Options::Placement::kSameDomain, false},
      {"corr domain-aware", kFraction,
       ckpt::Options::Placement::kOtherDomain, true},
  };

  struct Point {
    ckpt::Report rep;
    std::string detail;
  };
  const std::vector<Point> points =
      ctx.map<Point>(rows.size(), [&](std::size_t i) {
        const bool last = i + 1 == rows.size();
        Point p;
        p.rep = run_once(rows[i], opt.scale, opt.seed,
                         last ? &p.detail : nullptr);
        return p;
      });

  expt::Table table({"faults / placement", "exec (s)", "ovhd (s)",
                     "lost ckpts", "re-mirrored", "hedged (won)",
                     "restarts"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ckpt::Report& r = points[i].rep;
    table.add_row({rows[i].label, expt::fmt_s(r.exec_time),
                   expt::fmt_s(total_overhead(r)),
                   expt::fmt_u64(r.lost_checkpoints),
                   expt::fmt_u64(r.divergences_repaired),
                   expt::fmt_u64(r.hedged_reads) + " (" +
                       expt::fmt_u64(r.hedge_wins) + ")",
                   expt::fmt_u64(r.restarts)});
  }

  ctx.printf(
      "Correlated failure domains: SCF 1.1 (MEDIUM, 8 procs, %zu I/O nodes "
      "in %zu racks), MTBF=%.0fs outage=%.0fs corr=%.0f%% seed=%llu, "
      "Markov disk arms\n%s\n",
      kIoNodes, kIoNodes / kFanIn, kMtbf, kOutage, 100.0 * kFraction,
      static_cast<unsigned long long>(opt.seed),
      (opt.csv ? table.csv() : table.str()).c_str());
  ctx.printf("Domain-aware + health-aware run under correlated bursts:\n%s\n",
             points.back().detail.c_str());

  ctx.finish_metrics();

  if (opt.check) {
    const ckpt::Report& indep = points[0].rep;
    const ckpt::Report& naive = points[1].rep;
    const ckpt::Report& aware = points[2].rep;
    bool all_done = true;
    for (const auto& p : points) all_done = all_done && p.rep.completed;
    ctx.expect(all_done, "every configuration runs to completion");
    bool verified = true;
    for (const auto& p : points) {
      verified = verified && p.rep.state_verified;
    }
    ctx.expect(verified, "every restore returned the committed bytes");
    ctx.expect(naive.lost_checkpoints >= 1,
               "same-domain placement loses committed checkpoints to rack "
               "bursts (" + expt::fmt_u64(naive.lost_checkpoints) + ")");
    ctx.expect(aware.lost_checkpoints == 0,
               "domain-aware placement + health-aware recovery loses none");
    ctx.expect(indep.lost_checkpoints == 0,
               "independent clean crashes never scrub a copy");
    ctx.expect(total_overhead(aware) <= 1.15 * total_overhead(indep),
               "adaptation keeps correlated-fault overhead (" +
                   expt::fmt_s(total_overhead(aware)) +
                   " s) within 15% of the independent baseline (" +
                   expt::fmt_s(total_overhead(indep)) + " s)");
  }
}

const scenario::Registration reg{{
    .name = "fault_correlated",
    .title = "Correlated failure domains vs checkpoint placement",
    .description =
        "Runs SCF 1.1 on an MTBF-matched fault clock with independent "
        "crashes, rack-correlated crashes, and domain-aware placement "
        "plus health-aware recovery. --check asserts correlation hurts "
        "and the domain-aware adaptation claws the loss back.",
    .default_scale = 0.25,
    .grid = {{"row", {"independent", "corr_same_domain",
                      "corr_domain_aware"}}},
    .run = run,
}};

}  // namespace
