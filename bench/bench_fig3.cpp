// Reproduces Figure 3: effect of the number of I/O nodes on SCF 1.1.
//
// Paper finding: more compute nodes mean more contention at the I/O
// nodes; increasing the I/O partition (12 -> 16 -> 64) relieves it, and
// the benefit grows with the processor count.
#include <cstdio>
#include <vector>

#include "apps/scf.hpp"
#include "exp/metrics_run.hpp"
#include "exp/options.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  expt::Options opt(/*default_scale=*/0.5);
  opt.parse(argc, argv);
  expt::MetricsRun mrun(opt);

  const std::vector<int> procs = {4, 16, 64, 256};
  const std::vector<std::size_t> io_nodes = {12, 16, 64};

  expt::Table exec_table({"procs", "12 io nodes", "16 io nodes",
                          "64 io nodes"});
  expt::Table io_table({"procs", "12 io nodes", "16 io nodes",
                        "64 io nodes"});
  // gain[p] = exec(12 io) / exec(64 io) at processor count p.
  std::vector<double> gain;
  for (int p : procs) {
    std::vector<std::string> exec_row = {
        expt::fmt_u64(static_cast<unsigned long long>(p))};
    std::vector<std::string> io_row = exec_row;
    double exec12 = 0, exec64 = 0;
    for (std::size_t sf : io_nodes) {
      apps::ScfConfig cfg;
      cfg.version = apps::ScfVersion::kOriginal;
      cfg.nprocs = p;
      cfg.io_nodes = sf;
      cfg.n_basis = 285;
      cfg.iterations = 15;
      cfg.scale = opt.scale;
      const apps::RunResult r = apps::run_scf11(cfg);
      exec_row.push_back(expt::fmt_s(r.exec_time));
      io_row.push_back(expt::fmt_s(r.io_time / p));
      if (sf == 12) exec12 = r.exec_time;
      if (sf == 64) exec64 = r.exec_time;
    }
    gain.push_back(exec12 / exec64);
    exec_table.add_row(exec_row);
    io_table.add_row(io_row);
  }
  std::printf("Figure 3a: SCF 1.1 LARGE execution time (s)\n%s\n",
              (opt.csv ? exec_table.csv() : exec_table.str()).c_str());
  std::printf("Figure 3b: SCF 1.1 LARGE per-process I/O time (s)\n%s\n",
              (opt.csv ? io_table.csv() : io_table.str()).c_str());

  mrun.finish();
  if (opt.metrics) {
    std::printf("%s", expt::metrics_report(mrun.registry).c_str());
  }

  if (opt.check) {
    expt::Checker chk;
    chk.expect(gain.back() > 1.3,
               "at 256 procs, 64 I/O nodes clearly beat 12");
    chk.expect(gain.back() > gain.front(),
               "the I/O-node benefit grows with processor count");
    return chk.exit_code();
  }
  return 0;
}
