// Scenario "fig3" — reproduces Figure 3: effect of the number of I/O
// nodes on SCF 1.1.
//
// Paper finding: more compute nodes mean more contention at the I/O
// nodes; increasing the I/O partition (12 -> 16 -> 64) relieves it, and
// the benefit grows with the processor count.
#include <cstdio>
#include <vector>

#include "apps/scf.hpp"
#include "exp/report.hpp"
#include "exp/table.hpp"
#include "scenario/scenario.hpp"

namespace {

void run(scenario::Context& ctx) {
  const expt::Options& opt = ctx.opt();

  const std::vector<int> procs = {4, 16, 64, 256};
  const std::vector<std::size_t> io_nodes = {12, 16, 64};

  const std::vector<apps::RunResult> results = ctx.map<apps::RunResult>(
      procs.size() * io_nodes.size(), [&](std::size_t i) {
        apps::ScfConfig cfg;
        cfg.version = apps::ScfVersion::kOriginal;
        cfg.nprocs = procs[i / io_nodes.size()];
        cfg.io_nodes = io_nodes[i % io_nodes.size()];
        cfg.n_basis = 285;
        cfg.iterations = 15;
        cfg.scale = opt.scale;
        return apps::run_scf11(cfg);
      });

  expt::Table exec_table({"procs", "12 io nodes", "16 io nodes",
                          "64 io nodes"});
  expt::Table io_table({"procs", "12 io nodes", "16 io nodes",
                        "64 io nodes"});
  // gain[p] = exec(12 io) / exec(64 io) at processor count p.
  std::vector<double> gain;
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const int p = procs[pi];
    std::vector<std::string> exec_row = {
        expt::fmt_u64(static_cast<unsigned long long>(p))};
    std::vector<std::string> io_row = exec_row;
    double exec12 = 0, exec64 = 0;
    for (std::size_t si = 0; si < io_nodes.size(); ++si) {
      const apps::RunResult& r = results[pi * io_nodes.size() + si];
      exec_row.push_back(expt::fmt_s(r.exec_time));
      io_row.push_back(expt::fmt_s(r.io_time / p));
      if (io_nodes[si] == 12) exec12 = r.exec_time;
      if (io_nodes[si] == 64) exec64 = r.exec_time;
    }
    gain.push_back(exec12 / exec64);
    exec_table.add_row(exec_row);
    io_table.add_row(io_row);
  }
  ctx.printf("Figure 3a: SCF 1.1 LARGE execution time (s)\n%s\n",
             (opt.csv ? exec_table.csv() : exec_table.str()).c_str());
  ctx.printf("Figure 3b: SCF 1.1 LARGE per-process I/O time (s)\n%s\n",
             (opt.csv ? io_table.csv() : io_table.str()).c_str());

  ctx.finish_metrics();
  if (opt.metrics) {
    ctx.printf("%s", expt::metrics_report(ctx.registry()).c_str());
  }

  if (opt.check) {
    ctx.expect(gain.back() > 1.3,
               "at 256 procs, 64 I/O nodes clearly beat 12");
    ctx.expect(gain.back() > gain.front(),
               "the I/O-node benefit grows with processor count");
  }
}

const scenario::Registration reg{{
    .name = "fig3",
    .title = "Figure 3: I/O-node count vs contention for SCF 1.1",
    .description =
        "Sweeps the I/O partition (12/16/64 nodes) against the processor "
        "count. --check asserts contention grows with compute nodes and "
        "that widening the I/O partition relieves it more the more "
        "processors there are.",
    .default_scale = 0.5,
    .grid = {{"procs", {"4", "16", "64", "256"}},
             {"io_nodes", {"12", "16", "64"}}},
    .run = run,
}};

}  // namespace
