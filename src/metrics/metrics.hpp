// metrics/metrics.hpp — simulation-wide metrics & instrumentation.
//
// The paper's evidence is quantitative breakdowns (per-operation I/O
// time, call counts, bandwidth) gathered with Pablo; the repo's tracer
// reproduces those tables, but the surrounding stack (pfs, pario, ckpt,
// the apps) grew ad-hoc counters of its own.  This subsystem is the
// first-class registry those counters fold into:
//
//   * `Counter`   — monotonically increasing event count,
//   * `Gauge`     — last-written level plus its running extremes,
//   * `Histogram` — log-bucketed value distribution (p50/p95/p99/max,
//                   exact count/sum/min/max, cross-run merge),
//   * `Timeseries`— (simulated-time, value) samples thinned to one point
//                   per interval bin, driven by the simkit engine clock.
//
// Zero overhead when disabled: instrumented code asks `metrics::current()`
// for the installed registry and does nothing when none is — a single
// pointer load and branch.  Recording never consumes simulated time or
// RNG state, so an enabled registry is observation-only: simulator output
// is identical with and without it.
//
// Each simulation is single-threaded (one coroutine runs at a time), so
// the registry needs no synchronization; `Scope` installs a registry for
// a lexical region exactly like a Pablo run wraps an instrumented job.
// The installed pointer is thread_local: the scenario runner executes
// independent simulations concurrently, each under its own registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simkit/time.hpp"

namespace metrics {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { v_ += delta; }
  std::uint64_t value() const noexcept { return v_; }
  void merge(const Counter& o) noexcept { v_ += o.v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-written level with running min/max (queue depths, phase totals).
class Gauge {
 public:
  void set(double v) noexcept {
    last_ = v;
    if (n_ == 0 || v < min_) min_ = v;
    if (n_ == 0 || v > max_) max_ = v;
    ++n_;
  }
  std::uint64_t count() const noexcept { return n_; }
  double last() const noexcept { return last_; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Rank merge keeps the extremes; `last` of the merged gauge is the
  /// largest last (deterministic regardless of merge order).
  void merge(const Gauge& o) noexcept;

 private:
  std::uint64_t n_ = 0;
  double last_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-bucketed histogram: bucket k >= 1 covers
/// [unit * 2^((k-1)/4), unit * 2^(k/4)); bucket 0 is the underflow bucket
/// for values below `unit`.  Four sub-buckets per octave bound the
/// relative quantile error by 2^(1/4) ~ 19%; count/sum/min/max are exact.
class Histogram {
 public:
  /// `unit` is the lower edge of the first log bucket.  The default
  /// (1 microsecond, with durations in seconds) suits latency data.
  explicit Histogram(double unit = 1e-6);

  void observe(double v);

  std::uint64_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double mean() const noexcept {
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
  }

  /// Quantile estimate from the bucket boundaries, clamped to the exact
  /// [min, max].  q in [0, 1]; q=0.5 is p50, q=1 returns max().
  double percentile(double q) const;

  /// Merge a histogram with the same unit (throws std::invalid_argument
  /// otherwise) — the cross-rank / cross-run reduction.
  void merge(const Histogram& o);

  double unit() const noexcept { return unit_; }
  const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }
  /// Upper edge of bucket b (lower edge of b+1).
  double bucket_upper(std::size_t b) const noexcept;

  static constexpr int kSubBucketsPerOctave = 4;

 private:
  std::size_t bucket_of(double v) const noexcept;

  double unit_;
  std::vector<std::uint64_t> counts_;  // grows on demand
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct Sample {
  simkit::Time t = 0.0;
  double value = 0.0;
};

/// Simulation-time sampling: record(t, v) keeps at most one sample per
/// `interval` of simulated time (the newest write in a bin wins), so a
/// hot path can sample on every event without unbounded memory.  An
/// interval of 0 keeps every sample.  `max_samples` is a hard cap; once
/// reached, further points are counted as dropped instead of stored.
class Timeseries {
 public:
  explicit Timeseries(simkit::Duration interval = 0.0,
                      std::size_t max_samples = 1 << 16)
      : interval_(interval), max_samples_(max_samples) {}

  void record(simkit::Time t, double v);

  const std::vector<Sample>& samples() const noexcept { return samples_; }
  simkit::Duration interval() const noexcept { return interval_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Rank merge: concatenates and re-sorts by time (stable, so equal
  /// timestamps keep merge order and the result is deterministic).
  void merge(const Timeseries& o);

 private:
  simkit::Duration interval_;
  std::size_t max_samples_;
  std::vector<Sample> samples_;
  simkit::Time bin_start_ = 0.0;
  std::uint64_t dropped_ = 0;
};

/// Named instruments, created on first use and owned by the registry.
/// Lookups return stable references (std::map nodes never move), so hot
/// paths resolve a handle once and bump it directly afterwards.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// `unit` applies only when the instrument is created by this call.
  Histogram& histogram(const std::string& name, double unit = 1e-6);
  Timeseries& timeseries(const std::string& name,
                         simkit::Duration interval = 0.0);

  // Sorted-by-name iteration for exporters and reports.
  const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }
  const std::map<std::string, Timeseries>& timeseries_map() const noexcept {
    return timeseries_;
  }

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           timeseries_.empty();
  }

  /// Cross-rank / cross-run reduction: instruments with the same name
  /// merge element-wise, names unique to `o` are copied.
  void merge(const Registry& o);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Timeseries> timeseries_;
};

namespace detail {
/// The per-thread installed registry.  Exposed (constinit, so no TLS
/// guard) only so current() can inline to a single thread-local load —
/// hot paths check it on every request, and the out-of-line call was
/// measurable in the engine's resume path.  Write access stays confined
/// to Scope.
extern constinit thread_local Registry* g_current;
}  // namespace detail

/// The installed registry, or nullptr when metrics are off (the default).
/// Inline: one thread-local pointer load and a branch at every call site.
inline Registry* current() noexcept { return detail::g_current; }

/// RAII installation of a registry for a lexical scope.  Nests: the
/// previous registry is restored on destruction.  Install the scope
/// BEFORE building machines/file systems — construction-time code caches
/// instrument handles from the registry current at that moment.
class Scope {
 public:
  explicit Scope(Registry& r) noexcept;
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Registry* prev_;
};

}  // namespace metrics
