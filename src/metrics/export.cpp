#include "metrics/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace metrics {
namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string num(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

/// Instrument names are plain identifiers, but escape defensively so a
/// stray quote or backslash can never corrupt the document.
std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Append `"name": {body}` entries for a map, comma-separated.
template <typename Map, typename Fn>
void json_object(std::string& out, const char* key, const Map& map, Fn body) {
  out += "  \"";
  out += key;
  out += "\": {";
  bool first = true;
  for (const auto& [name, inst] : map) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + esc(name) + "\": ";
    body(out, inst);
  }
  out += first ? "}" : "\n  }";
}

}  // namespace

std::string to_json(const Registry& reg) {
  std::string out = "{\n  \"schema\": \"";
  out += kJsonSchema;
  out += "\",\n";

  json_object(out, "counters", reg.counters(),
              [](std::string& o, const Counter& c) { o += num(c.value()); });
  out += ",\n";

  json_object(out, "gauges", reg.gauges(),
              [](std::string& o, const Gauge& g) {
                o += "{\"last\": " + num(g.last()) +
                     ", \"min\": " + num(g.min()) +
                     ", \"max\": " + num(g.max()) +
                     ", \"count\": " + num(g.count()) + "}";
              });
  out += ",\n";

  json_object(out, "histograms", reg.histograms(),
              [](std::string& o, const Histogram& h) {
                o += "{\"unit\": " + num(h.unit()) +
                     ", \"count\": " + num(h.count()) +
                     ", \"sum\": " + num(h.sum()) +
                     ", \"min\": " + num(h.min()) +
                     ", \"max\": " + num(h.max()) +
                     ", \"mean\": " + num(h.mean()) +
                     ", \"p50\": " + num(h.percentile(0.50)) +
                     ", \"p95\": " + num(h.percentile(0.95)) +
                     ", \"p99\": " + num(h.percentile(0.99)) + "}";
              });
  out += ",\n";

  json_object(out, "timeseries", reg.timeseries_map(),
              [](std::string& o, const Timeseries& ts) {
                o += "{\"interval\": " + num(ts.interval()) +
                     ", \"dropped\": " + num(ts.dropped()) +
                     ", \"points\": [";
                bool first = true;
                for (const Sample& s : ts.samples()) {
                  if (!first) o += ", ";
                  first = false;
                  // Appended piecewise: GCC 12's -Wrestrict misfires on
                  // the chained-temporary form at -O3.
                  o += "[";
                  o += num(s.t);
                  o += ", ";
                  o += num(s.value);
                  o += "]";
                }
                o += "]}";
              });
  out += "\n}\n";
  return out;
}

std::string to_csv(const Registry& reg) {
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, c] : reg.counters()) {
    out += "counter," + name + ",value," + num(c.value()) + "\n";
  }
  for (const auto& [name, g] : reg.gauges()) {
    out += "gauge," + name + ",last," + num(g.last()) + "\n";
    out += "gauge," + name + ",min," + num(g.min()) + "\n";
    out += "gauge," + name + ",max," + num(g.max()) + "\n";
  }
  for (const auto& [name, h] : reg.histograms()) {
    out += "histogram," + name + ",count," + num(h.count()) + "\n";
    out += "histogram," + name + ",sum," + num(h.sum()) + "\n";
    out += "histogram," + name + ",min," + num(h.min()) + "\n";
    out += "histogram," + name + ",max," + num(h.max()) + "\n";
    out += "histogram," + name + ",mean," + num(h.mean()) + "\n";
    out += "histogram," + name + ",p50," + num(h.percentile(0.50)) + "\n";
    out += "histogram," + name + ",p95," + num(h.percentile(0.95)) + "\n";
    out += "histogram," + name + ",p99," + num(h.percentile(0.99)) + "\n";
  }
  for (const auto& [name, ts] : reg.timeseries_map()) {
    out += "timeseries," + name + ",interval," + num(ts.interval()) + "\n";
    out += "timeseries," + name + ",points," +
           num(static_cast<std::uint64_t>(ts.samples().size())) + "\n";
  }
  return out;
}

bool write_json_file(const Registry& reg, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = to_json(reg);
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace metrics
