#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metrics {

namespace detail {
// One installed registry per THREAD: each simulation is single-threaded,
// but the scenario runner executes independent simulations on a thread
// pool, and a plain global would cross-instrument concurrent runs.
// constinit: no dynamic TLS initialization guard, so the inline
// current() in the header is a bare thread-local load and a branch.
constinit thread_local Registry* g_current = nullptr;
}  // namespace detail

Scope::Scope(Registry& r) noexcept : prev_(detail::g_current) {
  detail::g_current = &r;
}
Scope::~Scope() { detail::g_current = prev_; }

// -- Gauge ------------------------------------------------------------------

void Gauge::merge(const Gauge& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  last_ = std::max(last_, o.last_);
  n_ += o.n_;
}

// -- Histogram --------------------------------------------------------------

Histogram::Histogram(double unit) : unit_(unit > 0.0 ? unit : 1e-6) {}

std::size_t Histogram::bucket_of(double v) const noexcept {
  if (!(v >= unit_)) return 0;  // underflow (also NaN-safe)
  const double octaves = std::log2(v / unit_);
  const auto k = static_cast<std::size_t>(octaves * kSubBucketsPerOctave);
  return k + 1;
}

double Histogram::bucket_upper(std::size_t b) const noexcept {
  if (b == 0) return unit_;
  return unit_ * std::exp2(static_cast<double>(b) / kSubBucketsPerOctave);
}

void Histogram::observe(double v) {
  const std::size_t b = bucket_of(v);
  if (b >= counts_.size()) counts_.resize(b + 1, 0);
  ++counts_[b];
  if (n_ == 0 || v < min_) min_ = v;
  if (n_ == 0 || v > max_) max_ = v;
  ++n_;
  sum_ += v;
}

double Histogram::percentile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank on the bucket CDF: the bucket holding the ceil(q*n)-th
  // smallest observation.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n_)));
  const std::uint64_t rank = std::max<std::uint64_t>(target, 1);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cum += counts_[b];
    if (cum >= rank) {
      // Report the bucket's upper edge, clamped into the exact range.
      return std::clamp(bucket_upper(b), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& o) {
  if (o.unit_ != unit_) {
    throw std::invalid_argument("Histogram::merge: unit mismatch");
  }
  if (o.n_ == 0) return;
  if (o.counts_.size() > counts_.size()) counts_.resize(o.counts_.size(), 0);
  for (std::size_t b = 0; b < o.counts_.size(); ++b) {
    counts_[b] += o.counts_[b];
  }
  if (n_ == 0 || o.min_ < min_) min_ = o.min_;
  if (n_ == 0 || o.max_ > max_) max_ = o.max_;
  n_ += o.n_;
  sum_ += o.sum_;
}

// -- Timeseries -------------------------------------------------------------

void Timeseries::record(simkit::Time t, double v) {
  if (!samples_.empty() && interval_ > 0.0 && t < bin_start_ + interval_) {
    samples_.back() = {t, v};  // newest write in the bin wins
    return;
  }
  if (samples_.size() >= max_samples_) {
    ++dropped_;
    return;
  }
  samples_.push_back({t, v});
  bin_start_ = t;
}

void Timeseries::merge(const Timeseries& o) {
  samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
  std::stable_sort(samples_.begin(), samples_.end(),
                   [](const Sample& a, const Sample& b) { return a.t < b.t; });
  if (samples_.size() > max_samples_) {
    dropped_ += samples_.size() - max_samples_;
    samples_.resize(max_samples_);
  }
  dropped_ += o.dropped_;
  if (!samples_.empty()) bin_start_ = samples_.back().t;
}

// -- Registry ---------------------------------------------------------------

Histogram& Registry::histogram(const std::string& name, double unit) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(unit)).first;
  }
  return it->second;
}

Timeseries& Registry::timeseries(const std::string& name,
                                 simkit::Duration interval) {
  auto it = timeseries_.find(name);
  if (it == timeseries_.end()) {
    it = timeseries_.emplace(name, Timeseries(interval)).first;
  }
  return it->second;
}

void Registry::merge(const Registry& o) {
  for (const auto& [name, c] : o.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : o.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : o.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
  for (const auto& [name, ts] : o.timeseries_) {
    auto it = timeseries_.find(name);
    if (it == timeseries_.end()) {
      timeseries_.emplace(name, ts);
    } else {
      it->second.merge(ts);
    }
  }
}

}  // namespace metrics
