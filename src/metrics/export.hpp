// metrics/export.hpp — schema-stable JSON and CSV renderings of a
// Registry.
//
// Both formats iterate the registry's name-sorted maps and format numbers
// with fixed printf conversions, so two runs that produce the same metric
// values emit byte-identical files — the determinism tests rely on it.
#pragma once

#include <string>

#include "metrics/metrics.hpp"

namespace metrics {

/// Schema identifier embedded in every JSON export.
inline constexpr const char* kJsonSchema = "iosim.metrics.v1";

/// {"schema": ..., "counters": {...}, "gauges": {...},
///  "histograms": {...}, "timeseries": {...}} — histogram entries carry
/// unit/count/sum/min/max/mean/p50/p95/p99, timeseries entries carry the
/// interval and the [t, value] sample pairs.
std::string to_json(const Registry& reg);

/// Long-format CSV: `kind,name,field,value` with one row per scalar.
/// Timeseries export their interval and point count (full samples live in
/// the JSON form).
std::string to_csv(const Registry& reg);

/// Write to_json(reg) to `path`.  Returns false on I/O failure.
bool write_json_file(const Registry& reg, const std::string& path);

}  // namespace metrics
