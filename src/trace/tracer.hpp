// trace/tracer.hpp — Pablo-style application-level I/O tracing.
//
// The paper instruments SCF 1.1 with the Pablo I/O tracing library and
// reports per-operation summaries (Tables 2 and 3): operation count, total
// time, volume, % of I/O time and % of execution time.  IoTracer collects
// exactly that, per operation kind, with optional per-op event retention
// for fine-grained analysis.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "pfs/types.hpp"
#include "simkit/stats.hpp"
#include "simkit/time.hpp"

namespace trace {

struct OpRecord {
  pfs::OpKind kind;
  simkit::Time start;
  simkit::Duration duration;
  std::uint64_t bytes;
};

struct KindSummary {
  std::uint64_t count = 0;
  simkit::Duration time = 0.0;
  std::uint64_t bytes = 0;
  simkit::RunningStat latency;
  /// Latency distribution on a log2 scale (unit 0.1 ms).
  simkit::Log2Histogram latency_hist{1e-4, 32};
};

class IoTracer final : public pfs::IoObserver {
 public:
  /// keep_events: retain every OpRecord (memory ~ op count).  Aggregates
  /// are always collected.
  explicit IoTracer(bool keep_events = false) : keep_events_(keep_events) {}

  void record(pfs::OpKind kind, simkit::Time start, simkit::Duration dur,
              std::uint64_t bytes) override {
    auto& s = byKind_[static_cast<std::size_t>(kind)];
    ++s.count;
    s.time += dur;
    s.bytes += bytes;
    s.latency.add(dur);
    s.latency_hist.add(dur);
    if (keep_events_) events_.push_back({kind, start, dur, bytes});
  }

  /// Merge another tracer (e.g. per-rank tracers into a job-wide one).
  void merge(const IoTracer& other) {
    for (std::size_t k = 0; k < byKind_.size(); ++k) {
      byKind_[k].count += other.byKind_[k].count;
      byKind_[k].time += other.byKind_[k].time;
      byKind_[k].bytes += other.byKind_[k].bytes;
      byKind_[k].latency.merge(other.byKind_[k].latency);
      byKind_[k].latency_hist.merge(other.byKind_[k].latency_hist);
    }
    if (keep_events_) {
      events_.insert(events_.end(), other.events_.begin(),
                     other.events_.end());
    }
  }

  const KindSummary& summary(pfs::OpKind k) const {
    return byKind_[static_cast<std::size_t>(k)];
  }
  const std::vector<OpRecord>& events() const noexcept { return events_; }

  std::uint64_t total_ops() const;
  simkit::Duration total_io_time() const;
  std::uint64_t total_bytes() const;

  void clear();

 private:
  bool keep_events_;
  std::array<KindSummary, static_cast<std::size_t>(pfs::OpKind::kCount)>
      byKind_{};
  std::vector<OpRecord> events_;
};

/// Render the paper's Table 2/3 layout: one row per operation kind plus an
/// "All I/O" footer, with % of I/O time and % of execution time columns.
std::string format_io_summary(const IoTracer& tracer,
                              simkit::Duration exec_time,
                              const std::string& title);

/// Same data as CSV (kind,count,time_s,bytes,pct_io,pct_exec).
std::string io_summary_csv(const IoTracer& tracer,
                           simkit::Duration exec_time);

/// Per-operation latency quantiles (mean / approx p50 / approx p99 / max)
/// — the distributional view Pablo's analysis tools computed.
std::string format_latency_quantiles(const IoTracer& tracer);

}  // namespace trace
