#include "trace/tracer.hpp"

#include <cstdio>

namespace trace {

std::uint64_t IoTracer::total_ops() const {
  std::uint64_t n = 0;
  for (const auto& s : byKind_) n += s.count;
  return n;
}

simkit::Duration IoTracer::total_io_time() const {
  simkit::Duration t = 0.0;
  for (const auto& s : byKind_) t += s.time;
  return t;
}

std::uint64_t IoTracer::total_bytes() const {
  std::uint64_t b = 0;
  for (const auto& s : byKind_) b += s.bytes;
  return b;
}

void IoTracer::clear() {
  byKind_ = {};
  events_.clear();
}

namespace {

void append_row(std::string& out, const char* name, std::uint64_t count,
                double time_s, std::uint64_t bytes, double pct_io,
                double pct_exec) {
  char line[160];
  if (bytes > 0) {
    std::snprintf(line, sizeof line,
                  "| %-7s | %12llu | %14.2f | %8.2f | %8.2f | %9.2f |\n",
                  name, static_cast<unsigned long long>(count), time_s,
                  static_cast<double>(bytes) / 1e9, pct_io, pct_exec);
  } else {
    std::snprintf(line, sizeof line,
                  "| %-7s | %12llu | %14.2f | %8s | %8.2f | %9.2f |\n",
                  name, static_cast<unsigned long long>(count), time_s, "",
                  pct_io, pct_exec);
  }
  out += line;
}

}  // namespace

std::string format_io_summary(const IoTracer& tracer,
                              simkit::Duration exec_time,
                              const std::string& title) {
  const double io_total = tracer.total_io_time();
  std::string out;
  out += title + "\n";
  out +=
      "| Oper    |   Oper Count |   I/O Time (s) | Vol (GB) | % of I/O "
      "| % of exec |\n";
  out +=
      "|---------|--------------|----------------|----------|----------"
      "|-----------|\n";
  for (std::size_t k = 0; k < static_cast<std::size_t>(pfs::OpKind::kCount);
       ++k) {
    const auto kind = static_cast<pfs::OpKind>(k);
    const auto& s = tracer.summary(kind);
    if (s.count == 0) continue;
    append_row(out, std::string(pfs::to_string(kind)).c_str(), s.count,
               s.time, s.bytes, io_total > 0 ? 100.0 * s.time / io_total : 0,
               exec_time > 0 ? 100.0 * s.time / exec_time : 0);
  }
  append_row(out, "All I/O", tracer.total_ops(), io_total,
             tracer.total_bytes(), io_total > 0 ? 100.0 : 0.0,
             exec_time > 0 ? 100.0 * io_total / exec_time : 0);
  return out;
}

std::string io_summary_csv(const IoTracer& tracer,
                           simkit::Duration exec_time) {
  const double io_total = tracer.total_io_time();
  std::string out = "oper,count,time_s,bytes,pct_io,pct_exec\n";
  char line[160];
  for (std::size_t k = 0; k < static_cast<std::size_t>(pfs::OpKind::kCount);
       ++k) {
    const auto kind = static_cast<pfs::OpKind>(k);
    const auto& s = tracer.summary(kind);
    std::snprintf(line, sizeof line, "%s,%llu,%.6f,%llu,%.4f,%.4f\n",
                  std::string(pfs::to_string(kind)).c_str(),
                  static_cast<unsigned long long>(s.count), s.time,
                  static_cast<unsigned long long>(s.bytes),
                  io_total > 0 ? 100.0 * s.time / io_total : 0.0,
                  exec_time > 0 ? 100.0 * s.time / exec_time : 0.0);
    out += line;
  }
  return out;
}

std::string format_latency_quantiles(const IoTracer& tracer) {
  std::string out =
      "| Oper    |   mean ms |    ~p50 ms |    ~p99 ms |    max ms |\n"
      "|---------|-----------|------------|------------|-----------|\n";
  char line[160];
  for (std::size_t k = 0; k < static_cast<std::size_t>(pfs::OpKind::kCount);
       ++k) {
    const auto kind = static_cast<pfs::OpKind>(k);
    const auto& s = tracer.summary(kind);
    if (s.count == 0) continue;
    std::snprintf(line, sizeof line,
                  "| %-7s | %9.2f | %10.2f | %10.2f | %9.2f |\n",
                  std::string(pfs::to_string(kind)).c_str(),
                  s.latency.mean() * 1e3,
                  s.latency_hist.quantile_upper_bound(0.50) * 1e3,
                  s.latency_hist.quantile_upper_bound(0.99) * 1e3,
                  s.latency.max() * 1e3);
    out += line;
  }
  return out;
}

}  // namespace trace
