// trace/sddf.hpp — Pablo SDDF-style trace export.
//
// The paper instruments applications with the Pablo I/O tracing library,
// whose on-disk form is SDDF (Self-Describing Data Format): an ASCII
// stream of record *descriptors* followed by tagged data records.  This
// writer emits the I/O event stream of an IoTracer in that style, so the
// simulated traces can be eyeballed (or post-processed) the way Pablo
// traces were.
#pragma once

#include <string>

#include "trace/tracer.hpp"

namespace trace {

struct SddfOptions {
  std::string system = "iosim";
  int processor = 0;  // rank the trace came from
};

/// Render the tracer's retained events (IoTracer(keep_events=true)) as an
/// SDDF-style ASCII stream: one descriptor, one record per event.
std::string to_sddf(const IoTracer& tracer, const SddfOptions& opts = {});

/// Parse back the record count of an SDDF stream (validation helper).
std::size_t sddf_record_count(const std::string& sddf);

}  // namespace trace
