#include "trace/sddf.hpp"

#include <cstdio>

namespace trace {

std::string to_sddf(const IoTracer& tracer, const SddfOptions& opts) {
  std::string out;
  out += "/* SDDF-A (ASCII) — " + opts.system + " I/O event trace */\n";
  out += ";;\n";
  out +=
      "#1:\n"
      "\"IO Event\" {{\n"
      "  int    \"Processor Number\";\n"
      "  double \"Timestamp\";\n"
      "  int    \"Event Type\";\n"
      "  char   \"Operation\"[];\n"
      "  double \"Duration\";\n"
      "  int    \"Byte Count\";\n"
      "}};;\n";
  char line[192];
  for (const OpRecord& ev : tracer.events()) {
    std::snprintf(line, sizeof line,
                  "\"IO Event\" { %d, %.6f, %d, \"%s\", %.6f, %llu };;\n",
                  opts.processor, ev.start,
                  static_cast<int>(ev.kind),
                  std::string(pfs::to_string(ev.kind)).c_str(), ev.duration,
                  static_cast<unsigned long long>(ev.bytes));
    out += line;
  }
  return out;
}

std::size_t sddf_record_count(const std::string& sddf) {
  std::size_t count = 0;
  std::size_t pos = 0;
  const std::string needle = "\"IO Event\" {";
  while ((pos = sddf.find(needle, pos)) != std::string::npos) {
    // Skip the descriptor (it uses double braces).
    if (sddf.compare(pos + needle.size(), 1, "{") != 0) ++count;
    pos += needle.size();
  }
  return count;
}

}  // namespace trace
