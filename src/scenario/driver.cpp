#include "scenario/driver.hpp"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace scenario {

namespace {

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s list\n"
      "       %s run <name>... | --all  [flags]\n"
      "\n"
      "One driver for every paper table/figure/ablation scenario.\n"
      "Run flags (also accepted by the bench_* alias binaries):\n"
      "  --full              paper-sized op counts\n"
      "  --scale=X           explicit volume/dump scale factor\n"
      "  --check             exit non-zero if a paper shape fails\n"
      "  --csv               CSV tables instead of ASCII\n"
      "  --metrics           print the metrics registry table\n"
      "  --metrics-out=PATH  write metrics JSON (per scenario with --all)\n"
      "  --policy=NAME       checkpoint policy (fault_ckpt)\n"
      "  --seed=N            fault-plan seed (stochastic-plan scenarios)\n"
      "  -j N, --jobs=N      run grid points / scenarios on N threads\n"
      "                      (output is byte-identical to -j 1)\n"
      "  --repeat=K          run K times, fail on any output drift\n"
      "  --golden=PATH       fail unless output matches the pinned file\n",
      argv0, argv0);
}

int unknown_scenario(const std::string& name) {
  std::fprintf(stderr, "iosim: unknown scenario '%s' (try 'iosim list')\n",
               name.c_str());
  return 2;
}

}  // namespace

int iosim_main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    print_usage(argv[0]);
    return args.empty() ? 2 : 0;
  }
  if (args[0] == "list" || args[0] == "--list") {
    list_scenarios();
    return 0;
  }
  if (args[0] != "run") {
    std::fprintf(stderr, "iosim: unknown command '%s'\n", args[0].c_str());
    print_usage(argv[0]);
    return 2;
  }

  expt::Options opt(/*default_scale=*/1.0);
  opt.parse(argc - 1, argv + 1);  // flags; positionals are ignored
  if (!opt.error.empty()) {
    std::fprintf(stderr, "iosim: %s\n", opt.error.c_str());
    return 2;
  }
  if (opt.list) {
    list_scenarios();
    return 0;
  }

  std::vector<const Spec*> specs;
  if (opt.all) {
    specs = Registry::global().all();
  } else {
    for (std::size_t i = 1; i < args.size(); ++i) {
      // `-j 8` is the only flag whose value is a separate token; don't
      // mistake that value for a scenario name.
      if (args[i] == "-j") {
        ++i;
        continue;
      }
      if (args[i][0] == '-') continue;  // a flag, not a scenario name
      const Spec* s = Registry::global().find(args[i]);
      if (s == nullptr) return unknown_scenario(args[i]);
      specs.push_back(s);
    }
  }
  if (specs.empty()) {
    std::fprintf(stderr, "iosim: no scenario named (use <name> or --all)\n");
    return 2;
  }
  return run_scenarios(specs, opt);
}

int alias_main(const char* scenario_name, int argc, char** argv) {
  const Spec* s = Registry::global().find(scenario_name);
  if (s == nullptr) return unknown_scenario(scenario_name);
  expt::Options opt(s->default_scale);
  opt.parse(argc, argv);
  if (!opt.error.empty()) {
    std::fprintf(stderr, "%s: %s\n", scenario_name, opt.error.c_str());
    return 2;
  }
  opt.scale_given = true;  // default already resolved from the spec
  return run_scenarios({s}, opt);
}

}  // namespace scenario
