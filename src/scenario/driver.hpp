// scenario/driver.hpp — the `iosim` CLI and the bench-name aliases.
#pragma once

namespace scenario {

/// `iosim list` / `iosim run <name>...|--all [flags]`.  Returns the
/// process exit code.
int iosim_main(int argc, char** argv);

/// Entry point for the legacy bench binaries: `bench_fig1 ...` behaves
/// exactly like `iosim run fig1 ...` (same flags, same bytes on stdout),
/// so EXPERIMENTS.md commands and CI goldens keep working.
int alias_main(const char* scenario_name, int argc, char** argv);

}  // namespace scenario
