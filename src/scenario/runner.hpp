// scenario/runner.hpp — execute scenarios with golden/repeat gating.
//
// The runner is the policy layer between the Registry and the CLI: it
// picks each scenario's effective options (per-scenario default scale,
// per-scenario metrics file), runs bodies on the shared JobBudget, holds
// every scenario's captured output until it can be printed in request
// order (so parallel suite output is byte-identical to serial), and
// folds the determinism gates that used to live in CI shell into
// `--golden=PATH` and `--repeat=K`.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace scenario {

/// Result of running one scenario, including every gate it was held to.
struct Outcome {
  const Spec* spec = nullptr;
  std::string output;       // first run's captured stdout
  bool checks_ok = true;    // --check expectations
  bool repeat_ok = true;    // --repeat=K byte-identity
  bool golden_ok = true;    // --golden=PATH byte-identity
  bool usage_error = false; // body rejected its flags (exit 2)
  std::string note;         // gate details for stderr
  std::string error;        // body exception text ("" = none)
  double wall_s = 0.0;      // host wall time, stderr reporting only

  bool ok() const {
    return checks_ok && repeat_ok && golden_ok && !usage_error &&
           error.empty();
  }
};

/// Run one scenario under `opt` (already resolved: scale defaulted,
/// metrics path finalized) against the golden/repeat gates in `opt`.
Outcome run_scenario(const Spec& spec, const expt::Options& opt,
                     JobBudget* budget);

/// Run `specs` in request order: simulator scenarios fan out on the
/// budget, wall-clock scenarios run serially afterwards; outputs print
/// to stdout in request order (with a banner when more than one), gate
/// status and the suite wall time go to stderr.  Returns the process
/// exit code (0 ok, 1 gate failure, 2 usage error, 3 internal error).
int run_scenarios(const std::vector<const Spec*>& specs,
                  const expt::Options& opt);

/// `iosim list`: one line per registered scenario (name-sorted).
void list_scenarios();

}  // namespace scenario
