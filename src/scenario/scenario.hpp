// scenario/scenario.hpp — first-class experiment scenarios.
//
// Every paper table/figure reproduction used to be its own binary with a
// hand-rolled sweep loop.  A Scenario captures the shared shape instead:
// a name, a parameter grid, and a body that runs grid points (each point
// one independent deterministic simulation) and renders tables + shape
// checks from the collected results.  The `iosim` driver owns the
// command line, the thread pool, golden comparison, and repeat gating;
// adding a scenario is one registration in one translation unit.
//
// Determinism contract: a point must not touch anything outside its own
// Engine / metrics::Registry / RNG streams.  The Context runs points on
// a thread pool but stores every result (output rows, named values,
// per-point metrics registries) by point index and folds them back in
// grid order on the body's thread — so `-j N` output is byte-identical
// to `-j 1`.
#pragma once

#include <atomic>
#include <cstdarg>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "exp/options.hpp"
#include "metrics/metrics.hpp"

namespace scenario {

/// Process-wide pool of extra worker threads, shared between the
/// scenario level (run several scenarios at once) and the point level
/// (fan one scenario's grid out) so `-j N` bounds the TOTAL thread
/// count.  Callers always keep their own thread, so acquire(0 granted)
/// still makes progress.
class JobBudget {
 public:
  explicit JobBudget(int jobs) : tokens_(jobs > 1 ? jobs - 1 : 0) {}

  /// Take up to `want` worker tokens; returns how many were granted.
  int acquire(int want) {
    int have = tokens_.load(std::memory_order_relaxed);
    while (want > 0 && have > 0) {
      const int take = have < want ? have : want;
      if (tokens_.compare_exchange_weak(have, have - take)) return take;
    }
    return 0;
  }
  void release(int n) { tokens_.fetch_add(n); }

 private:
  std::atomic<int> tokens_;
};

/// One named parameter axis of a scenario's grid.
struct Axis {
  std::string name;
  std::vector<std::string> values;
};

/// A position in the expanded grid.  `coord[a]` is the value index on
/// axis `a`; expansion is row-major with the LAST axis fastest, so the
/// expansion order matches the nested loops the bench binaries used to
/// write (outer axis first).
struct GridPoint {
  std::size_t index = 0;
  std::vector<std::size_t> coord;

  std::size_t at(std::size_t axis) const { return coord.at(axis); }
};

/// Number of points in the cartesian product (1 for an empty grid).
std::size_t grid_size(const std::vector<Axis>& grid);

/// The `index`-th point of the expansion (see GridPoint for the order).
GridPoint grid_point(const std::vector<Axis>& grid, std::size_t index);

class Context;

/// Thrown by a scenario body for bad per-scenario flags (e.g. an unknown
/// --policy name); the runner reports it on stderr and exits 2, matching
/// the old bench binaries.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A registered scenario: everything the driver needs to list it, run
/// it, and gate it.
struct Spec {
  std::string name;         // CLI handle, e.g. "fig1"
  std::string title;        // one-line description for `iosim list`
  /// What the scenario demonstrates and what --check asserts — printed
  /// (indented) under the title by `iosim list`, so the registry is
  /// self-documenting.  Keep it to a sentence or two.
  std::string description;
  double default_scale = 1.0;
  std::vector<Axis> grid;   // declarative grid (may be empty)
  // Output contains host wall-clock timings (google-benchmark micros):
  // excluded from golden/repeat gates and run serially.
  bool wallclock = false;
  std::function<void(Context&)> run;
};

/// Execution context handed to a scenario body.  Collects output text,
/// shape-check results, and the merged metrics registry; fans points out
/// on the driver's thread pool.
class Context {
 public:
  /// `budget` may be null (serial) and is not owned.
  Context(const expt::Options& opt, std::string metrics_path,
          JobBudget* budget);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  const expt::Options& opt() const { return opt_; }

  // -- output ---------------------------------------------------------
  void print(std::string_view s) { out_ << s; }
  void printf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));
  /// Raw stream for code that wants an std::ostream (micro reporters).
  std::ostream& stream() { return out_; }
  std::string output() const { return out_.str(); }

  // -- shape checks ---------------------------------------------------
  /// Prints "  [PASS]/[FAIL] what" (same format the bench binaries used)
  /// and folds into ok().
  void expect(bool ok, const std::string& what);
  bool ok() const { return all_ok_; }

  // -- metrics --------------------------------------------------------
  /// The scenario-wide registry: per-point registries merge into it in
  /// point order after every map() call.  Only populated when the run
  /// was started with --metrics/--metrics-out.
  metrics::Registry& registry() { return registry_; }
  /// Uninstall the body's metrics scope and, if --metrics-out was given,
  /// write the JSON file and append the "metrics: wrote PATH" line.
  /// Under --audit also appends the deterministic "audit: ..." summary
  /// of every per-point ledger (merged in point order).  Idempotent;
  /// called automatically after the body returns.
  void finish_metrics();

  // -- data-integrity audit -------------------------------------------
  /// Per-point audit totals merged in point order (--audit only; empty
  /// otherwise).  A scenario body that installs its OWN audit::Scope
  /// inside a point diverts that point's events away from the --audit
  /// ledger — its summary then reflects only the un-diverted points.
  const audit::Totals& audit_totals() const { return audit_totals_; }

  // -- parallel points ------------------------------------------------
  /// Run fn(i) for i in [0, n) on up to --jobs threads.  Each point runs
  /// under its own metrics::Registry (merged back in index order); the
  /// first exception (by point index) is rethrown on this thread.
  void for_each_point(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

  /// Typed fan-out: returns one R per point, in point order.
  template <class R, class Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) {
    std::vector<R> out(n);
    for_each_point(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Typed fan-out over a declared grid.
  template <class R, class Fn>
  std::vector<R> map_grid(const std::vector<Axis>& grid, Fn&& fn) {
    std::vector<R> out(grid_size(grid));
    for_each_point(out.size(), [&](std::size_t i) {
      out[i] = fn(grid_point(grid, i));
    });
    return out;
  }

 private:
  friend class Runner;

  const expt::Options& opt_;
  std::string metrics_path_;
  JobBudget* budget_;
  std::ostringstream out_;
  bool all_ok_ = true;
  metrics::Registry registry_;
  metrics::Scope* scope_ = nullptr;  // owned; installed iff metrics on
  bool metrics_done_ = false;
  audit::Totals audit_totals_;  // merged per-point totals (--audit)
};

/// Static registry of scenarios.  Instantiable for tests; the process-
/// wide instance is global().
class Registry {
 public:
  /// Throws std::logic_error on an empty or duplicate name.
  void add(Spec spec);
  const Spec* find(std::string_view name) const;
  /// All scenarios, sorted by name (stable across link order).
  std::vector<const Spec*> all() const;

  static Registry& global();

 private:
  std::vector<Spec> specs_;
};

/// One static instance per scenario translation unit registers the spec.
struct Registration {
  explicit Registration(Spec spec) {
    Registry::global().add(std::move(spec));
  }
};

}  // namespace scenario
