#include "scenario/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

namespace scenario {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

/// First line number (1-based) where a and b differ, for gate notes.
std::size_t first_diff_line(const std::string& a, const std::string& b) {
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  std::size_t line = 1;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return 0;  // equal (diff must be trailing bytes)
    if (ga != gb || la != lb) return line;
    ++line;
  }
}

/// Resolve the per-scenario option set from the request-wide one.
expt::Options effective_options(const Spec& spec, const expt::Options& req,
                                bool multi) {
  expt::Options opt = req;
  if (!req.scale_given) opt.scale = spec.default_scale;
  if (!req.metrics_out.empty() && multi) {
    // --all --metrics-out=m.json writes m.<name>.json per scenario.
    std::string path = req.metrics_out;
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
      path.insert(dot, "." + spec.name);
    } else {
      path += "." + spec.name;
    }
    opt.metrics_out = path;
  }
  return opt;
}

std::string run_body_once(const Spec& spec, const expt::Options& opt,
                          JobBudget* budget) {
  Context ctx(opt, opt.metrics_out, budget);
  spec.run(ctx);
  ctx.finish_metrics();
  return ctx.output();
}

}  // namespace

Outcome run_scenario(const Spec& spec, const expt::Options& opt,
                     JobBudget* budget) {
  Outcome out;
  out.spec = &spec;
  const auto t0 = std::chrono::steady_clock::now();
  const int repeats = opt.repeat > 1 ? opt.repeat : 1;
  const bool gates_apply = !spec.wallclock;
  if (!gates_apply && (repeats > 1 || !opt.golden.empty())) {
    out.note = "wall-clock scenario: --repeat/--golden gates skipped";
  }

  try {
    Context ctx(opt, opt.metrics_out, budget);
    spec.run(ctx);
    ctx.finish_metrics();
    out.output = ctx.output();
    out.checks_ok = ctx.ok();

    if (gates_apply) {
      for (int k = 1; k < repeats; ++k) {
        const std::string again = run_body_once(spec, opt, budget);
        if (again != out.output) {
          out.repeat_ok = false;
          out.note = "run " + std::to_string(k + 1) +
                     " diverged from run 1 at line " +
                     std::to_string(first_diff_line(out.output, again));
          break;
        }
      }
      if (out.repeat_ok && !opt.golden.empty()) {
        std::ifstream f(opt.golden, std::ios::binary);
        if (!f) {
          out.golden_ok = false;
          out.note = "golden file unreadable: " + opt.golden;
        } else {
          std::ostringstream want;
          want << f.rdbuf();
          if (want.str() != out.output) {
            out.golden_ok = false;
            out.note = "output differs from golden " + opt.golden +
                       " at line " +
                       std::to_string(
                           first_diff_line(want.str(), out.output));
          }
        }
      }
    }
  } catch (const UsageError& e) {
    out.usage_error = true;
    out.error = e.what();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.wall_s = seconds_since(t0);
  return out;
}

int run_scenarios(const std::vector<const Spec*>& specs,
                  const expt::Options& opt) {
  const bool multi = specs.size() > 1;
  JobBudget budget(opt.jobs);
  std::vector<Outcome> outcomes(specs.size());
  const auto t0 = std::chrono::steady_clock::now();

  // Simulator scenarios fan out across the budget; wall-clock scenarios
  // (google-benchmark micros share mutable library state) run serially
  // on this thread once the parallel batch has drained.
  std::vector<std::size_t> parallel, serial;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    (specs[i]->wallclock ? serial : parallel).push_back(i);
  }

  auto run_at = [&](std::size_t i) {
    outcomes[i] =
        run_scenario(*specs[i], effective_options(*specs[i], opt, multi),
                     &budget);
  };

  if (!parallel.empty()) {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t k = next.fetch_add(1); k < parallel.size();
           k = next.fetch_add(1)) {
        run_at(parallel[k]);
      }
    };
    const int granted = budget.acquire(
        static_cast<int>(parallel.size()) - 1);
    std::vector<std::thread> helpers;
    helpers.reserve(static_cast<std::size_t>(granted));
    for (int t = 0; t < granted; ++t) helpers.emplace_back(worker);
    worker();
    for (std::thread& t : helpers) t.join();
    budget.release(granted);
  }
  for (std::size_t i : serial) run_at(i);

  // Print in request order; stdout carries only scenario output (plus a
  // banner when several were requested), stderr carries gate status.
  bool any_gate_failed = false, any_usage = false, any_error = false;
  int passed = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Outcome& out = outcomes[i];
    if (multi) std::printf("=== %s ===\n", specs[i]->name.c_str());
    std::fputs(out.output.c_str(), stdout);
    std::fflush(stdout);

    std::string status = "ok";
    if (!out.error.empty()) {
      status = out.usage_error ? "usage error: " + out.error
                               : "ERROR: " + out.error;
    } else if (!out.checks_ok) {
      status = "CHECK FAILED";
    } else if (!out.repeat_ok) {
      status = "NONDETERMINISTIC";
    } else if (!out.golden_ok) {
      status = "GOLDEN MISMATCH";
    }
    std::fprintf(stderr, "iosim: %-24s %s (%.2fs)%s%s\n",
                 specs[i]->name.c_str(), status.c_str(), out.wall_s,
                 out.note.empty() ? "" : " — ", out.note.c_str());
    if (out.ok()) ++passed;
    any_usage = any_usage || out.usage_error;
    any_error = any_error || (!out.error.empty() && !out.usage_error);
    any_gate_failed = any_gate_failed ||
                      !(out.checks_ok && out.repeat_ok && out.golden_ok);
  }
  std::fprintf(stderr, "iosim: %d/%zu scenarios ok in %.2fs (-j %d)\n",
               passed, specs.size(), seconds_since(t0),
               opt.jobs > 1 ? opt.jobs : 1);
  if (any_usage) return 2;
  if (any_error) return 3;
  return any_gate_failed ? 1 : 0;
}

void list_scenarios() {
  const std::vector<const Spec*> all = Registry::global().all();
  std::size_t width = 0;
  for (const Spec* s : all) width = std::max(width, s->name.size());
  for (const Spec* s : all) {
    std::string grid;
    std::size_t points = 1;
    for (const Axis& a : s->grid) {
      if (!grid.empty()) grid += " x ";
      grid += a.name + "(" + std::to_string(a.values.size()) + ")";
      points *= a.values.size();
    }
    std::printf("%-*s  %s%s", static_cast<int>(width), s->name.c_str(),
                s->title.c_str(), s->wallclock ? " [wall-clock]" : "");
    if (!s->grid.empty()) {
      std::printf("  [grid: %s = %zu points]", grid.c_str(), points);
    }
    std::printf("\n");
    if (!s->description.empty()) {
      // Wrap the description to ~72 columns under the name column.
      std::istringstream words(s->description);
      std::string word, line;
      while (words >> word) {
        if (!line.empty() && line.size() + 1 + word.size() > 72) {
          std::printf("%-*s    %s\n", static_cast<int>(width), "",
                      line.c_str());
          line.clear();
        }
        line += (line.empty() ? "" : " ") + word;
      }
      if (!line.empty()) {
        std::printf("%-*s    %s\n", static_cast<int>(width), "",
                    line.c_str());
      }
    }
  }
}

}  // namespace scenario
