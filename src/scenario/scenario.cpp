#include "scenario/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>

#include "metrics/export.hpp"

namespace scenario {

// -- grid -------------------------------------------------------------------

std::size_t grid_size(const std::vector<Axis>& grid) {
  std::size_t n = 1;
  for (const Axis& a : grid) n *= a.values.size();
  return n;
}

GridPoint grid_point(const std::vector<Axis>& grid, std::size_t index) {
  GridPoint p;
  p.index = index;
  p.coord.resize(grid.size(), 0);
  // Row-major, last axis fastest: peel from the innermost axis.
  for (std::size_t a = grid.size(); a-- > 0;) {
    const std::size_t n = grid[a].values.size();
    p.coord[a] = index % n;
    index /= n;
  }
  return p;
}

// -- Context ----------------------------------------------------------------

Context::Context(const expt::Options& opt, std::string metrics_path,
                 JobBudget* budget)
    : opt_(opt),
      metrics_path_(std::move(metrics_path)),
      budget_(budget) {
  if (opt_.metrics_enabled()) scope_ = new metrics::Scope(registry_);
}

Context::~Context() {
  delete scope_;
  scope_ = nullptr;
}

void Context::printf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string buf(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(buf.data(), buf.size() + 1, fmt, args);
  va_end(args);
  out_ << buf;
}

void Context::expect(bool ok, const std::string& what) {
  out_ << "  [" << (ok ? "PASS" : "FAIL") << "] " << what << "\n";
  all_ok_ = all_ok_ && ok;
}

void Context::finish_metrics() {
  if (metrics_done_) return;
  metrics_done_ = true;
  delete scope_;
  scope_ = nullptr;
  if (opt_.audit) {
    const audit::Totals& t = audit_totals_;
    out_ << "audit: writes=" << t.writes_acked
         << " reads=" << t.reads_checked
         << " lost_updates=" << t.lost_updates
         << " lost_bytes=" << t.lost_bytes
         << " stale_reads=" << t.stale_reads
         << " torn_writes=" << t.torn_writes
         << " scrub_destroyed=" << t.scrub_destroyed
         << " violations=" << t.violations() << "\n";
  }
  if (!metrics_path_.empty()) {
    if (metrics::write_json_file(registry_, metrics_path_)) {
      out_ << "metrics: wrote " << metrics_path_ << "\n";
    } else {
      std::fprintf(stderr, "metrics: FAILED to write %s\n",
                   metrics_path_.c_str());
    }
  }
}

void Context::for_each_point(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const bool metrics_on = opt_.metrics_enabled();
  const bool audit_on = opt_.audit;
  std::vector<metrics::Registry> point_regs(metrics_on ? n : 0);
  std::vector<audit::Totals> point_audit(audit_on ? n : 0);
  std::vector<std::exception_ptr> errors(n);

  auto run_point = [&](std::size_t i) {
    try {
      // One ledger per point, installed like the per-point registry, so
      // audited runs stay deterministic under -j N (totals fold back in
      // point order below).
      audit::Ledger ledger;
      std::optional<audit::Scope> audit_scope;
      if (audit_on) audit_scope.emplace(ledger);
      if (metrics_on) {
        metrics::Scope scope(point_regs[i]);
        fn(i);
      } else {
        fn(i);
      }
      if (audit_on) point_audit[i] = ledger.totals();
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  const int granted =
      budget_ ? budget_->acquire(static_cast<int>(
                    std::min<std::size_t>(n - 1, 1024)))
              : 0;
  if (granted == 0) {
    for (std::size_t i = 0; i < n; ++i) run_point(i);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1); i < n;
           i = next.fetch_add(1)) {
        run_point(i);
      }
    };
    std::vector<std::thread> helpers;
    helpers.reserve(static_cast<std::size_t>(granted));
    for (int t = 0; t < granted; ++t) helpers.emplace_back(worker);
    worker();
    for (std::thread& t : helpers) t.join();
    budget_->release(granted);
  }

  // Fold per-point registries back in point order so the merged registry
  // is independent of scheduling.
  if (metrics_on) {
    for (const metrics::Registry& r : point_regs) registry_.merge(r);
  }
  if (audit_on) {
    for (const audit::Totals& t : point_audit) audit_totals_.merge(t);
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

// -- Registry ---------------------------------------------------------------

void Registry::add(Spec spec) {
  if (spec.name.empty()) {
    throw std::logic_error("scenario::Registry: empty scenario name");
  }
  if (!spec.run) {
    throw std::logic_error("scenario::Registry: scenario '" + spec.name +
                           "' has no run function");
  }
  if (find(spec.name) != nullptr) {
    throw std::logic_error("scenario::Registry: duplicate scenario '" +
                           spec.name + "'");
  }
  specs_.push_back(std::move(spec));
}

const Spec* Registry::find(std::string_view name) const {
  for (const Spec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Spec*> Registry::all() const {
  std::vector<const Spec*> out;
  out.reserve(specs_.size());
  for (const Spec& s : specs_) out.push_back(&s);
  std::sort(out.begin(), out.end(), [](const Spec* a, const Spec* b) {
    return a->name < b->name;
  });
  return out;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

}  // namespace scenario
