// numeric/fft.hpp — complex FFT kernels used by the out-of-core FFT
// application when it runs data-backed (and by its correctness tests).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace numeric {

using Complex = std::complex<double>;

/// In-place iterative radix-2 Cooley–Tukey FFT.  data.size() must be a
/// power of two.  inverse=true applies the unscaled inverse transform;
/// callers divide by N to invert exactly.
void fft(std::span<Complex> data, bool inverse = false);

/// Normalized inverse: fft(inverse) followed by 1/N scaling.
void ifft(std::span<Complex> data);

/// O(N^2) reference DFT for validation.
std::vector<Complex> dft_reference(std::span<const Complex> data,
                                   bool inverse = false);

/// In-core 2-D FFT over a row-major rows x cols matrix (both powers of
/// two): FFT of every row, then of every column.  Reference for the
/// out-of-core implementation.
void fft_2d(std::span<Complex> matrix, std::size_t rows, std::size_t cols,
            bool inverse = false);

/// Estimated FLOP count of one radix-2 FFT of length n (5 n log2 n).
double fft_flops(std::size_t n);

bool is_power_of_two(std::size_t n);

}  // namespace numeric
