// numeric/transpose.hpp — blocked matrix transpose kernels.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

namespace numeric {

/// out[c * rows + r] = in[r * cols + c] — transpose a row-major rows x cols
/// matrix into a row-major cols x rows matrix, cache-blocked.
template <class T>
void transpose(std::span<const T> in, std::span<T> out, std::size_t rows,
               std::size_t cols, std::size_t block = 32) {
  assert(in.size() == rows * cols);
  assert(out.size() == rows * cols);
  assert(in.data() != out.data() && "transpose is out-of-place");
  for (std::size_t rb = 0; rb < rows; rb += block) {
    const std::size_t rmax = std::min(rows, rb + block);
    for (std::size_t cb = 0; cb < cols; cb += block) {
      const std::size_t cmax = std::min(cols, cb + block);
      for (std::size_t r = rb; r < rmax; ++r) {
        for (std::size_t c = cb; c < cmax; ++c) {
          out[c * rows + r] = in[r * cols + c];
        }
      }
    }
  }
}

/// In-place transpose of a square n x n matrix.
template <class T>
void transpose_square(std::span<T> m, std::size_t n) {
  assert(m.size() == n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r + 1; c < n; ++c) {
      std::swap(m[r * n + c], m[c * n + r]);
    }
  }
}

}  // namespace numeric
