#include "numeric/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace numeric {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  assert(is_power_of_two(n));
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = data[i + j];
        const Complex v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void ifft(std::span<Complex> data) {
  fft(data, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& x : data) x *= inv_n;
}

std::vector<Complex> dft_reference(std::span<const Complex> data,
                                   bool inverse) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += data[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

void fft_2d(std::span<Complex> matrix, std::size_t rows, std::size_t cols,
            bool inverse) {
  assert(matrix.size() == rows * cols);
  // Rows.
  for (std::size_t r = 0; r < rows; ++r) {
    fft(matrix.subspan(r * cols, cols), inverse);
  }
  // Columns (gather/scatter through a scratch vector).
  std::vector<Complex> col(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) col[r] = matrix[r * cols + c];
    fft(col, inverse);
    for (std::size_t r = 0; r < rows; ++r) matrix[r * cols + c] = col[r];
  }
}

double fft_flops(std::size_t n) {
  if (n <= 1) return 0.0;
  return 5.0 * static_cast<double>(n) * std::log2(static_cast<double>(n));
}

}  // namespace numeric
