// simkit/time.hpp — simulated-time representation.
//
// Simulated time is a double-precision count of seconds since the start of
// the simulation.  Event ordering never relies on exact floating-point
// comparison alone: the engine breaks ties with a monotonically increasing
// sequence number, so two events scheduled for the same instant run in the
// order they were scheduled (deterministic replay).
#pragma once

#include <limits>

namespace simkit {

/// Simulated time in seconds.
using Time = double;

/// A duration in simulated seconds (same representation as Time).
using Duration = double;

inline constexpr Time kTimeZero = 0.0;
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Convenience unit helpers so call sites read as physics, not magic numbers.
constexpr Duration seconds(double s) { return s; }
constexpr Duration milliseconds(double ms) { return ms * 1e-3; }
constexpr Duration microseconds(double us) { return us * 1e-6; }
constexpr Duration nanoseconds(double ns) { return ns * 1e-9; }

}  // namespace simkit
