#include "simkit/engine.hpp"

#include <mutex>
#include <unordered_set>

namespace simkit {

// ---------------------------------------------------------------------------
// Name interning.

const char* ProcName::intern(std::string_view name) {
  // Names repeat heavily (a handful of distinct strings per subsystem),
  // so the table stays tiny; the mutex is only touched by spawns that
  // pass a computed std::string, never by literal names.
  static std::mutex mu;
  static std::unordered_set<std::string>* table =
      new std::unordered_set<std::string>();  // leaked: process lifetime
  std::lock_guard<std::mutex> lock(mu);
  return table->emplace(name).first->c_str();
}

// ---------------------------------------------------------------------------
// ProcState pooling.

namespace detail {
namespace {

struct ProcStatePool {
  ProcState* head = nullptr;
  std::size_t count = 0;
  static constexpr std::size_t kMaxRetained = 1024;

  ~ProcStatePool() {
    for (ProcState* st = head; st != nullptr;) {
      ProcState* next = st->pool_next;
      delete st;
      st = next;
    }
  }
};

thread_local ProcStatePool t_proc_pool;

}  // namespace

ProcState* ProcState::acquire(const char* name) {
  ProcStatePool& pool = t_proc_pool;
  ProcState* st;
  if (pool.head != nullptr) {
    st = pool.head;
    pool.head = st->pool_next;
    --pool.count;
    st->pool_next = nullptr;
    st->done = false;
    st->error_consumed = false;
    st->error = nullptr;
    st->finish_time = kTimeZero;
    st->joiners.clear();  // keeps capacity across reuses
  } else {
    st = new ProcState();
  }
  st->name = name;
  st->refs = 1;
  return st;
}

void ProcState::release(ProcState* st) noexcept {
  ProcStatePool& pool = t_proc_pool;
  if (pool.count >= ProcStatePool::kMaxRetained) {
    delete st;
    return;
  }
  st->error = nullptr;  // drop the exception now, not at reuse time
  st->pool_next = pool.head;
  pool.head = st;
  ++pool.count;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Engine.

detail::Detached Engine::drive(Task<void> body, detail::ProcState* st) {
  try {
    co_await std::move(body);
  } catch (...) {
    st->error = std::current_exception();
    st->ref();
    failed_.push_back(st);
  }
  st->done = true;
  st->finish_time = now_;
  for (auto j : st->joiners) schedule_at(now_, j);
  st->joiners.clear();
  st->unref();  // the driver's reference
}

ProcHandle Engine::spawn(Task<void> body, ProcName name) {
  return spawn_at(now_, std::move(body), name);
}

ProcHandle Engine::spawn_at(Time t, Task<void> body, ProcName name) {
  detail::ProcState* st = detail::ProcState::acquire(name.c_str());
  detail::Detached d = drive(std::move(body), st);
  schedule_at(t, d.handle);
  return ProcHandle{st};
}

Engine::~Engine() {
  for (detail::ProcState* st : failed_) st->unref();
}

bool Engine::step() {
  if (queue_.empty()) return false;
  const auto ev = queue_.pop();
  // Warm the next event's coroutine frame while this one runs: with a
  // large pending set the frames are cache-cold and the dependent load
  // at resume() is the single largest per-event cost.  The queue's
  // front buffer makes peek() an L1 array read, so the lookup is free
  // and the prefetch overlaps the next frame's ~130 ns miss with this
  // event's execution (measured: +17% on the 200k-process timer soup).
  if (!queue_.empty()) {
    __builtin_prefetch(queue_.peek().payload.address());
  }
  now_ = ev.t;
  ++processed_;
  ev.payload.resume();
  return true;
}

void Engine::check_failures() {
  for (auto* st : failed_) {
    if (st->error && !st->error_consumed) {
      st->error_consumed = true;
      throw UnhandledProcessError(std::string(st->name), st->error);
    }
  }
}

void Engine::run(std::uint64_t max_events) {
  while (step()) {
    if (max_events != 0 && processed_ >= max_events) break;
  }
  check_failures();
}

bool Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.peek().t <= deadline) step();
  check_failures();
  if (queue_.empty()) return true;
  now_ = deadline;
  return false;
}

}  // namespace simkit
