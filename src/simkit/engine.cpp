#include "simkit/engine.hpp"

namespace simkit {

detail::Detached Engine::drive(Task<void> body,
                               std::shared_ptr<detail::ProcState> st) {
  try {
    co_await std::move(body);
  } catch (...) {
    st->error = std::current_exception();
    failed_.push_back(st);
  }
  st->done = true;
  st->finish_time = now_;
  for (auto j : st->joiners) schedule_at(now_, j);
  st->joiners.clear();
}

ProcHandle Engine::spawn(Task<void> body, std::string name) {
  return spawn_at(now_, std::move(body), std::move(name));
}

ProcHandle Engine::spawn_at(Time t, Task<void> body, std::string name) {
  auto st = std::make_shared<detail::ProcState>();
  st->name = std::move(name);
  detail::Detached d = drive(std::move(body), st);
  schedule_at(t, d.handle);
  return ProcHandle{st};
}

bool Engine::step() {
  if (queue_.empty()) return false;
  Ev ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++processed_;
  ev.h.resume();
  return true;
}

void Engine::check_failures() {
  for (auto& st : failed_) {
    if (st->error && !st->error_consumed) {
      st->error_consumed = true;
      throw UnhandledProcessError(st->name, st->error);
    }
  }
}

void Engine::run(std::uint64_t max_events) {
  while (step()) {
    if (max_events != 0 && processed_ >= max_events) break;
  }
  check_failures();
}

bool Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) step();
  check_failures();
  if (queue_.empty()) return true;
  now_ = deadline;
  return false;
}

}  // namespace simkit
