// simkit/task.hpp — lazy coroutine task type used for all simulated
// processes and sub-operations.
//
// A Task<T> does not start executing until it is awaited (or handed to
// Engine::spawn).  Completion resumes the awaiting coroutine by symmetric
// transfer, which keeps same-instant causality: when a callee finishes at
// simulated time t, its caller continues at time t before any other event.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "simkit/framepool.hpp"

namespace simkit {

namespace detail {

// Final awaiter shared by all Task promises: transfer control back to the
// continuation if there is one, otherwise just suspend (the owner destroys
// the frame).
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <class Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }

  // Coroutine frames for every Task<T> recycle through the size-class
  // pool: a sub-task call in steady state performs no heap allocation.
  static void* operator new(std::size_t bytes) {
    return FramePool::allocate(bytes);
  }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    FramePool::deallocate(p, bytes);
  }
};

}  // namespace detail

/// Lazy, single-awaiter coroutine.  Move-only; owns its frame.
template <class T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <class U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }

  /// Awaiting a Task starts it and resumes the awaiter when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer: start the task now
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.error) std::rethrow_exception(p.error);
        return std::move(*p.value);
      }
    };
    return Awaiter{h_};
  }

  /// For the engine: release ownership of the raw handle.
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(h_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (auto& e = h.promise().error) std::rethrow_exception(e);
      }
    };
    return Awaiter{h_};
  }

  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(h_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace simkit
