// simkit/rng.hpp — deterministic pseudo-random numbers (xoshiro256**).
//
// Simulations must replay bit-identically, so all stochastic inputs
// (integral evaluation costs, disk placement jitter, ...) draw from
// explicitly seeded streams.  xoshiro256** is fast, high quality, and
// trivially splittable via long-jumpable seeding with splitmix64.
//
// Draws are batched: refill() advances the generator kBatch steps at a
// time into a buffer and next() serves from it, keeping the hot path to
// a load and an index bump.  Batching is invisible to consumers — the
// output sequence, and the child streams split() derives, are
// bit-identical to the unbatched generator (split() reconstructs the
// state at the logical consumption point before deriving).
#pragma once

#include <cstdint>

namespace simkit {

/// splitmix64 — used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;
  static constexpr int kBatch = 8;

  explicit Rng(std::uint64_t seed = 0x5EEDF00Du) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
    batch_pos_ = kBatch;  // buffer empty
  }

  /// Derive an independent stream (e.g. one per simulated rank).  Uses
  /// the state at the logical consumption point, so a split after N
  /// draws yields the same child whether or not those draws were
  /// served from a batch.
  Rng split(std::uint64_t stream_id) const {
    Rng child(logical_s0() ^ (0x9E3779B97f4A7C15ULL * (stream_id + 1)));
    return child;
  }

  std::uint64_t next() {
    if (batch_pos_ == kBatch) refill();
    return batch_[batch_pos_++];
  }

  // UniformRandomBitGenerator interface.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() { return (next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponentially distributed with the given mean (>0).
  double exponential(double mean);

  /// Normally distributed (Box–Muller, cached second variate).
  double normal(double mean, double stddev);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t step(std::uint64_t s[4]) {
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
  }

  void refill() {
    base_[0] = s_[0];
    base_[1] = s_[1];
    base_[2] = s_[2];
    base_[3] = s_[3];
    for (int i = 0; i < kBatch; ++i) batch_[i] = step(s_);
    batch_pos_ = 0;
  }

  /// s_[0] as it stood at the logical consumption point: the state at
  /// the last refill, advanced by the number of draws consumed since.
  /// With the buffer empty (fresh seed or fully drained batch) the
  /// logical point and the generator state coincide.
  std::uint64_t logical_s0() const {
    if (batch_pos_ == kBatch) return s_[0];
    std::uint64_t s[4] = {base_[0], base_[1], base_[2], base_[3]};
    for (int i = 0; i < batch_pos_; ++i) step(s);
    return s[0];
  }

  std::uint64_t s_[4] = {};     // state kBatch steps ahead of consumption
  std::uint64_t base_[4] = {};  // state at the last refill
  int batch_pos_ = kBatch;      // next unconsumed buffer slot
  std::uint64_t batch_[kBatch] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace simkit
