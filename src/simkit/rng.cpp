#include "simkit/rng.hpp"

#include <cassert>
#include <cmath>

namespace simkit {

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

}  // namespace simkit
