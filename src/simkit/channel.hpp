// simkit/channel.hpp — typed unbounded FIFO channel.
//
// The workhorse for request/reply protocols between simulated processes
// (e.g. compute node -> I/O node server queues).  send() never blocks;
// recv() suspends until an item is available.  Receivers are served FIFO.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "simkit/engine.hpp"

namespace simkit {

template <class T>
class Channel {
 public:
  explicit Channel(Engine& eng) : eng_(eng) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  std::size_t waiting_receivers() const noexcept { return recvers_.size(); }

  void send(T v) {
    if (!recvers_.empty()) {
      RecvWaiter w = recvers_.front();
      recvers_.pop_front();
      *w.slot = std::move(v);
      eng_.schedule_at(eng_.now(), w.h);
    } else {
      items_.push_back(std::move(v));
    }
  }

  auto recv() {
    struct Awaiter {
      Channel& ch;
      std::optional<T> value;
      bool await_ready() noexcept {
        // A queued item can be claimed immediately only if no earlier
        // receiver is still waiting (FIFO among receivers).
        if (!ch.items_.empty()) {
          assert(ch.recvers_.empty());
          value = std::move(ch.items_.front());
          ch.items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch.recvers_.push_back({h, &value});
      }
      T await_resume() { return std::move(*value); }
    };
    return Awaiter{*this, std::nullopt};
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

 private:
  struct RecvWaiter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
  };

  Engine& eng_;
  std::deque<T> items_;
  std::deque<RecvWaiter> recvers_;
};

}  // namespace simkit
