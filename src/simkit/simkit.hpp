// simkit/simkit.hpp — umbrella header for the discrete-event kernel.
#pragma once

#include "simkit/channel.hpp"
#include "simkit/engine.hpp"
#include "simkit/resource.hpp"
#include "simkit/rng.hpp"
#include "simkit/stats.hpp"
#include "simkit/task.hpp"
#include "simkit/time.hpp"
#include "simkit/trigger.hpp"
