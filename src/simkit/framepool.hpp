// simkit/framepool.hpp — size-class recycler for coroutine frames.
//
// Every awaited sub-task and every spawned process allocates a
// coroutine frame; in allocation-heavy simulations (per-call Resource
// holds, spawn/join churn) the malloc/free pair is the single largest
// per-event cost.  The pool keeps freed blocks on per-size-class free
// lists and hands them back to the next same-class allocation: a frame
// "allocation" becomes two pointer moves.
//
// The free lists are thread_local: each sweep-runner thread owns its
// pool, so the hot path takes no locks and parallel scenario points
// stay byte-identical to serial runs (pooling changes addresses only,
// never simulation behaviour).  Blocks released on a different thread
// than they were acquired on simply join that thread's pool — blocks
// are plain ::operator new memory, owned by no thread.
//
// Frames larger than the largest size class (rare, pathological
// coroutines) fall through to plain ::operator new/delete.
#pragma once

#include <cstddef>
#include <cstdint>

namespace simkit::detail {

class FramePool {
 public:
  static constexpr std::size_t kGranularity = 64;  // bytes per class step
  static constexpr std::size_t kClasses = 32;      // pools up to 2 KiB
  static constexpr std::size_t kMaxPerClass = 512; // retained blocks cap

  static void* allocate(std::size_t bytes);
  static void deallocate(void* p, std::size_t bytes) noexcept;

  struct Stats {
    std::uint64_t allocs = 0;      // total allocate() calls
    std::uint64_t reuses = 0;      // served from a free list
    std::uint64_t deallocs = 0;    // total deallocate() calls
    std::uint64_t retained = 0;    // currently parked on free lists
  };
  /// Stats for the calling thread's pool.
  static Stats stats() noexcept;

  /// Release every parked block on the calling thread's pool (test
  /// hygiene; happens automatically at thread exit).
  static void drain() noexcept;
};

}  // namespace simkit::detail
