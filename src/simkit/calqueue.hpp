// simkit/calqueue.hpp — calendar-queue event scheduler.
//
// A min-queue over (t, seq) implemented as a calendar queue (R. Brown,
// CACM 1988): an array of time-bucketed bins of width `w` covering a
// rotating window, giving O(1) amortized push/pop, plus a sorted
// overflow heap for events beyond the calendar horizon (far-future
// fault arming and the like).  Pop order is EXACTLY ascending (t, seq)
// — identical to a binary heap — so simulations replay bit-for-bit
// regardless of bucket geometry, width resizes, or overflow migration.
//
// Key invariants (the equivalence test in tests/simkit/calqueue_test.cpp
// drives these against a reference binary heap):
//   * idx_of(t) = floor(t * 1/w) is the only bucket-mapping expression.
//     It is monotone in t and a pure function of t, so equal-t events
//     always share a bucket and cross-bucket ties cannot exist.
//   * Every bucket is kept sorted ascending by (t, seq) past a consumed
//     head cursor; the head element is the bucket minimum.
//   * cur_idx_ (the absolute bucket index being scanned) is <= the
//     index of every live calendar event: pushes re-anchor it downward,
//     pops advance it only past buckets with no event in that window.
//   * Calendar events all have idx < limit_idx_ <= idx of every
//     overflow event, so the calendar strictly precedes the overflow
//     and the overflow is only consulted when the calendar is empty.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "simkit/time.hpp"

namespace simkit {

/// The engine's previous scheduler, kept as an A/B reference: build
/// with -DSIMKIT_HEAP_QUEUE to swap it back in (see bench/baseline/
/// README.md for the scheduler-isolated comparison procedure).  Same
/// interface and the same exact (t, seq) pop order as CalendarQueue.
template <class Payload>
class HeapQueue {
 public:
  struct Ev {
    Time t;
    std::uint64_t seq;
    Payload payload;
  };

  bool empty() const noexcept { return v_.empty(); }
  std::size_t size() const noexcept { return v_.size(); }

  void push(Time t, std::uint64_t seq, Payload payload) {
    v_.push_back(Ev{t, seq, payload});
    std::push_heap(v_.begin(), v_.end(), Cmp{});
  }
  const Ev& peek() const { return v_.front(); }
  Ev pop() {
    std::pop_heap(v_.begin(), v_.end(), Cmp{});
    Ev ev = v_.back();
    v_.pop_back();
    return ev;
  }

 private:
  struct Cmp {
    bool operator()(const Ev& a, const Ev& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  std::vector<Ev> v_;
};

template <class Payload>
class CalendarQueue {
 public:
  struct Ev {
    Time t;
    std::uint64_t seq;
    Payload payload;
  };

  CalendarQueue() { init(kMinBuckets, 1e-5); }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  double bucket_width() const noexcept { return width_; }
  std::size_t overflow_size() const noexcept { return overflow_.size(); }
  std::uint64_t resizes() const noexcept { return resizes_; }

  void push(Time t, std::uint64_t seq, Payload payload) {
    assert(!(t < 0.0) && "calendar queue requires nonnegative times");
    ++size_;
    const Ev ev{t, seq, payload};
    // Front buffer: the kFront globally smallest events live in a hot
    // sorted array (descending; minimum at the back).  An arriving
    // event smaller than the buffered maximum joins the buffer and the
    // maximum spills to the calendar, so "buffer <= everything in the
    // calendar/overflow" holds inductively and pops are L1 reads whose
    // payload (for the engine: the coroutine frame pointer) is known
    // long before the frame is needed — that address lead is what lets
    // the CPU overlap the frame fetch with queue bookkeeping.
    if (front_n_ > 0 && ev_less(ev, front_[0])) {
      if (front_n_ == kFront) {
        const Ev evicted = front_[0];
        int i = 1;
        while (i < kFront && ev_less(ev, front_[i])) {
          front_[i - 1] = front_[i];
          ++i;
        }
        front_[i - 1] = ev;
        push_backing(evicted);
      } else {
        int i = front_n_;
        while (i > 0 && ev_less(front_[i - 1], ev)) {
          front_[i] = front_[i - 1];
          --i;
        }
        front_[i] = ev;
        ++front_n_;
      }
      return;
    }
    push_backing(ev);
  }

  /// The minimum event; the reference is valid until the next push/pop.
  /// Pre: !empty().
  const Ev& peek() {
    if (front_n_ == 0) refill();
    return front_[front_n_ - 1];
  }

  /// Remove and return the minimum (t, seq) event.  Pre: !empty().
  Ev pop() {
    if (front_n_ == 0) refill();
    --size_;
    return front_[--front_n_];
  }

 private:
  void push_backing(const Ev& ev) {
    const std::uint64_t idx = idx_of(ev.t);
    if (idx >= limit_idx_) {
      overflow_push(ev);
      return;
    }
    insert_calendar(ev, idx);
    // Structural rebuilds share one event-count cooldown so a workload
    // oscillating across a size threshold (trigger fan-out: 1 <-> 129
    // live events every round) cannot thrash grow/shrink rebuilds.
    if (overload_cooldown_ > 0) {
      --overload_cooldown_;
      return;
    }
    if (cal_size_ > 2 * buckets_.size()) {
      // Target a ~1.5 load factor in one rebuild even if the cooldown
      // deferred several doublings' worth of growth.
      rebuild(std::bit_ceil(cal_size_ / 2 + 1));
      return;
    }
    // A single bucket hoarding a visible fraction of the live events
    // means the width no longer matches the event distribution (size
    // thresholds alone never catch this: a steady-state queue keeps a
    // constant population under a stale geometry).  Re-estimate unless
    // the pile is all ties, which no geometry can split.
    const Bucket& b = buckets_[idx & mask_];
    const std::size_t live = b.v.size() - b.head;
    if (live > 64 && live * 32 > cal_size_ &&
        b.v[b.head].t != b.v.back().t) {
      rebuild(buckets_.size());
    }
  }

  /// Refill the (empty) front buffer with the kFront smallest backing
  /// events.  Batching the refill amortizes the bucket walks over
  /// kFront pops, and the structural maintenance (shrink check, horizon
  /// slide) runs once per batch instead of once per event.
  /// Pre: size_ > front_n_ == 0.
  void refill() {
    assert(front_n_ == 0 && size_ > 0);
    Ev tmp[kFront];
    int m = 0;
    while (m < kFront && (cal_size_ > 0 || !overflow_.empty())) {
      locate();
      if (overload_cooldown_ > 0) --overload_cooldown_;
      if (loc_overflow_) {
        std::pop_heap(overflow_.begin(), overflow_.end(), HeapCmp{});
        tmp[m++] = overflow_.back();
        overflow_.pop_back();
        continue;
      }
      // The sorted prefix of this bucket with idx == cur_idx_ is
      // globally minimal (idx_of is monotone in t, so every other live
      // event has a larger index and hence a later time): drain the
      // whole run in one pass instead of re-locating per event.  Tied
      // grant times — a FIFO resource releasing several waiters at one
      // instant — make these runs long.
      Bucket& b = *loc_bucket_;
      do {
        tmp[m++] = b.v[b.head++];
        --cal_size_;
      } while (m < kFront && b.head < b.v.size() &&
               idx_of(b.v[b.head].t) == cur_idx_);
      if (b.head == b.v.size()) {
        b.v.clear();
        b.head = 0;
      } else if (b.head >= 64 && b.head * 2 >= b.v.size()) {
        // Compact a long-consumed prefix so a bucket holding far-future
        // stragglers does not grow without bound.
        b.v.erase(b.v.begin(),
                  b.v.begin() + static_cast<std::ptrdiff_t>(b.head));
        b.head = 0;
      }
    }
    for (int i = 0; i < m; ++i) front_[m - 1 - i] = tmp[i];
    front_n_ = m;
    if (overload_cooldown_ == 0 && peak_cal_ * 8 < buckets_.size() &&
        buckets_.size() > kMinBuckets) {
      // Shrink on the PEAK population since the last rebuild, not the
      // instantaneous one: a fan-out workload empties the calendar
      // every round, and shrinking at the trough just forces a grow at
      // the next burst.
      rebuild(std::max(kMinBuckets, std::bit_ceil(cal_size_ + 1)));
    }
    slide_horizon();
  }

  struct Bucket {
    std::vector<Ev> v;
    std::size_t head = 0;  // elements before head have been popped
    bool dirty = false;    // live range not sorted; tidy() before reading
  };
  struct HeapCmp {  // std:: heap is a max-heap; invert for min-(t, seq)
    bool operator()(const Ev& a, const Ev& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  static constexpr std::size_t kMinBuckets = 64;
  // The horizon spans this many rotations: events up to kYears windows
  // ahead still land in the calendar (sharing buckets with earlier
  // "years"; the scan's idx equality test keeps them invisible until
  // their rotation comes up).  A lookahead modestly larger than one
  // rotation — a fixed delay against a width tuned to a finer stagger —
  // would otherwise force every push through the overflow heap.
  static constexpr std::uint64_t kYears = 4;
  // Indices at or past this are "unmappable" (enormous or non-finite
  // times); such events live in the overflow heap forever and are
  // served directly from it.
  static constexpr std::uint64_t kMaxIdx = std::uint64_t{1} << 62;

  static bool ev_less(const Ev& a, const Ev& b) noexcept {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  std::uint64_t idx_of(Time t) const noexcept {
    const double x = t * inv_width_;
    return x < static_cast<double>(kMaxIdx) ? static_cast<std::uint64_t>(x)
                                            : kMaxIdx;
  }

  void init(std::size_t nbuckets, double width) {
    buckets_.assign(nbuckets, Bucket{});
    mask_ = nbuckets - 1;
    width_ = width;
    inv_width_ = 1.0 / width;
    cur_idx_ = 0;
    limit_idx_ = saturating_horizon(0);
  }

  std::uint64_t saturating_horizon(std::uint64_t anchor) const noexcept {
    const std::uint64_t span = kYears * buckets_.size();
    std::uint64_t lim = anchor + span < anchor ? kMaxIdx : anchor + span;
    if (lim > kMaxIdx) lim = kMaxIdx;
    // Never let the horizon pass an existing overflow event: the
    // overflow heap is only consulted when the calendar drains, so
    // every calendar event must order before every overflow event.
    if (!overflow_.empty()) {
      const std::uint64_t top = idx_of(overflow_.front().t);
      if (top < lim) lim = top;
    }
    return lim;
  }

  void overflow_push(const Ev& ev) {
    overflow_.push_back(ev);
    std::push_heap(overflow_.begin(), overflow_.end(), HeapCmp{});
    // The new overflow minimum may undercut the current horizon; pull
    // the horizon back so no future calendar push lands beyond it.
    const std::uint64_t top = idx_of(overflow_.front().t);
    if (top < limit_idx_) limit_idx_ = top;
  }

  void insert_calendar(const Ev& ev, std::uint64_t idx) {
    ++cal_size_;
    if (idx < cur_idx_) cur_idx_ = idx;  // re-anchor the scan position
    Bucket& b = buckets_[idx & mask_];
    // Push is append-only: out-of-order arrivals just mark the bucket
    // dirty and the pop-side scan sorts the live range on first visit
    // (tidy()).  Keeping the insert position search and memmove off
    // the push path matters — the bucket is usually cache-cold, and a
    // sorted insert touches all of it.
    if (!b.v.empty() && !ev_less(b.v.back(), ev)) b.dirty = true;
    b.v.push_back(ev);
    if (cal_size_ > peak_cal_) peak_cal_ = cal_size_;
  }

  /// Sort a bucket's live range if it has unsorted arrivals.  Buckets
  /// stay small (the crowd trigger in push() rebuilds before any bucket
  /// hoards a meaningful share of the population), so the sort is a few
  /// cache lines that the caller is about to read anyway.
  void tidy(Bucket& b) {
    if (b.dirty) {
      std::sort(b.v.begin() + static_cast<std::ptrdiff_t>(b.head), b.v.end(),
                ev_less);
      b.dirty = false;
    }
  }

  /// Advance the horizon as the scan position moves forward, migrating
  /// overflow events that now fall inside the rotation window.  A
  /// long-lived steady-state queue therefore never drains its calendar
  /// into one O(n log n) migration storm — the overflow tail trickles
  /// in as pops advance, one rotation at a time.  The horizon only
  /// ever advances here, and every migrated event has idx < the new
  /// horizon, so the calendar/overflow elementwise order is preserved
  /// (a migrated event at idx == limit could otherwise order after a
  /// later same-bucket push that was routed to the overflow).
  void slide_horizon() {
    const std::uint64_t span = kYears * buckets_.size();
    std::uint64_t end = cur_idx_ + span < cur_idx_ ? kMaxIdx : cur_idx_ + span;
    if (end > kMaxIdx) end = kMaxIdx;
    if (end <= limit_idx_) return;  // window has not advanced
    while (!overflow_.empty() && idx_of(overflow_.front().t) < end) {
      std::pop_heap(overflow_.begin(), overflow_.end(), HeapCmp{});
      const Ev ev = overflow_.back();
      overflow_.pop_back();
      insert_calendar(ev, idx_of(ev.t));
      ++churn_;
    }
    limit_idx_ = end;
    // A migration volume dwarfing the live population means the
    // geometry is routing steady-state pushes through the overflow
    // heap (lookahead past the horizon); re-estimate from the current
    // content, which by now exhibits the true spread.
    if (churn_ > 4 * (cal_size_ + 64) && overload_cooldown_ == 0) {
      rebuild(buckets_.size());
    }
  }

  /// Find the minimum event and cache its location.  Pre: size_ > 0.
  void locate() {
    while (cal_size_ == 0) {
      // Calendar drained: serve or migrate the overflow.
      assert(!overflow_.empty());
      const std::uint64_t top = idx_of(overflow_.front().t);
      if (top >= kMaxIdx) {
        loc_overflow_ = true;
        return;
      }
      // Re-anchor the calendar at the overflow's first year and pull
      // every event inside the new horizon into buckets.
      cur_idx_ = top;
      limit_idx_ = kMaxIdx;  // horizon recomputed below, post-migration
      const std::uint64_t nb = buckets_.size();
      const std::uint64_t lim = top + nb < top ? kMaxIdx : top + nb;
      while (!overflow_.empty() && idx_of(overflow_.front().t) < lim) {
        std::pop_heap(overflow_.begin(), overflow_.end(), HeapCmp{});
        Ev ev = overflow_.back();
        overflow_.pop_back();
        insert_calendar(ev, idx_of(ev.t));
      }
      limit_idx_ = saturating_horizon(top);
    }
    loc_overflow_ = false;
    // Scan at most one full rotation from the current position.
    for (std::size_t i = 0; i <= mask_; ++i) {
      Bucket& b = buckets_[cur_idx_ & mask_];
      if (b.head < b.v.size()) tidy(b);
      if (b.head < b.v.size() && idx_of(b.v[b.head].t) == cur_idx_) {
        loc_bucket_ = &b;
        sparse_rotations_ = 0;  // widen only on CONSECUTIVE overshoots
        return;
      }
      ++cur_idx_;
    }
    // Nothing due within one rotation: jump straight to the earliest
    // bucket head.  (Monotonicity of idx_of makes the minimum-index
    // head the bucket holding the global minimum event.)
    if (++sparse_rotations_ >= 4) {
      // Repeatedly overshooting a rotation means the window is far
      // narrower than the event spread; widen it and start over.
      sparse_rotations_ = 0;
      rebuild(buckets_.size(), width_ * 8.0);
      locate();
      return;
    }
    std::uint64_t best = kMaxIdx;
    for (Bucket& b : buckets_) {
      if (b.head < b.v.size()) {
        tidy(b);
        best = std::min(best, idx_of(b.v[b.head].t));
      }
    }
    assert(best < kMaxIdx);
    cur_idx_ = best;
    loc_bucket_ = &buckets_[cur_idx_ & mask_];
  }

  /// Re-bucket every calendar event into `nbuckets` bins, re-estimating
  /// the bucket width from the live population (or taking `force_width`).
  /// The overflow heap is never re-split: the new horizon is capped at
  /// the overflow minimum, so the calendar/overflow order invariant is
  /// preserved without touching a potentially large far-future tail.
  void rebuild(std::size_t nbuckets, double force_width = 0.0) {
    ++resizes_;
    overload_cooldown_ = 2 * cal_size_ + 256;
    churn_ = 0;
    peak_cal_ = cal_size_;
    std::vector<Ev> live;
    live.reserve(cal_size_);
    for (Bucket& b : buckets_) {
      live.insert(live.end(),
                  b.v.begin() + static_cast<std::ptrdiff_t>(b.head), b.v.end());
      b.v.clear();
      b.head = 0;
    }
    const double width =
        force_width > 0.0 ? force_width : estimate_width(live);
    init(nbuckets, width);
    cal_size_ = 0;
    if (live.empty()) return;
    Time min_t = live.front().t;
    for (const Ev& ev : live) min_t = std::min(min_t, ev.t);
    cur_idx_ = idx_of(min_t);
    limit_idx_ = saturating_horizon(cur_idx_);
    for (const Ev& ev : live) {
      const std::uint64_t idx = idx_of(ev.t);
      if (idx >= limit_idx_) {
        overflow_push(ev);
      } else {
        insert_calendar(ev, idx);
      }
    }
  }

  /// Brown-style width estimate from a sample of the live population.
  /// Uses the MEDIAN nonzero gap between sorted sample times, which is
  /// robust where a min/max span is not: a small far-future tail (fault
  /// arming) contributes a few huge gaps that a span estimate would let
  /// inflate the width by orders of magnitude, and a same-instant pile
  /// contributes many zero gaps that would deflate it.  `stride` live
  /// events sit between consecutive samples, so per-event spacing is
  /// gap/stride and the classic ~3-events-per-bucket operating point
  /// gives w = 3 * gap / stride.
  double estimate_width(const std::vector<Ev>& live) const {
    if (live.size() < 2) return width_;
    double s[64];
    const std::size_t stride = std::max<std::size_t>(1, live.size() / 64);
    std::size_t n = 0;
    for (std::size_t i = 0; i < live.size() && n < 64; i += stride) {
      s[n++] = live[i].t;
    }
    std::sort(s, s + n);
    double gaps[63];
    std::size_t ng = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (s[i] > s[i - 1]) gaps[ng++] = s[i] - s[i - 1];
    }
    if (ng == 0) return width_;  // all ties: geometry can't help
    std::sort(gaps, gaps + ng);
    const double w = 3.0 * gaps[ng / 2] / static_cast<double>(stride);
    return w > 0.0 && w < kTimeInfinity ? w : width_;
  }

  std::vector<Bucket> buckets_;
  std::vector<Ev> overflow_;  // min-heap by (t, seq) via HeapCmp
  std::size_t mask_ = 0;
  double width_ = 1e-5;
  double inv_width_ = 1e5;
  std::uint64_t cur_idx_ = 0;    // absolute bucket index being scanned
  std::uint64_t limit_idx_ = 0;  // events at/past this index overflow
  std::size_t cal_size_ = 0;     // live events in buckets
  std::size_t peak_cal_ = 0;     // max cal_size_ since the last rebuild
  std::size_t size_ = 0;         // live events total (incl. overflow)
  std::uint64_t resizes_ = 0;
  std::size_t overload_cooldown_ = 0;
  std::uint64_t churn_ = 0;  // overflow->calendar migrations since rebuild
  int sparse_rotations_ = 0;
  Bucket* loc_bucket_ = nullptr;  // locate() result: minimum's bucket
  bool loc_overflow_ = false;     // locate() result: serve overflow top
  static constexpr int kFront = 16;
  Ev front_[kFront];  // the kFront smallest events, sorted descending
  int front_n_ = 0;   // live entries; minimum at front_[front_n_ - 1]
};

}  // namespace simkit
