// simkit/combinators.hpp — fork/join helpers over Task<void>.
#pragma once

#include <utility>
#include <vector>

#include "simkit/engine.hpp"
#include "simkit/task.hpp"

namespace simkit {

/// Run all tasks concurrently (as spawned processes) and resume when every
/// one has completed.  If any task throws, the first failure (in spawn
/// order) is rethrown after all tasks have finished.
inline Task<void> when_all(Engine& eng, std::vector<Task<void>> tasks) {
  std::vector<ProcHandle> handles;
  handles.reserve(tasks.size());
  for (auto& t : tasks) handles.push_back(eng.spawn(std::move(t), "when_all"));
  std::exception_ptr first_error;
  for (auto& h : handles) {
    try {
      co_await h.join();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Run two tasks concurrently; resume when both are done.
inline Task<void> both(Engine& eng, Task<void> a, Task<void> b) {
  std::vector<Task<void>> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  co_await when_all(eng, std::move(v));
}

}  // namespace simkit
