// simkit/stats.hpp — running statistics used throughout the tracer and
// experiment harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace simkit {

/// Welford's online mean/variance plus min/max/sum.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  void merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
    mean_ = (na * mean_ + nb * o.mean_) / (na + nb);
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram on a log2 scale — adequate for latency and
/// request-size distributions where orders of magnitude matter.
class Log2Histogram {
 public:
  /// Buckets: [0,1), [1,2), [2,4), ... in units of `unit`.
  explicit Log2Histogram(double unit = 1.0, std::size_t buckets = 40)
      : unit_(unit), counts_(buckets, 0) {}

  void add(double x) {
    stat_.add(x);
    const double v = x / unit_;
    std::size_t b = 0;
    if (v >= 1.0) {
      b = static_cast<std::size_t>(std::ilogb(v)) + 1;
      b = std::min(b, counts_.size() - 1);
    }
    ++counts_[b];
  }

  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  const RunningStat& stat() const noexcept { return stat_; }

  /// Merge another histogram with the same unit/bucket shape.
  void merge(const Log2Histogram& o) {
    for (std::size_t b = 0; b < counts_.size() && b < o.counts_.size();
         ++b) {
      counts_[b] += o.counts_[b];
    }
    stat_.merge(o.stat_);
  }

  /// Approximate quantile from the bucket boundaries (upper bound).
  double quantile_upper_bound(double q) const {
    const std::uint64_t total = stat_.count();
    if (total == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      cum += counts_[b];
      if (cum > target) {
        return b == 0 ? unit_ : unit_ * std::ldexp(1.0, static_cast<int>(b));
      }
    }
    return stat_.max();
  }

 private:
  double unit_;
  std::vector<std::uint64_t> counts_;
  RunningStat stat_;
};

}  // namespace simkit
