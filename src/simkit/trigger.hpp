// simkit/trigger.hpp — one-shot event, the basic fan-in/fan-out primitive.
//
// Any number of coroutines may wait on a Trigger; fire() releases them all
// at the current simulated time.  A Trigger that has already fired is
// transparent (waits complete immediately).
#pragma once

#include <coroutine>
#include <vector>

#include "simkit/engine.hpp"

namespace simkit {

class Trigger {
 public:
  bool fired() const noexcept { return fired_; }

  /// Release all waiters at the current time.  Idempotent.
  void fire(Engine& eng) {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) eng.schedule_at(eng.now(), h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return t.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        t.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Countdown latch: fires once `count` arrivals have occurred.  Used for
/// fork/join over a known number of sub-operations.
class Latch {
 public:
  explicit Latch(std::size_t count) : remaining_(count) {}

  void arrive(Engine& eng) {
    if (remaining_ > 0 && --remaining_ == 0) done_.fire(eng);
  }
  auto wait() { return done_.wait(); }
  std::size_t remaining() const noexcept { return remaining_; }

 private:
  std::size_t remaining_;
  Trigger done_;
};

}  // namespace simkit
