// simkit/resource.hpp — counted resource with strict-FIFO granting.
//
// Models anything with finite concurrency or bandwidth-shared service:
// NIC injection ports, disk arms, I/O-node service slots.  Grant order is
// strictly FIFO — a large request at the head blocks later smaller ones
// (no barging), which keeps queueing behaviour fair and analyzable.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>

#include "simkit/engine.hpp"

namespace simkit {

class Resource {
 public:
  Resource(Engine& eng, std::uint64_t capacity)
      : eng_(eng), capacity_(capacity), available_(capacity) {
    assert(capacity > 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t available() const noexcept { return available_; }
  std::uint64_t in_use() const noexcept { return capacity_ - available_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }

  /// Awaitable acquisition of `n` units (n <= capacity).
  auto acquire(std::uint64_t n = 1) {
    struct Awaiter {
      Resource& r;
      std::uint64_t n;
      bool await_ready() noexcept {
        if (r.waiters_.empty() && r.available_ >= n) {
          r.available_ -= n;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        r.waiters_.push_back({h, n});
      }
      void await_resume() const noexcept {}
    };
    assert(n <= capacity_ && "request can never be satisfied");
    return Awaiter{*this, n};
  }

  /// Return `n` units and wake eligible waiters in FIFO order.
  void release(std::uint64_t n = 1) {
    available_ += n;
    assert(available_ <= capacity_ && "release without matching acquire");
    while (!waiters_.empty() && waiters_.front().n <= available_) {
      auto w = waiters_.front();
      waiters_.pop_front();
      available_ -= w.n;
      eng_.schedule_at(eng_.now(), w.h);
    }
  }

  /// acquire(n); delay(hold); release(n) — the common "serve for a
  /// duration" pattern (e.g. occupy a NIC for bytes/bandwidth seconds).
  Task<void> use_for(Duration hold, std::uint64_t n = 1) {
    co_await acquire(n);
    co_await eng_.delay(hold);
    release(n);
  }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::uint64_t n;
  };

  Engine& eng_;
  std::uint64_t capacity_;
  std::uint64_t available_;
  std::deque<Waiter> waiters_;
};

/// RAII lease over a Resource unit count.  Release happens at scope exit;
/// acquisition is explicit (co_await lease.acquire()).
class ScopedLease {
 public:
  explicit ScopedLease(Resource& r, std::uint64_t n = 1) : r_(&r), n_(n) {}
  ScopedLease(const ScopedLease&) = delete;
  ScopedLease& operator=(const ScopedLease&) = delete;
  ~ScopedLease() {
    if (held_) r_->release(n_);
  }

  auto acquire() {
    struct Awaiter {
      ScopedLease& l;
      decltype(std::declval<Resource>().acquire()) inner;
      bool await_ready() noexcept { return inner.await_ready(); }
      void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
      void await_resume() noexcept {
        inner.await_resume();
        l.held_ = true;
      }
    };
    return Awaiter{*this, r_->acquire(n_)};
  }

 private:
  Resource* r_;
  std::uint64_t n_;
  bool held_ = false;
};

}  // namespace simkit
