#include "simkit/framepool.hpp"

#include <new>

namespace simkit::detail {
namespace {

struct FreeBlock {
  FreeBlock* next;
};

struct Pool {
  FreeBlock* head[FramePool::kClasses] = {};
  std::size_t count[FramePool::kClasses] = {};
  FramePool::Stats stats;

  ~Pool() {
    for (std::size_t c = 0; c < FramePool::kClasses; ++c) {
      for (FreeBlock* b = head[c]; b != nullptr;) {
        FreeBlock* next = b->next;
        ::operator delete(b);
        b = next;
      }
      head[c] = nullptr;
    }
  }
};

thread_local Pool t_pool;

/// Size class for a byte count; kClasses means "too big, don't pool".
inline std::size_t class_of(std::size_t bytes) noexcept {
  return (bytes + FramePool::kGranularity - 1) / FramePool::kGranularity;
}

inline std::size_t class_bytes(std::size_t c) noexcept {
  return c * FramePool::kGranularity;
}

}  // namespace

void* FramePool::allocate(std::size_t bytes) {
  Pool& p = t_pool;
  ++p.stats.allocs;
  const std::size_t c = class_of(bytes);
  if (c < kClasses && p.head[c] != nullptr) {
    FreeBlock* b = p.head[c];
    p.head[c] = b->next;
    --p.count[c];
    --p.stats.retained;
    ++p.stats.reuses;
    return b;
  }
  // Round pooled allocations up to the class size so the block is
  // interchangeable with every other block of its class.
  return ::operator new(c < kClasses ? class_bytes(c) : bytes);
}

void FramePool::deallocate(void* ptr, std::size_t bytes) noexcept {
  Pool& p = t_pool;
  ++p.stats.deallocs;
  const std::size_t c = class_of(bytes);
  if (c < kClasses && p.count[c] < kMaxPerClass) {
    FreeBlock* b = static_cast<FreeBlock*>(ptr);
    b->next = p.head[c];
    p.head[c] = b;
    ++p.count[c];
    ++p.stats.retained;
    return;
  }
  ::operator delete(ptr);
}

FramePool::Stats FramePool::stats() noexcept { return t_pool.stats; }

void FramePool::drain() noexcept {
  Pool& p = t_pool;
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (FreeBlock* b = p.head[c]; b != nullptr;) {
      FreeBlock* next = b->next;
      ::operator delete(b);
      b = next;
    }
    p.head[c] = nullptr;
    p.count[c] = 0;
  }
  p.stats.retained = 0;
}

}  // namespace simkit::detail
