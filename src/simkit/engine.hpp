// simkit/engine.hpp — the discrete-event core.
//
// The Engine owns a time-ordered queue of coroutine resumptions.  All
// simulated concurrency is cooperative: exactly one coroutine runs at a
// time, and the simulated clock only advances between events.  Ties are
// broken by schedule order, so simulations are fully deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "simkit/task.hpp"
#include "simkit/time.hpp"

namespace simkit {

class Engine;

/// Thrown by Engine::run when a spawned process failed with an exception
/// that no joiner consumed.
class UnhandledProcessError : public std::runtime_error {
 public:
  UnhandledProcessError(std::string process_name, std::exception_ptr cause)
      : std::runtime_error("unhandled exception in simulated process '" +
                           process_name + "'"),
        process_name_(std::move(process_name)),
        cause_(std::move(cause)) {}
  const std::string& process_name() const noexcept { return process_name_; }
  std::exception_ptr cause() const noexcept { return cause_; }

 private:
  std::string process_name_;
  std::exception_ptr cause_;
};

namespace detail {

/// Shared completion record for a spawned process.
struct ProcState {
  std::string name;
  bool done = false;
  std::exception_ptr error;
  bool error_consumed = false;
  Time finish_time = kTimeZero;
  std::vector<std::coroutine_handle<>> joiners;
};

/// Fire-and-forget driver coroutine: starts suspended (the engine schedules
/// it), self-destroys at completion.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

}  // namespace detail

/// Handle to a spawned process; join it from any coroutine.
class ProcHandle {
 public:
  ProcHandle() = default;

  bool done() const noexcept { return st_ && st_->done; }
  bool failed() const noexcept { return st_ && st_->error != nullptr; }
  Time finish_time() const noexcept { return st_ ? st_->finish_time : 0.0; }
  const std::string& name() const { return st_->name; }

  /// Awaitable that resumes when the process completes; rethrows the
  /// process's exception in the joiner, if any.
  auto join() {
    struct Awaiter {
      detail::ProcState* st;
      bool await_ready() const noexcept { return st->done; }
      void await_suspend(std::coroutine_handle<> h) {
        st->joiners.push_back(h);
      }
      void await_resume() {
        if (st->error) {
          st->error_consumed = true;
          std::rethrow_exception(st->error);
        }
      }
    };
    return Awaiter{st_.get()};
  }

 private:
  friend class Engine;
  explicit ProcHandle(std::shared_ptr<detail::ProcState> st)
      : st_(std::move(st)) {}
  std::shared_ptr<detail::ProcState> st_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Schedule a raw coroutine resumption at absolute time t (>= now).
  void schedule_at(Time t, std::coroutine_handle<> h) {
    if (t < now_) t = now_;  // clamp: no time travel
    queue_.push(Ev{t, next_seq_++, h});
  }
  void schedule_after(Duration dt, std::coroutine_handle<> h) {
    schedule_at(now_ + dt, h);
  }

  /// Awaitable: suspend the current coroutine for dt simulated seconds.
  auto delay(Duration dt) {
    struct Awaiter {
      Engine& eng;
      Duration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng.schedule_after(dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Start a process at the current simulated time.
  ProcHandle spawn(Task<void> body, std::string name = "proc");

  /// Start a process at absolute simulated time `t` (>= now).  Used by
  /// timeline-driven machinery (e.g. fault arming) that must fire at
  /// pre-planned instants rather than relative delays.
  ProcHandle spawn_at(Time t, Task<void> body, std::string name = "proc");

  /// Run until the event queue drains (or max_events, 0 = unlimited).
  /// Throws UnhandledProcessError if a spawned process failed and nobody
  /// joined it.
  void run(std::uint64_t max_events = 0);

  /// Run until simulated time `deadline` (events at exactly `deadline`
  /// still run).  Returns true if the queue drained before the deadline.
  bool run_until(Time deadline);

  /// Process a single event; returns false if the queue is empty.
  bool step();

  bool idle() const noexcept { return queue_.empty(); }

 private:
  struct Ev {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    bool operator>(const Ev& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  detail::Detached drive(Task<void> body,
                         std::shared_ptr<detail::ProcState> st);
  void check_failures();

  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> queue_;
  std::vector<std::shared_ptr<detail::ProcState>> failed_;
};

}  // namespace simkit
