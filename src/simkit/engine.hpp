// simkit/engine.hpp — the discrete-event core.
//
// The Engine owns a time-ordered queue of coroutine resumptions.  All
// simulated concurrency is cooperative: exactly one coroutine runs at a
// time, and the simulated clock only advances between events.  Ties are
// broken by schedule order, so simulations are fully deterministic.
//
// The queue is a calendar queue (see calqueue.hpp): O(1) amortized
// schedule/pop with an exact (t, seq) total order, so swapping it in
// for the historical binary heap moved zero bytes of simulation output.
// Process completion records are pooled and intrusively refcounted,
// process names are interned pointers, and coroutine frames recycle
// through a size-class pool (see framepool.hpp) — the spawn hot path
// performs no heap allocation in steady state.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "simkit/calqueue.hpp"
#include "simkit/framepool.hpp"
#include "simkit/procname.hpp"
#include "simkit/task.hpp"
#include "simkit/time.hpp"

namespace simkit {

class Engine;

/// Thrown by Engine::run when a spawned process failed with an exception
/// that no joiner consumed.
class UnhandledProcessError : public std::runtime_error {
 public:
  UnhandledProcessError(std::string process_name, std::exception_ptr cause)
      : std::runtime_error("unhandled exception in simulated process '" +
                           process_name + "'"),
        process_name_(std::move(process_name)),
        cause_(std::move(cause)) {}
  const std::string& process_name() const noexcept { return process_name_; }
  std::exception_ptr cause() const noexcept { return cause_; }

 private:
  std::string process_name_;
  std::exception_ptr cause_;
};

namespace detail {

/// Completion record for a spawned process.  Intrusively refcounted
/// (the engine's driver coroutine holds one reference, every ProcHandle
/// another) and recycled through a thread-local pool, keeping the
/// joiners vector's capacity across reuses.  Single-threaded by
/// construction — an engine and all its handles live on one thread —
/// so the count is a plain integer.
struct ProcState {
  const char* name = "proc";
  bool done = false;
  bool error_consumed = false;
  std::uint32_t refs = 0;
  std::exception_ptr error;
  Time finish_time = kTimeZero;
  std::vector<std::coroutine_handle<>> joiners;
  ProcState* pool_next = nullptr;

  /// Pop a recycled record (or allocate one) with refs == 1.
  static ProcState* acquire(const char* name);
  void ref() noexcept { ++refs; }
  void unref() noexcept {
    if (--refs == 0) release(this);
  }

 private:
  static void release(ProcState* st) noexcept;
};

/// Fire-and-forget driver coroutine: starts suspended (the engine
/// schedules it), self-destroys at completion.  Frames recycle through
/// the pool like every other coroutine's.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
    static void* operator new(std::size_t bytes) {
      return FramePool::allocate(bytes);
    }
    static void operator delete(void* p, std::size_t bytes) noexcept {
      FramePool::deallocate(p, bytes);
    }
  };
  std::coroutine_handle<promise_type> handle;
};

}  // namespace detail

/// Handle to a spawned process; join it from any coroutine.
class ProcHandle {
 public:
  ProcHandle() = default;
  ProcHandle(const ProcHandle& o) noexcept : st_(o.st_) {
    if (st_) st_->ref();
  }
  ProcHandle(ProcHandle&& o) noexcept
      : st_(std::exchange(o.st_, nullptr)) {}
  ProcHandle& operator=(const ProcHandle& o) noexcept {
    if (this != &o) {
      if (o.st_) o.st_->ref();
      if (st_) st_->unref();
      st_ = o.st_;
    }
    return *this;
  }
  ProcHandle& operator=(ProcHandle&& o) noexcept {
    if (this != &o) {
      if (st_) st_->unref();
      st_ = std::exchange(o.st_, nullptr);
    }
    return *this;
  }
  ~ProcHandle() {
    if (st_) st_->unref();
  }

  bool done() const noexcept { return st_ && st_->done; }
  bool failed() const noexcept { return st_ && st_->error != nullptr; }
  Time finish_time() const noexcept { return st_ ? st_->finish_time : 0.0; }
  /// The process name; empty for a default-constructed handle (which
  /// historically dereferenced null).
  std::string_view name() const noexcept {
    return st_ ? std::string_view(st_->name) : std::string_view();
  }

  /// Awaitable that resumes when the process completes; rethrows the
  /// process's exception in the joiner, if any.  The awaiting coroutine
  /// keeps this handle (and so the record) alive across the wait.
  auto join() {
    struct Awaiter {
      detail::ProcState* st;
      bool await_ready() const noexcept { return st->done; }
      void await_suspend(std::coroutine_handle<> h) {
        st->joiners.push_back(h);
      }
      void await_resume() {
        if (st->error) {
          st->error_consumed = true;
          std::rethrow_exception(st->error);
        }
      }
    };
    return Awaiter{st_};
  }

 private:
  friend class Engine;
  explicit ProcHandle(detail::ProcState* st) noexcept : st_(st) {
    st_->ref();
  }
  detail::ProcState* st_ = nullptr;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  Time now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }
  /// Past-time schedules silently clamped to now (release builds only;
  /// debug builds assert instead — a past-time schedule reorders
  /// against same-instant events and always indicates a caller bug).
  std::uint64_t clamped_schedules() const noexcept { return clamped_; }

  /// Schedule a raw coroutine resumption at absolute time t (>= now).
  void schedule_at(Time t, std::coroutine_handle<> h) {
    if (t < now_) {
      assert(false && "Engine::schedule_at: past-time schedule (clamped)");
      ++clamped_;
      t = now_;  // clamp: no time travel
    }
    queue_.push(t, next_seq_++, h);
  }
  void schedule_after(Duration dt, std::coroutine_handle<> h) {
    schedule_at(now_ + dt, h);
  }

  /// Awaitable: suspend the current coroutine for dt simulated seconds.
  auto delay(Duration dt) {
    struct Awaiter {
      Engine& eng;
      Duration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng.schedule_after(dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Start a process at the current simulated time.
  ProcHandle spawn(Task<void> body, ProcName name = ProcName());

  /// Start a process at absolute simulated time `t` (>= now).  Used by
  /// timeline-driven machinery (e.g. fault arming) that must fire at
  /// pre-planned instants rather than relative delays.
  ProcHandle spawn_at(Time t, Task<void> body, ProcName name = ProcName());

  /// Run until the event queue drains (or max_events, 0 = unlimited).
  /// Throws UnhandledProcessError if a spawned process failed and nobody
  /// joined it.
  void run(std::uint64_t max_events = 0);

  /// Run until simulated time `deadline` (events at exactly `deadline`
  /// still run).  Returns true if the queue drained before the deadline.
  bool run_until(Time deadline);

  /// Process a single event; returns false if the queue is empty.
  bool step();

  bool idle() const noexcept { return queue_.empty(); }

 private:
  detail::Detached drive(Task<void> body, detail::ProcState* st);
  void check_failures();

  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t clamped_ = 0;
#ifdef SIMKIT_HEAP_QUEUE
  // A/B reference build: the pre-calendar binary-heap scheduler, for
  // scheduler-isolated benchmarking (bench/baseline/README.md).
  HeapQueue<std::coroutine_handle<>> queue_;
#else
  CalendarQueue<std::coroutine_handle<>> queue_;
#endif
  std::vector<detail::ProcState*> failed_;  // each entry holds a ref
};

}  // namespace simkit
