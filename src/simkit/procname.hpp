// simkit/procname.hpp — interned process names.
//
// Every Engine::spawn used to copy a std::string into the process's
// completion record; in spawn-heavy simulations (job streams, hedged
// reads, per-checkpoint drains) that copy sat squarely on the hot
// path.  A ProcName is a single pointer:
//
//   * Built from a string literal (the overwhelmingly common case) it
//     stores the literal's address — zero allocation, zero copy.  The
//     char* constructor REQUIRES static storage duration; pass a
//     std::string for anything computed.
//   * Built from a std::string it interns the characters in a global
//     table (mutex-guarded; names repeat, so the table stays small)
//     and stores the stable interned pointer.
#pragma once

#include <string>
#include <string_view>

namespace simkit {

class ProcName {
 public:
  constexpr ProcName() noexcept : s_("proc") {}
  /// `literal` must have static storage duration (string literals do).
  constexpr ProcName(const char* literal) noexcept : s_(literal) {}
  ProcName(const std::string& name) : s_(intern(name)) {}
  ProcName(std::string_view name) : s_(intern(name)) {}

  const char* c_str() const noexcept { return s_; }
  std::string_view view() const noexcept { return std::string_view(s_); }

  /// Copy `name` into the process-lifetime intern table and return the
  /// stable pointer.  Repeated interning of equal strings returns the
  /// same pointer.
  static const char* intern(std::string_view name);

 private:
  const char* s_;
};

}  // namespace simkit
