#include "sched/platform.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <memory>
#include <string>

#include "iosrv/config.hpp"
#include "metrics/metrics.hpp"
#include "simkit/engine.hpp"
#include "simkit/resource.hpp"

namespace sched {

const char* to_string(Coordination c) {
  switch (c) {
    case Coordination::kFreeForAll: return "free_for_all";
    case Coordination::kOrderedSlots: return "ordered_slots";
    case Coordination::kCooperative: return "cooperative";
  }
  return "?";
}

std::optional<Coordination> parse_coordination(std::string_view s) {
  if (s == "free_for_all") return Coordination::kFreeForAll;
  if (s == "ordered_slots") return Coordination::kOrderedSlots;
  if (s == "cooperative") return Coordination::kCooperative;
  return std::nullopt;
}

namespace {

/// Per-job runtime state while it is queued/running.
struct JobRt {
  Job job;
  JobOutcome out;
  std::vector<std::uint32_t> nodes;  // allocated compute-node indices
  pfs::FileId data_file = pfs::kInvalidFile;
  pfs::FileId ckpt_file = pfs::kInvalidFile;
  int step = 0;            // next step to execute
  int committed_step = 0;  // rollback target (0 = job start)
  int next_ckpt_step = 0;  // boundary at which a checkpoint is due
  int ckpt_seq = 0;        // checkpoints attempted (drives full_every)
  int epoch = 0;           // rollback epoch; stale drains must not commit
  simkit::Time ckpt_due_at = -1.0;  // first boundary the pending ckpt hit
  simkit::ProcHandle drain;         // async: previous checkpoint's drain
  bool drain_pending = false;
  /// Per-step productive (compute + step I/O) durations of the current
  /// attempt; rolled-back entries move into out.lost_work.
  std::vector<simkit::Duration> step_productive;
};

struct State {
  simkit::Engine& eng;
  hw::Machine& machine;
  pfs::StripedFs& fs;
  fault::Injector* injector;
  const PlatformOptions& opt;
  NodeAllocator alloc;
  std::vector<std::unique_ptr<JobRt>> rts = {};  // by job id
  std::deque<JobRt*> pending = {};               // arrival order
  std::vector<JobRt*> running = {};
  int unfinished = 0;
  std::unique_ptr<simkit::Resource> io_slots = {};  // kOrderedSlots only
  bool ckpt_token_busy = false;                     // kCooperative only
  pario::RetryStats retry = {};

  /// Under the ordered_drain durability policy every checkpoint write is
  /// followed by an fsync barrier before the commit is recorded, so a
  /// later server crash cannot hollow out a committed checkpoint.
  bool ordered_drain() const {
    return fs.params().server.durability.policy ==
           iosrv::DurabilityPolicy::kOrderedDrain;
  }
};

/// One fsync of the job's checkpoint file, issued from its first node
/// (the barrier drains the file's servers; repeating it per node would
/// just re-check an already clean file).
simkit::Task<void> ckpt_fsync(State& st, JobRt& rt) {
  co_await pario::resilient_fsync(st.fs,
                                  st.machine.compute_node(rt.nodes[0]),
                                  rt.ckpt_file, st.opt.retry, &st.retry);
}

simkit::Time est_finish(const State& st, const JobRt& rt) {
  return rt.out.start_time + rt.out.ideal_runtime_s * st.opt.estimate_margin;
}

void schedule(State& st);

/// One node's share of a heavy I/O phase, through the retry ladder.
simkit::Task<void> node_io(State& st, pfs::FileId file, hw::NodeId client,
                           std::uint64_t offset, std::uint64_t len,
                           bool read) {
  if (read) {
    co_await pario::resilient_pread(st.fs, client, file, offset, len, {},
                                    st.opt.retry, &st.retry);
  } else {
    co_await pario::resilient_pwrite(st.fs, client, file, offset, len, {},
                                     st.opt.retry, &st.retry);
  }
}

/// Fan `per_node` bytes out to one op per allocated node and join them
/// all (every spawned task is joined even when one fails, so no error
/// goes unconsumed); rethrows the first failure afterwards.
simkit::Task<void> fan_out(State& st, JobRt& rt, pfs::FileId file,
                           std::uint64_t base_offset, std::uint64_t per_node,
                           std::uint64_t stride, bool read) {
  std::vector<simkit::ProcHandle> hs;
  hs.reserve(rt.nodes.size());
  for (std::size_t i = 0; i < rt.nodes.size(); ++i) {
    const hw::NodeId client = st.machine.compute_node(rt.nodes[i]);
    hs.push_back(st.eng.spawn(
        node_io(st, file, client, base_offset + i * stride, per_node, read),
        "sched.io"));
  }
  std::exception_ptr err;
  for (simkit::ProcHandle& h : hs) {
    try {
      co_await h.join();
    } catch (const pfs::IoError&) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
}

/// The step's application I/O: SCF-style jobs re-read their input slice,
/// dump-style jobs append a fresh region per step.  Under kOrderedSlots
/// the whole phase passes through the platform slot pool.
simkit::Task<void> step_io(State& st, JobRt& rt) {
  const JobClass& k = rt.job.klass;
  const std::uint64_t bytes = k.io_bytes_per_node_step;
  const std::uint64_t job_step_bytes = bytes * rt.nodes.size();
  const std::uint64_t base =
      k.step_io_reads ? 0
                      : static_cast<std::uint64_t>(rt.step) * job_step_bytes;
  const bool slotted = st.io_slots != nullptr;
  if (slotted) {
    const simkit::Time t0 = st.eng.now();
    co_await st.io_slots->acquire();
    rt.out.io_slot_wait += st.eng.now() - t0;
  }
  std::exception_ptr err;
  try {
    co_await fan_out(st, rt, rt.data_file, base, bytes, bytes,
                     k.step_io_reads);
  } catch (const pfs::IoError&) {
    err = std::current_exception();
  }
  if (slotted) st.io_slots->release();
  if (err) std::rethrow_exception(err);
}

/// Background drain of an async checkpoint snapshot.  Never fails as a
/// process: I/O errors turn into a dropped checkpoint.  Commits only if
/// the job has not rolled back since the snapshot (epoch match).
simkit::Task<void> drain_body(State& st, JobRt& rt, int epoch, int ckpt_step,
                              std::uint64_t per_node) {
  const bool slotted = st.io_slots != nullptr;
  if (slotted) co_await st.io_slots->acquire();
  bool ok = true;
  try {
    co_await fan_out(st, rt, rt.ckpt_file, 0, per_node,
                     rt.job.klass.state_bytes_per_node, /*read=*/false);
    if (st.ordered_drain()) co_await ckpt_fsync(st, rt);
  } catch (const pfs::IoError&) {
    ok = false;
  }
  if (slotted) st.io_slots->release();
  if (ok && rt.epoch == epoch) {
    rt.committed_step = ckpt_step;
    rt.out.checkpoints += 1;
    rt.out.ckpt_bytes += per_node * rt.nodes.size();
  } else {
    rt.out.dropped_checkpoints += 1;
  }
  if (st.opt.coordination == Coordination::kCooperative) {
    st.ckpt_token_busy = false;
  }
}

/// Write one coordinated checkpoint (the platform token, when any, is
/// already held by the caller).  Sync: ranks block through the resilient
/// collective write.  Async: ranks block only for the staging copy; a
/// background drain does the writing and commits on completion.
simkit::Task<void> do_checkpoint(State& st, JobRt& rt) {
  const JobClass& k = rt.job.klass;
  const bool full = k.policy.data == ckpt::Policy::Data::kFull ||
                    k.policy.full_every <= 1 ||
                    rt.ckpt_seq % k.policy.full_every == 0;
  const std::uint64_t per_node =
      full ? k.state_bytes_per_node
           : std::max<std::uint64_t>(
                 1, static_cast<std::uint64_t>(
                        static_cast<double>(k.state_bytes_per_node) *
                        k.dirty_fraction));
  const int ckpt_step = rt.step;
  const simkit::Time t0 = st.eng.now();
  rt.ckpt_seq += 1;
  rt.next_ckpt_step = rt.step + k.ckpt_interval_steps;

  if (k.policy.write == ckpt::Policy::Write::kSync) {
    const bool slotted = st.io_slots != nullptr;
    if (slotted) co_await st.io_slots->acquire();
    std::exception_ptr err;
    try {
      co_await fan_out(st, rt, rt.ckpt_file, 0, per_node,
                       k.state_bytes_per_node, /*read=*/false);
      if (st.ordered_drain()) co_await ckpt_fsync(st, rt);
    } catch (const pfs::IoError&) {
      err = std::current_exception();
    }
    if (slotted) st.io_slots->release();
    rt.out.ckpt_blocked += st.eng.now() - t0;
    if (err) std::rethrow_exception(err);
    rt.committed_step = ckpt_step;
    rt.out.checkpoints += 1;
    rt.out.ckpt_bytes += per_node * rt.nodes.size();
    co_return;
  }

  // Async: at most one drain in flight per job — a second checkpoint
  // first waits out its predecessor (the bounded-staging degradation).
  if (rt.drain_pending) {
    co_await rt.drain.join();
    rt.drain_pending = false;
  }
  co_await st.machine.mem_copy(per_node);  // staging snapshot, all nodes
  rt.out.ckpt_blocked += st.eng.now() - t0;
  rt.drain = st.eng.spawn(drain_body(st, rt, rt.epoch, ckpt_step, per_node),
                          "sched.drain");
  rt.drain_pending = true;
}

/// Checkpoint boundary policy.  Returns without checkpointing when none
/// is due; under kCooperative a busy platform token defers the
/// checkpoint to the next boundary instead of blocking the job.
simkit::Task<void> maybe_checkpoint(State& st, JobRt& rt) {
  const JobClass& k = rt.job.klass;
  if (k.ckpt_interval_steps <= 0 || rt.step >= k.steps) co_return;
  if (rt.step < rt.next_ckpt_step) co_return;
  if (rt.ckpt_due_at < 0.0) rt.ckpt_due_at = st.eng.now();

  const bool cooperative =
      st.opt.coordination == Coordination::kCooperative;
  if (cooperative) {
    if (st.ckpt_token_busy) {
      rt.out.ckpt_deferrals += 1;
      co_return;  // keep computing; try again at the next boundary
    }
    st.ckpt_token_busy = true;
  }
  rt.out.ckpt_wait += st.eng.now() - rt.ckpt_due_at;
  rt.ckpt_due_at = -1.0;

  // The cooperative token is released by the sync path here, or by the
  // async drain when it finishes writing.
  const bool token_until_drain =
      cooperative && k.policy.write == ckpt::Policy::Write::kAsync;
  std::exception_ptr err;
  try {
    co_await do_checkpoint(st, rt);
  } catch (const pfs::IoError&) {
    err = std::current_exception();
  }
  if (cooperative && !token_until_drain) st.ckpt_token_busy = false;
  if (err) std::rethrow_exception(err);
}

/// Roll back after an exhausted I/O error: discard productive time since
/// the last committed checkpoint, sit out the remaining outage, and
/// re-read the checkpoint state.  The restore read may itself fail; the
/// caller's attempt loop absorbs that as another restart.
simkit::Task<void> recover(State& st, JobRt& rt) {
  rt.epoch += 1;  // in-flight drains no longer match the rollback
  for (int s = rt.committed_step; s < rt.step; ++s) {
    rt.out.lost_work += rt.step_productive[static_cast<std::size_t>(s)];
    rt.step_productive[static_cast<std::size_t>(s)] = 0.0;
  }
  rt.step = rt.committed_step;
  rt.next_ckpt_step = rt.step + rt.job.klass.ckpt_interval_steps;
  rt.ckpt_due_at = -1.0;

  const simkit::Time t0 = st.eng.now();
  if (st.injector) {
    const simkit::Time up = st.injector->all_up_by(st.eng.now());
    if (up > st.eng.now()) co_await st.eng.delay(up - st.eng.now());
  }
  std::exception_ptr err;
  try {
    if (rt.out.checkpoints > 0) {
      co_await fan_out(st, rt, rt.ckpt_file, 0,
                       rt.job.klass.state_bytes_per_node,
                       rt.job.klass.state_bytes_per_node, /*read=*/true);
    }
  } catch (const pfs::IoError&) {
    err = std::current_exception();
  }
  rt.out.recovery += st.eng.now() - t0;
  if (err) std::rethrow_exception(err);
}

void finish(State& st, JobRt& rt) {
  rt.out.finish_time = st.eng.now();
  rt.out.queue_wait = rt.out.start_time - rt.job.arrival;
  rt.out.productive = 0.0;
  for (const simkit::Duration d : rt.step_productive) rt.out.productive += d;

  if (metrics::Registry* m = metrics::current()) {
    m->counter("sched.jobs_finished").inc();
    if (rt.out.completed) m->counter("sched.jobs_completed").inc();
    m->counter("sched.checkpoints").inc(
        static_cast<std::uint64_t>(rt.out.checkpoints));
    m->counter("sched.dropped_checkpoints")
        .inc(static_cast<std::uint64_t>(rt.out.dropped_checkpoints));
    m->counter("sched.restarts").inc(
        static_cast<std::uint64_t>(rt.out.restarts));
    m->counter("sched.ckpt_deferrals")
        .inc(static_cast<std::uint64_t>(rt.out.ckpt_deferrals));
    m->histogram("sched.job.stretch", 1e-2).observe(rt.out.stretch());
    m->histogram("sched.job.slowdown", 1e-2).observe(rt.out.slowdown());
    m->histogram("sched.job.queue_wait_s").observe(rt.out.queue_wait);
    m->histogram("sched.job.ckpt_wait_s").observe(rt.out.ckpt_wait);
    m->histogram("sched.job.ckpt_blocked_s").observe(rt.out.ckpt_blocked);
  }

  st.alloc.release(rt.nodes);
  st.running.erase(std::find(st.running.begin(), st.running.end(), &rt));
  st.unfinished -= 1;
  schedule(st);
}

simkit::Task<void> job_body(State& st, JobRt& rt) {
  const JobClass& k = rt.job.klass;
  rt.out.start_time = st.eng.now();
  rt.data_file =
      st.fs.create("job" + std::to_string(rt.job.id) + "." + k.name);
  rt.ckpt_file =
      st.fs.create("job" + std::to_string(rt.job.id) + ".ckpt");
  rt.next_ckpt_step = k.ckpt_interval_steps;
  rt.step_productive.assign(static_cast<std::size_t>(k.steps), 0.0);

  bool need_recover = false;
  for (;;) {
    try {
      if (need_recover) {
        need_recover = false;
        co_await recover(st, rt);
      }
      while (rt.step < k.steps) {
        const simkit::Time step_t0 = st.eng.now();
        co_await st.machine.compute(k.flops_per_node_step);
        co_await step_io(st, rt);
        rt.step_productive[static_cast<std::size_t>(rt.step)] =
            st.eng.now() - step_t0;
        rt.step += 1;
        co_await maybe_checkpoint(st, rt);
      }
      if (rt.drain_pending) {
        co_await rt.drain.join();  // drains consume their own I/O errors
        rt.drain_pending = false;
      }
      rt.out.completed = true;
      break;
    } catch (const pfs::IoError&) {
      rt.out.restarts += 1;
      if (rt.out.restarts > st.opt.max_restarts) break;
      need_recover = true;
    }
  }
  finish(st, rt);
}

void schedule(State& st) {
  if (st.pending.empty()) return;
  std::vector<PendingView> pending;
  pending.reserve(st.pending.size());
  for (const JobRt* rt : st.pending) {
    pending.push_back({rt->job.id, rt->job.klass.nodes,
                       rt->job.klass.priority, rt->job.arrival,
                       rt->out.ideal_runtime_s * st.opt.estimate_margin});
  }
  std::vector<RunningView> running;
  running.reserve(st.running.size());
  for (const JobRt* rt : st.running) {
    running.push_back({rt->job.klass.nodes, est_finish(st, *rt)});
  }
  std::vector<std::size_t> sel =
      select_jobs(st.opt.discipline, pending, st.alloc.free_count(),
                  st.eng.now(), std::move(running));
  if (sel.empty()) return;

  for (const std::size_t i : sel) {
    JobRt* rt = st.pending[i];
    rt->nodes = st.alloc.allocate(static_cast<std::size_t>(
        rt->job.klass.nodes));
    st.running.push_back(rt);
    st.eng.spawn(job_body(st, *rt),
                 "sched.job" + std::to_string(rt->job.id));
  }
  // Remove the started jobs from the queue, highest index first.
  std::sort(sel.begin(), sel.end());
  for (std::size_t j = sel.size(); j-- > 0;) {
    st.pending.erase(st.pending.begin() +
                     static_cast<std::ptrdiff_t>(sel[j]));
  }
}

simkit::Task<void> submitter(State& st) {
  for (const std::unique_ptr<JobRt>& rt : st.rts) {
    if (rt->job.arrival > st.eng.now()) {
      co_await st.eng.delay(rt->job.arrival - st.eng.now());
    }
    st.pending.push_back(rt.get());
    schedule(st);
  }
}

}  // namespace

PlatformReport run(hw::Machine& machine, pfs::StripedFs& fs,
                   fault::Injector* injector, std::vector<Job> jobs,
                   const PlatformOptions& opt) {
  assert(std::is_sorted(jobs.begin(), jobs.end(),
                        [](const Job& a, const Job& b) {
                          return a.arrival < b.arrival;
                        }));
  simkit::Engine& eng = machine.engine();
  State st{eng,      machine, fs, injector, opt,
           NodeAllocator(machine.config().compute_nodes)};
  st.rts.reserve(jobs.size());
  for (Job& j : jobs) {
    auto rt = std::make_unique<JobRt>();
    rt->out.ideal_runtime_s = estimate_runtime_s(j.klass, machine.config());
    rt->job = std::move(j);
    rt->out.job = rt->job;
    st.rts.push_back(std::move(rt));
  }
  st.unfinished = static_cast<int>(st.rts.size());
  if (opt.retry.health && injector &&
      machine.config().io.server.durability.crash_semantics) {
    // Crash/recovery edges feed the caller's health tracker directly:
    // hedged reads learn a node died without observing a failed request,
    // and steer clear of freshly rebooted (cold-cache) servers.  Gated
    // on crash_semantics: without it a reboot leaves the cache warm, so
    // there is no cold window for routing to avoid.  The listeners
    // reference this run's engine and tracker — the injector must not
    // be re-armed for another run (no caller does).
    pario::HealthTracker* h = opt.retry.health;
    simkit::Engine* e = &eng;
    injector->on_node_crash(
        [h, e](std::size_t n, bool) { h->note_crash(n, e->now()); });
    injector->on_node_recovery(
        [h, e](std::size_t n) { h->note_recovery(n, e->now()); });
  }
  if (opt.coordination == Coordination::kOrderedSlots) {
    st.io_slots = std::make_unique<simkit::Resource>(
        eng, static_cast<std::uint64_t>(std::max(1, opt.io_slots)));
  }

  if (st.unfinished > 0) {
    eng.spawn(submitter(st), "sched.submitter");
    // Step, don't run: a full drain would also consume every fault edge
    // scheduled past the last job and fling the clock to the plan horizon.
    while (st.unfinished > 0 && eng.step()) {
    }
  }

  PlatformReport rep;
  rep.jobs.reserve(st.rts.size());
  double stretch_sum = 0.0, slowdown_sum = 0.0, qwait_sum = 0.0,
         cwait_sum = 0.0;
  std::vector<double> stretches;
  for (const std::unique_ptr<JobRt>& rt : st.rts) {
    const JobOutcome& o = rt->out;
    const double nodes = static_cast<double>(rt->job.klass.nodes);
    rep.makespan = std::max(rep.makespan, o.finish_time);
    rep.held_node_s += nodes * (o.finish_time - o.start_time);
    rep.productive_node_s += nodes * o.productive;
    rep.compute_node_s +=
        nodes * static_cast<double>(rt->job.klass.steps) *
        machine.compute_time(rt->job.klass.flops_per_node_step);
    if (o.completed) {
      rep.completed_jobs += 1;
      stretch_sum += o.stretch();
      slowdown_sum += o.slowdown();
      qwait_sum += o.queue_wait;
      cwait_sum += o.ckpt_wait;
      stretches.push_back(o.stretch());
    }
    rep.total_ckpt_blocked += o.ckpt_blocked;
    rep.total_lost_work += o.lost_work;
    rep.total_recovery += o.recovery;
    rep.total_ckpt_bytes += o.ckpt_bytes;
    rep.total_restarts += o.restarts;
    rep.total_deferrals += o.ckpt_deferrals;
    rep.total_dropped += o.dropped_checkpoints;
    rep.jobs.push_back(o);
  }
  rep.wasted_node_s = rep.held_node_s - rep.productive_node_s;
  const double cap =
      static_cast<double>(machine.config().compute_nodes) * rep.makespan;
  rep.utilization = cap > 0.0 ? rep.productive_node_s / cap : 0.0;
  if (rep.completed_jobs > 0) {
    const double n = rep.completed_jobs;
    rep.mean_stretch = stretch_sum / n;
    rep.mean_slowdown = slowdown_sum / n;
    rep.mean_queue_wait_s = qwait_sum / n;
    rep.mean_ckpt_wait_s = cwait_sum / n;
    std::sort(stretches.begin(), stretches.end());
    rep.p95_stretch =
        stretches[static_cast<std::size_t>(0.95 * (stretches.size() - 1))];
  }
  rep.retry = st.retry;
  for (std::size_t i = 0; i < fs.io_node_count(); ++i) {
    const pfs::IoNode& n = fs.io_node(i);
    rep.cache_hits += n.cache().hits();
    rep.cache_misses += n.cache().misses();
    rep.cache_evictions += n.cache().evictions();
    rep.disk_reads += n.disk_reads();
    rep.disk_writes += n.disk_writes();
    rep.readahead_issued += n.readahead_issued();
    rep.readahead_hits += n.readahead_hits() + n.readahead_late_hits();
    rep.readahead_waste += n.readahead_waste();
    rep.lost_dirty_blocks += n.lost_dirty_blocks();
    rep.lost_bytes += n.lost_bytes();
    rep.readahead_cancelled += n.readahead_cancelled();
    rep.cache_invalidations += n.cache_invalidations();
    rep.journal_appends += n.journal_appends();
    rep.journal_replayed += n.journal_replayed();
    rep.durability_wait_s += n.durability_wait();
  }
  if (metrics::Registry* m = metrics::current()) {
    m->gauge("sched.utilization").set(rep.utilization);
    m->gauge("sched.wasted_node_s").set(rep.wasted_node_s);
    m->gauge("sched.makespan_s").set(rep.makespan);
  }
  return rep;
}

}  // namespace sched
