#include "sched/job.hpp"

#include <algorithm>
#include <cmath>

#include "apps/ast.hpp"
#include "apps/btio.hpp"
#include "apps/fft_app.hpp"
#include "apps/scf.hpp"
#include "apps/scf3.hpp"
#include "ckpt/workloads.hpp"

namespace sched {

namespace {

/// Volume floor: a scaled job still issues at least one stripe unit per
/// node per step, so every job exercises the shared file system.
constexpr std::uint64_t kMinIoBytes = 64 * 1024;

std::uint64_t scaled(std::uint64_t bytes, double scale) {
  const double v = static_cast<double>(bytes) * scale;
  return std::max<std::uint64_t>(kMinIoBytes, static_cast<std::uint64_t>(v));
}

/// Fill the fields common to every class from a ckpt::Workload profile.
void from_workload(JobClass& c, const ckpt::Workload& w, double scale) {
  c.nodes = w.nprocs;
  c.steps = w.steps;
  c.flops_per_node_step = w.flops_per_rank_step * scale;
  c.io_bytes_per_node_step = scaled(w.io_bytes_per_rank_step, scale);
  c.step_io_reads = w.io == ckpt::StepIo::kPrivateRead;
  c.state_bytes_per_node = w.state_bytes_per_rank;
  c.dirty_fraction = w.dirty_fraction_per_step;
}

}  // namespace

const char* to_string(AppKind k) {
  switch (k) {
    case AppKind::kScf: return "scf";
    case AppKind::kScf3: return "scf3";
    case AppKind::kBtio: return "btio";
    case AppKind::kFft: return "fft";
    case AppKind::kAst: return "ast";
  }
  return "?";
}

const char* to_string(SizeClass s) {
  switch (s) {
    case SizeClass::kSmall: return "small";
    case SizeClass::kMedium: return "medium";
    case SizeClass::kLarge: return "large";
  }
  return "?";
}

JobClass JobClass::make(AppKind app, SizeClass size, double scale) {
  const int s = static_cast<int>(size);  // 0 small, 1 medium, 2 large
  JobClass c;
  c.app = app;
  c.size = size;
  c.name = std::string(to_string(app)) + "/" + to_string(size);
  // Small jobs are the interactive tier; large batch jobs yield to them
  // under the priority discipline.
  c.priority = 2 - s;

  switch (app) {
    case AppKind::kScf: {
      // SCF 1.1: every iteration re-reads the whole integral file.
      apps::ScfConfig cfg;
      cfg.nprocs = 2 << s;  // 2 / 4 / 8
      cfg.n_basis = s == 0 ? 108 : s == 1 ? 140 : 285;  // paper Figure 1
      cfg.iterations = 5 + 2 * s;
      from_workload(c, ckpt::scf11_workload(cfg), scale);
      break;
    }
    case AppKind::kScf3: {
      // SCF 3.0: each iteration re-reads the disk-cached integral share
      // and recomputes the (cheap) rest.
      apps::Scf30Config cfg;
      cfg.nprocs = 2 << s;
      cfg.n_basis = s == 0 ? 108 : s == 1 ? 140 : 285;
      const double frac = cfg.cached_percent / 100.0;
      const std::uint64_t per_node =
          cfg.total_integrals() / static_cast<std::uint64_t>(cfg.nprocs);
      const double n = static_cast<double>(per_node);
      c.nodes = cfg.nprocs;
      c.steps = 4 + 2 * s;
      c.flops_per_node_step =
          (n * (1.0 - frac) * cfg.mean_flops_cheapest(1.0 - frac) +
           n * cfg.fock_flops_per_integral) *
          scale;
      c.io_bytes_per_node_step = scaled(
          static_cast<std::uint64_t>(n * frac) * cfg.bytes_per_integral,
          scale);
      c.step_io_reads = true;
      c.state_bytes_per_node = 2ULL *
                               static_cast<std::uint64_t>(cfg.n_basis) *
                               static_cast<std::uint64_t>(cfg.n_basis) * 8ULL;
      c.dirty_fraction = 0.05;  // same near-convergence band as SCF 1.1
      break;
    }
    case AppKind::kBtio: {
      apps::BtioConfig cfg;
      cfg.nprocs = s == 0 ? 4 : s == 1 ? 9 : 16;  // perfect squares
      cfg.problem_class = s == 2 ? 'B' : 'A';
      cfg.dumps = 4 + 2 * s;
      from_workload(c, ckpt::btio_workload(cfg), scale);
      break;
    }
    case AppKind::kFft: {
      // Out-of-core 2D FFT: each pass streams the whole array through
      // memory (read strips, FFT, write strips); the transpose between
      // passes is the I/O-bound phase the paper optimizes.
      apps::FftConfig cfg;
      cfg.n = 512ULL << s;  // 512 / 1024 / 2048
      cfg.nprocs = 2 << s;
      const std::uint64_t slab =
          cfg.array_bytes() / static_cast<std::uint64_t>(cfg.nprocs);
      const double n2 = static_cast<double>(cfg.n) * static_cast<double>(cfg.n);
      c.nodes = cfg.nprocs;
      c.steps = 4;  // column pass, transpose out, row pass, result dump
      c.flops_per_node_step = 2.5 * n2 *
                              std::log2(static_cast<double>(cfg.n)) /
                              cfg.nprocs * scale;
      c.io_bytes_per_node_step = scaled(slab, scale);
      c.step_io_reads = false;
      c.state_bytes_per_node = slab;
      c.dirty_fraction = 1.0;  // every pass rewrites the whole slab
      break;
    }
    case AppKind::kAst: {
      // AST: hydrodynamics steps punctuated by multi-array dump points.
      apps::AstConfig cfg;
      cfg.grid = 512ULL << s;
      cfg.nprocs = 4 << s;  // 4 / 8 / 16
      cfg.dumps = 4 + 2 * s;
      const double cells = static_cast<double>(cfg.grid) *
                           static_cast<double>(cfg.grid) / cfg.nprocs;
      c.nodes = cfg.nprocs;
      c.steps = cfg.dumps;
      c.flops_per_node_step =
          cells * cfg.flops_per_cell_step * cfg.steps_per_dump * scale;
      c.io_bytes_per_node_step = scaled(
          static_cast<std::uint64_t>(cells * 8.0) *
              static_cast<std::uint64_t>(cfg.arrays_per_dump),
          scale);
      c.step_io_reads = false;
      c.state_bytes_per_node = static_cast<std::uint64_t>(cells * 8.0);
      c.dirty_fraction = 1.0;
      break;
    }
  }
  return c;
}

double estimate_runtime_s(const JobClass& k, const hw::MachineConfig& mc) {
  const double compute_s =
      k.steps * k.flops_per_node_step / (mc.cpu_mflops * 1e6);
  // Aggregate media bandwidth of the shared I/O partition — the best any
  // job can see, so the estimate is an (optimistic) lower bound.
  const double agg_bw = static_cast<double>(mc.io_nodes) *
                        mc.io.disks_per_io_node * mc.disk.transfer_mb_per_s *
                        1e6;
  const double step_bytes = static_cast<double>(k.io_bytes_per_node_step) *
                            k.nodes * k.steps;
  const int ckpts =
      k.ckpt_interval_steps > 0 ? (k.steps - 1) / k.ckpt_interval_steps : 0;
  const double ckpt_bytes =
      static_cast<double>(k.state_bytes_per_node) * k.nodes * ckpts;
  return compute_s + (step_bytes + ckpt_bytes) / agg_bw;
}

}  // namespace sched
