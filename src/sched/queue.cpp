#include "sched/queue.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace sched {

const char* to_string(Discipline d) {
  switch (d) {
    case Discipline::kFcfs: return "fcfs";
    case Discipline::kPriority: return "priority";
    case Discipline::kBackfill: return "backfill";
  }
  return "?";
}

std::optional<Discipline> parse_discipline(std::string_view s) {
  if (s == "fcfs") return Discipline::kFcfs;
  if (s == "priority") return Discipline::kPriority;
  if (s == "backfill") return Discipline::kBackfill;
  return std::nullopt;
}

namespace {

/// Greedy in-order scan: start jobs while they fit; the first job that
/// does not fit blocks everything behind it.
std::vector<std::size_t> head_blocking(const std::vector<std::size_t>& order,
                                       const std::vector<PendingView>& pending,
                                       std::size_t free_nodes) {
  std::vector<std::size_t> start;
  for (const std::size_t i : order) {
    const auto need = static_cast<std::size_t>(pending[i].nodes);
    if (need > free_nodes) break;
    free_nodes -= need;
    start.push_back(i);
  }
  return start;
}

/// EASY backfill: FCFS until the head blocks, then give the head a
/// reservation (the "shadow time" when enough running jobs will have
/// finished) and let later jobs start iff they fit now and either finish
/// by the shadow time or use only nodes the reservation leaves spare.
std::vector<std::size_t> easy_backfill(const std::vector<PendingView>& pending,
                                       std::size_t free_nodes,
                                       simkit::Time now,
                                       std::vector<RunningView>& running) {
  std::vector<std::size_t> start;
  std::size_t head = 0;
  for (; head < pending.size(); ++head) {
    const auto need = static_cast<std::size_t>(pending[head].nodes);
    if (need > free_nodes) break;
    free_nodes -= need;
    // The job we start counts as running for the shadow computation.
    running.push_back({pending[head].nodes,
                       now + pending[head].est_runtime_s});
    start.push_back(head);
  }
  if (head >= pending.size()) return start;  // nothing blocked

  // Reservation for the blocked head: walk running jobs by estimated
  // finish until enough nodes accumulate.
  std::sort(running.begin(), running.end(),
            [](const RunningView& a, const RunningView& b) {
              return a.est_finish < b.est_finish;
            });
  const auto head_need = static_cast<std::size_t>(pending[head].nodes);
  std::size_t avail = free_nodes;
  simkit::Time shadow = now;
  for (const RunningView& r : running) {
    if (avail >= head_need) break;
    avail += static_cast<std::size_t>(r.nodes);
    shadow = r.est_finish;
  }
  if (avail < head_need) {
    // The head can never run (larger than the machine as currently
    // running) — treat as unreservable, no backfill past it.
    return start;
  }
  // Nodes the head's reservation leaves spare at the shadow time.
  std::size_t extra = avail - head_need;

  for (std::size_t i = head + 1; i < pending.size(); ++i) {
    const auto need = static_cast<std::size_t>(pending[i].nodes);
    if (need > free_nodes) continue;
    const bool ends_by_shadow = now + pending[i].est_runtime_s <= shadow;
    const bool fits_spare = need <= extra;
    if (!ends_by_shadow && !fits_spare) continue;
    if (!ends_by_shadow) extra -= need;
    free_nodes -= need;
    start.push_back(i);
  }
  return start;
}

}  // namespace

std::vector<std::size_t> select_jobs(Discipline d,
                                     const std::vector<PendingView>& pending,
                                     std::size_t free_nodes,
                                     simkit::Time now,
                                     std::vector<RunningView> running) {
  std::vector<std::size_t> order(pending.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (d) {
    case Discipline::kFcfs:
      return head_blocking(order, pending, free_nodes);
    case Discipline::kPriority:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         if (pending[a].priority != pending[b].priority) {
                           return pending[a].priority > pending[b].priority;
                         }
                         if (pending[a].arrival != pending[b].arrival) {
                           return pending[a].arrival < pending[b].arrival;
                         }
                         return pending[a].id < pending[b].id;
                       });
      return head_blocking(order, pending, free_nodes);
    case Discipline::kBackfill:
      return easy_backfill(pending, free_nodes, now, running);
  }
  return {};
}

std::vector<std::uint32_t> NodeAllocator::allocate(std::size_t n) {
  if (n > free_count()) {
    throw std::logic_error("NodeAllocator: allocate beyond free nodes");
  }
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < used_.size() && out.size() < n; ++i) {
    if (!used_[i]) {
      used_[i] = true;
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
  in_use_ += n;
  return out;
}

void NodeAllocator::release(const std::vector<std::uint32_t>& nodes) {
  for (const std::uint32_t i : nodes) {
    assert(used_.at(i));
    used_[i] = false;
  }
  in_use_ -= nodes.size();
}

}  // namespace sched
