#include "sched/arrival.hpp"

#include <cmath>
#include <stdexcept>

#include "simkit/rng.hpp"

namespace sched {

JobMix standard_mix(double scale) {
  JobMix mix;
  const AppKind apps[] = {AppKind::kScf, AppKind::kScf3, AppKind::kBtio,
                          AppKind::kFft, AppKind::kAst};
  const SizeClass sizes[] = {SizeClass::kSmall, SizeClass::kMedium,
                             SizeClass::kLarge};
  const double size_weight[] = {0.50, 0.35, 0.15};
  for (const AppKind a : apps) {
    for (int s = 0; s < 3; ++s) {
      mix.classes.push_back(JobClass::make(a, sizes[s], scale));
      mix.weights.push_back(size_weight[s]);
    }
  }
  return mix;
}

namespace {

/// Is simulated time `t` inside a burst window?
bool in_burst(const ArrivalConfig& cfg, simkit::Time t) {
  if (cfg.burst_period_s <= 0.0 || cfg.burst_len_s <= 0.0) return false;
  return std::fmod(t, cfg.burst_period_s) < cfg.burst_len_s;
}

}  // namespace

std::vector<Job> generate(const ArrivalConfig& cfg, const JobMix& mix,
                          std::uint64_t seed) {
  if (cfg.mean_interarrival_s <= 0.0) {
    throw std::invalid_argument("arrival: mean_interarrival_s must be > 0");
  }
  if (mix.classes.empty() || mix.classes.size() != mix.weights.size()) {
    throw std::invalid_argument("arrival: mix needs one weight per class");
  }
  if (cfg.horizon <= 0.0 && cfg.max_jobs <= 0) {
    throw std::invalid_argument("arrival: set horizon and/or max_jobs");
  }
  if (cfg.burst_period_s > 0.0 &&
      (cfg.burst_len_s <= 0.0 || cfg.burst_len_s > cfg.burst_period_s ||
       cfg.burst_rate_multiplier < 1.0)) {
    throw std::invalid_argument("arrival: bad burst window");
  }
  double total_weight = 0.0;
  for (const double w : mix.weights) {
    if (w < 0.0) throw std::invalid_argument("arrival: negative weight");
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument("arrival: all-zero weights");
  }

  simkit::Rng rng(seed);
  std::vector<Job> jobs;
  simkit::Time t = 0.0;
  while (cfg.max_jobs <= 0 ||
         jobs.size() < static_cast<std::size_t>(cfg.max_jobs)) {
    // Draw 1/3: the inter-arrival gap, shortened inside a burst window.
    // The window test uses the time the gap starts from, so the stream
    // is a pure left-to-right scan — no thinning, no rejected draws.
    const double mean = in_burst(cfg, t)
                            ? cfg.mean_interarrival_s /
                                  cfg.burst_rate_multiplier
                            : cfg.mean_interarrival_s;
    t += rng.exponential(mean);
    if (cfg.horizon > 0.0 && t >= cfg.horizon) break;

    // Draw 2/3: the class, by cumulative weight.
    const double pick = rng.uniform() * total_weight;
    std::size_t ci = 0;
    double acc = 0.0;
    for (; ci + 1 < mix.classes.size(); ++ci) {
      acc += mix.weights[ci];
      if (pick < acc) break;
    }

    Job j;
    j.id = static_cast<int>(jobs.size());
    j.klass = mix.classes[ci];
    j.arrival = t;
    j.seed = rng.next();  // draw 3/3: the job's private stream
    jobs.push_back(std::move(j));
  }
  return jobs;
}

}  // namespace sched
