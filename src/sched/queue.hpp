// sched/queue.hpp — node allocation and pluggable queue disciplines.
//
// The scheduler's decision problem is kept as a pure function: given the
// pending queue (arrival order), the free-node count, and the running
// jobs' estimated finish times, which pending jobs start *now*?  Keeping
// it side-effect-free makes every discipline unit-testable and keeps the
// platform simulation deterministic — the decision depends only on
// simulated state, never on host state.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "simkit/time.hpp"

namespace sched {

enum class Discipline : std::uint8_t {
  kFcfs,      // strict arrival order; the head blocks the queue
  kPriority,  // highest priority first (ties by arrival); head blocks
  kBackfill,  // EASY: FCFS head holds a reservation, later jobs may jump
              // ahead iff they cannot delay it (by runtime estimate)
};

const char* to_string(Discipline d);
std::optional<Discipline> parse_discipline(std::string_view s);

/// What a discipline sees of a pending job.
struct PendingView {
  int id = 0;
  int nodes = 1;
  int priority = 0;
  simkit::Time arrival = 0.0;
  double est_runtime_s = 0.0;  // contention-free estimate
};

/// What a discipline sees of a running job.
struct RunningView {
  int nodes = 1;
  simkit::Time est_finish = 0.0;
};

/// Decide which pending jobs (indices into `pending`, which is in
/// arrival order) start now, in start order.  `free_nodes` is the
/// currently unallocated node count.
std::vector<std::size_t> select_jobs(Discipline d,
                                     const std::vector<PendingView>& pending,
                                     std::size_t free_nodes,
                                     simkit::Time now,
                                     std::vector<RunningView> running);

/// Lowest-index-first allocator over the compute partition.  Jobs get
/// concrete node indices (their PFS client identities), so which clients
/// contend at which I/O nodes is reproducible.
class NodeAllocator {
 public:
  explicit NodeAllocator(std::size_t total) : used_(total, false) {}

  std::size_t total() const noexcept { return used_.size(); }
  std::size_t free_count() const noexcept { return used_.size() - in_use_; }

  /// Take the `n` lowest free node indices (requires n <= free_count()).
  std::vector<std::uint32_t> allocate(std::size_t n);
  void release(const std::vector<std::uint32_t>& nodes);

 private:
  std::vector<bool> used_;
  std::size_t in_use_ = 0;
};

}  // namespace sched
