// sched/platform.hpp — run a multi-tenant job stream on one machine.
//
// This is the platform-economics layer the ROADMAP's "heavy traffic"
// north star asks for: a queue of JobClass instances contending for a
// finite compute partition and ONE shared pfs::StripedFs.  Each running
// job is a restartable, preemptible unit — steps of (compute + step I/O)
// with coordinated checkpoints under its class's ckpt::Policy, rollback
// to the last committed checkpoint when an injected fault defeats the
// retry ladder, and re-execution of the lost steps.
//
// The experiment the layer exists for is platform-level I/O
// coordination, in the spirit of Herault et al.'s cooperative
// checkpointing for shared HPC platforms:
//   - kFreeForAll:   every job hits the PFS whenever it likes; bursts of
//                    simultaneous checkpoints grind everyone down.
//   - kOrderedSlots: heavy I/O phases (step dumps AND checkpoints) pass
//                    through a small FIFO slot pool, so the disk system
//                    always sees a few streaming clients, never a mob.
//   - kCooperative:  checkpoints specifically are platform-scheduled —
//                    at most one job checkpoints at a time, and a job
//                    whose slot is taken KEEPS COMPUTING and checkpoints
//                    at its next step boundary (deferral, not blocking).
// The headline metric is platform waste: node-seconds held by jobs while
// not making forward progress (checkpoint stalls, slot waits, rolled-back
// work, recovery).  Queue wait costs users, waste costs the platform.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/injector.hpp"
#include "hw/machine.hpp"
#include "pario/resilient.hpp"
#include "pfs/fs.hpp"
#include "sched/job.hpp"
#include "sched/queue.hpp"
#include "simkit/time.hpp"

namespace sched {

enum class Coordination : std::uint8_t {
  kFreeForAll,
  kOrderedSlots,
  kCooperative,
};

const char* to_string(Coordination c);
std::optional<Coordination> parse_coordination(std::string_view s);

struct PlatformOptions {
  Discipline discipline = Discipline::kFcfs;
  Coordination coordination = Coordination::kFreeForAll;
  /// Concurrent heavy-I/O phases platform-wide under kOrderedSlots.
  int io_slots = 2;
  /// Retry/backoff policy for all job I/O (step, checkpoint, restore).
  pario::RetryPolicy retry;
  /// A job whose restarts exceed this gives up (completed=false).
  int max_restarts = 16;
  /// Backfill reservations use estimate_runtime_s times this margin
  /// (real schedulers' user estimates are padded, too).
  double estimate_margin = 1.5;
};

/// Everything measured about one job's life on the platform.
struct JobOutcome {
  Job job;
  simkit::Time start_time = 0.0;   // allocation instant
  simkit::Time finish_time = 0.0;
  double ideal_runtime_s = 0.0;    // contention-free estimate (denominator)
  simkit::Duration queue_wait = 0.0;
  simkit::Duration productive = 0.0;    // step time that survived rollbacks
  simkit::Duration ckpt_blocked = 0.0;  // stalls inside checkpointing
  simkit::Duration ckpt_wait = 0.0;     // cooperative deferral span
  simkit::Duration io_slot_wait = 0.0;  // ordered-slot queueing
  simkit::Duration lost_work = 0.0;     // productive time discarded
  simkit::Duration recovery = 0.0;      // outage wait + restore reads
  std::uint64_t ckpt_bytes = 0;
  int checkpoints = 0;          // committed (full + delta)
  int dropped_checkpoints = 0;  // async drains that failed or went stale
  int ckpt_deferrals = 0;       // cooperative boundary skips
  int restarts = 0;
  bool completed = false;

  /// Turnaround over ideal runtime — the user-facing inflation factor.
  double stretch() const {
    return ideal_runtime_s > 0.0
               ? (finish_time - job.arrival) / ideal_runtime_s
               : 0.0;
  }
  /// Execution over ideal runtime — inflation excluding queue wait.
  double slowdown() const {
    return ideal_runtime_s > 0.0
               ? (finish_time - start_time) / ideal_runtime_s
               : 0.0;
  }
};

struct PlatformReport {
  std::vector<JobOutcome> jobs;  // by job id
  int completed_jobs = 0;
  simkit::Time makespan = 0.0;   // last finish time
  /// Node-seconds: held = nodes x (finish - start); productive = nodes x
  /// productive step time; wasted = held - productive.  Waste is the
  /// platform-level bill for checkpoint stalls, slot waits, lost work,
  /// and recovery.
  double held_node_s = 0.0;
  double productive_node_s = 0.0;
  double wasted_node_s = 0.0;
  /// Pure compute node-seconds (nodes x steps x step compute time),
  /// fixed by the job mix alone.  Unlike productive_node_s — which
  /// folds in step I/O time, crediting a slow I/O system — this is
  /// invariant across I/O configurations, so "capacity minus compute"
  /// comparisons attribute platform waste to the I/O path honestly.
  double compute_node_s = 0.0;
  /// productive_node_s / (compute_nodes x makespan).
  double utilization = 0.0;
  // Aggregates over completed jobs.
  double mean_stretch = 0.0;
  double p95_stretch = 0.0;
  double mean_slowdown = 0.0;
  double mean_queue_wait_s = 0.0;
  double mean_ckpt_wait_s = 0.0;
  simkit::Duration total_ckpt_blocked = 0.0;
  simkit::Duration total_lost_work = 0.0;
  simkit::Duration total_recovery = 0.0;
  std::uint64_t total_ckpt_bytes = 0;
  int total_restarts = 0;
  int total_deferrals = 0;
  int total_dropped = 0;
  pario::RetryStats retry;  // aggregated over all job I/O
  // I/O-server cache behaviour aggregated over every node of the shared
  // PFS at end of run — the platform-level view of the iosrv knobs
  // (replacement policy, read-ahead) under multi-tenant interference.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t readahead_issued = 0;
  std::uint64_t readahead_hits = 0;       // includes late joins
  std::uint64_t readahead_waste = 0;
  // Crash-consistency aggregates (all zero unless the servers run with
  // durability.crash_semantics and the plan actually crashes one): the
  // platform-level bill for write-behind's loss windows and the work the
  // durable policies do to avoid them.
  std::uint64_t lost_dirty_blocks = 0;    // acked writes destroyed by crashes
  std::uint64_t lost_bytes = 0;           // payload of those writes
  std::uint64_t readahead_cancelled = 0;  // prefetches killed mid-flight
  std::uint64_t cache_invalidations = 0;  // whole-cache drops at crash edges
  std::uint64_t journal_appends = 0;      // redo-log appends (kJournaled)
  std::uint64_t journal_replayed = 0;     // blocks re-written by replay
  // Client-visible seconds blocked on durable-ack machinery (sync
  // in-place writes, journal appends, drain barriers) summed over all
  // I/O nodes — the direct price of the durability contract.
  double durability_wait_s = 0.0;

  double cache_hit_rate() const {
    const double total =
        static_cast<double>(cache_hits) + static_cast<double>(cache_misses);
    return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
};

/// Run the job stream to completion on the given machine/file system.
/// `injector` may be null (fault-free platform); when set it must be the
/// injector the StripedFs was built with.  Jobs must be sorted by
/// arrival time (as sched::generate emits them).  Fully deterministic:
/// everything runs on the machine's engine, and the engine is stepped
/// only until the last job finishes (fault edges beyond that are left
/// unconsumed).
PlatformReport run(hw::Machine& machine, pfs::StripedFs& fs,
                   fault::Injector* injector, std::vector<Job> jobs,
                   const PlatformOptions& opt);

}  // namespace sched
