// sched/job.hpp — multi-tenant job classes over the paper's applications.
//
// The paper (and every bench so far) gives one application the whole
// machine.  A shared platform instead sees a *stream* of jobs: the same
// five applications, parameterized by problem size, node count, priority,
// and checkpoint policy, queued against a finite compute partition and
// one shared parallel file system.  A JobClass is the static profile of
// one app at one size — its per-step compute and I/O volumes are derived
// from the identical apps:: configs the healthy-machine benches time (via
// the ckpt:: workload adapters where they exist), so a platform study
// talks about the same SCF or BTIO run the paper measured, just many of
// them at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "simkit/time.hpp"

namespace sched {

enum class AppKind : std::uint8_t { kScf, kScf3, kBtio, kFft, kAst };
enum class SizeClass : std::uint8_t { kSmall, kMedium, kLarge };

const char* to_string(AppKind k);
const char* to_string(SizeClass s);

/// Static profile of one application at one problem size.  Per-node
/// quantities: the job occupies `nodes` compute nodes, one "rank" each.
struct JobClass {
  std::string name;  // "scf/medium"
  AppKind app = AppKind::kScf;
  SizeClass size = SizeClass::kSmall;

  int nodes = 1;   // compute nodes the job occupies while running
  int steps = 4;   // restartable work units (iterations / dump periods)
  double flops_per_node_step = 0.0;
  /// Shared-PFS traffic each node issues per step (the app's re-read or
  /// solution dump), already volume-scaled.
  std::uint64_t io_bytes_per_node_step = 0;
  bool step_io_reads = false;  // SCF-style re-read vs BTIO-style dump

  /// Checkpoint volume per node (the app's true restart state — NOT
  /// volume-scaled: a small test run of SCF still restarts from the full
  /// density/Fock pair).
  std::uint64_t state_bytes_per_node = 0;
  /// Fraction of the state an incremental checkpoint writes.
  double dirty_fraction = 1.0;

  int priority = 0;             // larger = more urgent (queue discipline)
  int ckpt_interval_steps = 2;  // 0 disables checkpointing
  ckpt::Policy policy;          // {sync|async} x {full|incremental}

  /// Build the profile for (app, size) with per-step volumes scaled by
  /// `scale` (state bytes are not scaled; see state_bytes_per_node).
  static JobClass make(AppKind app, SizeClass size, double scale);
};

/// One queued job: a class instance with an arrival time and its own
/// deterministic RNG seed (reserved for per-job stochastic behaviour).
struct Job {
  int id = 0;
  JobClass klass;
  simkit::Time arrival = 0.0;
  std::uint64_t seed = 0;
};

/// Contention-free runtime estimate for one job of this class on the
/// given machine: compute + step I/O + checkpoint writes at aggregate
/// disk bandwidth.  This is the "user-supplied runtime estimate" the
/// EASY-backfill discipline reasons with, and the ideal-time denominator
/// of the stretch/slowdown metrics.
double estimate_runtime_s(const JobClass& k, const hw::MachineConfig& mc);

}  // namespace sched
