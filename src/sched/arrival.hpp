// sched/arrival.hpp — seeded stochastic job streams.
//
// A platform study needs hundreds-to-thousands of queued jobs whose
// arrival pattern is (a) realistic — a Poisson base load with trace-style
// bursts, the shape every production scheduler log shows — and (b)
// perfectly reproducible, so two strategies can be compared on the
// *identical* stream and a CI gate can pin the output.  The generator
// draws exactly three RNG values per emitted job (inter-arrival gap,
// class pick, per-job seed), so the stream is a pure function of
// (config, mix, seed) and stays aligned however the mix is weighted.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/job.hpp"
#include "simkit/time.hpp"

namespace sched {

/// The job population: classes plus their arrival weights (need not be
/// normalized; one weight per class, both vectors the same length).
struct JobMix {
  std::vector<JobClass> classes;
  std::vector<double> weights;
};

/// The five applications at three sizes each, weighted the way cluster
/// logs skew: many small interactive jobs, few large batch runs.  All
/// per-step volumes scaled by `scale`.
JobMix standard_mix(double scale);

struct ArrivalConfig {
  /// Mean inter-arrival gap of the base Poisson process (seconds).
  double mean_interarrival_s = 20.0;
  /// Stop generating at this simulated time (0 = unlimited; then
  /// max_jobs must be set).
  simkit::Time horizon = 0.0;
  /// Stop after this many jobs (0 = unlimited; then horizon must be set).
  int max_jobs = 0;

  /// Trace-style bursts: every `burst_period_s`, a window of
  /// `burst_len_s` during which the arrival rate is multiplied by
  /// `burst_rate_multiplier` (the morning-submit / post-deadline spike).
  /// A period of 0 disables bursts and leaves a pure Poisson stream.
  double burst_period_s = 0.0;
  double burst_len_s = 0.0;
  double burst_rate_multiplier = 1.0;
};

/// Generate the deterministic job stream: same (cfg, mix, seed) — byte-
/// identical jobs; different seeds — independent streams.  Jobs come out
/// sorted by arrival time with sequential ids.  Throws
/// std::invalid_argument on a non-positive rate, an empty mix, a
/// weight/class length mismatch, or an unbounded config (neither horizon
/// nor max_jobs).
std::vector<Job> generate(const ArrivalConfig& cfg, const JobMix& mix,
                          std::uint64_t seed);

}  // namespace sched
