#include "ckpt/workloads.hpp"

#include <algorithm>

namespace ckpt {

Workload scf11_workload(const apps::ScfConfig& cfg) {
  Workload w;
  w.name = "scf11";
  w.nprocs = cfg.nprocs;
  // Iteration 1 (integral evaluation + write) is the prologue; every
  // remaining iteration is a restartable step.
  w.steps = std::max(1, cfg.iterations - 1);
  const std::uint64_t per_rank =
      cfg.total_integrals() / static_cast<std::uint64_t>(cfg.nprocs);
  w.flops_per_rank_step =
      static_cast<double>(per_rank) * cfg.fock_flops_per_integral;
  w.io = StepIo::kPrivateRead;
  w.io_bytes_per_rank_step = per_rank * cfg.bytes_per_integral;
  w.io_chunk_bytes = cfg.chunk_bytes();
  w.prologue_writes_private = true;
  // Density + Fock matrices: 2 * N^2 doubles per rank.
  w.state_bytes_per_rank = 2ULL * static_cast<std::uint64_t>(cfg.n_basis) *
                           static_cast<std::uint64_t>(cfg.n_basis) * 8ULL;
  // Near convergence an SCF iteration moves only a shrinking band of the
  // density/Fock pair; a few percent of the state per step is the regime
  // where incremental checkpoints pay — at the Young/Daly cadence (a
  // handful of steps) a delta still covers well under half the state.
  w.dirty_fraction_per_step = 0.05;
  return w;
}

Workload btio_workload(const apps::BtioConfig& cfg) {
  Workload w;
  w.name = "btio";
  w.nprocs = cfg.nprocs;
  w.steps = cfg.effective_dumps();
  const std::uint64_t cells =
      cfg.grid_n() * cfg.grid_n() * cfg.grid_n() /
      static_cast<std::uint64_t>(cfg.nprocs);
  w.flops_per_rank_step = static_cast<double>(cells) *
                          cfg.flops_per_cell_step * cfg.steps_per_dump;
  w.io = StepIo::kCollectiveDump;
  w.io_bytes_per_rank_step =
      cfg.dump_bytes() / static_cast<std::uint64_t>(cfg.nprocs);
  // The solution IS the state: a checkpoint is one extra coordinated dump.
  w.state_bytes_per_rank = w.io_bytes_per_rank_step;
  // Every BT step advances the whole solution grid, so the full state is
  // dirty at every checkpoint: incremental degenerates to full for BTIO
  // (the honest answer — async overlap is the only lever that helps it).
  w.dirty_fraction_per_step = 1.0;
  return w;
}

}  // namespace ckpt
