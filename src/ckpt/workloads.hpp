// ckpt/workloads.hpp — map the paper's applications onto ckpt::Workload.
//
// The checkpoint engine models a job as steps of (compute + step I/O);
// these adapters derive those step parameters from the same app configs
// apps:: uses, so a fault/checkpoint sweep talks about the identical
// SCF 1.1 or BTIO job the healthy-machine benches time.
#pragma once

#include "apps/btio.hpp"
#include "apps/scf.hpp"
#include "ckpt/ckpt.hpp"

namespace ckpt {

/// SCF 1.1: one step = one SCF iteration after the first — rebuild the
/// Fock matrix by re-reading the whole per-rank private integral file in
/// M-sized chunks.  The prologue stands in for iteration 1's integral
/// write.  Checkpoint state is the density/Fock matrix pair (2 * N^2
/// doubles, replicated per rank in SCF 1.1).  Near convergence an SCF
/// iteration perturbs only a band of the matrices, so the adapter sets
/// dirty_fraction_per_step = 0.05: incremental checkpoints have real
/// bytes to skip.
Workload scf11_workload(const apps::ScfConfig& cfg);

/// BTIO: one step = one solution-dump period — steps_per_dump implicit
/// solver sweeps, then a collective append of this rank's share of the
/// solution.  Checkpoint state is the rank's slab of the 5-component
/// grid (same bytes a dump writes).  Every sweep rewrites the whole
/// slab (dirty_fraction_per_step = 1.0), so incremental checkpoints
/// honestly degenerate to full ones here.
Workload btio_workload(const apps::BtioConfig& cfg);

}  // namespace ckpt
