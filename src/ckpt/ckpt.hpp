// ckpt/ckpt.hpp — coordinated checkpoint/restart over the striped FS.
//
// The paper studies where I/O time goes on a healthy machine; this engine
// answers the production question of what the I/O stack costs when the
// machine is NOT healthy.  A job is modelled as `steps` units of work per
// rank (compute plus a per-step I/O pattern derived from a real app —
// SCF 1.1's integral-file re-read, BTIO's collective solution dump).
// Every `ckpt_interval_steps`, all ranks write a coordinated checkpoint of
// their state through the existing two-phase collective path.  When an
// injected fault defeats the retry/backoff policy, the surviving ranks
// agree on the failure (an allreduce over the compute interconnect, which
// crashes of I/O nodes do not touch), the job waits out the outage, rolls
// back to the last committed checkpoint, re-reads it collectively, and
// re-executes the lost steps.
//
// The report splits the resilience overheads the way the classic optimal-
// checkpoint-interval analysis does: time writing checkpoints (grows as
// the interval shrinks), lost work re-executed after rollbacks (grows as
// the interval stretches), and time-to-recovery (outage wait + restart
// read).  bench_fault_ckpt sweeps the interval against the fault rate to
// reproduce the interior-minimum tradeoff curve.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/injector.hpp"
#include "hw/machine.hpp"
#include "pario/extent.hpp"
#include "pario/resilient.hpp"
#include "pfs/fs.hpp"
#include "simkit/time.hpp"

namespace ckpt {

/// Checkpoint policy: {sync|async} write path x {full|incremental} data
/// selection.  The paper's thesis — software I/O techniques (overlap,
/// fewer/larger transfers) beat hardware scaling — applies verbatim to
/// checkpoint traffic: `kAsync` overlaps the drain with compute behind a
/// bounded staging buffer, `kIncremental` shrinks the volume to the
/// regions dirtied since the previous checkpoint.
struct Policy {
  enum class Write : std::uint8_t {
    kSync,   // ranks block inside the coordinated two-phase write
    kAsync,  // ranks stage a snapshot and a background task drains it
  };
  enum class Data : std::uint8_t {
    kFull,         // every checkpoint writes the whole rank state
    kIncremental,  // deltas between periodic full checkpoints
  };

  Write write = Write::kSync;
  Data data = Data::kFull;

  /// Job-wide staging budget for async snapshots, split evenly across
  /// ranks.  A snapshot that exceeds its rank's share degrades to
  /// blocking: the rank stages, then waits for its own drain to finish
  /// before computing on (so async never needs more memory than budgeted).
  std::uint64_t staging_budget_bytes = 64ULL << 20;

  /// In incremental mode every Nth checkpoint is full (the first always
  /// is); the deltas in between only cover regions dirtied since the
  /// previous checkpoint.  Restart replays full + consecutive deltas.
  int full_every = 4;

  bool is_sync_full() const noexcept {
    return write == Write::kSync && data == Data::kFull;
  }
  /// "sync_full" | "sync_incr" | "async_full" | "async_incr".
  std::string name() const;
  /// Inverse of name(); nullopt on anything else.
  static std::optional<Policy> parse(std::string_view s);
};

/// Per-step I/O issued by every rank between checkpoints.
enum class StepIo : std::uint8_t {
  kNone,            // compute-only steps
  kPrivateRead,     // re-read my private file each step (SCF's Fock build)
  kCollectiveDump,  // append a shared-file dump via two-phase I/O (BTIO)
};

struct Workload {
  std::string name = "synthetic";
  int nprocs = 8;
  int steps = 32;
  double flops_per_rank_step = 1e7;
  StepIo io = StepIo::kNone;
  std::uint64_t io_bytes_per_rank_step = 0;
  /// kPrivateRead reads in chunks of this size (the app's buffer tuple M).
  std::uint64_t io_chunk_bytes = 256 * 1024;
  /// When set, a one-time prologue writes the private files before the
  /// first step (SCF produces its integral file in iteration 1).  Not
  /// re-done after restarts — the data survives on disk.  When unset,
  /// kPrivateRead treats the files as pre-existing input and pays no
  /// prologue.
  bool prologue_writes_private = false;

  std::uint64_t state_bytes_per_rank = 1 << 20;  // checkpoint volume
  /// The checkpoint file interleaves each rank's state in this many
  /// pieces (round-robin by rank), so the collective write actually
  /// exercises the two-phase exchange.
  int state_pieces = 8;
  /// Content-backed checkpoint state: ranks keep real state buffers with
  /// a (rank, step)-derived pattern, and every restart verifies that the
  /// bytes read back match the checkpointed step.  Costs host RAM — meant
  /// for tests, not for paper-sized benches.
  bool backed_state = false;
  /// Fraction of the rank state dirtied by each step — a rotating window
  /// that advances deterministically with the step number, so dirty
  /// tracking is a pure function of (workload, step range).  1.0 (the
  /// default) rewrites everything and makes incremental checkpoints
  /// degenerate to full ones.
  double dirty_fraction_per_step = 1.0;
};

struct Options {
  /// Steps between coordinated checkpoints; 0 disables checkpointing
  /// (a failure then rolls back to the start of the job).
  int ckpt_interval_steps = 8;
  Policy policy;                     // write path x data selection
  pario::RetryPolicy retry;          // recovery policy for all job I/O
  /// Retry policy for async background drain writes.  max_attempts == 0
  /// (the default) inherits `retry` (without its replica — drains never
  /// fail over).  Tests use a weaker drain ladder to lose a delta without
  /// failing the foreground job.
  pario::RetryPolicy drain_retry{.max_attempts = 0};
  bool replicate_checkpoint = false; // mirror ckpt file for fail-over
                                     // (sync full checkpoints only)
  int max_restarts = 64;             // give up (completed=false) beyond

  /// Where checkpoint files (primary, mirror, async B buffer) live.
  /// kStriped (default) spreads them over the whole I/O partition —
  /// byte-identical to the pre-placement engine, but a scrubbing crash
  /// anywhere invalidates every copy.  The pinned placements confine each
  /// copy to one failure domain: kSameDomain puts primary AND mirror
  /// behind the same rack switch (the naive layout the bench indicts),
  /// kOtherDomain puts the mirror in the next domain so one rack's power
  /// event cannot take both copies.
  enum class Placement : std::uint8_t { kStriped, kSameDomain, kOtherDomain };
  Placement placement = Placement::kStriped;

  /// Health-aware recovery: maintain a pario::HealthTracker fed by all
  /// job I/O, pick the restore source by observed server health, hedge
  /// restore reads against the mirror (see hedge_latency_multiple), and
  /// re-mirror a scrub-invalidated copy from the surviving one after a
  /// restore (counted in Report::divergences_repaired).
  bool health_aware = false;
  /// Hedge multiple for restore reads when health_aware (see
  /// pario::RetryPolicy::hedge_latency_multiple); 0 disables hedging.
  double hedge_latency_multiple = 3.0;

  /// Bounded aggregator fan-in for checkpoint traffic at scale.  0 (the
  /// default) keeps the legacy shape: flat collectives, every rank doing
  /// file I/O, and one concurrent background drain stream per rank.
  /// N > 0 routes the coordinated checkpoint collectives over a two-level
  /// leader topology with ~N groups — the leaders aggregate the file I/O
  /// (see pario::TwoPhaseOptions::aggregators) — and caps concurrent
  /// async drain writers at N job-wide, so a thousand-rank job presents
  /// the I/O partition with N streams instead of P (DESIGN.md §16).
  int io_fan_in = 0;
};

struct Report {
  simkit::Duration exec_time = 0.0;     // end-to-end, including recoveries
  simkit::Duration ckpt_overhead = 0.0; // wall time ranks BLOCK for
                                        // checkpointing (sync: the write;
                                        // async: staging + budget waits)
  simkit::Duration lost_work = 0.0;     // productive time discarded by rollbacks
  simkit::Duration recovery_time = 0.0; // outage wait + checkpoint re-reads
  int checkpoints = 0;                  // committed checkpoints (full+delta)
  int restarts = 0;
  std::uint64_t ckpt_bytes = 0;         // total checkpoint volume written
  bool completed = false;
  bool state_verified = true;           // meaningful when backed_state
  pario::RetryStats retry;              // aggregated over all job I/O

  // -- policy-dependent split (zero under sync_full) -----------------------
  Policy policy;                        // echo of the policy that ran
  int full_checkpoints = 0;             // committed fulls
  int delta_checkpoints = 0;            // committed deltas
  int dropped_checkpoints = 0;          // issued but never committed (failed
                                        // drain, broken chain, stale epoch)
  std::uint64_t delta_bytes = 0;        // bytes written by committed deltas
  simkit::Duration stage_wait = 0.0;    // rank-0 async waits for staging
                                        // space / the previous drain
  simkit::Duration drain_time = 0.0;    // summed background drain busy time
                                        // (overlapped with compute, NOT a
                                        // component of exec_time)

  // -- robustness split (zero unless scrubbing faults / health_aware) ------
  int lost_checkpoints = 0;             // committed checkpoints (fulls +
                                        // deltas) made unrestorable because
                                        // scrubbing crashes destroyed every
                                        // copy (a surviving mirror keeps the
                                        // checkpoint out of this count)
  int divergences_repaired = 0;         // scrub-invalidated copies re-mirrored
                                        // from the surviving one after restore
  std::uint64_t hedged_reads = 0;       // hedges issued during restores
  std::uint64_t hedge_wins = 0;         // hedges the mirror copy won

  /// exec time of a hypothetical fault-free, checkpoint-free run is
  /// exec_time - ckpt_overhead - lost_work - recovery_time minus retry
  /// backoff; the report keeps the pieces so benches can show the split.
};

/// Run the workload to completion (or to max_restarts) on the given
/// machine/file system.  `injector` may be null (fault-free run); when
/// set it must be the same injector the StripedFs was built with.
Report run(hw::Machine& machine, pfs::StripedFs& fs,
           fault::Injector* injector, Workload w, Options opt);

// -- dirty-region model (exposed for tests and restart replay) -------------

/// State-space regions (file_offset = offset into the rank's state,
/// buf_offset = position in a delta's packed payload) dirtied by steps
/// (from_step, to_step].  The rotating window makes consecutive steps
/// contiguous, so the union is one wrapped run: at most two extents, or
/// one covering the whole state once the window budget laps it.
std::vector<pario::Extent> dirty_extents(const Workload& w, int from_step,
                                         int to_step);

/// The step (<= at_step) whose window last covered state byte `i`; 0 means
/// never dirtied (initial state).  Drives backed-state verification of
/// full+delta chain restores.
int last_dirty_step(const Workload& w, int at_step, std::uint64_t i);

/// Young's [1974] first-order optimal checkpoint interval (productive
/// seconds between checkpoints): sqrt(2 * C * MTBF) for checkpoint cost C
/// and mean time between failures MTBF, both in seconds.  Accurate when
/// C << MTBF.
double young_interval(double ckpt_cost_s, double mtbf_s);

/// Daly's [2006] higher-order refinement of Young's formula:
///   t = sqrt(2*C*M) * [1 + (1/3)*sqrt(C/(2M)) + (1/9)*(C/(2M))] - C
/// for C < 2M, and t = M once checkpointing costs more than it saves.
/// bench_fault_ckpt --check asserts the swept interior minimum lands near
/// this analytical optimum.
double young_daly_interval(double ckpt_cost_s, double mtbf_s);

}  // namespace ckpt
