// ckpt/ckpt.hpp — coordinated checkpoint/restart over the striped FS.
//
// The paper studies where I/O time goes on a healthy machine; this engine
// answers the production question of what the I/O stack costs when the
// machine is NOT healthy.  A job is modelled as `steps` units of work per
// rank (compute plus a per-step I/O pattern derived from a real app —
// SCF 1.1's integral-file re-read, BTIO's collective solution dump).
// Every `ckpt_interval_steps`, all ranks write a coordinated checkpoint of
// their state through the existing two-phase collective path.  When an
// injected fault defeats the retry/backoff policy, the surviving ranks
// agree on the failure (an allreduce over the compute interconnect, which
// crashes of I/O nodes do not touch), the job waits out the outage, rolls
// back to the last committed checkpoint, re-reads it collectively, and
// re-executes the lost steps.
//
// The report splits the resilience overheads the way the classic optimal-
// checkpoint-interval analysis does: time writing checkpoints (grows as
// the interval shrinks), lost work re-executed after rollbacks (grows as
// the interval stretches), and time-to-recovery (outage wait + restart
// read).  bench_fault_ckpt sweeps the interval against the fault rate to
// reproduce the interior-minimum tradeoff curve.
#pragma once

#include <cstdint>
#include <string>

#include "fault/injector.hpp"
#include "hw/machine.hpp"
#include "pario/resilient.hpp"
#include "pfs/fs.hpp"
#include "simkit/time.hpp"

namespace ckpt {

/// Per-step I/O issued by every rank between checkpoints.
enum class StepIo : std::uint8_t {
  kNone,            // compute-only steps
  kPrivateRead,     // re-read my private file each step (SCF's Fock build)
  kCollectiveDump,  // append a shared-file dump via two-phase I/O (BTIO)
};

struct Workload {
  std::string name = "synthetic";
  int nprocs = 8;
  int steps = 32;
  double flops_per_rank_step = 1e7;
  StepIo io = StepIo::kNone;
  std::uint64_t io_bytes_per_rank_step = 0;
  /// kPrivateRead reads in chunks of this size (the app's buffer tuple M).
  std::uint64_t io_chunk_bytes = 256 * 1024;
  /// When set, a one-time prologue writes the private files before the
  /// first step (SCF produces its integral file in iteration 1).  Not
  /// re-done after restarts — the data survives on disk.  When unset,
  /// kPrivateRead treats the files as pre-existing input and pays no
  /// prologue.
  bool prologue_writes_private = false;

  std::uint64_t state_bytes_per_rank = 1 << 20;  // checkpoint volume
  /// The checkpoint file interleaves each rank's state in this many
  /// pieces (round-robin by rank), so the collective write actually
  /// exercises the two-phase exchange.
  int state_pieces = 8;
  /// Content-backed checkpoint state: ranks keep real state buffers with
  /// a (rank, step)-derived pattern, and every restart verifies that the
  /// bytes read back match the checkpointed step.  Costs host RAM — meant
  /// for tests, not for paper-sized benches.
  bool backed_state = false;
};

struct Options {
  /// Steps between coordinated checkpoints; 0 disables checkpointing
  /// (a failure then rolls back to the start of the job).
  int ckpt_interval_steps = 8;
  pario::RetryPolicy retry;          // recovery policy for all job I/O
  bool replicate_checkpoint = false; // mirror ckpt file for fail-over
  int max_restarts = 64;             // give up (completed=false) beyond
};

struct Report {
  simkit::Duration exec_time = 0.0;     // end-to-end, including recoveries
  simkit::Duration ckpt_overhead = 0.0; // wall time inside checkpoint writes
  simkit::Duration lost_work = 0.0;     // productive time discarded by rollbacks
  simkit::Duration recovery_time = 0.0; // outage wait + checkpoint re-reads
  int checkpoints = 0;                  // committed coordinated checkpoints
  int restarts = 0;
  std::uint64_t ckpt_bytes = 0;         // total checkpoint volume written
  bool completed = false;
  bool state_verified = true;           // meaningful when backed_state
  pario::RetryStats retry;              // aggregated over all job I/O

  /// exec time of a hypothetical fault-free, checkpoint-free run is
  /// exec_time - ckpt_overhead - lost_work - recovery_time minus retry
  /// backoff; the report keeps the pieces so benches can show the split.
};

/// Run the workload to completion (or to max_restarts) on the given
/// machine/file system.  `injector` may be null (fault-free run); when
/// set it must be the same injector the StripedFs was built with.
Report run(hw::Machine& machine, pfs::StripedFs& fs,
           fault::Injector* injector, Workload w, Options opt);

/// Young's [1974] first-order optimal checkpoint interval (productive
/// seconds between checkpoints): sqrt(2 * C * MTBF) for checkpoint cost C
/// and mean time between failures MTBF, both in seconds.  Accurate when
/// C << MTBF.
double young_interval(double ckpt_cost_s, double mtbf_s);

/// Daly's [2006] higher-order refinement of Young's formula:
///   t = sqrt(2*C*M) * [1 + (1/3)*sqrt(C/(2M)) + (1/9)*(C/(2M))] - C
/// for C < 2M, and t = M once checkpointing costs more than it saves.
/// bench_fault_ckpt --check asserts the swept interior minimum lands near
/// this analytical optimum.
double young_daly_interval(double ckpt_cost_s, double mtbf_s);

}  // namespace ckpt
