#include "ckpt/ckpt.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "metrics/metrics.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pario/twophase.hpp"
#include "pfs/types.hpp"

namespace ckpt {
namespace {

/// Deterministic checkpoint-state content for (rank, step): restarts can
/// prove they read back the exact step they rolled back to.
std::byte pattern_byte(int rank, int step, std::uint64_t i) {
  return static_cast<std::byte>(
      (static_cast<std::uint64_t>(rank) * 131 +
       static_cast<std::uint64_t>(step) * 17 + i * 7 + 0x2D) &
      0xFF);
}

/// Coordinated failure agreement over the compute interconnect (which an
/// I/O-node crash does not touch): min-reduce of everyone's ok flag.
simkit::Task<bool> agree(mprt::Comm& c, bool ok) {
  std::array<double, 1> v{ok ? 1.0 : 0.0};
  co_await mprt::allreduce(c, std::span<double>(v), mprt::ReduceOp::kMin);
  co_return v[0] > 0.5;
}

/// Rank r's slice of the checkpoint file: `pieces` chunks interleaved
/// round-robin by rank, so the collective write/read really exchanges.
/// Every rank uses the same length for piece j (the division remainder is
/// spread one byte at a time over the leading pieces), so slot (j, rank)
/// never overlaps a neighbour even when state_bytes_per_rank is not a
/// multiple of the piece count.
std::vector<pario::Extent> state_extents(const Workload& w, int rank) {
  const auto pieces =
      static_cast<std::uint64_t>(std::max(w.state_pieces, 1));
  const std::uint64_t base = w.state_bytes_per_rank / pieces;
  const std::uint64_t rem = w.state_bytes_per_rank % pieces;
  const auto nprocs = static_cast<std::uint64_t>(w.nprocs);
  std::vector<pario::Extent> ext;
  ext.reserve(static_cast<std::size_t>(pieces));
  std::uint64_t prefix = 0;  // one rank's state bytes in pieces before j
  for (std::uint64_t j = 0; j < pieces; ++j) {
    const std::uint64_t len = base + (j < rem ? 1 : 0);
    if (len == 0) break;  // more pieces than bytes: the rest are empty
    ext.push_back({.file_offset =
                       prefix * nprocs +
                       static_cast<std::uint64_t>(rank) * len,
                   .length = len,
                   .buf_offset = prefix});
    prefix += len;
  }
  return ext;
}

/// Mutable run state shared by the driver and every rank's coroutine.
/// Single-threaded simulation: no synchronization needed, but only rank 0
/// writes the bookkeeping fields so they change exactly once per event.
struct RunState {
  bool prologue_done = false;
  bool have_ckpt = false;
  int ckpt_step = 0;     // steps covered by the last committed checkpoint
  int resume_step = 0;   // first step the next attempt executes
  bool failed = false;   // this attempt hit a coordinated failure
  bool productive = false;
  simkit::Time anchor = simkit::kTimeZero;  // lost-work accrues from here
  Report rep;

  // Registry instruments (ckpt.*), resolved once in run(); all null when
  // metrics are off.
  metrics::Histogram* m_write_s = nullptr;
  metrics::Histogram* m_lost_work_s = nullptr;
  metrics::Histogram* m_recovery_s = nullptr;
  metrics::Counter* m_checkpoints = nullptr;
  metrics::Counter* m_restarts = nullptr;
  metrics::Counter* m_bytes = nullptr;

  void resolve_meters() {
    if (metrics::Registry* r = metrics::current()) {
      m_write_s = &r->histogram("ckpt.write_s");
      m_lost_work_s = &r->histogram("ckpt.lost_work_s");
      m_recovery_s = &r->histogram("ckpt.recovery_s");
      m_checkpoints = &r->counter("ckpt.checkpoints");
      m_restarts = &r->counter("ckpt.restarts");
      m_bytes = &r->counter("ckpt.bytes");
    }
  }

  void note_failure(simkit::Time now) {
    failed = true;
    if (productive) {
      rep.lost_work += now - anchor;
      if (m_lost_work_s) m_lost_work_s->observe(now - anchor);
      productive = false;
    }
  }
  void begin_productive(simkit::Time now) {
    productive = true;
    anchor = now;
  }
};

}  // namespace

Report run(hw::Machine& machine, pfs::StripedFs& fs,
           fault::Injector* injector, Workload w, Options opt) {
  simkit::Engine& eng = machine.engine();
  const simkit::Time job_start = eng.now();

  // -- files ---------------------------------------------------------------
  const pfs::FileId ckpt_file =
      fs.create("ckpt." + w.name, w.backed_state);
  const pfs::FileId ckpt_replica =
      opt.replicate_checkpoint
          ? fs.create("ckpt." + w.name + ".mirror", w.backed_state)
          : pfs::kInvalidFile;
  std::vector<pfs::FileId> priv;
  pfs::FileId dump = pfs::kInvalidFile;
  if (w.io == StepIo::kPrivateRead) {
    priv.reserve(static_cast<std::size_t>(w.nprocs));
    for (int r = 0; r < w.nprocs; ++r) {
      priv.push_back(fs.create(w.name + ".priv." + std::to_string(r)));
    }
  } else if (w.io == StepIo::kCollectiveDump) {
    dump = fs.create(w.name + ".dump");
  }

  // Step/prologue I/O retries without fail-over (those files have no
  // mirror); checkpoint restores may fail over to the mirror copy.
  pario::RetryPolicy step_retry = opt.retry;
  step_retry.replica = pfs::kInvalidFile;
  pario::RetryPolicy ckpt_retry = opt.retry;
  ckpt_retry.replica = ckpt_replica;

  RunState st;
  st.resolve_meters();
  pario::TwoPhaseOptions tp_step;
  tp_step.retry = &step_retry;
  tp_step.retry_stats = &st.rep.retry;
  pario::TwoPhaseOptions tp_ckpt_write = tp_step;  // copies go out whole
  pario::TwoPhaseOptions tp_ckpt_read;
  tp_ckpt_read.retry = &ckpt_retry;
  tp_ckpt_read.retry_stats = &st.rep.retry;

  const int interval = std::max(opt.ckpt_interval_steps, 0);
  const std::uint64_t chunk =
      std::max<std::uint64_t>(w.io_chunk_bytes, 1);

  // Per-rank live state buffers (content-backed runs only).
  std::vector<std::vector<std::byte>> state;
  if (w.backed_state) {
    state.assign(static_cast<std::size_t>(w.nprocs),
                 std::vector<std::byte>(w.state_bytes_per_rank));
  }
  auto state_span = [&](int r) -> std::span<std::byte> {
    if (!w.backed_state) return {};
    return std::span<std::byte>(state[static_cast<std::size_t>(r)]);
  };

  auto body = [&](mprt::Comm& c) -> simkit::Task<void> {
    const int r = c.rank();
    const hw::NodeId node = c.node();

    // One-time prologue: materialize the private input files every step
    // re-reads (SCF writes its integral file once, in iteration 1).  With
    // prologue_writes_private unset the files count as pre-existing input
    // (unbacked files serve reads without prior writes), so no prologue.
    if (w.io == StepIo::kPrivateRead && w.prologue_writes_private &&
        !st.prologue_done) {
      bool ok = true;
      try {
        for (std::uint64_t off = 0; off < w.io_bytes_per_rank_step;
             off += chunk) {
          const std::uint64_t len =
              std::min(chunk, w.io_bytes_per_rank_step - off);
          co_await pario::resilient_pwrite(
              fs, node, priv[static_cast<std::size_t>(r)], off, len, {},
              step_retry, &st.rep.retry);
        }
      } catch (const pfs::IoError&) {
        ok = false;
      }
      ok = co_await agree(c, ok);
      if (!ok) {
        if (r == 0) st.note_failure(eng.now());
        co_return;
      }
      if (r == 0) st.prologue_done = true;
    }

    // Restore from the last committed checkpoint (restarts only).
    if (st.have_ckpt && st.resume_step > 0) {
      const simkit::Time t0 = eng.now();
      bool ok = true;
      try {
        co_await pario::TwoPhase::read(c, fs, ckpt_file, state_extents(w, r),
                                       state_span(r), nullptr, tp_ckpt_read);
        if (w.backed_state) {
          const auto& buf = state[static_cast<std::size_t>(r)];
          for (std::uint64_t i = 0; i < w.state_bytes_per_rank; ++i) {
            if (buf[i] != pattern_byte(r, st.ckpt_step, i)) {
              st.rep.state_verified = false;
              break;
            }
          }
        }
      } catch (const pfs::IoError&) {
        ok = false;
      }
      ok = co_await agree(c, ok);
      if (r == 0) {
        st.rep.recovery_time += eng.now() - t0;
        if (st.m_recovery_s) st.m_recovery_s->observe(eng.now() - t0);
      }
      if (!ok) {
        if (r == 0) st.note_failure(eng.now());
        co_return;
      }
    }
    if (r == 0) st.begin_productive(eng.now());

    for (int step = st.resume_step; step < w.steps; ++step) {
      co_await machine.compute(w.flops_per_rank_step);

      if (w.io != StepIo::kNone) {
        bool ok = true;
        try {
          if (w.io == StepIo::kPrivateRead) {
            for (std::uint64_t off = 0; off < w.io_bytes_per_rank_step;
                 off += chunk) {
              const std::uint64_t len =
                  std::min(chunk, w.io_bytes_per_rank_step - off);
              co_await pario::resilient_pread(
                  fs, node, priv[static_cast<std::size_t>(r)], off, len, {},
                  step_retry, &st.rep.retry);
            }
          } else {  // kCollectiveDump: shared solution file, rank-blocked
            std::vector<pario::Extent> mine{
                {.file_offset = static_cast<std::uint64_t>(r) *
                                w.io_bytes_per_rank_step,
                 .length = w.io_bytes_per_rank_step,
                 .buf_offset = 0}};
            co_await pario::TwoPhase::write(c, fs, dump, std::move(mine), {},
                                            nullptr, tp_step);
          }
        } catch (const pfs::IoError&) {
          ok = false;
        }
        ok = co_await agree(c, ok);
        if (!ok) {
          if (r == 0) st.note_failure(eng.now());
          co_return;
        }
      }

      // Coordinated checkpoint after every `interval` completed steps (not
      // after the last step — the job is finished, nothing left to lose).
      const int done_steps = step + 1;
      if (interval > 0 && done_steps % interval == 0 &&
          done_steps < w.steps) {
        const simkit::Time t0 = eng.now();
        bool ok = true;
        if (w.backed_state) {
          auto& buf = state[static_cast<std::size_t>(r)];
          for (std::uint64_t i = 0; i < w.state_bytes_per_rank; ++i) {
            buf[i] = pattern_byte(r, done_steps, i);
          }
        }
        try {
          co_await pario::TwoPhase::write(c, fs, ckpt_file,
                                          state_extents(w, r), state_span(r),
                                          nullptr, tp_ckpt_write);
          if (ckpt_replica != pfs::kInvalidFile) {
            co_await pario::TwoPhase::write(c, fs, ckpt_replica,
                                            state_extents(w, r),
                                            state_span(r), nullptr,
                                            tp_ckpt_write);
          }
        } catch (const pfs::IoError&) {
          ok = false;
        }
        ok = co_await agree(c, ok);
        if (r == 0) {
          if (ok) {
            const std::uint64_t bytes =
                w.state_bytes_per_rank *
                static_cast<std::uint64_t>(w.nprocs) *
                (ckpt_replica != pfs::kInvalidFile ? 2u : 1u);
            st.rep.ckpt_overhead += eng.now() - t0;
            st.rep.checkpoints += 1;
            st.rep.ckpt_bytes += bytes;
            if (st.m_checkpoints) {
              st.m_checkpoints->inc();
              st.m_bytes->inc(bytes);
              st.m_write_s->observe(eng.now() - t0);
            }
            st.have_ckpt = true;
            st.ckpt_step = done_steps;
            st.resume_step = done_steps;
            st.begin_productive(eng.now());
          } else {
            st.note_failure(eng.now());
          }
        }
        if (!ok) co_return;
      }
    }
  };

  // -- drive: attempt / agree-on-failure / wait-out-outage / restart ------
  // Cluster::run keeps a reference to the body function until the ranks
  // finish; a named object (not a temporary at the call site) outlives it.
  const std::function<simkit::Task<void>(mprt::Comm&)> rank_body = body;
  for (;;) {
    st.failed = false;
    mprt::Cluster cluster(machine, w.nprocs);
    simkit::ProcHandle main =
        eng.spawn(cluster.run(rank_body), "ckpt." + w.name);
    // Step (not run): a full drain would also consume future fault edges
    // and fling the clock to the plan horizon.
    while (!main.done() && eng.step()) {
    }
    if (!main.done()) break;  // starved: a bug, surfaces as !completed
    if (!st.failed) {
      st.rep.completed = true;
      break;
    }
    st.rep.restarts += 1;
    if (st.m_restarts) st.m_restarts->inc();
    if (st.rep.restarts > opt.max_restarts) break;
    if (injector) {
      // Sit out the remaining outage: the reboot edges are scheduled
      // events, so run_until lands the clock exactly on the last one.
      const simkit::Time up = injector->all_up_by(eng.now());
      if (up > eng.now()) {
        const simkit::Time t0 = eng.now();
        eng.run_until(up);
        st.rep.recovery_time += eng.now() - t0;
        if (st.m_recovery_s) st.m_recovery_s->observe(eng.now() - t0);
      }
    }
  }
  st.rep.exec_time = eng.now() - job_start;

  // Drain leftover fault edges so their coroutine frames don't leak (they
  // are finite arm/clear processes; the measurement above is already
  // taken, so the clock moving to the plan horizon is harmless).
  eng.run();
  return st.rep;
}

double young_interval(double ckpt_cost_s, double mtbf_s) {
  if (ckpt_cost_s <= 0.0 || mtbf_s <= 0.0) return 0.0;
  return std::sqrt(2.0 * ckpt_cost_s * mtbf_s);
}

double young_daly_interval(double ckpt_cost_s, double mtbf_s) {
  if (ckpt_cost_s <= 0.0 || mtbf_s <= 0.0) return 0.0;
  if (ckpt_cost_s >= 2.0 * mtbf_s) return mtbf_s;
  const double x = ckpt_cost_s / (2.0 * mtbf_s);
  return std::sqrt(2.0 * ckpt_cost_s * mtbf_s) *
             (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
         ckpt_cost_s;
}

}  // namespace ckpt
