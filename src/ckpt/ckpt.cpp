#include "ckpt/ckpt.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "iosrv/config.hpp"
#include "metrics/metrics.hpp"
#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pario/twophase.hpp"
#include "pfs/types.hpp"
#include "simkit/resource.hpp"

namespace ckpt {

std::string Policy::name() const {
  std::string n = write == Write::kSync ? "sync" : "async";
  n += data == Data::kFull ? "_full" : "_incr";
  return n;
}

std::optional<Policy> Policy::parse(std::string_view s) {
  Policy p;
  if (s == "sync_full") {
    p.write = Write::kSync;
    p.data = Data::kFull;
  } else if (s == "sync_incr") {
    p.write = Write::kSync;
    p.data = Data::kIncremental;
  } else if (s == "async_full") {
    p.write = Write::kAsync;
    p.data = Data::kFull;
  } else if (s == "async_incr") {
    p.write = Write::kAsync;
    p.data = Data::kIncremental;
  } else {
    return std::nullopt;
  }
  return p;
}

namespace {

/// Deterministic checkpoint-state content for (rank, step): restarts can
/// prove they read back the exact step they rolled back to.
std::byte pattern_byte(int rank, int step, std::uint64_t i) {
  return static_cast<std::byte>(
      (static_cast<std::uint64_t>(rank) * 131 +
       static_cast<std::uint64_t>(step) * 17 + i * 7 + 0x2D) &
      0xFF);
}

/// Bytes the rotating dirty window covers per step.
std::uint64_t dirty_window_bytes(const Workload& w) {
  const std::uint64_t state = w.state_bytes_per_rank;
  if (state == 0) return 0;
  if (w.dirty_fraction_per_step >= 1.0) return state;
  const double frac = std::max(w.dirty_fraction_per_step, 0.0);
  const auto db =
      static_cast<std::uint64_t>(frac * static_cast<double>(state));
  return std::min(state, std::max<std::uint64_t>(db, 1));
}

/// Coordinated failure agreement over the compute interconnect (which an
/// I/O-node crash does not touch): min-reduce of everyone's ok flag.
simkit::Task<bool> agree(mprt::Comm& c, bool ok) {
  std::array<double, 1> v{ok ? 1.0 : 0.0};
  co_await mprt::allreduce(c, std::span<double>(v), mprt::ReduceOp::kMin);
  co_return v[0] > 0.5;
}

/// Rank r's slice of the checkpoint file: `pieces` chunks interleaved
/// round-robin by rank, so the collective write/read really exchanges.
/// Every rank uses the same length for piece j (the division remainder is
/// spread one byte at a time over the leading pieces), so slot (j, rank)
/// never overlaps a neighbour even when state_bytes_per_rank is not a
/// multiple of the piece count.
std::vector<pario::Extent> state_extents(const Workload& w, int rank) {
  const auto pieces =
      static_cast<std::uint64_t>(std::max(w.state_pieces, 1));
  const std::uint64_t base = w.state_bytes_per_rank / pieces;
  const std::uint64_t rem = w.state_bytes_per_rank % pieces;
  const auto nprocs = static_cast<std::uint64_t>(w.nprocs);
  std::vector<pario::Extent> ext;
  ext.reserve(static_cast<std::size_t>(pieces));
  std::uint64_t prefix = 0;  // one rank's state bytes in pieces before j
  for (std::uint64_t j = 0; j < pieces; ++j) {
    const std::uint64_t len = base + (j < rem ? 1 : 0);
    if (len == 0) break;  // more pieces than bytes: the rest are empty
    ext.push_back({.file_offset =
                       prefix * nprocs +
                       static_cast<std::uint64_t>(rank) * len,
                   .length = len,
                   .buf_offset = prefix});
    prefix += len;
  }
  return ext;
}

/// Total payload of a delta covering steps (from_step, to_step].
std::uint64_t delta_payload_bytes(const Workload& w, int from_step,
                                  int to_step) {
  std::uint64_t total = 0;
  for (const auto& e : dirty_extents(w, from_step, to_step)) total += e.length;
  return total;
}

/// One link of the committed restore chain (a delta checkpoint).
struct ChainLink {
  pfs::FileId file = pfs::kInvalidFile;
  int from_step = 0;
  int to_step = 0;
  std::uint64_t per_rank_bytes = 0;
  simkit::Time commit_time = simkit::kTimeZero;  // scrubs after this kill it
};

/// The restore chain: last committed full checkpoint plus the consecutive
/// deltas committed on top of it.  Replayed in order at restart.
struct Chain {
  bool valid = false;
  pfs::FileId full_file = pfs::kInvalidFile;
  int full_step = 0;
  simkit::Time full_commit = simkit::kTimeZero;
  std::vector<ChainLink> deltas;
};

/// One issued async checkpoint: ranks stage snapshots into it and detach
/// drain tasks; the last drain to finish decides commit or drop.
struct AsyncRec {
  std::uint64_t epoch = 0;  // attempt epoch at issue (stale => dropped)
  int step = 0;             // steps covered (to_step)
  int prev_step = 0;        // chain must end here for a delta to commit
  bool full = false;
  pfs::FileId file = pfs::kInvalidFile;
  std::uint64_t per_rank_bytes = 0;
  int pending = 0;          // ranks whose drain has not finished
  bool failed = false;      // some rank's drain exhausted its retries
  simkit::Time issue_time = simkit::kTimeZero;
  simkit::Time snapshot_done = simkit::kTimeZero;  // last rank's stage copy
  std::vector<std::vector<std::byte>> staged;      // per rank (backed runs)
};

/// Mutable run state shared by the driver and every rank's coroutine.
/// Single-threaded simulation: no synchronization needed; the bookkeeping
/// fields change either on rank 0 (sync commits) or inside the last
/// finishing drain task (async commits), so each event writes them once.
struct RunState {
  bool prologue_done = false;
  bool have_ckpt = false;
  int ckpt_step = 0;     // steps covered by the last committed checkpoint
  int resume_step = 0;   // first step the next attempt executes
  bool failed = false;   // this attempt hit a coordinated failure
  bool productive = false;
  simkit::Time anchor = simkit::kTimeZero;  // lost-work accrues from here
  Chain chain;
  // Scrub-aware restore routing, recomputed by the driver before every
  // restart: which full-checkpoint copy the next restore reads, and which
  // scrub-invalidated copy (if any) health-aware recovery re-mirrors from
  // the surviving one after the restore.  kInvalidFile restore_source
  // means "the committed chain's full_file".
  pfs::FileId restore_source = pfs::kInvalidFile;
  pfs::FileId remirror_target = pfs::kInvalidFile;
  std::uint64_t epoch = 0;        // bumped per restart; stale drains drop
  std::uint64_t staged_bytes = 0; // async staging occupancy (all ranks)
  std::map<int, std::shared_ptr<AsyncRec>> inflight;  // by to_step
  Report rep;

  // Registry instruments (ckpt.*), resolved once in run(); all null when
  // metrics are off.  The policy-specific instruments are only created
  // for non-sync_full policies, so sync_full metrics output is unchanged.
  metrics::Histogram* m_write_s = nullptr;
  metrics::Histogram* m_lost_work_s = nullptr;
  metrics::Histogram* m_recovery_s = nullptr;
  metrics::Counter* m_checkpoints = nullptr;
  metrics::Counter* m_restarts = nullptr;
  metrics::Counter* m_bytes = nullptr;
  metrics::Gauge* m_staging = nullptr;        // ckpt.staging_bytes
  metrics::Histogram* m_overlap_s = nullptr;  // issue -> commit overlap
  metrics::Histogram* m_delta_bytes = nullptr;
  metrics::Histogram* m_stage_wait_s = nullptr;
  metrics::Counter* m_dropped = nullptr;
  metrics::Timeseries* ts_issue = nullptr;   // async issues: (time, step)
  metrics::Timeseries* ts_commit = nullptr;  // commits: (time, step);
                                             // drops: (time, -step)

  void resolve_meters(const Policy& pol) {
    if (metrics::Registry* r = metrics::current()) {
      m_write_s = &r->histogram("ckpt.write_s");
      m_lost_work_s = &r->histogram("ckpt.lost_work_s");
      m_recovery_s = &r->histogram("ckpt.recovery_s");
      m_checkpoints = &r->counter("ckpt.checkpoints");
      m_restarts = &r->counter("ckpt.restarts");
      m_bytes = &r->counter("ckpt.bytes");
      if (!pol.is_sync_full()) {
        m_staging = &r->gauge("ckpt.staging_bytes");
        m_overlap_s = &r->histogram("ckpt.drain_overlap_s");
        m_delta_bytes = &r->histogram("ckpt.delta_bytes", 1.0);
        m_stage_wait_s = &r->histogram("ckpt.stage_wait_s");
        m_dropped = &r->counter("ckpt.dropped");
        ts_issue = &r->timeseries("ckpt.issue");
        ts_commit = &r->timeseries("ckpt.commit");
      }
    }
  }

  void note_failure(simkit::Time now) {
    failed = true;
    if (productive) {
      rep.lost_work += now - anchor;
      if (m_lost_work_s) m_lost_work_s->observe(now - anchor);
      productive = false;
    }
  }
  void begin_productive(simkit::Time now) {
    productive = true;
    anchor = now;
  }

  void note_staging(std::int64_t delta_bytes_signed) {
    staged_bytes = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(staged_bytes) + delta_bytes_signed);
    if (m_staging) m_staging->set(static_cast<double>(staged_bytes));
  }

  /// Commit a checkpoint covering `step`: update the restore chain and the
  /// rollback anchor.  `snap_done` is the instant the committed state was
  /// captured — work performed after it is lost on the next rollback;
  /// `commit_now` is when the data became durable (scrubbing crashes after
  /// it invalidate the copy).
  void commit(int step, bool full, pfs::FileId file, int from_step,
              std::uint64_t per_rank_bytes, std::uint64_t bytes_written,
              simkit::Time snap_done, simkit::Time commit_now) {
    have_ckpt = true;
    ckpt_step = step;
    resume_step = step;
    if (full) {
      chain.valid = true;
      chain.full_file = file;
      chain.full_step = step;
      chain.full_commit = commit_now;
      chain.deltas.clear();
      restore_source = file;
      remirror_target = pfs::kInvalidFile;
      rep.full_checkpoints += 1;
    } else {
      chain.deltas.push_back(
          {file, from_step, step, per_rank_bytes, commit_now});
      rep.delta_checkpoints += 1;
      rep.delta_bytes += bytes_written;
    }
    rep.checkpoints += 1;
    rep.ckpt_bytes += bytes_written;
    anchor = std::max(anchor, snap_done);
    if (m_checkpoints) {
      m_checkpoints->inc();
      m_bytes->inc(bytes_written);
    }
  }

  /// Last drain of an async checkpoint finished: commit it, or drop it if
  /// it is stale (pre-restart epoch, job already complete), failed, or no
  /// longer extends the committed chain (a lost delta permanently breaks
  /// the chain until the next full checkpoint).
  void finalize_async(const std::shared_ptr<AsyncRec>& rec, simkit::Time now,
                      int nprocs) {
    auto it = inflight.find(rec->step);
    if (it != inflight.end() && it->second == rec) inflight.erase(it);
    const bool stale = rec->epoch != epoch || rep.completed;
    const bool extends =
        rec->full || (have_ckpt && ckpt_step == rec->prev_step);
    if (stale || rec->failed || rec->step <= ckpt_step || !extends) {
      rep.dropped_checkpoints += 1;
      if (m_dropped) m_dropped->inc();
      if (ts_commit) ts_commit->record(now, -static_cast<double>(rec->step));
      return;
    }
    const std::uint64_t bytes =
        rec->per_rank_bytes * static_cast<std::uint64_t>(nprocs);
    commit(rec->step, rec->full, rec->file, rec->prev_step,
           rec->per_rank_bytes, bytes, rec->snapshot_done, now);
    if (ts_commit) ts_commit->record(now, static_cast<double>(rec->step));
    if (m_overlap_s) m_overlap_s->observe(now - rec->issue_time);
    if (!rec->full && m_delta_bytes) {
      m_delta_bytes->observe(static_cast<double>(bytes));
    }
  }
};

}  // namespace

std::vector<pario::Extent> dirty_extents(const Workload& w, int from_step,
                                         int to_step) {
  std::vector<pario::Extent> out;
  const std::uint64_t state = w.state_bytes_per_rank;
  const std::uint64_t db = dirty_window_bytes(w);
  if (state == 0 || db == 0 || to_step <= from_step) return out;
  const auto count = static_cast<std::uint64_t>(to_step - from_step);
  const std::uint64_t total = count * db;
  if (total >= state || total / count != db) {  // laps (or overflows): all
    out.push_back({.file_offset = 0, .length = state, .buf_offset = 0});
    return out;
  }
  const std::uint64_t start =
      (static_cast<std::uint64_t>(from_step) * db) % state;
  if (start + total <= state) {
    out.push_back({.file_offset = start, .length = total, .buf_offset = 0});
  } else {
    const std::uint64_t first = state - start;
    out.push_back({.file_offset = start, .length = first, .buf_offset = 0});
    out.push_back(
        {.file_offset = 0, .length = total - first, .buf_offset = first});
  }
  return out;
}

int last_dirty_step(const Workload& w, int at_step, std::uint64_t i) {
  const std::uint64_t state = w.state_bytes_per_rank;
  const std::uint64_t db = dirty_window_bytes(w);
  if (state == 0 || i >= state || db == 0 || at_step <= 0) return 0;
  if (db >= state) return at_step;
  for (int t = at_step; t >= 1; --t) {
    const std::uint64_t start =
        (static_cast<std::uint64_t>(t - 1) * db) % state;
    const std::uint64_t rel = (i + state - start) % state;
    if (rel < db) return t;
  }
  return 0;
}

Report run(hw::Machine& machine, pfs::StripedFs& fs,
           fault::Injector* injector, Workload w, Options opt) {
  simkit::Engine& eng = machine.engine();
  const simkit::Time job_start = eng.now();
  const Policy pol = opt.policy;
  const bool incremental = pol.data == Policy::Data::kIncremental;
  const bool async_write = pol.write == Policy::Write::kAsync;
  const int full_every = std::max(pol.full_every, 1);

  // -- files ---------------------------------------------------------------
  // Checkpoint files follow opt.placement: kStriped uses the default
  // whole-partition layout (identical to the pre-placement engine); the
  // pinned placements confine the primary to failure domain 0 and the
  // mirror to domain 0 (kSameDomain) or the next domain (kOtherDomain).
  auto create_ckpt_target = [&](const std::string& nm, bool mirror) {
    if (opt.placement == Options::Placement::kStriped ||
        machine.io_domain_count() == 0) {
      return fs.create(nm, w.backed_state);
    }
    const std::size_t d =
        (mirror && opt.placement == Options::Placement::kOtherDomain)
            ? 1 % machine.io_domain_count()
            : 0;
    return fs.create_placed(nm, w.backed_state, machine.io_domain_members(d));
  };
  const pfs::FileId ckpt_file =
      create_ckpt_target("ckpt." + w.name, /*mirror=*/false);
  const pfs::FileId ckpt_replica =
      opt.replicate_checkpoint
          ? create_ckpt_target("ckpt." + w.name + ".mirror", /*mirror=*/true)
          : pfs::kInvalidFile;
  std::vector<pfs::FileId> priv;
  pfs::FileId dump = pfs::kInvalidFile;
  if (w.io == StepIo::kPrivateRead) {
    priv.reserve(static_cast<std::size_t>(w.nprocs));
    for (int r = 0; r < w.nprocs; ++r) {
      priv.push_back(fs.create(w.name + ".priv." + std::to_string(r)));
    }
  } else if (w.io == StepIo::kCollectiveDump) {
    dump = fs.create(w.name + ".dump");
  }
  // Non-sync_full policies create more checkpoint targets lazily, AFTER
  // the files above, so the sync_full file/stripe layout is untouched:
  // a second full-checkpoint buffer for async double-buffering (an
  // in-flight full must never overwrite the committed one) and one file
  // per delta, cached by checkpoint index so restarted attempts reuse it.
  pfs::FileId ckpt_file_b = pfs::kInvalidFile;
  std::map<int, pfs::FileId> delta_file_by_k;
  auto delta_file = [&](int k) {
    auto it = delta_file_by_k.find(k);
    if (it == delta_file_by_k.end()) {
      it = delta_file_by_k
               .emplace(k, create_ckpt_target("ckpt." + w.name + ".d" +
                                                  std::to_string(k),
                                              /*mirror=*/false))
               .first;
    }
    return it->second;
  };

  // Step/prologue I/O retries without fail-over (those files have no
  // mirror); sync_full checkpoint restores may fail over to the mirror.
  pario::RetryPolicy step_retry = opt.retry;
  step_retry.replica = pfs::kInvalidFile;
  pario::RetryPolicy ckpt_retry = opt.retry;
  ckpt_retry.replica = pol.is_sync_full() ? ckpt_replica : pfs::kInvalidFile;
  pario::RetryPolicy drain_retry =
      opt.drain_retry.max_attempts > 0 ? opt.drain_retry : step_retry;
  drain_retry.replica = pfs::kInvalidFile;  // drains never fail over

  // Under the ordered_drain durability policy a checkpoint only commits
  // once its acked bytes are on disk: every checkpoint write is followed
  // by an fsync barrier, so a later server crash cannot silently hollow
  // out a committed copy.  The other policies skip the barrier — that is
  // exactly the durability/overhead tradeoff the bench measures.
  const bool ordered_drain =
      fs.params().server.durability.policy ==
      iosrv::DurabilityPolicy::kOrderedDrain;

  // Health-aware recovery: every job I/O path feeds one tracker (pure
  // observation — no simulated events), and checkpoint restores hedge
  // against the mirror once a latency estimate exists.
  std::optional<pario::HealthTracker> health;
  if (opt.health_aware) {
    health.emplace(fs.io_node_count());
    step_retry.health = &*health;
    drain_retry.health = &*health;
    ckpt_retry.health = &*health;
    ckpt_retry.hedge_latency_multiple = opt.hedge_latency_multiple;
    if (injector && fs.params().server.durability.crash_semantics) {
      // Crash/recovery edges feed the tracker directly, so routing does
      // not need to observe a failed request to learn a node died, and
      // hedges steer clear of freshly rebooted (cold-cache) servers.
      // Gated on crash_semantics: without it a reboot leaves the cache
      // warm, so there is no cold window for routing to avoid.
      // The listeners reference this run's tracker: the injector must
      // not be re-armed for another run (no caller does).
      pario::HealthTracker* h = &*health;
      simkit::Engine* e = &eng;
      injector->on_node_crash(
          [h, e](std::size_t n, bool) { h->note_crash(n, e->now()); });
      injector->on_node_recovery(
          [h, e](std::size_t n) { h->note_recovery(n, e->now()); });
    }
  }

  RunState st;
  st.rep.policy = pol;
  st.resolve_meters(pol);
  pario::TwoPhaseOptions tp_step;
  tp_step.retry = &step_retry;
  tp_step.retry_stats = &st.rep.retry;
  pario::TwoPhaseOptions tp_ckpt_write = tp_step;  // copies go out whole
  pario::TwoPhaseOptions tp_ckpt_read;
  tp_ckpt_read.retry = &ckpt_retry;
  tp_ckpt_read.retry_stats = &st.rep.retry;
  pario::TwoPhaseOptions tp_delta_read = tp_step;  // deltas have no mirror

  const int interval = std::max(opt.ckpt_interval_steps, 0);
  const std::uint64_t chunk =
      std::max<std::uint64_t>(w.io_chunk_bytes, 1);
  const std::uint64_t rank_budget = std::max<std::uint64_t>(
      pol.staging_budget_bytes / std::max(w.nprocs, 1), 1);

  // Per-rank live state buffers (content-backed runs only).
  std::vector<std::vector<std::byte>> state;
  if (w.backed_state) {
    state.assign(static_cast<std::size_t>(w.nprocs),
                 std::vector<std::byte>(w.state_bytes_per_rank));
  }
  auto state_span = [&](int r) -> std::span<std::byte> {
    if (!w.backed_state) return {};
    return std::span<std::byte>(state[static_cast<std::size_t>(r)]);
  };
  // Live-state content model: byte i of rank r after step s holds the
  // pattern of the last step whose dirty window covered i (step 0 = the
  // initial state).  With the default dirty fraction of 1.0 every step
  // rewrites everything, which reduces to the pre-incremental behavior.
  auto init_state = [&](int r) {
    if (!w.backed_state) return;
    auto& buf = state[static_cast<std::size_t>(r)];
    for (std::uint64_t i = 0; i < w.state_bytes_per_rank; ++i) {
      buf[i] = pattern_byte(r, 0, i);
    }
  };
  auto apply_step = [&](int r, int done_step) {
    if (!w.backed_state) return;
    auto& buf = state[static_cast<std::size_t>(r)];
    for (const auto& e : dirty_extents(w, done_step - 1, done_step)) {
      for (std::uint64_t j = 0; j < e.length; ++j) {
        buf[e.file_offset + j] =
            pattern_byte(r, done_step, e.file_offset + j);
      }
    }
  };
  auto gather_delta = [&](int r, int from_step, int to_step) {
    std::vector<std::byte> payload;
    if (!w.backed_state) return payload;
    const auto& buf = state[static_cast<std::size_t>(r)];
    payload.resize(delta_payload_bytes(w, from_step, to_step));
    for (const auto& e : dirty_extents(w, from_step, to_step)) {
      std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(e.file_offset),
                  e.length,
                  payload.begin() + static_cast<std::ptrdiff_t>(e.buf_offset));
    }
    return payload;
  };

  // -- async background drain ----------------------------------------------
  // One detached task per rank per issued checkpoint: stream the staged
  // snapshot through the striped FS with large per-rank calls.  This is
  // where async checkpoint traffic genuinely contends with foreground I/O
  // at the I/O nodes.  The last drain to finish commits (or drops) the
  // checkpoint; failures are absorbed here — a lost background checkpoint
  // must not crash the job, it only weakens the restore chain.
  std::vector<std::optional<simkit::ProcHandle>> prev_drain(
      static_cast<std::size_t>(w.nprocs));
  // Bounded drain concurrency (Options::io_fan_in): at scale, P parallel
  // drain streams would bury the I/O partition; a job-wide slot pool caps
  // them the same way the leader topology caps the collective fan-in.
  std::optional<simkit::Resource> drain_slots;
  if (opt.io_fan_in > 0) {
    drain_slots.emplace(eng, static_cast<std::uint64_t>(opt.io_fan_in));
  }
  auto drain_body = [&](std::shared_ptr<AsyncRec> rec, int r,
                        hw::NodeId node,
                        std::vector<pario::WritePiece> pieces)
      -> simkit::Task<void> {
    std::optional<simkit::ScopedLease> lease;
    if (drain_slots) {
      lease.emplace(*drain_slots);
      co_await lease->acquire();
    }
    const simkit::Time d0 = eng.now();
    bool ok = true;
    try {
      std::span<const std::byte> payload;
      if (w.backed_state) {
        payload = rec->staged[static_cast<std::size_t>(r)];
      }
      co_await pario::resilient_pwritev(fs, node, rec->file,
                                        std::move(pieces), payload,
                                        drain_retry, &st.rep.retry);
      if (ordered_drain) {
        // Same barrier as the sync path: an async checkpoint may not
        // commit while its bytes are still acked-but-buffered at a
        // server that could crash and lose them.
        co_await pario::resilient_fsync(fs, node, rec->file, drain_retry,
                                        &st.rep.retry);
      }
    } catch (const pfs::IoError&) {
      ok = false;
    }
    st.rep.drain_time += eng.now() - d0;
    st.note_staging(-static_cast<std::int64_t>(rec->per_rank_bytes));
    if (w.backed_state) {
      auto& staged = rec->staged[static_cast<std::size_t>(r)];
      staged.clear();
      staged.shrink_to_fit();
    }
    if (!ok) rec->failed = true;
    rec->pending -= 1;
    if (rec->pending == 0) st.finalize_async(rec, eng.now(), w.nprocs);
  };

  auto body = [&](mprt::Comm& c) -> simkit::Task<void> {
    const int r = c.rank();
    const hw::NodeId node = c.node();

    // One-time prologue: materialize the private input files every step
    // re-reads (SCF writes its integral file once, in iteration 1).  With
    // prologue_writes_private unset the files count as pre-existing input
    // (unbacked files serve reads without prior writes), so no prologue.
    if (w.io == StepIo::kPrivateRead && w.prologue_writes_private &&
        !st.prologue_done) {
      bool ok = true;
      try {
        for (std::uint64_t off = 0; off < w.io_bytes_per_rank_step;
             off += chunk) {
          const std::uint64_t len =
              std::min(chunk, w.io_bytes_per_rank_step - off);
          co_await pario::resilient_pwrite(
              fs, node, priv[static_cast<std::size_t>(r)], off, len, {},
              step_retry, &st.rep.retry);
        }
      } catch (const pfs::IoError&) {
        ok = false;
      }
      ok = co_await agree(c, ok);
      if (!ok) {
        if (r == 0) st.note_failure(eng.now());
        co_return;
      }
      if (r == 0) st.prologue_done = true;
    }

    // Restore from the last committed checkpoint chain (restarts only):
    // the full checkpoint, then every consecutive delta on top of it.
    if (st.have_ckpt && st.resume_step > 0) {
      const simkit::Time t0 = eng.now();
      bool ok = true;
      try {
        const pfs::FileId full_src =
            st.restore_source != pfs::kInvalidFile ? st.restore_source
                                                   : st.chain.full_file;
        co_await pario::TwoPhase::read(c, fs, full_src,
                                       state_extents(w, r), state_span(r),
                                       nullptr, tp_ckpt_read);
        for (const ChainLink& link : st.chain.deltas) {
          std::vector<std::byte> scratch;
          std::span<std::byte> scratch_span;
          if (w.backed_state) {
            scratch.resize(link.per_rank_bytes);
            scratch_span = scratch;
          }
          std::vector<pario::Extent> mine{
              {.file_offset = static_cast<std::uint64_t>(r) *
                              link.per_rank_bytes,
               .length = link.per_rank_bytes,
               .buf_offset = 0}};
          co_await pario::TwoPhase::read(c, fs, link.file, std::move(mine),
                                         scratch_span, nullptr,
                                         tp_delta_read);
          if (w.backed_state) {  // scatter the delta into the live state
            auto& buf = state[static_cast<std::size_t>(r)];
            for (const auto& e :
                 dirty_extents(w, link.from_step, link.to_step)) {
              std::copy_n(
                  scratch.begin() + static_cast<std::ptrdiff_t>(e.buf_offset),
                  e.length,
                  buf.begin() + static_cast<std::ptrdiff_t>(e.file_offset));
            }
          }
        }
        if (w.backed_state) {
          const auto& buf = state[static_cast<std::size_t>(r)];
          for (std::uint64_t i = 0; i < w.state_bytes_per_rank; ++i) {
            if (buf[i] !=
                pattern_byte(r, last_dirty_step(w, st.ckpt_step, i), i)) {
              st.rep.state_verified = false;
              break;
            }
          }
        }
        // Health-aware recovery re-mirrors a scrub-invalidated copy from
        // the state just restored, so the next burst cannot strand the job
        // with a single copy (counted as a repaired divergence).
        if (st.remirror_target != pfs::kInvalidFile) {
          co_await pario::TwoPhase::write(c, fs, st.remirror_target,
                                          state_extents(w, r), state_span(r),
                                          nullptr, tp_ckpt_write);
        }
      } catch (const pfs::IoError&) {
        ok = false;
      }
      ok = co_await agree(c, ok);
      if (r == 0) {
        st.rep.recovery_time += eng.now() - t0;
        if (st.m_recovery_s) st.m_recovery_s->observe(eng.now() - t0);
        if (ok && st.remirror_target != pfs::kInvalidFile) {
          health->note_repaired();
          // The re-mirrored copy is whole again as of now: future scrub
          // checks must measure from this instant, and restores may fail
          // over to it again.
          st.chain.full_commit = eng.now();
          st.remirror_target = pfs::kInvalidFile;
        }
      }
      if (!ok) {
        if (r == 0) st.note_failure(eng.now());
        co_return;
      }
    } else {
      init_state(r);  // fresh attempt from step 0: (re)set initial state
    }
    if (r == 0) st.begin_productive(eng.now());

    for (int step = st.resume_step; step < w.steps; ++step) {
      co_await machine.compute(w.flops_per_rank_step);
      apply_step(r, step + 1);

      if (w.io != StepIo::kNone) {
        bool ok = true;
        try {
          if (w.io == StepIo::kPrivateRead) {
            for (std::uint64_t off = 0; off < w.io_bytes_per_rank_step;
                 off += chunk) {
              const std::uint64_t len =
                  std::min(chunk, w.io_bytes_per_rank_step - off);
              co_await pario::resilient_pread(
                  fs, node, priv[static_cast<std::size_t>(r)], off, len, {},
                  step_retry, &st.rep.retry);
            }
          } else {  // kCollectiveDump: shared solution file, rank-blocked
            std::vector<pario::Extent> mine{
                {.file_offset = static_cast<std::uint64_t>(r) *
                                w.io_bytes_per_rank_step,
                 .length = w.io_bytes_per_rank_step,
                 .buf_offset = 0}};
            co_await pario::TwoPhase::write(c, fs, dump, std::move(mine), {},
                                            nullptr, tp_step);
          }
        } catch (const pfs::IoError&) {
          ok = false;
        }
        ok = co_await agree(c, ok);
        if (!ok) {
          if (r == 0) st.note_failure(eng.now());
          co_return;
        }
      }

      // Coordinated checkpoint after every `interval` completed steps (not
      // after the last step — the job is finished, nothing left to lose).
      const int done_steps = step + 1;
      if (interval > 0 && done_steps % interval == 0 &&
          done_steps < w.steps) {
        // Checkpoint index decides full vs delta deterministically (the
        // first and every full_every-th checkpoint are full), so restarted
        // attempts re-issue the same kind to the same file.
        const int k = done_steps / interval;
        const bool full = !incremental || ((k - 1) % full_every) == 0;
        const int prev_step = done_steps - interval;
        const std::uint64_t per_rank_bytes =
            full ? w.state_bytes_per_rank
                 : delta_payload_bytes(w, prev_step, done_steps);

        if (!async_write) {
          // -- synchronous: ranks block inside the coordinated write ------
          const simkit::Time t0 = eng.now();
          bool ok = true;
          try {
            if (full) {
              co_await pario::TwoPhase::write(c, fs, ckpt_file,
                                              state_extents(w, r),
                                              state_span(r), nullptr,
                                              tp_ckpt_write);
              if (pol.is_sync_full() && ckpt_replica != pfs::kInvalidFile) {
                co_await pario::TwoPhase::write(c, fs, ckpt_replica,
                                                state_extents(w, r),
                                                state_span(r), nullptr,
                                                tp_ckpt_write);
              }
            } else {
              const std::vector<std::byte> payload =
                  gather_delta(r, prev_step, done_steps);
              std::vector<pario::Extent> mine{
                  {.file_offset =
                       static_cast<std::uint64_t>(r) * per_rank_bytes,
                   .length = per_rank_bytes,
                   .buf_offset = 0}};
              co_await pario::TwoPhase::write(c, fs, delta_file(k),
                                              std::move(mine), payload,
                                              nullptr, tp_ckpt_write);
            }
            if (ordered_drain) {
              // Durability barrier before the commit agreement: the
              // checkpoint is only declared good once every acked byte
              // is on disk.  A crash-truncated drain throws here and
              // turns the commit into a coordinated failure instead of
              // a silently hollow checkpoint.
              co_await pario::resilient_fsync(
                  fs, node, full ? ckpt_file : delta_file(k), step_retry,
                  &st.rep.retry);
              if (full && pol.is_sync_full() &&
                  ckpt_replica != pfs::kInvalidFile) {
                co_await pario::resilient_fsync(fs, node, ckpt_replica,
                                                step_retry, &st.rep.retry);
              }
            }
          } catch (const pfs::IoError&) {
            ok = false;
          }
          ok = co_await agree(c, ok);
          if (r == 0) {
            if (ok) {
              const std::uint64_t bytes =
                  per_rank_bytes * static_cast<std::uint64_t>(w.nprocs) *
                  (full && pol.is_sync_full() &&
                           ckpt_replica != pfs::kInvalidFile
                       ? 2u
                       : 1u);
              st.rep.ckpt_overhead += eng.now() - t0;
              st.commit(done_steps, full,
                        full ? ckpt_file : delta_file(k), prev_step,
                        per_rank_bytes, bytes, eng.now(), eng.now());
              if (st.m_checkpoints) st.m_write_s->observe(eng.now() - t0);
              if (!full && st.m_delta_bytes) {
                st.m_delta_bytes->observe(static_cast<double>(bytes));
              }
              st.begin_productive(eng.now());
            } else {
              st.note_failure(eng.now());
            }
          }
          if (!ok) co_return;
        } else {
          // -- asynchronous: stage a snapshot, drain in the background ----
          // Blocking cost = staging copy + waiting for this rank's previous
          // drain (one snapshot per rank in flight) + a full degrade to
          // blocking when the snapshot exceeds the rank's staging budget.
          const simkit::Time t0 = eng.now();
          if (prev_drain[static_cast<std::size_t>(r)] &&
              !prev_drain[static_cast<std::size_t>(r)]->done()) {
            co_await prev_drain[static_cast<std::size_t>(r)]->join();
            if (r == 0) {
              st.rep.stage_wait += eng.now() - t0;
              if (st.m_stage_wait_s) {
                st.m_stage_wait_s->observe(eng.now() - t0);
              }
            }
          }

          std::shared_ptr<AsyncRec> rec;
          auto it = st.inflight.find(done_steps);
          if (it != st.inflight.end() && it->second->epoch == st.epoch) {
            rec = it->second;
          } else {
            rec = std::make_shared<AsyncRec>();
            rec->epoch = st.epoch;
            rec->step = done_steps;
            rec->prev_step = prev_step;
            rec->full = full;
            rec->per_rank_bytes = per_rank_bytes;
            rec->pending = w.nprocs;
            rec->issue_time = eng.now();
            if (full) {
              // Double-buffer: never target the committed full checkpoint.
              if (st.chain.valid && st.chain.full_file == ckpt_file) {
                if (ckpt_file_b == pfs::kInvalidFile) {
                  ckpt_file_b = create_ckpt_target("ckpt." + w.name + ".b",
                                                   /*mirror=*/false);
                }
                rec->file = ckpt_file_b;
              } else {
                rec->file = ckpt_file;
              }
            } else {
              rec->file = delta_file(k);
            }
            if (w.backed_state) {
              rec->staged.resize(static_cast<std::size_t>(w.nprocs));
            }
            st.inflight[done_steps] = rec;
            if (st.ts_issue) {
              st.ts_issue->record(eng.now(),
                                  static_cast<double>(done_steps));
            }
          }

          // Stage: a timed memory copy into the bounded staging buffer.
          co_await machine.mem_copy(per_rank_bytes);
          if (w.backed_state) {
            rec->staged[static_cast<std::size_t>(r)] =
                full ? state[static_cast<std::size_t>(r)]
                     : gather_delta(r, prev_step, done_steps);
          }
          rec->snapshot_done = std::max(rec->snapshot_done, eng.now());
          st.note_staging(static_cast<std::int64_t>(per_rank_bytes));

          std::vector<pario::WritePiece> pieces;
          if (full) {
            for (const auto& e : state_extents(w, r)) {
              pieces.push_back({e.file_offset, e.length, e.buf_offset});
            }
          } else {
            pieces.push_back(
                {static_cast<std::uint64_t>(r) * per_rank_bytes,
                 per_rank_bytes, 0});
          }
          simkit::ProcHandle h =
              eng.spawn(drain_body(rec, r, node, std::move(pieces)),
                        "ckpt.drain." + w.name);
          prev_drain[static_cast<std::size_t>(r)] = h;
          if (per_rank_bytes > rank_budget) {
            co_await h.join();  // budget exceeded: degrade to blocking
          }
          if (r == 0) st.rep.ckpt_overhead += eng.now() - t0;
          if (r == 0 && st.m_write_s) st.m_write_s->observe(eng.now() - t0);
        }
      }
    }
  };

  // -- drive: attempt / agree-on-failure / wait-out-outage / restart ------
  // Cluster::run keeps a reference to the body function until the ranks
  // finish; a named object (not a temporary at the call site) outlives it.
  const std::function<simkit::Task<void>(mprt::Comm&)> rank_body = body;
  for (;;) {
    st.failed = false;
    mprt::Cluster cluster(machine, w.nprocs);
    if (opt.io_fan_in > 0) {
      // ~io_fan_in leader groups: the leaders are the two-phase
      // aggregators, and member->leader traffic rides the same routing.
      const int width = (w.nprocs + opt.io_fan_in - 1) / opt.io_fan_in;
      cluster.set_topology(
          {mprt::CollectiveTopology::Kind::kTwoLevel, width});
    }
    simkit::ProcHandle main =
        eng.spawn(cluster.run(rank_body), "ckpt." + w.name);
    // Step (not run): a full drain would also consume future fault edges
    // and fling the clock to the plan horizon.
    while (!main.done() && eng.step()) {
    }
    if (!main.done()) break;  // starved: a bug, surfaces as !completed
    if (!st.failed) {
      st.rep.completed = true;
      break;
    }
    st.rep.restarts += 1;
    if (st.m_restarts) st.m_restarts->inc();
    // In-flight drains belong to the attempt that just died: whatever they
    // commit from here on no longer matches the job's rollback decision,
    // so a new epoch sends them to the dropped pile.
    st.epoch += 1;
    if (st.rep.restarts > opt.max_restarts) break;
    if (injector) {
      // Sit out the remaining outage: the reboot edges are scheduled
      // events, so run_until lands the clock exactly on the last one.
      const simkit::Time up = injector->all_up_by(eng.now());
      if (up > eng.now()) {
        const simkit::Time t0 = eng.now();
        eng.run_until(up);
        st.rep.recovery_time += eng.now() - t0;
        if (st.m_recovery_s) st.m_recovery_s->observe(eng.now() - t0);
      }
    }
    // Decide whether the committed chain survived the scrubbing crashes
    // since commit, and route the next restore accordingly.  Pure plan
    // queries — with no scrubbing windows armed (every pre-domain plan)
    // this resolves to exactly the old behavior.
    if (injector && st.have_ckpt) {
      const simkit::Time now = eng.now();
      const int lost_before = st.rep.lost_checkpoints;
      auto scrubbed = [&](pfs::FileId f, simkit::Time since) {
        for (const std::uint32_t s : fs.stripe_map(f).server_list()) {
          if (injector->node_scrubbed_in(s, since, now)) return true;
        }
        // A writeback-loss window is a scrub in miniature: a plain crash
        // that destroyed acked-but-unflushed bytes of this copy after its
        // commit leaves the copy hollow, so the chain must not vouch for
        // it.  (ordered_drain never lands here — its commits fsync first,
        // so the loss precedes the commit and fails the agreement.)
        return fs.file_lost_in(f, since, now);
      };
      // A scrubbed delta truncates the replay chain at that link; the
      // links above it are unreachable and count as lost.
      for (std::size_t i = 0; i < st.chain.deltas.size(); ++i) {
        if (scrubbed(st.chain.deltas[i].file,
                     st.chain.deltas[i].commit_time)) {
          st.rep.lost_checkpoints +=
              static_cast<int>(st.chain.deltas.size() - i);
          st.chain.deltas.resize(i);
          st.ckpt_step = st.chain.deltas.empty()
                             ? st.chain.full_step
                             : st.chain.deltas.back().to_step;
          st.resume_step = st.ckpt_step;
          break;
        }
      }
      const pfs::FileId mirror =
          pol.is_sync_full() ? ckpt_replica : pfs::kInvalidFile;
      const bool primary_ok =
          !scrubbed(st.chain.full_file, st.chain.full_commit);
      const bool mirror_ok =
          mirror != pfs::kInvalidFile &&
          !scrubbed(mirror, st.chain.full_commit);
      if (!primary_ok && !mirror_ok) {
        // Every copy of the full checkpoint is gone: the whole chain is
        // unrestorable — back to step 0.
        st.rep.lost_checkpoints +=
            1 + static_cast<int>(st.chain.deltas.size());
        st.have_ckpt = false;
        st.ckpt_step = 0;
        st.resume_step = 0;
        st.chain = Chain{};
        st.restore_source = pfs::kInvalidFile;
        st.remirror_target = pfs::kInvalidFile;
        ckpt_retry.replica = mirror;
      } else if (primary_ok && mirror_ok) {
        st.restore_source = st.chain.full_file;
        ckpt_retry.replica = mirror;
        st.remirror_target = pfs::kInvalidFile;
        if (health) {
          // Both copies are whole: read the one whose servers look
          // healthier, keep the other as the fail-over/hedge target.
          const auto a = fs.stripe_map(st.chain.full_file).server_list();
          const auto b = fs.stripe_map(mirror).server_list();
          if (health->pick_healthier(a, b, now) == 1) {
            st.restore_source = mirror;
            ckpt_retry.replica = st.chain.full_file;
          }
        }
      } else {
        // One copy survived; nothing valid to fail over to.  Health-aware
        // recovery re-mirrors the scrubbed copy after the restore.
        const pfs::FileId good = primary_ok ? st.chain.full_file : mirror;
        const pfs::FileId bad = primary_ok ? mirror : st.chain.full_file;
        st.restore_source = good;
        ckpt_retry.replica = pfs::kInvalidFile;
        st.remirror_target =
            health && bad != pfs::kInvalidFile ? bad : pfs::kInvalidFile;
      }
      const int newly_lost = st.rep.lost_checkpoints - lost_before;
      if (newly_lost > 0) {
        if (metrics::Registry* reg = metrics::current()) {
          reg->counter("ckpt.lost_checkpoints")
              .inc(static_cast<std::uint64_t>(newly_lost));
        }
      }
    }
  }
  st.rep.exec_time = eng.now() - job_start;
  if (health) {
    st.rep.hedged_reads = health->hedges_issued();
    st.rep.hedge_wins = health->hedge_wins();
    st.rep.divergences_repaired =
        static_cast<int>(health->divergences_repaired());
  }

  // Drain leftover fault edges and background checkpoint drains so their
  // coroutine frames don't leak (they are finite processes; the
  // measurement above is already taken, so the clock moving to the plan
  // horizon is harmless — completions past this point count as dropped).
  eng.run();
  return st.rep;
}

double young_interval(double ckpt_cost_s, double mtbf_s) {
  if (ckpt_cost_s <= 0.0 || mtbf_s <= 0.0) return 0.0;
  return std::sqrt(2.0 * ckpt_cost_s * mtbf_s);
}

double young_daly_interval(double ckpt_cost_s, double mtbf_s) {
  if (ckpt_cost_s <= 0.0 || mtbf_s <= 0.0) return 0.0;
  if (ckpt_cost_s >= 2.0 * mtbf_s) return mtbf_s;
  const double x = ckpt_cost_s / (2.0 * mtbf_s);
  return std::sqrt(2.0 * ckpt_cost_s * mtbf_s) *
             (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
         ckpt_cost_s;
}

}  // namespace ckpt
