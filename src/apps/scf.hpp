// apps/scf.hpp — the SCF 1.1 workload (NWChem Hartree–Fock, disk-based).
//
// Structure (paper §2): iteration 1 evaluates ~N^4/8 two-electron
// integrals (300-500 flops each, screening drops most) and writes the
// survivors packed into large chunks into a per-process private file;
// every later iteration re-reads its entire private file to rebuild the
// Fock matrix.  The application is therefore extremely read-intensive
// (Table 2: 95.6% of I/O time in reads, I/O 54% of execution).
//
// The three versions of the paper's Figure 1:
//   kOriginal        — Fortran record I/O (mostly sequential reads),
//   kPassion         — PASSION direct calls (explicit seek+read pairs,
//                      which is why Table 3 shows 604k cheap seeks),
//   kPassionPrefetch — PASSION iread one chunk ahead; I/O time accounted
//                      as wait + copy, per the paper's methodology.
#pragma once

#include <cstdint>

#include "apps/common.hpp"
#include "hw/machine.hpp"

namespace apps {

enum class ScfVersion : std::uint8_t {
  kOriginal,
  kPassion,
  kPassionPrefetch,
  /// "Direct" SCF: integrals are recomputed every iteration and nothing
  /// touches the disk — the version the paper says users fall back to at
  /// large processor counts, where the I/O versions collapse.
  kDirect,
};

constexpr const char* to_string(ScfVersion v) {
  switch (v) {
    case ScfVersion::kOriginal: return "O";
    case ScfVersion::kPassion: return "P";
    case ScfVersion::kPassionPrefetch: return "F";
    case ScfVersion::kDirect: return "D";
  }
  return "?";
}

struct ScfConfig {
  ScfVersion version = ScfVersion::kOriginal;
  int nprocs = 4;
  std::size_t io_nodes = 12;          // tuple Sf (stripe factor)
  std::uint64_t memory_kb = 64;       // tuple M: I/O chunk/buffer size
  std::uint64_t stripe_unit_kb = 64;  // tuple Su

  // Problem: SMALL N=108, MEDIUM N=140, LARGE N=285 (paper Figure 1).
  int n_basis = 285;
  int iterations = 10;  // 1 write iteration + (iterations-1) read passes
  /// Fraction of the N^4/8 integrals surviving Schwarz screening; 0.19
  /// lands the LARGE integral file near the paper's 2.5 GB.
  double screening = 0.19;
  double eval_flops_per_integral = 450.0;
  double fock_flops_per_integral = 100.0;
  std::uint64_t bytes_per_integral = 16;  // value + packed index label
  /// Per-rank static imbalance of integral counts (SCF 1.1 does not
  /// balance files; SCF 3.0 does).
  double imbalance = 0.10;

  /// Volume scale for quick runs (1.0 = paper-sized op counts).
  double scale = 1.0;

  std::uint64_t total_integrals() const {
    const double n4 = static_cast<double>(n_basis) * n_basis *
                      static_cast<double>(n_basis) * n_basis / 8.0;
    return static_cast<std::uint64_t>(n4 * screening * scale);
  }
  std::uint64_t chunk_bytes() const { return memory_kb * 1024; }
};

/// Run SCF 1.1 on a freshly built large-Paragon model.
RunResult run_scf11(const ScfConfig& cfg);

}  // namespace apps
