#include "apps/btio.hpp"

#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pario/extent.hpp"
#include "pario/twophase.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace apps {
namespace {

struct RankCtx {
  const BtioConfig* cfg;
  pfs::StripedFs* fs;
  pfs::FileId file;
  trace::IoTracer tracer;
  simkit::Duration compute_time = 0.0;
};

/// The pencils (x-rows) rank r owns in one solution dump, as file extents
/// relative to the dump's base offset.
std::vector<pario::Extent> rank_pencils(const BtioConfig& cfg, int rank,
                                        int q) {
  const std::uint64_t n = cfg.grid_n();
  const std::uint64_t row_bytes = n * cfg.cell_bytes();
  const std::uint64_t ylo = static_cast<std::uint64_t>(rank % q) * n /
                            static_cast<std::uint64_t>(q);
  const std::uint64_t yhi = static_cast<std::uint64_t>(rank % q + 1) * n /
                            static_cast<std::uint64_t>(q);
  const std::uint64_t zlo = static_cast<std::uint64_t>(rank / q) * n /
                            static_cast<std::uint64_t>(q);
  const std::uint64_t zhi = static_cast<std::uint64_t>(rank / q + 1) * n /
                            static_cast<std::uint64_t>(q);
  std::vector<pario::Extent> out;
  out.reserve((yhi - ylo) * (zhi - zlo));
  std::uint64_t buf = 0;
  for (std::uint64_t z = zlo; z < zhi; ++z) {
    for (std::uint64_t y = ylo; y < yhi; ++y) {
      out.push_back(pario::Extent{(z * n + y) * row_bytes, row_bytes, buf});
      buf += row_bytes;
    }
  }
  return out;
}

simkit::Task<void> btio_rank(mprt::Comm& c, RankCtx& ctx, int q) {
  const BtioConfig& cfg = *ctx.cfg;
  hw::Machine& machine = c.machine();
  simkit::Engine& eng = c.engine();
  const std::uint64_t n = cfg.grid_n();
  const double cells_per_rank = static_cast<double>(n * n * n) /
                                static_cast<double>(c.size());
  const std::uint64_t dump_bytes = cfg.dump_bytes();

  auto pencils = rank_pencils(cfg, c.rank(), q);
  pfs::FileHandle h =
      co_await ctx.fs->open(c.node(), ctx.file, &ctx.tracer);

  for (int d = 0; d < cfg.effective_dumps(); ++d) {
    // Solver steps between dumps.
    const simkit::Time t0 = eng.now();
    co_await machine.compute(cells_per_rank * cfg.flops_per_cell_step *
                             cfg.steps_per_dump);
    ctx.compute_time += eng.now() - t0;

    const std::uint64_t base =
        static_cast<std::uint64_t>(d) * dump_bytes;
    if (cfg.collective) {
      std::vector<pario::Extent> mine = pencils;
      for (auto& e : mine) e.file_offset += base;
      pario::TwoPhaseStats stats;
      const simkit::Time w0 = eng.now();
      co_await pario::TwoPhase::write(c, *ctx.fs, ctx.file, std::move(mine),
                                      {}, &stats);
      // The collective call is one application-level write op.
      ctx.tracer.record(pfs::OpKind::kWrite, w0, eng.now() - w0,
                        pario::total_length(pencils));
    } else {
      // MPI-2 I/O "as a Unix-style interface": seek + write per pencil.
      for (const auto& e : pencils) {
        co_await h.seek(base + e.file_offset);
        co_await h.write(e.length);
      }
      co_await mprt::barrier(c);
    }
  }

  if (cfg.verify) {
    // Read the final dump back for the benchmark's solution check.
    const std::uint64_t base =
        static_cast<std::uint64_t>(cfg.effective_dumps() - 1) * dump_bytes;
    if (cfg.collective) {
      std::vector<pario::Extent> mine = pencils;
      for (auto& e : mine) e.file_offset += base;
      const simkit::Time r0 = eng.now();
      co_await pario::TwoPhase::read(c, *ctx.fs, ctx.file, std::move(mine));
      ctx.tracer.record(pfs::OpKind::kRead, r0, eng.now() - r0,
                        pario::total_length(pencils));
    } else {
      for (const auto& e : pencils) {
        co_await h.seek(base + e.file_offset);
        co_await h.read(e.length);
      }
      co_await mprt::barrier(c);
    }
  }
  co_await h.close();
}

}  // namespace

RunResult run_btio(const BtioConfig& cfg) {
  const int q = static_cast<int>(std::lround(std::sqrt(cfg.nprocs)));
  assert(q * q == cfg.nprocs && "BT requires a perfect-square rank count");

  simkit::Engine eng;
  hw::Machine machine(
      eng, hw::MachineConfig::sp2(static_cast<std::size_t>(cfg.nprocs)));
  pfs::StripedFs fs(machine);
  const pfs::FileId file = fs.create("btio_solution");

  std::vector<std::unique_ptr<RankCtx>> ctxs;
  for (int r = 0; r < cfg.nprocs; ++r) {
    auto ctx = std::make_unique<RankCtx>();
    ctx->cfg = &cfg;
    ctx->fs = &fs;
    ctx->file = file;
    ctxs.push_back(std::move(ctx));
  }

  const simkit::Time t = mprt::Cluster::execute(
      machine, cfg.nprocs, [&](mprt::Comm& c) -> simkit::Task<void> {
        co_await btio_rank(c, *ctxs[static_cast<std::size_t>(c.rank())], q);
      });

  RunResult res;
  res.exec_time = t;
  for (auto& ctx : ctxs) {
    res.trace.merge(ctx->tracer);
    res.compute_time += ctx->compute_time;
  }
  res.io_time = res.trace.total_io_time();
  res.io_bytes = res.trace.summary(pfs::OpKind::kWrite).bytes;
  res.io_calls = res.trace.total_ops();
  res.derive_io_wall(cfg.nprocs);
  publish_run_metrics("btio", res);
  return res;
}

}  // namespace apps
