#include "apps/scf.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "mprt/comm.hpp"
#include "pario/interface.hpp"
#include "pario/prefetch.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace apps {
namespace {

/// Deterministic per-rank imbalance factor in [1-imb, 1+imb].
double imbalance_factor(int rank, int nprocs, double imb) {
  if (nprocs <= 1) return 1.0;
  // Spread ranks evenly over [-1, 1] with a fixed permutation-ish hash.
  const double u =
      2.0 * (static_cast<double>((rank * 2654435761u) % 1000) / 999.0) - 1.0;
  return 1.0 + imb * u;
}

struct RankCtx {
  const ScfConfig* cfg;
  pfs::StripedFs* fs;
  pfs::FileId file;
  std::uint64_t my_bytes;
  std::uint64_t my_integrals;
  trace::IoTracer tracer;
  simkit::Duration compute_time = 0.0;
};

simkit::Task<void> scf_rank(mprt::Comm& c, RankCtx& ctx) {
  const ScfConfig& cfg = *ctx.cfg;
  hw::Machine& machine = c.machine();
  simkit::Engine& eng = c.engine();

  if (cfg.version == ScfVersion::kDirect) {
    // Recompute every integral in every iteration; no disk at all.
    for (int iter = 0; iter < cfg.iterations; ++iter) {
      const simkit::Time t0 = eng.now();
      co_await machine.compute(
          static_cast<double>(ctx.my_integrals) *
          (cfg.eval_flops_per_integral + cfg.fock_flops_per_integral));
      ctx.compute_time += eng.now() - t0;
    }
    co_return;
  }

  const std::uint64_t chunk = cfg.chunk_bytes();
  const std::uint64_t n_chunks =
      std::max<std::uint64_t>(1, (ctx.my_bytes + chunk - 1) / chunk);
  const double integrals_per_chunk =
      static_cast<double>(ctx.my_integrals) / static_cast<double>(n_chunks);

  const pario::InterfaceParams iface =
      cfg.version == ScfVersion::kOriginal
          ? pario::InterfaceParams::fortran()
          : pario::InterfaceParams::passion();  // kDirect returned above

  // ---- iteration 1: evaluate integrals, write the private file --------
  {
    pario::IoInterface io = co_await pario::IoInterface::open(
        *ctx.fs, c.node(), ctx.file, iface, &ctx.tracer);
    for (std::uint64_t k = 0; k < n_chunks; ++k) {
      const simkit::Time t0 = eng.now();
      co_await machine.compute(integrals_per_chunk *
                               cfg.eval_flops_per_integral);
      ctx.compute_time += eng.now() - t0;
      const std::uint64_t len =
          std::min(chunk, ctx.my_bytes - k * chunk);
      co_await io.write(len);
    }
    co_await io.flush();
    co_await io.close();
  }

  // ---- iterations 2..K: read the file in full, build Fock matrix ------
  for (int iter = 1; iter < cfg.iterations; ++iter) {
    pario::IoInterface io = co_await pario::IoInterface::open(
        *ctx.fs, c.node(), ctx.file, iface, &ctx.tracer);
    switch (cfg.version) {
      case ScfVersion::kOriginal: {
        // Fortran record I/O: a rewind-style seek, then sequential reads.
        co_await io.seek(0);
        for (std::uint64_t k = 0; k < n_chunks; ++k) {
          const std::uint64_t len =
              std::min(chunk, ctx.my_bytes - k * chunk);
          co_await io.read(len);
          const simkit::Time t0 = eng.now();
          co_await machine.compute(integrals_per_chunk *
                                   cfg.fock_flops_per_integral);
          ctx.compute_time += eng.now() - t0;
        }
        break;
      }
      case ScfVersion::kPassion: {
        // PASSION positions explicitly: a cheap seek before every read
        // (the paper's Table 3 counts 604,342 of them).
        for (std::uint64_t k = 0; k < n_chunks; ++k) {
          const std::uint64_t len =
              std::min(chunk, ctx.my_bytes - k * chunk);
          co_await io.seek(k * chunk);
          co_await io.read(len);
          const simkit::Time t0 = eng.now();
          co_await machine.compute(integrals_per_chunk *
                                   cfg.fock_flops_per_integral);
          ctx.compute_time += eng.now() - t0;
        }
        break;
      }
      case ScfVersion::kPassionPrefetch: {
        pario::Prefetcher pf(io, 0, chunk, ctx.my_bytes);
        while (!pf.done()) {
          const simkit::Time t0 = eng.now();
          const simkit::Duration wait0 = pf.wait_time();
          const simkit::Duration copy0 = pf.copy_time();
          (void)co_await pf.next();
          // Paper methodology: prefetch read time = I/O wait + copy.
          ctx.tracer.record(pfs::OpKind::kRead, t0,
                            (pf.wait_time() - wait0) +
                                (pf.copy_time() - copy0),
                            pf.last_len());
          const simkit::Time t1 = eng.now();
          co_await machine.compute(integrals_per_chunk *
                                   cfg.fock_flops_per_integral);
          ctx.compute_time += eng.now() - t1;
        }
        break;
      }
      case ScfVersion::kDirect:
        break;  // unreachable: handled before the I/O phases
    }
    co_await io.close();
  }
}

}  // namespace

RunResult run_scf11(const ScfConfig& cfg) {
  simkit::Engine eng;
  hw::MachineConfig mc = hw::MachineConfig::paragon_large(
      static_cast<std::size_t>(cfg.nprocs), cfg.io_nodes);
  mc.io.stripe_unit_bytes = cfg.stripe_unit_kb * 1024;
  hw::Machine machine(eng, mc);
  pfs::StripedFs fs(machine);

  const std::uint64_t total_integrals = cfg.total_integrals();
  std::vector<std::unique_ptr<RankCtx>> ctxs;
  double weight_sum = 0.0;
  std::vector<double> weights(static_cast<std::size_t>(cfg.nprocs));
  for (int r = 0; r < cfg.nprocs; ++r) {
    weights[static_cast<std::size_t>(r)] =
        imbalance_factor(r, cfg.nprocs, cfg.imbalance);
    weight_sum += weights[static_cast<std::size_t>(r)];
  }
  for (int r = 0; r < cfg.nprocs; ++r) {
    auto ctx = std::make_unique<RankCtx>();
    ctx->cfg = &cfg;
    ctx->fs = &fs;
    ctx->file = fs.create("scf_integrals_" + std::to_string(r));
    ctx->my_integrals = static_cast<std::uint64_t>(
        static_cast<double>(total_integrals) *
        weights[static_cast<std::size_t>(r)] / weight_sum);
    ctx->my_bytes = ctx->my_integrals * cfg.bytes_per_integral;
    ctxs.push_back(std::move(ctx));
  }

  const simkit::Time t = mprt::Cluster::execute(
      machine, cfg.nprocs, [&](mprt::Comm& c) -> simkit::Task<void> {
        co_await scf_rank(c, *ctxs[static_cast<std::size_t>(c.rank())]);
      });

  RunResult res;
  res.exec_time = t;
  metrics::Registry* reg = metrics::current();
  for (auto& ctx : ctxs) {
    res.trace.merge(ctx->tracer);
    res.compute_time += ctx->compute_time;
    if (reg) {
      // Per-rank distributions expose the load imbalance a single merged
      // total hides (the paper's Table 4 skew).
      reg->histogram("apps.scf11.rank_compute_s").observe(ctx->compute_time);
      reg->histogram("apps.scf11.rank_io_s")
          .observe(ctx->tracer.total_io_time());
    }
  }
  res.io_time = res.trace.total_io_time();
  res.io_bytes = res.trace.total_bytes();
  res.io_calls = res.trace.total_ops();
  res.derive_io_wall(cfg.nprocs);
  publish_run_metrics("scf11", res);
  return res;
}

}  // namespace apps
