// apps/common.hpp — shared result record for application runs.
#pragma once

#include <algorithm>
#include <cstdint>

#include "simkit/time.hpp"
#include "trace/tracer.hpp"

namespace apps {

/// What every application run reports: wall (simulated) execution time,
/// aggregate I/O time summed over processes (how the paper's tables count
/// it), and the merged Pablo-style trace.
struct RunResult {
  simkit::Duration exec_time = 0.0;     // simulated wall time of the job
  simkit::Duration io_time = 0.0;       // sum of per-process I/O time
  simkit::Duration io_wall = 0.0;       // wall-clock time spent in I/O
  simkit::Duration compute_time = 0.0;  // sum of per-process compute time
  std::uint64_t io_bytes = 0;
  std::uint64_t io_calls = 0;
  trace::IoTracer trace;                // merged across all processes

  double io_fraction() const {
    return exec_time > 0 ? io_time / exec_time : 0.0;
  }
  /// Aggregate bandwidth over the job's wall I/O time (MB/s), the paper's
  /// Figure 7 metric (falls back to summed I/O time if wall unknown).
  double io_bandwidth_mb_s() const {
    const double t = io_wall > 0 ? io_wall : io_time;
    return t > 0 ? static_cast<double>(io_bytes) / 1e6 / t : 0.0;
  }

  /// For barrier-phased applications (compute then I/O per step), the
  /// wall I/O time is execution minus the per-process compute share.
  void derive_io_wall(int nprocs) {
    io_wall = std::max(0.0, exec_time - compute_time / nprocs);
  }
};

}  // namespace apps
