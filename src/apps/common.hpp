// apps/common.hpp — shared result record for application runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "metrics/metrics.hpp"
#include "simkit/time.hpp"
#include "trace/tracer.hpp"

namespace apps {

/// What every application run reports: wall (simulated) execution time,
/// aggregate I/O time summed over processes (how the paper's tables count
/// it), and the merged Pablo-style trace.
struct RunResult {
  simkit::Duration exec_time = 0.0;     // simulated wall time of the job
  simkit::Duration io_time = 0.0;       // sum of per-process I/O time
  simkit::Duration io_wall = 0.0;       // wall-clock time spent in I/O
  simkit::Duration compute_time = 0.0;  // sum of per-process compute time
  std::uint64_t io_bytes = 0;
  std::uint64_t io_calls = 0;
  trace::IoTracer trace;                // merged across all processes

  double io_fraction() const {
    return exec_time > 0 ? io_time / exec_time : 0.0;
  }
  /// Aggregate bandwidth over the job's wall I/O time (MB/s), the paper's
  /// Figure 7 metric (falls back to summed I/O time if wall unknown).
  double io_bandwidth_mb_s() const {
    const double t = io_wall > 0 ? io_wall : io_time;
    return t > 0 ? static_cast<double>(io_bytes) / 1e6 / t : 0.0;
  }

  /// For barrier-phased applications (compute then I/O per step), the
  /// wall I/O time is execution minus the per-process compute share.
  void derive_io_wall(int nprocs) {
    io_wall = std::max(0.0, exec_time - compute_time / nprocs);
  }
};

/// Publish a finished run's phase totals as apps.<app>.* instruments in
/// the installed metrics registry (no-op when metrics are off).  Gauges
/// rather than counters for the time totals so repeated runs in one scope
/// (e.g. a bench sweep) keep per-run extremes instead of a meaningless
/// sum.
inline void publish_run_metrics(const std::string& app, const RunResult& r) {
  metrics::Registry* reg = metrics::current();
  if (!reg) return;
  const std::string prefix = "apps." + app + ".";
  reg->gauge(prefix + "exec_s").set(r.exec_time);
  reg->gauge(prefix + "io_s").set(r.io_time);
  reg->gauge(prefix + "io_wall_s").set(r.io_wall);
  reg->gauge(prefix + "compute_s").set(r.compute_time);
  reg->counter(prefix + "io_bytes").inc(r.io_bytes);
  reg->counter(prefix + "io_calls").inc(r.io_calls);
}

}  // namespace apps
