#include "apps/ast.hpp"

#include <cassert>
#include <memory>
#include <vector>

#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pario/extent.hpp"
#include "pario/twophase.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace apps {
namespace {

struct RankCtx {
  const AstConfig* cfg;
  pfs::StripedFs* fs;
  pfs::FileId file;
  trace::IoTracer tracer;
  simkit::Duration compute_time = 0.0;
};

/// Rank r's share of one array in a dump.  Block-column decomposition of
/// the column-major shared file: one piece per owned column (a full
/// column, grid*8 bytes).  The Chameleon path writes these pieces one by
/// one; the collective path hands them to two-phase I/O (where adjacent
/// columns coalesce into large runs).
std::vector<pario::Extent> rank_pieces(const AstConfig& cfg, int rank,
                                       int nprocs) {
  const std::uint64_t n = cfg.grid;
  const std::uint64_t col_bytes = n * cfg.elem_bytes();
  const std::uint64_t col_lo = static_cast<std::uint64_t>(rank) * n /
                               static_cast<std::uint64_t>(nprocs);
  const std::uint64_t col_hi = static_cast<std::uint64_t>(rank + 1) * n /
                               static_cast<std::uint64_t>(nprocs);
  std::vector<pario::Extent> out;
  out.reserve(col_hi - col_lo);
  std::uint64_t buf = 0;
  for (std::uint64_t c = col_lo; c < col_hi; ++c) {
    out.push_back(pario::Extent{c * col_bytes, col_bytes, buf});
    buf += col_bytes;
  }
  return out;
}

simkit::Task<void> ast_rank(mprt::Comm& c, RankCtx& ctx) {
  const AstConfig& cfg = *ctx.cfg;
  hw::Machine& machine = c.machine();
  simkit::Engine& eng = c.engine();
  const double grid_flops_per_step =
      static_cast<double>(cfg.grid * cfg.grid) * cfg.flops_per_cell_step;
  // Fine-grid work divides by P; the coarse multigrid levels do not.
  const double step_flops =
      grid_flops_per_step * (1.0 - cfg.serial_flops_fraction) /
          static_cast<double>(c.size()) +
      grid_flops_per_step * cfg.serial_flops_fraction;

  auto pieces = rank_pieces(cfg, c.rank(), c.size());
  const std::uint64_t array_bytes =
      cfg.grid * cfg.grid * cfg.elem_bytes();
  pfs::FileHandle h =
      co_await ctx.fs->open(c.node(), ctx.file, &ctx.tracer);

  if (cfg.restart) {
    // Read the snapshot array of the last checkpoint back in.  The
    // collective version uses two-phase reads; the Chameleon version has
    // node 0 read every chunk and ship it to its owner.
    const std::uint64_t base =
        static_cast<std::uint64_t>(cfg.effective_dumps() - 1) *
        static_cast<std::uint64_t>(cfg.arrays_per_dump) * array_bytes;
    if (cfg.collective) {
      std::vector<pario::Extent> mine = pieces;
      for (auto& e : mine) e.file_offset += base;
      const simkit::Time r0 = eng.now();
      co_await pario::TwoPhase::read(c, *ctx.fs, ctx.file, std::move(mine));
      ctx.tracer.record(pfs::OpKind::kRead, r0, eng.now() - r0,
                        pario::total_length(pieces));
    } else {
      constexpr int kRestartTag = (1 << 18) + 1;
      if (c.rank() == 0) {
        for (int dst = 0; dst < c.size(); ++dst) {
          for (const auto& e : rank_pieces(cfg, dst, c.size())) {
            const simkit::Time r0 = eng.now();
            co_await eng.delay(simkit::milliseconds(cfg.chameleon_call_ms));
            co_await ctx.fs->pread(c.node(), ctx.file,
                                   base + e.file_offset, e.length);
            ctx.tracer.record(pfs::OpKind::kRead, r0, eng.now() - r0,
                              e.length);
            if (dst != 0) co_await c.send(dst, kRestartTag, e.length);
          }
        }
      } else {
        for (std::size_t i = 0; i < pieces.size(); ++i) {
          (void)co_await c.recv(0, kRestartTag);
        }
      }
      co_await mprt::barrier(c);
    }
  }

  for (int d = 0; d < cfg.effective_dumps(); ++d) {
    // PPM sweeps + multigrid solve between dump points.
    const simkit::Time t0 = eng.now();
    co_await machine.compute(step_flops * cfg.steps_per_dump);
    ctx.compute_time += eng.now() - t0;

    for (int a = 0; a < cfg.arrays_per_dump; ++a) {
      const std::uint64_t base =
          (static_cast<std::uint64_t>(d) *
               static_cast<std::uint64_t>(cfg.arrays_per_dump) +
           static_cast<std::uint64_t>(a)) *
          array_bytes;
      if (cfg.collective) {
        std::vector<pario::Extent> mine = pieces;
        for (auto& e : mine) e.file_offset += base;
        const simkit::Time w0 = eng.now();
        co_await pario::TwoPhase::write(c, *ctx.fs, ctx.file,
                                        std::move(mine));
        ctx.tracer.record(pfs::OpKind::kWrite, w0, eng.now() - w0,
                          pario::total_length(pieces));
      } else {
        // Chameleon path: every column chunk is funnelled through node 0,
        // which performs ALL the file I/O, chunk by chunk.
        constexpr int kPieceTag = 1 << 18;
        if (c.rank() != 0) {
          for (const auto& e : pieces) {
            co_await c.send(0, kPieceTag, e.length);
          }
        } else {
          auto write_piece =
              [&](const pario::Extent& e) -> simkit::Task<void> {
            const simkit::Time w0 = eng.now();
            co_await eng.delay(
                simkit::milliseconds(cfg.chameleon_call_ms));
            co_await ctx.fs->pwrite(c.node(), ctx.file,
                                    base + e.file_offset, e.length);
            ctx.tracer.record(pfs::OpKind::kWrite, w0, eng.now() - w0,
                              e.length);
          };
          for (const auto& e : pieces) co_await write_piece(e);
          for (int src = 1; src < c.size(); ++src) {
            for (const auto& e : rank_pieces(cfg, src, c.size())) {
              (void)co_await c.recv(src, kPieceTag);
              co_await write_piece(e);
            }
          }
        }
        co_await mprt::barrier(c);
      }
    }
  }
  co_await h.close();
}

}  // namespace

RunResult run_ast(const AstConfig& cfg) {
  simkit::Engine eng;
  hw::Machine machine(eng, hw::MachineConfig::paragon_large(
                               static_cast<std::size_t>(cfg.nprocs),
                               cfg.io_nodes));
  pfs::StripedFs fs(machine);
  const pfs::FileId file = fs.create("ast_dump");

  std::vector<std::unique_ptr<RankCtx>> ctxs;
  for (int r = 0; r < cfg.nprocs; ++r) {
    auto ctx = std::make_unique<RankCtx>();
    ctx->cfg = &cfg;
    ctx->fs = &fs;
    ctx->file = file;
    ctxs.push_back(std::move(ctx));
  }

  const simkit::Time t = mprt::Cluster::execute(
      machine, cfg.nprocs, [&](mprt::Comm& c) -> simkit::Task<void> {
        co_await ast_rank(c, *ctxs[static_cast<std::size_t>(c.rank())]);
      });

  RunResult res;
  res.exec_time = t;
  for (auto& ctx : ctxs) {
    res.trace.merge(ctx->tracer);
    res.compute_time += ctx->compute_time;
  }
  res.io_time = res.trace.total_io_time();
  res.io_bytes = res.trace.summary(pfs::OpKind::kWrite).bytes;
  res.io_calls = res.trace.total_ops();
  res.derive_io_wall(cfg.nprocs);
  publish_run_metrics("ast", res);
  return res;
}

}  // namespace apps
