#include "apps/fft_app.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "numeric/fft.hpp"
#include "numeric/transpose.hpp"
#include "pario/ooc_array.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace apps {
namespace {

using numeric::Complex;

struct FftState {
  const FftConfig* cfg;
  pario::OutOfCoreArray* a;  // input / column-FFT'd (col-major)
  pario::OutOfCoreArray* b;  // transpose target (col- or row-major)
  simkit::Duration step1_io = 0.0;
  simkit::Duration transpose_io = 0.0;
  simkit::Duration step3_io = 0.0;
  simkit::Duration compute_time = 0.0;
  std::uint64_t io_calls = 0;
};

Complex* as_complex(std::span<std::byte> s) {
  return reinterpret_cast<Complex*>(s.data());
}

simkit::Task<void> fft_rank(mprt::Comm& c, FftState& st) {
  const FftConfig& cfg = *st.cfg;
  hw::Machine& machine = c.machine();
  simkit::Engine& eng = c.engine();
  const std::uint64_t n = cfg.n;
  const int p = c.size();
  const auto r = static_cast<std::uint64_t>(c.rank());
  const std::uint64_t es = cfg.elem_bytes();

  // Column ownership for steps 1-2; row ownership for the opt step 3.
  const std::uint64_t cols_own = n / static_cast<std::uint64_t>(p);
  const std::uint64_t col_lo = r * cols_own;
  // Usable strip memory: double-buffered.
  const std::uint64_t mem_elems =
      std::max<std::uint64_t>(n, cfg.mem_bytes / es / 2);

  std::vector<std::byte> buf, tbuf;
  const bool backed = cfg.backed;
  auto timed_compute = [&](double flops) -> simkit::Task<void> {
    const simkit::Time t0 = eng.now();
    co_await machine.compute(flops);
    st.compute_time += eng.now() - t0;
  };
  // Buffer views computed in plain lambdas: conditional expressions must
  // not appear inside co_await argument lists (GCC 12 evaluates both
  // arms when lowering coroutines).
  auto rd = [&](std::vector<std::byte>& v,
                std::uint64_t len) -> std::span<std::byte> {
    return backed ? std::span<std::byte>(v).subspan(0, len)
                  : std::span<std::byte>{};
  };
  auto wr = [&](const std::vector<std::byte>& v,
                std::uint64_t len) -> std::span<const std::byte> {
    return backed ? std::span<const std::byte>(v).subspan(0, len)
                  : std::span<const std::byte>{};
  };

  // ---- step 1: 1-D out-of-core FFT over the columns of A --------------
  {
    const std::uint64_t w = std::min(cols_own, mem_elems / n);
    if (backed) buf.resize(n * w * es);
    for (std::uint64_t c0 = col_lo; c0 < col_lo + cols_own; c0 += w) {
      const std::uint64_t wd = std::min(w, col_lo + cols_own - c0);
      const simkit::Time io0 = eng.now();
      co_await st.a->read_tile(c.node(), 0, c0, n, wd, rd(buf, n * wd * es));
      st.step1_io += eng.now() - io0;
      if (backed) {
        // Column-major tile: column j is contiguous at j*n.
        for (std::uint64_t j = 0; j < wd; ++j) {
          numeric::fft(std::span<Complex>(as_complex(buf) + j * n, n));
        }
      }
      co_await timed_compute(static_cast<double>(wd) *
                             numeric::fft_flops(n) * cfg.fft_flops_scale);
      const simkit::Time io1 = eng.now();
      co_await st.a->write_tile(c.node(), 0, c0, n, wd,
                                wr(buf, n * wd * es));
      st.step1_io += eng.now() - io1;
    }
    co_await mprt::barrier(c);
  }

  // ---- step 2: out-of-core transpose A -> B ----------------------------
  {
    const simkit::Time t0 = eng.now();
    (void)t0;
    if (cfg.optimized_layout) {
      // B row-major with B = A (layout conversion = file-level transpose):
      // read full-height column panels of A contiguously; the writes into
      // row-major B are the strided side, absorbed by write-behind.
      const std::uint64_t w = std::max<std::uint64_t>(
          1, std::min(cols_own, mem_elems / n));
      if (backed) {
        buf.resize(n * w * es);
        tbuf.resize(n * w * es);
      }
      for (std::uint64_t c0 = col_lo; c0 < col_lo + cols_own; c0 += w) {
        const std::uint64_t wd = std::min(w, col_lo + cols_own - c0);
        const simkit::Time io0 = eng.now();
        co_await st.a->read_tile(c.node(), 0, c0, n, wd,
                                 rd(buf, n * wd * es));
        st.transpose_io += eng.now() - io0;
        if (backed) {
          // Col-major n x wd panel == row-major wd x n; the row-major B
          // tile buffer wants row-major n x wd.
          numeric::transpose<Complex>(
              std::span<const Complex>(as_complex(buf), n * wd),
              std::span<Complex>(as_complex(tbuf), n * wd), wd, n);
        }
        co_await machine.mem_copy(n * wd * es);  // in-memory reshape
        const simkit::Time io1 = eng.now();
        co_await st.b->write_tile(c.node(), 0, c0, n, wd,
                                  wr(tbuf, n * wd * es));
        st.transpose_io += eng.now() - io1;
      }
    } else {
      // Both files column-major: square tiles, capped by the per-process
      // column slice — more processes mean narrower tiles, hence more and
      // smaller strided runs on BOTH sides (the paper's degradation).
      std::uint64_t t = 1;
      while ((t * 2) * (t * 2) <= mem_elems) t *= 2;
      t = std::max<std::uint64_t>(1, std::min(t, cols_own));
      if (backed) {
        buf.resize(t * t * es);
        tbuf.resize(t * t * es);
      }
      for (std::uint64_t c0 = col_lo; c0 < col_lo + cols_own; c0 += t) {
        const std::uint64_t wc = std::min(t, col_lo + cols_own - c0);
        for (std::uint64_t r0 = 0; r0 < n; r0 += t) {
          const std::uint64_t hr = std::min(t, n - r0);
          const simkit::Time io0 = eng.now();
          co_await st.a->read_tile(c.node(), r0, c0, hr, wc,
                                   rd(buf, hr * wc * es));
          st.transpose_io += eng.now() - io0;
          if (backed) {
            // Col-major hr x wc tile == row-major wc x hr; transposing
            // gives row-major hr x wc == col-major wc x hr, which is the
            // B-tile (wc rows x hr cols) in B's column-major order.
            numeric::transpose<Complex>(
                std::span<const Complex>(as_complex(buf), hr * wc),
                std::span<Complex>(as_complex(tbuf), hr * wc), wc, hr);
          }
          co_await machine.mem_copy(hr * wc * es);
          const simkit::Time io1 = eng.now();
          co_await st.b->write_tile(c.node(), c0, r0, wc, hr,
                                    wr(tbuf, hr * wc * es));
          st.transpose_io += eng.now() - io1;
        }
      }
    }
    co_await mprt::barrier(c);
  }

  // ---- step 3: 1-D out-of-core FFT over the transposed vectors --------
  {
    if (cfg.optimized_layout) {
      // Row panels of row-major B are contiguous AND are exactly the
      // vectors to transform.
      const std::uint64_t rows_own = n / static_cast<std::uint64_t>(p);
      const std::uint64_t row_lo = r * rows_own;
      const std::uint64_t h = std::max<std::uint64_t>(
          1, std::min(rows_own, mem_elems / n));
      if (backed) buf.resize(h * n * es);
      for (std::uint64_t r0 = row_lo; r0 < row_lo + rows_own; r0 += h) {
        const std::uint64_t hd = std::min(h, row_lo + rows_own - r0);
        const simkit::Time io0 = eng.now();
        co_await st.b->read_tile(c.node(), r0, 0, hd, n,
                                 rd(buf, hd * n * es));
        st.step3_io += eng.now() - io0;
        if (backed) {
          for (std::uint64_t j = 0; j < hd; ++j) {
            numeric::fft(std::span<Complex>(as_complex(buf) + j * n, n));
          }
        }
        co_await timed_compute(static_cast<double>(hd) *
                               numeric::fft_flops(n) * cfg.fft_flops_scale);
        const simkit::Time io1 = eng.now();
        co_await st.b->write_tile(c.node(), r0, 0, hd, n,
                                  wr(buf, hd * n * es));
        st.step3_io += eng.now() - io1;
      }
    } else {
      // Column panels of column-major B are contiguous and hold the
      // vectors to transform (B = A1^T).
      const std::uint64_t w = std::max<std::uint64_t>(
          1, std::min(cols_own, mem_elems / n));
      if (backed) buf.resize(n * w * es);
      for (std::uint64_t c0 = col_lo; c0 < col_lo + cols_own; c0 += w) {
        const std::uint64_t wd = std::min(w, col_lo + cols_own - c0);
        const simkit::Time io0 = eng.now();
        co_await st.b->read_tile(c.node(), 0, c0, n, wd,
                                 rd(buf, n * wd * es));
        st.step3_io += eng.now() - io0;
        if (backed) {
          for (std::uint64_t j = 0; j < wd; ++j) {
            numeric::fft(std::span<Complex>(as_complex(buf) + j * n, n));
          }
        }
        co_await timed_compute(static_cast<double>(wd) *
                               numeric::fft_flops(n) * cfg.fft_flops_scale);
        const simkit::Time io1 = eng.now();
        co_await st.b->write_tile(c.node(), 0, c0, n, wd,
                                  wr(buf, n * wd * es));
        st.step3_io += eng.now() - io1;
      }
    }
    co_await mprt::barrier(c);
  }
  st.io_calls = st.a->io_calls() + st.b->io_calls();
}

FftResult run_fft_impl(const FftConfig& cfg,
                       std::span<const std::byte> input,
                       std::vector<std::byte>* output) {
  assert(numeric::is_power_of_two(cfg.n));
  simkit::Engine eng;
  hw::MachineConfig mc = hw::MachineConfig::paragon_small(
      static_cast<std::size_t>(cfg.nprocs), cfg.io_nodes);
  hw::Machine machine(eng, mc);
  pfs::StripedFs fs(machine);

  auto a = pario::OutOfCoreArray::create(fs, "fft_a", cfg.n, cfg.n, 16,
                                         pario::Layout::kColMajor,
                                         cfg.backed);
  auto b = pario::OutOfCoreArray::create(
      fs, "fft_b", cfg.n, cfg.n, 16,
      cfg.optimized_layout ? pario::Layout::kRowMajor
                           : pario::Layout::kColMajor,
      cfg.backed);
  if (cfg.backed && !input.empty()) fs.poke(a.file(), 0, input);

  std::vector<std::unique_ptr<FftState>> states;
  for (int r = 0; r < cfg.nprocs; ++r) {
    auto st = std::make_unique<FftState>();
    st->cfg = &cfg;
    st->a = &a;
    st->b = &b;
    states.push_back(std::move(st));
  }

  const simkit::Time t = mprt::Cluster::execute(
      machine, cfg.nprocs, [&](mprt::Comm& c) -> simkit::Task<void> {
        co_await fft_rank(c, *states[static_cast<std::size_t>(c.rank())]);
      });

  FftResult res;
  res.exec_time = t;
  for (auto& st : states) {
    res.step1_io += st->step1_io;
    res.transpose_io += st->transpose_io;
    res.step3_io += st->step3_io;
    res.compute_time += st->compute_time;
  }
  res.io_time = res.step1_io + res.transpose_io + res.step3_io;
  res.io_bytes = 6 * cfg.array_bytes();  // 3 passes x (read + write)
  res.io_calls = a.io_calls() + b.io_calls();
  res.derive_io_wall(cfg.nprocs);
  publish_run_metrics("fft", res);
  if (metrics::Registry* reg = metrics::current()) {
    // The three-pass breakdown is FFT-specific (Table 5's phase split).
    reg->gauge("apps.fft.step1_io_s").set(res.step1_io);
    reg->gauge("apps.fft.transpose_io_s").set(res.transpose_io);
    reg->gauge("apps.fft.step3_io_s").set(res.step3_io);
  }

  if (output != nullptr && cfg.backed) {
    output->resize(cfg.array_bytes());
    fs.peek(b.file(), 0, *output);
  }
  return res;
}

}  // namespace

FftResult run_fft(const FftConfig& cfg) {
  return run_fft_impl(cfg, {}, nullptr);
}

std::vector<std::byte> run_fft_collect_output(
    const FftConfig& cfg, std::span<const std::byte> input) {
  std::vector<std::byte> out;
  FftConfig c = cfg;
  c.backed = true;
  (void)run_fft_impl(c, input, &out);
  return out;
}

}  // namespace apps
