// apps/scf3.hpp — the SCF 3.0 workload (semi-direct Hartree–Fock).
//
// SCF 3.0's distinguishing feature (paper §4.3) is *balanced I/O*: the
// user picks what percentage of the integrals is cached on disk; the rest
// is recomputed every iteration.  Integrals are ordered most-to-least
// expensive so the cached ones are the costly ones, and after the write
// phase the per-process file sizes are balanced to within 10% or 1 MB
// (pario::balance_files).  Reads go through the efficient interface with
// prefetching (both carried over from SCF 1.1).
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace apps {

struct Scf30Config {
  int nprocs = 32;
  std::size_t io_nodes = 16;
  /// Percentage of integrals cached on disk (0 = full recompute,
  /// 100 = full disk) — the x-axis of the paper's Figure 4.
  double cached_percent = 50.0;

  int n_basis = 140;  // MEDIUM input (paper Figure 4)
  int iterations = 10;
  double screening = 0.19;
  /// Integral costs are spread uniformly over [min,max] flops; caching
  /// keeps the most expensive ones on disk.
  double eval_flops_min = 300.0;
  double eval_flops_max = 600.0;
  /// Digesting a stored integral into the Fock matrix is a handful of
  /// flops — far cheaper than the 300-600 to evaluate it, which is the
  /// entire premise of the disk-based method.
  double fock_flops_per_integral = 25.0;
  std::uint64_t bytes_per_integral = 16;
  std::uint64_t memory_kb = 256;
  double imbalance = 0.10;  // pre-balance skew of evaluation counts
  bool balanced_io = true;  // the optimization under study
  /// SCF 3.0 "arranges the integral evaluation from most to least
  /// expensive" so the recomputed ones are the cheap ones.  Disabling
  /// this caches a random fraction instead (recompute at the mean cost).
  bool sorted_caching = true;
  double scale = 1.0;

  std::uint64_t total_integrals() const {
    const double n4 = static_cast<double>(n_basis) * n_basis *
                      static_cast<double>(n_basis) * n_basis / 8.0;
    return static_cast<std::uint64_t>(n4 * screening * scale);
  }

  /// Mean flop cost of the integrals recomputed each iteration.  With
  /// sorted caching that is the cheapest `frac` of a uniform cost
  /// distribution; without it, the mean.
  double mean_flops_cheapest(double frac) const {
    if (!sorted_caching) return mean_flops_all();
    return eval_flops_min + 0.5 * (eval_flops_max - eval_flops_min) * frac;
  }
  double mean_flops_all() const {
    return 0.5 * (eval_flops_min + eval_flops_max);
  }
};

RunResult run_scf30(const Scf30Config& cfg);

}  // namespace apps
