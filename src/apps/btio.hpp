// apps/btio.hpp — the NAS BTIO benchmark (disk-based BT flow solver).
//
// BT solves 3-D Navier-Stokes on an n^3 grid (Class A: 64^3, Class B:
// 102^3) with 5 solution components per cell, and periodically appends
// the whole solution to a shared file.  With a sqrt(P) x sqrt(P)
// decomposition of the (y,z) plane, each process owns (n/q)^2 pencils,
// and every pencil is one contiguous x-row of n*5 doubles in the file —
// so the unoptimized code issues one seek+write pair per pencil (the
// paper: "the code contains a lot of seek operations").  The optimized
// version describes the scattered solution with a datatype and writes it
// in a single two-phase collective call per dump (paper §4.5).
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace apps {

struct BtioConfig {
  char problem_class = 'A';  // 'A' = 64^3 (408.9 MB), 'B' = 102^3, 'C' = 162^3
  int nprocs = 16;           // must be a perfect square (paper x-axis)
  bool collective = false;   // two-phase I/O instead of seek+write
  /// BTIO's verification step: after the run, read the final solution
  /// dump back (collectively or pencil-by-pencil, matching `collective`).
  bool verify = false;
  int dumps = 40;            // solution dumps (Class A: 40 x ~10.5 MB)
  int steps_per_dump = 5;
  /// BT's implicit solver is expensive: block-tridiagonal sweeps in three
  /// directions, ~5000 flop/cell/step keeps I/O at the paper's "not as
  /// I/O dominant" share.
  double flops_per_cell_step = 5000.0;
  double scale = 1.0;  // scales the number of dumps for quick runs

  std::uint64_t grid_n() const {
    switch (problem_class) {
      case 'B': return 102;
      case 'C': return 162;
      default: return 64;
    }
  }
  std::uint64_t cell_bytes() const { return 5 * 8; }
  std::uint64_t dump_bytes() const {
    return grid_n() * grid_n() * grid_n() * cell_bytes();
  }
  int effective_dumps() const {
    return std::max(1, static_cast<int>(dumps * scale));
  }
};

RunResult run_btio(const BtioConfig& cfg);

}  // namespace apps
