// apps/ast.hpp — the astrophysics application (U. Chicago).
//
// Simulates self-gravitating gas collapse (piecewise parabolic method +
// multigrid potential solver) on a 2-D distributed grid, and periodically
// writes the whole grid to one shared, column-major file for
// check-pointing / data analysis / visualization (paper §2, §4.6).
//
// Each dump writes several arrays (check-pointing + data analysis +
// visualization, the paper's three purposes).  Unoptimized: every piece is
// funnelled through the Chameleon library to node 0, which performs ALL
// the file I/O one small column chunk at a time — the single-writer,
// small-non-contiguous-chunk bottleneck the paper describes.  Optimized:
// each array dump is one two-phase collective write (Table 4).
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace apps {

struct AstConfig {
  std::uint64_t grid = 2048;  // 2K x 2K doubles (the paper's large input)
  int nprocs = 16;
  std::size_t io_nodes = 16;  // Table 4 compares 16 vs 64
  bool collective = false;
  /// Restart from the last checkpoint before computing: the one case the
  /// paper calls out where this application becomes READ-intensive.
  bool restart = false;
  int dumps = 40;
  int steps_per_dump = 4;
  /// Snapshot + analysis + visualization arrays per dump point.
  int arrays_per_dump = 3;
  /// PPM hydrodynamics + multigrid gravity per fine-grid cell per step.
  double flops_per_cell_step = 1000.0;
  /// Multigrid coarse levels do not parallelize: this fraction of the
  /// per-step grid work is repeated on every process regardless of P
  /// (why the optimized Table 4 column stops scaling around 128 procs).
  double serial_flops_fraction = 0.005;
  /// Per-chunk software cost of the Chameleon gather+write path at node 0
  /// (library bookkeeping, packing, protocol), in ms.
  double chameleon_call_ms = 25.0;
  double scale = 1.0;

  std::uint64_t elem_bytes() const { return 8; }
  std::uint64_t dump_bytes() const {
    return grid * grid * elem_bytes() *
           static_cast<std::uint64_t>(arrays_per_dump);
  }
  int effective_dumps() const {
    return std::max(1, static_cast<int>(dumps * scale));
  }
};

RunResult run_ast(const AstConfig& cfg);

}  // namespace apps
