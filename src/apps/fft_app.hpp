// apps/fft_app.hpp — 2-D out-of-core FFT (the paper's 500-line code).
//
// Pipeline (paper §2): (1) 1-D out-of-core FFT over the columns, (2) an
// out-of-core transpose through two disk-resident files, (3) 1-D
// out-of-core FFT over the columns of the transposed array.
//
// Layouts (paper §4.4): the original stores BOTH disk arrays column-major,
// so the transpose's writes into the target land as one small strided run
// per column — and shrinking per-process strips (more processes) make the
// runs smaller and more numerous.  The optimized version stores the
// transpose target row-major: the transpose writes whole row panels
// contiguously, and step 3 reads row panels of the target — which are the
// columns it needs — contiguously too.  Every phase becomes large
// sequential I/O, which is why the optimized code on 2 I/O nodes beats the
// original on 4 (Figure 5).
//
// Data-backed runs perform the real FFT/transpose math (numeric::) so the
// result can be validated; timing-only runs move the same extents.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/common.hpp"

namespace apps {

struct FftConfig {
  std::uint64_t n = 2048;  // N x N complex<double> (16 bytes/element)
  int nprocs = 4;
  std::size_t io_nodes = 2;
  bool optimized_layout = false;  // row-major transpose target
  /// Memory available per process for I/O strips (the paper's machine has
  /// 32 MB/node; half is usable after the OS and code).
  std::uint64_t mem_bytes = 16ULL << 20;
  bool backed = false;  // run the real math on real bytes (tests)
  double fft_flops_scale = 1.0;

  std::uint64_t elem_bytes() const { return 16; }
  std::uint64_t array_bytes() const { return n * n * elem_bytes(); }
};

struct FftResult : RunResult {
  simkit::Duration step1_io = 0.0;      // column FFT pass
  simkit::Duration transpose_io = 0.0;  // the expensive step
  simkit::Duration step3_io = 0.0;
};

FftResult run_fft(const FftConfig& cfg);

/// Test hook: run with `backed=true` and return the final output file's
/// contents (file order: chunk i holds FFT(column i of the column-FFT'd
/// input) — identical bytes for both layouts).
std::vector<std::byte> run_fft_collect_output(const FftConfig& cfg,
                                              std::span<const std::byte> input);

}  // namespace apps
