#include "apps/scf3.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "mprt/comm.hpp"
#include "pario/balance.hpp"
#include "pario/interface.hpp"
#include "pario/prefetch.hpp"
#include "pfs/fs.hpp"
#include "simkit/engine.hpp"

namespace apps {
namespace {

double imbalance_factor(int rank, int nprocs, double imb) {
  if (nprocs <= 1) return 1.0;
  const double u =
      2.0 * (static_cast<double>((rank * 2654435761u) % 1000) / 999.0) - 1.0;
  return 1.0 + imb * u;
}

struct RankCtx {
  const Scf30Config* cfg;
  pfs::StripedFs* fs;
  pfs::FileId file;
  std::uint64_t my_integrals;  // integrals this rank evaluates
  trace::IoTracer tracer;
  simkit::Duration compute_time = 0.0;
};

simkit::Task<void> scf30_rank(mprt::Comm& c, RankCtx& ctx) {
  const Scf30Config& cfg = *ctx.cfg;
  hw::Machine& machine = c.machine();
  simkit::Engine& eng = c.engine();
  const double f = std::clamp(cfg.cached_percent / 100.0, 0.0, 1.0);
  const std::uint64_t chunk = cfg.memory_kb * 1024;

  const auto cached =
      static_cast<std::uint64_t>(static_cast<double>(ctx.my_integrals) * f);
  const std::uint64_t cached_bytes = cached * cfg.bytes_per_integral;

  auto timed_compute = [&](double flops) -> simkit::Task<void> {
    const simkit::Time t0 = eng.now();
    co_await machine.compute(flops);
    ctx.compute_time += eng.now() - t0;
  };

  // ---- iteration 1: evaluate everything, write the cached fraction ----
  {
    pario::IoInterface io = co_await pario::IoInterface::open(
        *ctx.fs, c.node(), ctx.file, pario::InterfaceParams::passion(),
        &ctx.tracer);
    const std::uint64_t n_chunks = cached_bytes == 0
                                       ? 0
                                       : (cached_bytes + chunk - 1) / chunk;
    const double eval_flops = static_cast<double>(ctx.my_integrals) *
                              cfg.mean_flops_all();
    if (n_chunks == 0) {
      co_await timed_compute(eval_flops);
    } else {
      // Interleave evaluation with chunked writes, costliest first.
      for (std::uint64_t k = 0; k < n_chunks; ++k) {
        co_await timed_compute(eval_flops / static_cast<double>(n_chunks));
        co_await io.write(std::min(chunk, cached_bytes - k * chunk));
      }
    }
    co_await io.flush();
    co_await io.close();
  }

  // ---- balanced I/O: even out the private file sizes ------------------
  std::uint64_t my_file_bytes = cached_bytes;
  if (cfg.balanced_io) {
    auto sizes = co_await pario::balance_files(c, *ctx.fs, ctx.file);
    my_file_bytes = sizes[static_cast<std::size_t>(c.rank())];
  }

  // ---- iterations 2..K: recompute the cheap ones, read the cached -----
  const double recompute_flops =
      static_cast<double>(ctx.my_integrals) * (1.0 - f) *
      cfg.mean_flops_cheapest(1.0 - f);
  const double fock_flops = static_cast<double>(ctx.my_integrals) *
                            cfg.fock_flops_per_integral;
  for (int iter = 1; iter < cfg.iterations; ++iter) {
    pario::IoInterface io = co_await pario::IoInterface::open(
        *ctx.fs, c.node(), ctx.file, pario::InterfaceParams::passion(),
        &ctx.tracer);
    const std::uint64_t n_chunks =
        my_file_bytes == 0 ? 0 : (my_file_bytes + chunk - 1) / chunk;
    if (n_chunks == 0) {
      co_await timed_compute(recompute_flops + fock_flops);
    } else {
      // Prefetched scan of the cached integrals; recompute + Fock work
      // overlaps the in-flight reads.
      pario::Prefetcher pf(io, 0, chunk, my_file_bytes);
      const double per_chunk =
          (recompute_flops + fock_flops) / static_cast<double>(n_chunks);
      while (!pf.done()) {
        const simkit::Time t0 = eng.now();
        const simkit::Duration wait0 = pf.wait_time();
        const simkit::Duration copy0 = pf.copy_time();
        (void)co_await pf.next();
        ctx.tracer.record(
            pfs::OpKind::kRead, t0,
            (pf.wait_time() - wait0) + (pf.copy_time() - copy0),
            pf.last_len());
        co_await timed_compute(per_chunk);
      }
    }
    co_await io.close();
  }
}

}  // namespace

RunResult run_scf30(const Scf30Config& cfg) {
  simkit::Engine eng;
  hw::MachineConfig mc = hw::MachineConfig::paragon_large(
      static_cast<std::size_t>(cfg.nprocs), cfg.io_nodes);
  hw::Machine machine(eng, mc);
  pfs::StripedFs fs(machine);

  const std::uint64_t total = cfg.total_integrals();
  std::vector<std::unique_ptr<RankCtx>> ctxs;
  double weight_sum = 0.0;
  std::vector<double> weights(static_cast<std::size_t>(cfg.nprocs));
  for (int r = 0; r < cfg.nprocs; ++r) {
    weights[static_cast<std::size_t>(r)] =
        imbalance_factor(r, cfg.nprocs, cfg.imbalance);
    weight_sum += weights[static_cast<std::size_t>(r)];
  }
  for (int r = 0; r < cfg.nprocs; ++r) {
    auto ctx = std::make_unique<RankCtx>();
    ctx->cfg = &cfg;
    ctx->fs = &fs;
    ctx->file = fs.create("scf3_integrals_" + std::to_string(r));
    ctx->my_integrals = static_cast<std::uint64_t>(
        static_cast<double>(total) * weights[static_cast<std::size_t>(r)] /
        weight_sum);
    ctxs.push_back(std::move(ctx));
  }

  const simkit::Time t = mprt::Cluster::execute(
      machine, cfg.nprocs, [&](mprt::Comm& c) -> simkit::Task<void> {
        co_await scf30_rank(c, *ctxs[static_cast<std::size_t>(c.rank())]);
      });

  RunResult res;
  res.exec_time = t;
  for (auto& ctx : ctxs) {
    res.trace.merge(ctx->tracer);
    res.compute_time += ctx->compute_time;
  }
  res.io_time = res.trace.total_io_time();
  res.io_bytes = res.trace.total_bytes();
  res.io_calls = res.trace.total_ops();
  res.derive_io_wall(cfg.nprocs);
  publish_run_metrics("scf30", res);
  return res;
}

}  // namespace apps
