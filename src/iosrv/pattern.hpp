// iosrv/pattern.hpp — per-(client, file) access-pattern detection.
//
// An active I/O server watches each client's request stream to a file
// and recognizes sequential and constant-stride block runs; the server
// read-ahead layer prefetches along a detected run.  Pure bookkeeping:
// no simulated time, no RNG — unit-testable in isolation, and tracking
// never perturbs a simulation that ignores its verdicts.
//
// Duplicate accesses (the same block twice in a row — retried and
// hedged reads produce these) neither extend nor reset a run: a hedge
// loser must not teach the server a bogus stride.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace iosrv {

/// The detector's verdict after one access.
struct RunInfo {
  /// Block-number delta of the current run (+1 = sequential); 0 until
  /// two distinct accesses establish one.
  std::int64_t stride = 0;
  /// Accesses in the current constant-stride run (1 = no run yet).
  int length = 1;

  bool sequential() const noexcept { return stride == 1; }
};

class PatternTracker {
 public:
  /// At most `max_streams` (client, file) streams are tracked; the
  /// least-recently-active stream is forgotten beyond that, so a
  /// long-lived server cannot accumulate unbounded state.
  explicit PatternTracker(std::size_t max_streams = 1024)
      : max_streams_(max_streams ? max_streams : 1) {}

  /// Record that `client` accessed `block` of `file`; returns the run
  /// state including this access.
  RunInfo note(std::uint64_t client, std::uint64_t file,
               std::uint64_t block);

  std::size_t stream_count() const noexcept { return map_.size(); }

 private:
  struct StreamKey {
    std::uint64_t client = 0;
    std::uint64_t file = 0;
    bool operator==(const StreamKey&) const = default;
  };
  struct StreamKeyHash {
    std::size_t operator()(const StreamKey& k) const noexcept {
      std::uint64_t z = k.client * 0x9E3779B97f4A7C15ULL ^ k.file;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };
  struct Stream {
    std::uint64_t last_block = 0;
    RunInfo run;
    std::list<StreamKey>::iterator lru_pos;
  };

  std::size_t max_streams_;
  std::list<StreamKey> lru_;  // most-recently-active first
  std::unordered_map<StreamKey, Stream, StreamKeyHash> map_;
};

}  // namespace iosrv
