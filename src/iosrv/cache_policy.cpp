#include "iosrv/cache_policy.hpp"

#include <algorithm>

namespace iosrv {

// ---------------------------------------------------------------- LRU --

bool LruPolicy::lookup(const BlockKey& k) {
  auto it = map_.find(k);
  if (it == map_.end()) {
    count_miss();
    return false;
  }
  count_hit();
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return true;
}

bool LruPolicy::is_dirty(const BlockKey& k) const {
  auto it = map_.find(k);
  return it != map_.end() && it->second.dirty;
}

bool LruPolicy::insert(const BlockKey& k, bool dirty) {
  auto it = map_.find(k);
  if (it != map_.end()) {
    it->second.dirty = it->second.dirty || dirty;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return true;
  }
  while (map_.size() >= capacity()) {
    if (!evict_one_clean()) return false;  // everything pinned
  }
  lru_.push_front(k);
  map_.emplace(k, Entry{lru_.begin(), dirty});
  return true;
}

void LruPolicy::mark_clean(const BlockKey& k) {
  auto it = map_.find(k);
  if (it != map_.end()) it->second.dirty = false;
}

std::size_t LruPolicy::invalidate_all() {
  std::size_t dirty = 0;
  for (const auto& [k, e] : map_) {
    if (e.dirty) ++dirty;
  }
  lru_.clear();
  map_.clear();
  return dirty;
}

bool LruPolicy::evict_one_clean() {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto m = map_.find(*it);
    if (!m->second.dirty) {
      const BlockKey victim = *it;
      lru_.erase(m->second.lru_pos);
      map_.erase(m);
      count_eviction(victim);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------- ARC --

bool ArcPolicy::contains(const BlockKey& k) const {
  auto it = map_.find(k);
  return it != map_.end() &&
         (it->second.list == List::kT1 || it->second.list == List::kT2);
}

bool ArcPolicy::is_dirty(const BlockKey& k) const {
  auto it = map_.find(k);
  return it != map_.end() && it->second.dirty &&
         (it->second.list == List::kT1 || it->second.list == List::kT2);
}

bool ArcPolicy::lookup(const BlockKey& k) {
  auto it = map_.find(k);
  if (it == map_.end()) {
    count_miss();
    return false;
  }
  if (it->second.list != List::kT1 && it->second.list != List::kT2) {
    // Ghost hit on a read: the data is gone, but the reference still
    // carries the adaptation signal — IF the ghost had read history.
    // A never-read ghost is a write whose one read-back arrived after
    // eviction: that distance is a stream property, not a working set,
    // and chasing it saturates p while T2's winnable reuse is evicted.
    // Sub-block reads never insert, so without adapting here they would
    // never steer p at all.  The ghost stays put (a full-stripe insert
    // that follows still earns its T2 placement); that insert adapts
    // again, a same-direction step we accept.
    if (it->second.referenced) adapt(it->second.list == List::kB2);
    count_miss();
    return false;
  }
  count_hit();
  Entry& e = it->second;
  if (e.referenced) {
    promote(e, k);
  } else {
    // First read of a write-originated block: reading back one's own
    // write-behind data is recency, not reuse — refresh in place.
    e.referenced = true;
    std::list<BlockKey>& l = list_of(e.list);
    l.splice(l.begin(), l, e.pos);
    e.pos = l.begin();
  }
  return true;
}

void ArcPolicy::adapt(bool in_b2) {
  const double b1n = static_cast<double>(b1_.size());
  const double b2n = static_cast<double>(b2_.size());
  if (in_b2) {
    p_ = std::max(0.0, p_ - std::max(b2n > 0.0 ? b1n / b2n : 1.0, 1.0));
  } else {
    p_ = std::min(static_cast<double>(capacity()),
                  p_ + std::max(b1n > 0.0 ? b2n / b1n : 1.0, 1.0));
  }
}

void ArcPolicy::promote(Entry& e, const BlockKey& k) {
  std::list<BlockKey>& from = list_of(e.list);
  t2_.splice(t2_.begin(), from, e.pos);
  e.list = List::kT2;
  e.pos = t2_.begin();
  (void)k;
}

void ArcPolicy::mark_clean(const BlockKey& k) {
  auto it = map_.find(k);
  if (it != map_.end()) it->second.dirty = false;
}

std::size_t ArcPolicy::invalidate_all() {
  std::size_t dirty = 0;
  for (const auto& [k, e] : map_) {
    if (e.dirty && (e.list == List::kT1 || e.list == List::kT2)) ++dirty;
  }
  t1_.clear();
  t2_.clear();
  b1_.clear();
  b2_.clear();
  map_.clear();
  p_ = 0.0;  // the adaptation history described a cache that no longer exists
  return dirty;
}

void ArcPolicy::drop_ghost_lru(List ghost) {
  std::list<BlockKey>& l = list_of(ghost);
  if (l.empty()) return;
  map_.erase(l.back());
  l.pop_back();
}

bool ArcPolicy::evict_from(List from, const List* ghost) {
  std::list<BlockKey>& l = list_of(from);
  for (auto it = l.rbegin(); it != l.rend(); ++it) {
    auto m = map_.find(*it);
    if (m->second.dirty) continue;  // pinned
    const BlockKey victim = *it;
    if (ghost) {
      std::list<BlockKey>& g = list_of(*ghost);
      g.splice(g.begin(), l, m->second.pos);
      m->second.list = *ghost;
      m->second.pos = g.begin();
    } else {
      l.erase(m->second.pos);
      map_.erase(m);
    }
    count_eviction(victim);
    return true;
  }
  return false;
}

bool ArcPolicy::replace(bool ghost_hit_in_b2) {
  const double t1n = static_cast<double>(t1_.size());
  const bool from_t1 =
      !t1_.empty() && (t1n > p_ || (ghost_hit_in_b2 && t1n == p_));
  if (from_t1) {
    const List b1 = List::kB1;
    if (evict_from(List::kT1, &b1)) return true;
    const List b2 = List::kB2;
    return evict_from(List::kT2, &b2);  // T1 fully pinned: fall over
  }
  const List b2 = List::kB2;
  if (evict_from(List::kT2, &b2)) return true;
  const List b1 = List::kB1;
  return evict_from(List::kT1, &b1);
}

bool ArcPolicy::insert(const BlockKey& k, bool dirty) {
  const std::size_t c = capacity();
  auto it = map_.find(k);
  if (it != map_.end() &&
      (it->second.list == List::kT1 || it->second.list == List::kT2)) {
    it->second.dirty = it->second.dirty || dirty;
    if (dirty) {
      // Write-aware: a write refresh (write-behind absorbing sub-block
      // pieces, or a checkpoint rewriting its region) is not a
      // frequency signal — keep the block in its current list, just
      // refresh recency there.
      std::list<BlockKey>& l = list_of(it->second.list);
      l.splice(l.begin(), l, it->second.pos);
      it->second.pos = l.begin();
    } else {
      it->second.referenced = true;
      promote(it->second, k);
    }
    return true;
  }

  if (it != map_.end()) {  // ghost hit
    if (dirty || !it->second.referenced) {
      // Write-aware: a rewrite of an evicted block earns no frequency
      // credit, and a READ of a never-read ghost is a write's one
      // read-back arriving after eviction — neither steers p nor earns
      // T2.  Forget the ghost and insert as if brand-new (landing in
      // T1 below; a clean insert starts its read history there).
      list_of(it->second.list).erase(it->second.pos);
      map_.erase(it);
      it = map_.end();
    } else {
      // Read re-reference of a recently evicted block: adapt p toward
      // the list whose ghost was hit, make room, land in T2.
      const bool in_b2 = it->second.list == List::kB2;
      adapt(in_b2);
      if (size() >= c && !replace(in_b2)) return false;  // all pinned
      std::list<BlockKey>& g = list_of(it->second.list);
      t2_.splice(t2_.begin(), g, it->second.pos);
      it->second.list = List::kT2;
      it->second.pos = t2_.begin();
      it->second.dirty = dirty;
      it->second.referenced = true;
      return true;
    }
  }

  // Brand-new key.
  if (t1_.size() + b1_.size() >= c) {
    if (t1_.size() < c) {
      drop_ghost_lru(List::kB1);
      if (size() >= c && !replace(false)) return false;
    } else {
      // B1 empty and T1 fills the cache: evict T1's LRU outright.
      if (!evict_from(List::kT1, nullptr)) return false;
    }
  } else if (map_.size() >= c) {
    if (map_.size() >= 2 * c) drop_ghost_lru(List::kB2);
    if (size() >= c && !replace(false)) return false;
  }
  t1_.push_front(k);
  map_.emplace(k, Entry{t1_.begin(), List::kT1, dirty, /*referenced=*/!dirty});
  return true;
}

// ------------------------------------------------------------- factory --

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind,
                                         std::size_t capacity_blocks) {
  if (kind == PolicyKind::kArc) {
    return std::make_unique<ArcPolicy>(capacity_blocks);
  }
  return std::make_unique<LruPolicy>(capacity_blocks);
}

}  // namespace iosrv
