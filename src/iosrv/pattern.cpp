#include "iosrv/pattern.hpp"

namespace iosrv {

RunInfo PatternTracker::note(std::uint64_t client, std::uint64_t file,
                             std::uint64_t block) {
  const StreamKey key{client, file};
  auto it = map_.find(key);
  if (it == map_.end()) {
    while (map_.size() >= max_streams_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    Stream s;
    s.last_block = block;
    s.lru_pos = lru_.begin();
    return map_.emplace(key, s).first->second.run;
  }

  Stream& s = it->second;
  lru_.splice(lru_.begin(), lru_, s.lru_pos);
  if (block == s.last_block) return s.run;  // duplicate: no-op

  const std::int64_t delta =
      static_cast<std::int64_t>(block) -
      static_cast<std::int64_t>(s.last_block);
  if (delta == s.run.stride && s.run.stride != 0) {
    s.run.length += 1;
  } else {
    // This access and the previous one establish a fresh stride.
    s.run.stride = delta;
    s.run.length = 2;
  }
  s.last_block = block;
  return s.run;
}

}  // namespace iosrv
