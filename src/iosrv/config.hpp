// iosrv/config.hpp — configuration for the active I/O server layer.
//
// ViPIOS-style smart servers (PAPERS.md) make their own caching and
// scheduling decisions instead of serving a passive FIFO of requests.
// This header is the knob surface: which block-replacement policy the
// per-node cache runs, whether the server detects access patterns and
// reads ahead, and whether write-behind uses the legacy
// one-slot-one-flusher model or a bounded dirty pool with watermark
// draining.  The defaults reproduce the pre-iosrv IoNode byte for byte
// (LRU, no read-ahead, legacy write-behind) — CI pins that identity.
//
// Header-only on purpose: hw::IoSubsysParams embeds a Config without
// pulling the iosrv library into the hw link line.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace iosrv {

enum class PolicyKind : std::uint8_t {
  kLru,  // classic least-recently-used (the historical BlockCache)
  kArc,  // adaptive replacement cache: scan-resistant recency+frequency
};

constexpr std::string_view to_string(PolicyKind p) {
  return p == PolicyKind::kLru ? "lru" : "arc";
}

constexpr std::optional<PolicyKind> parse_policy(std::string_view s) {
  if (s == "lru") return PolicyKind::kLru;
  if (s == "arc") return PolicyKind::kArc;
  return std::nullopt;
}

/// Pattern-driven server-side read-ahead.  The server watches each
/// (client, file) request stream for sequential or constant-stride block
/// runs and prefetches ahead of the detected run, bounded by an
/// in-flight budget so speculation never floods the disk queue.
struct ReadAheadConfig {
  bool enabled = false;
  /// Run length (consecutive constant-stride accesses) that arms
  /// prefetching for a stream.
  int min_run = 3;
  /// Blocks prefetched ahead of the run per triggering access.
  std::uint32_t degree = 2;
  /// Maximum prefetch reads in flight per I/O node (the budget).
  std::uint32_t max_inflight = 4;
};

enum class WritebackMode : std::uint8_t {
  /// Historical Paragon model: each buffered write takes one dirty slot
  /// and spawns its own flusher immediately.
  kLegacy,
  /// Bounded dirty-buffer pool: writes complete into the pool; a
  /// background drainer writes blocks out once the pool crosses the
  /// high watermark, draining down to the low watermark, at most
  /// `drain_width` disk writes at a time.
  kPool,
};

constexpr std::string_view to_string(WritebackMode m) {
  return m == WritebackMode::kLegacy ? "legacy" : "pool";
}

/// What a client-visible write ack promises about durability, and what
/// a node crash therefore costs.  `kWriteBehind` is the historical
/// model: the ack means "buffered", and every acked-but-unflushed block
/// on a crashed server is a lost update.  The other three close that
/// window at increasing up-front cost.
enum class DurabilityPolicy : std::uint8_t {
  /// Ack on buffer; a crash loses the dirty pool (the default).
  kWriteBehind,
  /// Ack only after the in-place disk write — nothing acked is ever
  /// lost, every write pays the full disk seek.
  kWriteThrough,
  /// Ack on buffer like write-behind, but expose a client-visible
  /// flush barrier (pfs/pario fsync) that completes only on durable
  /// ack; data is vulnerable exactly until the barrier returns.
  kOrderedDrain,
  /// Ack after a sequential append to a bounded per-node redo log
  /// kept on a dedicated log arm (the classic log-device design, so
  /// appends never contend with data traffic); a plain crash replays
  /// the log on recovery (zero acked loss), a scrubbing crash destroys
  /// log and data alike.
  kJournaled,
};

constexpr std::string_view to_string(DurabilityPolicy p) {
  switch (p) {
    case DurabilityPolicy::kWriteBehind: return "write_behind";
    case DurabilityPolicy::kWriteThrough: return "write_through";
    case DurabilityPolicy::kOrderedDrain: return "ordered_drain";
    default: return "journaled";
  }
}

constexpr std::optional<DurabilityPolicy> parse_durability(
    std::string_view s) {
  if (s == "write_behind") return DurabilityPolicy::kWriteBehind;
  if (s == "write_through") return DurabilityPolicy::kWriteThrough;
  if (s == "ordered_drain") return DurabilityPolicy::kOrderedDrain;
  if (s == "journaled") return DurabilityPolicy::kJournaled;
  return std::nullopt;
}

struct DurabilityConfig {
  DurabilityPolicy policy = DurabilityPolicy::kWriteBehind;
  /// Master switch for crash semantics on the server: when false (the
  /// default, preserving every pinned golden), a fault::Injector crash
  /// rejects requests but leaves cache and pool contents intact, as it
  /// always has.  When true, a crash invalidates the cache, discards
  /// the writeback pool (acked-but-unflushed blocks become lost
  /// updates), and cancels in-flight drains and read-ahead.
  bool crash_semantics = false;
  /// Redo-log capacity in blocks for kJournaled; bounds the dirty pool
  /// (a write cannot ack until its journal slot is appended).
  std::uint32_t journal_blocks = 256;
};

struct WritebackConfig {
  WritebackMode mode = WritebackMode::kLegacy;
  /// Dirty-buffer pool size in blocks; 0 means "cache capacity".
  std::uint32_t pool_blocks = 0;
  /// Fraction of the pool at which background draining starts.
  double high_watermark = 0.75;
  /// Fraction the drainer stops at (forced drains go to zero).
  double low_watermark = 0.25;
  /// Concurrent drain writes per node — the throttle that keeps a
  /// checkpoint burst from starving demand reads at the disk queue.
  std::uint32_t drain_width = 2;
};

/// The whole smart-server knob set, embedded in hw::IoSubsysParams.
struct Config {
  PolicyKind policy = PolicyKind::kLru;
  ReadAheadConfig readahead;
  WritebackConfig writeback;
  DurabilityConfig durability;

  /// True iff every knob still selects the legacy IoNode behaviour.
  constexpr bool is_legacy() const {
    return policy == PolicyKind::kLru && !readahead.enabled &&
           writeback.mode == WritebackMode::kLegacy &&
           durability.policy == DurabilityPolicy::kWriteBehind &&
           !durability.crash_semantics;
  }
};

}  // namespace iosrv
