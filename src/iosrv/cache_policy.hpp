// iosrv/cache_policy.hpp — pluggable block-cache replacement policies
// for the active I/O servers.
//
// A CachePolicy is a timing-only presence map over (file, block) keys:
// content correctness lives at the client layer (pfs::SparseStore), the
// policy only decides which requests cost a disk access.  Two semantic
// constraints carry over from the historical pfs::BlockCache:
//
//   * dirty blocks (write-behind data not yet on disk) are PINNED —
//     they can never be evicted until mark_clean();
//   * insert() fails (returns false) when the cache is saturated with
//     pinned blocks, instead of evicting one.
//
// LruPolicy reproduces the historical BlockCache move for move, so an
// IoNode configured with it behaves byte-identically to pre-iosrv
// builds.  ArcPolicy implements ARC (Megiddo & Modha), which splits the
// cache between a recency list and a frequency list steered by ghost
// hits — the scan-resistant policy a shared server wants when one
// tenant's streaming dump would otherwise flush another tenant's
// re-read working set.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "iosrv/config.hpp"

namespace iosrv {

struct BlockKey {
  std::uint64_t file = 0;
  std::uint64_t block = 0;
  bool operator==(const BlockKey&) const = default;
};

/// Two-round splitmix64.  The historical hash was `(file << 40) ^
/// block`, which collides whole families outright — (f, 0) and
/// (0, f << 40) map to the same value — and degrades the maps to bucket
/// chains for block numbers >= 2^40.  A finalizer alone cannot help
/// (identical pre-mix values stay identical), so `file` is mixed to a
/// full 64-bit value BEFORE `block` is folded in, then mixed again.
struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const noexcept {
    auto mix = [](std::uint64_t z) noexcept {
      z += 0x9E3779B97f4A7C15ULL;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    return static_cast<std::size_t>(mix(mix(k.file) ^ k.block));
  }
};

class CachePolicy {
 public:
  /// Called with each key evicted from residency (demotions to ARC
  /// ghost lists included — the block's data is gone either way).  The
  /// server uses this for eviction counters and read-ahead waste
  /// accounting.  May be empty.
  using EvictListener = std::function<void(const BlockKey&)>;

  explicit CachePolicy(std::size_t capacity_blocks)
      : capacity_(capacity_blocks) {}
  virtual ~CachePolicy() = default;
  CachePolicy(const CachePolicy&) = delete;
  CachePolicy& operator=(const CachePolicy&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

  void set_evict_listener(EvictListener l) { listener_ = std::move(l); }

  virtual std::string_view name() const noexcept = 0;
  /// Resident block count.
  virtual std::size_t size() const noexcept = 0;

  /// Lookup with policy touch (LRU promotion / ARC frequency upgrade);
  /// counts hit/miss statistics.
  virtual bool lookup(const BlockKey& k) = 0;

  /// Presence / dirtiness checks without statistics or promotion.
  virtual bool contains(const BlockKey& k) const = 0;
  virtual bool is_dirty(const BlockKey& k) const = 0;

  /// Insert (or refresh) a block.  Evicts unpinned blocks when over
  /// capacity; returns false if the cache is saturated with pinned
  /// dirty blocks and the insert was skipped.  Refreshing an existing
  /// block merges the dirty flag (dirty wins).
  virtual bool insert(const BlockKey& k, bool dirty) = 0;

  /// Mark a dirty block clean (the flusher finished writing it).
  virtual void mark_clean(const BlockKey& k) = 0;

  /// Drop every resident block (and any ghost/adaptation history) —
  /// power-loss semantics for a node crash.  Dirty pins do not survive:
  /// the buffered data is gone, which is exactly the point.  Returns
  /// the number of DIRTY blocks dropped (the lost-update count for
  /// legacy write-behind, where the cache is the only dirty store).
  /// Does NOT fire the evict listener: invalidation is loss, not
  /// replacement, and is accounted separately by the caller.
  virtual std::size_t invalidate_all() = 0;

 protected:
  void count_hit() noexcept { ++hits_; }
  void count_miss() noexcept { ++misses_; }
  void count_eviction(const BlockKey& k) {
    ++evictions_;
    if (listener_) listener_(k);
  }

 private:
  std::size_t capacity_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  EvictListener listener_;
};

/// Classic LRU with dirty pinning — the historical pfs::BlockCache
/// behind the CachePolicy interface (pfs::BlockCache is now an alias).
class LruPolicy final : public CachePolicy {
 public:
  explicit LruPolicy(std::size_t capacity_blocks)
      : CachePolicy(capacity_blocks) {}

  std::string_view name() const noexcept override { return "lru"; }
  std::size_t size() const noexcept override { return map_.size(); }
  bool lookup(const BlockKey& k) override;
  bool contains(const BlockKey& k) const override {
    return map_.count(k) != 0;
  }
  bool is_dirty(const BlockKey& k) const override;
  bool insert(const BlockKey& k, bool dirty) override;
  void mark_clean(const BlockKey& k) override;
  std::size_t invalidate_all() override;

 private:
  struct Entry {
    std::list<BlockKey>::iterator lru_pos;
    bool dirty;
  };

  bool evict_one_clean();

  std::list<BlockKey> lru_;
  std::unordered_map<BlockKey, Entry, BlockKeyHash> map_;
};

/// ARC (adaptive replacement cache) with dirty pinning.  Residents live
/// in T1 (seen once recently) or T2 (seen at least twice); ghosts of
/// recent evictions live in B1/B2 and steer the adaptation target `p`
/// (the T1 share of capacity).  Deviations from the textbook, all
/// motivated by what an I/O server actually sees:
///
///   * a victim choice skips pinned (dirty) blocks, falling over to the
///     other resident list, and insert() fails when everything resident
///     is pinned — matching the LRU contract above;
///   * WRITE-AWARE: dirty inserts (write-behind buffering) never promote
///     to T2 and never steer `p` — a checkpoint dump rewriting its state
///     region in sub-block pieces is one logical reference, not
///     frequency, and letting it colonize T2 evicts the read working
///     sets the frequency list exists to protect.  The FIRST read hit on
///     a write-originated block is the stream draining its own
///     write-behind data (write once, read back once, dead), so it only
///     refreshes recency; T2 membership takes a second read reference;
///   * lookup() of a ghost adapts `p` even though the data is gone (the
///     server cannot re-materialize a partial read), so adaptation also
///     learns from sub-block read misses.
class ArcPolicy final : public CachePolicy {
 public:
  explicit ArcPolicy(std::size_t capacity_blocks)
      : CachePolicy(capacity_blocks) {}

  std::string_view name() const noexcept override { return "arc"; }
  std::size_t size() const noexcept override { return t1_.size() + t2_.size(); }
  bool lookup(const BlockKey& k) override;
  bool contains(const BlockKey& k) const override;
  bool is_dirty(const BlockKey& k) const override;
  bool insert(const BlockKey& k, bool dirty) override;
  void mark_clean(const BlockKey& k) override;
  std::size_t invalidate_all() override;

  /// Adaptation target for |T1| (test/diagnostic).
  double p() const noexcept { return p_; }
  std::size_t t1_size() const noexcept { return t1_.size(); }
  std::size_t t2_size() const noexcept { return t2_.size(); }
  std::size_t b1_size() const noexcept { return b1_.size(); }
  std::size_t b2_size() const noexcept { return b2_.size(); }

 private:
  enum class List : std::uint8_t { kT1, kT2, kB1, kB2 };

  struct Entry {
    std::list<BlockKey>::iterator pos;
    List list;
    bool dirty = false;
    /// True once the block has a demand-read reference behind it (a
    /// clean insert is one; a dirty insert is not).  Gates promotion:
    /// only the reference AFTER a read reference proves read reuse.
    bool referenced = false;
  };

  std::list<BlockKey>& list_of(List l) noexcept {
    switch (l) {
      case List::kT1: return t1_;
      case List::kT2: return t2_;
      case List::kB1: return b1_;
      default: return b2_;
    }
  }

  /// Nudge `p` toward the list whose ghost was hit (B1 hit: grow T1's
  /// target; B2 hit: shrink it).
  void adapt(bool in_b2);
  /// Move a resident entry to the MRU end of T2 (a repeated reference).
  void promote(Entry& e, const BlockKey& k);
  /// Demote one unpinned resident to its ghost list per the ARC REPLACE
  /// rule (ghost_hit_in_b2 biases toward evicting from T1 at |T1|==p).
  /// Returns false when every resident block is pinned.
  bool replace(bool ghost_hit_in_b2);
  /// Evict the LRU unpinned block of `from`, remembering it in `ghost`
  /// (kB1/kB2), or dropping it entirely when `ghost` is nullptr.
  bool evict_from(List from, const List* ghost);
  void drop_ghost_lru(List ghost);

  std::list<BlockKey> t1_, t2_, b1_, b2_;
  std::unordered_map<BlockKey, Entry, BlockKeyHash> map_;
  double p_ = 0.0;
};

/// Factory for the configured policy.
std::unique_ptr<CachePolicy> make_policy(PolicyKind kind,
                                         std::size_t capacity_blocks);

}  // namespace iosrv
