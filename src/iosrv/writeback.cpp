#include "iosrv/writeback.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace iosrv {

WritebackPool::WritebackPool(simkit::Engine& eng, const WritebackConfig& cfg,
                             std::size_t cache_blocks, Writer writer)
    : eng_(eng), writer_(std::move(writer)) {
  cap_ = cfg.pool_blocks != 0 ? cfg.pool_blocks : cache_blocks;
  cap_ = std::max<std::size_t>(cap_, 1);
  const double hw = std::clamp(cfg.high_watermark, 0.0, 1.0);
  const double lw = std::clamp(cfg.low_watermark, 0.0, 1.0);
  high_ = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(hw * static_cast<double>(cap_))),
      1, cap_);
  low_ = std::min<std::size_t>(
      static_cast<std::size_t>(std::floor(lw * static_cast<double>(cap_))),
      high_ - 1);
  drain_width_ = std::max<std::uint32_t>(cfg.drain_width, 1);
}

simkit::Task<void> WritebackPool::submit(DirtyBlock b) {
  assert(!is_dirty(b.key) && "caller absorbs overwrites of dirty blocks");
  if (dirty_.size() >= cap_) {
    ++stalls_;
    const simkit::Time t0 = eng_.now();
    while (dirty_.size() >= cap_) co_await wait_for_buffer();
    stall_time_ += eng_.now() - t0;
  }
  const std::uint64_t file = b.key.file;
  dirty_.emplace(b.key, 0);
  file_dirty_[file] += 1;
  queue_.push_back(std::move(b));
  max_dirty_ = std::max(max_dirty_, dirty_.size());
  if (dirty_.size() >= high_ || force_ > 0) ensure_drainer();
}

void WritebackPool::ensure_drainer() {
  if (drainer_running_) return;
  drainer_running_ = true;
  eng_.spawn(drain_loop(), "iosrv.drain");
}

simkit::Task<void> WritebackPool::drain_loop() {
  ++wakes_;
  while (want_drain()) {
    const std::size_t width =
        std::min<std::size_t>(drain_width_, queue_.size());
    std::vector<simkit::ProcHandle> workers;
    workers.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      workers.push_back(eng_.spawn(drain_worker(), "iosrv.drain.w"));
    }
    for (simkit::ProcHandle& w : workers) co_await w.join();
  }
  // No suspension between the last want_drain() check and this reset,
  // so a submit that crosses the watermark always sees the truth.
  drainer_running_ = false;
}

simkit::Task<void> WritebackPool::drain_worker() {
  while (want_drain()) {
    DirtyBlock b = queue_.front();
    queue_.pop_front();
    try {
      co_await writer_(b);
    } catch (...) {
      ++write_errors_;  // the legacy flusher could not fail; count it
    }
    complete(b);
  }
}

void WritebackPool::complete(const DirtyBlock& b) {
  dirty_.erase(b.key);
  ++drained_;
  auto it = file_dirty_.find(b.key.file);
  assert(it != file_dirty_.end());
  if (--it->second == 0) {
    file_dirty_.erase(it);
    auto trig = file_clean_.find(b.key.file);
    if (trig != file_clean_.end()) {
      trig->second->fire(eng_);
      file_clean_.erase(trig);
    }
  }
  if (!stalled_.empty() && dirty_.size() < cap_) {
    eng_.schedule_at(eng_.now(), stalled_.front());
    stalled_.pop_front();
  }
}

simkit::Task<void> WritebackPool::drain_file(std::uint64_t file) {
  if (file_dirty_.count(file) == 0) co_return;
  ++force_;
  ensure_drainer();
  while (file_dirty_.count(file) != 0) {
    auto& trig = file_clean_[file];
    if (!trig) trig = std::make_shared<simkit::Trigger>();
    auto local = trig;  // keep alive across the wait
    co_await local->wait();
  }
  --force_;
}

}  // namespace iosrv
