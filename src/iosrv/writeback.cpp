#include "iosrv/writeback.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace iosrv {

WritebackPool::WritebackPool(simkit::Engine& eng, const WritebackConfig& cfg,
                             std::size_t cache_blocks, Writer writer)
    : eng_(eng), writer_(std::move(writer)) {
  cap_ = cfg.pool_blocks != 0 ? cfg.pool_blocks : cache_blocks;
  cap_ = std::max<std::size_t>(cap_, 1);
  const double hw = std::clamp(cfg.high_watermark, 0.0, 1.0);
  const double lw = std::clamp(cfg.low_watermark, 0.0, 1.0);
  high_ = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(hw * static_cast<double>(cap_))),
      1, cap_);
  low_ = std::min<std::size_t>(
      static_cast<std::size_t>(std::floor(lw * static_cast<double>(cap_))),
      high_ - 1);
  drain_width_ = std::max<std::uint32_t>(cfg.drain_width, 1);
}

simkit::Task<void> WritebackPool::submit(DirtyBlock b) {
  assert(!is_dirty(b.key) && "caller absorbs overwrites of dirty blocks");
  if (dirty_.size() >= cap_) {
    ++stalls_;
    const simkit::Time t0 = eng_.now();
    while (dirty_.size() >= cap_) co_await wait_for_buffer();
    stall_time_ += eng_.now() - t0;
  }
  if (is_dirty(b.key)) {
    // A concurrent write to the same block buffered it while this one
    // was stalled (the caller's absorb check ran before the stall).
    // Queueing it again would double-count file_dirty_: the duplicate
    // completion's erase() finds nothing and early-returns, the count
    // never reaches zero, and every later drain_file() on the file
    // waits forever.  Absorb here instead, exactly like the caller.
    co_return;
  }
  const std::uint64_t file = b.key.file;
  dirty_.emplace(b.key, Extent{b.local_offset, b.length});
  file_dirty_[file] += 1;
  queue_.push_back(std::move(b));
  max_dirty_ = std::max(max_dirty_, dirty_.size());
  if (dirty_.size() >= high_) ensure_drainer();
}

void WritebackPool::ensure_drainer() {
  if (drainer_running_) return;
  drainer_running_ = true;
  eng_.spawn(drain_loop(), "iosrv.drain");
}

simkit::Task<void> WritebackPool::drain_loop() {
  ++wakes_;
  while (want_drain()) {
    const std::size_t width =
        std::min<std::size_t>(drain_width_, queue_.size());
    std::vector<simkit::ProcHandle> workers;
    workers.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      workers.push_back(eng_.spawn(drain_worker(), "iosrv.drain.w"));
    }
    for (simkit::ProcHandle& w : workers) co_await w.join();
  }
  // No suspension between the last want_drain() check and this reset,
  // so a submit that crosses the watermark always sees the truth.
  drainer_running_ = false;
}

simkit::Task<void> WritebackPool::drain_worker() {
  while (want_drain()) {
    DirtyBlock b = queue_.front();
    queue_.pop_front();
    std::exception_ptr err;
    try {
      co_await writer_(b);
    } catch (...) {
      err = std::current_exception();
    }
    complete(b, err);
  }
}

void WritebackPool::complete(const DirtyBlock& b, std::exception_ptr err) {
  if (dirty_.erase(b.key) == 0) {
    // The block was invalidated while this write was in flight: its
    // loss is already accounted, the file bookkeeping already reset.
    return;
  }
  if (err) {
    // The block leaves the pool either way (the legacy flusher dropped
    // failed data too), but the failure is recorded so drain_file() can
    // refuse to report the file clean.
    ++write_errors_;
    FileErrors& fe = failed_[b.key.file];
    ++fe.blocks;
    if (!fe.first) fe.first = err;
  } else {
    ++drained_;
  }
  auto it = file_dirty_.find(b.key.file);
  assert(it != file_dirty_.end());
  if (--it->second == 0) {
    file_dirty_.erase(it);
    auto trig = file_clean_.find(b.key.file);
    if (trig != file_clean_.end()) {
      trig->second->fire(eng_);
      file_clean_.erase(trig);
    }
  }
  if (!stalled_.empty() && dirty_.size() < cap_) {
    eng_.schedule_at(eng_.now(), stalled_.front());
    stalled_.pop_front();
  }
}

simkit::Task<void> WritebackPool::drain_file_worker(std::uint64_t file) {
  for (;;) {
    auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [file](const DirtyBlock& b) { return b.key.file == file; });
    if (it == queue_.end()) co_return;
    DirtyBlock b = *it;
    queue_.erase(it);
    std::exception_ptr err;
    try {
      co_await writer_(b);
    } catch (...) {
      err = std::current_exception();
    }
    complete(b, err);
  }
}

simkit::Task<void> WritebackPool::drain_file(std::uint64_t file) {
  // Force out only this file's blocks; everyone else keeps absorbing
  // overwrites.  (An earlier version raised a global force flag that
  // made the background drainer flush the entire pool — one tenant's
  // fsync destroyed write-behind absorption for the whole node.)
  auto pending = file_dirty_.find(file);
  if (pending != file_dirty_.end()) {
    const std::size_t width = std::min<std::size_t>(
        drain_width_, static_cast<std::size_t>(pending->second));
    std::vector<simkit::ProcHandle> workers;
    workers.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      workers.push_back(
          eng_.spawn(drain_file_worker(file), "iosrv.fsync.w"));
    }
    for (simkit::ProcHandle& w : workers) co_await w.join();
  }
  // Blocks a background drain worker picked up before we started finish
  // there; wait until the file's dirty count reaches zero.
  while (file_dirty_.count(file) != 0) {
    auto& trig = file_clean_[file];
    if (!trig) trig = std::make_shared<simkit::Trigger>();
    auto local = trig;  // keep alive across the wait
    co_await local->wait();
  }
  auto fe = failed_.find(file);
  if (fe != failed_.end()) {
    std::exception_ptr err = fe->second.first;
    failed_.erase(fe);
    if (err) std::rethrow_exception(err);
  }
}

LossReport WritebackPool::invalidate_all() {
  LossReport r;
  r.lost.reserve(dirty_.size());
  for (const auto& [k, ext] : dirty_) {
    r.lost.push_back(DirtyBlock{k, ext.local_offset, ext.length});
    r.bytes += ext.length;
  }
  r.blocks = r.lost.size();
  // dirty_ iterates in hash order; sort so loss accounting and journal
  // replay are deterministic.
  std::sort(r.lost.begin(), r.lost.end(),
            [](const DirtyBlock& a, const DirtyBlock& b) {
              return a.key.file != b.key.file ? a.key.file < b.key.file
                                              : a.key.block < b.key.block;
            });
  queue_.clear();
  dirty_.clear();
  file_dirty_.clear();
  // Force-drain waiters wake with nothing pending: their data is lost,
  // not in flight.  Loss is reported by the caller (the crash path),
  // not as a drain error — the flush did not fail, the node died.
  for (auto& [file, trig] : file_clean_) trig->fire(eng_);
  file_clean_.clear();
  while (!stalled_.empty()) {
    eng_.schedule_at(eng_.now(), stalled_.front());
    stalled_.pop_front();
  }
  ++invalidations_;
  lost_blocks_ += r.blocks;
  lost_bytes_ += r.bytes;
  return r;
}

}  // namespace iosrv
