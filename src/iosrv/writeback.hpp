// iosrv/writeback.hpp — bounded dirty-buffer pool with watermark-driven
// background draining.
//
// The legacy IoNode write-behind model spawned one flusher per buffered
// write: every dirty block's disk write was queued immediately, so a
// checkpoint burst slammed the full burst into the disk queue ahead of
// any demand read.  The pool generalizes it:
//
//   * a write completes once it holds one of `pool_blocks` dirty
//     buffers; when the pool is full the writer STALLS (the watermark
//     stall the server accounts for),
//   * a background drainer starts once the pool crosses the high
//     watermark and drains oldest-first down to the low watermark,
//     keeping at most `drain_width` disk writes in flight — the
//     throttle that leaves disk-queue room for demand reads,
//   * drain_file() forces one file's blocks out (close/flush
//     semantics) and completes only when that file has no dirty blocks
//     left; other files keep absorbing overwrites — a flush barrier on
//     one tenant must not destroy write-behind for everyone else.
//
// Every coroutine here is finite: the drainer exits when its work is
// done, so a simulation drains exactly when all forced flushes have
// completed.  Blocks below the low watermark with no force pending stay
// buffered — that is what a write-behind cache is.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "iosrv/cache_policy.hpp"
#include "iosrv/config.hpp"
#include "simkit/engine.hpp"
#include "simkit/trigger.hpp"

namespace iosrv {

/// One buffered write-behind block: the cache key plus what the flusher
/// needs to price the disk write.  Absorbed overwrites keep the first
/// write's extent, as the legacy flusher did.
struct DirtyBlock {
  BlockKey key;
  std::uint64_t local_offset = 0;
  std::uint64_t length = 0;
};

/// What a crash invalidation destroyed: every acked-but-unflushed block
/// the pool held, sorted by (file, block) so downstream accounting and
/// journal replay are deterministic.
struct LossReport {
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
  std::vector<DirtyBlock> lost;
};

class WritebackPool {
 public:
  /// Performs the physical write of one block (the IoNode binds this to
  /// its disk arms).  A throw is counted per pool and per file and
  /// surfaced to the next drain_file() waiter on that file.
  using Writer = std::function<simkit::Task<void>(const DirtyBlock&)>;

  /// `cache_blocks` substitutes for WritebackConfig::pool_blocks == 0.
  WritebackPool(simkit::Engine& eng, const WritebackConfig& cfg,
                std::size_t cache_blocks, Writer writer);

  std::size_t pool_blocks() const noexcept { return cap_; }
  std::size_t high_watermark_blocks() const noexcept { return high_; }
  std::size_t low_watermark_blocks() const noexcept { return low_; }

  bool is_dirty(const BlockKey& k) const { return dirty_.count(k) != 0; }
  std::size_t dirty_count() const noexcept { return dirty_.size(); }

  /// Buffer one block (precondition: !is_dirty(b.key) — the caller
  /// absorbs overwrites of an already-dirty block).  Completes once a
  /// pool buffer is held; stalls while the pool is full.
  simkit::Task<void> submit(DirtyBlock b);

  /// Force-drain until `file` has no dirty blocks (close/fsync
  /// semantics).  Only this file's queued blocks are forced; everyone
  /// else's stay buffered and keep absorbing overwrites.  If any of the
  /// file's blocks failed to write since the last drain, the first
  /// recorded error is rethrown to the waiter once the file is
  /// quiescent — a flush that lost data must not report success.  The
  /// failure record is consumed by whichever waiter observes it first.
  simkit::Task<void> drain_file(std::uint64_t file);

  /// Power-loss semantics: discard every buffered block (queued and
  /// in-flight alike), wake force-drain waiters (their data is gone,
  /// not pending), release stalled submitters, and report what was
  /// lost.  In-flight drain writes that complete after this are ignored
  /// — their block no longer exists in the pool.
  LossReport invalidate_all();

  // -- statistics ---------------------------------------------------------
  std::uint64_t drained() const noexcept { return drained_; }
  std::uint64_t stalls() const noexcept { return stalls_; }
  simkit::Duration stall_time() const noexcept { return stall_time_; }
  std::size_t max_dirty() const noexcept { return max_dirty_; }
  std::uint64_t drainer_wakes() const noexcept { return wakes_; }
  std::uint64_t write_errors() const noexcept { return write_errors_; }
  std::uint64_t lost_blocks() const noexcept { return lost_blocks_; }
  std::uint64_t lost_bytes() const noexcept { return lost_bytes_; }
  std::uint64_t invalidations() const noexcept { return invalidations_; }
  /// Blocks of `file` whose drain write failed and has not yet been
  /// surfaced to a drain_file() waiter.
  std::uint64_t failed_blocks(std::uint64_t file) const noexcept {
    auto it = failed_.find(file);
    return it == failed_.end() ? 0 : it->second.blocks;
  }

 private:
  simkit::Task<void> drain_loop();
  simkit::Task<void> drain_worker();
  /// One forced-drain worker: writes out `file`'s queued blocks only.
  simkit::Task<void> drain_file_worker(std::uint64_t file);
  void ensure_drainer();
  /// Wants-draining predicate for the background drainer: above the low
  /// watermark with work queued.  Forced drains run their own workers.
  bool want_drain() const noexcept {
    return !queue_.empty() && dirty_.size() > low_;
  }
  void complete(const DirtyBlock& b, std::exception_ptr err);

  auto wait_for_buffer() {
    struct Awaiter {
      WritebackPool& p;
      bool await_ready() const noexcept { return p.dirty_.size() < p.cap_; }
      void await_suspend(std::coroutine_handle<> h) {
        p.stalled_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  simkit::Engine& eng_;
  Writer writer_;
  std::size_t cap_;
  std::size_t high_;
  std::size_t low_;
  std::uint32_t drain_width_;

  /// Extent of a buffered block, kept per key so invalidation can price
  /// the loss (and reconstruct DirtyBlocks for journal replay) even for
  /// blocks already picked up by a drain worker.
  struct Extent {
    std::uint64_t local_offset = 0;
    std::uint64_t length = 0;
  };
  /// Un-surfaced drain failures for one file.
  struct FileErrors {
    std::uint64_t blocks = 0;
    std::exception_ptr first;
  };

  std::deque<DirtyBlock> queue_;  // buffered, not yet picked by a worker
  std::unordered_map<BlockKey, Extent, BlockKeyHash> dirty_;
  std::map<std::uint64_t, std::uint64_t> file_dirty_;  // file -> blocks
  std::map<std::uint64_t, std::shared_ptr<simkit::Trigger>> file_clean_;
  std::map<std::uint64_t, FileErrors> failed_;
  std::deque<std::coroutine_handle<>> stalled_;
  bool drainer_running_ = false;

  std::uint64_t drained_ = 0;
  std::uint64_t stalls_ = 0;
  simkit::Duration stall_time_ = 0.0;
  std::size_t max_dirty_ = 0;
  std::uint64_t wakes_ = 0;
  std::uint64_t write_errors_ = 0;
  std::uint64_t lost_blocks_ = 0;
  std::uint64_t lost_bytes_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace iosrv
