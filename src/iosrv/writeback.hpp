// iosrv/writeback.hpp — bounded dirty-buffer pool with watermark-driven
// background draining.
//
// The legacy IoNode write-behind model spawned one flusher per buffered
// write: every dirty block's disk write was queued immediately, so a
// checkpoint burst slammed the full burst into the disk queue ahead of
// any demand read.  The pool generalizes it:
//
//   * a write completes once it holds one of `pool_blocks` dirty
//     buffers; when the pool is full the writer STALLS (the watermark
//     stall the server accounts for),
//   * a background drainer starts once the pool crosses the high
//     watermark and drains oldest-first down to the low watermark,
//     keeping at most `drain_width` disk writes in flight — the
//     throttle that leaves disk-queue room for demand reads,
//   * drain_file() forces everything out (close/flush semantics) and
//     completes only when the file has no dirty blocks left.
//
// Every coroutine here is finite: the drainer exits when its work is
// done, so a simulation drains exactly when all forced flushes have
// completed.  Blocks below the low watermark with no force pending stay
// buffered — that is what a write-behind cache is.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "iosrv/cache_policy.hpp"
#include "iosrv/config.hpp"
#include "simkit/engine.hpp"
#include "simkit/trigger.hpp"

namespace iosrv {

/// One buffered write-behind block: the cache key plus what the flusher
/// needs to price the disk write.  Absorbed overwrites keep the first
/// write's extent, as the legacy flusher did.
struct DirtyBlock {
  BlockKey key;
  std::uint64_t local_offset = 0;
  std::uint64_t length = 0;
};

class WritebackPool {
 public:
  /// Performs the physical write of one block (the IoNode binds this to
  /// its disk arms).  Exceptions are swallowed and counted — matching
  /// the legacy flusher, which could not fail.
  using Writer = std::function<simkit::Task<void>(const DirtyBlock&)>;

  /// `cache_blocks` substitutes for WritebackConfig::pool_blocks == 0.
  WritebackPool(simkit::Engine& eng, const WritebackConfig& cfg,
                std::size_t cache_blocks, Writer writer);

  std::size_t pool_blocks() const noexcept { return cap_; }
  std::size_t high_watermark_blocks() const noexcept { return high_; }
  std::size_t low_watermark_blocks() const noexcept { return low_; }

  bool is_dirty(const BlockKey& k) const { return dirty_.count(k) != 0; }
  std::size_t dirty_count() const noexcept { return dirty_.size(); }

  /// Buffer one block (precondition: !is_dirty(b.key) — the caller
  /// absorbs overwrites of an already-dirty block).  Completes once a
  /// pool buffer is held; stalls while the pool is full.
  simkit::Task<void> submit(DirtyBlock b);

  /// Force-drain until `file` has no dirty blocks (drains the whole
  /// pool oldest-first — close semantics).
  simkit::Task<void> drain_file(std::uint64_t file);

  // -- statistics ---------------------------------------------------------
  std::uint64_t drained() const noexcept { return drained_; }
  std::uint64_t stalls() const noexcept { return stalls_; }
  simkit::Duration stall_time() const noexcept { return stall_time_; }
  std::size_t max_dirty() const noexcept { return max_dirty_; }
  std::uint64_t drainer_wakes() const noexcept { return wakes_; }
  std::uint64_t write_errors() const noexcept { return write_errors_; }

 private:
  simkit::Task<void> drain_loop();
  simkit::Task<void> drain_worker();
  void ensure_drainer();
  /// Wants-draining predicate: above low watermark, or anything queued
  /// while a force-drain waits.
  bool want_drain() const noexcept {
    return !queue_.empty() &&
           (force_ > 0 || dirty_.size() > low_);
  }
  void complete(const DirtyBlock& b);

  auto wait_for_buffer() {
    struct Awaiter {
      WritebackPool& p;
      bool await_ready() const noexcept { return p.dirty_.size() < p.cap_; }
      void await_suspend(std::coroutine_handle<> h) {
        p.stalled_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  simkit::Engine& eng_;
  Writer writer_;
  std::size_t cap_;
  std::size_t high_;
  std::size_t low_;
  std::uint32_t drain_width_;

  std::deque<DirtyBlock> queue_;  // buffered, not yet picked by a worker
  std::unordered_map<BlockKey, char, BlockKeyHash> dirty_;
  std::map<std::uint64_t, std::uint64_t> file_dirty_;  // file -> blocks
  std::map<std::uint64_t, std::shared_ptr<simkit::Trigger>> file_clean_;
  std::deque<std::coroutine_handle<>> stalled_;
  bool drainer_running_ = false;
  int force_ = 0;  // active drain_file() waiters

  std::uint64_t drained_ = 0;
  std::uint64_t stalls_ = 0;
  simkit::Duration stall_time_ = 0.0;
  std::size_t max_dirty_ = 0;
  std::uint64_t wakes_ = 0;
  std::uint64_t write_errors_ = 0;
};

}  // namespace iosrv
