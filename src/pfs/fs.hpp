// pfs/fs.hpp — the striped parallel file system (PFS / PIOFS model) and
// its client-side file handle.
//
// A StripedFs stripes each file round-robin across the machine's I/O nodes
// in stripe units (64 KB on PFS, 32 KB on PIOFS).  Client operations pay a
// per-call syscall cost, split the byte range into stripe pieces, move
// request/data over the network, and contend at the I/O nodes.  Files can
// be content-backed (real bytes through a SparseStore) or timing-only.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/ionode.hpp"
#include "pfs/layout.hpp"
#include "pfs/store.hpp"
#include "pfs/types.hpp"
#include "simkit/engine.hpp"
#include "simkit/task.hpp"

namespace pfs {

class StripedFs;

/// Per-process open file: cursor + optional tracing.  Cheap value type.
class FileHandle {
 public:
  FileHandle() = default;
  FileHandle(StripedFs* fs, FileId file, hw::NodeId client,
             IoObserver* observer)
      : fs_(fs), file_(file), client_(client), observer_(observer) {}

  bool valid() const noexcept { return fs_ != nullptr; }
  FileId file() const noexcept { return file_; }
  hw::NodeId client() const noexcept { return client_; }
  std::uint64_t tell() const noexcept { return pos_; }
  void set_observer(IoObserver* obs) noexcept { observer_ = obs; }

  /// Reposition the cursor (a traced, client-local operation).
  simkit::Task<void> seek(std::uint64_t pos);

  /// Read/write `len` bytes at the cursor, advancing it.
  simkit::Task<void> read(std::uint64_t len, std::span<std::byte> out = {});
  simkit::Task<void> write(std::uint64_t len,
                           std::span<const std::byte> data = {});

  /// Positioned read/write (no cursor change).
  simkit::Task<void> pread(std::uint64_t offset, std::uint64_t len,
                           std::span<std::byte> out = {});
  simkit::Task<void> pwrite(std::uint64_t offset, std::uint64_t len,
                            std::span<const std::byte> data = {});

  /// Asynchronous positioned read (PFS iread): returns immediately with a
  /// handle; join it to wait for completion.  Not traced — callers that
  /// overlap I/O (prefetching) account wait time themselves.
  simkit::ProcHandle iread(std::uint64_t offset, std::uint64_t len,
                           std::span<std::byte> out = {});

  /// Wait until all buffered (write-behind) data of this file is on disk.
  simkit::Task<void> flush();
  /// Durable flush barrier: completes only when every acked write of
  /// this file is on disk at its servers (the ordered_drain contract).
  simkit::Task<void> fsync();
  simkit::Task<void> close();

 private:
  simkit::Task<void> traced(OpKind kind, std::uint64_t bytes,
                            simkit::Task<void> op);

  StripedFs* fs_ = nullptr;
  FileId file_ = kInvalidFile;
  hw::NodeId client_ = 0;
  IoObserver* observer_ = nullptr;
  std::uint64_t pos_ = 0;
};

class StripedFs {
 public:
  /// `injector`, when given, arms its fault plan on the machine's engine
  /// and is consulted by every I/O node; null (the default) costs nothing
  /// and behaves bit-identically to a fault-free build.
  explicit StripedFs(hw::Machine& machine,
                     fault::Injector* injector = nullptr);

  hw::Machine& machine() noexcept { return machine_; }
  fault::Injector* injector() noexcept { return injector_; }
  const hw::IoSubsysParams& params() const noexcept { return io_; }
  std::size_t io_node_count() const noexcept { return nodes_.size(); }
  IoNode& io_node(std::size_t i) { return *nodes_.at(i); }

  /// Create a file.  `backed` files store real bytes (SparseStore); others
  /// are sized but hole-only (timing runs at 37 GB scale without RAM).
  FileId create(std::string name, bool backed = false);

  /// Create a file whose stripes are confined to `servers` (distinct I/O
  /// node indices) instead of the whole partition.  Failure-domain-aware
  /// placement: a replica created on a different rack's servers survives
  /// the switch outage that takes its primary down.  Throws
  /// std::invalid_argument on an empty list, duplicates, or out-of-range
  /// indices.
  FileId create_placed(std::string name, bool backed,
                       std::vector<std::uint32_t> servers);

  /// Open an existing file (timed metadata round-trip to its first server).
  simkit::Task<FileHandle> open(hw::NodeId client, FileId file,
                                IoObserver* observer = nullptr);

  // Raw timed operations (FileHandle wraps these with cursor + tracing).
  simkit::Task<void> pread(hw::NodeId client, FileId file,
                           std::uint64_t offset, std::uint64_t len,
                           std::span<std::byte> out = {});
  simkit::Task<void> pwrite(hw::NodeId client, FileId file,
                            std::uint64_t offset, std::uint64_t len,
                            std::span<const std::byte> data = {});
  simkit::Task<void> flush(hw::NodeId client, FileId file);
  /// Durable flush barrier on the file's own servers — the fsync the
  /// ordered_drain durability policy exposes.  Completes only when the
  /// file has no acked-but-unflushed blocks left; rethrows the first
  /// drain failure instead of reporting a lossy flush as clean.
  simkit::Task<void> fsync(hw::NodeId client, FileId file);
  simkit::Task<void> close(hw::NodeId client, FileId file);

  /// Shrink (or declare) the file size — a metadata round-trip, used by
  /// balanced I/O when a donor gives away its tail.
  simkit::Task<void> truncate(hw::NodeId client, FileId file,
                              std::uint64_t new_size);

  std::uint64_t file_size(FileId file) const {
    return files_.at(file)->size;
  }
  const std::string& file_name(FileId file) const {
    return files_.at(file)->name;
  }
  bool is_backed(FileId file) const { return files_.at(file)->backed; }
  const StripeMap& stripe_map(FileId file) const {
    return files_.at(file)->map;
  }

  /// Direct content access (test/diagnostic; no simulated time).
  void poke(FileId file, std::uint64_t offset,
            std::span<const std::byte> data);
  void peek(FileId file, std::uint64_t offset, std::span<std::byte> out) const;

  /// Aggregate disk statistics across all I/O nodes.
  std::uint64_t total_disk_reads() const;
  std::uint64_t total_disk_writes() const;

  /// Did any server crash destroy acked-but-unflushed data of `file` in
  /// (t0, t1]?  Recovery logic treats this exactly like a scrub: a
  /// checkpoint committed before the loss window cannot vouch for data
  /// written into it.  Always false without crash semantics.
  bool file_lost_in(FileId file, simkit::Time t0, simkit::Time t1) const;

  /// Request header cost on the wire (request descriptors are small).
  static constexpr std::uint64_t kHeaderBytes = 64;

 private:
  struct FileMeta {
    std::string name;
    bool backed = false;
    std::uint64_t size = 0;
    StripeMap map;
    SparseStore store;
    FileMeta(std::string n, bool b, StripeMap m)
        : name(std::move(n)), backed(b), map(m) {}
  };

  simkit::Task<void> piece_read(hw::NodeId client, FileId file,
                                StripePiece piece);
  /// `group` ties the pieces of one multi-block client write together
  /// in the audit ledger (torn-write detection); 0 means ungrouped.
  simkit::Task<void> piece_write(hw::NodeId client, FileId file,
                                 StripePiece piece, std::uint64_t group);

  /// Does a server ack imply durability under the configured policy?
  bool durable_at_ack() const noexcept;

  hw::Machine& machine_;
  simkit::Engine& eng_;
  fault::Injector* injector_;
  hw::IoSubsysParams io_;
  std::vector<std::unique_ptr<IoNode>> nodes_;
  std::vector<std::unique_ptr<FileMeta>> files_;
};

}  // namespace pfs
